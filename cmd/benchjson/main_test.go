package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: mcudist
cpu: AMD EPYC 7B13
BenchmarkFig4aTinyLlamaAutoregressive-8   	       1	  52034567 ns/op	        26.10 speedup_8chips	         2.60 energy_mJ_max_chips
BenchmarkSingleRun8Chips-8                	     100	    123456 ns/op	    4096 B/op	      12 allocs/op
--- some test chatter that must be ignored
PASS
ok  	mcudist	1.234s
pkg: mcudist/internal/kernels
BenchmarkGEMM 	       2	   1000 ns/op
`

func TestParse(t *testing.T) {
	rec, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rec.GoOS != "linux" || rec.GoArch != "amd64" || rec.CPU != "AMD EPYC 7B13" {
		t.Errorf("headers = %q %q %q", rec.GoOS, rec.GoArch, rec.CPU)
	}
	if len(rec.Benchmarks) != 3 {
		t.Fatalf("%d benchmarks, want 3", len(rec.Benchmarks))
	}

	fig := rec.Benchmarks[0]
	if fig.Name != "BenchmarkFig4aTinyLlamaAutoregressive" {
		t.Errorf("name = %q (GOMAXPROCS suffix must be stripped)", fig.Name)
	}
	if fig.Package != "mcudist" || fig.Iterations != 1 {
		t.Errorf("pkg/iters = %q/%d", fig.Package, fig.Iterations)
	}
	if fig.Metrics["speedup_8chips"] != 26.10 || fig.Metrics["ns/op"] != 52034567 {
		t.Errorf("metrics = %v", fig.Metrics)
	}

	allocs := rec.Benchmarks[1]
	if allocs.Metrics["B/op"] != 4096 || allocs.Metrics["allocs/op"] != 12 {
		t.Errorf("alloc metrics = %v", allocs.Metrics)
	}

	gemm := rec.Benchmarks[2]
	if gemm.Name != "BenchmarkGEMM" || gemm.Package != "mcudist/internal/kernels" {
		t.Errorf("second package not tracked: %+v", gemm)
	}
}

func TestParseEmpty(t *testing.T) {
	rec, err := parse(strings.NewReader("PASS\nok \tmcudist\t0.1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Benchmarks) != 0 {
		t.Fatalf("parsed %d benchmarks from non-bench output", len(rec.Benchmarks))
	}
}
