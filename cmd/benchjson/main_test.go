package main

import (
	"os"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: mcudist
cpu: AMD EPYC 7B13
BenchmarkFig4aTinyLlamaAutoregressive-8   	       1	  52034567 ns/op	        26.10 speedup_8chips	         2.60 energy_mJ_max_chips
BenchmarkSingleRun8Chips-8                	     100	    123456 ns/op	    4096 B/op	      12 allocs/op
--- some test chatter that must be ignored
PASS
ok  	mcudist	1.234s
pkg: mcudist/internal/kernels
BenchmarkGEMM 	       2	   1000 ns/op
`

func TestParse(t *testing.T) {
	rec, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rec.GoOS != "linux" || rec.GoArch != "amd64" || rec.CPU != "AMD EPYC 7B13" {
		t.Errorf("headers = %q %q %q", rec.GoOS, rec.GoArch, rec.CPU)
	}
	if len(rec.Benchmarks) != 3 {
		t.Fatalf("%d benchmarks, want 3", len(rec.Benchmarks))
	}

	fig := rec.Benchmarks[0]
	if fig.Name != "BenchmarkFig4aTinyLlamaAutoregressive" {
		t.Errorf("name = %q (GOMAXPROCS suffix must be stripped)", fig.Name)
	}
	if fig.Package != "mcudist" || fig.Iterations != 1 {
		t.Errorf("pkg/iters = %q/%d", fig.Package, fig.Iterations)
	}
	if fig.Metrics["speedup_8chips"] != 26.10 || fig.Metrics["ns/op"] != 52034567 {
		t.Errorf("metrics = %v", fig.Metrics)
	}

	allocs := rec.Benchmarks[1]
	if allocs.Metrics["B/op"] != 4096 || allocs.Metrics["allocs/op"] != 12 {
		t.Errorf("alloc metrics = %v", allocs.Metrics)
	}

	gemm := rec.Benchmarks[2]
	if gemm.Name != "BenchmarkGEMM" || gemm.Package != "mcudist/internal/kernels" {
		t.Errorf("second package not tracked: %+v", gemm)
	}
}

func TestParseEmpty(t *testing.T) {
	rec, err := parse(strings.NewReader("PASS\nok \tmcudist\t0.1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Benchmarks) != 0 {
		t.Fatalf("parsed %d benchmarks from non-bench output", len(rec.Benchmarks))
	}
}

// A benchmark present in the previous record but absent from the new
// run must be detected — silent benchmark drops fail the pipeline.
func TestMissingBenchmarks(t *testing.T) {
	bench := func(names ...string) *Record {
		r := &Record{}
		for _, n := range names {
			r.Benchmarks = append(r.Benchmarks, Benchmark{Name: n})
		}
		return r
	}
	prev := bench("BenchmarkA", "BenchmarkB", "BenchmarkC")

	if m := missingBenchmarks(prev, bench("BenchmarkA", "BenchmarkB", "BenchmarkC")); len(m) != 0 {
		t.Errorf("identical runs reported missing: %v", m)
	}
	// New benchmarks are fine; only disappearances count.
	if m := missingBenchmarks(prev, bench("BenchmarkA", "BenchmarkB", "BenchmarkC", "BenchmarkD")); len(m) != 0 {
		t.Errorf("added benchmark reported missing: %v", m)
	}
	m := missingBenchmarks(prev, bench("BenchmarkA", "BenchmarkC"))
	if len(m) != 1 || m[0] != "BenchmarkB" {
		t.Errorf("missing = %v, want [BenchmarkB]", m)
	}
	m = missingBenchmarks(prev, bench("BenchmarkD"))
	if len(m) != 3 || m[0] != "BenchmarkA" || m[2] != "BenchmarkC" {
		t.Errorf("missing = %v, want all three in prev order", m)
	}
}

// loadRecord: absent baseline is not an error (first run), corrupt
// baseline is (it must not silently disable the check).
func TestLoadRecord(t *testing.T) {
	dir := t.TempDir()
	if rec, err := loadRecord(dir + "/nope.json"); rec != nil || err != nil {
		t.Errorf("missing file: rec=%v err=%v, want nil/nil", rec, err)
	}
	bad := dir + "/bad.json"
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadRecord(bad); err == nil {
		t.Error("corrupt baseline loaded without error")
	}
	good := dir + "/good.json"
	if err := os.WriteFile(good, []byte(`{"benchmarks":[{"name":"BenchmarkA","iterations":1,"metrics":{}}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	rec, err := loadRecord(good)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Benchmarks) != 1 || rec.Benchmarks[0].Name != "BenchmarkA" {
		t.Errorf("loaded %+v", rec.Benchmarks)
	}
}
