// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON record, so the benchmark harness (one
// benchmark per figure/table/ablation, with figure data attached as
// custom metrics) doubles as a tracked performance trajectory.
//
// Usage:
//
//	go test -run XXX -bench . -benchtime 1x ./... | benchjson -o BENCH_sweep.json
//
// The CI workflow runs exactly that pipeline and uploads the file as
// a build artifact, giving every PR a comparable perf record.
//
// When the output path already holds a previous record (the committed
// baseline in CI), benchjson compares benchmark names against it and
// exits non-zero if any previously recorded benchmark is missing from
// the new run — a deleted or silently-skipped benchmark must fail the
// pipeline, not shrink the record unnoticed. The new record is still
// written first, so the diff is inspectable. -prev overrides the
// baseline path; -allow-missing downgrades the failure to a warning
// (for intentional removals).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line: the benchmark name (GOMAXPROCS
// suffix stripped), its iteration count, and every reported metric
// keyed by unit (ns/op, B/op, allocs/op, and the custom
// ReportMetric units like speedup_8chips).
type Benchmark struct {
	Name       string             `json:"name"`
	Package    string             `json:"package,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Record is the whole run: environment headers plus every benchmark.
type Record struct {
	GoOS       string      `json:"goos,omitempty"`
	GoArch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// parse consumes `go test -bench` text output. Unrecognized lines
// (test chatter, ok/PASS summaries) are skipped, so piping the full
// ./... output through is safe.
func parse(r io.Reader) (*Record, error) {
	rec := &Record{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rec.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rec.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rec.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i] // strip the -GOMAXPROCS suffix
			}
		}
		b := Benchmark{
			Name:       name,
			Package:    pkg,
			Iterations: iters,
			Metrics:    map[string]float64{},
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad metric value %q in %q", fields[i], line)
			}
			b.Metrics[fields[i+1]] = v
		}
		rec.Benchmarks = append(rec.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rec, nil
}

// missingBenchmarks returns the names recorded in prev that are absent
// from cur, in prev's order — the benchmarks a new run silently
// dropped.
func missingBenchmarks(prev, cur *Record) []string {
	have := make(map[string]bool, len(cur.Benchmarks))
	for _, b := range cur.Benchmarks {
		have[b.Name] = true
	}
	var missing []string
	for _, b := range prev.Benchmarks {
		if !have[b.Name] {
			missing = append(missing, b.Name)
		}
	}
	return missing
}

// loadRecord reads a previous benchmark record; a missing file returns
// (nil, nil) — the first run has no baseline — while an unreadable or
// unparsable one is an error (a corrupt baseline must not silently
// disable the disappearance check).
func loadRecord(path string) (*Record, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	rec := &Record{}
	if err := json.Unmarshal(data, rec); err != nil {
		return nil, fmt.Errorf("previous record %s: %w", path, err)
	}
	return rec, nil
}

func main() {
	out := flag.String("o", "BENCH_sweep.json", "output path (- for stdout)")
	prev := flag.String("prev", "", "previous record to compare benchmark names against (default: the -o path's existing content)")
	allowMissing := flag.Bool("allow-missing", false, "warn instead of failing when previously recorded benchmarks disappear")
	flag.Parse()

	rec, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(rec.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	// Load the baseline before the write below overwrites it.
	prevPath := *prev
	if prevPath == "" && *out != "-" {
		prevPath = *out
	}
	var prevRec *Record
	if prevPath != "" {
		prevRec, err = loadRecord(prevPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(data)
	} else {
		err = os.WriteFile(*out, data, 0o644)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(rec.Benchmarks), *out)
	if prevRec != nil {
		if missing := missingBenchmarks(prevRec, rec); len(missing) > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) recorded in %s disappeared from this run: %s\n",
				len(missing), prevPath, strings.Join(missing, ", "))
			if !*allowMissing {
				os.Exit(1)
			}
		}
	}
}
