// Command paperrepro regenerates every table and figure of the
// paper's evaluation section, printing each as an aligned text table
// with the paper's reference values alongside.
//
// Usage:
//
//	paperrepro              # everything
//	paperrepro -only fig4a  # one experiment: fig4a..fig6, table1,
//	                        # headline, ablations, topology, network
//	paperrepro -workers 4   # bound the evaluation concurrency
//	paperrepro -only network -cluster 4 -backhaul 10
//	                        # heterogeneous-link ablation: tree vs ring
//	                        # with a 10x-slower inter-cluster backhaul
//	paperrepro -cache-dir ~/.cache/mcudist -cache-stats
//	                        # persistent result store: a second run
//	                        # reports exact_sims=0 with identical output
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mcudist/internal/evalpool"
	"mcudist/internal/experiments"
	"mcudist/internal/prof"
	"mcudist/internal/report"
	"mcudist/internal/resultstore"
)

type step struct {
	name string
	run  func() error
}

func main() {
	only := flag.String("only", "", "run one experiment: fig4a fig4b fig4c fig5a fig5b fig5c fig6 table1 headline ablations topology network syncplan session extensions fleet memtier resilience")
	workers := flag.Int("workers", 0, "concurrent evaluations (0 = GOMAXPROCS)")
	cluster := flag.Int("cluster", 4, "network ablation: chips per fast local cluster")
	backhaul := flag.Float64("backhaul", 10, "network ablation: inter-cluster bandwidth slowdown vs MIPI")
	cacheDir := flag.String("cache-dir", "", "persistent result store directory: configurations simulated once are reloaded on every later run (default off; falls back to $MCUDIST_CACHE)")
	cacheStats := flag.Bool("cache-stats", false, "print memory-hit / disk-hit / exact-simulation counts and store size to stderr at exit")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file at exit")
	flag.Parse()
	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperrepro:", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "paperrepro:", err)
			os.Exit(1)
		}
	}()
	evalpool.SetWorkers(*workers)
	store, err := openCache(*cacheDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperrepro:", err)
		os.Exit(1)
	}
	defer printCacheStats(*cacheStats, store)

	all := []step{
		{"fig4a", fig4(experiments.Fig4a, "paper: 26.1x at 8 chips, L3-bound below")},
		{"fig4b", fig4(experiments.Fig4b, "paper: 9.9x at 8 chips")},
		{"fig4c", fig4(experiments.Fig4c, "paper: 4.7x at 4 chips")},
		{"fig5a", fig5(experiments.Fig5a, "paper: 0.64 mJ at 8 chips; drop at 32+ scaled")},
		{"fig5b", fig5(experiments.Fig5b, "paper: energy reduced at 8 chips")},
		{"fig5c", fig5(experiments.Fig5c, "paper: slight energy increase at 4 chips")},
		{"fig6", fig6},
		{"table1", table1},
		{"headline", headline},
		{"ablations", ablations},
		{"topology", topology},
		{"network", network(*cluster, *backhaul)},
		{"syncplan", syncplan},
		{"session", session},
		{"extensions", extensions},
		{"fleet", fleetStudy},
		{"memtier", memtier},
		{"resilience", resilienceStudy},
	}
	ran := 0
	for _, s := range all {
		if *only != "" && !strings.EqualFold(*only, s.name) {
			continue
		}
		if err := s.run(); err != nil {
			fmt.Fprintf(os.Stderr, "paperrepro: %s: %v\n", s.name, err)
			os.Exit(1)
		}
		fmt.Println()
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "paperrepro: unknown experiment %q\n", *only)
		os.Exit(1)
	}
}

func fig4(f func() (*experiments.Fig4Result, error), note string) func() error {
	return func() error {
		res, err := f()
		if err != nil {
			return err
		}
		t := report.NewTable(res.Name+"  ("+note+")",
			"chips", "cycles", "speedup", "compute", "l2l1", "l3", "c2c", "tier")
		for _, r := range res.Rows {
			t.AddRow(r.Chips, r.Cycles, r.Speedup,
				r.Breakdown.Compute, r.Breakdown.L2L1, r.Breakdown.L3, r.Breakdown.C2C,
				r.Tier.String())
		}
		return t.Render(os.Stdout)
	}
}

func fig5(f func() (*experiments.Fig5Result, error), note string) func() error {
	return func() error {
		res, err := f()
		if err != nil {
			return err
		}
		t := report.NewTable(res.Name+"  ("+note+")",
			"chips", "model", "cycles", "energy_mJ", "EDP_Js", "tier")
		for _, p := range res.Points {
			kind := "original"
			if p.Scaled {
				kind = "scaled-64h"
			}
			t.AddRow(p.Chips, kind, p.Cycles, p.EnergyMJ, p.EDP, p.Tier.String())
		}
		return t.Render(os.Stdout)
	}
}

func fig6() error {
	res, err := experiments.Fig6()
	if err != nil {
		return err
	}
	t := report.NewTable("Fig6 scalability, scaled-up TinyLlama (paper: 60.1x AR at 64 chips)",
		"chips", "ar_speedup", "prompt_speedup", "linear")
	for _, r := range res.Rows {
		t.AddRow(r.Chips, r.AutoregressiveSpeedup, r.PromptSpeedup, r.Chips)
	}
	return t.Render(os.Stdout)
}

func table1() error {
	rows, err := experiments.Table1()
	if err != nil {
		return err
	}
	t := report.NewTable("Table I: partitioning strategies on TinyLlama, 8 chips",
		"work", "pipelining", "weight_dup", "ar_speedup", "prompt_speedup", "ar_energy_mJ")
	for _, r := range rows {
		t.AddRow(r.Work, yn(r.Pipelining), yn(r.WeightDuplication),
			r.ARSpeedup, r.PromptSpeedup, r.EnergyARMJ)
	}
	return t.Render(os.Stdout)
}

func headline() error {
	h, err := experiments.RunHeadline()
	if err != nil {
		return err
	}
	p := experiments.PaperHeadline()
	t := report.NewTable("Headline metrics (paper vs measured)",
		"metric", "paper", "measured")
	t.AddRow("TinyLlama AR speedup, 8 chips", p.ARSpeedup8, h.ARSpeedup8)
	t.AddRow("TinyLlama AR energy @8 (mJ)", p.AREnergy8MJ, h.AREnergy8MJ)
	t.AddRow("TinyLlama AR latency @8 (ms)", p.ARLatency8MS, h.ARLatency8MS)
	t.AddRow("EDP improvement, 8 chips", p.AREDPImprovement, h.AREDPImprovement)
	t.AddRow("Energy ratio 8/1 chip", p.AREnergyRatio, h.AREnergyRatio)
	t.AddRow("TinyLlama prompt speedup, 8 chips", p.PromptSpeedup8, h.PromptSpeedup8)
	t.AddRow("MobileBERT speedup, 4 chips", p.MobileBERTSpeedup4, h.MobileBERTSpeedup4)
	t.AddRow("Scaled AR speedup, 64 chips", p.ScaledSpeedup64, h.ScaledSpeedup64)
	t.AddRow("Scaled energy reduction, 64 chips", p.ScaledEnergyReduction64, h.ScaledEnergyReduction64)
	t.AddRow("Syncs per block", p.SyncsPerBlock, h.SyncsPerBlock)
	t.AddRow("Weight replication factor", p.ReplicationFactor, h.ReplicationFactor)
	return t.Render(os.Stdout)
}

func ablations() error {
	kinds := []struct {
		name string
		run  func() ([]experiments.AblationRow, error)
	}{
		{"reduce topology (hierarchical vs flat)", experiments.AblationReduceTopology},
		{"reduce-tree group size at 64 chips", experiments.AblationGroupSize},
		{"partial exchange precision", experiments.AblationReducePrecision},
		{"prefetch accounting", experiments.AblationPrefetch},
		{"activation spill (MobileBERT)", experiments.AblationActivationSpill},
		{"link bandwidth scaling", experiments.AblationLinkBandwidth},
		{"degraded-link failure injection", experiments.AblationDegradedLink},
		{"compute straggler (thermal throttling)", experiments.AblationStraggler},
	}
	for _, k := range kinds {
		if err := ablationTable(k.name, k.run); err != nil {
			return err
		}
	}
	return nil
}

func ablationTable(name string, run func() ([]experiments.AblationRow, error)) error {
	rows, err := run()
	if err != nil {
		return err
	}
	t := report.NewTable("Ablation: "+name,
		"config", "chips", "cycles", "c2c_cycles", "c2c_bytes", "energy_mJ")
	for _, r := range rows {
		t.AddRow(r.Label, r.Chips, r.Cycles, r.C2CCycles, r.C2CBytes, r.EnergyMJ)
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	return nil
}

// topology renders the interconnect-shape ablation: all four
// topologies (hierarchical tree, flat star, ring all-reduce,
// fully-connected all-to-all) at the paper's chip counts.
func topology() error {
	return ablationTable("interconnect topology (tree / star / ring / fully-connected)",
		experiments.AblationTopologyShapes)
}

// network renders the heterogeneous-link ablation: tree vs ring on a
// uniform MIPI network and on a two-tier clustered board with a
// slowed inter-cluster backhaul, at the paper's 8/16/64-chip points.
func network(cluster int, backhaul float64) func() error {
	return func() error {
		return ablationTable(
			fmt.Sprintf("heterogeneous links (clusters of %d, %gx-slower backhaul)", cluster, backhaul),
			func() ([]experiments.AblationRow, error) {
				return experiments.AblationNetworkBackhaul(cluster, backhaul)
			})
	}
}

// syncplan renders the per-sync collective plan ablation: one prompt
// prefill + one decode step per row, the prefill-on-ring /
// decode-on-tree hybrid against both uniform baselines.
func syncplan() error {
	return ablationTable("per-sync collective plans (one prefill + one decode step)",
		experiments.AblationSyncPlan)
}

// session renders the joint-session autotuning study: the winning
// prefill+decode plan per (chip count, network profile), its margin
// over the best uniform session, and the predict-then-verify search's
// exact-simulation bill against the naive joint grid.
func session() error {
	rows, err := experiments.SessionAutotune()
	if err != nil {
		return err
	}
	t := report.NewTable("Joint-session autotuning (predict-then-verify over the class x topology grid)",
		"chips", "network", "plan", "cycles", "best_uniform", "margin", "rank_acc", "exact_sims", "grid_sims")
	for _, r := range rows {
		t.AddRow(r.Chips, r.Network, r.Plan, r.Cycles, r.BestUniform, r.Margin,
			r.RankAccuracy, r.ExactSims, r.GridSims)
	}
	return t.Render(os.Stdout)
}

func extensions() error {
	grid, err := experiments.ExtensionFullGrid()
	if err != nil {
		return err
	}
	t := report.NewTable("Extension: full chip grid (crossover hides inside the paper's 4-8 gap)",
		"chips", "cycles", "speedup", "tier")
	for _, r := range grid {
		t.AddRow(r.Chips, r.Cycles, r.Speedup, r.Tier)
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()

	seq, err := experiments.ExtensionSeqLenStudy()
	if err != nil {
		return err
	}
	t = report.NewTable("Extension: prompt-length crossover (memory- to compute-bound)",
		"seqlen", "speedup_8chips", "l3_share_1chip")
	for _, r := range seq {
		t.AddRow(r.SeqLen, r.Speedup8, r.L3Share1)
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()

	ctx, err := experiments.ExtensionContextStudy()
	if err != nil {
		return err
	}
	t = report.NewTable("Extension: autoregressive context sweep at 8 chips",
		"context", "cycles", "energy_mJ", "tier")
	for _, r := range ctx {
		t.AddRow(r.Context, r.CyclesPer8, r.EnergyMJ8, r.Tier)
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()

	head, err := experiments.ExtensionLMHeadStudy()
	if err != nil {
		return err
	}
	t = report.NewTable("Extension: LM-head cost the paper's block-only measurement excludes",
		"chips", "blocks_cycles", "head_cycles", "head_share")
	for _, r := range head {
		t.AddRow(r.Chips, r.BlocksCycles, r.HeadCycles, r.HeadShare)
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()

	gqa, err := experiments.ExtensionGQAStudy()
	if err != nil {
		return err
	}
	t = report.NewTable("Extension: grouped-query attention vs full MHA (SmolLM-135M geometry)",
		"variant", "kv_bytes_per_block", "block_MiB", "max_chips", "min_chips_no_l3", "best_latency_ms")
	for _, r := range gqa {
		t.AddRow(r.Variant, r.KVCacheBytes, r.BlockWeightMiB, r.MaxChips, r.MinChipsNoL3, r.LatencyMSAtBest)
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()

	batch, err := experiments.ExtensionBatchingStudy()
	if err != nil {
		return err
	}
	t = report.NewTable("Extension: batching vs pipelining (the Table I argument, quantified)",
		"batch", "ours_latency", "pipe_last_latency", "ours_req_per_s", "pipe_req_per_s")
	for _, r := range batch {
		t.AddRow(r.Batch, r.OursLatencyCycles, r.PipeLastLatency, r.OursThroughput, r.PipeThroughput)
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()

	coll, err := experiments.ExtensionCollectiveStudy()
	if err != nil {
		return err
	}
	t = report.NewTable("Extension: hierarchical tree vs ring all-reduce",
		"chips", "payload_B", "tree_cycles", "ring_cycles")
	for _, r := range coll {
		t.AddRow(r.Chips, r.Payload, r.TreeCycles, r.RingCycles)
	}
	return t.Render(os.Stdout)
}

// fleetStudy renders the fleet-serving studies: the saturation curve
// of the two-group 64-chip fleet (latency vs offered load, knee
// identified) and the continuous-batching ablation. Both are
// deterministic fixtures — seeded traces, so the tables are
// byte-identical across runs and worker counts.
func fleetStudy() error {
	sat, err := experiments.FleetSaturation()
	if err != nil {
		return err
	}
	t := report.NewTable(
		fmt.Sprintf("Fleet saturation, 2x64-chip groups (knee at %g req/s; plan %s, %.2fx)",
			sat.KneePerSec, sat.Plan, sat.PlanMargin),
		"offered_req_s", "achieved_req_s", "p50_ms", "p99_ms", "tok_s",
		"J_per_req", "mean_queue", "mean_batch", "util", "saturated")
	for _, r := range sat.Rows {
		t.AddRow(r.OfferedPerSec, r.AchievedPerSec,
			r.P50LatencySeconds*1e3, r.P99LatencySeconds*1e3, r.TokensPerSecond,
			r.EnergyPerRequestJoules, r.MeanQueueDepth, r.MeanBatch,
			r.Utilization, yn(r.Saturated))
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()

	rows, err := experiments.FleetBatchingAblation()
	if err != nil {
		return err
	}
	t = report.NewTable("Fleet continuous-batching ablation, 64 chips at saturation",
		"max_batch", "tok_s", "p99_ms", "J_per_req", "mean_batch", "margin")
	for _, r := range rows {
		t.AddRow(r.MaxBatch, r.TokensPerSecond, r.P99LatencySeconds*1e3,
			r.EnergyPerRequestJoules, r.MeanBatch, r.Margin)
	}
	return t.Render(os.Stdout)
}

// memtier renders the DRAM-backed memory-hierarchy studies: the
// streamed-tier cost comparison (flat exposed-bytes model vs the
// tiled DRAM channel, with prefetch-depth / bank-count / bandwidth
// knobs swept) and the per-family tiling autotuner, including the
// bigger-than-SRAM EdgeLlama point where the attention and FFN layer
// families prefer different tile shapes.
func memtier() error {
	rows, err := experiments.MemTierStudy()
	if err != nil {
		return err
	}
	t := report.NewTable("Memory-hierarchy cost tier, streamed TinyLlama on 2 chips",
		"config", "mode", "cycles", "l3_cycles", "l3_bytes", "energy_mJ", "tier")
	for _, r := range rows {
		t.AddRow(r.Label, r.Mode, r.Cycles, r.L3Cycles, r.L3Bytes, r.EnergyMJ, r.Tier.String())
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()

	tiles, err := experiments.MemTilingAutotune()
	if err != nil {
		return err
	}
	t = report.NewTable("Per-family tiling autotune (zero-probe predict-then-verify over the pair grid)",
		"model", "chips", "attn", "ffn", "cycles", "best_uniform", "margin", "energy_margin",
		"rank_acc", "exact_sims", "grid_sims")
	for _, r := range tiles {
		t.AddRow(r.Model, r.Chips, r.Attn, r.FFN, r.Cycles, r.BestUniform, r.Margin,
			r.EnergyMargin, r.RankAccuracy, r.ExactSims, r.GridSims)
	}
	return t.Render(os.Stdout)
}

// resilienceStudy renders the resilience-margin study: each fault
// family (dropped chip, 10x-degraded link, 2x compute straggler) at
// the 8- and 64-chip pinned operating points, racing the stale
// pristine-tuned plan against re-planning on the degraded board. The
// margin column is the latency factor a static fleet pays for not
// re-planning — >= 1 by construction, +Inf when the stale plan no
// longer validates on the degraded wiring.
func resilienceStudy() error {
	rows, err := experiments.ResilienceMargin()
	if err != nil {
		return err
	}
	t := report.NewTable("Resilience margin (stale plan vs re-planning on the degraded board)",
		"chips", "faults", "degraded_chips", "stale_plan", "static_cycles",
		"adopted_plan", "replan_pays", "margin", "margin_joules", "exact_sims")
	for _, r := range rows {
		static := any(r.StaticCycles)
		if r.StaticErr != "" {
			static = "infeasible"
		}
		t.AddRow(r.Chips, r.Faults, r.DegradedChips, r.StalePlan, static,
			r.AdoptedPlan, yn(r.ReplanPays), r.MarginCycles, r.MarginJoules, r.ExactSims)
	}
	return t.Render(os.Stdout)
}

// openCache attaches the persistent result store to the evaluation
// pool: the -cache-dir flag, or the MCUDIST_CACHE environment variable
// when the flag is empty, or nothing (the cache stays off).
func openCache(dir string) (*resultstore.Store, error) {
	if dir == "" {
		dir = os.Getenv("MCUDIST_CACHE")
	}
	if dir == "" {
		return nil, nil
	}
	store, err := resultstore.Open(dir)
	if err != nil {
		return nil, err
	}
	evalpool.SetStore(store)
	return store, nil
}

// printCacheStats reports the cache-tier split on stderr (stdout
// carries the tables, byte-identical cold or warm), in a
// grep-friendly key=value line: a fully warm store shows
// exact_sims=0, which the CI smoke pins over the whole experiment
// suite.
func printCacheStats(show bool, store *resultstore.Store) {
	if !show {
		return
	}
	st := evalpool.GetStats()
	fmt.Fprintf(os.Stderr, "cache-stats: memory_hits=%d disk_hits=%d exact_sims=%d",
		st.MemoryHits, st.DiskHits, st.Simulations)
	if store != nil {
		fmt.Fprintf(os.Stderr, " store_entries=%d store_bytes=%d store_dir=%s",
			store.Len(), store.SizeBytes(), store.Dir())
	} else {
		fmt.Fprint(os.Stderr, " store=off")
	}
	fmt.Fprintln(os.Stderr)
}

func yn(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
