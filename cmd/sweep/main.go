// Command sweep runs a workload across a list of chip counts and
// emits one CSV row per configuration — the raw data behind the
// paper's figures, ready for plotting.
//
// Usage:
//
//	sweep -model tinyllama -mode autoregressive -chips 1,2,4,8
//	sweep -model scaled -mode prompt -chips 1,2,4,8,16,32,64 -workers 4
//	sweep -model tinyllama -mode prompt -chips 8 -topology ring
//	sweep -model scaled -mode prompt -chips 16,64 -topology ring \
//	      -network clustered -cluster 4 -backhaul 10
//	sweep -model scaled -mode prompt -chips 64 -plan prefill=ring,decode=tree
//	sweep -model scaled -mode prompt -chips 16,64 -autotune
//	sweep -model scaled -chips 8,64 -autotune-session
//	sweep -model scaled -chips 64 -autotune-session -topk 16 \
//	      -network clustered -cluster 4 -backhaul 10
//	sweep -model scaled -chips 1,2,4,8 -cache-dir ~/.cache/mcudist -cache-stats
//	                        # second run answers from the persistent
//	                        # result store: exact_sims=0
//	sweep -model tinyllama -chips 2 -mem dram
//	sweep -model edgellama -chips 8 -mem dram -mem-banks 16 -tile 32x256
//	sweep -model edgellama -chips 8 -mem dram -tile 32x352 -ffn-tile 32x512
//	sweep -model edgellama -chips 8 -mem dram -autotune-tiling
//	sweep -fleet -model scaled -chips 64 -groups 2 -rates 50,100,200,400
//	sweep -fleet -chips 8 -max-batch 4 -requests 5000 -fleet-autotune
//	sweep -model tinyllama -chips 4 -netlist board.netlist
//	sweep -model tinyllama -chips 8 -fault slow:0-1x10
//	sweep -model scaled -chips 64 -replan -fault drop:3
//	sweep -fleet -chips 8 -groups 2 -fault drop:3 -fault-at 5 -fault-replan
//	sweep -model scaled -chips 8 -cache-dir /tmp/c -cache-compact /tmp/c.compact
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"mcudist/internal/collective"
	"mcudist/internal/core"
	"mcudist/internal/evalpool"
	"mcudist/internal/explore"
	"mcudist/internal/fleet"
	"mcudist/internal/hw"
	"mcudist/internal/memsim"
	"mcudist/internal/model"
	"mcudist/internal/prof"
	"mcudist/internal/report"
	"mcudist/internal/resilience"
	"mcudist/internal/resultstore"
)

func main() {
	var (
		modelName  = flag.String("model", "tinyllama", "model: tinyllama | scaled | mobilebert | edgellama")
		modeName   = flag.String("mode", "autoregressive", "mode: autoregressive | prompt")
		chipsList  = flag.String("chips", "1,2,4,8", "comma-separated chip counts")
		seqLen     = flag.Int("seqlen", 0, "sequence length (0 = paper default)")
		topoName   = flag.String("topology", "tree", "interconnect shape: tree | star | ring | fully-connected")
		netName    = flag.String("network", "uniform", "link-layer profile: uniform | clustered")
		backhaul   = flag.Float64("backhaul", 10, "clustered profile: inter-cluster bandwidth slowdown vs MIPI")
		cluster    = flag.Int("cluster", 4, "clustered profile: chips per fast local cluster")
		planSpec   = flag.String("plan", "", "per-sync collective plan, e.g. prefill=ring,decode=tree (empty = uniform -topology)")
		autotune   = flag.Bool("autotune", false, "autotune the per-sync plan at each chip count and report it against the best uniform topology")
		session    = flag.Bool("autotune-session", false, "autotune prefill+decode jointly at each chip count (predict-then-verify over the full class x topology grid; -mode is ignored, -seqlen sets the prompt length)")
		topK       = flag.Int("topk", 0, "session autotuning: predicted-best candidates to verify exactly (0 = default)")
		fleetMode  = flag.Bool("fleet", false, "fleet-serving mode: sweep Poisson arrival rates over a chip-group fleet with continuous batching (one CSV row per rate; -mode/-seqlen/-topology flags are ignored)")
		rates      = flag.String("rates", "50,100,200,400,800,1600", "fleet: comma-separated offered arrival rates, requests per second")
		requests   = flag.Int("requests", 2000, "fleet: requests per trace")
		seed       = flag.Uint64("seed", 11, "fleet: trace RNG seed")
		groups     = flag.Int("groups", 1, "fleet: independent chip groups (each -chips wide)")
		maxBatch   = flag.Int("max-batch", 0, "fleet: decode micro-batch cap per group (0 = default 8; 1 = no batching)")
		fleetTune  = flag.Bool("fleet-autotune", false, "fleet: pick each group's collective plan with the session autotuner")
		fleetSlow  = flag.Bool("fleet-serial", false, "fleet: disable the parallel shape pre-pricing pass and price every step lazily inside the serial event loop (the reference path; output is byte-identical either way)")
		netlist    = flag.String("netlist", "", "measured per-edge wiring file (chips/class/link directives); selects the table network profile and overrides -network")
		faultSpec  = flag.String("fault", "", "fault injection spec, comma-separated: drop:CHIP | slow:FROM-TOxFACTOR | straggle:CHIPxFACTOR (e.g. drop:3,slow:0-1x10); degrades each swept system before pricing")
		replan     = flag.Bool("replan", false, "resilience study: autotune the pristine system at each chip count, apply -fault, and race the stale plan against re-planning on the degraded board (one CSV row per chip count)")
		faultAt    = flag.Float64("fault-at", 0, "fleet: fault time on the fleet clock in seconds (with -fleet -fault)")
		faultGroup = flag.Int("fault-group", 0, "fleet: chip group the -fault degrades")
		faultTune  = flag.Bool("fault-replan", false, "fleet: re-tune the degraded group's collective plan at fault time")
		memName    = flag.String("mem", "flat", "off-chip memory model: flat (legacy byte count) | dram (LPDDR5-backed tiled hierarchy)")
		memDepth   = flag.Int("mem-depth", 0, "dram: prefetch depth, weight tiles fetched ahead of compute (0 = preset)")
		memBanks   = flag.Int("mem-banks", 0, "dram: interleaved SRAM banks between prefetch and compute (0 = preset)")
		memBPC     = flag.Float64("mem-bpc", 0, "dram: channel payload bandwidth, bytes per cluster cycle (0 = preset)")
		memBurst   = flag.Int("mem-burst", 0, "dram: burst granule in bytes (0 = preset)")
		memSetup   = flag.Int("mem-burst-setup", -1, "dram: per-burst setup cycles (-1 = preset)")
		memPJ      = flag.Float64("mem-pj", 0, "dram: transfer energy in pJ per byte (0 = preset)")
		tileSpec   = flag.String("tile", "", "dram: weight-tile shape KxN for streamed GEMMs, e.g. 32x256 (empty = auto: largest tile fitting one stream-buffer slot)")
		ffnTile    = flag.String("ffn-tile", "", "dram: tile-shape override for the FFN layer family (empty = inherit -tile)")
		tiling     = flag.Bool("autotune-tiling", false, "dram: autotune per-family tile shapes at each chip count (predict-then-verify over the attention x FFN tiling grid) and report them against the best uniform tiling")
		workers    = flag.Int("workers", 0, "concurrent evaluations (0 = GOMAXPROCS)")
		cacheDir   = flag.String("cache-dir", "", "persistent result store directory: configurations simulated once are reloaded on every later run (default off; falls back to $MCUDIST_CACHE)")
		cacheStats = flag.Bool("cache-stats", false, "print memory-hit / disk-hit / exact-simulation counts and store size to stderr after the sweep")
		compactDir = flag.String("cache-compact", "", "after the sweep, compact the persistent store into this directory, keeping only current-format entries (requires an attached store)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write an allocation profile to this file at exit")
	)
	flag.Parse()
	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fatal(err)
		}
	}()
	evalpool.SetWorkers(*workers)
	store, err := openCache(*cacheDir)
	if err != nil {
		fatal(err)
	}
	defer printCacheStats(*cacheStats, store)
	defer func() {
		if err := compactCache(*compactDir, store); err != nil {
			fatal(err)
		}
	}()

	topo, err := hw.ParseTopology(*topoName)
	if err != nil {
		fatal(err)
	}
	network, err := buildNetwork(*netName, *cluster, *backhaul)
	if err != nil {
		fatal(err)
	}
	if *netlist != "" {
		nl, err := resilience.LoadNetlist(*netlist)
		if err != nil {
			fatal(err)
		}
		if network, err = nl.Network(); err != nil {
			fatal(err)
		}
	}
	var faults []resilience.Fault
	if *faultSpec != "" {
		if faults, err = resilience.ParseFaults(*faultSpec); err != nil {
			fatal(err)
		}
	}
	if *replan && len(faults) == 0 {
		fatal(fmt.Errorf("-replan needs a -fault spec to degrade the board with"))
	}
	plan, err := collective.ParsePlan(*planSpec)
	if err != nil {
		fatal(err)
	}
	if *autotune && !plan.IsZero() {
		fatal(fmt.Errorf("choose -plan or -autotune, not both"))
	}
	if *session && (*autotune || !plan.IsZero()) {
		fatal(fmt.Errorf("choose -autotune-session or -plan/-autotune, not both"))
	}
	mem, err := buildMem(*memName, *memDepth, *memBanks, *memBPC, *memBurst, *memSetup, *memPJ, *tileSpec, *ffnTile)
	if err != nil {
		fatal(err)
	}
	if *tiling {
		if !mem.Enabled() {
			fatal(fmt.Errorf("-autotune-tiling needs the hierarchical memory model (-mem dram)"))
		}
		if *tileSpec != "" || *ffnTile != "" {
			fatal(fmt.Errorf("choose -autotune-tiling or explicit -tile/-ffn-tile, not both"))
		}
		if *autotune || *session || !plan.IsZero() {
			fatal(fmt.Errorf("choose -autotune-tiling or -plan/-autotune/-autotune-session, not both"))
		}
	}
	if *replan && (*autotune || *session || *tiling || *fleetMode) {
		fatal(fmt.Errorf("-replan is its own study: drop -autotune/-autotune-session/-autotune-tiling/-fleet"))
	}
	if len(faults) > 0 && (*autotune || *session || *tiling) {
		fatal(fmt.Errorf("-fault combines with the plain sweep, -replan, or -fleet"))
	}

	var cfg model.Config
	switch strings.ToLower(*modelName) {
	case "tinyllama":
		cfg = model.TinyLlama42M()
	case "scaled":
		cfg = model.TinyLlamaScaled64()
	case "mobilebert":
		cfg = model.MobileBERT512()
	case "edgellama":
		cfg = model.EdgeLlama1B()
	default:
		fatal(fmt.Errorf("unknown model %q", *modelName))
	}
	mode := model.Autoregressive
	if strings.HasPrefix(strings.ToLower(*modeName), "p") {
		mode = model.Prompt
	}

	var chips []int
	for _, part := range strings.Split(*chipsList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			fatal(fmt.Errorf("bad chip count %q: %v", part, err))
		}
		chips = append(chips, n)
	}

	if *fleetMode {
		if len(chips) != 1 {
			fatal(fmt.Errorf("-fleet takes a single -chips value (group width), got %v", chips))
		}
		var fp *fleet.FaultPlan
		if len(faults) > 0 {
			fp = &fleet.FaultPlan{AtSeconds: *faultAt, Group: *faultGroup, Faults: faults, Replan: *faultTune}
		}
		fleetSweep(cfg, chips[0], mem, *rates, *requests, *seed, *groups, *maxBatch, *fleetTune, *fleetSlow, fp)
		return
	}
	wl := core.Workload{Model: cfg, Mode: mode, SeqLen: *seqLen}
	if *replan {
		replanSweep(topo, network, mem, cfg, *seqLen, *topK, faults, chips)
		return
	}
	if *session {
		sessionSweep(topo, network, mem, cfg, *seqLen, *topK, chips)
		return
	}
	if *autotune {
		autotuneSweep(topo, network, mem, wl, chips)
		return
	}
	if *tiling {
		tilingSweep(topo, network, mem, wl, *topK, chips)
		return
	}
	if len(faults) > 0 {
		faultSweep(topo, network, mem, plan, wl, faults, chips)
		return
	}
	base1 := core.DefaultSystem(1)
	base1.HW.Topology = topo
	base1.HW.Network = network
	base1.HW.Mem = mem
	base1.Options.SyncPlan = plan
	reports, err := evalpool.Eval(base1, wl, chips)
	if err != nil {
		fatal(err)
	}
	base := reports[0]

	t := report.NewTable("", "chips", "cycles", "ms", "speedup",
		"compute_cycles", "l2l1_cycles", "l3_cycles", "c2c_cycles",
		"energy_mj", "edp_js", "tier")
	for i, r := range reports {
		t.AddRow(chips[i], r.Cycles, r.Seconds*1e3, core.Speedup(base, r),
			r.Breakdown.Compute, r.Breakdown.L2L1, r.Breakdown.L3, r.Breakdown.C2C,
			r.Energy.Total()*1e3, r.EDP, r.Tier.String())
	}
	if err := t.CSV(os.Stdout); err != nil {
		fatal(err)
	}
}

// autotuneSweep emits one CSV row per chip count: the autotuned
// per-sync plan against the best uniform topology. The plan column
// joins assignments with "+" (the flag syntax's commas would split
// the CSV cell); ParsePlan accepts both separators, so the cell
// pastes straight back into -plan.
func autotuneSweep(topo hw.Topology, network hw.Network, mem hw.MemHierarchy, wl core.Workload, chips []int) {
	t := report.NewTable("", "chips", "plan", "cycles", "ms",
		"best_uniform", "uniform_cycles", "margin")
	for _, n := range chips {
		sys := core.DefaultSystem(n)
		sys.HW.Topology = topo
		sys.HW.Network = network
		sys.HW.Mem = mem
		res, err := explore.AutotunePlan(sys, wl)
		if err != nil {
			fatal(fmt.Errorf("%d chips: %w", n, err))
		}
		t.AddRow(n, strings.ReplaceAll(res.Plan.String(), ",", "+"),
			res.Report.Cycles, res.Report.Seconds*1e3,
			res.BestUniform.String(), res.UniformReport.Cycles, res.Margin)
	}
	if err := t.CSV(os.Stdout); err != nil {
		fatal(err)
	}
}

// sessionSweep emits one CSV row per chip count: the jointly autotuned
// prefill+decode plan, its exact and predicted session cost, the best
// uniform session it beats, and the predict-then-verify search's
// exact-simulation bill against the naive joint grid. The plan column
// uses the "+"-joined spelling and pastes straight back into -plan.
func sessionSweep(topo hw.Topology, network hw.Network, mem hw.MemHierarchy, cfg model.Config, seqLen, topK int, chips []int) {
	t := report.NewTable("", "chips", "plan", "cycles", "predicted_cycles",
		"best_uniform", "uniform_cycles", "margin", "rank_acc", "exact_sims", "grid_sims")
	for _, n := range chips {
		sys := core.DefaultSystem(n)
		sys.HW.Topology = topo
		sys.HW.Network = network
		sys.HW.Mem = mem
		res, err := explore.AutotuneSession(sys, cfg, explore.SessionOptions{TopK: topK, PromptSeqLen: seqLen})
		if err != nil {
			fatal(fmt.Errorf("%d chips: %w", n, err))
		}
		t.AddRow(n, strings.ReplaceAll(res.Plan.String(), ",", "+"),
			res.Cycles, res.PredictedCycles,
			res.BestUniform.String(), res.UniformCycles, res.Margin,
			res.RankAccuracy, res.ExactSims, res.GridSims)
	}
	if err := t.CSV(os.Stdout); err != nil {
		fatal(err)
	}
}

// tilingSweep emits one CSV row per chip count: the autotuned
// per-family weight-tile shapes under the DRAM hierarchy against the
// best uniform tiling. The attn/ffn cells use the KxN spelling and
// paste straight back into -tile / -ffn-tile.
func tilingSweep(topo hw.Topology, network hw.Network, mem hw.MemHierarchy, wl core.Workload, topK int, chips []int) {
	t := report.NewTable("", "chips", "attn_tile", "ffn_tile", "cycles", "ms",
		"best_uniform", "uniform_cycles", "margin", "rank_acc", "exact_sims", "grid_sims")
	for _, n := range chips {
		sys := core.DefaultSystem(n)
		sys.HW.Topology = topo
		sys.HW.Network = network
		sys.HW.Mem = mem
		res, err := explore.AutotuneTiling(sys, wl, explore.TilingOptions{TopK: topK})
		if err != nil {
			fatal(fmt.Errorf("%d chips: %w", n, err))
		}
		t.AddRow(n, res.Attn.String(), res.FFN.String(),
			res.Cycles, res.Report.Seconds*1e3,
			res.BestUniform.String(), res.UniformCycles, res.Margin,
			res.RankAccuracy, res.ExactSims, res.GridSims)
	}
	if err := t.CSV(os.Stdout); err != nil {
		fatal(err)
	}
}

// faultSweep emits one CSV row per chip count: the exact cost of the
// workload on the board degraded by the -fault spec. The chips column
// is the pristine count; degraded_chips what survives the faults.
func faultSweep(topo hw.Topology, network hw.Network, mem hw.MemHierarchy, plan collective.Plan, wl core.Workload, faults []resilience.Fault, chips []int) {
	t := report.NewTable("", "chips", "degraded_chips", "cycles", "ms",
		"compute_cycles", "l2l1_cycles", "l3_cycles", "c2c_cycles",
		"energy_mj", "edp_js", "tier")
	for _, n := range chips {
		sys := core.DefaultSystem(n)
		sys.HW.Topology = topo
		sys.HW.Network = network
		sys.HW.Mem = mem
		sys.Options.SyncPlan = plan
		deg, _, err := resilience.Degrade(sys, wl.Model, faults...)
		if err != nil {
			fatal(fmt.Errorf("%d chips: %w", n, err))
		}
		r, err := evalpool.Run(deg, wl)
		if err != nil {
			fatal(fmt.Errorf("%d chips: %w", n, err))
		}
		t.AddRow(n, deg.Chips, r.Cycles, r.Seconds*1e3,
			r.Breakdown.Compute, r.Breakdown.L2L1, r.Breakdown.L3, r.Breakdown.C2C,
			r.Energy.Total()*1e3, r.EDP, r.Tier.String())
	}
	if err := t.CSV(os.Stdout); err != nil {
		fatal(err)
	}
}

// replanSweep emits one CSV row per chip count: the resilience margin
// of the -fault scenario — the stale pristine-tuned plan priced on the
// degraded board against re-planning for it. Plan cells use the
// "+"-joined spelling and paste straight back into -plan.
func replanSweep(topo hw.Topology, network hw.Network, mem hw.MemHierarchy, cfg model.Config, seqLen, topK int, faults []resilience.Fault, chips []int) {
	t := report.NewTable("", "chips", "degraded_chips", "faults", "stale_plan", "static_cycles",
		"adopted_plan", "adopted_cycles", "replan_pays", "margin", "margin_joules", "exact_sims")
	for _, n := range chips {
		sys := core.DefaultSystem(n)
		sys.HW.Topology = topo
		sys.HW.Network = network
		sys.HW.Mem = mem
		study, err := resilience.ReplanStudy(sys, cfg, faults,
			explore.SessionOptions{TopK: topK, PromptSeqLen: seqLen})
		if err != nil {
			fatal(fmt.Errorf("%d chips: %w", n, err))
		}
		r := study.Replan
		static := 0.0
		if r.Static != nil {
			static = r.Static.Cycles
		}
		t.AddRow(n, study.DegradedChips,
			strings.ReplaceAll(resilience.FaultsString(study.Faults), ",", "+"),
			strings.ReplaceAll(study.Pristine.Plan.String(), ",", "+"), static,
			strings.ReplaceAll(r.AdoptedPlan.String(), ",", "+"), r.AdoptedCycles,
			r.ReplanPays, r.MarginCycles, r.MarginJoules, r.ExactSims)
	}
	if err := t.CSV(os.Stdout); err != nil {
		fatal(err)
	}
}

// fleetSweep emits one CSV row per offered arrival rate: the serving
// metrics of a chip-group fleet under a seeded Poisson trace. The plan
// column uses the "+"-joined spelling (empty when -fleet-autotune is
// off) and pastes straight back into -plan. A -fault plan adds its
// post-fault record in the trailing columns (zero rows when the fault
// never fired before the trace drained).
func fleetSweep(cfg model.Config, chipsPerGroup int, mem hw.MemHierarchy, rateList string, requests int, seed uint64, groups, maxBatch int, autotune, serial bool, fp *fleet.FaultPlan) {
	var rates []float64
	for _, part := range strings.Split(rateList, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			fatal(fmt.Errorf("bad rate %q: %v", part, err))
		}
		rates = append(rates, r)
	}
	// The CSV carries only the deterministic serving metrics — cache
	// counters go to stderr via -cache-stats — so a warm replay of the
	// same sweep is byte-identical (CI diffs cold vs warm).
	t := report.NewTable("", "offered_req_s", "achieved_req_s", "p50_s", "p99_s",
		"p50_ttft_s", "tok_s", "J_per_req", "mean_queue", "max_queue",
		"mean_batch", "util", "plan", "post_fault_chips", "post_fault_plan")
	sys := core.DefaultSystem(chipsPerGroup)
	sys.HW.Mem = mem
	for _, rate := range rates {
		res, err := fleet.Run(fleet.Options{
			Trace: fleet.PoissonTrace(fleet.TraceOptions{
				Requests: requests, RatePerSecond: rate, Seed: seed,
			}),
			System:     sys,
			Model:      cfg,
			Groups:     groups,
			MaxBatch:   maxBatch,
			Autotune:   autotune,
			NoPrePrice: serial,
			Fault:      fp,
		})
		if err != nil {
			fatal(fmt.Errorf("rate %g: %w", rate, err))
		}
		m := res.Metrics
		util := 0.0
		for _, u := range m.GroupUtilization {
			util += u
		}
		util /= float64(len(m.GroupUtilization))
		t.AddRow(rate, m.RequestsPerSecond, m.P50LatencySeconds, m.P99LatencySeconds,
			m.P50TTFTSeconds, m.TokensPerSecond, m.EnergyPerRequestJoules,
			m.MeanQueueDepth, m.MaxQueueDepth, m.MeanBatch, util,
			strings.ReplaceAll(res.Plan.String(), ",", "+"),
			res.PostFaultChips, strings.ReplaceAll(res.PostFaultPlan.String(), ",", "+"))
	}
	if err := t.CSV(os.Stdout); err != nil {
		fatal(err)
	}
}

// buildMem maps the -mem* / -tile flags to a memory hierarchy. The
// dram profile starts from the LPDDR5 preset and applies only the
// knobs the user pinned, so a bare "-mem dram" reproduces the
// library's hw.LPDDR5() numbers; under the default flat profile every
// knob must stay at its default (the flat model has none of them).
func buildMem(name string, depth, banks int, bpc float64, burst, setup int, pj float64, tile, ffnTile string) (hw.MemHierarchy, error) {
	profile, err := hw.ParseMemProfile(name)
	if err != nil {
		return hw.MemHierarchy{}, err
	}
	if profile == hw.MemFlat {
		if depth != 0 || banks != 0 || bpc != 0 || burst != 0 || setup != -1 || pj != 0 || tile != "" || ffnTile != "" {
			return hw.MemHierarchy{}, fmt.Errorf("the flat memory model has no knobs: drop the -mem-*/-tile flags or select -mem dram")
		}
		return hw.MemHierarchy{}, nil
	}
	m := hw.LPDDR5()
	if depth != 0 {
		m.PrefetchDepth = depth
	}
	if banks != 0 {
		m.SRAMBanks = banks
	}
	if bpc != 0 {
		m.DRAMBytesPerCycle = bpc
	}
	if burst != 0 {
		m.DRAMBurstBytes = burst
	}
	if setup != -1 {
		m.DRAMBurstSetupCycles = setup
	}
	if pj != 0 {
		m.DRAMPJPerByte = pj
	}
	ta, err := memsim.ParseTiling(tile)
	if err != nil {
		return hw.MemHierarchy{}, err
	}
	tf, err := memsim.ParseTiling(ffnTile)
	if err != nil {
		return hw.MemHierarchy{}, err
	}
	m.TileK, m.TileN = ta.K, ta.N
	m.FFNTileK, m.FFNTileN = tf.K, tf.N
	if err := m.Validate(); err != nil {
		return hw.MemHierarchy{}, err
	}
	return m, nil
}

// buildNetwork maps the -network / -cluster / -backhaul flags to a
// network description. The per-edge table profile has no CLI spelling
// (it needs a wiring list); construct it through the library API.
func buildNetwork(name string, clusterSize int, backhaul float64) (hw.Network, error) {
	profile, err := hw.ParseNetworkProfile(name)
	if err != nil {
		return hw.Network{}, err
	}
	switch profile {
	case hw.NetUniform:
		return hw.UniformNetwork(hw.MIPI()), nil
	case hw.NetClustered:
		if backhaul < 1 {
			return hw.Network{}, fmt.Errorf("backhaul slowdown %g must be >= 1", backhaul)
		}
		return hw.ClusteredNetwork(hw.MIPI(), hw.MIPI().Slower(backhaul), clusterSize), nil
	default:
		return hw.Network{}, fmt.Errorf("network profile %s has no flag spelling (use the mcudist.TableNetwork API)", profile)
	}
}

// openCache attaches the persistent result store to the evaluation
// pool: the -cache-dir flag, or the MCUDIST_CACHE environment variable
// when the flag is empty, or nothing (the cache stays off).
func openCache(dir string) (*resultstore.Store, error) {
	if dir == "" {
		dir = os.Getenv("MCUDIST_CACHE")
	}
	if dir == "" {
		return nil, nil
	}
	store, err := resultstore.Open(dir)
	if err != nil {
		return nil, err
	}
	evalpool.SetStore(store)
	return store, nil
}

// printCacheStats reports the cache-tier split on stderr (stdout
// carries the CSV), in a grep-friendly key=value line, so sims-saved
// claims are measurable from the CLI: a fully warm store shows
// exact_sims=0.
func printCacheStats(show bool, store *resultstore.Store) {
	if !show {
		return
	}
	st := evalpool.GetStats()
	fmt.Fprintf(os.Stderr, "cache-stats: memory_hits=%d disk_hits=%d exact_sims=%d",
		st.MemoryHits, st.DiskHits, st.Simulations)
	if store != nil {
		fmt.Fprintf(os.Stderr, " store_entries=%d store_bytes=%d store_dir=%s",
			store.Len(), store.SizeBytes(), store.Dir())
	} else {
		fmt.Fprint(os.Stderr, " store=off")
	}
	fmt.Fprintln(os.Stderr)
}

// compactCache rewrites the attached store into dir, dropping entries
// whose digest version the current binary would never read — the
// garbage a long-lived CI cache accumulates across digest bumps.
func compactCache(dir string, store *resultstore.Store) error {
	if dir == "" {
		return nil
	}
	if store == nil {
		return fmt.Errorf("-cache-compact needs an attached store (-cache-dir or $MCUDIST_CACHE)")
	}
	dst, err := store.CompactTo(dir)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "cache-compact: entries=%d bytes=%d dir=%s\n",
		dst.Len(), dst.SizeBytes(), dst.Dir())
	return dst.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
