// Command verify runs the functional-correctness suite at FULL model
// scale (the unit tests use miniatures for speed): it distributes the
// real TinyLlama-42M and MobileBERT geometries across chips, executes
// the partitioned networks numerically — float32 and quantized int8 —
// and compares against the single-device references.
//
// This is the release gate for the paper's premise: the partitioning
// computes the same function.
//
// Usage:
//
//	verify                # every full-scale check
//	verify -only smollm   # checks whose name contains the substring
//	                      # (CI smoke-runs the fastest check this way)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mcudist/internal/model"
	"mcudist/internal/numeric"
	"mcudist/internal/partition"
	"mcudist/internal/tensor"
)

type check struct {
	name string
	run  func() (string, error)
}

func main() {
	only := flag.String("only", "", "run only checks whose name contains this substring")
	flag.Parse()
	checks := []check{
		{"tinyllama float32, 8 chips, prompt S=8", tinyLlamaFloat},
		{"tinyllama float32, 8 chips, prefill+4 decode steps", tinyLlamaDecode},
		{"tinyllama int8, int32-reduce bit-exactness, 8 chips", tinyLlamaQuant},
		{"tinyllama int8/int16 exchange deviation, 8 chips", tinyLlamaInt8Reduce},
		{"mobilebert float32, 4 chips, S=32", mobileBERTFloat},
		{"smollm GQA float32, 3 chips, S=8", smolLMFloat},
	}
	failed, ran := 0, 0
	for _, c := range checks {
		if *only != "" && !strings.Contains(c.name, *only) {
			continue
		}
		ran++
		start := time.Now()
		detail, err := c.run()
		status := "ok"
		if err != nil {
			status = "FAIL: " + err.Error()
			failed++
		}
		fmt.Printf("%-55s %-6s %s (%.1fs)\n", c.name, status, detail, time.Since(start).Seconds())
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "verify: no check matches %q\n", *only)
		os.Exit(1)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "verify: %d check(s) failed\n", failed)
		os.Exit(1)
	}
	fmt.Printf("all %d full-scale checks passed\n", ran)
}

func tinyLlamaFloat() (string, error) {
	cfg := model.TinyLlama42M()
	w := model.NewWeights(cfg, 1)
	x := tensor.Random(8, cfg.E, 1, 2)
	ref := model.Forward(w, x, nil)
	p, err := partition.NewTensorParallel(cfg, 8)
	if err != nil {
		return "", err
	}
	e, err := numeric.NewExecutor(w, p)
	if err != nil {
		return "", err
	}
	d := tensor.MaxAbsDiff(ref, e.Forward(x))
	if d > 1e-4 {
		return "", fmt.Errorf("distributed differs by %g", d)
	}
	if e.Stats.Reduces != 2*cfg.L {
		return "", fmt.Errorf("%d reduces, want %d", e.Stats.Reduces, 2*cfg.L)
	}
	return fmt.Sprintf("maxdiff=%.2e syncs/block=2", d), nil
}

func tinyLlamaDecode() (string, error) {
	cfg := model.TinyLlama42M()
	w := model.NewWeights(cfg, 3)
	x := tensor.Random(8, cfg.E, 1, 4)

	cache := model.NewKVCache(cfg)
	p, _ := partition.NewTensorParallel(cfg, 8)
	e, err := numeric.NewExecutor(w, p)
	if err != nil {
		return "", err
	}
	model.Forward(w, x.SliceRows(0, 4), cache)
	e.Forward(x.SliceRows(0, 4))
	var worst float64
	for i := 4; i < 8; i++ {
		ref := model.ForwardStep(w, x.SliceRows(i, i+1), cache)
		got := e.ForwardStep(x.SliceRows(i, i+1))
		if d := tensor.MaxAbsDiff(ref, got); d > worst {
			worst = d
		}
	}
	if worst > 1e-4 {
		return "", fmt.Errorf("decode differs by %g", worst)
	}
	return fmt.Sprintf("maxdiff=%.2e over 4 steps", worst), nil
}

func tinyLlamaQuant() (string, error) {
	cfg := model.TinyLlama42M()
	w := model.NewWeights(cfg, 5)
	x := tensor.Random(4, cfg.E, 1, 6)
	cal := numeric.Calibrate(w, x)
	p1, _ := partition.NewTensorParallel(cfg, 1)
	ref, err := numeric.NewQuantEngine(w, p1, cal, numeric.ReduceInt32)
	if err != nil {
		return "", err
	}
	p8, _ := partition.NewTensorParallel(cfg, 8)
	e, err := numeric.NewQuantEngine(w, p8, cal, numeric.ReduceInt32)
	if err != nil {
		return "", err
	}
	d := tensor.MaxAbsDiff(ref.Forward(x), e.Forward(x))
	if d != 0 {
		return "", fmt.Errorf("int32-reduce not bit-exact: %g", d)
	}
	return "bit-exact", nil
}

func tinyLlamaInt8Reduce() (string, error) {
	cfg := model.TinyLlama42M()
	w := model.NewWeights(cfg, 7)
	x := tensor.Random(4, cfg.E, 1, 8)
	cal := numeric.Calibrate(w, x)
	p8, _ := partition.NewTensorParallel(cfg, 8)
	exact, err := numeric.NewQuantEngine(w, p8, cal, numeric.ReduceInt32)
	if err != nil {
		return "", err
	}
	refOut := exact.Forward(x)

	deviation := func(mode numeric.ReduceMode) (float64, error) {
		e, err := numeric.NewQuantEngine(w, p8, cal, mode)
		if err != nil {
			return 0, err
		}
		return tensor.MaxAbsDiff(refOut, e.Forward(x)), nil
	}
	d8, err := deviation(numeric.ReduceInt8)
	if err != nil {
		return "", err
	}
	d16, err := deviation(numeric.ReduceInt16)
	if err != nil {
		return "", err
	}
	var outMax float64
	for _, v := range refOut.Data {
		if a := float64(v); a > outMax {
			outMax = a
		} else if -a > outMax {
			outMax = -a
		}
	}
	r8, r16 := d8/outMax, d16/outMax
	// The int8 exchange lands partials on ~4 effective bits; the
	// int16 grid injects only rounding noise per reduce, but at
	// 8-block depth every requantization boundary the perturbation
	// crosses amplifies it to step scale — deviations stay a bounded
	// fraction of the output magnitude, shrinking with the exchange
	// width.
	if r16 >= r8 {
		return "", fmt.Errorf("int16 relative deviation %g not below int8 %g", r16, r8)
	}
	if r8 > 0.25 {
		return "", fmt.Errorf("int8-exchange relative deviation %g too large", r8)
	}
	if r16 > 0.15 {
		return "", fmt.Errorf("int16-exchange relative deviation %g too large", r16)
	}
	return fmt.Sprintf("rel-dev int8=%.1f%% int16=%.1f%% of |out|max (depth-amplified)", r8*100, r16*100), nil
}

func mobileBERTFloat() (string, error) {
	cfg := model.MobileBERT512()
	w := model.NewWeights(cfg, 9)
	x := tensor.Random(32, cfg.E, 1, 10)
	ref := model.Forward(w, x, nil)
	p, _ := partition.NewTensorParallel(cfg, 4)
	e, err := numeric.NewExecutor(w, p)
	if err != nil {
		return "", err
	}
	d := tensor.MaxAbsDiff(ref, e.Forward(x))
	if d > 1e-3 {
		return "", fmt.Errorf("encoder differs by %g", d)
	}
	return fmt.Sprintf("maxdiff=%.2e", d), nil
}

func smolLMFloat() (string, error) {
	cfg := model.SmolLM135M()
	cfg.L = 6 // six blocks keep the check quick; the math is per-block
	w := model.NewWeights(cfg, 11)
	x := tensor.Random(8, cfg.E, 1, 12)
	ref := model.Forward(w, x, nil)
	p, err := partition.NewTensorParallel(cfg, 3)
	if err != nil {
		return "", err
	}
	e, err := numeric.NewExecutor(w, p)
	if err != nil {
		return "", err
	}
	d := tensor.MaxAbsDiff(ref, e.Forward(x))
	if d > 1e-4 {
		return "", fmt.Errorf("GQA distributed differs by %g", d)
	}
	return fmt.Sprintf("maxdiff=%.2e", d), nil
}
