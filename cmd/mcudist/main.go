// Command mcudist simulates one transformer workload on a multi-MCU
// system and prints the runtime breakdown, energy, and placement
// report.
//
// Usage:
//
//	mcudist -model tinyllama -mode autoregressive -chips 8
//	mcudist -model mobilebert -chips 4 -strategy tensor
//	mcudist -model scaled -mode prompt -chips 64 -csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mcudist/internal/core"
	"mcudist/internal/deploy"
	"mcudist/internal/model"
	"mcudist/internal/partition"
	"mcudist/internal/perfsim"
	"mcudist/internal/report"
	"mcudist/internal/trace"
)

func main() {
	var (
		modelName = flag.String("model", "tinyllama", "model: tinyllama | scaled | mobilebert | smollm")
		modeName  = flag.String("mode", "autoregressive", "mode: autoregressive | prompt")
		chips     = flag.Int("chips", 8, "number of MCUs")
		seqLen    = flag.Int("seqlen", 0, "sequence length (0 = paper default)")
		stratName = flag.String("strategy", "tensor", "strategy: tensor | replicated | pipeline")
		csv       = flag.Bool("csv", false, "emit CSV instead of a report")
		traceOut  = flag.String("trace", "", "write a Chrome trace-event JSON to this file")
		gantt     = flag.Bool("gantt", false, "print a per-chip timeline chart")
	)
	flag.Parse()

	cfg, err := pickModel(*modelName)
	if err != nil {
		fatal(err)
	}
	mode, err := pickMode(*modeName)
	if err != nil {
		fatal(err)
	}
	strat, err := pickStrategy(*stratName)
	if err != nil {
		fatal(err)
	}

	sys := core.DefaultSystem(*chips)
	sys.Strategy = strat
	wl := core.Workload{Model: cfg, Mode: mode, SeqLen: *seqLen}
	rep, err := core.Run(sys, wl)
	if err != nil {
		fatal(err)
	}

	var tl *trace.Timeline
	if *traceOut != "" || *gantt {
		tl = &trace.Timeline{}
		if err := runForTrace(sys, wl, tl); err != nil {
			fatal(err)
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := tl.ChromeJSON(f, sys.HW.Chip.FreqHz); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d trace spans to %s\n", tl.Len(), *traceOut)
	}

	if *csv {
		t := report.NewTable("", "model", "mode", "chips", "strategy", "seqlen",
			"cycles", "ms", "energy_mj", "edp_js", "tier", "l3_bytes", "c2c_bytes")
		t.AddRow(cfg.Name, mode.String(), *chips, strat.String(), wl.ResolvedSeqLen(),
			rep.Cycles, rep.Seconds*1e3, rep.Energy.Total()*1e3, rep.EDP,
			rep.Tier.String(), rep.L3Bytes, rep.C2CBytes)
		if err := t.CSV(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Printf("%s, %s mode, S=%d on %d chip(s) [%s]\n",
		cfg.Name, mode, wl.ResolvedSeqLen(), *chips, strat)
	fmt.Printf("  runtime     %.0f cycles  (%.3f ms at 500 MHz)\n", rep.Cycles, rep.Seconds*1e3)
	fmt.Printf("  energy      %.4f mJ  (EDP %.4g J·s)\n", rep.Energy.Total()*1e3, rep.EDP)
	fmt.Printf("  placement   %s, %d syncs, %.1f KiB off-chip, %.1f KiB chip-to-chip\n",
		rep.Tier, rep.Syncs, float64(rep.L3Bytes)/1024, float64(rep.C2CBytes)/1024)
	fmt.Println("  runtime breakdown:")
	b := rep.Breakdown
	total := b.Total()
	for _, row := range []struct {
		name string
		v    float64
	}{
		{"computation", b.Compute},
		{"DMA L2<->L1", b.L2L1},
		{"DMA L3<->L2", b.L3},
		{"chip-to-chip", b.C2C},
	} {
		fmt.Printf("    %-12s %12.0f cycles %5.1f%%  %s\n",
			row.name, row.v, 100*row.v/total, report.Bar(row.v, total, 40))
	}
	fmt.Println("  energy breakdown:")
	fmt.Printf("    %s\n", rep.Energy)
	if *gantt {
		fmt.Println()
		if err := tl.Render(os.Stdout, 100); err != nil {
			fatal(err)
		}
	}
}

// runForTrace re-runs the simulation with a timeline attached (the
// report path stays allocation-light when tracing is off).
func runForTrace(sys core.System, wl core.Workload, tl *trace.Timeline) error {
	plan, err := buildPlanFor(sys, wl.Model)
	if err != nil {
		return err
	}
	d, err := deploy.New(plan, sys.HW, wl.Mode, wl.ResolvedSeqLen(), sys.Options)
	if err != nil {
		return err
	}
	_, err = perfsim.RunTraced(d, tl)
	return err
}

func buildPlanFor(sys core.System, cfg model.Config) (*partition.Plan, error) {
	switch sys.Strategy {
	case partition.TensorParallel:
		return partition.NewTensorParallel(cfg, sys.Chips)
	case partition.Replicated:
		return partition.NewReplicated(cfg, sys.Chips)
	case partition.Pipeline:
		return partition.NewPipeline(cfg, sys.Chips)
	default:
		return nil, fmt.Errorf("unknown strategy %v", sys.Strategy)
	}
}

func pickModel(name string) (model.Config, error) {
	switch strings.ToLower(name) {
	case "tinyllama":
		return model.TinyLlama42M(), nil
	case "scaled", "tinyllama64":
		return model.TinyLlamaScaled64(), nil
	case "mobilebert":
		return model.MobileBERT512(), nil
	case "smollm":
		return model.SmolLM135M(), nil
	default:
		return model.Config{}, fmt.Errorf("unknown model %q (tinyllama | scaled | mobilebert | smollm)", name)
	}
}

func pickMode(name string) (model.Mode, error) {
	switch strings.ToLower(name) {
	case "autoregressive", "ar":
		return model.Autoregressive, nil
	case "prompt":
		return model.Prompt, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (autoregressive | prompt)", name)
	}
}

func pickStrategy(name string) (partition.Strategy, error) {
	switch strings.ToLower(name) {
	case "tensor", "tensor-parallel", "ours":
		return partition.TensorParallel, nil
	case "replicated":
		return partition.Replicated, nil
	case "pipeline":
		return partition.Pipeline, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q (tensor | replicated | pipeline)", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcudist:", err)
	os.Exit(1)
}
