module mcudist

go 1.24
