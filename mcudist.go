// Package mcudist reproduces "Distributed Inference with Minimal
// Off-Chip Traffic for Transformers on Low-Power MCUs" (DATE 2025): a
// tensor-parallel partitioning scheme that runs small transformers
// across a network of Siracusa-like MCUs with no weight replication
// and two synchronizations per block, an event-driven multi-chip
// performance simulator, the paper's analytical energy model, and a
// functional distributed executor that proves the partitioned network
// computes exactly what the single-device network computes.
//
// Quick start:
//
//	rep, err := mcudist.Run(
//		mcudist.DefaultSystem(8),
//		mcudist.Workload{Model: mcudist.TinyLlama42M(), Mode: mcudist.Autoregressive},
//	)
//
// See the examples directory for runnable scenarios and cmd/paperrepro
// for regenerating every table and figure of the paper.
package mcudist

import (
	"io"

	"mcudist/internal/collective"
	"mcudist/internal/core"
	"mcudist/internal/deploy"
	"mcudist/internal/evalpool"
	"mcudist/internal/explore"
	"mcudist/internal/fleet"
	"mcudist/internal/hw"
	"mcudist/internal/memsim"
	"mcudist/internal/model"
	"mcudist/internal/numeric"
	"mcudist/internal/partition"
	"mcudist/internal/perfsim"
	"mcudist/internal/resilience"
	"mcudist/internal/resultstore"
	"mcudist/internal/tensor"
)

// Simulation API.
type (
	// System describes the multi-chip platform and strategy.
	System = core.System
	// Workload selects a model, an inference mode, and a sequence
	// length.
	Workload = core.Workload
	// Report is the consolidated result of one simulated forward.
	Report = core.Report
	// HWParams is the hardware description consumed by the simulator.
	HWParams = hw.Params
	// DeployOptions tunes the deployment planner.
	DeployOptions = deploy.Options
	// Tier is a chip's weight-placement regime.
	Tier = deploy.Tier
	// Topology selects the interconnect shape of the chip-to-chip
	// network (System.HW.Topology; TopologyTree is the paper's).
	Topology = hw.Topology
	// LinkClass is one class of chip-to-chip link: bandwidth, setup
	// cycles, and pJ/B.
	LinkClass = hw.LinkClass
	// Network assigns a LinkClass to every directed chip-to-chip edge
	// (System.HW.Network; the uniform MIPI network is the paper's).
	Network = hw.Network
	// NetworkProfile selects how a Network assigns classes to edges:
	// uniform, two-tier clustered, or an explicit per-edge table.
	NetworkProfile = hw.NetworkProfile
	// Edge is one directed chip pair of a per-edge link table.
	Edge = hw.Edge
	// SyncClass classifies one chip synchronization (prefill vs
	// decode, MHSA vs FFN, the replicated exchanges).
	SyncClass = collective.SyncClass
	// SyncPlan binds synchronization classes to interconnect
	// topologies (System.Options.SyncPlan); the zero value executes
	// every synchronization on the run topology. (The root name Plan
	// is the partition plan.)
	SyncPlan = collective.Plan
	// SyncClassStats is one class's share of a report's
	// synchronization and link accounting (Report.ByClass).
	SyncClassStats = perfsim.ClassStats
	// AutotuneResult is the outcome of a per-sync plan autotuning.
	AutotuneResult = explore.AutotuneResult
	// ClassChoice is one per-class decision of an autotuned plan.
	ClassChoice = explore.ClassChoice
	// SessionOptions tunes the joint prefill+decode autotuner (the
	// TopK pruning knob, the Exhaustive ground-truth mode, sequence
	// lengths).
	SessionOptions = explore.SessionOptions
	// SessionResult is the outcome of a joint-session plan autotuning:
	// the winning plan, its margin over the best uniform session, the
	// predictor's rank accuracy, and the exact-simulation bill.
	SessionResult = explore.SessionResult
	// SessionCandidate is one exactly-verified candidate of a session
	// autotuning: plan, predicted cycles, exact cycles.
	SessionCandidate = explore.SessionCandidate
	// SessionClassCost is one entry of the session predictor's
	// per-class cost vector (the measured cycle delta of one
	// class-to-topology binding).
	SessionClassCost = explore.ClassCost
	// Surrogate is the fitted per-class additive session cost model:
	// a handful of probe simulations, then microsecond predictions of
	// any joint plan's cycles, seconds, and joules. Predictions only
	// choose what to verify — every search decides on exact numbers.
	Surrogate = explore.Surrogate
	// VerifiedPlan is one exactly-evaluated joint plan next to the
	// surrogate's predictions for it.
	VerifiedPlan = explore.VerifiedPlan
	// PlanFrontierOptions tunes PlanFrontier and PlanBudgetFit (extra
	// networks, seed size, exhaustive ground-truth mode, sequence
	// lengths).
	PlanFrontierOptions = explore.PlanFrontierOptions
	// PlanFrontierResult is a surrogate-first plan frontier scan: every
	// verified (network, chips, plan) point, Pareto marks across the
	// union, and the exact-evaluation bill against the naive grid.
	PlanFrontierResult = explore.PlanFrontierResult
	// PlanPoint is one verified point of a plan frontier scan.
	PlanPoint = explore.PlanPoint
	// MemHierarchy describes the DRAM-backed memory hierarchy behind
	// the streamed weight tier (System.HW.Mem): the DRAM channel's
	// bandwidth / burst / prefetch-depth knobs, the SRAM bank count,
	// and the per-layer-family tile shapes. The zero value keeps the
	// paper's flat off-chip model, byte-identical.
	MemHierarchy = hw.MemHierarchy
	// MemProfile selects the off-chip memory model (flat | dram).
	MemProfile = hw.MemProfile
	// Tiling is one streamed-GEMM tile shape (K x N weight tile); the
	// zero value auto-sizes to the stream-buffer slot.
	Tiling = memsim.Tiling
	// TilingOptions tunes the per-family tiling autotuner (the TopK
	// pruning knob, the per-family Candidates cap, the Exhaustive
	// ground-truth mode).
	TilingOptions = explore.TilingOptions
	// TilingResult is the outcome of a per-family tiling autotuning:
	// the winning (attention, FFN) tile pair, its margin over the best
	// uniform tiling, the closed-form predictor's rank accuracy, and
	// the exact-simulation bill.
	TilingResult = explore.TilingResult
	// TilingCandidate is one exactly-verified tiling pair.
	TilingCandidate = explore.TilingCandidate
	// ResultStore is the persistent content-addressed result cache
	// (see OpenResultStore).
	ResultStore = resultstore.Store
	// EvalStats is the evaluation engine's cache-tier counters
	// (memory hits / disk hits / exact simulations).
	EvalStats = evalpool.Stats
)

// Fleet-serving API: event-driven serving of a request stream over
// chip groups with continuous batching of decode steps, every step
// priced through the cached cost oracle (see RunFleet).
type (
	// FleetRequest is one serving request: arrival time, prompt
	// length, and decode budget.
	FleetRequest = fleet.Request
	// FleetTrace is a request stream (see FleetPoissonTrace).
	FleetTrace = fleet.Trace
	// FleetTraceOptions parameterizes the seeded Poisson generator.
	FleetTraceOptions = fleet.TraceOptions
	// FleetOptions configures a fleet run: the trace, the per-group
	// system, group count, decode micro-batch cap, and autotuning.
	FleetOptions = fleet.Options
	// FleetMetrics is the deterministic serving-metric set: latency
	// percentiles, TTFT, tokens/sec, energy, queue depth over time,
	// and per-group utilization.
	FleetMetrics = fleet.Metrics
	// FleetQueueSample is one point of the queue-depth timeline.
	FleetQueueSample = fleet.QueueSample
	// FleetResult pairs the metrics with oracle accounting (distinct
	// step shapes, exact simulations) and the adopted collective plan.
	FleetResult = fleet.Result
	// FleetFaultPlan injects a mid-trace hardware fault into one chip
	// group (FleetOptions.Fault): at AtSeconds the group's system is
	// degraded by Faults and optionally re-planned.
	FleetFaultPlan = fleet.FaultPlan
)

// Resilience API: measured netlist import, deterministic fault
// injection, and the re-planning margin study (see Perturb, Degrade,
// ReplanStudy).
type (
	// Netlist is a measured per-edge board wiring: a chip count, named
	// link classes, and the directed edges they wire (see ParseNetlist,
	// LoadNetlist; Netlist.Network registers it as a table Network).
	Netlist = resilience.Netlist
	// Fault is one deterministic hardware fault: a dropped chip, a
	// slowed edge, or a compute straggler (see DropChip, SlowEdge,
	// StraggleChip, ParseFaults).
	Fault = resilience.Fault
	// FaultKind discriminates the fault families.
	FaultKind = resilience.FaultKind
	// ResilienceStudy is one resilience-margin measurement: the
	// pristine autotune, the fault set, and the stale-vs-replanned
	// comparison on the degraded board.
	ResilienceStudy = resilience.Study
	// SessionPlanCost is one exactly-evaluated session of a fixed
	// joint plan, as deployed (see EvalSessionPlan).
	SessionPlanCost = explore.SessionCost
	// ReplanResult compares serving a stale plan on a degraded system
	// against re-planning for it (see ReplanSession); MarginCycles is
	// the resilience margin.
	ReplanResult = explore.ReplanResult
)

// Fault kinds.
const (
	FaultDropChip = resilience.FaultDropChip
	FaultSlowEdge = resilience.FaultSlowEdge
	FaultStraggle = resilience.FaultStraggle
)

// Model description API.
type (
	// Config is a transformer model description.
	Config = model.Config
	// Mode is the inference mode.
	Mode = model.Mode
	// Strategy selects the distribution scheme.
	Strategy = partition.Strategy
	// Plan is a placement of a model onto chips.
	Plan = partition.Plan
	// Weights holds float parameters for functional runs.
	Weights = model.Weights
	// KVCache is the reference autoregressive cache.
	KVCache = model.KVCache
	// Mat is a row-major float32 matrix.
	Mat = tensor.Mat
	// Executor runs the distributed forward pass numerically.
	Executor = numeric.Executor
	// GenerationReport aggregates a prefill + decode session.
	GenerationReport = core.GenerationReport
	// ExplorePoint is one configuration of a design-space sweep.
	ExplorePoint = explore.Point
	// TopologyPoint is one (topology, chip count) configuration of a
	// topology-aware design-space sweep.
	TopologyPoint = explore.TopologyPoint
	// NetworkPoint is one (topology, network, chip count)
	// configuration of a network-aware design-space sweep.
	NetworkPoint = explore.NetworkPoint
)

// Inference modes.
const (
	Autoregressive = model.Autoregressive
	Prompt         = model.Prompt
)

// Distribution strategies.
const (
	TensorParallel = partition.TensorParallel
	Replicated     = partition.Replicated
	Pipeline       = partition.Pipeline
)

// Placement tiers.
const (
	TierStreamed       = deploy.TierStreamed
	TierResidentSingle = deploy.TierResidentSingle
	TierDoubleBuffered = deploy.TierDoubleBuffered
	TierResidentAll    = deploy.TierResidentAll
)

// Interconnect topologies.
const (
	// TopologyTree is the paper's hierarchical reduction tree in
	// groups of HW.GroupSize (the default).
	TopologyTree = hw.TopoTree
	// TopologyStar is the flat all-to-one reduction the paper
	// rejects for scalability.
	TopologyStar = hw.TopoStar
	// TopologyRing is the bandwidth-optimal ring all-reduce.
	TopologyRing = hw.TopoRing
	// TopologyFullyConnected is the all-to-all pairwise exchange.
	TopologyFullyConnected = hw.TopoFullyConnected
)

// Synchronization classes (the per-sync collective plan axis).
const (
	// SyncPrefillMHSA is the post-attention all-reduce of a
	// prompt-mode block.
	SyncPrefillMHSA = collective.PrefillMHSA
	// SyncPrefillFFN is the post-FFN all-reduce of a prompt-mode
	// block.
	SyncPrefillFFN = collective.PrefillFFN
	// SyncDecodeMHSA is the post-attention all-reduce of an
	// autoregressive step.
	SyncDecodeMHSA = collective.DecodeMHSA
	// SyncDecodeFFN is the post-FFN all-reduce of an autoregressive
	// step.
	SyncDecodeFFN = collective.DecodeFFN
	// SyncKVExchange is the replicated baseline's K/V context
	// exchange.
	SyncKVExchange = collective.KVExchange
	// SyncOutputExchange is the replicated baseline's output row
	// exchange.
	SyncOutputExchange = collective.OutputExchange
)

// Network profiles.
const (
	// NetworkUniform assigns one link class to every edge (the
	// paper's all-MIPI assumption, and the default).
	NetworkUniform = hw.NetUniform
	// NetworkClustered is the two-tier board: fast links inside
	// clusters, a slower backhaul between them.
	NetworkClustered = hw.NetClustered
	// NetworkTable resolves edges from an explicit per-edge table
	// (measured board wirings).
	NetworkTable = hw.NetTable
)

// Run plans, simulates, and evaluates one workload on one system.
// Like Sweep, it is served from the process-wide memoized cache: a
// configuration already evaluated by any Run, Sweep, or experiment is
// returned instantly, and the report may be shared — treat it as
// immutable.
func Run(sys System, wl Workload) (*Report, error) { return evalpool.Run(sys, wl) }

// Sweep runs a workload across several chip counts, evaluating the
// configurations concurrently on the shared worker pool (results are
// identical to the serial path and returned in chip-list order).
//
// Returned reports come from a process-wide memoized cache and may be
// shared with other Sweep, Frontier, or experiment calls: treat them
// as immutable. Long-lived processes sweeping many distinct
// configurations can release the cache with ResetCache.
func Sweep(base System, wl Workload, chips []int) ([]*Report, error) {
	return evalpool.Eval(base, wl, chips)
}

// SetWorkers bounds the concurrency of Sweep and every experiment
// (<= 0 restores the GOMAXPROCS default). The accumulated report
// cache is dropped.
func SetWorkers(n int) { evalpool.SetWorkers(n) }

// ResetCache drops every memoized report, releasing the memory a
// long-lived design-space exploration accumulates.
func ResetCache() { evalpool.ResetCache() }

// OpenResultStore opens (creating if needed) the persistent
// content-addressed result store in dir — an append-only log of
// simulation reports keyed by a versioned digest of the exact
// configuration, shared safely between concurrent processes. Attach
// it with SetResultStore to make every evaluation in this process
// consult and fill it.
func OpenResultStore(dir string) (*ResultStore, error) { return resultstore.Open(dir) }

// SetResultStore attaches a persistent result store as the evaluation
// engine's second cache tier: every memory miss is looked up in the
// store before simulating, and every fresh simulation is appended for
// later processes. nil detaches. The attachment survives SetWorkers.
func SetResultStore(s *ResultStore) { evalpool.SetStore(s) }

// CacheStats returns the evaluation engine's lifetime cache-tier
// counters — how many requests the memory memo answered, how many the
// persistent store answered, and how many exact simulations ran. A
// fully warm store shows Simulations unchanged across a whole rerun.
func CacheStats() EvalStats { return evalpool.GetStats() }

// Speedup returns base.Cycles / r.Cycles.
func Speedup(base, r *Report) float64 { return core.Speedup(base, r) }

// DefaultSystem returns the paper's Siracusa-based system with n
// chips and the tensor-parallel strategy.
func DefaultSystem(n int) System { return core.DefaultSystem(n) }

// Siracusa returns the paper's hardware parameter set.
func Siracusa() HWParams { return hw.Siracusa() }

// TinyLlama42M returns the paper's main decoder workload.
func TinyLlama42M() Config { return model.TinyLlama42M() }

// TinyLlamaScaled64 returns the 64-head scalability-study variant.
func TinyLlamaScaled64() Config { return model.TinyLlamaScaled64() }

// MobileBERT512 returns the paper's encoder workload.
func MobileBERT512() Config { return model.MobileBERT512() }

// SmolLM135M returns a grouped-query-attention SLM preset (the GQA
// extension of the partitioning scheme).
func SmolLM135M() Config { return model.SmolLM135M() }

// EdgeLlama1B returns the bigger-than-SRAM scenario tier: a
// billion-parameter Llama-3.2-1B-shaped decoder whose block weights
// never fit a chip's L2 at any chip count, so every deployment
// streams from off-chip — the regime the DRAM-backed memory
// hierarchy (MemHierarchy, LPDDR5) exists to price.
func EdgeLlama1B() Config { return model.EdgeLlama1B() }

// PaperSeqLen returns the sequence length the paper uses for a model
// and mode.
func PaperSeqLen(c Config, m Mode) int { return model.PaperSeqLen(c, m) }

// NewWeights builds deterministic synthetic weights for functional
// runs.
func NewWeights(cfg Config, seed int64) *Weights { return model.NewWeights(cfg, seed) }

// Forward runs the reference single-device prompt-mode forward pass.
func Forward(w *Weights, x *Mat, cache *KVCache) *Mat { return model.Forward(w, x, cache) }

// ForwardStep runs one reference autoregressive step.
func ForwardStep(w *Weights, x *Mat, cache *KVCache) *Mat { return model.ForwardStep(w, x, cache) }

// NewKVCache returns an empty reference cache.
func NewKVCache(cfg Config) *KVCache { return model.NewKVCache(cfg) }

// NewPlan builds the paper's tensor-parallel partition of cfg across
// n chips.
func NewPlan(cfg Config, n int) (*Plan, error) { return partition.NewTensorParallel(cfg, n) }

// NewExecutor distributes weights per the plan for functional runs.
func NewExecutor(w *Weights, p *Plan) (*Executor, error) { return numeric.NewExecutor(w, p) }

// RandomInput returns a deterministic random activation matrix
// (rows × cfg.E).
func RandomInput(cfg Config, rows int, seed int64) *Mat {
	return tensor.Random(rows, cfg.E, 1, seed)
}

// MaxAbsDiff returns the largest absolute elementwise difference
// between two matrices (for verifying distributed against reference).
func MaxAbsDiff(a, b *Mat) float64 { return tensor.MaxAbsDiff(a, b) }

// RunGeneration simulates a full interactive session: prompt prefill
// followed by genTokens autoregressive steps with growing context.
func RunGeneration(sys System, cfg Config, promptLen, genTokens int) (*GenerationReport, error) {
	return core.RunGeneration(sys, cfg, promptLen, genTokens)
}

// MinChipsOffChipFree returns the smallest chip count (≤ maxChips)
// that keeps off-chip traffic off the runtime critical path.
func MinChipsOffChipFree(base System, wl Workload, maxChips int) (*ExplorePoint, error) {
	return explore.MinChipsOffChipFree(base, wl, maxChips)
}

// Frontier evaluates the workload at the given chip counts and marks
// latency/energy Pareto-optimal configurations.
func Frontier(base System, wl Workload, chips []int) ([]ExplorePoint, error) {
	return explore.Frontier(base, wl, chips)
}

// LegalChipCounts returns the chip counts the tensor-parallel plan
// accepts for cfg, up to max.
func LegalChipCounts(cfg Config, max int) []int {
	return explore.LegalChipCounts(cfg, max)
}

// Topologies returns every supported interconnect shape, in enum
// order — the design-space exploration axis next to the chip count.
func Topologies() []Topology { return hw.Topologies() }

// ParseTopology maps a command-line spelling (tree | star | ring |
// fully-connected) to a Topology.
func ParseTopology(s string) (Topology, error) { return hw.ParseTopology(s) }

// BestTopology evaluates every interconnect shape on the base system
// and returns the lowest-latency one with its report.
func BestTopology(base System, wl Workload) (Topology, *Report, error) {
	return explore.BestTopology(base, wl)
}

// TopologyFrontier evaluates the workload over the full topology ×
// chip-count grid and marks the latency/energy Pareto front across
// the union.
func TopologyFrontier(base System, wl Workload, chips []int) ([]TopologyPoint, error) {
	return explore.TopologyFrontier(base, wl, chips)
}

// SyncClasses returns every synchronization class, in enum order —
// the axis a per-sync collective plan binds topologies on.
func SyncClasses() []SyncClass { return collective.Classes() }

// ParsePlan parses the command-line plan syntax, e.g.
// "prefill=ring,decode=tree" (group spellings prefill / decode / all
// next to the six exact class names; topologies in every spelling
// ParseTopology accepts). The empty string is the zero plan.
func ParsePlan(s string) (SyncPlan, error) { return collective.ParsePlan(s) }

// UniformPlan binds every synchronization class to one topology —
// behaviorally identical to selecting it as System.HW.Topology.
func UniformPlan(t Topology) SyncPlan { return collective.Uniform(t) }

// AutotunePlan exhaustively enumerates topologies over the
// synchronization classes the workload executes and returns the
// winning per-sync plan with its margin over the best uniform
// topology. Set the result on System.Options.SyncPlan to run it.
func AutotunePlan(base System, wl Workload) (*AutotuneResult, error) {
	return explore.AutotunePlan(base, wl)
}

// AutotuneSession tunes the collective plan of a whole generation
// session — one prompt prefill plus one decode step — jointly over
// the full class × topology grid, using a per-class cost predictor to
// rank the joint candidates and exact simulations only for the
// predicted top-K plus the uniform baselines (the winner is always
// chosen on exact cycles). DefaultSessionTopK candidates are verified
// when opts.TopK is zero; opts.Exhaustive enumerates the whole grid
// exactly instead. Set the returned Plan on System.Options.SyncPlan
// to deploy it.
func AutotuneSession(base System, cfg Config, opts SessionOptions) (*SessionResult, error) {
	return explore.AutotuneSession(base, cfg, opts)
}

// AutotuneSessionNetworks tunes one joint session plan per network
// profile on otherwise identical systems — the clustered boards'
// "plan per network" deployment question — returning results in input
// order.
func AutotuneSessionNetworks(base System, cfg Config, opts SessionOptions, nets []Network) ([]*SessionResult, error) {
	return explore.AutotuneSessionNetworks(base, cfg, opts, nets)
}

// DefaultSessionTopK is the number of predicted-best candidates
// AutotuneSession verifies exactly when SessionOptions.TopK is zero.
const DefaultSessionTopK = explore.DefaultSessionTopK

// FitSurrogate fits the additive per-class session cost model on the
// base system's chip count and network from one probe simulation per
// (phase, class, topology) — the reusable predictor behind
// AutotuneSession, PlanFrontier, and PlanBudgetFit, exposed for
// custom searches.
func FitSurrogate(base System, cfg Config, opts SessionOptions) (*Surrogate, error) {
	return explore.FitSurrogate(base, cfg, opts)
}

// PlanFrontier scans the joint plan grid across networks × chip
// counts surrogate-first: fit a cost model per cell, verify only the
// plans that could plausibly reach the latency/energy Pareto front,
// and mark the front across the union on exact numbers. On the pinned
// operating points the front is identical to exhaustive enumeration
// at a fraction of the evaluations.
func PlanFrontier(base System, cfg Config, chips []int, opts PlanFrontierOptions) (*PlanFrontierResult, error) {
	return explore.PlanFrontier(base, cfg, chips, opts)
}

// PlanBudgetFit returns the smallest legal chip count whose tuned
// session plan meets both budgets (either may be +Inf), deciding on
// exact numbers; the error names the binding constraint when no count
// fits.
func PlanBudgetFit(base System, cfg Config, maxChips int, maxSeconds, maxJoules float64, opts PlanFrontierOptions) (*PlanPoint, error) {
	return explore.PlanBudgetFit(base, cfg, maxChips, maxSeconds, maxJoules, opts)
}

// LPDDR5 returns a representative DRAM-backed memory hierarchy for
// the streamed weight tier: an LPDDR5-class channel (8 B/cycle, 512 B
// bursts, 96-cycle burst setup, prefetch depth 2, 60 pJ/B) feeding an
// 8-bank L1 arbiter. Set it on System.HW.Mem to replace the paper's
// flat off-chip pricing with tiled double-buffered streaming.
func LPDDR5() MemHierarchy { return hw.LPDDR5() }

// ParseMemProfile maps a command-line spelling (flat | dram, with the
// lpddr5 / hierarchy / tiled aliases) to a MemProfile.
func ParseMemProfile(s string) (MemProfile, error) { return hw.ParseMemProfile(s) }

// ParseTiling parses the command-line tile-shape syntax "KxN" (e.g.
// "256x128"); "auto" or the empty string is the auto-sized zero
// tiling.
func ParseTiling(s string) (Tiling, error) { return memsim.ParseTiling(s) }

// AutotuneTiling tunes the memory hierarchy's tile shapes per layer
// family — one tiling for the attention projections, one for the
// feed-forward matrices — for a streamed-tier deployment, with zero
// probe simulations: closed-form tile-plan makespans rank the
// candidate pairs and only the predicted top-K plus the best uniform
// tilings are verified exactly. Set HW.Mem.TileK/TileN and
// FFNTileK/FFNTileN from the returned pair to deploy the winner.
func AutotuneTiling(base System, wl Workload, opts TilingOptions) (*TilingResult, error) {
	return explore.AutotuneTiling(base, wl, opts)
}

// DefaultTilingTopK is the number of predicted-best tiling pairs
// AutotuneTiling verifies exactly when TilingOptions.TopK is zero.
const DefaultTilingTopK = explore.DefaultTilingTopK

// MIPI returns the paper's chip-to-chip link class: 0.5 GB/s, 256
// setup cycles, 100 pJ/B.
func MIPI() LinkClass { return hw.MIPI() }

// UniformNetwork wires every edge with one link class — the paper's
// network and the default (Siracusa() uses UniformNetwork(MIPI())).
func UniformNetwork(c LinkClass) Network { return hw.UniformNetwork(c) }

// ClusteredNetwork builds the two-tier board: consecutive clusters of
// clusterSize chips wired with local internally and backhaul between
// clusters.
func ClusteredNetwork(local, backhaul LinkClass, clusterSize int) Network {
	return hw.ClusteredNetwork(local, backhaul, clusterSize)
}

// TableNetwork registers an explicit per-edge link table (a measured
// board wiring) and returns the Network referencing it; schedules
// that route over unwired edges are rejected at lowering time.
func TableNetwork(edges map[Edge]LinkClass) (Network, error) { return hw.TableNetwork(edges) }

// ParseNetworkProfile maps a command-line spelling (uniform |
// clustered | table) to a NetworkProfile.
func ParseNetworkProfile(s string) (NetworkProfile, error) { return hw.ParseNetworkProfile(s) }

// NetworkFrontier evaluates the workload over the full topology ×
// network × chip-count grid and marks the latency/energy Pareto front
// across the union — the link layer as an exploration axis next to
// the shape and the chip count.
func NetworkFrontier(base System, wl Workload, chips []int, nets []Network) ([]NetworkPoint, error) {
	return explore.NetworkFrontier(base, wl, chips, nets)
}

// RunFleet serves a request trace on a fleet of chip groups with
// continuous batching of decode steps. Every step is priced through
// the cached cost oracle — the memory memo, the persistent result
// store (SetResultStore), then exact simulation — so a warm store
// replays any trace length with zero exact simulations. Metrics are a
// pure function of the trace, the system, and the options: identical
// across runs, worker counts, and cache states.
func RunFleet(opts FleetOptions) (*FleetResult, error) { return fleet.Run(opts) }

// FleetPoissonTrace generates a seeded Poisson request stream with
// mixed prompt lengths and decode budgets; equal options yield
// byte-identical traces.
func FleetPoissonTrace(opts FleetTraceOptions) FleetTrace { return fleet.PoissonTrace(opts) }

// TorusNetwork wires a dimX x dimY 2D torus: each chip links to its
// four row/column neighbours with wraparound, all edges one class.
func TorusNetwork(dimX, dimY int, c LinkClass) (Network, error) {
	return hw.TorusNetwork(dimX, dimY, c)
}

// DragonflyNetwork wires groups all-to-all internally with local links
// and connects each group pair by one global link between
// representative chips.
func DragonflyNetwork(groups, perGroup int, local, global LinkClass) (Network, error) {
	return hw.DragonflyNetwork(groups, perGroup, local, global)
}

// NetworkEdges materialises any Network into its explicit per-edge
// link table over n chips — the bridge from generated or profiled
// topologies to netlists and fault perturbation.
func NetworkEdges(net Network, n int) (map[Edge]LinkClass, error) {
	return hw.NetworkEdges(net, n)
}

// ParseNetlist reads the plain-text netlist format — `chips N`, named
// `class` lines, and `link from to class [bidi]` edges — into a
// Netlist.
func ParseNetlist(r io.Reader) (*Netlist, error) { return resilience.ParseNetlist(r) }

// LoadNetlist reads a netlist file from disk.
func LoadNetlist(path string) (*Netlist, error) { return resilience.LoadNetlist(path) }

// NetlistFromNetwork snapshots any Network over n chips into an
// explicit Netlist, inferring class names from link parameters.
func NetlistFromNetwork(net Network, n int) (*Netlist, error) {
	return resilience.NetlistFromNetwork(net, n)
}

// DropChip marks chip i failed: Perturb removes it and renumbers the
// survivors, re-routing pipeline chains through surviving paths.
func DropChip(i int) Fault { return resilience.DropChip(i) }

// SlowEdge degrades the from->to link by factor (>= 1): bandwidth
// divided, setup multiplied.
func SlowEdge(from, to int, factor float64) Fault { return resilience.SlowEdge(from, to, factor) }

// StraggleChip slows chip i's compute by factor (>= 1).
func StraggleChip(i int, factor float64) Fault { return resilience.StraggleChip(i, factor) }

// ParseFaults parses the CLI fault spelling — comma-separated
// `drop:3`, `slow:0-1x10`, `straggle:2x2` terms — into a fault list.
func ParseFaults(spec string) ([]Fault, error) { return resilience.ParseFaults(spec) }

// FaultsString renders a fault list back to its canonical CLI
// spelling; ParseFaults round-trips it.
func FaultsString(faults []Fault) string { return resilience.FaultsString(faults) }

// Perturb applies deterministic faults to a system, rewriting its
// per-edge link table (and compute throughput for stragglers) and
// returning the degraded system plus the old->new chip renumbering.
// The degraded network always gets a fresh table digest, so perturbed
// results never collide with pristine ones in the result store.
func Perturb(sys System, faults ...Fault) (System, []int, error) {
	return resilience.Perturb(sys, faults...)
}

// Degrade is Perturb followed by shrinking the deployment to the
// largest legal chip count the surviving board supports — the system
// actually served after a mid-trace fault.
func Degrade(sys System, cfg Config, faults ...Fault) (System, []int, error) {
	return resilience.Degrade(sys, cfg, faults...)
}

// EvalSessionPlan exactly evaluates one fixed joint collective plan as
// a deployed session (prefill plus the decode stream) on the given
// system.
func EvalSessionPlan(sys System, cfg Config, plan SyncPlan, opts SessionOptions) (*SessionPlanCost, error) {
	return explore.EvalSessionPlan(sys, cfg, plan, opts)
}

// ReplanSession compares serving a stale plan on a degraded system
// against re-planning for it, adopting whichever is faster;
// MarginCycles (>= 1, +Inf when the stale plan no longer routes) is
// the resilience margin — the factor the session pays for not
// re-planning.
func ReplanSession(degraded System, cfg Config, stale SyncPlan, opts SessionOptions) (*ReplanResult, error) {
	return explore.ReplanSession(degraded, cfg, stale, opts)
}

// ReplanStudy runs the full resilience measurement: autotune the
// pristine system, inject the faults, and compare stale-vs-replanned
// service on the degraded board.
func ReplanStudy(sys System, cfg Config, faults []Fault, opts SessionOptions) (*ResilienceStudy, error) {
	return resilience.ReplanStudy(sys, cfg, faults, opts)
}
