// MobileBERT encoder scenario: a 268-token utterance classified on
// 1–4 MCUs, the paper's encoder workload. The example shows where the
// super-linear crossover happens (4 chips: weights become
// double-bufferable in L2) and checks the result against a real-time
// interaction budget.
package main

import (
	"fmt"
	"log"

	"mcudist"
)

// A voice interaction feels instantaneous below roughly 100 ms.
const realTimeBudgetMS = 100.0

func main() {
	cfg := mcudist.MobileBERT512()
	wl := mcudist.Workload{Model: cfg, Mode: mcudist.Prompt} // S=268, paper value

	fmt.Printf("%s encoder, S=%d, %d blocks\n\n", cfg.Name, mcudist.PaperSeqLen(cfg, mcudist.Prompt), cfg.L)
	fmt.Printf("%-6s %12s %10s %10s %8s %s\n", "chips", "cycles", "ms", "energy mJ", "speedup", "tier")

	reports, err := mcudist.Sweep(mcudist.DefaultSystem(1), wl, []int{1, 2, 4})
	if err != nil {
		log.Fatal(err)
	}
	base := reports[0]
	for _, r := range reports {
		status := ""
		if r.Seconds*1e3 <= realTimeBudgetMS {
			status = "  <- meets real-time budget"
		}
		fmt.Printf("%-6d %12.0f %10.2f %10.3f %7.2fx %s%s\n",
			r.System.Chips, r.Cycles, r.Seconds*1e3, r.Energy.Total()*1e3,
			mcudist.Speedup(base, r), r.Tier, status)
	}

	four := reports[2]
	fmt.Printf("\nsuper-linear crossover: 4 chips reach %.2fx because the per-chip\n", mcudist.Speedup(base, four))
	fmt.Println("weight slice (384 KiB) double-buffers in L2, removing off-chip")
	fmt.Println("traffic from the critical path (paper: 4.7x).")

	// Functional check on a miniature encoder: bidirectional
	// attention partitions exactly like the decoder.
	mini := cfg
	mini.L = 2
	mini.E, mini.P, mini.F = 64, 64, 64
	weights := mcudist.NewWeights(mini, 3)
	x := mcudist.RandomInput(mini, 12, 4)
	ref := mcudist.Forward(weights, x, nil)
	plan, err := mcudist.NewPlan(mini, 4)
	if err != nil {
		log.Fatal(err)
	}
	exec, err := mcudist.NewExecutor(weights, plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnumeric check (4-chip encoder vs reference): max diff %.2e\n",
		mcudist.MaxAbsDiff(ref, exec.Forward(x)))
}
