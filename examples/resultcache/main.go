// Persistent result store: simulate once, answer forever. Every
// evaluation is keyed by a content-addressed digest of the exact
// (system, workload) configuration and appended to an on-disk log, so
// a design-space scan a later process repeats — same grid, new
// plotting script, CI rerun — is served from disk without a single
// simulation.
//
// The example runs the surrogate-first plan frontier twice against
// one store. The cold pass simulates and fills the store; the warm
// pass — the memory memo dropped to stand in for a fresh process —
// reproduces the identical Pareto front with zero exact simulations,
// and the cache-tier counters prove it. The frontier's reported
// evaluation bill is the same in both passes: the search cost is a
// property of the search, not of where the reports were stored.
//
// The CLIs expose the same store via -cache-dir (or $MCUDIST_CACHE)
// and report the tier split with -cache-stats.
package main

import (
	"fmt"
	"log"
	"os"

	"mcudist"
)

func main() {
	dir, err := os.MkdirTemp("", "mcudist-store-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	store, err := mcudist.OpenResultStore(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	mcudist.SetResultStore(store)

	cfg := mcudist.TinyLlama42M()
	base := mcudist.DefaultSystem(1)

	cold := scan("cold", base, cfg, store)

	// A fresh process would start with an empty memory memo; dropping
	// the memoized reports (the store attachment survives) stands in
	// for one.
	mcudist.ResetCache()
	warm := scan("warm", base, cfg, store)

	if len(cold) != len(warm) {
		log.Fatalf("front changed: %d cold points vs %d warm", len(cold), len(warm))
	}
	for i := range cold {
		if cold[i] != warm[i] {
			log.Fatalf("front point %d changed: %v cold vs %v warm", i, cold[i], warm[i])
		}
	}
	fmt.Println("\nwarm front is identical — every report came back from disk")
}

// scan runs the plan frontier at 4 and 8 chips, prints its Pareto
// front and what the evaluation engine's tiers did during the pass.
func scan(label string, base mcudist.System, cfg mcudist.Config, store *mcudist.ResultStore) [][2]float64 {
	before := mcudist.CacheStats()
	res, err := mcudist.PlanFrontier(base, cfg, []int{4, 8}, mcudist.PlanFrontierOptions{})
	if err != nil {
		log.Fatal(err)
	}
	after := mcudist.CacheStats()

	fmt.Printf("%s pass: %d candidate plans, %d exact evaluations (naive grid: %d)\n",
		label, res.Candidates, res.ExactSims, res.GridSims)
	fmt.Printf("  tiers: %d memory hits, %d disk hits, %d simulations; store: %d entries, %d bytes\n",
		after.MemoryHits-before.MemoryHits, after.DiskHits-before.DiskHits,
		after.Simulations-before.Simulations, store.Len(), store.SizeBytes())

	var front [][2]float64
	for _, p := range res.Points {
		if !p.Pareto {
			continue
		}
		front = append(front, [2]float64{p.Seconds, p.Joules})
		fmt.Printf("  front: %d chips  %-40s  %8.3f ms  %8.3f mJ\n",
			p.Chips, p.Plan, p.Seconds*1e3, p.Joules*1e3)
	}
	return front
}
