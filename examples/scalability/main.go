// Scalability study: the paper's 64-head TinyLlama distributed over
// 2–64 chips (Fig. 6). The example prints the speedup curves for both
// inference modes and annotates the placement-tier transitions that
// explain the super-linear region.
package main

import (
	"fmt"
	"log"
	"strings"

	"mcudist"
)

func main() {
	cfg := mcudist.TinyLlamaScaled64()
	chips := []int{1, 2, 4, 8, 16, 32, 64}

	fmt.Printf("scalability of %s (%d heads) on up to 64 chips\n\n", cfg.Name, cfg.H)

	ar, err := mcudist.Sweep(mcudist.DefaultSystem(1),
		mcudist.Workload{Model: cfg, Mode: mcudist.Autoregressive}, chips)
	if err != nil {
		log.Fatal(err)
	}
	pr, err := mcudist.Sweep(mcudist.DefaultSystem(1),
		mcudist.Workload{Model: cfg, Mode: mcudist.Prompt}, chips)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-6s %14s %14s %8s  %s\n", "chips", "AR speedup", "prompt speedup", "linear", "weight placement (AR)")
	for i, n := range chips {
		arS := mcudist.Speedup(ar[0], ar[i])
		prS := mcudist.Speedup(pr[0], pr[i])
		marker := ""
		if arS > float64(n) && n > 1 {
			marker = " super-linear"
		}
		fmt.Printf("%-6d %13.1fx %13.1fx %7d  %v%s\n", n, arS, prS, n, ar[i].Tier, marker)
	}

	fmt.Println("\nAR speedup curve:")
	for i, n := range chips {
		if n == 1 {
			continue
		}
		s := mcudist.Speedup(ar[0], ar[i])
		fmt.Printf("%4d chips |%s %.1fx\n", n, strings.Repeat("#", int(s/2+0.5)), s)
	}

	fmt.Println("\ntier transitions explain the curve: streamed (1-4) pays off-chip")
	fmt.Println("weight traffic every block; double-buffered (8-16) hides it;")
	fmt.Println("resident-all (32-64) eliminates it and drops energy, while the")
	fmt.Println("prompt curve flattens past 16 chips as computation stops dominating")
	fmt.Println("(paper Sec. V-C).")
}
