// Fleet serving: continuous batching over the cached step-cost
// oracle. A seeded Poisson request stream — mixed prompt lengths,
// mixed decode budgets — is served by chip groups that admit prompts
// and batch the decode steps of every active session into one priced
// model step. Steps are priced through the oracle (memory memo →
// persistent store → exact simulation), so the simulator prices only
// the distinct step shapes: serving 20k requests below costs a few
// dozen exact simulations cold and zero warm.
//
// The example sweeps offered load on an 8-chip group, prints the
// latency-vs-load curve with its saturation knee, then replays the
// heaviest point against a warm store to show the zero-simulation
// property end to end.
package main

import (
	"fmt"
	"log"
	"os"

	"mcudist"
)

func main() {
	dir, err := os.MkdirTemp("", "mcudist-fleet-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	store, err := mcudist.OpenResultStore(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	mcudist.SetResultStore(store)

	base := mcudist.FleetOptions{
		System: mcudist.DefaultSystem(8),
		Model:  mcudist.TinyLlama42M(),
	}

	fmt.Println("offered  achieved   p50      p99      tok/s    J/req   batch")
	knee := 0.0
	var heaviest mcudist.FleetOptions
	for _, rate := range []float64{10, 20, 40, 80, 160} {
		opts := base
		opts.Trace = mcudist.FleetPoissonTrace(mcudist.FleetTraceOptions{
			Requests: 5000, RatePerSecond: rate, Seed: 1,
		})
		res, err := mcudist.RunFleet(opts)
		if err != nil {
			log.Fatal(err)
		}
		m := res.Metrics
		saturated := m.RequestsPerSecond < 0.95*rate
		if !saturated {
			knee = rate
		}
		mark := ""
		if saturated {
			mark = "  (saturated)"
		}
		fmt.Printf("%6.0f  %8.1f  %6.3fs  %6.3fs  %7.1f  %6.4f  %5.2f%s\n",
			rate, m.RequestsPerSecond, m.P50LatencySeconds, m.P99LatencySeconds,
			m.TokensPerSecond, m.EnergyPerRequestJoules, m.MeanBatch, mark)
		heaviest = opts
	}
	fmt.Printf("\nsaturation knee: %.0f req/s\n", knee)

	// Replay the heaviest point warm: the sweep filled the store with
	// every step shape, so a fresh process (stood in for by dropping
	// the memory memo) prices the whole trace without one exact
	// simulation — and the metrics are byte-identical.
	cold, err := mcudist.RunFleet(heaviest)
	if err != nil {
		log.Fatal(err)
	}
	mcudist.ResetCache()
	warm, err := mcudist.RunFleet(heaviest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warm replay: %d distinct step shapes, %d exact simulations (sweep total: %d)\n",
		warm.DistinctShapes, warm.ExactSims, mcudist.CacheStats().Simulations)
	if fmt.Sprintf("%+v", warm.Metrics) != fmt.Sprintf("%+v", cold.Metrics) {
		log.Fatal("warm metrics diverged from cold")
	}
	fmt.Println("warm metrics are byte-identical to cold")
}
