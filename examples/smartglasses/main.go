// Smart-glasses assistant scenario — the workload the paper's
// introduction motivates: a contextual-AI assistant on an 8-MCU
// eyewear platform first ingests a user prompt (prompt mode), then
// streams out an answer token by token (autoregressive mode with the
// distributed KV cache).
//
// The example combines both layers of the repository: the numeric
// executor generates real (synthetic-weight) activations across the
// distributed KV cache, while the performance simulator reports what
// each phase costs on the hardware.
package main

import (
	"fmt"
	"log"

	"mcudist"
)

const (
	chips        = 8
	promptTokens = 16
	genTokens    = 8
)

func main() {
	cfg := mcudist.TinyLlama42M()

	fmt.Printf("smart-glasses assistant on %d Siracusa MCUs, model %s\n\n", chips, cfg.Name)

	// --- Simulated session: prefill + decode ---------------------
	session, err := mcudist.RunGeneration(mcudist.DefaultSystem(chips), cfg, promptTokens, genTokens)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prompt ingestion (%d tokens): %.2f ms, %.3f mJ, tier %s\n",
		promptTokens, session.Prefill.Seconds*1e3,
		session.Prefill.Energy.Total()*1e3, session.Prefill.Tier)
	fmt.Printf("time to first token:        %.2f ms\n", session.TimeToFirstTokenSeconds*1e3)
	fmt.Printf("decode rate:                %.0f tokens/s\n", session.TokensPerSecond)
	fmt.Printf("end-to-end interaction:     %.2f ms, %.3f mJ (%d tokens)\n\n",
		session.TotalSeconds*1e3, session.TotalEnergyJ*1e3, genTokens)

	// --- Functional trace of the same interaction ----------------
	// A miniature config keeps the numeric demo quick; the dataflow
	// (prefill fills the distributed caches, steps extend them) is
	// exactly the deployed one.
	mini := cfg
	mini.L = 2
	weights := mcudist.NewWeights(mini, 1)
	plan, err := mcudist.NewPlan(mini, chips)
	if err != nil {
		log.Fatal(err)
	}
	exec, err := mcudist.NewExecutor(weights, plan)
	if err != nil {
		log.Fatal(err)
	}
	refCache := mcudist.NewKVCache(mini)

	prompt := mcudist.RandomInput(mini, promptTokens, 2)
	exec.Forward(prompt)
	mcudist.Forward(weights, prompt, refCache)

	fmt.Println("generation trace (distributed vs reference, max abs diff):")
	last := prompt.SliceRows(promptTokens-1, promptTokens)
	for i := 0; i < genTokens; i++ {
		// Feed the previous output back in as the next "token
		// embedding" — a closed generation loop.
		got := exec.ForwardStep(last)
		want := mcudist.ForwardStep(weights, last, refCache)
		fmt.Printf("  token %2d: context=%3d  diff=%.2e\n", i+1, exec.CacheLen(), mcudist.MaxAbsDiff(want, got))
		last = got
	}
	fmt.Printf("distributed KV cache length: %d positions across %d chips\n",
		exec.CacheLen(), chips)
}
