// Quickstart: simulate the paper's headline configuration — the
// TinyLlama-42M decoder generating one token against a 128-token
// context on 1 and 8 Siracusa MCUs — and verify that the distributed
// computation matches the single-device reference numerically.
package main

import (
	"fmt"
	"log"

	"mcudist"
)

func main() {
	wl := mcudist.Workload{
		Model: mcudist.TinyLlama42M(),
		Mode:  mcudist.Autoregressive,
	}

	single, err := mcudist.Run(mcudist.DefaultSystem(1), wl)
	if err != nil {
		log.Fatal(err)
	}
	multi, err := mcudist.Run(mcudist.DefaultSystem(8), wl)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== performance (simulated) ==")
	fmt.Printf("1 chip : %10.0f cycles  %6.2f ms  %.3f mJ  tier=%s\n",
		single.Cycles, single.Seconds*1e3, single.Energy.Total()*1e3, single.Tier)
	fmt.Printf("8 chips: %10.0f cycles  %6.2f ms  %.3f mJ  tier=%s\n",
		multi.Cycles, multi.Seconds*1e3, multi.Energy.Total()*1e3, multi.Tier)
	fmt.Printf("speedup: %.1fx (super-linear: off-chip weight traffic left the critical path)\n",
		mcudist.Speedup(single, multi))
	fmt.Printf("EDP improvement: %.1fx\n\n", single.EDP/multi.EDP)

	// Functional check: the partitioned network computes what the
	// single-device network computes.
	fmt.Println("== correctness (numeric) ==")
	cfg := wl.Model
	cfg.L = 2 // two blocks keep the demo fast; the math is identical
	weights := mcudist.NewWeights(cfg, 42)
	x := mcudist.RandomInput(cfg, 4, 7)

	ref := mcudist.Forward(weights, x, nil)

	plan, err := mcudist.NewPlan(cfg, 8)
	if err != nil {
		log.Fatal(err)
	}
	exec, err := mcudist.NewExecutor(weights, plan)
	if err != nil {
		log.Fatal(err)
	}
	got := exec.Forward(x)

	fmt.Printf("max |distributed - reference| = %.2e over %d outputs\n",
		mcudist.MaxAbsDiff(ref, got), len(got.Data))
	fmt.Printf("syncs per block: %d (reduce+broadcast pairs: %d reduces, %d broadcasts over %d blocks)\n",
		exec.Stats.Reduces/cfg.L, exec.Stats.Reduces, exec.Stats.Broadcasts, cfg.L)
}
