// Per-sync collective plans: no single interconnect shape wins both
// inference regimes — the ring's payload/N chunks take the
// large-payload prompt prefill while the tree's few serialized setups
// keep the small-payload decode at scale. This example autotunes a
// plan per synchronization class, prints the per-class winner table,
// and compares the merged prefill+decode plan against the best
// run-wide topology on a full generation step.
//
// Two operating points: the paper's 64-chip scaled TinyLlama, where
// the regimes diverge and the hybrid wins, and SmolLM-135M at its
// grouped-query-attention cap (the GQA split is per KV group, so its
// 3 KV heads cap tensor parallelism at 3 chips).
package main

import (
	"fmt"
	"log"

	"mcudist"
)

func main() {
	autotunePoint("scaled-64h TinyLlama", mcudist.TinyLlamaScaled64(), 64)

	smol := mcudist.SmolLM135M()
	counts := mcudist.LegalChipCounts(smol, 64)
	autotunePoint("SmolLM-135M (GQA-capped)", smol, counts[len(counts)-1])
}

func autotunePoint(name string, cfg mcudist.Config, chips int) {
	sys := mcudist.DefaultSystem(chips)
	prompt := mcudist.Workload{Model: cfg, Mode: mcudist.Prompt}
	decode := mcudist.Workload{Model: cfg, Mode: mcudist.Autoregressive}

	pre, err := mcudist.AutotunePlan(sys, prompt)
	if err != nil {
		log.Fatal(err)
	}
	dec, err := mcudist.AutotunePlan(sys, decode)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s on %d chips — per-class winners\n", name, chips)
	fmt.Printf("  %-14s %s\n", "sync class", "topology")
	for _, res := range []*mcudist.AutotuneResult{pre, dec} {
		for _, cc := range res.PerClass {
			fmt.Printf("  %-14s %s\n", cc.Class, cc.Topology)
		}
		// The margin is a property of the whole (per-mode) plan, not
		// of any single class.
		fmt.Printf("  → plan margin %.3fx vs best uniform (%s)\n", res.Margin, res.BestUniform)
	}

	merged, err := pre.Plan.Merge(dec.Plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  merged plan: %s\n", merged)

	// One full generation step — a prompt prefill plus a decode step —
	// under the merged plan against the best run-wide topology.
	session := func(sys mcudist.System) float64 {
		p, err := mcudist.Run(sys, prompt)
		if err != nil {
			log.Fatal(err)
		}
		d, err := mcudist.Run(sys, decode)
		if err != nil {
			log.Fatal(err)
		}
		return p.Cycles + d.Cycles
	}
	planned := sys
	planned.Options.SyncPlan = merged
	plannedCycles := session(planned)

	bestUniform, bestCycles := mcudist.TopologyTree, 0.0
	for _, topo := range mcudist.Topologies() {
		uni := sys
		uni.HW.Topology = topo
		if c := session(uni); bestCycles == 0 || c < bestCycles {
			bestUniform, bestCycles = topo, c
		}
	}
	fmt.Printf("  prefill+decode: %.0f cycles planned vs %.0f on uniform %s (%.3fx)\n\n",
		plannedCycles, bestCycles, bestUniform, bestCycles/plannedCycles)
}
