// Per-sync collective plans, tuned for the whole generation session:
// no single interconnect shape wins both inference regimes — the
// ring's payload/N chunks take the large-payload prompt prefill while
// the tree's few serialized setups keep the small-payload decode at
// scale — so the session autotuner picks a topology per
// synchronization class, jointly across prefill and decode.
//
// The joint class × topology grid is 4^4 = 256 candidate plans (512
// exact simulations if enumerated naively), so AutotuneSession builds
// a per-class cost model from a handful of probe simulations, predicts
// every candidate's session cost additively, and verifies only the
// predicted best candidates exactly — the winner is always chosen on
// exact cycles. This example prints the per-class winner table, the
// predictor-vs-exact margin table for the verified candidates, and
// the session win over the best uniform topology.
//
// Two operating points: the paper's 64-chip scaled TinyLlama, where
// the regimes diverge and the hybrid wins, and SmolLM-135M at its
// grouped-query-attention cap (the GQA split is per KV group, so its
// 3 KV heads cap tensor parallelism at 3 chips).
package main

import (
	"fmt"
	"log"

	"mcudist"
)

func main() {
	autotunePoint("scaled-64h TinyLlama", mcudist.TinyLlamaScaled64(), 64)

	smol := mcudist.SmolLM135M()
	counts := mcudist.LegalChipCounts(smol, 64)
	autotunePoint("SmolLM-135M (GQA-capped)", smol, counts[len(counts)-1])
}

func autotunePoint(name string, cfg mcudist.Config, chips int) {
	sys := mcudist.DefaultSystem(chips)
	res, err := mcudist.AutotuneSession(sys, cfg, mcudist.SessionOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s on %d chips — joint session autotune (%d-candidate grid, %d exact sims vs %d exhaustive)\n",
		name, chips, res.Candidates, res.ExactSims, res.GridSims)
	fmt.Printf("  %-14s %s\n", "sync class", "topology")
	for _, cc := range res.PerClass {
		fmt.Printf("  %-14s %s\n", cc.Class, cc.Topology)
	}

	fmt.Printf("  predictor vs exact (verified candidates, rank accuracy %.2f):\n", res.RankAccuracy)
	fmt.Printf("    %-44s %14s %14s %8s\n", "plan", "predicted", "exact", "error")
	for _, v := range res.Verified {
		fmt.Printf("    %-44s %14.0f %14.0f %7.2f%%\n",
			v.Plan, v.PredictedCycles, v.Cycles, 100*(v.PredictedCycles-v.Cycles)/v.Cycles)
	}

	// One full generation step — a prompt prefill plus a decode step —
	// under the winning plan against the best run-wide topology.
	fmt.Printf("  prefill+decode: %.0f cycles planned (%s) vs %.0f on uniform %s (%.3fx)\n\n",
		res.Cycles, res.Plan, res.UniformCycles, res.BestUniform, res.Margin)
}
