// Custom-model sizing: the library as a design tool. Given a new
// small language model, find the smallest MCU network that runs every
// transformer block from on-chip memory (the paper's condition for
// super-linear latency and minimal off-chip energy), then compare the
// paper's tensor-parallel scheme against the two baseline strategies
// at that size.
package main

import (
	"fmt"
	"log"

	"mcudist"
)

func main() {
	// A hypothetical 110M-parameter assistant model: wider and deeper
	// than TinyLlama-42M, gated FFN, 16 heads.
	cfg := mcudist.TinyLlama42M()
	cfg.Name = "assistant-110m"
	cfg.E = 768
	cfg.P = 768
	cfg.H = 16
	cfg.F = 3072
	cfg.L = 10
	if err := cfg.Validate(); err != nil {
		log.Fatal(err)
	}

	wl := mcudist.Workload{Model: cfg, Mode: mcudist.Autoregressive, SeqLen: 256}
	fmt.Printf("model %s: %.1f MiB of int8 weights, %d blocks of %.1f MiB\n\n",
		cfg.Name, float64(cfg.TotalWeightBytes())/(1<<20), cfg.L,
		float64(cfg.BlockWeightBytes())/(1<<20))

	// Sizing: the design-space explorer answers the question
	// directly, then the Pareto frontier shows the trade space.
	best, err := mcudist.MinChipsOffChipFree(mcudist.DefaultSystem(1), wl, 16)
	if err != nil {
		log.Fatalf("no configuration up to 16 chips fits: %v", err)
	}
	offChipFree := best.Chips
	fmt.Printf("smallest off-chip-free system: %d chips (%.3f ms/token, %.3f mJ)\n\n",
		offChipFree, best.Report.Seconds*1e3, best.Report.Energy.Total()*1e3)

	points, err := mcudist.Frontier(mcudist.DefaultSystem(1), wl,
		mcudist.LegalChipCounts(cfg, 16))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-6s %10s %9s %10s %-16s %s\n", "chips", "ms/token", "speedup", "energy mJ", "placement", "pareto")
	base := points[0].Report
	for _, p := range points {
		mark := ""
		if p.Pareto {
			mark = "*"
		}
		fmt.Printf("%-6d %10.3f %8.1fx %10.3f %-16s %s\n",
			p.Chips, p.Report.Seconds*1e3, mcudist.Speedup(base, p.Report),
			p.Report.Energy.Total()*1e3, p.Report.Tier, mark)
	}

	// Strategy comparison at the sizing point.
	fmt.Printf("\nstrategy comparison at %d chips (single-token latency):\n", offChipFree)
	for _, strat := range []mcudist.Strategy{
		mcudist.TensorParallel, mcudist.Replicated, mcudist.Pipeline,
	} {
		n := offChipFree
		note := ""
		if strat == mcudist.Pipeline && n > cfg.L {
			n = cfg.L // a pipeline cannot have more stages than blocks
			note = fmt.Sprintf("  (capped at %d stages)", n)
		}
		sys := mcudist.DefaultSystem(n)
		sys.Strategy = strat
		rep, err := mcudist.Run(sys, wl)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-16s %8.3f ms  %8.3f mJ%s\n", strat, rep.Seconds*1e3, rep.Energy.Total()*1e3, note)
	}

	// And the functional guarantee for the custom geometry.
	mini := cfg
	mini.L = 2
	w := mcudist.NewWeights(mini, 11)
	x := mcudist.RandomInput(mini, 3, 12)
	plan, err := mcudist.NewPlan(mini, offChipFree)
	if err != nil {
		log.Fatal(err)
	}
	exec, err := mcudist.NewExecutor(w, plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnumeric check at %d chips: max diff vs reference %.2e\n",
		offChipFree, mcudist.MaxAbsDiff(mcudist.Forward(w, x, nil), exec.Forward(x)))
}
