package mcudist

// Benchmark harness: one benchmark per table and figure of the
// paper's evaluation section (see DESIGN.md for the experiment
// index), plus the ablations. Each iteration regenerates the full
// experiment through the deployment planner, the event-driven
// simulator, and the energy model; figure data is attached as custom
// benchmark metrics so `go test -bench` output doubles as the
// numeric record of the reproduction.

import (
	"fmt"
	"testing"

	"mcudist/internal/core"
	"mcudist/internal/evalpool"
	"mcudist/internal/eventsim"
	"mcudist/internal/experiments"
	"mcudist/internal/explore"
	"mcudist/internal/fleet"
	"mcudist/internal/hw"
	"mcudist/internal/interconnect"
	"mcudist/internal/memsim"
	"mcudist/internal/model"
	"mcudist/internal/resilience"
	"mcudist/internal/resultstore"
)

// benchSweep runs a chips sweep each iteration and reports the last
// iteration's speedups as metrics.
func benchSweep(b *testing.B, wl core.Workload, chips []int) {
	b.Helper()
	var last []*core.Report
	for i := 0; i < b.N; i++ {
		reports, err := core.Sweep(core.DefaultSystem(1), wl, chips)
		if err != nil {
			b.Fatal(err)
		}
		last = reports
	}
	base := last[0]
	for i, r := range last {
		b.ReportMetric(core.Speedup(base, r), fmt.Sprintf("speedup_%dchips", chips[i]))
	}
	b.ReportMetric(last[len(last)-1].Energy.Total()*1e3, "energy_mJ_max_chips")
}

// BenchmarkFig4aTinyLlamaAutoregressive regenerates Fig. 4(a):
// TinyLlama autoregressive runtime and speedup on 1–8 chips
// (paper: 26.1× at 8 chips).
func BenchmarkFig4aTinyLlamaAutoregressive(b *testing.B) {
	benchSweep(b, core.Workload{Model: model.TinyLlama42M(), Mode: model.Autoregressive},
		[]int{1, 2, 4, 8})
}

// BenchmarkFig4bTinyLlamaPrompt regenerates Fig. 4(b): prompt mode on
// 1–8 chips (paper: 9.9×).
func BenchmarkFig4bTinyLlamaPrompt(b *testing.B) {
	benchSweep(b, core.Workload{Model: model.TinyLlama42M(), Mode: model.Prompt},
		[]int{1, 2, 4, 8})
}

// BenchmarkFig4cMobileBERT regenerates Fig. 4(c): MobileBERT on 1–4
// chips (paper: 4.7×).
func BenchmarkFig4cMobileBERT(b *testing.B) {
	benchSweep(b, core.Workload{Model: model.MobileBERT512(), Mode: model.Prompt},
		[]int{1, 2, 4})
}

// BenchmarkFig5aEnergyAutoregressive regenerates Fig. 5(a): energy vs
// runtime for the original and scaled-up TinyLlama in autoregressive
// mode (paper: 0.64 mJ at 8 chips; energy drop at 32+ chips).
func BenchmarkFig5aEnergyAutoregressive(b *testing.B) {
	var res *experiments.Fig5Result
	for i := 0; i < b.N; i++ {
		evalpool.ResetCache()
		r, err := experiments.Fig5a()
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	p1, _ := res.Point(1, false)
	p8, _ := res.Point(8, false)
	s64, _ := res.Point(64, true)
	b.ReportMetric(p8.EnergyMJ, "energy_mJ_8chips")
	b.ReportMetric(p8.EnergyMJ/p1.EnergyMJ, "energy_ratio_8v1")
	b.ReportMetric(p1.EDP/p8.EDP, "edp_improvement_8v1")
	b.ReportMetric(s64.EnergyMJ, "energy_mJ_scaled64")
}

// BenchmarkFig5bEnergyPrompt regenerates Fig. 5(b).
func BenchmarkFig5bEnergyPrompt(b *testing.B) {
	var res *experiments.Fig5Result
	for i := 0; i < b.N; i++ {
		evalpool.ResetCache()
		r, err := experiments.Fig5b()
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	p1, _ := res.Point(1, false)
	p8, _ := res.Point(8, false)
	b.ReportMetric(p8.EnergyMJ, "energy_mJ_8chips")
	b.ReportMetric(p8.EnergyMJ/p1.EnergyMJ, "energy_ratio_8v1")
}

// BenchmarkFig5cEnergyMobileBERT regenerates Fig. 5(c).
func BenchmarkFig5cEnergyMobileBERT(b *testing.B) {
	var res *experiments.Fig5Result
	for i := 0; i < b.N; i++ {
		evalpool.ResetCache()
		r, err := experiments.Fig5c()
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	p1, _ := res.Point(1, false)
	p4, _ := res.Point(4, false)
	b.ReportMetric(p4.EnergyMJ, "energy_mJ_4chips")
	b.ReportMetric(p4.EnergyMJ/p1.EnergyMJ, "energy_ratio_4v1")
}

// BenchmarkFig6Scalability regenerates Fig. 6: scaled-up TinyLlama on
// 2–64 chips (paper: 60.1× autoregressive at 64; prompt flattens past
// 16).
func BenchmarkFig6Scalability(b *testing.B) {
	var res *experiments.Fig6Result
	for i := 0; i < b.N; i++ {
		evalpool.ResetCache()
		r, err := experiments.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	for _, row := range res.Rows {
		b.ReportMetric(row.AutoregressiveSpeedup, fmt.Sprintf("ar_speedup_%dchips", row.Chips))
	}
}

// BenchmarkTable1StrategyComparison regenerates Table I with measured
// numbers: our tensor-parallel scheme against weight-replicated and
// pipeline baselines on identical hardware.
func BenchmarkTable1StrategyComparison(b *testing.B) {
	var rows []experiments.Table1Row
	for i := 0; i < b.N; i++ {
		evalpool.ResetCache()
		r, err := experiments.Table1()
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	for _, r := range rows {
		switch r.Strategy.String() {
		case "tensor-parallel":
			b.ReportMetric(r.ARSpeedup, "ours_ar_speedup")
			b.ReportMetric(r.PromptSpeedup, "ours_prompt_speedup")
		case "replicated":
			b.ReportMetric(r.ARSpeedup, "replicated_ar_speedup")
		case "pipeline":
			b.ReportMetric(r.ARSpeedup, "pipeline_ar_speedup")
		}
	}
}

// BenchmarkHeadlineMetrics measures every abstract-level claim in one
// shot (26.1× / 0.64 mJ / 0.54 ms / 27.2× EDP / 9.9× / 4.7× / 60.1×).
func BenchmarkHeadlineMetrics(b *testing.B) {
	var h *experiments.Headline
	for i := 0; i < b.N; i++ {
		evalpool.ResetCache()
		res, err := experiments.RunHeadline()
		if err != nil {
			b.Fatal(err)
		}
		h = res
	}
	b.ReportMetric(h.ARSpeedup8, "ar_speedup_8chips")
	b.ReportMetric(h.AREnergy8MJ, "ar_energy_mJ_8chips")
	b.ReportMetric(h.ARLatency8MS, "ar_latency_ms_8chips")
	b.ReportMetric(h.AREDPImprovement, "edp_improvement")
	b.ReportMetric(h.PromptSpeedup8, "prompt_speedup_8chips")
	b.ReportMetric(h.MobileBERTSpeedup4, "mobilebert_speedup_4chips")
	b.ReportMetric(h.ScaledSpeedup64, "scaled_speedup_64chips")
}

// BenchmarkAblationReduceTopology compares hierarchical groups-of-4
// against flat all-to-one reduction (the Fig. 1 design choice).
func BenchmarkAblationReduceTopology(b *testing.B) {
	var rows []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		evalpool.ResetCache()
		r, err := experiments.AblationReduceTopology()
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	for _, r := range rows {
		if r.Chips == 64 {
			b.ReportMetric(r.Cycles, r.Label+"_cycles_64chips")
		}
	}
}

// BenchmarkAblationReducePrecision compares int8 against int32
// partial-output exchange.
func BenchmarkAblationReducePrecision(b *testing.B) {
	var rows []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		evalpool.ResetCache()
		r, err := experiments.AblationReducePrecision()
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.C2CBytes), r.Label+"_c2c_bytes")
	}
}

// BenchmarkAblationPrefetch compares overlapped against exposed
// double-buffer prefetch accounting.
func BenchmarkAblationPrefetch(b *testing.B) {
	var rows []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		evalpool.ResetCache()
		r, err := experiments.AblationPrefetch()
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	for _, r := range rows {
		b.ReportMetric(r.Cycles, r.Label+"_cycles")
	}
}

// BenchmarkAblationGroupSize sweeps the reduce-tree arity at 64 chips.
func BenchmarkAblationGroupSize(b *testing.B) {
	var rows []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		evalpool.ResetCache()
		r, err := experiments.AblationGroupSize()
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	for _, r := range rows {
		b.ReportMetric(r.Cycles, r.Label+"_cycles")
	}
}

// BenchmarkAblationActivationSpill isolates the streamed-tier
// activation-spill model.
func BenchmarkAblationActivationSpill(b *testing.B) {
	var rows []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		evalpool.ResetCache()
		r, err := experiments.AblationActivationSpill()
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	for _, r := range rows {
		if r.Chips == 1 {
			b.ReportMetric(r.Cycles, r.Label+"_cycles_1chip")
		}
	}
}

// BenchmarkExtensionFullGrid sweeps every chip count 1–8 (not just
// the paper's powers of two), exposing the off-chip-free crossover at
// 5 chips.
func BenchmarkExtensionFullGrid(b *testing.B) {
	var rows []experiments.GridRow
	for i := 0; i < b.N; i++ {
		evalpool.ResetCache()
		r, err := experiments.ExtensionFullGrid()
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	for _, r := range rows {
		if r.Chips == 5 || r.Chips == 8 {
			b.ReportMetric(r.Speedup, fmt.Sprintf("speedup_%dchips", r.Chips))
		}
	}
}

// BenchmarkExtensionSeqLen sweeps the prompt length, tracing the
// memory-bound to compute-bound transition.
func BenchmarkExtensionSeqLen(b *testing.B) {
	var rows []experiments.SeqLenRow
	for i := 0; i < b.N; i++ {
		evalpool.ResetCache()
		r, err := experiments.ExtensionSeqLenStudy()
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	for _, r := range rows {
		b.ReportMetric(r.Speedup8, fmt.Sprintf("speedup8_s%d", r.SeqLen))
	}
}

// BenchmarkExtensionGQA compares grouped-query attention against full
// multi-head attention on the same geometry.
func BenchmarkExtensionGQA(b *testing.B) {
	var rows []experiments.GQARow
	for i := 0; i < b.N; i++ {
		evalpool.ResetCache()
		r, err := experiments.ExtensionGQAStudy()
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.KVCacheBytes), r.Variant+"_kv_bytes")
	}
}

// BenchmarkExtensionBatching quantifies Table I's pipelining argument
// across batch sizes.
func BenchmarkExtensionBatching(b *testing.B) {
	var rows []experiments.BatchRow
	for i := 0; i < b.N; i++ {
		evalpool.ResetCache()
		r, err := experiments.ExtensionBatchingStudy()
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	for _, r := range rows {
		if r.Batch == 1 || r.Batch == 16 {
			b.ReportMetric(r.PipeThroughput, fmt.Sprintf("pipe_req_per_s_b%d", r.Batch))
			b.ReportMetric(r.OursThroughput, fmt.Sprintf("ours_req_per_s_b%d", r.Batch))
		}
	}
}

// BenchmarkAblationNetworkBackhaul runs the heterogeneous-link
// ablation (tree vs ring, uniform vs clusters-of-4 with a 10x-slower
// backhaul) — the schedule-lowering + per-class link hot path.
func BenchmarkAblationNetworkBackhaul(b *testing.B) {
	var rows []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		evalpool.ResetCache()
		r, err := experiments.AblationNetworkBackhaul(4, 10)
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	for _, r := range rows {
		if r.Chips == 64 {
			b.ReportMetric(r.Cycles, r.Label+"_cycles_64chips")
		}
	}
}

// BenchmarkAblationSyncPlan runs the per-sync collective plan
// ablation: prefill+decode sessions under the hybrid and the uniform
// baselines at 8 and 64 chips.
func BenchmarkAblationSyncPlan(b *testing.B) {
	var rows []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		evalpool.ResetCache()
		r, err := experiments.AblationSyncPlan()
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	for _, r := range rows {
		if r.Chips == 64 {
			b.ReportMetric(r.Cycles, r.Label+"_cycles_64chips")
		}
	}
}

// BenchmarkAutotunePlan measures the per-sync plan autotuner — the
// exact class×topology enumeration through the evalpool engine — at
// the 64-chip scaled operating point, both regimes, with a cold cache
// each iteration so the full grid is simulated.
func BenchmarkAutotunePlan(b *testing.B) {
	sys := core.DefaultSystem(64)
	prompt := core.Workload{Model: model.TinyLlamaScaled64(), Mode: model.Prompt}
	decode := core.Workload{Model: model.TinyLlamaScaled64(), Mode: model.Autoregressive}
	var pre, dec *explore.AutotuneResult
	for i := 0; i < b.N; i++ {
		evalpool.ResetCache()
		p, err := explore.AutotunePlan(sys, prompt)
		if err != nil {
			b.Fatal(err)
		}
		d, err := explore.AutotunePlan(sys, decode)
		if err != nil {
			b.Fatal(err)
		}
		pre, dec = p, d
	}
	b.ReportMetric(pre.Margin, "prompt_margin")
	b.ReportMetric(dec.Margin, "decode_margin")
	b.ReportMetric(float64(len(pre.PerClass)+len(dec.PerClass)), "classes_tuned")
}

// BenchmarkAutotuneSession measures the joint prefill+decode plan
// autotuner — per-class cost probes, additive prediction over the
// 256-candidate joint grid, exact verification of the predicted
// top-K — at the 64-chip scaled operating point, with a cold report
// cache each iteration. The sims_saved_x metric is the grid's
// exact-simulation bill over what the pruned search actually ran
// (>= 5x is pinned by TestAutotuneSessionPinned64).
func BenchmarkAutotuneSession(b *testing.B) {
	sys := core.DefaultSystem(64)
	cfg := model.TinyLlamaScaled64()
	var res *explore.SessionResult
	for i := 0; i < b.N; i++ {
		evalpool.ResetCache()
		r, err := explore.AutotuneSession(sys, cfg, explore.SessionOptions{})
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.ReportMetric(res.Margin, "session_margin")
	b.ReportMetric(res.RankAccuracy, "rank_accuracy")
	b.ReportMetric(float64(res.ExactSims), "exact_sims")
	b.ReportMetric(float64(res.GridSims), "grid_sims")
	b.ReportMetric(float64(res.GridSims)/float64(res.ExactSims), "sims_saved_x")
}

// BenchmarkScheduleIntern compares a fresh schedule lowering against
// the intern-cache hit path that perfsim now rides — the 64-chip ring
// on the clustered network, the heaviest stock lowering (4032 reduce
// hops resolved per edge, plus validation).
func BenchmarkScheduleIntern(b *testing.B) {
	p := hw.Siracusa()
	p.Topology = hw.TopoRing
	p.Network = hw.ClusteredNetwork(hw.MIPI(), hw.MIPI().Slower(10), 4)
	b.Run("lower", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s, err := interconnect.NewSchedule(p, 64)
			if err != nil {
				b.Fatal(err)
			}
			if err := s.Validate(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("interned", func(b *testing.B) {
		if _, err := interconnect.CachedSchedule(p, 64); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := interconnect.CachedSchedule(p, 64); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationStraggler measures the cost of one throttled chip.
func BenchmarkAblationStraggler(b *testing.B) {
	var rows []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		evalpool.ResetCache()
		r, err := experiments.AblationStraggler()
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	for _, r := range rows {
		b.ReportMetric(r.Cycles, r.Label+"_cycles")
	}
}

// BenchmarkGenerationSession measures a full prefill+decode session
// (16-token prompt, 16 generated tokens) on 8 chips.
func BenchmarkGenerationSession(b *testing.B) {
	sys := core.DefaultSystem(8)
	var g *core.GenerationReport
	for i := 0; i < b.N; i++ {
		rep, err := core.RunGeneration(sys, model.TinyLlama42M(), 16, 16)
		if err != nil {
			b.Fatal(err)
		}
		g = rep
	}
	b.ReportMetric(g.TimeToFirstTokenSeconds*1e3, "ttft_ms")
	b.ReportMetric(g.TokensPerSecond, "tokens_per_sec")
	b.ReportMetric(g.TotalEnergyJ*1e3, "session_energy_mJ")
}

// BenchmarkParallelSweep compares serial against pooled evaluation of
// the full Fig. 6 scalability sweep (scaled-up TinyLlama, both modes,
// 1–64 chips). Each pooled iteration uses a fresh pool so the cache
// cannot serve earlier iterations: the measured gap is the worker-pool
// speedup alone, and on a multi-core runner "pooled" must beat
// "serial" wall-clock per op.
func BenchmarkParallelSweep(b *testing.B) {
	cfg := model.TinyLlamaScaled64()
	chips := []int{1, 2, 4, 8, 16, 32, 64}
	arWL := core.Workload{Model: cfg, Mode: model.Autoregressive}
	prWL := core.Workload{Model: cfg, Mode: model.Prompt}

	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Sweep(core.DefaultSystem(1), arWL, chips); err != nil {
				b.Fatal(err)
			}
			if _, err := core.Sweep(core.DefaultSystem(1), prWL, chips); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pooled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := evalpool.New(0)
			ar, err := p.Eval(core.DefaultSystem(1), arWL, chips)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := p.Eval(core.DefaultSystem(1), prWL, chips); err != nil {
				b.Fatal(err)
			}
			if len(ar) != len(chips) {
				b.Fatal("short sweep")
			}
		}
	})
}

// BenchmarkSingleRun8Chips measures the cost of one full
// plan+simulate+evaluate cycle (simulator throughput).
func BenchmarkSingleRun8Chips(b *testing.B) {
	wl := core.Workload{Model: model.TinyLlama42M(), Mode: model.Autoregressive}
	sys := core.DefaultSystem(8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(sys, wl); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSingleRun64Chips stresses the simulator at the largest
// system size.
func BenchmarkSingleRun64Chips(b *testing.B) {
	wl := core.Workload{Model: model.TinyLlamaScaled64(), Mode: model.Prompt}
	sys := core.DefaultSystem(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(sys, wl); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkResultStoreWarm measures a store-backed warm replay: the
// paper's 1-8 chip TinyLlama sweep with the in-process memo dropped
// each iteration, so every report is deserialized from the persistent
// result store instead of simulated. The zero warm_sims metric is the
// point: a rerun of an already-simulated grid costs disk reads only.
func BenchmarkResultStoreWarm(b *testing.B) {
	store, err := resultstore.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	evalpool.SetStore(store)
	defer evalpool.SetStore(nil)
	wl := core.Workload{Model: model.TinyLlama42M(), Mode: model.Prompt}
	chips := []int{1, 2, 4, 8}
	evalpool.ResetCache()
	if _, err := evalpool.Eval(core.DefaultSystem(1), wl, chips); err != nil {
		b.Fatal(err)
	}
	simsBefore := evalpool.Simulations()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		evalpool.ResetCache()
		if _, err := evalpool.Eval(core.DefaultSystem(1), wl, chips); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if sims := evalpool.Simulations() - simsBefore; sims != 0 {
		b.Fatalf("warm replay ran %d simulations, want 0", sims)
	}
	b.ReportMetric(0, "warm_sims")
	b.ReportMetric(float64(store.Len()), "store_entries")
	b.ReportMetric(float64(store.SizeBytes()), "store_bytes")
}

// BenchmarkSurrogateFrontier measures the surrogate-first plan
// frontier scan at the pinned 8-chip point with a cold report cache
// each iteration — fit the additive cost model, predict all 256 joint
// plans, verify only the plausible-front band exactly. The
// sims_saved_x metric is the exhaustive grid's bill over what the
// scan ran (>= 5x is pinned by TestPlanFrontierMatchesExhaustive8).
func BenchmarkSurrogateFrontier(b *testing.B) {
	base := core.DefaultSystem(1)
	cfg := model.TinyLlama42M()
	var res *explore.PlanFrontierResult
	for i := 0; i < b.N; i++ {
		evalpool.ResetCache()
		r, err := explore.PlanFrontier(base, cfg, []int{8}, explore.PlanFrontierOptions{})
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	front := 0
	for _, p := range res.Points {
		if p.Pareto {
			front++
		}
	}
	b.ReportMetric(float64(front), "front_points")
	b.ReportMetric(float64(res.ExactSims), "exact_sims")
	b.ReportMetric(float64(res.GridSims), "grid_sims")
	b.ReportMetric(float64(res.GridSims)/float64(res.ExactSims), "sims_saved_x")
}

// BenchmarkEventsimEngine measures the discrete-event core's hot loop
// — schedule-and-drain through the intrusive value-typed event heap —
// at a cascade depth typical of a lowered schedule. The events_per_op
// metric makes ns/event comparable across runs; zero allocations per
// event is the pinned property (the heap holds events by value, so
// steady-state scheduling reuses the slice's capacity).
func BenchmarkEventsimEngine(b *testing.B) {
	const fanout, waves = 64, 32
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := eventsim.NewEngine()
		var wave func(at eventsim.Time, depth int)
		wave = func(at eventsim.Time, depth int) {
			if depth == waves {
				return
			}
			for j := 0; j < fanout; j++ {
				d := at + eventsim.Time(j+1)
				eng.At(d, func() {})
			}
			eng.At(at+fanout+1, func() { wave(at+fanout+1, depth+1) })
		}
		wave(0, 0)
		eng.Run()
	}
	b.ReportMetric(float64(fanout+1)*waves, "events_per_op")
}

// BenchmarkFleetServingWarm measures the fleet scheduler itself: a
// 20k-request trace on the 8-chip group with every step shape
// pre-priced in the memory memo, so the numbers are pure scheduling —
// admission, batching, completion bookkeeping, metric assembly — not
// simulation. The serving metrics of the last iteration ride along.
func BenchmarkFleetServingWarm(b *testing.B) {
	opts := fleet.Options{
		Trace: fleet.PoissonTrace(fleet.TraceOptions{
			Requests: 20_000, RatePerSecond: 40, Seed: 9,
		}),
		System: core.DefaultSystem(8),
		Model:  model.TinyLlama42M(),
	}
	if _, err := fleet.Run(opts); err != nil {
		b.Fatal(err) // prime the memo
	}
	simsBefore := evalpool.Simulations()
	var res *fleet.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := fleet.Run(opts)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.StopTimer()
	if sims := evalpool.Simulations() - simsBefore; sims != 0 {
		b.Fatalf("warm fleet replay ran %d simulations, want 0", sims)
	}
	b.ReportMetric(float64(len(opts.Trace.Requests)*b.N)/b.Elapsed().Seconds(), "requests_per_wallsec")
	b.ReportMetric(res.Metrics.TokensPerSecond, "sim_tok_s")
	b.ReportMetric(res.Metrics.P99LatencySeconds*1e3, "sim_p99_ms")
	b.ReportMetric(res.Metrics.MeanBatch, "mean_batch")
}

// BenchmarkMemsimTiledGEMM measures the closed-form tile planner on
// an EdgeLlama-1B FFN GEMM slice (K=2048, N=704 per chip at 8-way
// tensor parallelism): enumerating every candidate tiling and pricing
// each plan's double-buffered makespan. This is the inner loop of the
// zero-probe tiling predictor, so its cost bounds the autotuner's
// ranking phase. The tiling_range_x metric is the worst/best makespan
// ratio across candidates — the dynamic range the tiling knob
// actually controls.
func BenchmarkMemsimTiledGEMM(b *testing.B) {
	p := hw.Siracusa()
	p.Mem = hw.LPDDR5()
	ch := memsim.ChannelOf(p)
	g := memsim.GEMM{
		M: 1, K: 2048, N: 704,
		WeightElemBytes: 1, ActElemBytes: 1,
		ComputeCycles: 2048 * 704 / 64,
	}
	cands := memsim.CandidateTilings(ch, g)
	if len(cands) == 0 {
		b.Fatal("no candidate tilings")
	}
	best, worst := 0.0, 0.0
	for i := 0; i < b.N; i++ {
		best, worst = 0, 0
		for _, t := range memsim.CandidateTilings(ch, g) {
			plan, err := memsim.PlanGEMM(ch, g, t)
			if err != nil {
				b.Fatal(err)
			}
			m := plan.Makespan()
			if best == 0 || m < best {
				best = m
			}
			if m > worst {
				worst = m
			}
		}
	}
	b.ReportMetric(float64(len(cands)), "candidates")
	b.ReportMetric(worst/best, "tiling_range_x")
}

// BenchmarkAutotuneTiling measures the per-family tiling autotuner on
// the bigger-than-SRAM operating point — EdgeLlama-1B paged from
// LPDDR5 across 8 chips, decoding — with a cold report cache each
// iteration. The ranking phase needs zero probe simulations (the
// closed-form makespans are exact, pinned by
// TestExecTiledMatchesPlanMakespan), so exact_sims counts only the
// verified top-K pairs plus the two best uniform tilings; sims_saved_x
// is the full pair grid over that bill (>= 5x is pinned by
// TestMemTilingAutotune).
func BenchmarkAutotuneTiling(b *testing.B) {
	sys := core.DefaultSystem(8)
	sys.HW.Mem = hw.LPDDR5()
	wl := core.Workload{Model: model.EdgeLlama1B(), Mode: model.Autoregressive}
	var res *explore.TilingResult
	for i := 0; i < b.N; i++ {
		evalpool.ResetCache()
		r, err := explore.AutotuneTiling(sys, wl, explore.TilingOptions{Candidates: 6})
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.ReportMetric(res.Margin, "tiling_margin")
	b.ReportMetric(res.RankAccuracy, "rank_accuracy")
	b.ReportMetric(float64(res.ExactSims), "exact_sims")
	b.ReportMetric(float64(res.GridSims), "grid_sims")
	b.ReportMetric(float64(res.GridSims)/float64(res.ExactSims), "sims_saved_x")
}

// BenchmarkPerturbReplan measures the resilience tier's fault-to-plan
// latency: each iteration drops a chip out of the pristine 8-chip
// board and re-runs the joint session autotuner on the degraded
// wiring, against a cold in-process memo — the full cost a fleet pays
// at fault time before the re-planned collective plan is in hand. The
// margin metric is the latency factor a static fleet keeps paying by
// serving the stale plan instead.
func BenchmarkPerturbReplan(b *testing.B) {
	sys := core.DefaultSystem(8)
	cfg := model.TinyLlama42M()
	faults := []resilience.Fault{resilience.DropChip(3)}
	var study *resilience.Study
	for i := 0; i < b.N; i++ {
		evalpool.ResetCache()
		s, err := resilience.ReplanStudy(sys, cfg, faults, explore.SessionOptions{})
		if err != nil {
			b.Fatal(err)
		}
		study = s
	}
	b.ReportMetric(study.Replan.MarginCycles, "resilience_margin")
	b.ReportMetric(study.Replan.MarginJoules, "resilience_margin_joules")
	b.ReportMetric(float64(study.Replan.ExactSims), "replan_exact_sims")
	b.ReportMetric(float64(study.DegradedChips), "degraded_chips")
}
