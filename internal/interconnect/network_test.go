package interconnect

import (
	"strings"
	"testing"

	"mcudist/internal/hw"
)

// Every hop of a uniform-network schedule resolves to the one class,
// and Classes collapses to exactly that class — the invariant that
// keeps the uniform path byte-identical to the pre-refactor single
// hw.Link.
func TestAnnotateUniformSingleClass(t *testing.T) {
	for _, topo := range hw.Topologies() {
		sched, err := NewSchedule(netParams(topo, 4), 8)
		if err != nil {
			t.Fatalf("%s: %v", topo, err)
		}
		if len(sched.Classes) != 1 || sched.Classes[0] != hw.MIPI() {
			t.Errorf("%s: classes = %+v, want exactly [MIPI]", topo, sched.Classes)
		}
		for _, h := range append(append([]Hop{}, sched.Reduce...), sched.Broadcast...) {
			if h.Class != hw.MIPI() {
				t.Errorf("%s: hop %d->%d class %+v, want MIPI", topo, h.From, h.To, h.Class)
			}
		}
	}
}

// Under the two-tier clustered network, hops inside a cluster carry
// the local class and hops crossing a cluster boundary the backhaul
// class, for every topology shape.
func TestAnnotateClusteredSplitsClasses(t *testing.T) {
	local := hw.MIPI()
	back := hw.MIPI().Slower(10)
	for _, topo := range hw.Topologies() {
		p := netParams(topo, 4)
		p.Network = hw.ClusteredNetwork(local, back, 4)
		sched, err := NewSchedule(p, 16)
		if err != nil {
			t.Fatalf("%s: %v", topo, err)
		}
		if err := sched.Validate(); err != nil {
			t.Fatalf("%s: %v", topo, err)
		}
		sawBackhaul := false
		for _, h := range append(append([]Hop{}, sched.Reduce...), sched.Broadcast...) {
			want := local
			if h.From/4 != h.To/4 {
				want = back
				sawBackhaul = true
			}
			if h.Class != want {
				t.Errorf("%s: hop %d->%d class %+v, want %+v", topo, h.From, h.To, h.Class, want)
			}
		}
		if !sawBackhaul {
			t.Errorf("%s: 16 chips in clusters of 4 produced no backhaul hop", topo)
		}
		if len(sched.Classes) != 2 {
			t.Errorf("%s: classes = %+v, want [local backhaul]", topo, sched.Classes)
		}
	}
}

// A per-edge table that wires only the ring must lower the ring but
// reject any topology routing over unwired pairs — the "hops over
// undefined edges" rejection, surfaced at lowering time.
func TestTableNetworkRejectsUnwiredTopology(t *testing.T) {
	const n = 4
	edges := map[hw.Edge]hw.LinkClass{}
	for i := 0; i < n; i++ {
		edges[hw.Edge{From: i, To: (i + 1) % n}] = hw.MIPI()
	}
	ringOnly, err := hw.TableNetwork(edges)
	if err != nil {
		t.Fatal(err)
	}

	p := netParams(hw.TopoRing, 4)
	p.Network = ringOnly
	sched, err := NewSchedule(p, n)
	if err != nil {
		t.Fatalf("ring over a ring-wired table: %v", err)
	}
	if err := sched.Validate(); err != nil {
		t.Fatal(err)
	}

	p.Topology = hw.TopoFullyConnected
	if _, err := NewSchedule(p, n); err == nil {
		t.Fatal("fully-connected lowered over a ring-wired table")
	} else if !strings.Contains(err.Error(), "not wired") {
		t.Errorf("error does not name the unwired edge: %v", err)
	}

	// The tree reduces 1->0, 2->0, 3->0: only 1->0 is (implicitly
	// absent) — every tree hop except ring-adjacent ones is unwired.
	p.Topology = hw.TopoTree
	if _, err := NewSchedule(p, n); err == nil {
		t.Fatal("tree lowered over a ring-wired table")
	}
}

// Validate must reject a hop whose class was never resolved (the
// undefined-edge marker), independently of how the schedule was built.
func TestValidateRejectsUndefinedEdge(t *testing.T) {
	sched, err := NewSchedule(netParams(hw.TopoTree, 4), 8)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := *sched
	corrupt.Reduce = append([]Hop{}, sched.Reduce...)
	corrupt.Reduce[2].Class = hw.LinkClass{}
	if err := corrupt.Validate(); err == nil {
		t.Fatal("hop with an undefined link class validated")
	} else if !strings.Contains(err.Error(), "undefined edge") {
		t.Errorf("error does not name the undefined edge: %v", err)
	}
}
