package interconnect

import (
	"testing"

	"mcudist/internal/hw"
)

// netParams returns a Siracusa platform (uniform MIPI network) with
// the given topology and group size.
func netParams(topo hw.Topology, groupSize int) hw.Params {
	p := hw.Siracusa()
	p.Topology = topo
	p.GroupSize = groupSize
	return p
}

// Every topology's schedule must satisfy the structural invariants:
// each chip's partial folded into a finalizing chip exactly once per
// chunk, and the broadcast phase delivering every chunk to every chip
// in dependency order. This covers the satellite invariants "every
// chip's partial reaches the root exactly once" and "broadcast
// reaches all chips" for all four shapes.
func TestScheduleInvariantsAllTopologies(t *testing.T) {
	for _, topo := range hw.Topologies() {
		for _, n := range []int{1, 2, 3, 4, 5, 8, 13, 16, 33, 64} {
			sched, err := NewSchedule(netParams(topo, 4), n)
			if err != nil {
				t.Fatalf("%s n=%d: %v", topo, n, err)
			}
			if err := sched.Validate(); err != nil {
				t.Errorf("%s n=%d: %v", topo, n, err)
			}
			if sched.N != n || sched.Topology != topo {
				t.Errorf("%s n=%d: schedule reports n=%d topo=%s", topo, n, sched.N, sched.Topology)
			}
		}
	}
}

// The default tree schedule must be exactly the tree's hop lists —
// the simulator path the golden tests pin byte-identical.
func TestTreeScheduleMatchesTree(t *testing.T) {
	sched, err := NewSchedule(netParams(hw.TopoTree, 4), 8)
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := BuildTree(8, 4)
	if sched.Tree == nil || sched.Root != tr.Root || sched.Depth != tr.Depth() {
		t.Fatalf("tree schedule root/depth = %d/%d, want %d/%d",
			sched.Root, sched.Depth, tr.Root, tr.Depth())
	}
	if len(sched.Reduce) != len(tr.ReduceHops()) || len(sched.Broadcast) != len(tr.BroadcastHops()) {
		t.Fatal("tree schedule hop counts differ from the tree's")
	}
	for i, h := range sched.Reduce {
		want := tr.ReduceHops()[i]
		if h.From != want.From || h.To != want.To || h.Frac != 1 || !h.FromAccumulated || h.Chunk != 0 {
			t.Fatalf("reduce hop %d = %+v, want whole-payload %d->%d", i, h, want.From, want.To)
		}
	}
	if len(sched.Final) != 1 || sched.Final[0].Chip != tr.Root || sched.Final[0].Frac != 1 {
		t.Fatalf("tree finalize = %+v, want full root work on %d", sched.Final, tr.Root)
	}
}

// The star is the explicit spelling of the old GroupSize >= n flat
// tree: one group, every chip a direct child of the root.
func TestStarScheduleIsFlat(t *testing.T) {
	for _, n := range []int{1, 2, 7, 16} {
		sched, err := NewSchedule(netParams(hw.TopoStar, 4), n) // group size ignored
		if err != nil {
			t.Fatal(err)
		}
		wantDepth := 1
		if n == 1 {
			wantDepth = 0
		}
		if sched.Depth != wantDepth {
			t.Errorf("star n=%d depth = %d, want %d", n, sched.Depth, wantDepth)
		}
		for i, h := range sched.Reduce {
			if h.To != sched.Root || h.From != i+1 {
				t.Errorf("star n=%d reduce hop %d = %+v, want %d->root", n, i, h, i+1)
			}
		}
	}
}

// Ring: 2(N-1) steps of N chunk hops each, chip i owning chunk
// (i+1) mod N after the reduce-scatter, root work sharded 1/N.
func TestRingScheduleShape(t *testing.T) {
	const n = 8
	sched, err := NewSchedule(netParams(hw.TopoRing, 4), n)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sched.Reduce); got != n*(n-1) {
		t.Fatalf("ring reduce hops = %d, want %d", got, n*(n-1))
	}
	if got := len(sched.Broadcast); got != n*(n-1) {
		t.Fatalf("ring bcast hops = %d, want %d", got, n*(n-1))
	}
	if sched.Chunks != n || sched.Depth != n-1 {
		t.Fatalf("ring chunks/depth = %d/%d, want %d/%d", sched.Chunks, sched.Depth, n, n-1)
	}
	var fracSum float64
	for _, f := range sched.Final {
		fracSum += f.Frac
		if f.Chunk != (f.Chip+1)%n {
			t.Errorf("chip %d finalizes chunk %d, want %d", f.Chip, f.Chunk, (f.Chip+1)%n)
		}
	}
	if fracSum < 0.999 || fracSum > 1.001 {
		t.Errorf("ring root-work shares sum to %g, want 1", fracSum)
	}
	for _, h := range append(append([]Hop{}, sched.Reduce...), sched.Broadcast...) {
		if h.To != (h.From+1)%n {
			t.Errorf("ring hop %d->%d leaves the ring", h.From, h.To)
		}
	}
}

// Fully connected: N(N-1) direct sends of the original partial, no
// broadcast, root work replicated on every chip.
func TestFullyConnectedScheduleShape(t *testing.T) {
	const n = 5
	sched, err := NewSchedule(netParams(hw.TopoFullyConnected, 4), n)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sched.Reduce); got != n*(n-1) {
		t.Fatalf("fc reduce hops = %d, want %d", got, n*(n-1))
	}
	if len(sched.Broadcast) != 0 {
		t.Fatal("fc must not broadcast")
	}
	if len(sched.Final) != n {
		t.Fatalf("fc finalizes on %d chips, want %d", len(sched.Final), n)
	}
	for _, h := range sched.Reduce {
		if h.FromAccumulated {
			t.Fatalf("fc hop %d->%d must send the original partial", h.From, h.To)
		}
	}
}

// Collective traffic per sync: (N-1)(reduce+bcast) for tree, star,
// and (up to chunk rounding) ring; N(N-1) * reduce for the
// fully-connected exchange.
func TestCollectiveBytes(t *testing.T) {
	const n, r, b = 8, 8192, 4096
	for _, tc := range []struct {
		topo hw.Topology
		want int64
	}{
		{hw.TopoTree, (n - 1) * (r + b)},
		{hw.TopoStar, (n - 1) * (r + b)},
		{hw.TopoRing, (n - 1) * (r + b)},
		{hw.TopoFullyConnected, n * (n - 1) * r},
	} {
		sched, err := NewSchedule(netParams(tc.topo, 4), n)
		if err != nil {
			t.Fatal(err)
		}
		got := sched.CollectiveBytes(r, b)
		// The ring rounds per-chunk payloads; r and b divide evenly
		// by n here, so all four are exact.
		if got != tc.want {
			t.Errorf("%s collective bytes = %d, want %d", tc.topo, got, tc.want)
		}
	}
}

func TestScalePayload(t *testing.T) {
	if got := ScalePayload(12345, 1); got != 12345 {
		t.Errorf("whole-payload scaling changed bytes: %d", got)
	}
	if got := ScalePayload(1000, 0.25); got != 250 {
		t.Errorf("quarter share = %d, want 250", got)
	}
	if got := ScalePayload(0, 0.5); got != 0 {
		t.Errorf("zero payload scaled to %d", got)
	}
}

func TestNewScheduleErrors(t *testing.T) {
	if _, err := NewSchedule(netParams(hw.TopoTree, 4), 0); err == nil {
		t.Error("zero chips accepted")
	}
	if _, err := NewSchedule(netParams(hw.TopoTree, 1), 8); err == nil {
		t.Error("group size 1 accepted for the tree")
	}
	if _, err := NewSchedule(netParams(hw.Topology(99), 4), 8); err == nil {
		t.Error("unknown topology accepted")
	}
	// Star and ring do not consult the group size.
	if _, err := NewSchedule(netParams(hw.TopoStar, 0), 8); err != nil {
		t.Errorf("star rejected irrelevant group size: %v", err)
	}
	if _, err := NewSchedule(netParams(hw.TopoRing, 0), 8); err != nil {
		t.Errorf("ring rejected irrelevant group size: %v", err)
	}
}

// BuildTree edge cases the tentpole refactor must preserve: single
// chip, chip counts that are not multiples of the group size, and the
// depth recurrence.
func TestBuildTreeEdgeCases(t *testing.T) {
	cases := []struct {
		n, g, depth int
	}{
		{1, 4, 0},
		{2, 4, 1},
		{4, 4, 1},
		{5, 4, 1},  // 5 -> 2 -> 1; chip 4 is its own leader, one hop to root
		{6, 4, 2},  // 6 -> 2 -> 1; 5 -> 4 -> 0
		{7, 2, 2},  // 7 -> 4 -> 2 -> 1; the lone trailing chip passes levels hop-free
		{9, 4, 2},  // 9 -> 3 -> 1
		{17, 4, 2}, // 17 -> 5 -> 2 -> 1; chip 16 leads itself until the last level
		{64, 8, 2}, // 64 -> 8 -> 1
	}
	for _, c := range cases {
		tr, err := BuildTree(c.n, c.g)
		if err != nil {
			t.Fatalf("n=%d g=%d: %v", c.n, c.g, err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("n=%d g=%d: %v", c.n, c.g, err)
		}
		if got := tr.Depth(); got != c.depth {
			t.Errorf("n=%d g=%d depth = %d, want %d", c.n, c.g, got, c.depth)
		}
		if len(tr.ReduceHops()) != c.n-1 || len(tr.BroadcastHops()) != c.n-1 {
			t.Errorf("n=%d g=%d: hop counts not n-1", c.n, c.g)
		}
	}
}

// A corrupted schedule must fail validation: duplicated contribution,
// missing broadcast coverage, and out-of-order forwarding.
func TestScheduleValidateCatchesCorruption(t *testing.T) {
	sched, _ := NewSchedule(netParams(hw.TopoTree, 4), 8)
	dup := *sched
	dup.Reduce = append(append([]Hop{}, sched.Reduce...), Hop{From: 1, To: 0, Frac: 1, FromAccumulated: false, Class: hw.MIPI()})
	if err := dup.Validate(); err == nil {
		t.Error("double contribution not caught")
	}

	short := *sched
	short.Broadcast = sched.Broadcast[:len(sched.Broadcast)-1]
	if err := short.Validate(); err == nil {
		t.Error("unreached chip not caught")
	}

	reordered := *sched
	reordered.Broadcast = append([]Hop{}, sched.Broadcast...)
	last := len(reordered.Broadcast) - 1
	reordered.Broadcast[0], reordered.Broadcast[last] = reordered.Broadcast[last], reordered.Broadcast[0]
	// Swapping first and last hop of the 8-chip tree broadcast makes a
	// chip forward before it received.
	if err := reordered.Validate(); err == nil {
		t.Error("out-of-order broadcast not caught")
	}
}
