// Package interconnect models the chip-to-chip network: point-to-point
// MIPI links whose shape is a pluggable Topology. The paper's
// hierarchical reduction tree in groups of four (Fig. 1) is the
// default; a flat all-to-one star, a ring all-reduce, and a
// fully-connected all-to-all are available as design-space
// alternatives. Each topology lowers to a Schedule — a link graph plus
// dependency-ordered reduce/broadcast hop lists — which is the only
// interface the performance simulator consumes. The package also
// provides per-hop transfer-time/byte accounting helpers.
package interconnect

import (
	"fmt"

	"mcudist/internal/hw"
)

// Tree is the reduction/broadcast tree over chips 0..N-1. Chip IDs at
// the leaves are the compute chips themselves; interior "leaders" are
// regular chips that additionally accumulate partial results (the
// paper reduces onto one chip of each group of four).
type Tree struct {
	N         int
	GroupSize int
	Root      int
	// Parent[i] is the chip that i sends its partial result to
	// during the reduce (-1 for the root).
	Parent []int
	// Children[i] lists the chips that send to i, in reduce order.
	Children [][]int
}

// BuildTree constructs the hierarchical grouping: at each level,
// consecutive nodes form groups of at most groupSize whose first
// member becomes the leader at the next level, until one root remains.
// groupSize >= n degenerates to a flat all-to-one reduction; prefer
// selecting hw.TopoStar, which names that shape explicitly.
//
// This is the single validation point for tree parameters: every
// schedule builder and hw.Params.Validate funnel group-size errors
// here or mirror its rule.
func BuildTree(n, groupSize int) (*Tree, error) {
	if n <= 0 {
		return nil, fmt.Errorf("interconnect: need at least one chip, got %d", n)
	}
	if groupSize < 2 {
		return nil, fmt.Errorf("interconnect: group size %d must be at least 2 (select hw.TopoStar for a flat all-to-one reduction)", groupSize)
	}
	t := &Tree{
		N:         n,
		GroupSize: groupSize,
		Root:      0,
		Parent:    make([]int, n),
		Children:  make([][]int, n),
	}
	for i := range t.Parent {
		t.Parent[i] = -1
	}
	level := make([]int, n)
	for i := range level {
		level[i] = i
	}
	for len(level) > 1 {
		var next []int
		for g := 0; g < len(level); g += groupSize {
			end := g + groupSize
			if end > len(level) {
				end = len(level)
			}
			leader := level[g]
			for _, member := range level[g+1 : end] {
				t.Parent[member] = leader
				t.Children[leader] = append(t.Children[leader], member)
			}
			next = append(next, leader)
		}
		level = next
	}
	t.Root = level[0]
	return t, nil
}

// Depth returns the longest leaf-to-root path length in hops.
func (t *Tree) Depth() int {
	depth := 0
	for i := 0; i < t.N; i++ {
		d := 0
		for p := t.Parent[i]; p != -1; p = t.Parent[p] {
			d++
		}
		if d > depth {
			depth = d
		}
	}
	return depth
}

// Validate checks that the tree spans all chips exactly once and is
// acyclic with the declared root.
func (t *Tree) Validate() error {
	if t.N <= 0 {
		return fmt.Errorf("interconnect: empty tree")
	}
	if t.Parent[t.Root] != -1 {
		return fmt.Errorf("interconnect: root %d has parent %d", t.Root, t.Parent[t.Root])
	}
	seen := make([]bool, t.N)
	var walk func(int, int) error
	walk = func(node, depth int) error {
		if depth > t.N {
			return fmt.Errorf("interconnect: cycle detected at %d", node)
		}
		if seen[node] {
			return fmt.Errorf("interconnect: chip %d reached twice", node)
		}
		seen[node] = true
		for _, c := range t.Children[node] {
			if t.Parent[c] != node {
				return fmt.Errorf("interconnect: child %d of %d has parent %d", c, node, t.Parent[c])
			}
			if err := walk(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.Root, 0); err != nil {
		return err
	}
	for i, s := range seen {
		if !s {
			return fmt.Errorf("interconnect: chip %d unreachable", i)
		}
	}
	return nil
}

// Subtree returns the chips in the subtree rooted at node (including
// node itself), in reduce-dependency order (children before parents).
func (t *Tree) Subtree(node int) []int {
	var out []int
	var walk func(int)
	walk = func(n int) {
		for _, c := range t.Children[n] {
			walk(c)
		}
		out = append(out, n)
	}
	walk(node)
	return out
}

// Hop is one directed link transfer in a collective schedule.
type Hop struct {
	From, To int
	// Chunk indexes the payload chunk this hop carries (always 0 for
	// whole-payload topologies; the ring moves N distinct chunks).
	// The simulator tracks readiness per (chip, chunk).
	Chunk int
	// Frac scales the collective payload carried by this hop: 1 for
	// whole-payload hops, 1/N for ring chunks.
	Frac float64
	// FromAccumulated marks reduce hops whose sender transmits its
	// accumulated value (so the transfer waits for the sender's own
	// accumulations of this chunk). Fully-connected exchange sends
	// the original partial instead and accumulates only at the
	// receiver.
	FromAccumulated bool
	// Class is the link class of the edge this hop crosses, resolved
	// from the platform's network description at lowering time. The
	// zero class marks an unresolved/undefined edge; Validate rejects
	// it.
	Class hw.LinkClass
}

// ReduceHops returns the hops of the all-reduce in a valid dependency
// order: every chip's hop to its parent appears after the hops of its
// own children.
func (t *Tree) ReduceHops() []Hop {
	var hops []Hop
	for _, node := range t.Subtree(t.Root) {
		if p := t.Parent[node]; p != -1 {
			hops = append(hops, Hop{From: node, To: p, Frac: 1, FromAccumulated: true})
		}
	}
	return hops
}

// BroadcastHops returns the hops of the root-to-all broadcast in
// dependency order (parents before children).
func (t *Tree) BroadcastHops() []Hop {
	var hops []Hop
	var walk func(int)
	walk = func(n int) {
		for _, c := range t.Children[n] {
			hops = append(hops, Hop{From: n, To: c, Frac: 1})
			walk(c)
		}
	}
	walk(t.Root)
	return hops
}

// TransferCycles is the time one hop of the given payload occupies a
// link of the platform's local/uniform class, in cluster cycles:
// payload / bandwidth + per-transfer setup. The event simulator
// resolves each hop's own class (heterogeneous networks differ per
// edge); this closed-form helper assumes the uniform class and backs
// the analytical estimates.
func TransferCycles(p hw.Params, payloadBytes int64) float64 {
	return p.Network.Local.TransferCycles(p.Chip.FreqHz, payloadBytes)
}

// AllReduceBytes is the total link traffic of one all-reduce +
// broadcast of the given per-chip payload: (N-1) hops up and (N-1)
// hops down.
func AllReduceBytes(t *Tree, reducePayload, bcastPayload int64) int64 {
	return int64(t.N-1) * (reducePayload + bcastPayload)
}

// RingAllReduceCycles estimates a ring all-reduce + all-gather over n
// chips: 2(n-1) steps, each moving payload/n per link with all links
// active in parallel — the bandwidth-optimal collective large payloads
// favor, at the price of 2(n-1) setup latencies. The paper's
// hierarchical tree wins for small payloads (fewer serialized setups);
// this closed form locates the crossover.
func RingAllReduceCycles(n int, p hw.Params, payload int64) float64 {
	if n <= 1 || payload <= 0 {
		return 0
	}
	chunk := (payload + int64(n) - 1) / int64(n)
	steps := float64(2 * (n - 1))
	return steps * TransferCycles(p, chunk)
}

// CriticalPathCycles estimates the contention-aware latency of a
// reduce (+ optional broadcast) without running the event simulator:
// receives at one parent serialize, subtrees proceed in parallel.
// The performance simulator computes the same quantity event by event;
// this closed form backs sanity tests and quick estimates.
func CriticalPathCycles(t *Tree, p hw.Params, reducePayload, bcastPayload int64) float64 {
	up := TransferCycles(p, reducePayload)
	down := TransferCycles(p, bcastPayload)
	var reduceDone func(int) float64
	reduceDone = func(node int) float64 {
		var at float64
		for _, c := range t.Children[node] {
			// Receives serialize on the parent's port: each child's
			// transfer starts when both the child subtree is done and
			// the port is free.
			start := reduceDone(c)
			if start < at {
				start = at
			}
			at = start + up
		}
		return at
	}
	var bcastDepth func(int) int
	bcastDepth = func(node int) int {
		d := 0
		for i, c := range t.Children[node] {
			// Sends serialize on the parent's TX port (i+1 sends),
			// then the child forwards.
			cd := i + 1 + bcastDepth(c)
			if cd > d {
				d = cd
			}
		}
		return d
	}
	return reduceDone(t.Root) + float64(bcastDepth(t.Root))*down
}
