package interconnect

import (
	"testing"
	"testing/quick"

	"mcudist/internal/hw"
)

// The closed-form critical path must agree with hand-computed values
// on small trees.
func TestCriticalPathHandChecked(t *testing.T) {
	p := hw.Siracusa() // 1 B/cycle link, 256-cycle setup
	// Two chips: one reduce hop + one broadcast hop.
	tr, _ := BuildTree(2, 4)
	payload := int64(1024)
	hop := TransferCycles(p, payload) // 1024 + 256 = 1280
	if got := CriticalPathCycles(tr, p, payload, payload); got != 2*hop {
		t.Fatalf("2-chip critical path %g, want %g", got, 2*hop)
	}
	// Four chips, one group: three serialized receives at the root,
	// then three serialized sends.
	tr4, _ := BuildTree(4, 4)
	got := CriticalPathCycles(tr4, p, payload, payload)
	want := 3*hop + 3*hop
	if got != want {
		t.Fatalf("4-chip critical path %g, want %g", got, want)
	}
}

// Property: the hierarchical critical path is never worse than the
// flat one for the same chip count.
func TestPropertyHierarchyNeverWorse(t *testing.T) {
	p := hw.Siracusa()
	f := func(nRaw uint8, payloadRaw uint16) bool {
		n := 2 + int(nRaw)%63
		payload := int64(payloadRaw) + 1
		flat, err := BuildTree(n, n)
		if err != nil {
			return false
		}
		hier, err := BuildTree(n, 4)
		if err != nil {
			return false
		}
		return CriticalPathCycles(hier, p, payload, payload) <=
			CriticalPathCycles(flat, p, payload, payload)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: critical path grows monotonically with payload.
func TestPropertyCriticalPathMonotonePayload(t *testing.T) {
	p := hw.Siracusa()
	tr, _ := BuildTree(16, 4)
	f := func(aRaw, bRaw uint16) bool {
		a, b := int64(aRaw), int64(bRaw)
		if a > b {
			a, b = b, a
		}
		return CriticalPathCycles(tr, p, a, a) <= CriticalPathCycles(tr, p, b, b)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Reduce hop count equals broadcast hop count equals N-1 for all
// group sizes (no duplicate or missing transfers).
func TestHopCountInvariant(t *testing.T) {
	for _, n := range []int{1, 2, 5, 16, 33, 64} {
		for _, g := range []int{2, 4, 8} {
			tr, err := BuildTree(n, g)
			if err != nil {
				t.Fatal(err)
			}
			if len(tr.ReduceHops()) != n-1 {
				t.Errorf("n=%d g=%d: %d reduce hops", n, g, len(tr.ReduceHops()))
			}
			if len(tr.BroadcastHops()) != n-1 {
				t.Errorf("n=%d g=%d: %d bcast hops", n, g, len(tr.BroadcastHops()))
			}
		}
	}
}
