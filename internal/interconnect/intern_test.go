package interconnect

import (
	"sync"
	"testing"

	"mcudist/internal/hw"
)

// The cache must hand back the identical schedule for repeated
// requests of one (network, chips, topology) triple, paying exactly
// one lowering.
func TestCachedScheduleInterns(t *testing.T) {
	ResetScheduleCache()
	p := netParams(hw.TopoRing, 4)
	before := Lowerings()
	a, err := CachedSchedule(p, 16)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CachedSchedule(p, 16)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("repeated CachedSchedule returned distinct schedules")
	}
	if got := Lowerings() - before; got != 1 {
		t.Errorf("two requests paid %d lowerings, want 1", got)
	}
	fresh, err := NewSchedule(p, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh.Reduce) != len(a.Reduce) || len(fresh.Broadcast) != len(a.Broadcast) ||
		fresh.Chunks != a.Chunks || fresh.Depth != a.Depth {
		t.Error("interned schedule differs from a fresh lowering")
	}
}

// Distinct keys — a different chip count, topology, or network — must
// not collide.
func TestCachedScheduleKeysDistinct(t *testing.T) {
	ResetScheduleCache()
	p := netParams(hw.TopoTree, 4)
	a, err := CachedSchedule(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CachedSchedule(p, 16)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("8- and 16-chip schedules interned to one entry")
	}
	pr := p
	pr.Topology = hw.TopoRing
	c, err := CachedSchedule(pr, 8)
	if err != nil {
		t.Fatal(err)
	}
	if c.Topology != hw.TopoRing {
		t.Errorf("ring request served %s", c.Topology)
	}
	pc := p
	pc.Network = hw.ClusteredNetwork(hw.MIPI(), hw.MIPI().Slower(10), 4)
	d, err := CachedSchedule(pc, 8)
	if err != nil {
		t.Fatal(err)
	}
	if d == a {
		t.Error("clustered network shares the uniform network's entry")
	}
	if len(d.Classes) != 2 {
		t.Errorf("clustered 8-chip tree resolved %d link classes, want 2", len(d.Classes))
	}
}

// The ring and the fully-connected exchange never consult GroupSize;
// platforms differing only in it must share one entry. The tree-lowered
// shapes genuinely depend on it and must not.
func TestCachedScheduleGroupNormalization(t *testing.T) {
	ResetScheduleCache()
	a2, a4 := netParams(hw.TopoRing, 2), netParams(hw.TopoRing, 4)
	ra, err := CachedSchedule(a2, 8)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := CachedSchedule(a4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if ra != rb {
		t.Error("ring schedules with different (unused) group sizes not shared")
	}
	ta, err := CachedSchedule(netParams(hw.TopoTree, 2), 8)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := CachedSchedule(netParams(hw.TopoTree, 4), 8)
	if err != nil {
		t.Fatal(err)
	}
	if ta == tb {
		t.Error("tree schedules with different group sizes interned together")
	}
	if ta.Depth == tb.Depth {
		t.Errorf("groups-of-2 and groups-of-4 trees both have depth %d", ta.Depth)
	}
}

// Failed lowerings are cached too: a table network that leaves
// collective edges unwired keeps failing without growing the counter
// per request.
func TestCachedScheduleCachesErrors(t *testing.T) {
	ResetScheduleCache()
	// Wire only the 0->1 edge: every collective shape over 4 chips
	// routes over missing edges.
	net, err := hw.TableNetwork(map[hw.Edge]hw.LinkClass{{From: 0, To: 1}: hw.MIPI()})
	if err != nil {
		t.Fatal(err)
	}
	p := netParams(hw.TopoRing, 4)
	p.Network = net
	before := Lowerings()
	if _, err := CachedSchedule(p, 4); err == nil {
		t.Fatal("unwired ring lowered")
	}
	if _, err := CachedSchedule(p, 4); err == nil {
		t.Fatal("unwired ring lowered on the second request")
	}
	if got := Lowerings() - before; got != 1 {
		t.Errorf("two failing requests paid %d lowerings, want 1", got)
	}
}

// Concurrent requests — the evalpool workers' access pattern — must be
// race-free and still pay one lowering per distinct key. Run under
// `go test -race`.
func TestCachedScheduleConcurrent(t *testing.T) {
	ResetScheduleCache()
	topos := hw.Topologies()
	before := Lowerings()
	var wg sync.WaitGroup
	got := make([]*Schedule, 64)
	for g := 0; g < 64; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p := netParams(topos[g%len(topos)], 4)
			s, err := CachedSchedule(p, 8)
			if err != nil {
				t.Error(err)
				return
			}
			got[g] = s
		}(g)
	}
	wg.Wait()
	if lw := Lowerings() - before; lw != uint64(len(topos)) {
		t.Errorf("64 concurrent requests over %d topologies paid %d lowerings", len(topos), lw)
	}
	for g, s := range got {
		if s == nil || s.Topology != topos[g%len(topos)] {
			t.Fatalf("goroutine %d got %v", g, s)
		}
	}
}
