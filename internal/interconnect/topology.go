package interconnect

import (
	"fmt"
	"math"

	"mcudist/internal/hw"
)

// Final marks a chip that holds a fully reduced chunk and runs the
// synchronization's root work (residual/norm/requant) on it before the
// broadcast phase. The tree and star finalize everything on the root;
// the ring shards the work across all chips (1/N each); the
// fully-connected exchange replicates it on every chip.
type Final struct {
	Chip  int
	Chunk int
	// Frac is the share of the root work this chip executes.
	Frac float64
}

// Schedule is the lowered collective plan of one topology over N
// chips: dependency-ordered reduce and broadcast hop lists plus the
// root-work placement. The performance simulator executes a Schedule
// generically — every (From, To) pair is an independent full-duplex
// link resource — so adding a topology means adding a builder here,
// not touching the simulator.
type Schedule struct {
	Topology hw.Topology
	N        int
	// Root is the representative chip for runtime-breakdown
	// accounting (the reduction root for tree and star, chip 0 for
	// the symmetric topologies).
	Root int
	// Chunks is the number of payload chunks readiness is tracked
	// over (1 for whole-payload topologies, N for the ring).
	Chunks int
	// Depth is the number of serialized hop levels on the reduce
	// critical path: the tree's depth, 1 for star and fully-connected,
	// N-1 for the ring's reduce-scatter.
	Depth int
	// Reduce and Broadcast are the hop lists in dependency order.
	// NewSchedule resolves each hop's link class from the platform's
	// network description at lowering time.
	Reduce    []Hop
	Broadcast []Hop
	// Classes lists the distinct link classes the schedule's hops
	// resolved to, in first-use order — the per-class axis the
	// simulator splits its chip-to-chip accounting over. A uniform
	// network always yields exactly one class.
	Classes []hw.LinkClass
	// Final lists the chips running the root work, with their shares.
	Final []Final
	// Tree is the underlying reduction tree for the shapes that have
	// one (TopoTree and TopoStar), nil otherwise.
	Tree *Tree
}

// NewSchedule lowers the platform's topology selection onto n chips
// and resolves every hop's link class under the platform's network
// description (p.GroupSize is consulted only by the tree-lowered
// shapes). A topology that routes over an edge the network does not
// define — an unwired pair of a per-edge table — is rejected here,
// before any simulation runs.
func NewSchedule(p hw.Params, n int) (*Schedule, error) {
	s, err := NewBareSchedule(p.Topology, n, p.GroupSize)
	if err != nil {
		return nil, err
	}
	if err := s.annotate(p.Network); err != nil {
		return nil, err
	}
	return s, nil
}

// NewBareSchedule builds the hop structure of a topology without
// link-class annotation. It exists for consumers that never execute
// the collective hops — the pipeline strategy only reports the
// schedule's shape while transferring on its own handoff chain — so a
// network that wires just the chain (the natural measured table for a
// daisy-chained board) must not be rejected for leaving collective
// edges undefined. Everything that executes hops wants NewSchedule.
func NewBareSchedule(topo hw.Topology, n, groupSize int) (*Schedule, error) {
	if n <= 0 {
		return nil, fmt.Errorf("interconnect: need at least one chip, got %d", n)
	}
	switch topo {
	case hw.TopoTree:
		t, err := BuildTree(n, groupSize)
		if err != nil {
			return nil, err
		}
		return scheduleFromTree(hw.TopoTree, t), nil
	case hw.TopoStar:
		// The flat all-to-one shape is a degenerate tree whose one
		// group spans every chip; group size is irrelevant (but must
		// satisfy BuildTree's floor of 2).
		g := n
		if g < 2 {
			g = 2
		}
		t, err := BuildTree(n, g)
		if err != nil {
			return nil, err
		}
		return scheduleFromTree(hw.TopoStar, t), nil
	case hw.TopoRing:
		return ringSchedule(n), nil
	case hw.TopoFullyConnected:
		return fullyConnectedSchedule(n), nil
	default:
		return nil, fmt.Errorf("interconnect: %s is not a supported topology", topo)
	}
}

// annotate resolves each hop's link class under the network
// description and collects the distinct classes in first-use order
// (the per-class accounting axis of the simulator). Reduce hops are
// resolved before broadcast hops, so class 0 is always the class of
// the first reduce hop.
func (s *Schedule) annotate(net hw.Network) error {
	s.Classes = nil
	seen := map[hw.LinkClass]bool{}
	assign := func(hops []Hop) error {
		for i := range hops {
			c, err := net.LinkFor(hops[i].From, hops[i].To)
			if err != nil {
				return fmt.Errorf("interconnect: %s schedule over %d chips: hop %d->%d: %w",
					s.Topology, s.N, hops[i].From, hops[i].To, err)
			}
			hops[i].Class = c
			if !seen[c] {
				seen[c] = true
				s.Classes = append(s.Classes, c)
			}
		}
		return nil
	}
	if err := assign(s.Reduce); err != nil {
		return err
	}
	return assign(s.Broadcast)
}

// scheduleFromTree lowers a reduction tree (hierarchical or flat) to
// the generic schedule: whole-payload hops, root work on the root.
func scheduleFromTree(topo hw.Topology, t *Tree) *Schedule {
	return &Schedule{
		Topology:  topo,
		N:         t.N,
		Root:      t.Root,
		Chunks:    1,
		Depth:     t.Depth(),
		Reduce:    t.ReduceHops(),
		Broadcast: t.BroadcastHops(),
		Final:     []Final{{Chip: t.Root, Chunk: 0, Frac: 1}},
		Tree:      t,
	}
}

// ringSchedule builds the classic ring all-reduce: a reduce-scatter of
// N-1 steps (chip i sends chunk (i-s) mod N to its successor, which
// accumulates it) followed by an all-gather of N-1 steps (chip i
// forwards chunk (i+1-s) mod N). After the reduce-scatter chip i owns
// the complete chunk (i+1) mod N and runs the root work on it, so the
// per-sync root work is sharded 1/N per chip. Every hop moves
// payload/N, which is what makes the ring bandwidth-optimal; the
// price is 2(N-1) serialized setup latencies.
func ringSchedule(n int) *Schedule {
	s := &Schedule{
		Topology: hw.TopoRing,
		N:        n,
		Root:     0,
		Chunks:   n,
		Depth:    n - 1,
	}
	frac := 1 / float64(n)
	for step := 0; step < n-1; step++ {
		for i := 0; i < n; i++ {
			s.Reduce = append(s.Reduce, Hop{
				From:            i,
				To:              (i + 1) % n,
				Chunk:           ((i-step)%n + n) % n,
				Frac:            frac,
				FromAccumulated: true,
			})
		}
	}
	for i := 0; i < n; i++ {
		s.Final = append(s.Final, Final{Chip: i, Chunk: (i + 1) % n, Frac: frac})
	}
	for step := 0; step < n-1; step++ {
		for i := 0; i < n; i++ {
			s.Broadcast = append(s.Broadcast, Hop{
				From:  i,
				To:    (i + 1) % n,
				Chunk: ((i+1-step)%n + n) % n,
				Frac:  frac,
			})
		}
	}
	if n == 1 {
		s.Depth = 0
		s.Final = []Final{{Chip: 0, Chunk: 0, Frac: 1}}
	}
	return s
}

// fullyConnectedSchedule builds the all-to-all exchange: every chip
// sends its original partial to every other chip and accumulates the
// N-1 partials it receives, then runs the full root work locally.
// One hop level deep and broadcast-free, at N(N-1) times the unit
// reduce traffic — the traffic extreme opposite the paper's tree.
func fullyConnectedSchedule(n int) *Schedule {
	s := &Schedule{
		Topology: hw.TopoFullyConnected,
		N:        n,
		Root:     0,
		Chunks:   1,
		Depth:    1,
	}
	if n == 1 {
		s.Depth = 0
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			s.Reduce = append(s.Reduce, Hop{From: i, To: j, Frac: 1})
		}
	}
	for i := 0; i < n; i++ {
		s.Final = append(s.Final, Final{Chip: i, Chunk: 0, Frac: 1})
	}
	return s
}

// ScalePayload is the byte count one hop of the given fraction moves.
// Whole-payload hops (frac >= 1) pass the payload through untouched so
// the default tree stays byte-identical to the pre-topology simulator.
func ScalePayload(payload int64, frac float64) int64 {
	if frac >= 1 || payload <= 0 {
		return payload
	}
	return int64(math.Round(float64(payload) * frac))
}

// CollectiveBytes is the total link traffic of one synchronization
// under the schedule: the sum over hops of their payload share. For
// tree, star, and ring this is (N-1) * (reduce + bcast); the
// fully-connected exchange pays N(N-1) * reduce and broadcasts
// nothing.
func (s *Schedule) CollectiveBytes(reducePayload, bcastPayload int64) int64 {
	var total int64
	for _, h := range s.Reduce {
		total += ScalePayload(reducePayload, h.Frac)
	}
	for _, h := range s.Broadcast {
		total += ScalePayload(bcastPayload, h.Frac)
	}
	return total
}

// Validate checks the structural invariants every schedule must hold:
// indices in range, sane fractions, every hop resolved to a defined
// link class (no routing over unwired edges), each chip's partial
// reaching a finalizing chip exactly once per chunk, and the broadcast
// phase
// (together with the finalize placement) delivering every chunk to
// every chip in dependency order.
func (s *Schedule) Validate() error {
	if s.N <= 0 || s.Chunks <= 0 {
		return fmt.Errorf("interconnect: schedule over %d chips / %d chunks", s.N, s.Chunks)
	}
	if s.Root < 0 || s.Root >= s.N {
		return fmt.Errorf("interconnect: root %d out of range", s.Root)
	}
	for _, h := range append(append([]Hop{}, s.Reduce...), s.Broadcast...) {
		if h.From < 0 || h.From >= s.N || h.To < 0 || h.To >= s.N || h.From == h.To {
			return fmt.Errorf("interconnect: hop %d->%d out of range", h.From, h.To)
		}
		if h.Chunk < 0 || h.Chunk >= s.Chunks {
			return fmt.Errorf("interconnect: hop %d->%d chunk %d out of range", h.From, h.To, h.Chunk)
		}
		if h.Frac <= 0 || h.Frac > 1 {
			return fmt.Errorf("interconnect: hop %d->%d fraction %g out of (0,1]", h.From, h.To, h.Frac)
		}
		if !h.Class.Defined() {
			return fmt.Errorf("interconnect: hop %d->%d crosses an undefined edge (no link class resolved; lower the schedule with NewSchedule against a network that wires it)", h.From, h.To)
		}
	}

	// Symbolic reduce: contrib[chip][chunk] counts how many times each
	// original partial has been folded into the accumulator. An
	// accumulated send moves the live set; a plain send moves only the
	// sender's own contribution.
	contrib := make([][]map[int]int, s.N)
	for c := range contrib {
		contrib[c] = make([]map[int]int, s.Chunks)
		for q := range contrib[c] {
			contrib[c][q] = map[int]int{c: 1}
		}
	}
	for _, h := range s.Reduce {
		sent := map[int]int{h.From: 1}
		if h.FromAccumulated {
			sent = contrib[h.From][h.Chunk]
		}
		for chip, cnt := range sent {
			contrib[h.To][h.Chunk][chip] += cnt
		}
	}
	for _, f := range s.Final {
		if f.Chip < 0 || f.Chip >= s.N || f.Chunk < 0 || f.Chunk >= s.Chunks {
			return fmt.Errorf("interconnect: finalize (%d, chunk %d) out of range", f.Chip, f.Chunk)
		}
		if f.Frac <= 0 || f.Frac > 1 {
			return fmt.Errorf("interconnect: finalize fraction %g out of (0,1]", f.Frac)
		}
		for chip := 0; chip < s.N; chip++ {
			if got := contrib[f.Chip][f.Chunk][chip]; got != 1 {
				return fmt.Errorf("interconnect: chunk %d finalized on chip %d holds chip %d's partial %d times, want exactly once",
					f.Chunk, f.Chip, chip, got)
			}
		}
	}
	if len(s.Final) == 0 {
		return fmt.Errorf("interconnect: no finalizing chip")
	}

	// Broadcast reachability: starting from the finalized (chip,
	// chunk) pairs, every hop must forward an already-present chunk,
	// and afterwards every chip must hold every chunk.
	has := make([][]bool, s.N)
	for c := range has {
		has[c] = make([]bool, s.Chunks)
	}
	for _, f := range s.Final {
		has[f.Chip][f.Chunk] = true
	}
	for _, h := range s.Broadcast {
		if !has[h.From][h.Chunk] {
			return fmt.Errorf("interconnect: broadcast hop %d->%d forwards chunk %d before receiving it",
				h.From, h.To, h.Chunk)
		}
		has[h.To][h.Chunk] = true
	}
	for c := 0; c < s.N; c++ {
		for q := 0; q < s.Chunks; q++ {
			if !has[c][q] {
				return fmt.Errorf("interconnect: chunk %d never reaches chip %d", q, c)
			}
		}
	}
	return nil
}
