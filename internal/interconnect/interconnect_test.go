package interconnect

import (
	"testing"
	"testing/quick"

	"mcudist/internal/hw"
)

func TestBuildTreeEightChipsGroupsOfFour(t *testing.T) {
	tr, err := BuildTree(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Fig. 1 structure: chips 1-3 reduce onto 0, chips 5-7 onto 4,
	// then 4 onto 0.
	for _, c := range []int{1, 2, 3} {
		if tr.Parent[c] != 0 {
			t.Errorf("parent[%d] = %d, want 0", c, tr.Parent[c])
		}
	}
	for _, c := range []int{5, 6, 7} {
		if tr.Parent[c] != 4 {
			t.Errorf("parent[%d] = %d, want 4", c, tr.Parent[c])
		}
	}
	if tr.Parent[4] != 0 {
		t.Errorf("parent[4] = %d, want 0", tr.Parent[4])
	}
	if tr.Root != 0 {
		t.Errorf("root = %d, want 0", tr.Root)
	}
	if tr.Depth() != 2 {
		t.Errorf("depth = %d, want 2", tr.Depth())
	}
}

func TestBuildTreeSingleChip(t *testing.T) {
	tr, err := BuildTree(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.ReduceHops()) != 0 || len(tr.BroadcastHops()) != 0 {
		t.Fatal("single chip should have no hops")
	}
}

func TestBuildTree64ChipsDepth(t *testing.T) {
	tr, err := BuildTree(64, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// 64 chips in groups of 4: 64 -> 16 -> 4 -> 1, depth 3.
	if tr.Depth() != 3 {
		t.Errorf("depth = %d, want 3", tr.Depth())
	}
}

func TestFlatTreeDepthOne(t *testing.T) {
	tr, err := BuildTree(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Depth() != 1 {
		t.Errorf("flat tree depth = %d, want 1", tr.Depth())
	}
	if len(tr.Children[0]) != 15 {
		t.Errorf("flat root has %d children, want 15", len(tr.Children[0]))
	}
}

func TestBuildTreeErrors(t *testing.T) {
	if _, err := BuildTree(0, 4); err == nil {
		t.Error("zero chips accepted")
	}
	if _, err := BuildTree(4, 1); err == nil {
		t.Error("group size 1 accepted")
	}
}

func TestReduceHopsDependencyOrder(t *testing.T) {
	tr, _ := BuildTree(8, 4)
	hops := tr.ReduceHops()
	if len(hops) != 7 {
		t.Fatalf("hops = %d, want 7", len(hops))
	}
	// A chip must appear as sender only after all its children sent.
	sent := map[int]bool{}
	childrenDone := func(n int) bool {
		for _, c := range tr.Children[n] {
			if !sent[c] {
				return false
			}
		}
		return true
	}
	for _, h := range hops {
		if !childrenDone(h.From) {
			t.Fatalf("hop %v before children of %d completed", h, h.From)
		}
		sent[h.From] = true
	}
}

func TestBroadcastHopsDependencyOrder(t *testing.T) {
	tr, _ := BuildTree(16, 4)
	hops := tr.BroadcastHops()
	if len(hops) != 15 {
		t.Fatalf("hops = %d, want 15", len(hops))
	}
	have := map[int]bool{tr.Root: true}
	for _, h := range hops {
		if !have[h.From] {
			t.Fatalf("hop %v from chip without data", h)
		}
		have[h.To] = true
	}
	if len(have) != 16 {
		t.Fatalf("broadcast reached %d chips, want 16", len(have))
	}
}

func TestSubtreeOrder(t *testing.T) {
	tr, _ := BuildTree(8, 4)
	sub := tr.Subtree(tr.Root)
	if len(sub) != 8 {
		t.Fatalf("subtree size %d, want 8", len(sub))
	}
	pos := map[int]int{}
	for i, n := range sub {
		pos[n] = i
	}
	for n, p := range tr.Parent {
		if p != -1 && pos[n] > pos[p] {
			t.Fatalf("child %d after parent %d", n, p)
		}
	}
}

func TestAllReduceBytes(t *testing.T) {
	tr, _ := BuildTree(8, 4)
	// 7 hops up of 2048 B (int32 partials), 7 down of 512 B.
	if got := AllReduceBytes(tr, 2048, 512); got != 7*(2048+512) {
		t.Fatalf("all-reduce bytes = %d", got)
	}
}

func TestTransferCycles(t *testing.T) {
	p := hw.Siracusa()
	if got := TransferCycles(p, 0); got != 0 {
		t.Fatalf("zero payload cost %g", got)
	}
	// 512 B at 1 B/cycle + 256 setup.
	if got := TransferCycles(p, 512); got != 768 {
		t.Fatalf("transfer = %g, want 768", got)
	}
}

func TestCriticalPathGrowsSlowlyWithHierarchy(t *testing.T) {
	p := hw.Siracusa()
	flat, _ := BuildTree(64, 64)
	hier, _ := BuildTree(64, 4)
	payload := int64(2048)
	flatCycles := CriticalPathCycles(flat, p, payload, payload)
	hierCycles := CriticalPathCycles(hier, p, payload, payload)
	// The flat all-to-one reduce serializes 63 receives at the root;
	// the hierarchical tree must be substantially faster.
	if hierCycles >= flatCycles/2 {
		t.Fatalf("hierarchical %g not clearly faster than flat %g", hierCycles, flatCycles)
	}
}

func TestCriticalPathSingleChipZero(t *testing.T) {
	p := hw.Siracusa()
	tr, _ := BuildTree(1, 4)
	if got := CriticalPathCycles(tr, p, 4096, 4096); got != 0 {
		t.Fatalf("single chip critical path = %g, want 0", got)
	}
}

// Property: trees for any (n, groupSize) are valid spanning trees with
// n-1 reduce hops and n-1 broadcast hops.
func TestPropertyTreeValid(t *testing.T) {
	f := func(nRaw, gRaw uint8) bool {
		n := 1 + int(nRaw)%100
		g := 2 + int(gRaw)%10
		tr, err := BuildTree(n, g)
		if err != nil {
			return false
		}
		if tr.Validate() != nil {
			return false
		}
		return len(tr.ReduceHops()) == n-1 && len(tr.BroadcastHops()) == n-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: depth is bounded by ceil(log_g(n)) for group size g.
func TestPropertyDepthLogarithmic(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := 1 + int(nRaw)%200
		tr, err := BuildTree(n, 4)
		if err != nil {
			return false
		}
		bound := 0
		for c := n; c > 1; c = (c + 3) / 4 {
			bound++
		}
		return tr.Depth() <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: no chip is its own ancestor.
func TestPropertyAcyclic(t *testing.T) {
	f := func(nRaw, gRaw uint8) bool {
		n := 2 + int(nRaw)%64
		g := 2 + int(gRaw)%8
		tr, err := BuildTree(n, g)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			steps := 0
			for p := tr.Parent[i]; p != -1; p = tr.Parent[p] {
				if p == i || steps > n {
					return false
				}
				steps++
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
