package interconnect

import (
	"fmt"
	"sort"
	"sync"

	"mcudist/internal/hw"
)

// This file provides topology-provided stage routing: the pipeline
// strategy hands activations from stage c to stage c+1, and on sparse
// or degraded wirings — a torus, a netlist with a failed chip — the
// direct edge may not exist. Route finds a deterministic shortest
// multi-hop path over the edges the network does define, and
// PipelineChain lowers the whole handoff chain once per (network,
// chips) pair into an interned, read-only hop list the simulator
// replays allocation-free.

// ChainHop is one routed hop of a pipeline handoff: a directed wired
// edge with its resolved link class.
type ChainHop struct {
	From, To int
	Class    hw.LinkClass
}

// Route returns a shortest path of chips from `from` to `to` over the
// network's defined edges among chips 0..n-1, inclusive of both
// endpoints. The direct edge, when the network defines it, is always
// preferred — so on uniform and clustered profiles (which wire every
// pair) the route is exactly [from, to] and routed simulations stay
// byte-identical to the direct-handoff path. Otherwise a breadth-first
// search over the wiring finds the fewest-hop path, breaking ties
// toward lower chip indices, so equal wirings always route equal
// paths. An unreachable destination is an error: a severed chain must
// reject the schedule, not silently skip a stage.
func Route(net hw.Network, n, from, to int) ([]int, error) {
	if from == to {
		return nil, fmt.Errorf("interconnect: route %d->%d is a self-edge", from, to)
	}
	if from < 0 || to < 0 || from >= n || to >= n {
		return nil, fmt.Errorf("interconnect: route %d->%d is out of range for %d chips", from, to, n)
	}
	if _, err := net.LinkFor(from, to); err == nil {
		return []int{from, to}, nil
	}
	adj, err := adjacency(net, n)
	if err != nil {
		return nil, err
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	parent[from] = from
	queue := []int{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == to {
			break
		}
		for _, next := range adj[cur] {
			if parent[next] < 0 {
				parent[next] = cur
				queue = append(queue, next)
			}
		}
	}
	if parent[to] < 0 {
		return nil, fmt.Errorf("interconnect: no surviving path from chip %d to chip %d in %s", from, to, net)
	}
	var rev []int
	for c := to; c != from; c = parent[c] {
		rev = append(rev, c)
	}
	rev = append(rev, from)
	path := make([]int, len(rev))
	for i, c := range rev {
		path[len(rev)-1-i] = c
	}
	return path, nil
}

// adjacency builds each chip's wired out-neighbours in ascending
// order — the property that makes the BFS tie-break deterministic.
func adjacency(net hw.Network, n int) ([][]int, error) {
	edges, err := hw.NetworkEdges(net, n)
	if err != nil {
		return nil, err
	}
	adj := make([][]int, n)
	for e := range edges {
		adj[e.From] = append(adj[e.From], e.To)
	}
	for _, nbrs := range adj {
		sort.Ints(nbrs)
	}
	return adj, nil
}

// PipelineChain is the lowered handoff chain of a pipeline deployment
// over n chips: for each stage boundary c -> c+1, the routed hop
// sequence (usually one direct hop; multi-hop on sparse or degraded
// wirings). Interned entries are shared and read-only.
type PipelineChain struct {
	N    int
	hops []ChainHop // all boundaries, flattened in chain order
	off  []int      // boundary c spans hops[off[c]:off[c+1]]
}

// Segment returns the routed hops of the stage boundary c -> c+1.
func (pc *PipelineChain) Segment(c int) []ChainHop {
	return pc.hops[pc.off[c]:pc.off[c+1]]
}

// Hops returns the total hop count across all boundaries — n-1 when
// every stage pair is wired directly, more when any handoff routes
// around a gap.
func (pc *PipelineChain) Hops() int { return len(pc.hops) }

// NewPipelineChain routes every stage boundary of an n-chip pipeline
// over the network's wiring and resolves each hop's link class. A
// boundary with no surviving path fails here, before any simulation
// runs, exactly like a collective schedule hop over an unwired edge.
func NewPipelineChain(net hw.Network, n int) (*PipelineChain, error) {
	if n < 1 {
		return nil, fmt.Errorf("interconnect: a pipeline chain needs at least 1 chip, got %d", n)
	}
	// A single-stage pipeline hands nothing off: zero boundaries.
	pc := &PipelineChain{N: n, off: make([]int, 1, n)}
	for c := 0; c+1 < n; c++ {
		path, err := Route(net, n, c, c+1)
		if err != nil {
			return nil, fmt.Errorf("interconnect: pipeline handoff %d->%d: %w", c, c+1, err)
		}
		for i := 0; i+1 < len(path); i++ {
			cls, err := net.LinkFor(path[i], path[i+1])
			if err != nil {
				return nil, fmt.Errorf("interconnect: pipeline handoff %d->%d via %d->%d: %w", c, c+1, path[i], path[i+1], err)
			}
			pc.hops = append(pc.hops, ChainHop{From: path[i], To: path[i+1], Class: cls})
		}
		pc.off = append(pc.off, len(pc.hops))
	}
	return pc, nil
}

// chainKey identifies one lowered pipeline chain; like scheduleKey,
// hw.Network is comparable (tables ride as content digests).
type chainKey struct {
	net hw.Network
	n   int
}

type chainEntry struct {
	once sync.Once
	pc   *PipelineChain
	err  error
}

var (
	chainMu  sync.Mutex
	chainMap = map[chainKey]*chainEntry{}
)

// CachedPipelineChain returns the interned pipeline chain for the
// wiring, routing and class-resolving once per (network, chips) pair —
// the same discipline CachedSchedule applies to collective lowerings.
func CachedPipelineChain(net hw.Network, n int) (*PipelineChain, error) {
	key := chainKey{net: net, n: n}
	chainMu.Lock()
	e, ok := chainMap[key]
	if !ok {
		e = &chainEntry{}
		chainMap[key] = e
	}
	chainMu.Unlock()
	e.once.Do(func() {
		e.pc, e.err = NewPipelineChain(net, n)
	})
	return e.pc, e.err
}
