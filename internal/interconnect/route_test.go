package interconnect

import (
	"reflect"
	"testing"

	"mcudist/internal/hw"
)

func TestRouteDirectEdgePreferred(t *testing.T) {
	// Uniform and clustered networks wire every pair: the route is
	// always the direct edge, never a detour.
	for _, net := range []hw.Network{
		hw.UniformNetwork(hw.MIPI()),
		hw.ClusteredNetwork(hw.MIPI(), hw.MIPI().Slower(10), 4),
	} {
		path, err := Route(net, 8, 2, 7)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(path, []int{2, 7}) {
			t.Fatalf("%s: route 2->7 = %v, want the direct edge", net, path)
		}
	}
}

func TestRouteMultiHopChain(t *testing.T) {
	// A daisy chain 0-1-2-3 (bidirectional): 0->3 must route through
	// every intermediate stage.
	edges := map[hw.Edge]hw.LinkClass{}
	for c := 0; c < 3; c++ {
		edges[hw.Edge{From: c, To: c + 1}] = hw.MIPI()
		edges[hw.Edge{From: c + 1, To: c}] = hw.MIPI()
	}
	net, err := hw.TableNetwork(edges)
	if err != nil {
		t.Fatal(err)
	}
	path, err := Route(net, 4, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(path, []int{0, 1, 2, 3}) {
		t.Fatalf("chain route 0->3 = %v, want [0 1 2 3]", path)
	}
	// Determinism: the same wiring routes the same path every time.
	again, _ := Route(net, 4, 0, 3)
	if !reflect.DeepEqual(path, again) {
		t.Fatalf("route not deterministic: %v vs %v", path, again)
	}
}

func TestRouteTorusAroundGap(t *testing.T) {
	// On a 4x4 torus, 0 -> 5 (diagonal neighbour) has no direct edge;
	// the shortest path is two hops through 1 or 4, and the low-index
	// tie-break picks 1.
	net, err := hw.TorusNetwork(4, 4, hw.MIPI())
	if err != nil {
		t.Fatal(err)
	}
	path, err := Route(net, 16, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(path, []int{0, 1, 5}) {
		t.Fatalf("torus route 0->5 = %v, want [0 1 5]", path)
	}
}

func TestRouteNoPath(t *testing.T) {
	// Two disconnected islands: 0-1 and 2-3.
	net, err := hw.TableNetwork(map[hw.Edge]hw.LinkClass{
		{From: 0, To: 1}: hw.MIPI(), {From: 1, To: 0}: hw.MIPI(),
		{From: 2, To: 3}: hw.MIPI(), {From: 3, To: 2}: hw.MIPI(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Route(net, 4, 0, 3); err == nil {
		t.Fatal("route across disconnected islands should fail")
	}
	if _, err := Route(net, 4, 1, 1); err == nil {
		t.Fatal("self-route should fail")
	}
}

func TestPipelineChainDirect(t *testing.T) {
	pc, err := NewPipelineChain(hw.UniformNetwork(hw.MIPI()), 4)
	if err != nil {
		t.Fatal(err)
	}
	if pc.Hops() != 3 {
		t.Fatalf("uniform 4-chip chain has %d hops, want 3", pc.Hops())
	}
	for c := 0; c < 3; c++ {
		seg := pc.Segment(c)
		if len(seg) != 1 || seg[0].From != c || seg[0].To != c+1 {
			t.Fatalf("boundary %d segment = %+v, want one direct hop", c, seg)
		}
		if seg[0].Class != hw.MIPI() {
			t.Fatalf("boundary %d class = %+v, want MIPI", c, seg[0].Class)
		}
	}
}

func TestPipelineChainRoutesAroundMissingEdge(t *testing.T) {
	// Chain wiring with the 1->2 edge missing but a detour through
	// chip 3 available: the boundary re-routes 1->3->2.
	edges := map[hw.Edge]hw.LinkClass{
		{From: 0, To: 1}: hw.MIPI(), {From: 1, To: 0}: hw.MIPI(),
		{From: 2, To: 3}: hw.MIPI(), {From: 3, To: 2}: hw.MIPI(),
		{From: 1, To: 3}: hw.MIPI(), {From: 3, To: 1}: hw.MIPI(),
	}
	net, err := hw.TableNetwork(edges)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := NewPipelineChain(net, 4)
	if err != nil {
		t.Fatal(err)
	}
	seg := pc.Segment(1)
	if len(seg) != 2 || seg[0] != (ChainHop{From: 1, To: 3, Class: hw.MIPI()}) || seg[1] != (ChainHop{From: 3, To: 2, Class: hw.MIPI()}) {
		t.Fatalf("boundary 1 segment = %+v, want 1->3->2", seg)
	}
	if pc.Hops() != 4 {
		t.Fatalf("chain has %d hops, want 4", pc.Hops())
	}
}

func TestCachedPipelineChainInterns(t *testing.T) {
	net := hw.UniformNetwork(hw.MIPI())
	a, err := CachedPipelineChain(net, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CachedPipelineChain(net, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("equal (network, chips) pairs should share one interned chain")
	}
}
