package interconnect

import (
	"sync"
	"sync/atomic"

	"mcudist/internal/hw"
)

// scheduleKey identifies one lowered schedule. hw.Network is a
// comparable value — explicit per-edge tables are carried by their
// canonical sha256 content digest, exactly like the evalpool cache
// key — so two platforms request the same entry exactly when their
// wiring, chip count, and topology match. GroupSize participates only
// for the tree-lowered shapes; the ring and the fully-connected
// exchange never consult it and normalize it away, so platforms
// differing only in an unused group size share one entry.
type scheduleKey struct {
	net   hw.Network
	n     int
	topo  hw.Topology
	group int
}

// internEntry memoizes one lowering. The first requester lowers and
// validates inside the sync.Once; concurrent requesters of the same
// key block on the Once and then read the settled result.
type internEntry struct {
	once sync.Once
	s    *Schedule
	err  error
}

var (
	internMu  sync.Mutex
	internMap = map[scheduleKey]*internEntry{}
	lowerings atomic.Uint64
)

// CachedSchedule returns the lowered, validated schedule of the
// platform's topology over n chips, served from a process-wide,
// concurrency-safe intern cache keyed by (network, chips, topology).
// Lowering and structural validation run once per distinct key; every
// later request — every simulation of the same platform shape — returns
// the interned schedule without re-lowering, which keeps schedule
// construction off the simulator's hot path during sweeps and
// autotuning. The returned schedule is shared between callers and must
// be treated as immutable.
func CachedSchedule(p hw.Params, n int) (*Schedule, error) {
	key := scheduleKey{net: p.Network, n: n, topo: p.Topology, group: p.GroupSize}
	if p.Topology == hw.TopoRing || p.Topology == hw.TopoFullyConnected {
		key.group = 0
	}
	internMu.Lock()
	e, ok := internMap[key]
	if !ok {
		e = &internEntry{}
		internMap[key] = e
	}
	internMu.Unlock()
	e.once.Do(func() {
		lowerings.Add(1)
		s, err := NewSchedule(p, n)
		if err == nil {
			err = s.Validate()
		}
		if err != nil {
			e.err = err
			return
		}
		e.s = s
	})
	return e.s, e.err
}

// Lowerings returns the number of schedule lowerings the intern cache
// has performed since process start (cache misses, including failed
// lowerings). A sweep that re-simulates the same (network, chips,
// topology) triples leaves this counter unchanged — the property the
// cache-hit tests pin.
func Lowerings() uint64 { return lowerings.Load() }

// ScheduleCacheSize returns the number of interned entries.
func ScheduleCacheSize() int {
	internMu.Lock()
	defer internMu.Unlock()
	return len(internMap)
}

// ResetScheduleCache drops every interned schedule (the cache has no
// eviction of its own). The lowering counter keeps counting across
// resets. Primarily a test hook; per-edge tables registered with
// hw.TableNetwork stay registered.
func ResetScheduleCache() {
	internMu.Lock()
	internMap = map[scheduleKey]*internEntry{}
	internMu.Unlock()
}
