package explore

import (
	"testing"

	"mcudist/internal/core"
	"mcudist/internal/evalpool"
	"mcudist/internal/hw"
	"mcudist/internal/memsim"
	"mcudist/internal/model"
)

// dramSystem is the pinned tiling-autotune operating point: n chips of
// the paper's platform backed by the LPDDR5 hierarchy profile.
func dramSystem(n int) core.System {
	sys := core.DefaultSystem(n)
	sys.HW.Mem = hw.LPDDR5()
	return sys
}

// The pruned tiling autotuner must return the identical winner — the
// (attention, FFN) tiling pair, its exact cycles, and the margin — as
// exhaustive enumeration of the pair grid at the pinned 2-chip
// TinyLlama point, for at least 5x fewer exact simulations (measured
// as evalpool cache-miss deltas over a cold cache).
func TestAutotuneTilingMatchesExhaustive(t *testing.T) {
	base := dramSystem(2)
	wl := core.Workload{Model: model.TinyLlama42M(), Mode: model.Autoregressive}
	opts := TilingOptions{Candidates: 6}

	evalpool.ResetCache()
	pruned, err := AutotuneTiling(base, wl, opts)
	if err != nil {
		t.Fatal(err)
	}
	evalpool.ResetCache()
	exact, err := AutotuneTiling(base, wl, TilingOptions{Candidates: opts.Candidates, Exhaustive: true})
	if err != nil {
		t.Fatal(err)
	}

	if pruned.Attn != exact.Attn || pruned.FFN != exact.FFN {
		t.Errorf("pruned winner (%s, %s) != exhaustive winner (%s, %s)",
			pruned.Attn, pruned.FFN, exact.Attn, exact.FFN)
	}
	if pruned.Cycles != exact.Cycles {
		t.Errorf("pruned cycles %g != exhaustive %g", pruned.Cycles, exact.Cycles)
	}
	if pruned.Margin != exact.Margin {
		t.Errorf("pruned margin %g != exhaustive %g", pruned.Margin, exact.Margin)
	}
	if exact.ExactSims < 5*pruned.ExactSims {
		t.Errorf("pruning saved too little: %d exact sims vs %d exhaustive (want >= 5x fewer)",
			pruned.ExactSims, exact.ExactSims)
	}
	if exact.ExactSims < exact.GridSims {
		t.Errorf("exhaustive ran %d sims over a %d-sim grid", exact.ExactSims, exact.GridSims)
	}
	// The search is probe-free: the pruned bill is exactly the
	// verified points (top-K pairs + uniform baselines, deduplicated),
	// never more.
	if max := DefaultTilingTopK + DefaultUniformVerify; pruned.ExactSims > max {
		t.Errorf("pruned search ran %d sims, want <= %d (top-K + uniform, zero probes)",
			pruned.ExactSims, max)
	}
	t.Logf("winner (%s, %s) %.0f cycles, uniform %s %.0f, margin %.4f, rank accuracy %.2f, %d/%d sims",
		pruned.Attn, pruned.FFN, pruned.Cycles, pruned.BestUniform, pruned.UniformCycles,
		pruned.Margin, pruned.RankAccuracy, pruned.ExactSims, exact.ExactSims)
}

// The autotuner refuses systems without the hierarchical memory model
// and deployments with no streamed-tier chips (nothing tiles there —
// every candidate would price identically).
func TestAutotuneTilingRejects(t *testing.T) {
	wl := core.Workload{Model: model.TinyLlama42M(), Mode: model.Autoregressive}
	if _, err := AutotuneTiling(core.DefaultSystem(2), wl, TilingOptions{}); err == nil {
		t.Error("flat memory model must be rejected")
	}
	// 8 TinyLlama chips run double-buffered: no chip streams weights.
	if _, err := AutotuneTiling(dramSystem(8), wl, TilingOptions{}); err == nil {
		t.Error("non-streamed deployment must be rejected")
	}
}

// TestAutotuneTilingFamiliesDiffer pins the bigger-than-SRAM ablation:
// on the billion-parameter EdgeLlama model paged from DRAM at 8 chips,
// the best attention tiling (32x352) differs from the best FFN tiling
// (32x512), and the per-family split strictly beats the best uniform
// tiling on latency. The margin is honest but small — weight streaming
// is bandwidth-bound, so total fetch bytes dominate and tiling only
// moves the setup-amortization and overlap residuals (the spread
// against a *bad* tiling is ~1.2x; see memsim's tradeoff test) — and
// the split buys its latency with a sliver (<1%) of extra DRAM energy
// from the attention family's extra activation passes. Both margins
// are recorded here.
func TestAutotuneTilingFamiliesDiffer(t *testing.T) {
	evalpool.ResetCache()
	base := dramSystem(8)
	wl := core.Workload{Model: model.EdgeLlama1B(), Mode: model.Autoregressive}
	res, err := AutotuneTiling(base, wl, TilingOptions{Candidates: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Attn == res.FFN {
		t.Errorf("attention and FFN families picked the same tiling %s", res.Attn)
	}
	if want := (memsim.Tiling{K: 32, N: 352}); res.Attn != want {
		t.Errorf("attention tiling %s, want pinned %s", res.Attn, want)
	}
	if want := (memsim.Tiling{K: 32, N: 512}); res.FFN != want {
		t.Errorf("FFN tiling %s, want pinned %s", res.FFN, want)
	}
	if res.Margin <= 1 {
		t.Errorf("per-family tiling margin %.4f over uniform %s, want strictly > 1", res.Margin, res.BestUniform)
	}
	energyMargin := res.UniformReport.Energy.Total() / res.Report.Energy.Total()
	if energyMargin < 0.99 || energyMargin > 1.01 {
		t.Errorf("energy margin %.4f drifted out of the recorded <1%% band", energyMargin)
	}
	t.Logf("attn %s vs ffn %s (uniform %s): latency margin %.4f, energy margin %.4f, %d sims for a %d-pair grid",
		res.Attn, res.FFN, res.BestUniform, res.Margin, energyMargin, res.ExactSims, res.Candidates)
}

// TestAutotuneTilingDeploys pins that setting the winner on the
// system reproduces the winner's exact cycles — the result is
// deployable, not just a report.
func TestAutotuneTilingDeploys(t *testing.T) {
	base := dramSystem(2)
	wl := core.Workload{Model: model.TinyLlama42M(), Mode: model.Autoregressive}
	res, err := AutotuneTiling(base, wl, TilingOptions{Candidates: 4})
	if err != nil {
		t.Fatal(err)
	}
	sys := base
	sys.HW.Mem.TileK, sys.HW.Mem.TileN = res.Attn.K, res.Attn.N
	sys.HW.Mem.FFNTileK, sys.HW.Mem.FFNTileN = res.FFN.K, res.FFN.N
	rep, err := core.Run(sys, wl)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cycles != res.Cycles {
		t.Errorf("deployed winner runs %.0f cycles, autotuner reported %.0f", rep.Cycles, res.Cycles)
	}
	if res.Attn == (memsim.Tiling{}) || res.FFN == (memsim.Tiling{}) {
		t.Error("winner tilings must be explicit")
	}
}
