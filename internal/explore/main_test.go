package explore

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"mcudist/internal/evalpool"
	"mcudist/internal/resultstore"
)

// TestMain binds one shared persistent result store to the default
// evalpool for the whole package run. The exhaustive-equivalence tests
// call evalpool.ResetCache() around each leg to isolate their
// in-process memo; without a second cache tier every reset forced the
// full exact-simulation grid to re-run, which dominated the package's
// wall time. With the store bound, a reset leg replays the persisted
// reports byte-identically instead of re-simulating, and the store is
// discarded with the temp directory afterwards so runs stay hermetic.
func TestMain(m *testing.M) {
	code, err := runWithSharedStore(m)
	if err != nil {
		fmt.Fprintln(os.Stderr, "explore: shared store fixture:", err)
		code = 1
	}
	os.Exit(code)
}

func runWithSharedStore(m *testing.M) (int, error) {
	dir, err := os.MkdirTemp("", "explore-store-*")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	store, err := resultstore.Open(filepath.Join(dir, "results"))
	if err != nil {
		return 0, err
	}
	evalpool.SetStore(store)
	code := m.Run()
	evalpool.SetStore(nil)
	if err := store.Close(); err != nil {
		return 0, err
	}
	return code, nil
}
