package explore

import (
	"testing"

	"mcudist/internal/core"
	"mcudist/internal/hw"
	"mcudist/internal/model"
)

// clustered10 is the two-tier test board: clusters of 4 MIPI-linked
// chips joined by a 10x-slower backhaul.
func clustered10() hw.Network {
	return hw.ClusteredNetwork(hw.MIPI(), hw.MIPI().Slower(10), 4)
}

// BestTopology must weigh the backhaul penalty: on the uniform
// network the 8-chip TinyLlama collectives belong to the ring, but
// under the clustered backhaul the ring serializes its slow boundary
// hops 2(N-1) times and the fully-connected exchange — one hop level,
// every pairwise send on its own link — takes over.
func TestBestTopologyAwareOfBackhaul(t *testing.T) {
	for _, mode := range []model.Mode{model.Autoregressive, model.Prompt} {
		wl := core.Workload{Model: model.TinyLlama42M(), Mode: mode}

		uniform := core.DefaultSystem(8)
		topo, rep, err := BestTopology(uniform, wl)
		if err != nil {
			t.Fatal(err)
		}
		if topo != hw.TopoRing {
			t.Errorf("%v uniform: best topology %v, want ring", mode, topo)
		}

		clustered := core.DefaultSystem(8)
		clustered.HW.Network = clustered10()
		ctopo, crep, err := BestTopology(clustered, wl)
		if err != nil {
			t.Fatal(err)
		}
		if ctopo != hw.TopoFullyConnected {
			t.Errorf("%v clustered: best topology %v, want fully-connected", mode, ctopo)
		}
		if crep.Cycles <= rep.Cycles {
			t.Errorf("%v: clustered best %g cycles not above uniform best %g", mode, crep.Cycles, rep.Cycles)
		}
	}
}

func TestNetworkFrontierGrid(t *testing.T) {
	base := core.DefaultSystem(1)
	wl := core.Workload{Model: model.TinyLlama42M(), Mode: model.Prompt}
	chips := []int{2, 4, 8}
	nets := []hw.Network{hw.UniformNetwork(hw.MIPI()), clustered10()}

	points, err := NetworkFrontier(base, wl, chips, nets)
	if err != nil {
		t.Fatal(err)
	}
	want := len(nets) * len(hw.Topologies()) * len(chips)
	if len(points) != want {
		t.Fatalf("%d points, want %d", len(points), want)
	}
	// Grouping: networks in input order, topologies in enum order,
	// chips ascending; every report present and evaluated under its
	// own network/topology.
	i := 0
	paretoCount := 0
	for _, net := range nets {
		for _, topo := range hw.Topologies() {
			for _, n := range chips {
				p := points[i]
				i++
				if p.Network != net || p.Topology != topo || p.Chips != n {
					t.Fatalf("point %d = (%v, %v, %d), want (%v, %v, %d)",
						i-1, p.Network, p.Topology, p.Chips, net, topo, n)
				}
				if p.Report == nil {
					t.Fatalf("point %d has no report", i-1)
				}
				if p.Report.System.HW.Network != net || p.Report.System.HW.Topology != topo {
					t.Fatalf("point %d evaluated under the wrong network/topology", i-1)
				}
				if p.Pareto {
					paretoCount++
				}
			}
		}
	}
	if paretoCount == 0 {
		t.Fatal("no Pareto-optimal point in the grid")
	}
	// At 2 and 4 chips every edge stays inside one cluster of 4, so
	// the clustered grid half duplicates the uniform one exactly (and
	// duplicates may share the front). At 8 chips every topology
	// crosses the boundary: the backhaul only slows links (same
	// pJ/B), so each clustered 8-chip point is dominated by its
	// uniform twin — equal energy, strictly higher latency — and must
	// be off the front.
	for _, p := range points {
		if p.Pareto && p.Network != nets[0] && p.Chips == 8 {
			t.Errorf("clustered point (%v, %d chips) on the Pareto front despite a strictly faster uniform twin", p.Topology, p.Chips)
		}
	}
}
