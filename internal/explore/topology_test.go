package explore

import (
	"testing"

	"mcudist/internal/core"
	"mcudist/internal/hw"
	"mcudist/internal/model"
)

func TestTopologyFrontierGrid(t *testing.T) {
	wl := core.Workload{Model: model.TinyLlama42M(), Mode: model.Prompt}
	chips := []int{2, 4, 8}
	points, err := TopologyFrontier(core.DefaultSystem(1), wl, chips)
	if err != nil {
		t.Fatal(err)
	}
	topos := hw.Topologies()
	if len(points) != len(topos)*len(chips) {
		t.Fatalf("%d points, want %d", len(points), len(topos)*len(chips))
	}
	// Grid order: topology-major, chips ascending, reports populated
	// and consistent with the point's own configuration.
	anyPareto := false
	for i, p := range points {
		if p.Topology != topos[i/len(chips)] || p.Chips != chips[i%len(chips)] {
			t.Fatalf("point %d = (%s, %d), want (%s, %d)",
				i, p.Topology, p.Chips, topos[i/len(chips)], chips[i%len(chips)])
		}
		if p.Report == nil || p.Report.System.HW.Topology != p.Topology ||
			p.Report.System.Chips != p.Chips {
			t.Fatalf("point %d report does not match its configuration", i)
		}
		anyPareto = anyPareto || p.Pareto
	}
	if !anyPareto {
		t.Fatal("no Pareto-optimal point in the grid")
	}
	// A dominated point must not be flagged: find the global best
	// latency and energy; anything strictly worse on both axes with a
	// flag is a bug.
	for _, p := range points {
		if !p.Pareto {
			continue
		}
		for _, q := range points {
			if q.Report.Seconds < p.Report.Seconds &&
				q.Report.Energy.Total() < p.Report.Energy.Total() {
				t.Fatalf("(%s, %d chips) flagged Pareto but dominated by (%s, %d chips)",
					p.Topology, p.Chips, q.Topology, q.Chips)
			}
		}
	}
}

func TestBestTopologyPicksMinimumLatency(t *testing.T) {
	wl := core.Workload{Model: model.TinyLlama42M(), Mode: model.Prompt}
	base := core.DefaultSystem(8)
	topo, rep, err := BestTopology(base, wl)
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil {
		t.Fatal("no report")
	}
	for _, other := range hw.Topologies() {
		sys := base
		sys.HW.Topology = other
		r, err := core.Run(sys, wl)
		if err != nil {
			t.Fatal(err)
		}
		if r.Cycles < rep.Cycles {
			t.Errorf("BestTopology picked %s (%.0f cycles) but %s is faster (%.0f)",
				topo, rep.Cycles, other, r.Cycles)
		}
	}
	if rep.System.HW.Topology != topo {
		t.Errorf("returned report's topology %s != %s", rep.System.HW.Topology, topo)
	}
}

// On a single chip every topology degenerates to no communication at
// all, so the frontier must agree across shapes.
func TestTopologySingleChipEquivalence(t *testing.T) {
	wl := core.Workload{Model: model.TinyLlama42M(), Mode: model.Autoregressive}
	var first *core.Report
	for _, topo := range hw.Topologies() {
		sys := core.DefaultSystem(1)
		sys.HW.Topology = topo
		rep, err := core.Run(sys, wl)
		if err != nil {
			t.Fatalf("%s: %v", topo, err)
		}
		if first == nil {
			first = rep
			continue
		}
		if rep.Cycles != first.Cycles || rep.C2CBytes != 0 {
			t.Errorf("%s on one chip: %.0f cycles / %d link bytes, want %.0f / 0",
				topo, rep.Cycles, rep.C2CBytes, first.Cycles)
		}
	}
}
