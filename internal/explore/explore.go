// Package explore is a design-space exploration layer on top of the
// simulator: given a model and a workload, it answers the sizing
// questions the paper's scheme raises in practice — how many chips
// until off-chip traffic leaves the critical path, which chip counts
// are even legal for a geometry, and which configurations are
// Pareto-optimal in latency and energy.
package explore

import (
	"fmt"
	"sort"

	"mcudist/internal/core"
	"mcudist/internal/model"
)

// Point is one evaluated configuration.
type Point struct {
	Chips  int
	Report *core.Report
	// Pareto marks latency/energy Pareto-optimal points within the
	// explored set.
	Pareto bool
}

// LegalChipCounts returns the chip counts the tensor-parallel plan
// accepts for cfg, up to max: every count from 1 to
// min(max, KVHeadCount, F).
func LegalChipCounts(cfg model.Config, max int) []int {
	limit := cfg.KVHeadCount()
	if cfg.F < limit {
		limit = cfg.F
	}
	if max < limit {
		limit = max
	}
	var out []int
	for n := 1; n <= limit; n++ {
		out = append(out, n)
	}
	return out
}

// PowersOfTwo filters counts to powers of two (the paper's sweep
// shape), always keeping 1.
func PowersOfTwo(counts []int) []int {
	var out []int
	for _, n := range counts {
		if n&(n-1) == 0 {
			out = append(out, n)
		}
	}
	return out
}

// MinChipsOffChipFree returns the smallest chip count (≤ maxChips)
// whose deployment keeps L3 off the runtime critical path, together
// with its report. It returns an error if no configuration qualifies.
func MinChipsOffChipFree(base core.System, wl core.Workload, maxChips int) (*Point, error) {
	for _, n := range LegalChipCounts(wl.Model, maxChips) {
		sys := base
		sys.Chips = n
		rep, err := core.Run(sys, wl)
		if err != nil {
			return nil, err
		}
		if rep.Tier.OffChipFree() {
			return &Point{Chips: n, Report: rep}, nil
		}
	}
	return nil, fmt.Errorf("explore: no configuration up to %d chips runs %s off-chip free",
		maxChips, wl.Model.Name)
}

// Frontier evaluates the workload at the given chip counts and marks
// the latency/energy Pareto front.
func Frontier(base core.System, wl core.Workload, chips []int) ([]Point, error) {
	points := make([]Point, 0, len(chips))
	for _, n := range chips {
		sys := base
		sys.Chips = n
		rep, err := core.Run(sys, wl)
		if err != nil {
			return nil, fmt.Errorf("explore: %d chips: %w", n, err)
		}
		points = append(points, Point{Chips: n, Report: rep})
	}
	markPareto(points)
	return points, nil
}

// markPareto flags points not dominated in (latency, energy).
func markPareto(points []Point) {
	for i := range points {
		dominated := false
		for j := range points {
			if i == j {
				continue
			}
			betterOrEqual := points[j].Report.Seconds <= points[i].Report.Seconds &&
				points[j].Report.Energy.Total() <= points[i].Report.Energy.Total()
			strictlyBetter := points[j].Report.Seconds < points[i].Report.Seconds ||
				points[j].Report.Energy.Total() < points[i].Report.Energy.Total()
			if betterOrEqual && strictlyBetter {
				dominated = true
				break
			}
		}
		points[i].Pareto = !dominated
	}
}

// ParetoFront returns only the Pareto-optimal points, ordered by
// latency.
func ParetoFront(points []Point) []Point {
	var out []Point
	for _, p := range points {
		if p.Pareto {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Report.Seconds < out[j].Report.Seconds
	})
	return out
}

// BudgetFit returns the cheapest (fewest-chip) configuration meeting
// both a latency and an energy budget, or an error naming the binding
// constraint.
func BudgetFit(base core.System, wl core.Workload, maxChips int, maxSeconds, maxJoules float64) (*Point, error) {
	var bestLatency, bestEnergy float64
	first := true
	for _, n := range LegalChipCounts(wl.Model, maxChips) {
		sys := base
		sys.Chips = n
		rep, err := core.Run(sys, wl)
		if err != nil {
			return nil, err
		}
		if first || rep.Seconds < bestLatency {
			bestLatency = rep.Seconds
		}
		if first || rep.Energy.Total() < bestEnergy {
			bestEnergy = rep.Energy.Total()
		}
		first = false
		if rep.Seconds <= maxSeconds && rep.Energy.Total() <= maxJoules {
			return &Point{Chips: n, Report: rep}, nil
		}
	}
	if bestLatency > maxSeconds {
		return nil, fmt.Errorf("explore: latency budget %.3g s unreachable (best %.3g s)", maxSeconds, bestLatency)
	}
	return nil, fmt.Errorf("explore: energy budget %.3g J unreachable (best %.3g J)", maxJoules, bestEnergy)
}
