// Package explore is a design-space exploration layer on top of the
// simulator: given a model and a workload, it answers the sizing
// questions the paper's scheme raises in practice — how many chips
// until off-chip traffic leaves the critical path, which chip counts
// are even legal for a geometry, and which configurations are
// Pareto-optimal in latency and energy.
//
// Concurrency model: every search in this package evaluates its
// candidates through the shared evalpool engine. Frontier fans its
// whole point set out at once; the first-match searches
// (MinChipsOffChipFree, BudgetFit) evaluate one worker-sized wave at
// a time so an answer at a small chip count never pays for the large
// ones. The sequential decision is always made over results in count
// order, so answers are identical to the serial scan; repeated points
// are served from the process-wide report cache.
package explore

import (
	"fmt"
	"math"
	"sort"

	"mcudist/internal/core"
	"mcudist/internal/evalpool"
	"mcudist/internal/model"
)

// Point is one evaluated configuration.
type Point struct {
	Chips  int
	Report *core.Report
	// Pareto marks latency/energy Pareto-optimal points within the
	// explored set.
	Pareto bool
}

// LegalChipCounts returns the chip counts the tensor-parallel plan
// accepts for cfg, up to max: every count from 1 to
// min(max, KVHeadCount, F).
func LegalChipCounts(cfg model.Config, max int) []int {
	limit := cfg.KVHeadCount()
	if cfg.F < limit {
		limit = cfg.F
	}
	if max < limit {
		limit = max
	}
	var out []int
	for n := 1; n <= limit; n++ {
		out = append(out, n)
	}
	return out
}

// PowersOfTwo filters counts to powers of two (the paper's sweep
// shape), always keeping 1.
func PowersOfTwo(counts []int) []int {
	var out []int
	for _, n := range counts {
		if n&(n-1) == 0 {
			out = append(out, n)
		}
	}
	return out
}

// evalWaves evaluates counts through the pool one worker-sized wave
// at a time, calling visit on each report in count order; visit
// returning true stops the scan and leaves later waves unsimulated.
// This keeps the serial scan's early-exit economics (an answer at a
// small count never pays for the large ones) while each wave still
// fans out across the workers.
func evalWaves(base core.System, wl core.Workload, counts []int, visit func(i int, rep *core.Report) bool) error {
	wave := evalpool.Default().Workers()
	for start := 0; start < len(counts); start += wave {
		end := start + wave
		if end > len(counts) {
			end = len(counts)
		}
		reports, err := evalpool.Eval(base, wl, counts[start:end])
		if err != nil {
			return err
		}
		for i, rep := range reports {
			if visit(start+i, rep) {
				return nil
			}
		}
	}
	return nil
}

// MinChipsOffChipFree returns the smallest chip count (≤ maxChips)
// whose deployment keeps L3 off the runtime critical path, together
// with its report. It returns an error if no configuration qualifies.
func MinChipsOffChipFree(base core.System, wl core.Workload, maxChips int) (*Point, error) {
	counts := LegalChipCounts(wl.Model, maxChips)
	var found *Point
	err := evalWaves(base, wl, counts, func(i int, rep *core.Report) bool {
		if rep.Tier.OffChipFree() {
			found = &Point{Chips: counts[i], Report: rep}
			return true
		}
		return false
	})
	if err != nil {
		return nil, err
	}
	if found != nil {
		return found, nil
	}
	return nil, fmt.Errorf("explore: no configuration up to %d chips runs %s off-chip free",
		maxChips, wl.Model.Name)
}

// Frontier evaluates the workload at the given chip counts and marks
// the latency/energy Pareto front.
func Frontier(base core.System, wl core.Workload, chips []int) ([]Point, error) {
	reports, err := evalpool.Eval(base, wl, chips)
	if err != nil {
		return nil, fmt.Errorf("explore: %w", err)
	}
	points := make([]Point, len(chips))
	for i, rep := range reports {
		points[i] = Point{Chips: chips[i], Report: rep}
	}
	markPareto(points)
	return points, nil
}

// markPareto flags points not dominated in (latency, energy): a point
// is dominated when another is no worse on both axes and strictly
// better on at least one; exact duplicates (equal latency AND equal
// energy) do not dominate each other, so both stay on the front.
//
// Single pass over a latency-sorted order instead of the O(n²)
// all-pairs scan: with candidates sorted by latency, a point can only
// be dominated by the minimum energy seen at strictly lower latency,
// or by a strictly lower energy at equal latency.
func markPareto(points []Point) {
	order := make([]int, len(points))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		pa, pb := points[order[a]].Report, points[order[b]].Report
		if pa.Seconds != pb.Seconds {
			return pa.Seconds < pb.Seconds
		}
		return pa.Energy.Total() < pb.Energy.Total()
	})
	bestEnergy := math.Inf(1) // min energy among strictly faster points
	for g := 0; g < len(order); {
		// One group of equal-latency points; within it only a strictly
		// lower energy dominates, so the group minimum survives
		// (duplicates of the minimum included).
		sec := points[order[g]].Report.Seconds
		end := g
		groupMin := math.Inf(1)
		for ; end < len(order) && points[order[end]].Report.Seconds == sec; end++ {
			if e := points[order[end]].Report.Energy.Total(); e < groupMin {
				groupMin = e
			}
		}
		for ; g < end; g++ {
			e := points[order[g]].Report.Energy.Total()
			points[order[g]].Pareto = bestEnergy > e && groupMin >= e
		}
		if groupMin < bestEnergy {
			bestEnergy = groupMin
		}
	}
}

// ParetoFront returns only the Pareto-optimal points, ordered by
// latency.
func ParetoFront(points []Point) []Point {
	var out []Point
	for _, p := range points {
		if p.Pareto {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Report.Seconds < out[j].Report.Seconds
	})
	return out
}

// BudgetFit returns the cheapest (fewest-chip) configuration meeting
// both a latency and an energy budget, or an error naming the binding
// constraint.
func BudgetFit(base core.System, wl core.Workload, maxChips int, maxSeconds, maxJoules float64) (*Point, error) {
	counts := LegalChipCounts(wl.Model, maxChips)
	bestLatency, bestEnergy := math.Inf(1), math.Inf(1)
	var found *Point
	err := evalWaves(base, wl, counts, func(i int, rep *core.Report) bool {
		if rep.Seconds < bestLatency {
			bestLatency = rep.Seconds
		}
		if rep.Energy.Total() < bestEnergy {
			bestEnergy = rep.Energy.Total()
		}
		if rep.Seconds <= maxSeconds && rep.Energy.Total() <= maxJoules {
			found = &Point{Chips: counts[i], Report: rep}
			return true
		}
		return false
	})
	if err != nil {
		return nil, err
	}
	if found != nil {
		return found, nil
	}
	if bestLatency > maxSeconds {
		return nil, fmt.Errorf("explore: latency budget %.3g s unreachable (best %.3g s)", maxSeconds, bestLatency)
	}
	return nil, fmt.Errorf("explore: energy budget %.3g J unreachable (best %.3g J)", maxJoules, bestEnergy)
}
