// Package explore is a design-space exploration layer on top of the
// simulator: given a model and a workload, it answers the sizing
// questions the paper's scheme raises in practice — how many chips
// until off-chip traffic leaves the critical path, which chip counts
// are even legal for a geometry, and which configurations are
// Pareto-optimal in latency and energy.
//
// Concurrency model: every search in this package evaluates its
// candidates through the shared evalpool engine. Frontier fans its
// whole point set out at once; the first-match searches
// (MinChipsOffChipFree, BudgetFit) evaluate one worker-sized wave at
// a time so an answer at a small chip count never pays for the large
// ones. The sequential decision is always made over results in count
// order, so answers are identical to the serial scan; repeated points
// are served from the process-wide report cache.
package explore

import (
	"fmt"
	"math"
	"sort"

	"mcudist/internal/collective"
	"mcudist/internal/core"
	"mcudist/internal/evalpool"
	"mcudist/internal/hw"
	"mcudist/internal/model"
)

// Point is one evaluated configuration.
type Point struct {
	Chips  int
	Report *core.Report
	// Pareto marks latency/energy Pareto-optimal points within the
	// explored set.
	Pareto bool
}

// LegalChipCounts returns the chip counts the tensor-parallel plan
// accepts for cfg, up to max: every count from 1 to
// min(max, KVHeadCount, F).
func LegalChipCounts(cfg model.Config, max int) []int {
	limit := cfg.KVHeadCount()
	if cfg.F < limit {
		limit = cfg.F
	}
	if max < limit {
		limit = max
	}
	var out []int
	for n := 1; n <= limit; n++ {
		out = append(out, n)
	}
	return out
}

// PowersOfTwo filters counts to powers of two (the paper's sweep
// shape), always keeping 1.
func PowersOfTwo(counts []int) []int {
	var out []int
	for _, n := range counts {
		if n&(n-1) == 0 {
			out = append(out, n)
		}
	}
	return out
}

// evalWaves evaluates counts through the pool one worker-sized wave
// at a time, calling visit on each report in count order; visit
// returning true stops the scan and leaves later waves unsimulated.
// This keeps the serial scan's early-exit economics (an answer at a
// small count never pays for the large ones) while each wave still
// fans out across the workers.
func evalWaves(base core.System, wl core.Workload, counts []int, visit func(i int, rep *core.Report) bool) error {
	wave := evalpool.Default().Workers()
	for start := 0; start < len(counts); start += wave {
		end := start + wave
		if end > len(counts) {
			end = len(counts)
		}
		reports, err := evalpool.Eval(base, wl, counts[start:end])
		if err != nil {
			return err
		}
		for i, rep := range reports {
			if visit(start+i, rep) {
				return nil
			}
		}
	}
	return nil
}

// MinChipsOffChipFree returns the smallest chip count (≤ maxChips)
// whose deployment keeps L3 off the runtime critical path, together
// with its report. It returns an error if no configuration qualifies.
func MinChipsOffChipFree(base core.System, wl core.Workload, maxChips int) (*Point, error) {
	counts := LegalChipCounts(wl.Model, maxChips)
	var found *Point
	err := evalWaves(base, wl, counts, func(i int, rep *core.Report) bool {
		if rep.Tier.OffChipFree() {
			found = &Point{Chips: counts[i], Report: rep}
			return true
		}
		return false
	})
	if err != nil {
		return nil, err
	}
	if found != nil {
		return found, nil
	}
	return nil, fmt.Errorf("explore: no configuration up to %d chips runs %s off-chip free",
		maxChips, wl.Model.Name)
}

// gridEval is the shared evaluation step behind every frontier in
// this package: it fans the whole candidate grid out through the
// evalpool tiers and marks the latency/energy Pareto front across the
// union. Each frontier differs only in how it spells its grid.
func gridEval(points []evalpool.Point) ([]*core.Report, []bool, error) {
	reports, err := evalpool.Map(points)
	if err != nil {
		return nil, nil, fmt.Errorf("explore: %w", err)
	}
	return reports, paretoMask(reports), nil
}

// Frontier evaluates the workload at the given chip counts and marks
// the latency/energy Pareto front.
func Frontier(base core.System, wl core.Workload, chips []int) ([]Point, error) {
	pts := make([]evalpool.Point, len(chips))
	for i, n := range chips {
		sys := base
		sys.Chips = n
		pts[i] = evalpool.Point{System: sys, Workload: wl}
	}
	reports, pareto, err := gridEval(pts)
	if err != nil {
		return nil, err
	}
	points := make([]Point, len(chips))
	for i, rep := range reports {
		points[i] = Point{Chips: chips[i], Report: rep, Pareto: pareto[i]}
	}
	return points, nil
}

// markPareto flags points not dominated in (latency, energy).
func markPareto(points []Point) {
	reports := make([]*core.Report, len(points))
	for i := range points {
		reports[i] = points[i].Report
	}
	for i, p := range paretoMask(reports) {
		points[i].Pareto = p
	}
}

// paretoMask flags reports not dominated in (latency, energy): a
// report is dominated when another is no worse on both axes and
// strictly better on at least one; exact duplicates (equal latency AND
// equal energy) do not dominate each other, so both stay on the front.
//
// Single pass over a latency-sorted order instead of the O(n²)
// all-pairs scan: with candidates sorted by latency, a point can only
// be dominated by the minimum energy seen at strictly lower latency,
// or by a strictly lower energy at equal latency.
func paretoMask(reports []*core.Report) []bool {
	pareto := make([]bool, len(reports))
	order := make([]int, len(reports))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		pa, pb := reports[order[a]], reports[order[b]]
		if pa.Seconds != pb.Seconds {
			return pa.Seconds < pb.Seconds
		}
		return pa.Energy.Total() < pb.Energy.Total()
	})
	bestEnergy := math.Inf(1) // min energy among strictly faster points
	for g := 0; g < len(order); {
		// One group of equal-latency points; within it only a strictly
		// lower energy dominates, so the group minimum survives
		// (duplicates of the minimum included).
		sec := reports[order[g]].Seconds
		end := g
		groupMin := math.Inf(1)
		for ; end < len(order) && reports[order[end]].Seconds == sec; end++ {
			if e := reports[order[end]].Energy.Total(); e < groupMin {
				groupMin = e
			}
		}
		for ; g < end; g++ {
			e := reports[order[g]].Energy.Total()
			pareto[order[g]] = bestEnergy > e && groupMin >= e
		}
		if groupMin < bestEnergy {
			bestEnergy = groupMin
		}
	}
	return pareto
}

// ParetoFront returns only the Pareto-optimal points, ordered by
// latency.
func ParetoFront(points []Point) []Point {
	var out []Point
	for _, p := range points {
		if p.Pareto {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Report.Seconds < out[j].Report.Seconds
	})
	return out
}

// ClassCycles is one synchronization class's share of a point's
// chip-to-chip link time (summed across chips).
type ClassCycles struct {
	Class    collective.SyncClass
	Topology hw.Topology
	// C2CCycles is the class's link busy time.
	C2CCycles float64
}

// classCycles extracts the per-sync C2C attribution of a report.
func classCycles(rep *core.Report) []ClassCycles {
	out := make([]ClassCycles, 0, len(rep.ByClass))
	for _, cs := range rep.ByClass {
		out = append(out, ClassCycles{Class: cs.Class, Topology: cs.Topology, C2CCycles: cs.C2CCycles})
	}
	return out
}

// TopologyPoint is one evaluated (topology, chip count) configuration
// of a topology-aware design-space sweep.
type TopologyPoint struct {
	Topology hw.Topology
	Chips    int
	Report   *core.Report
	// C2CCyclesByClass attributes the point's chip-to-chip link time
	// to synchronization classes (prefill vs decode vs the replicated
	// exchanges), so a per-sync plan's win over this point is
	// attributable to the classes that produced it rather than only
	// the total.
	C2CCyclesByClass []ClassCycles
	// Pareto marks latency/energy Pareto-optimal points within the
	// explored topology × chip-count grid.
	Pareto bool
}

// TopologyFrontier evaluates the workload over the full topology ×
// chip-count grid and marks the latency/energy Pareto front across
// the union — the network shape becomes an exploration axis next to
// the chip count. Points are returned grouped by topology in enum
// order, chip counts ascending within each topology.
func TopologyFrontier(base core.System, wl core.Workload, chips []int) ([]TopologyPoint, error) {
	topos := hw.Topologies()
	points := make([]evalpool.Point, 0, len(topos)*len(chips))
	out := make([]TopologyPoint, 0, len(topos)*len(chips))
	for _, topo := range topos {
		for _, n := range chips {
			sys := base
			sys.HW.Topology = topo
			sys.Chips = n
			points = append(points, evalpool.Point{System: sys, Workload: wl})
			out = append(out, TopologyPoint{Topology: topo, Chips: n})
		}
	}
	reports, pareto, err := gridEval(points)
	if err != nil {
		return nil, err
	}
	for i, rep := range reports {
		out[i].Report = rep
		out[i].C2CCyclesByClass = classCycles(rep)
		out[i].Pareto = pareto[i]
	}
	return out, nil
}

// NetworkPoint is one evaluated (topology, network, chip count)
// configuration of a network-aware design-space sweep.
type NetworkPoint struct {
	Topology hw.Topology
	Network  hw.Network
	Chips    int
	Report   *core.Report
	// C2CCyclesByClass attributes the point's chip-to-chip link time
	// to synchronization classes, as on TopologyPoint.
	C2CCyclesByClass []ClassCycles
	// Pareto marks latency/energy Pareto-optimal points within the
	// explored topology × network × chip-count grid.
	Pareto bool
}

// NetworkFrontier evaluates the workload over the full topology ×
// network-profile × chip-count grid and marks the latency/energy
// Pareto front across the union — the link layer becomes an
// exploration axis next to the shape and the chip count, which is
// where clustered boards show their trade: a topology that wins under
// uniform links can lose once its hops cross a slow backhaul. Points
// are grouped by network in input order, then topology in enum order,
// chip counts ascending.
func NetworkFrontier(base core.System, wl core.Workload, chips []int, nets []hw.Network) ([]NetworkPoint, error) {
	topos := hw.Topologies()
	points := make([]evalpool.Point, 0, len(nets)*len(topos)*len(chips))
	out := make([]NetworkPoint, 0, len(nets)*len(topos)*len(chips))
	for _, net := range nets {
		for _, topo := range topos {
			for _, n := range chips {
				sys := base
				sys.HW.Network = net
				sys.HW.Topology = topo
				sys.Chips = n
				points = append(points, evalpool.Point{System: sys, Workload: wl})
				out = append(out, NetworkPoint{Topology: topo, Network: net, Chips: n})
			}
		}
	}
	reports, pareto, err := gridEval(points)
	if err != nil {
		return nil, err
	}
	for i, rep := range reports {
		out[i].Report = rep
		out[i].C2CCyclesByClass = classCycles(rep)
		out[i].Pareto = pareto[i]
	}
	return out, nil
}

// BestTopology evaluates every interconnect shape on the base system
// (at its chip count) and returns the lowest-latency one with its
// report. The base system's network description participates fully:
// under a clustered backhaul the winner can differ from the uniform
// network's. Ties keep the earliest shape in enum order, so the
// paper's tree wins exact draws.
func BestTopology(base core.System, wl core.Workload) (hw.Topology, *core.Report, error) {
	topos := hw.Topologies()
	points := make([]evalpool.Point, len(topos))
	for i, topo := range topos {
		sys := base
		sys.HW.Topology = topo
		points[i] = evalpool.Point{System: sys, Workload: wl}
	}
	reports, err := evalpool.Map(points)
	if err != nil {
		return 0, nil, fmt.Errorf("explore: %w", err)
	}
	best := 0
	for i := 1; i < len(reports); i++ {
		if reports[i].Cycles < reports[best].Cycles {
			best = i
		}
	}
	return topos[best], reports[best], nil
}

// BudgetFit returns the cheapest (fewest-chip) configuration meeting
// both a latency and an energy budget, or an error naming the binding
// constraint.
func BudgetFit(base core.System, wl core.Workload, maxChips int, maxSeconds, maxJoules float64) (*Point, error) {
	counts := LegalChipCounts(wl.Model, maxChips)
	bestLatency, bestEnergy := math.Inf(1), math.Inf(1)
	var found *Point
	err := evalWaves(base, wl, counts, func(i int, rep *core.Report) bool {
		if rep.Seconds < bestLatency {
			bestLatency = rep.Seconds
		}
		if rep.Energy.Total() < bestEnergy {
			bestEnergy = rep.Energy.Total()
		}
		if rep.Seconds <= maxSeconds && rep.Energy.Total() <= maxJoules {
			found = &Point{Chips: counts[i], Report: rep}
			return true
		}
		return false
	})
	if err != nil {
		return nil, err
	}
	if found != nil {
		return found, nil
	}
	if bestLatency > maxSeconds {
		return nil, fmt.Errorf("explore: latency budget %.3g s unreachable (best %.3g s)", maxSeconds, bestLatency)
	}
	return nil, fmt.Errorf("explore: energy budget %.3g J unreachable (best %.3g J)", maxJoules, bestEnergy)
}
