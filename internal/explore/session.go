package explore

import (
	"fmt"
	"sort"

	"mcudist/internal/collective"
	"mcudist/internal/core"
	"mcudist/internal/evalpool"
	"mcudist/internal/hw"
	"mcudist/internal/model"
)

// This file autotunes a whole generation session — one prompt prefill
// plus one autoregressive decode step — jointly over the full
// class × topology grid. The joint grid is topologies^|classes|
// candidates (256 for the tensor-parallel scheme's four session
// classes), and evaluating each candidate as deployed costs two
// simulations, so exhaustive enumeration runs ~2·4^4 exact simulations
// per operating point — and multiplies again under a network-profile
// axis. AutotuneSession makes that tractable with a predict-then-verify
// structure: the shared Surrogate (surrogate.go) — a per-class cost
// decomposition built from one probe simulation per (class, topology) —
// predicts every candidate's session cost additively in microseconds,
// and only the predicted top-K candidates (plus the four uniform
// sessions, which the margin needs anyway) are verified with exact
// simulations. The exact simulator stays the ground truth: the winner
// is always chosen on verified cycles, never on predictions.

// DefaultSessionTopK is the number of predicted-best candidates
// AutotuneSession verifies exactly when SessionOptions.TopK is zero.
const DefaultSessionTopK = 8

// SessionOptions tunes AutotuneSession.
type SessionOptions struct {
	// TopK is the number of predicted-best joint candidates to verify
	// with exact simulations (the pruning knob; 0 selects
	// DefaultSessionTopK). The four uniform sessions are always
	// verified in addition — the margin baseline needs them — so the
	// winner can never lose to a uniform plan.
	TopK int
	// Exhaustive disables the predictor and evaluates every joint
	// candidate exactly, as deployed (the merged plan rides in both
	// phases' cache keys). This is the ground-truth reference the
	// equivalence tests hold the pruned search to; it costs
	// 2·topologies^|classes| simulations.
	Exhaustive bool
	// PromptSeqLen / DecodeSeqLen override the two phases' sequence
	// lengths (0 selects the paper's value for the model and mode,
	// matching the PR 4 session ablation).
	PromptSeqLen int
	DecodeSeqLen int
}

// SessionCandidate is one exactly-verified joint candidate: its plan,
// the predictor's estimate, and the exact session cycles.
type SessionCandidate struct {
	Plan            collective.Plan
	PredictedCycles float64
	Cycles          float64
}

// ClassCost is one entry of the predictor's per-class cost vector: the
// measured session-cycle delta of binding Class to Topology instead of
// the reference topology, with every other class held at the
// reference — one probe simulation per entry, composable additively
// across classes and phases.
type ClassCost struct {
	// Mode is the phase the probe ran in (the class's own phase for
	// the tensor-parallel classes; the replicated exchanges execute in
	// both phases and get one entry per phase).
	Mode model.Mode
	// Class and Topology name the binding the probe measured.
	Class    collective.SyncClass
	Topology hw.Topology
	// DeltaCycles is probe cycles minus the all-reference baseline's
	// cycles for the phase (0 for the reference topology itself).
	DeltaCycles float64
	// C2CCycles is the class's link busy time in the probe — the
	// ByClass attribution the decomposition rests on.
	C2CCycles float64
}

// SessionResult is the outcome of a joint prefill+decode plan
// autotuning.
type SessionResult struct {
	// Plan binds every session synchronization class — the prefill and
	// decode classes jointly — to its winning topology.
	Plan collective.Plan
	// Cycles is the winner's exact session cost (prefill + one decode
	// step); PredictedCycles is what the predictor estimated for it
	// before verification (equal to Cycles under Exhaustive).
	Cycles          float64
	PredictedCycles float64
	// PrefillReport / DecodeReport are the winner's two exact
	// evaluations.
	PrefillReport *core.Report
	DecodeReport  *core.Report
	// PerClass lists the winning choice per session class, in class
	// order.
	PerClass []ClassChoice
	// BestUniform is the best single-topology session — the baseline a
	// joint plan has to beat — with its session cycles and the win
	// margin UniformCycles / Cycles (>= 1; 1 means a uniform plan is
	// optimal).
	BestUniform   hw.Topology
	UniformCycles float64
	Margin        float64
	// RankAccuracy is the predictor's pairwise ordering concordance
	// over the verified candidates: the fraction of verified pairs the
	// predicted ranking ordered consistently with exact cycles (1 under
	// Exhaustive, where no prediction happens).
	RankAccuracy float64
	// Candidates is the size of the joint class × topology grid;
	// GridSims = 2 × Candidates is the exact-simulation bill of
	// enumerating it exhaustively; ExactSims is the number of distinct
	// exact evaluations this call needed (measured as the evalpool
	// memory-miss delta, so points already memoized — shared probes,
	// repeated calls — are not double-billed, and evaluations answered
	// by a warm persistent store still count: the search cost is a
	// property of the search, not of where the reports were stored).
	Candidates int
	GridSims   int
	ExactSims  int
	// Verified lists the exactly-checked candidates in predicted order
	// (empty under Exhaustive) — the predictor-vs-exact margin table.
	Verified []SessionCandidate
	// Costs is the predictor's per-class cost vector (empty under
	// Exhaustive).
	Costs []ClassCost
	// Network is the network description the session was tuned for.
	Network hw.Network
}

// sessionMode is one phase of the session: its workload and the
// synchronization classes it executes.
type sessionMode struct {
	wl      core.Workload
	classes []collective.SyncClass
}

// sessionModes resolves the two phases and the ordered union of their
// active classes (the joint plan's axis). The tensor-parallel phases
// contribute disjoint classes; the replicated exchanges execute in
// both phases and appear once.
func sessionModes(base core.System, cfg model.Config, opts SessionOptions) ([]sessionMode, []collective.SyncClass, error) {
	pre := collective.ActiveClasses(base.Strategy, model.Prompt)
	dec := collective.ActiveClasses(base.Strategy, model.Autoregressive)
	if len(pre) == 0 || len(dec) == 0 {
		return nil, nil, fmt.Errorf("explore: the %s strategy executes no collective synchronizations to plan", base.Strategy)
	}
	modes := []sessionMode{
		{wl: core.Workload{Model: cfg, Mode: model.Prompt, SeqLen: opts.PromptSeqLen}, classes: pre},
		{wl: core.Workload{Model: cfg, Mode: model.Autoregressive, SeqLen: opts.DecodeSeqLen}, classes: dec},
	}
	var union []collective.SyncClass
	seen := map[collective.SyncClass]bool{}
	for _, m := range modes {
		for _, c := range m.classes {
			if !seen[c] {
				seen[c] = true
				union = append(union, c)
			}
		}
	}
	return modes, union, nil
}

// sessionModePoint spells one phase's exact evaluation under a binding
// choice. All of the phase's classes on one topology collapse to the
// zero-plan + run-topology spelling, sharing cache entries with the
// uniform baselines, BestTopology, and the frontier sweeps; mixed
// tuples bind the phase's classes explicitly, matching AutotunePlan's
// grid spelling. The base system's own SyncPlan is overridden either
// way.
func sessionModePoint(base core.System, m sessionMode, pick func(collective.SyncClass) hw.Topology) evalpool.Point {
	sys := base
	same := true
	t0 := pick(m.classes[0])
	for _, c := range m.classes[1:] {
		if pick(c) != t0 {
			same = false
			break
		}
	}
	if same {
		sys.Options.SyncPlan = collective.Plan{}
		sys.HW.Topology = t0
	} else {
		var p collective.Plan
		for _, c := range m.classes {
			p = p.With(c, pick(c))
		}
		sys.Options.SyncPlan = p
	}
	return evalpool.Point{System: sys, Workload: m.wl}
}

// sessionEval collects evaluation points with deduplication, so one
// Map call serves every distinct configuration of a stage.
type sessionEval struct {
	points []evalpool.Point
	index  map[evalpool.Point]int
}

func newSessionEval() *sessionEval {
	return &sessionEval{index: map[evalpool.Point]int{}}
}

func (se *sessionEval) add(pt evalpool.Point) int {
	if i, ok := se.index[pt]; ok {
		return i
	}
	i := len(se.points)
	se.points = append(se.points, pt)
	se.index[pt] = i
	return i
}

// sessionCand is one joint candidate: its topology index per union
// class (odometer order, first index cycling fastest — the same
// enumeration AutotunePlan uses, so ties keep the earliest candidate
// and the paper's tree wins exact draws) and the fully bound plan.
type sessionCand struct {
	idx  []int
	plan collective.Plan
}

// enumerateSession builds the joint grid over the union classes.
func enumerateSession(union []collective.SyncClass, topos []hw.Topology) []sessionCand {
	var cands []sessionCand
	idx := make([]int, len(union))
	for {
		var p collective.Plan
		for i, c := range union {
			p = p.With(c, topos[idx[i]])
		}
		cands = append(cands, sessionCand{idx: append([]int(nil), idx...), plan: p})
		j := 0
		for ; j < len(idx); j++ {
			idx[j]++
			if idx[j] < len(topos) {
				break
			}
			idx[j] = 0
		}
		if j == len(idx) {
			break
		}
	}
	return cands
}

// AutotuneSession tunes the per-sync collective plan of a whole
// generation session — one prompt prefill plus one autoregressive
// decode step at the paper's sequence lengths — jointly over the full
// class × topology grid, for the base system's chip count and network.
//
// By default it runs the predict-then-verify search: one probe
// simulation per (class, topology) builds an additive per-class cost
// model (session cost of a candidate = per-phase baseline + the sum of
// its classes' measured deltas), every candidate in the joint grid is
// ranked by predicted cost, and only the top-K plus the four uniform
// sessions are verified exactly. The winner is the verified candidate
// with the fewest exact cycles — predictions only choose what to
// verify, never who wins — and on the pinned operating points the
// equivalence tests hold it identical to exhaustive enumeration at a
// fraction of the simulations (ExactSims vs GridSims on the result).
// Set the returned Plan on System.Options.SyncPlan to deploy it.
func AutotuneSession(base core.System, cfg model.Config, opts SessionOptions) (*SessionResult, error) {
	evalsBefore := evalpool.Evaluations()
	modes, union, err := sessionModes(base, cfg, opts)
	if err != nil {
		return nil, err
	}
	topos := hw.Topologies()
	refIdx := topoIndex(topos, base.HW.Topology)
	if refIdx < 0 {
		return nil, fmt.Errorf("explore: %s is not a supported topology", base.HW.Topology)
	}
	cands := enumerateSession(union, topos)

	res := &SessionResult{
		Candidates: len(cands),
		GridSims:   2 * len(cands),
		Network:    base.HW.Network,
	}
	var exact map[int]float64              // candidate index -> exact session cycles
	var modeReports map[int][]*core.Report // candidate index -> per-phase reports
	var predicted []float64
	var verifyOrder []int

	if opts.Exhaustive {
		exact, modeReports, err = sessionExhaustive(base, modes, cands)
		if err != nil {
			return nil, err
		}
		for i := range cands {
			verifyOrder = append(verifyOrder, i)
		}
	} else {
		pred, err := fitSurrogate(base, modes, union, topos, refIdx)
		if err != nil {
			return nil, err
		}
		res.Costs = pred.costs
		predicted = make([]float64, len(cands))
		for i, c := range cands {
			predicted[i] = pred.predictCycles(c.idx)
		}
		// Rank by predicted cost; ties keep enumeration order.
		order := make([]int, len(cands))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			if predicted[order[a]] != predicted[order[b]] {
				return predicted[order[a]] < predicted[order[b]]
			}
			return order[a] < order[b]
		})
		topK := opts.TopK
		if topK <= 0 {
			topK = DefaultSessionTopK
		}
		if topK > len(order) {
			topK = len(order)
		}
		verifyOrder = append(verifyOrder, order[:topK]...)
		// The uniform sessions verify for free — their zero-plan
		// spellings are the margin baseline's own points — and pinning
		// them in the verified set guarantees the winner never loses to
		// a uniform plan.
		inSet := map[int]bool{}
		for _, i := range verifyOrder {
			inSet[i] = true
		}
		for ti := range topos {
			if i := allSameIndex(ti, len(union), len(topos)); !inSet[i] {
				inSet[i] = true
				verifyOrder = append(verifyOrder, i)
			}
		}
		exact, modeReports, err = sessionVerify(base, modes, cands, verifyOrder)
		if err != nil {
			return nil, err
		}
	}

	// Winner: fewest exact session cycles among the verified
	// candidates; ties keep the earliest candidate in enumeration
	// order.
	best := -1
	for _, i := range verifyOrder {
		if best < 0 || exact[i] < exact[best] || (exact[i] == exact[best] && i < best) {
			best = i
		}
	}
	res.Plan = cands[best].plan
	res.Cycles = exact[best]
	res.PrefillReport = modeReports[best][0]
	res.DecodeReport = modeReports[best][1]
	if opts.Exhaustive {
		res.PredictedCycles = res.Cycles
		res.RankAccuracy = 1
	} else {
		res.PredictedCycles = predicted[best]
		for _, i := range verifyOrder {
			res.Verified = append(res.Verified, SessionCandidate{
				Plan:            cands[i].plan,
				PredictedCycles: predicted[i],
				Cycles:          exact[i],
			})
		}
		sort.SliceStable(res.Verified, func(a, b int) bool {
			return res.Verified[a].PredictedCycles < res.Verified[b].PredictedCycles
		})
		res.RankAccuracy = rankConcordance(res.Verified)
	}
	for _, c := range union {
		topo, _ := res.Plan.Explicit(c)
		res.PerClass = append(res.PerClass, ClassChoice{Class: c, Topology: topo})
	}
	// Best uniform session: the all-same candidates are always
	// verified (exhaustive trivially includes them).
	uniBest := -1
	for ti := range topos {
		i := allSameIndex(ti, len(union), len(topos))
		if uniBest < 0 || exact[i] < exact[allSameIndex(uniBest, len(union), len(topos))] {
			uniBest = ti
		}
	}
	res.BestUniform = topos[uniBest]
	res.UniformCycles = exact[allSameIndex(uniBest, len(union), len(topos))]
	res.Margin = res.UniformCycles / res.Cycles
	res.ExactSims = int(evalpool.Evaluations() - evalsBefore)
	return res, nil
}

// allSameIndex is the enumeration index of the candidate binding every
// class to topology ti: with the first class's index cycling fastest,
// that is ti summed over every digit's place value.
func allSameIndex(ti, classes, topos int) int {
	idx, place := 0, 1
	for k := 0; k < classes; k++ {
		idx += ti * place
		place *= topos
	}
	return idx
}

// sessionVerify evaluates the selected candidates exactly, one
// phase-restricted point per phase (so probe and uniform points are
// reused from the cache), and returns exact session cycles plus the
// per-phase reports.
func sessionVerify(base core.System, modes []sessionMode, cands []sessionCand, sel []int) (map[int]float64, map[int][]*core.Report, error) {
	ev := newSessionEval()
	pts := make(map[int][]int, len(sel))
	for _, i := range sel {
		c := cands[i]
		ids := make([]int, len(modes))
		for mi, m := range modes {
			cc := c
			ids[mi] = ev.add(sessionModePoint(base, m, func(x collective.SyncClass) hw.Topology {
				t, _ := cc.plan.Explicit(x)
				return t
			}))
		}
		pts[i] = ids
	}
	reports, err := evalpool.Map(ev.points)
	if err != nil {
		return nil, nil, fmt.Errorf("explore: session verify: %w", err)
	}
	exact := make(map[int]float64, len(sel))
	modeReports := make(map[int][]*core.Report, len(sel))
	for i, ids := range pts {
		var sum float64
		reps := make([]*core.Report, len(ids))
		for mi, id := range ids {
			reps[mi] = reports[id]
			sum += reports[id].Cycles
		}
		exact[i] = sum
		modeReports[i] = reps
	}
	return exact, modeReports, nil
}

// sessionExhaustive evaluates every joint candidate as deployed: the
// fully merged plan rides in both phases' cache keys, which is exactly
// how a user runs the plan — and why the naive grid costs
// 2 × candidates simulations (phase results that cannot depend on the
// other phase's bindings still occupy distinct cache entries). This is
// the ground truth the pruned search is held to.
func sessionExhaustive(base core.System, modes []sessionMode, cands []sessionCand) (map[int]float64, map[int][]*core.Report, error) {
	ev := newSessionEval()
	pts := make(map[int][]int, len(cands))
	for i, c := range cands {
		sys := base
		sys.Options.SyncPlan = c.plan
		ids := make([]int, len(modes))
		for mi, m := range modes {
			ids[mi] = ev.add(evalpool.Point{System: sys, Workload: m.wl})
		}
		pts[i] = ids
	}
	reports, err := evalpool.Map(ev.points)
	if err != nil {
		return nil, nil, fmt.Errorf("explore: session grid: %w", err)
	}
	exact := make(map[int]float64, len(cands))
	modeReports := make(map[int][]*core.Report, len(cands))
	for i, ids := range pts {
		var sum float64
		reps := make([]*core.Report, len(ids))
		for mi, id := range ids {
			reps[mi] = reports[id]
			sum += reports[id].Cycles
		}
		exact[i] = sum
		modeReports[i] = reps
	}
	return exact, modeReports, nil
}

// rankConcordance is the fraction of verified candidate pairs whose
// exact ordering agrees with the predicted ordering (list is in
// predicted order; exact ties count as concordant).
func rankConcordance(v []SessionCandidate) float64 {
	if len(v) < 2 {
		return 1
	}
	pairs, ok := 0, 0
	for i := 0; i < len(v); i++ {
		for j := i + 1; j < len(v); j++ {
			pairs++
			if v[i].Cycles <= v[j].Cycles {
				ok++
			}
		}
	}
	return float64(ok) / float64(pairs)
}

// AutotuneSessionNetworks folds the network axis into the session
// autotuner: it tunes one joint plan per network profile on otherwise
// identical systems — "a plan per network profile", the clustered
// boards' deployment question — and returns results in input order.
// All evaluations share the process-wide report cache.
func AutotuneSessionNetworks(base core.System, cfg model.Config, opts SessionOptions, nets []hw.Network) ([]*SessionResult, error) {
	out := make([]*SessionResult, len(nets))
	for i, net := range nets {
		sys := base
		sys.HW.Network = net
		res, err := AutotuneSession(sys, cfg, opts)
		if err != nil {
			return nil, fmt.Errorf("explore: session autotune on %s: %w", net, err)
		}
		out[i] = res
	}
	return out, nil
}
