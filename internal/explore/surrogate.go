package explore

import (
	"fmt"

	"mcudist/internal/collective"
	"mcudist/internal/core"
	"mcudist/internal/evalpool"
	"mcudist/internal/hw"
	"mcudist/internal/model"
)

// Surrogate is the per-class additive cost model behind every
// surrogate-first search in this package, extracted from
// AutotuneSession (where PR 5 proved the structure: 20 probe
// simulations steer a 512-simulation grid to the provably identical
// winner). Fitting runs one probe simulation per (phase, class,
// topology) — the four uniform sessions plus every single-deviation
// binding — and the fitted model predicts any joint plan's session
// cycles and energy by composing the measured deltas additively, in
// microseconds instead of simulations. Predictions only ever decide
// what to verify: every consumer (AutotuneSession, PlanFrontier,
// PlanBudgetFit) re-evaluates its predicted winners exactly and
// decides on exact numbers.
//
// The single-deviation probes make the prediction exact whenever at
// most one class per phase leaves the reference topology; the residual
// is the within-phase interaction of simultaneously rebound classes,
// which the verification pass absorbs. All probe points flow through
// the shared evalpool tiers, so a store-backed process fits the
// surrogate without simulating at all.
type Surrogate struct {
	modes  []sessionMode
	union  []collective.SyncClass
	topos  []hw.Topology
	refIdx int
	pos    map[collective.SyncClass]int // union class -> candidate index position

	// Per-phase all-reference baselines and per (phase, class,
	// topology) measured deltas, for both objectives. The energy model
	// reads the same probe reports the cycle model does — the second
	// objective is free.
	baseCycles  []float64
	baseSecs    []float64
	baseJoules  []float64
	deltaCycles []map[collective.SyncClass][]float64
	deltaSecs   []map[collective.SyncClass][]float64
	deltaJoules []map[collective.SyncClass][]float64

	costs []ClassCost
}

// topoIndex locates t in topos, or -1.
func topoIndex(topos []hw.Topology, t hw.Topology) int {
	for i, tt := range topos {
		if tt == t {
			return i
		}
	}
	return -1
}

// FitSurrogate fits the additive session cost model for the base
// system's chip count and network: one whole-session probe per
// (phase, class, topology), cycles and energy both. The base system's
// run topology is the reference the deltas are measured against.
func FitSurrogate(base core.System, cfg model.Config, opts SessionOptions) (*Surrogate, error) {
	modes, union, err := sessionModes(base, cfg, opts)
	if err != nil {
		return nil, err
	}
	topos := hw.Topologies()
	refIdx := topoIndex(topos, base.HW.Topology)
	if refIdx < 0 {
		return nil, fmt.Errorf("explore: %s is not a supported topology", base.HW.Topology)
	}
	return fitSurrogate(base, modes, union, topos, refIdx)
}

// fitSurrogate runs the probe simulations — the uniform sessions (the
// margin baselines need them anyway) and one single-deviation probe
// per (phase, class, non-reference topology) — and assembles the
// model.
func fitSurrogate(base core.System, modes []sessionMode, union []collective.SyncClass, topos []hw.Topology, refIdx int) (*Surrogate, error) {
	ref := topos[refIdx]
	ev := newSessionEval()
	uniform := make([][]int, len(modes))
	type probeRef struct {
		mode  int
		class collective.SyncClass
		topo  int
		point int
	}
	var probes []probeRef
	for mi, m := range modes {
		uniform[mi] = make([]int, len(topos))
		for ti, t := range topos {
			tt := t
			uniform[mi][ti] = ev.add(sessionModePoint(base, m, func(collective.SyncClass) hw.Topology { return tt }))
		}
		for _, c := range m.classes {
			for ti, t := range topos {
				if ti == refIdx {
					continue
				}
				cc, tt := c, t
				pt := ev.add(sessionModePoint(base, m, func(x collective.SyncClass) hw.Topology {
					if x == cc {
						return tt
					}
					return ref
				}))
				probes = append(probes, probeRef{mode: mi, class: c, topo: ti, point: pt})
			}
		}
	}
	reports, err := evalpool.Map(ev.points)
	if err != nil {
		return nil, fmt.Errorf("explore: surrogate probes: %w", err)
	}
	s := &Surrogate{
		modes:       modes,
		union:       union,
		topos:       topos,
		refIdx:      refIdx,
		pos:         make(map[collective.SyncClass]int, len(union)),
		baseCycles:  make([]float64, len(modes)),
		baseSecs:    make([]float64, len(modes)),
		baseJoules:  make([]float64, len(modes)),
		deltaCycles: make([]map[collective.SyncClass][]float64, len(modes)),
		deltaSecs:   make([]map[collective.SyncClass][]float64, len(modes)),
		deltaJoules: make([]map[collective.SyncClass][]float64, len(modes)),
	}
	for i, c := range union {
		s.pos[c] = i
	}
	classC2C := func(rep *core.Report, c collective.SyncClass) float64 {
		for _, cs := range rep.ByClass {
			if cs.Class == c {
				return cs.C2CCycles
			}
		}
		return 0
	}
	for mi, m := range modes {
		s.baseCycles[mi] = reports[uniform[mi][refIdx]].Cycles
		s.baseSecs[mi] = reports[uniform[mi][refIdx]].Seconds
		s.baseJoules[mi] = reports[uniform[mi][refIdx]].Energy.Total()
		s.deltaCycles[mi] = map[collective.SyncClass][]float64{}
		s.deltaSecs[mi] = map[collective.SyncClass][]float64{}
		s.deltaJoules[mi] = map[collective.SyncClass][]float64{}
		for _, c := range m.classes {
			s.deltaCycles[mi][c] = make([]float64, len(topos))
			s.deltaSecs[mi][c] = make([]float64, len(topos))
			s.deltaJoules[mi][c] = make([]float64, len(topos))
			s.costs = append(s.costs, ClassCost{
				Mode:      m.wl.Mode,
				Class:     c,
				Topology:  ref,
				C2CCycles: classC2C(reports[uniform[mi][refIdx]], c),
			})
		}
	}
	for _, pr := range probes {
		rep := reports[pr.point]
		s.deltaCycles[pr.mode][pr.class][pr.topo] = rep.Cycles - s.baseCycles[pr.mode]
		s.deltaSecs[pr.mode][pr.class][pr.topo] = rep.Seconds - s.baseSecs[pr.mode]
		s.deltaJoules[pr.mode][pr.class][pr.topo] = rep.Energy.Total() - s.baseJoules[pr.mode]
		s.costs = append(s.costs, ClassCost{
			Mode:        modes[pr.mode].wl.Mode,
			Class:       pr.class,
			Topology:    s.topos[pr.topo],
			DeltaCycles: rep.Cycles - s.baseCycles[pr.mode],
			C2CCycles:   classC2C(rep, pr.class),
		})
	}
	return s, nil
}

// Classes returns the session's joint plan axis: the ordered union of
// both phases' active synchronization classes.
func (s *Surrogate) Classes() []collective.SyncClass {
	return append([]collective.SyncClass(nil), s.union...)
}

// Reference returns the topology the deltas are measured against (the
// fitted system's run topology).
func (s *Surrogate) Reference() hw.Topology { return s.topos[s.refIdx] }

// Costs returns the fitted per-class cost vector — the decomposition
// behind every prediction, reportable as a table.
func (s *Surrogate) Costs() []ClassCost {
	return append([]ClassCost(nil), s.costs...)
}

// Candidates enumerates the full joint class × topology grid as bound
// plans, in the canonical odometer order (first union class cycling
// fastest) every search in this package shares, so ties resolve
// identically everywhere.
func (s *Surrogate) Candidates() []collective.Plan {
	cands := enumerateSession(s.union, s.topos)
	out := make([]collective.Plan, len(cands))
	for i, c := range cands {
		out[i] = c.plan
	}
	return out
}

// planIdx resolves a plan to per-union-class topology indices;
// unbound classes resolve to the reference topology.
func (s *Surrogate) planIdx(p collective.Plan) []int {
	idx := make([]int, len(s.union))
	for i, c := range s.union {
		idx[i] = topoIndex(s.topos, p.Topology(c, s.topos[s.refIdx]))
	}
	return idx
}

// PredictCycles predicts the plan's whole-session cycle cost (prompt
// prefill plus one decode step) from the fitted deltas — a few
// additions, no simulation.
func (s *Surrogate) PredictCycles(p collective.Plan) float64 {
	return s.predictCycles(s.planIdx(p))
}

// PredictSeconds predicts the plan's whole-session wall time the same
// way (seconds are fitted from the probe reports directly, so clock
// differences between phases need no assumptions).
func (s *Surrogate) PredictSeconds(p collective.Plan) float64 {
	return s.predictSeconds(s.planIdx(p))
}

// PredictJoules predicts the plan's whole-session energy the same
// way.
func (s *Surrogate) PredictJoules(p collective.Plan) float64 {
	return s.predictJoules(s.planIdx(p))
}

func (s *Surrogate) predictCycles(idx []int) float64 {
	total := 0.0
	for mi, m := range s.modes {
		cycles := s.baseCycles[mi]
		for _, c := range m.classes {
			cycles += s.deltaCycles[mi][c][idx[s.pos[c]]]
		}
		total += cycles
	}
	return total
}

func (s *Surrogate) predictSeconds(idx []int) float64 {
	total := 0.0
	for mi, m := range s.modes {
		secs := s.baseSecs[mi]
		for _, c := range m.classes {
			secs += s.deltaSecs[mi][c][idx[s.pos[c]]]
		}
		total += secs
	}
	return total
}

func (s *Surrogate) predictJoules(idx []int) float64 {
	total := 0.0
	for mi, m := range s.modes {
		joules := s.baseJoules[mi]
		for _, c := range m.classes {
			joules += s.deltaJoules[mi][c][idx[s.pos[c]]]
		}
		total += joules
	}
	return total
}

// Verify evaluates the given plans exactly — one phase-restricted
// point per phase, so probe and uniform configurations are served
// from the cache tiers — and returns one VerifiedPlan per input, in
// input order.
func (s *Surrogate) Verify(base core.System, plans []collective.Plan) ([]VerifiedPlan, error) {
	cands := make([]sessionCand, len(plans))
	sel := make([]int, len(plans))
	for i, p := range plans {
		cands[i] = sessionCand{idx: s.planIdx(p), plan: p}
		sel[i] = i
	}
	exact, modeReports, err := sessionVerify(base, s.modes, cands, sel)
	if err != nil {
		return nil, err
	}
	out := make([]VerifiedPlan, len(plans))
	for i, p := range plans {
		reps := modeReports[i]
		vp := VerifiedPlan{
			Plan:             p,
			PredictedCycles:  s.predictCycles(cands[i].idx),
			PredictedSeconds: s.predictSeconds(cands[i].idx),
			PredictedJoules:  s.predictJoules(cands[i].idx),
			Cycles:           exact[i],
			PrefillReport:    reps[0],
			DecodeReport:     reps[len(reps)-1],
		}
		for _, rep := range reps {
			vp.Seconds += rep.Seconds
			vp.Joules += rep.Energy.Total()
		}
		out[i] = vp
	}
	return out, nil
}

// VerifiedPlan is one exactly-evaluated joint plan next to what the
// surrogate predicted for it.
type VerifiedPlan struct {
	Plan             collective.Plan
	PredictedCycles  float64
	PredictedSeconds float64
	PredictedJoules  float64
	// Cycles / Seconds / Joules are the exact whole-session costs
	// (prompt prefill plus one decode step).
	Cycles  float64
	Seconds float64
	Joules  float64
	// PrefillReport / DecodeReport are the two exact phase
	// evaluations.
	PrefillReport *core.Report
	DecodeReport  *core.Report
}
