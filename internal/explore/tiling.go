package explore

import (
	"fmt"
	"sort"

	"mcudist/internal/core"
	"mcudist/internal/deploy"
	"mcudist/internal/evalpool"
	"mcudist/internal/kernels"
	"mcudist/internal/memsim"
)

// This file autotunes the memory-hierarchy tile shapes — one tiling
// per layer family (attention projections vs feed-forward matrices) —
// for a streamed-tier deployment under the DRAM-backed memory model.
// The joint grid is attention-candidates × FFN-candidates exact
// simulations if enumerated naively. AutotuneTiling avoids almost all
// of them with a predict-then-verify structure that needs ZERO probe
// simulations: the simulator executes each streamed GEMM tile-by-tile
// at exactly its closed-form plan makespan (an identity the perfsim
// tests pin), so the per-family sum of memsim plan makespans over one
// lowering — max across chips, scaled by each chip's block count — is
// already an additive predictor of how a (attention, FFN) tiling pair
// ranks. Only the predicted top-K pairs (plus the best uniform
// tilings, which the margin baseline needs anyway) are verified with
// exact simulations; the winner is always chosen on verified cycles.

// DefaultTilingTopK is the number of predicted-best tiling pairs
// AutotuneTiling verifies exactly when TilingOptions.TopK is zero.
const DefaultTilingTopK = 4

// DefaultUniformVerify is how many predicted-best uniform tilings the
// search always verifies: the margin baseline a per-family split has
// to beat.
const DefaultUniformVerify = 2

// TilingOptions tunes AutotuneTiling.
type TilingOptions struct {
	// TopK is the number of predicted-best (attention, FFN) tiling
	// pairs to verify with exact simulations (0 selects
	// DefaultTilingTopK). The predicted-best uniform tilings are
	// always verified in addition, so the winner can never lose to a
	// single shared tiling.
	TopK int
	// Exhaustive disables the predictor ranking and evaluates every
	// pair in the (possibly capped) grid exactly. This is the
	// ground-truth reference the equivalence tests hold the pruned
	// search to; it costs one simulation per pair.
	Exhaustive bool
	// Candidates caps each family's tiling list to its
	// predicted-best C entries (0 keeps the whole shared candidate
	// pool). The cap bounds the exhaustive grid, so equivalence tests
	// stay affordable.
	Candidates int
}

// TilingCandidate is one exactly-verified tiling pair: the pair, the
// closed-form prediction, and the exact cycles.
type TilingCandidate struct {
	Attn            memsim.Tiling
	FFN             memsim.Tiling
	PredictedCycles float64
	Cycles          float64
}

// TilingResult is the outcome of a per-family tiling autotuning.
type TilingResult struct {
	// Attn / FFN are the winning tilings per layer family; Cycles is
	// the winner's exact runtime and PredictedCycles the closed-form
	// estimate that ranked it (per-family makespan sums, not a
	// simulation — the two agree only up to cross-op overlap and
	// non-GEMM work, which is exactly why the exact simulator stays
	// the ground truth).
	Attn            memsim.Tiling
	FFN             memsim.Tiling
	Cycles          float64
	PredictedCycles float64
	// Report is the winner's exact evaluation.
	Report *core.Report
	// BestUniform is the best single tiling shared by both families —
	// the baseline a per-family split has to beat — with its exact
	// cycles, report, and the win margin UniformCycles / Cycles
	// (>= 1; 1 means one shared tiling is optimal).
	BestUniform   memsim.Tiling
	UniformCycles float64
	UniformReport *core.Report
	Margin        float64
	// RankAccuracy is the predictor's pairwise ordering concordance
	// over the verified candidates (1 under Exhaustive, where no
	// prediction happens).
	RankAccuracy float64
	// Candidates is the size of the (capped) pair grid; GridSims is
	// the exact-simulation bill of enumerating it exhaustively (one
	// per pair); ExactSims is the number of distinct exact evaluations
	// this call needed, measured as the evalpool memory-miss delta.
	Candidates int
	GridSims   int
	ExactSims  int
	// Verified lists the exactly-checked pairs in predicted order
	// (grid order under Exhaustive) — the predictor-vs-exact table.
	Verified []TilingCandidate
}

// famGEMMs is one streamed chip's tileable GEMMs of one layer family,
// with the chip's per-forward block count as the multiplier.
type famGEMMs struct {
	blocks float64
	gemms  []memsim.GEMM
}

// tilingFamilies splits the streamed chips' tileable GEMMs by layer
// family (the kernels carry the FFN tag the deployment planner set).
func tilingFamilies(d *deploy.Deployment) (attn, ffn []famGEMMs) {
	for i := range d.Chips {
		cd := &d.Chips[i]
		if cd.Tier != deploy.TierStreamed {
			continue
		}
		var a, f famGEMMs
		a.blocks = float64(cd.Blocks)
		f.blocks = float64(cd.Blocks)
		for _, ops := range [][]kernels.Cost{cd.MHSA, cd.FC} {
			for _, c := range ops {
				if g, ok := memsim.GEMMOf(c); ok {
					if c.FFN {
						f.gemms = append(f.gemms, g)
					} else {
						a.gemms = append(a.gemms, g)
					}
				}
			}
		}
		if len(a.gemms) > 0 {
			attn = append(attn, a)
		}
		if len(f.gemms) > 0 {
			ffn = append(ffn, f)
		}
	}
	return attn, ffn
}

// tilingPool is the shared candidate pool: the deduplicated union of
// every streamed GEMM's slot-fitting tilings, in first-seen order.
// One shared pool (rather than per-family grids) keeps uniform
// tilings well-defined for both families.
func tilingPool(ch memsim.Channel, fams ...[]famGEMMs) []memsim.Tiling {
	var pool []memsim.Tiling
	seen := map[memsim.Tiling]bool{}
	for _, fam := range fams {
		for _, cg := range fam {
			for _, g := range cg.gemms {
				for _, t := range memsim.CandidateTilings(ch, g) {
					if !seen[t] {
						seen[t] = true
						pool = append(pool, t)
					}
				}
			}
		}
	}
	return pool
}

// familyCost is the closed-form per-family predictor: the bottleneck
// chip's per-block makespan sum under tiling t, scaled by its block
// count, plus the tiling-dependent activation-spill transfers (each
// extra column pass re-reads the GEMM input from L3 — the term that
// makes narrow tiles expensive even when their makespan looks good).
// Tile dimensions larger than a GEMM's own K/N clamp inside PlanGEMM,
// so every pool tiling prices every GEMM.
func familyCost(ch memsim.Channel, fam []famGEMMs, t memsim.Tiling, spill bool) (float64, error) {
	var worst float64
	for _, cg := range fam {
		var sum float64
		for _, g := range cg.gemms {
			p, err := memsim.PlanGEMM(ch, g, t)
			if err != nil {
				return 0, err
			}
			sum += p.Makespan()
			if spill {
				refetch := int64(p.ActPasses) + 1
				if refetch < 2 {
					refetch = 2
				}
				ab := int64(g.ActElemBytes)
				bytes := int64(g.M)*int64(g.K)*ab*refetch + int64(g.M)*int64(g.N)*ab
				sum += ch.TransferCycles(bytes)
			}
		}
		if c := cg.blocks * sum; c > worst {
			worst = c
		}
	}
	return worst, nil
}

// tilingPoint spells one exact evaluation of a tiling pair: both
// families pinned explicitly on the base system, so a uniform pair
// (t, t) and the grid pair (t, t) share one cache entry.
func tilingPoint(base core.System, wl core.Workload, ta, tf memsim.Tiling) evalpool.Point {
	sys := base
	sys.HW.Mem.TileK, sys.HW.Mem.TileN = ta.K, ta.N
	sys.HW.Mem.FFNTileK, sys.HW.Mem.FFNTileN = tf.K, tf.N
	return evalpool.Point{System: sys, Workload: wl}
}

// rankByCost returns pool indices ordered by cost ascending (stable,
// ties keep pool order), capped to limit when limit > 0.
func rankByCost(cost []float64, limit int) []int {
	order := make([]int, len(cost))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if cost[order[a]] != cost[order[b]] {
			return cost[order[a]] < cost[order[b]]
		}
		return order[a] < order[b]
	})
	if limit > 0 && limit < len(order) {
		order = order[:limit]
	}
	return order
}

// AutotuneTiling tunes the DRAM-backed memory hierarchy's tile shapes
// per layer family — one tiling for the attention projections, one
// for the feed-forward matrices — for the base system's streamed-tier
// deployment of the workload.
//
// The search needs zero probe simulations: one lowering exposes every
// streamed GEMM, the closed-form plan makespans price each candidate
// tiling per family additively, and only the predicted top-K pairs
// plus the best uniform tilings are verified with exact simulations.
// The winner is the verified pair with the fewest exact cycles —
// predictions only choose what to verify, never who wins — and on the
// pinned operating points the equivalence tests hold it identical to
// exhaustive grid enumeration at a fraction of the simulations
// (ExactSims vs GridSims on the result). Set HW.Mem.TileK/TileN and
// FFNTileK/FFNTileN from the returned pair to deploy it.
func AutotuneTiling(base core.System, wl core.Workload, opts TilingOptions) (*TilingResult, error) {
	evalsBefore := evalpool.Evaluations()
	if !base.HW.Mem.Enabled() {
		return nil, fmt.Errorf("explore: tiling autotune needs the hierarchical memory model enabled (HW.Mem profile is %s)", base.HW.Mem.Profile)
	}
	d, err := core.Lower(base, wl)
	if err != nil {
		return nil, err
	}
	attn, ffn := tilingFamilies(d)
	if len(attn) == 0 || len(ffn) == 0 {
		return nil, fmt.Errorf("explore: tiling autotune needs a streamed-tier deployment with tileable GEMMs in both layer families (tier %v)", d.WorstTier())
	}
	ch := memsim.ChannelOf(base.HW)
	pool := tilingPool(ch, attn, ffn)
	if len(pool) == 0 {
		return nil, fmt.Errorf("explore: no candidate tilings fit the %d-byte stream slot", ch.SlotBytes)
	}

	// Closed-form family costs over the whole pool (no simulations).
	spill := !base.Options.NoActivationSpill
	aCost := make([]float64, len(pool))
	fCost := make([]float64, len(pool))
	for i, t := range pool {
		if aCost[i], err = familyCost(ch, attn, t, spill); err != nil {
			return nil, fmt.Errorf("explore: pricing attention tiling %s: %w", t, err)
		}
		if fCost[i], err = familyCost(ch, ffn, t, spill); err != nil {
			return nil, fmt.Errorf("explore: pricing FFN tiling %s: %w", t, err)
		}
	}
	aList := rankByCost(aCost, opts.Candidates)
	fList := rankByCost(fCost, opts.Candidates)

	// The pair grid, in deterministic enumeration order (attention
	// outer), with its additive prediction.
	type pair struct {
		ai, fi int // pool indices
	}
	pairs := make([]pair, 0, len(aList)*len(fList))
	predicted := make([]float64, 0, len(aList)*len(fList))
	for _, ai := range aList {
		for _, fi := range fList {
			pairs = append(pairs, pair{ai: ai, fi: fi})
			predicted = append(predicted, aCost[ai]+fCost[fi])
		}
	}
	res := &TilingResult{
		Candidates: len(pairs),
		GridSims:   len(pairs),
	}

	// Select what to verify exactly.
	var verifyOrder []int
	if opts.Exhaustive {
		for i := range pairs {
			verifyOrder = append(verifyOrder, i)
		}
	} else {
		order := make([]int, len(pairs))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			if predicted[order[a]] != predicted[order[b]] {
				return predicted[order[a]] < predicted[order[b]]
			}
			return order[a] < order[b]
		})
		topK := opts.TopK
		if topK <= 0 {
			topK = DefaultTilingTopK
		}
		if topK > len(order) {
			topK = len(order)
		}
		verifyOrder = append(verifyOrder, order[:topK]...)
	}

	// The uniform baseline: the predicted-best single tilings shared
	// by both families, always verified (the margin needs them). A
	// uniform point (t, t) shares its cache entry with the grid pair
	// (t, t) when both families kept t.
	uCost := make([]float64, len(pool))
	for i := range pool {
		uCost[i] = aCost[i] + fCost[i]
	}
	uniList := rankByCost(uCost, DefaultUniformVerify)

	// Evaluate: one deduplicated point per selected pair + uniform.
	ev := newSessionEval()
	pairPt := make(map[int]int, len(verifyOrder))
	for _, i := range verifyOrder {
		p := pairs[i]
		pairPt[i] = ev.add(tilingPoint(base, wl, pool[p.ai], pool[p.fi]))
	}
	uniPt := make([]int, len(uniList))
	for j, pi := range uniList {
		uniPt[j] = ev.add(tilingPoint(base, wl, pool[pi], pool[pi]))
	}
	reports, err := evalpool.Map(ev.points)
	if err != nil {
		return nil, fmt.Errorf("explore: tiling verify: %w", err)
	}

	// Winner: fewest exact cycles over verified pairs and uniforms;
	// ties keep the earliest grid index (uniform extras rank after the
	// grid, so a uniform duplicate of a grid pair never displaces it).
	best, bestKey := -1, 0
	bestCycles := 0.0
	consider := func(key, pt int) {
		c := reports[pt].Cycles
		if best < 0 || c < bestCycles || (c == bestCycles && key < bestKey) {
			best, bestKey, bestCycles = pt, key, c
		}
	}
	for _, i := range verifyOrder {
		consider(i, pairPt[i])
	}
	for j := range uniList {
		consider(len(pairs)+j, uniPt[j])
	}
	if bestKey < len(pairs) {
		res.Attn, res.FFN = pool[pairs[bestKey].ai], pool[pairs[bestKey].fi]
		res.PredictedCycles = predicted[bestKey]
	} else {
		pi := uniList[bestKey-len(pairs)]
		res.Attn, res.FFN = pool[pi], pool[pi]
		res.PredictedCycles = uCost[pi]
	}
	res.Cycles = bestCycles
	res.Report = reports[best]

	// Best uniform and the per-family win margin.
	uniBest := 0
	for j := 1; j < len(uniPt); j++ {
		if reports[uniPt[j]].Cycles < reports[uniPt[uniBest]].Cycles {
			uniBest = j
		}
	}
	res.BestUniform = pool[uniList[uniBest]]
	res.UniformCycles = reports[uniPt[uniBest]].Cycles
	res.UniformReport = reports[uniPt[uniBest]]
	res.Margin = res.UniformCycles / res.Cycles

	// The verified table and the predictor's rank concordance.
	for _, i := range verifyOrder {
		res.Verified = append(res.Verified, TilingCandidate{
			Attn:            pool[pairs[i].ai],
			FFN:             pool[pairs[i].fi],
			PredictedCycles: predicted[i],
			Cycles:          reports[pairPt[i]].Cycles,
		})
	}
	if opts.Exhaustive {
		res.RankAccuracy = 1
	} else {
		sort.SliceStable(res.Verified, func(a, b int) bool {
			return res.Verified[a].PredictedCycles < res.Verified[b].PredictedCycles
		})
		res.RankAccuracy = tilingConcordance(res.Verified)
	}
	res.ExactSims = int(evalpool.Evaluations() - evalsBefore)
	return res, nil
}

// tilingConcordance is the fraction of verified pair orderings the
// prediction got right (list in predicted order; exact ties count as
// concordant).
func tilingConcordance(v []TilingCandidate) float64 {
	if len(v) < 2 {
		return 1
	}
	pairs, ok := 0, 0
	for i := 0; i < len(v); i++ {
		for j := i + 1; j < len(v); j++ {
			pairs++
			if v[i].Cycles <= v[j].Cycles {
				ok++
			}
		}
	}
	return float64(ok) / float64(pairs)
}
