package explore

import (
	"fmt"
	"math"
	"sort"

	"mcudist/internal/collective"
	"mcudist/internal/core"
	"mcudist/internal/evalpool"
	"mcudist/internal/hw"
	"mcudist/internal/model"
)

// This file is the surrogate-first face of the frontier family:
// Frontier, TopologyFrontier, and NetworkFrontier price every grid
// cell with exact simulations, which is the right tool for the chip ×
// topology × network axes (each cell is one simulation) but not for
// the collective-plan axis, whose joint grid multiplies every cell by
// topologies^classes (256 session plans for the tensor-parallel
// scheme). PlanFrontier and PlanBudgetFit fold that axis in by
// fitting the shared Surrogate once per (network, chip-count) cell —
// ~20 probe simulations — predicting all candidates, and exactly
// verifying only the predicted Pareto edge, the predicted top-K, and
// the uniform baselines. Exact simulation remains the ground truth:
// every returned point is exactly evaluated, and predictions only
// decide what is worth verifying.

// PlanFrontierOptions tunes PlanFrontier.
type PlanFrontierOptions struct {
	// Networks is the optional network-profile axis; empty scans only
	// the base system's network.
	Networks []hw.Network
	// TopK is the number of predicted-best candidates verified exactly
	// per grid cell, on each objective (0 selects DefaultSessionTopK).
	// The predicted Pareto edge and the uniform plans are always
	// verified in addition.
	TopK int
	// Exhaustive disables the surrogate and evaluates every joint plan
	// exactly, as deployed — the ground-truth reference the
	// equivalence tests hold the surrogate-first scan to. It costs
	// GridSims simulations.
	Exhaustive bool
	// PromptSeqLen / DecodeSeqLen override the session's two phase
	// sequence lengths (0 selects the paper's values).
	PromptSeqLen int
	DecodeSeqLen int
}

// PlanPoint is one exactly-verified (network, chip count, plan)
// candidate of a plan-aware frontier scan.
type PlanPoint struct {
	Network hw.Network
	Chips   int
	VerifiedPlan
	// Pareto marks session latency/energy Pareto-optimal points within
	// the verified union.
	Pareto bool
}

// PlanFrontierResult is the outcome of a surrogate-first plan
// frontier scan.
type PlanFrontierResult struct {
	// Points lists the exactly-verified candidates grouped by network
	// in input order, then chip count ascending, then candidate in
	// enumeration order; the Pareto marks span the whole union.
	Points []PlanPoint
	// Candidates is the full plan-grid size across all cells; GridSims
	// is the exact-simulation bill of enumerating it exhaustively as
	// deployed; ExactSims is the number of distinct exact evaluations
	// this scan needed (the evalpool memory-miss delta — disk-served
	// evaluations count, so the number is identical cold and warm).
	Candidates int
	GridSims   int
	ExactSims  int
}

// planCell runs one (network, chip count) cell of the scan and
// returns its verified candidates in enumeration order.
func planCell(sys core.System, cfg model.Config, opts PlanFrontierOptions) ([]VerifiedPlan, int, error) {
	sopts := SessionOptions{PromptSeqLen: opts.PromptSeqLen, DecodeSeqLen: opts.DecodeSeqLen}
	if opts.Exhaustive {
		modes, union, err := sessionModes(sys, cfg, sopts)
		if err != nil {
			return nil, 0, err
		}
		cands := enumerateSession(union, hw.Topologies())
		exact, modeReports, err := sessionExhaustive(sys, modes, cands)
		if err != nil {
			return nil, 0, err
		}
		out := make([]VerifiedPlan, len(cands))
		for i, c := range cands {
			reps := modeReports[i]
			vp := VerifiedPlan{
				Plan:            c.plan,
				Cycles:          exact[i],
				PredictedCycles: exact[i],
				PrefillReport:   reps[0],
				DecodeReport:    reps[len(reps)-1],
			}
			for _, rep := range reps {
				vp.Seconds += rep.Seconds
				vp.Joules += rep.Energy.Total()
			}
			vp.PredictedJoules = vp.Joules
			out[i] = vp
		}
		return out, len(cands), nil
	}

	s, err := FitSurrogate(sys, cfg, sopts)
	if err != nil {
		return nil, 0, err
	}
	cands := s.Candidates()
	predS := make([]float64, len(cands))
	predJ := make([]float64, len(cands))
	for i, p := range cands {
		predS[i] = s.PredictSeconds(p)
		predJ[i] = s.PredictJoules(p)
	}

	topK := opts.TopK
	if topK <= 0 {
		topK = DefaultSessionTopK
	}
	pick := map[int]bool{}
	// Seed the verification set: the predicted top-K on each
	// objective, plus the uniform plans — whose phase points are the
	// surrogate's own probes, so they verify without new simulations
	// and keep the scan honest against every single-topology baseline.
	for _, pred := range [][]float64{predS, predJ} {
		order := make([]int, len(cands))
		for i := range order {
			order[i] = i
		}
		p := pred
		sort.SliceStable(order, func(x, y int) bool { return p[order[x]] < p[order[y]] })
		for k := 0; k < topK && k < len(order); k++ {
			pick[order[k]] = true
		}
	}
	nTopos := len(hw.Topologies())
	for ti := 0; ti < nTopos; ti++ {
		pick[allSameIndex(ti, len(s.union), nTopos)] = true
	}

	verify := func(sel []int) ([]VerifiedPlan, error) {
		plans := make([]collective.Plan, len(sel))
		for j, i := range sel {
			plans[j] = cands[i]
		}
		return s.Verify(sys, plans)
	}
	sel := make([]int, 0, len(pick))
	for i := range cands {
		if pick[i] {
			sel = append(sel, i)
		}
	}
	verified, err := verify(sel)
	if err != nil {
		return nil, 0, err
	}

	// Refine to the exact Pareto edge: the additive prediction misses
	// within-phase interactions, so near-ties can hide true front
	// members. Bound the model's error by twice the largest residual
	// observed on the verified points, and exactly verify every
	// candidate whose optimistic corner (prediction minus that bound)
	// is not dominated by an already-verified exact point — if its
	// prediction can still reach the front, it gets measured. Repeat
	// until the band is empty; each verified point also tightens what
	// "can still reach" means. The phase-restricted verification
	// spellings share simulations heavily (topologies^per-phase-classes
	// distinct points per phase in the worst case), so even a
	// degenerate band stays far below the as-deployed grid bill.
	for {
		var errS, errJ float64
		for k, vp := range verified {
			if d := math.Abs(predS[sel[k]] - vp.Seconds); d > errS {
				errS = d
			}
			if d := math.Abs(predJ[sel[k]] - vp.Joules); d > errJ {
				errJ = d
			}
		}
		errS *= 2
		errJ *= 2
		var band []int
		for i := range cands {
			if pick[i] {
				continue
			}
			cornerS, cornerJ := predS[i]-errS, predJ[i]-errJ
			dominated := false
			for _, vp := range verified {
				if (vp.Seconds < cornerS && vp.Joules <= cornerJ) ||
					(vp.Seconds <= cornerS && vp.Joules < cornerJ) {
					dominated = true
					break
				}
			}
			if !dominated {
				band = append(band, i)
			}
		}
		if len(band) == 0 {
			break
		}
		more, err := verify(band)
		if err != nil {
			return nil, 0, err
		}
		for _, i := range band {
			pick[i] = true
		}
		sel = append(sel, band...)
		verified = append(verified, more...)
	}

	// Return in candidate enumeration order, so output is independent
	// of the refinement's round structure.
	order := make([]int, len(sel))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return sel[order[a]] < sel[order[b]] })
	out := make([]VerifiedPlan, len(order))
	for j, k := range order {
		out[j] = verified[k]
	}
	return out, len(cands), nil
}

// PlanFrontier scans the collective-plan axis jointly with the chip
// count (and optionally the network profile): per (network, chips)
// cell it fits the shared Surrogate, predicts the whole joint plan
// grid on both session objectives, and exactly verifies the predicted
// Pareto edge, the per-objective top-K, and the uniform baselines.
// The returned points are all exactly evaluated, with the session
// latency/energy Pareto front marked across the verified union — on
// the pinned operating points the equivalence tests hold that front
// identical to exhaustive enumeration at a fraction of the
// simulations (ExactSims vs GridSims).
func PlanFrontier(base core.System, cfg model.Config, chips []int, opts PlanFrontierOptions) (*PlanFrontierResult, error) {
	evalsBefore := evalpool.Evaluations()
	nets := opts.Networks
	if len(nets) == 0 {
		nets = []hw.Network{base.HW.Network}
	}
	res := &PlanFrontierResult{}
	for _, net := range nets {
		for _, n := range chips {
			sys := base
			sys.HW.Network = net
			sys.Chips = n
			verified, cells, err := planCell(sys, cfg, opts)
			if err != nil {
				return nil, fmt.Errorf("explore: plan frontier (%s, %d chips): %w", net, n, err)
			}
			res.Candidates += cells
			for _, vp := range verified {
				res.Points = append(res.Points, PlanPoint{Network: net, Chips: n, VerifiedPlan: vp})
			}
		}
	}
	res.GridSims = 2 * res.Candidates
	// Session-level Pareto over the verified union.
	secs := make([]float64, len(res.Points))
	jls := make([]float64, len(res.Points))
	for i, p := range res.Points {
		secs[i], jls[i] = p.Seconds, p.Joules
	}
	for i, pareto := range sessionParetoMask(secs, jls) {
		res.Points[i].Pareto = pareto
	}
	res.ExactSims = int(evalpool.Evaluations() - evalsBefore)
	return res, nil
}

// sessionParetoMask is paretoMask over explicit (seconds, joules)
// session objectives (frontier reports carry one phase each; a
// session point aggregates two).
func sessionParetoMask(secs, jls []float64) []bool {
	pareto := make([]bool, len(secs))
	order := make([]int, len(secs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if secs[order[a]] != secs[order[b]] {
			return secs[order[a]] < secs[order[b]]
		}
		return jls[order[a]] < jls[order[b]]
	})
	bestEnergy := math.Inf(1)
	for g := 0; g < len(order); {
		sec := secs[order[g]]
		end := g
		groupMin := math.Inf(1)
		for ; end < len(order) && secs[order[end]] == sec; end++ {
			if e := jls[order[end]]; e < groupMin {
				groupMin = e
			}
		}
		for ; g < end; g++ {
			e := jls[order[g]]
			pareto[order[g]] = bestEnergy > e && groupMin >= e
		}
		if groupMin < bestEnergy {
			bestEnergy = groupMin
		}
	}
	return pareto
}

// PlanBudgetFit is BudgetFit rewired onto the surrogate: it returns
// the fewest-chip configuration whose tuned collective plan meets
// both a session latency and a session energy budget. Chip counts are
// scanned ascending with early exit — an answer at a small count
// never pays for the large ones — and per count the surrogate
// predicts the plan grid and only the predicted-best candidates (plus
// the uniform baselines) are verified; the budget decision is always
// made on exact numbers.
func PlanBudgetFit(base core.System, cfg model.Config, maxChips int, maxSeconds, maxJoules float64, opts PlanFrontierOptions) (*PlanPoint, error) {
	counts := LegalChipCounts(cfg, maxChips)
	bestLatency, bestEnergy := math.Inf(1), math.Inf(1)
	for _, n := range counts {
		sys := base
		sys.Chips = n
		verified, _, err := planCell(sys, cfg, opts)
		if err != nil {
			return nil, fmt.Errorf("explore: plan budget fit (%d chips): %w", n, err)
		}
		best := -1
		for i, vp := range verified {
			if vp.Seconds < bestLatency {
				bestLatency = vp.Seconds
			}
			if vp.Joules < bestEnergy {
				bestEnergy = vp.Joules
			}
			if vp.Seconds > maxSeconds || vp.Joules > maxJoules {
				continue
			}
			if best < 0 || vp.Cycles < verified[best].Cycles {
				best = i
			}
		}
		if best >= 0 {
			return &PlanPoint{Network: base.HW.Network, Chips: n, VerifiedPlan: verified[best]}, nil
		}
	}
	if bestLatency > maxSeconds {
		return nil, fmt.Errorf("explore: session latency budget %.3g s unreachable with a tuned plan (best %.3g s)", maxSeconds, bestLatency)
	}
	return nil, fmt.Errorf("explore: session energy budget %.3g J unreachable with a tuned plan (best %.3g J)", maxJoules, bestEnergy)
}
