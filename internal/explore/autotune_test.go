package explore

import (
	"testing"

	"mcudist/internal/collective"
	"mcudist/internal/core"
	"mcudist/internal/hw"
	"mcudist/internal/model"
	"mcudist/internal/partition"
)

// The autotuner at the 64-chip prompt point must rediscover the PR 2
// ablation finding: the ring takes every large-payload prefill
// collective, so both prefill classes tune to the ring and the best
// uniform topology is the ring itself.
func TestAutotunePlanPrompt64(t *testing.T) {
	base := core.DefaultSystem(64)
	wl := core.Workload{Model: model.TinyLlamaScaled64(), Mode: model.Prompt}
	res, err := AutotunePlan(base, wl)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerClass) != 2 ||
		res.PerClass[0].Class != collective.PrefillMHSA ||
		res.PerClass[1].Class != collective.PrefillFFN {
		t.Fatalf("per-class winners = %v, want the two prefill classes", res.PerClass)
	}
	for _, cc := range res.PerClass {
		if cc.Topology != hw.TopoRing {
			t.Errorf("%s tuned to %s, want ring", cc.Class, cc.Topology)
		}
	}
	if res.BestUniform != hw.TopoRing {
		t.Errorf("best uniform = %s, want ring", res.BestUniform)
	}
	if res.Margin < 1 {
		t.Errorf("margin %g < 1: the winning plan lost to a uniform topology it had in its grid", res.Margin)
	}
	if res.Report.Cycles > res.UniformReport.Cycles {
		t.Errorf("plan cycles %g above uniform %g", res.Report.Cycles, res.UniformReport.Cycles)
	}
	// The winning plan binds exactly the active classes.
	if _, ok := res.Plan.Explicit(collective.DecodeMHSA); ok {
		t.Error("prompt autotune bound a decode class")
	}
}

// At the paper's 64-chip autoregressive operating point the tree keeps
// its win: decode classes tune to the tree.
func TestAutotunePlanDecode64(t *testing.T) {
	base := core.DefaultSystem(64)
	wl := core.Workload{Model: model.TinyLlamaScaled64(), Mode: model.Autoregressive}
	res, err := AutotunePlan(base, wl)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerClass) != 2 ||
		res.PerClass[0].Class != collective.DecodeMHSA ||
		res.PerClass[1].Class != collective.DecodeFFN {
		t.Fatalf("per-class winners = %v, want the two decode classes", res.PerClass)
	}
	for _, cc := range res.PerClass {
		if cc.Topology != hw.TopoTree {
			t.Errorf("%s tuned to %s, want tree", cc.Class, cc.Topology)
		}
	}
	if res.BestUniform != hw.TopoTree {
		t.Errorf("best uniform = %s, want tree", res.BestUniform)
	}
	if res.Margin < 1 {
		t.Errorf("margin %g < 1", res.Margin)
	}
}

// The pipeline strategy has no collective synchronizations to plan.
func TestAutotunePlanPipelineRejected(t *testing.T) {
	base := core.DefaultSystem(8)
	base.Strategy = partition.Pipeline
	wl := core.Workload{Model: model.TinyLlama42M(), Mode: model.Prompt}
	if _, err := AutotunePlan(base, wl); err == nil {
		t.Fatal("pipeline autotune accepted")
	}
}

// The autotuner must honor the base network: under the clustered
// backhaul that flips the 8-chip BestTopology from ring to
// fully-connected (the PR 3 finding), the tuned prefill classes flip
// with it.
func TestAutotunePlanSeesNetwork(t *testing.T) {
	base := core.DefaultSystem(8)
	base.HW.Network = hw.ClusteredNetwork(hw.MIPI(), hw.MIPI().Slower(10), 4)
	wl := core.Workload{Model: model.TinyLlama42M(), Mode: model.Prompt}
	res, err := AutotunePlan(base, wl)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestUniform != hw.TopoFullyConnected {
		t.Errorf("clustered 8-chip best uniform = %s, want fully-connected", res.BestUniform)
	}
	for _, cc := range res.PerClass {
		if cc.Topology != hw.TopoFullyConnected {
			t.Errorf("%s tuned to %s under the backhaul, want fully-connected", cc.Class, cc.Topology)
		}
	}
}

// The frontier points must surface the per-sync C2C attribution the
// plan decisions rest on (the former omission left plan wins
// unattributable from frontier output alone).
func TestFrontierPointsCarryClassCycles(t *testing.T) {
	base := core.DefaultSystem(1)
	wl := core.Workload{Model: model.TinyLlama42M(), Mode: model.Prompt}
	points, err := TopologyFrontier(base, wl, []int{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if len(p.C2CCyclesByClass) != 2 {
			t.Fatalf("topology point %s/%d: %d classes, want 2", p.Topology, p.Chips, len(p.C2CCyclesByClass))
		}
		var sum float64
		for i, cc := range p.C2CCyclesByClass {
			if cc.Class != p.Report.ByClass[i].Class || cc.Topology != p.Topology {
				t.Errorf("%s/%d: class %v mismatched", p.Topology, p.Chips, cc)
			}
			sum += cc.C2CCycles
		}
		var chips float64
		for _, st := range p.Report.PerChip {
			chips += st.C2CCycles
		}
		if sum != chips {
			t.Errorf("%s/%d: class cycles %g != chip totals %g", p.Topology, p.Chips, sum, chips)
		}
	}
	nets, err := NetworkFrontier(base, wl, []int{8},
		[]hw.Network{hw.UniformNetwork(hw.MIPI())})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range nets {
		if len(p.C2CCyclesByClass) != 2 {
			t.Fatalf("network point %s/%d lacks class attribution", p.Topology, p.Chips)
		}
	}
}
