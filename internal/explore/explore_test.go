package explore

import (
	"testing"

	"mcudist/internal/core"
	"mcudist/internal/model"
)

func TestLegalChipCounts(t *testing.T) {
	cfg := model.TinyLlama42M() // 8 heads
	counts := LegalChipCounts(cfg, 100)
	if len(counts) != 8 || counts[0] != 1 || counts[7] != 8 {
		t.Fatalf("counts = %v", counts)
	}
	counts = LegalChipCounts(cfg, 4)
	if len(counts) != 4 {
		t.Fatalf("capped counts = %v", counts)
	}
	gqa := model.SmolLM135M() // 3 KV heads
	counts = LegalChipCounts(gqa, 100)
	if len(counts) != 3 {
		t.Fatalf("GQA counts = %v, want 1..3", counts)
	}
}

func TestPowersOfTwo(t *testing.T) {
	got := PowersOfTwo([]int{1, 2, 3, 4, 5, 6, 7, 8})
	want := []int{1, 2, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestMinChipsOffChipFree(t *testing.T) {
	// The paper sweeps powers of two and reports the crossover at 8
	// chips; exploring every chip count shows TinyLlama already
	// double-buffers at 5 (uneven head split, 1.6 heads/chip worth of
	// weights) — a finding the power-of-two grid hides.
	pt, err := MinChipsOffChipFree(core.DefaultSystem(1),
		core.Workload{Model: model.TinyLlama42M(), Mode: model.Autoregressive}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Chips != 5 {
		t.Fatalf("min chips = %d, want 5", pt.Chips)
	}
	if !pt.Report.Tier.OffChipFree() {
		t.Fatal("returned point is not off-chip free")
	}
	// MobileBERT crosses at 4 even over the full grid (3 chips leave
	// a 512 KiB slice that cannot double-buffer).
	pt, err = MinChipsOffChipFree(core.DefaultSystem(1),
		core.Workload{Model: model.MobileBERT512(), Mode: model.Prompt}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Chips != 4 {
		t.Fatalf("MobileBERT min chips = %d, want 4", pt.Chips)
	}
}

func TestMinChipsUnreachable(t *testing.T) {
	// TinyLlama cannot go off-chip free with at most 4 chips.
	_, err := MinChipsOffChipFree(core.DefaultSystem(1),
		core.Workload{Model: model.TinyLlama42M(), Mode: model.Autoregressive}, 4)
	if err == nil {
		t.Fatal("expected an error")
	}
}

func TestFrontierAndPareto(t *testing.T) {
	points, err := Frontier(core.DefaultSystem(1),
		core.Workload{Model: model.TinyLlama42M(), Mode: model.Autoregressive},
		[]int{1, 2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d", len(points))
	}
	// 8 chips dominates on latency and roughly ties on energy — it
	// must be on the front; 1 chip is dominated by 8 (slower AND not
	// cheaper).
	var p1, p8 *Point
	for i := range points {
		switch points[i].Chips {
		case 1:
			p1 = &points[i]
		case 8:
			p8 = &points[i]
		}
	}
	if !p8.Pareto {
		t.Fatal("8-chip point should be Pareto-optimal")
	}
	if p1.Pareto {
		t.Fatal("1-chip point should be dominated (slower and more energy)")
	}
	front := ParetoFront(points)
	if len(front) == 0 || len(front) > 4 {
		t.Fatalf("front size %d", len(front))
	}
	for i := 1; i < len(front); i++ {
		if front[i].Report.Seconds < front[i-1].Report.Seconds {
			t.Fatal("front not sorted by latency")
		}
	}
}

// paretoPoints fabricates a point set from (latency, energy) pairs;
// energy is placed entirely in the compute term.
func paretoPoints(latEnergy [][2]float64) []Point {
	out := make([]Point, len(latEnergy))
	for i, le := range latEnergy {
		rep := &core.Report{Seconds: le[0]}
		rep.Energy.Compute = le[1]
		out[i] = Point{Chips: i + 1, Report: rep}
	}
	return out
}

// markParetoReference is the original all-pairs domination scan, kept
// as the semantic oracle for the sorted single-pass implementation.
func markParetoReference(points []Point) {
	for i := range points {
		dominated := false
		for j := range points {
			if i == j {
				continue
			}
			betterOrEqual := points[j].Report.Seconds <= points[i].Report.Seconds &&
				points[j].Report.Energy.Total() <= points[i].Report.Energy.Total()
			strictlyBetter := points[j].Report.Seconds < points[i].Report.Seconds ||
				points[j].Report.Energy.Total() < points[i].Report.Energy.Total()
			if betterOrEqual && strictlyBetter {
				dominated = true
				break
			}
		}
		points[i].Pareto = !dominated
	}
}

func TestMarkParetoMatchesReference(t *testing.T) {
	cases := map[string][][2]float64{
		"empty":          {},
		"single":         {{1, 1}},
		"chain":          {{4, 1}, {3, 2}, {2, 3}, {1, 4}},
		"dominated":      {{1, 1}, {2, 2}, {3, 3}},
		"duplicates":     {{1, 1}, {1, 1}, {2, 0.5}, {2, 0.5}},
		"equal-latency":  {{1, 3}, {1, 2}, {1, 2}, {1, 4}},
		"equal-energy":   {{3, 1}, {2, 1}, {4, 1}, {2, 1}},
		"mixed-ties":     {{1, 5}, {2, 5}, {2, 4}, {3, 4}, {3, 3}, {1, 5}},
		"unsorted-input": {{5, 1}, {1, 5}, {3, 3}, {2, 3}, {3, 2}, {4, 4}},
	}
	for name, le := range cases {
		t.Run(name, func(t *testing.T) {
			got := paretoPoints(le)
			want := paretoPoints(le)
			markPareto(got)
			markParetoReference(want)
			for i := range got {
				if got[i].Pareto != want[i].Pareto {
					t.Errorf("point %d (lat=%g, energy=%g): Pareto=%v, reference says %v",
						i, le[i][0], le[i][1], got[i].Pareto, want[i].Pareto)
				}
				if got[i].Chips != want[i].Chips {
					t.Errorf("point %d: input order disturbed", i)
				}
			}
		})
	}
}

func TestBudgetFit(t *testing.T) {
	wl := core.Workload{Model: model.TinyLlama42M(), Mode: model.Autoregressive}
	// Generous budgets: smallest qualifying count wins.
	pt, err := BudgetFit(core.DefaultSystem(1), wl, 8, 1.0, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Chips != 1 {
		t.Fatalf("generous budget picked %d chips, want 1", pt.Chips)
	}
	// Tight latency budget (1 ms) forces the 8-chip system.
	pt, err = BudgetFit(core.DefaultSystem(1), wl, 8, 1e-3, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Chips != 8 {
		t.Fatalf("tight budget picked %d chips, want 8", pt.Chips)
	}
	// Impossible latency budget names the constraint.
	if _, err := BudgetFit(core.DefaultSystem(1), wl, 8, 1e-9, 1.0); err == nil {
		t.Fatal("impossible latency budget accepted")
	}
	// Impossible energy budget.
	if _, err := BudgetFit(core.DefaultSystem(1), wl, 8, 1.0, 1e-9); err == nil {
		t.Fatal("impossible energy budget accepted")
	}
}
