package explore

import (
	"testing"

	"mcudist/internal/collective"
	"mcudist/internal/core"
	"mcudist/internal/hw"
	"mcudist/internal/model"
)

// Evaluating the tuned plan as deployed reproduces the autotuner's
// verified session cycles: the phase-restricted spelling the search
// prices and the merged-plan spelling a fleet serves are the same
// simulation.
func TestEvalSessionPlanMatchesAutotune(t *testing.T) {
	sys := core.DefaultSystem(8)
	cfg := model.TinyLlama42M()
	tuned, err := AutotuneSession(sys, cfg, SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cost, err := EvalSessionPlan(sys, cfg, tuned.Plan, SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cost.Cycles != tuned.Cycles {
		t.Fatalf("as-deployed session cycles %g != autotuned %g", cost.Cycles, tuned.Cycles)
	}
	if cost.Joules <= 0 || cost.Seconds <= 0 {
		t.Fatalf("session cost %+v should be positive", cost)
	}
}

// A plan routing over an unwired edge is rejected at validation, not
// silently priced — the degraded-wiring check a stale plan must pass.
func TestEvalSessionPlanRejectsUnwiredPlan(t *testing.T) {
	edges := map[hw.Edge]hw.LinkClass{}
	for c := 0; c < 7; c++ {
		edges[hw.Edge{From: c, To: c + 1}] = hw.MIPI()
		edges[hw.Edge{From: c + 1, To: c}] = hw.MIPI()
	}
	chain, err := hw.TableNetwork(edges)
	if err != nil {
		t.Fatal(err)
	}
	sys := core.DefaultSystem(8)
	sys.HW.Network = chain
	var plan collective.Plan
	for _, cl := range collective.ActiveClasses(sys.Strategy, model.Prompt) {
		plan = plan.With(cl, hw.TopoFullyConnected)
	}
	for _, cl := range collective.ActiveClasses(sys.Strategy, model.Autoregressive) {
		plan = plan.With(cl, hw.TopoFullyConnected)
	}
	if _, err := EvalSessionPlan(sys, model.TinyLlama42M(), plan, SessionOptions{}); err == nil {
		t.Fatal("a fully-connected plan priced on a chain-only wiring")
	}
}

func TestReplanSessionMarginAtLeastOne(t *testing.T) {
	sys := core.DefaultSystem(8)
	cfg := model.TinyLlama42M()
	pristine, err := AutotuneSession(sys, cfg, SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Degrade by hand: a 10x-slower network overall (still uniform, so
	// every topology stays feasible and the comparison is honest).
	degraded := sys
	degraded.HW.Network = hw.UniformNetwork(hw.MIPI().Slower(10))
	res, err := ReplanSession(degraded, cfg, pristine.Plan, SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Static == nil {
		t.Fatalf("stale plan should stay feasible on a uniform slowdown: %s", res.StaticErr)
	}
	if res.AdoptedCycles > res.Static.Cycles {
		t.Fatalf("adopted plan %g cycles worse than static %g", res.AdoptedCycles, res.Static.Cycles)
	}
	if res.MarginCycles < 1 {
		t.Fatalf("resilience margin %g < 1", res.MarginCycles)
	}
	if res.ReplanPays != (res.AdoptedCycles < res.Static.Cycles) {
		t.Fatalf("ReplanPays=%v inconsistent with adopted %g vs static %g",
			res.ReplanPays, res.AdoptedCycles, res.Static.Cycles)
	}
	if res.Tuned == nil || res.Tuned.Cycles <= 0 {
		t.Fatal("missing tuned result")
	}
}
