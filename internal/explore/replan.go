package explore

import (
	"fmt"
	"math"

	"mcudist/internal/collective"
	"mcudist/internal/core"
	"mcudist/internal/evalpool"
	"mcudist/internal/model"
)

// This file is the degraded-network autotune entry point: given a
// system whose wiring or hardware has been perturbed (the resilience
// tier's Perturb), ReplanSession prices the stale pre-tuned plan on
// the degraded system, re-runs the session autotuner over the degraded
// network, and reports the resilience margin — how much a static fleet
// loses by serving the stale plan instead of re-planning.

// SessionCost is one exactly-evaluated session (one prompt prefill
// plus one decode step) of a fixed joint plan, as deployed.
type SessionCost struct {
	Cycles  float64
	Seconds float64
	Joules  float64
}

// EvalSessionPlan evaluates a fixed joint plan on the system exactly,
// as deployed: the full plan rides in both phases' cache keys, the
// spelling a serving fleet actually runs. A plan that routes an active
// class over an edge the network does not wire fails here — the
// degraded-wiring validation a stale plan must pass before it can be
// priced at all.
func EvalSessionPlan(sys core.System, cfg model.Config, plan collective.Plan, opts SessionOptions) (*SessionCost, error) {
	modes, _, err := sessionModes(sys, cfg, opts)
	if err != nil {
		return nil, err
	}
	sys.Options.SyncPlan = plan
	pts := make([]evalpool.Point, len(modes))
	for i, m := range modes {
		pts[i] = evalpool.Point{System: sys, Workload: m.wl}
	}
	reports, err := evalpool.Map(pts)
	if err != nil {
		return nil, fmt.Errorf("explore: session plan eval: %w", err)
	}
	var cost SessionCost
	for _, rep := range reports {
		cost.Cycles += rep.Cycles
		cost.Seconds += rep.Seconds
		cost.Joules += rep.Energy.Total()
	}
	return &cost, nil
}

// ReplanResult compares serving a stale plan on a degraded system
// against re-planning for it.
type ReplanResult struct {
	// StalePlan is the pre-tuned plan under test; Static its exact
	// session cost on the degraded system. StaticErr is set (and
	// Static nil) when the stale plan does not even validate on the
	// degraded wiring — re-planning is then mandatory, not marginal.
	StalePlan collective.Plan
	Static    *SessionCost
	StaticErr string
	// Tuned is the full session autotune over the degraded system:
	// its Plan/Cycles are the re-planned candidate and its
	// BestUniform/UniformCycles the uniform baselines.
	Tuned *SessionResult
	// AdoptedPlan is what a re-planning fleet would serve: the tuned
	// plan when it beats the stale one, otherwise the stale plan
	// (ReplanPays reports which). AdoptedCycles/AdoptedJoules price
	// it.
	AdoptedPlan   collective.Plan
	AdoptedCycles float64
	AdoptedJoules float64
	ReplanPays    bool
	// MarginCycles is the resilience margin: the stale plan's session
	// cycles over the adopted plan's — how much latency a static fleet
	// pays for not re-planning (1 when the stale plan is still
	// optimal, +Inf when it is infeasible on the degraded wiring).
	// MarginJoules is the same ratio in energy.
	MarginCycles float64
	MarginJoules float64
	// ExactSims is the evalpool memory-miss delta of the whole
	// comparison (static pricing plus the re-tune).
	ExactSims int
}

// ReplanSession prices the stale plan against a fresh AutotuneSession
// on the degraded system. The adopted plan is always the better of
// the two on exact cycles, so the margin is >= 1 by construction: the
// autotuner can only add options, never force a worse plan.
func ReplanSession(degraded core.System, cfg model.Config, stale collective.Plan, opts SessionOptions) (*ReplanResult, error) {
	evalsBefore := evalpool.Evaluations()
	res := &ReplanResult{StalePlan: stale}
	static, err := EvalSessionPlan(degraded, cfg, stale, opts)
	if err != nil {
		res.StaticErr = err.Error()
	} else {
		res.Static = static
	}
	tuned, err := AutotuneSession(degraded, cfg, opts)
	if err != nil {
		return nil, fmt.Errorf("explore: replan autotune: %w", err)
	}
	res.Tuned = tuned
	tunedJoules := tuned.PrefillReport.Energy.Total() + tuned.DecodeReport.Energy.Total()
	if res.Static != nil && res.Static.Cycles <= tuned.Cycles {
		res.AdoptedPlan = stale
		res.AdoptedCycles = res.Static.Cycles
		res.AdoptedJoules = res.Static.Joules
	} else {
		res.AdoptedPlan = tuned.Plan
		res.AdoptedCycles = tuned.Cycles
		res.AdoptedJoules = tunedJoules
		res.ReplanPays = true
	}
	if res.Static != nil {
		res.MarginCycles = res.Static.Cycles / res.AdoptedCycles
		res.MarginJoules = res.Static.Joules / res.AdoptedJoules
	} else {
		res.MarginCycles = math.Inf(1)
		res.MarginJoules = math.Inf(1)
	}
	res.ExactSims = int(evalpool.Evaluations() - evalsBefore)
	return res, nil
}
