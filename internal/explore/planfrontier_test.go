package explore

import (
	"math"
	"testing"

	"mcudist/internal/core"
	"mcudist/internal/evalpool"
	"mcudist/internal/hw"
	"mcudist/internal/model"
)

// frontSet collects the Pareto-marked points of a plan frontier as
// exact (seconds, joules) objective vectors, and a plan-keyed lookup
// of every point.
func frontSet(res *PlanFrontierResult) (map[[2]float64]bool, map[string]PlanPoint) {
	front := map[[2]float64]bool{}
	byPlan := map[string]PlanPoint{}
	for _, p := range res.Points {
		key := p.Network.String() + "/" + p.Plan.String()
		byPlan[key] = p
		if p.Pareto {
			front[[2]float64{p.Seconds, p.Joules}] = true
		}
	}
	return front, byPlan
}

// comparePlanFronts holds a surrogate-first scan to exhaustive
// enumeration: the Pareto fronts must agree as exact objective sets,
// every surrogate front point must be Pareto-optimal in the
// exhaustive scan with bit-identical objectives, and the surrogate
// must have measured at least 5x fewer exact simulations.
func comparePlanFronts(t *testing.T, surrogate, exact *PlanFrontierResult) {
	t.Helper()
	sFront, _ := frontSet(surrogate)
	eFront, eByPlan := frontSet(exact)
	if len(sFront) != len(eFront) {
		t.Errorf("surrogate front has %d objective vectors, exhaustive %d", len(sFront), len(eFront))
	}
	for v := range eFront {
		if !sFront[v] {
			t.Errorf("exhaustive front point (%.6g s, %.6g J) missing from surrogate front", v[0], v[1])
		}
	}
	for _, p := range surrogate.Points {
		if !p.Pareto {
			continue
		}
		ep, ok := eByPlan[p.Network.String()+"/"+p.Plan.String()]
		if !ok {
			t.Errorf("surrogate front plan %s not in the exhaustive grid", p.Plan)
			continue
		}
		if !ep.Pareto {
			t.Errorf("surrogate front plan %s is dominated in the exhaustive scan", p.Plan)
		}
		if ep.Seconds != p.Seconds || ep.Joules != p.Joules {
			t.Errorf("plan %s: surrogate measured (%g s, %g J), exhaustive (%g s, %g J) — exact values must be spelling-independent",
				p.Plan, p.Seconds, p.Joules, ep.Seconds, ep.Joules)
		}
	}
	if exact.ExactSims < 5*surrogate.ExactSims {
		t.Errorf("surrogate ran %d exact sims vs %d exhaustive, want >= 5x fewer",
			surrogate.ExactSims, exact.ExactSims)
	}
	if exact.ExactSims != exact.GridSims {
		t.Errorf("exhaustive ran %d sims over a %d-sim grid", exact.ExactSims, exact.GridSims)
	}
}

// The surrogate-first plan frontier must reproduce the exhaustive
// Pareto front exactly at the pinned 8-chip point — identical
// objective vectors, every front plan verified Pareto-optimal — from
// at least 5x fewer measured simulations (both counts are evalpool
// cache-miss deltas over a cold cache).
func TestPlanFrontierMatchesExhaustive8(t *testing.T) {
	base := core.DefaultSystem(1)
	cfg := model.TinyLlama42M()
	evalpool.ResetCache()
	surrogate, err := PlanFrontier(base, cfg, []int{8}, PlanFrontierOptions{})
	if err != nil {
		t.Fatal(err)
	}
	evalpool.ResetCache()
	exact, err := PlanFrontier(base, cfg, []int{8}, PlanFrontierOptions{Exhaustive: true})
	if err != nil {
		t.Fatal(err)
	}
	if exact.Candidates != 256 || exact.GridSims != 512 {
		t.Errorf("8-chip plan grid = %d candidates / %d sims, want 256 / 512",
			exact.Candidates, exact.GridSims)
	}
	comparePlanFronts(t, surrogate, exact)
}

// The same equivalence at the paper's 64-chip scaled point — the
// operating point where the hybrid prefill-ring/decode-tree plan wins,
// so the front is not a uniform plan's. ~6s of simulations; skipped
// under -short.
func TestPlanFrontierMatchesExhaustive64(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive 64-chip joint plan grid is 512 simulations")
	}
	base := core.DefaultSystem(1)
	cfg := model.TinyLlamaScaled64()
	evalpool.ResetCache()
	surrogate, err := PlanFrontier(base, cfg, []int{64}, PlanFrontierOptions{})
	if err != nil {
		t.Fatal(err)
	}
	evalpool.ResetCache()
	exact, err := PlanFrontier(base, cfg, []int{64}, PlanFrontierOptions{Exhaustive: true})
	if err != nil {
		t.Fatal(err)
	}
	comparePlanFronts(t, surrogate, exact)

	// The tuned session winner sits on the front: the frontier's best
	// latency point must match AutotuneSession's exact winner.
	res, err := AutotuneSession(core.DefaultSystem(64), cfg, SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	bestSecs := math.Inf(1)
	var bestPlan string
	for _, p := range surrogate.Points {
		if p.Pareto && p.Seconds < bestSecs {
			bestSecs = p.Seconds
			bestPlan = p.Plan.String()
		}
	}
	if bestPlan != res.Plan.String() {
		t.Errorf("frontier's fastest point is %s, AutotuneSession's winner is %s", bestPlan, res.Plan)
	}
}

// The network axis folds in: one surrogate per (network, chips) cell,
// points labeled with their cell, and the Pareto marks spanning the
// whole union — a clustered backhaul's points must not be judged only
// against each other.
func TestPlanFrontierNetworks(t *testing.T) {
	base := core.DefaultSystem(1)
	cfg := model.TinyLlama42M()
	nets := []hw.Network{
		hw.UniformNetwork(hw.MIPI()),
		// Cluster size 2, so the slow backhaul is crossed at both chip
		// counts and the degraded cells are strictly worse.
		hw.ClusteredNetwork(hw.MIPI(), hw.MIPI().Slower(10), 2),
	}
	res, err := PlanFrontier(base, cfg, []int{4, 8}, PlanFrontierOptions{Networks: nets})
	if err != nil {
		t.Fatal(err)
	}
	if res.Candidates != 4*256 {
		t.Errorf("4-cell scan enumerates %d candidates, want %d", res.Candidates, 4*256)
	}
	cells := map[string]int{}
	pareto := 0
	for _, p := range res.Points {
		cells[p.Network.String()+"/"+string(rune('0'+p.Chips))]++
		if p.Pareto {
			pareto++
			// The slow backhaul strictly dominates nothing: every front
			// point must come from the uniform network (same chips
			// available on strictly faster links).
			if p.Network != nets[0] {
				t.Errorf("front point %s/%d chips/%s rides the degraded network", p.Network, p.Chips, p.Plan)
			}
		}
	}
	if len(cells) != 4 {
		t.Errorf("points span %d cells, want 4", len(cells))
	}
	if pareto == 0 {
		t.Error("no Pareto-optimal point in the union")
	}
}

// PlanBudgetFit early-exits at the smallest chip count whose tuned
// plan meets the budgets, decides on exact numbers, and names the
// binding constraint when no count fits.
func TestPlanBudgetFit(t *testing.T) {
	base := core.DefaultSystem(1)
	cfg := model.TinyLlama42M()

	// Unbounded budgets: the very first legal count wins.
	fit, err := PlanBudgetFit(base, cfg, 8, math.Inf(1), math.Inf(1), PlanFrontierOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fit.Chips != 1 {
		t.Errorf("unbounded budgets fit %d chips, want 1", fit.Chips)
	}

	// A latency budget only the tuned 8-chip session meets: the fit
	// must land on 8 chips with a point that meets it exactly.
	res8, err := AutotuneSession(core.DefaultSystem(8), cfg, SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	budget := res8.PrefillReport.Seconds + res8.DecodeReport.Seconds
	fit, err = PlanBudgetFit(base, cfg, 8, budget, math.Inf(1), PlanFrontierOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fit.Seconds > budget {
		t.Errorf("fit returned %g s over the %g s budget", fit.Seconds, budget)
	}
	if fit.Chips != 8 {
		t.Errorf("tightest latency budget fit %d chips, want 8", fit.Chips)
	}

	// Unreachable budgets name the binding constraint.
	if _, err := PlanBudgetFit(base, cfg, 8, 0, math.Inf(1), PlanFrontierOptions{}); err == nil {
		t.Error("zero latency budget accepted")
	}
	if _, err := PlanBudgetFit(base, cfg, 8, math.Inf(1), 0, PlanFrontierOptions{}); err == nil {
		t.Error("zero energy budget accepted")
	}
}
