package explore

import (
	"fmt"

	"mcudist/internal/collective"
	"mcudist/internal/core"
	"mcudist/internal/evalpool"
	"mcudist/internal/hw"
)

// ClassChoice is one per-class decision of an autotuned collective
// plan.
type ClassChoice struct {
	Class    collective.SyncClass
	Topology hw.Topology
}

// AutotuneResult is the outcome of a per-sync plan autotuning.
type AutotuneResult struct {
	// Plan binds the winning topology to every synchronization class
	// the workload executes; other classes stay unbound.
	Plan collective.Plan
	// Report is the winning plan's evaluation.
	Report *core.Report
	// PerClass lists the winning choice per active class, in class
	// order — the "per-class winner table".
	PerClass []ClassChoice
	// BestUniform is the best single-topology configuration of the
	// same system, with its report — the baseline a mixed plan has to
	// beat.
	BestUniform   hw.Topology
	UniformReport *core.Report
	// Margin is UniformReport.Cycles / Report.Cycles: how much the
	// per-sync plan buys over the best run-wide topology (>= 1; 1
	// means the best plan is a uniform one).
	Margin float64
}

// AutotunePlan exhaustively enumerates the class × topology grid for
// the synchronization classes the workload executes (two per strategy
// and mode, so topologies^2 candidates — 16 on the four stock shapes,
// of which the 4 all-same tuples share their simulation with the
// uniform baselines), evaluates every distinct configuration through
// the shared evalpool engine, and returns the winning plan with its
// margin over the best uniform topology. The enumeration covers only
// active classes, so the grid stays small and every evaluated point
// is a genuine behavioral variant; points repeated across calls (or
// shared with BestTopology and the frontiers) are served from the
// process-wide report cache. Ties keep the earliest candidate in
// enumeration order, so the paper's tree wins exact draws.
func AutotunePlan(base core.System, wl core.Workload) (*AutotuneResult, error) {
	classes := collective.ActiveClasses(base.Strategy, wl.Mode)
	if len(classes) == 0 {
		return nil, fmt.Errorf("explore: the %s strategy executes no collective synchronizations to plan", base.Strategy)
	}
	topos := hw.Topologies()

	// Odometer over the active classes: the first candidate binds
	// every class to topos[0] (the tree), and idx[0] cycles fastest.
	// All-same tuples are behaviorally identical to the uniform
	// baselines (the goldens pin that equivalence bit for bit), so
	// they reference the baseline's report instead of paying a second
	// simulation under a different cache key: the grid evaluates
	// exactly its distinct configurations.
	type candidate struct {
		plan collective.Plan
		// uniform is the index into topos of the baseline this
		// candidate shares its simulation with (-1 for mixed tuples,
		// which get their own evalpool point).
		uniform int
		point   int // index into points for mixed tuples
	}
	var cands []candidate
	points := make([]evalpool.Point, 0, len(topos))
	idx := make([]int, len(classes))
	for {
		var p collective.Plan
		same := true
		for i, c := range classes {
			p = p.With(c, topos[idx[i]])
			same = same && idx[i] == idx[0]
		}
		c := candidate{plan: p, uniform: -1}
		if same {
			c.uniform = idx[0]
		} else {
			c.point = len(points)
			sys := base
			sys.Options.SyncPlan = p
			points = append(points, evalpool.Point{System: sys, Workload: wl})
		}
		cands = append(cands, c)
		j := 0
		for ; j < len(idx); j++ {
			idx[j]++
			if idx[j] < len(topos) {
				break
			}
			idx[j] = 0
		}
		if j == len(idx) {
			break
		}
	}
	// Uniform baselines are spelled as run topologies with the zero
	// plan, so they share cache entries with BestTopology and the
	// frontier sweeps.
	mixed := len(points)
	for _, topo := range topos {
		sys := base
		sys.Options.SyncPlan = collective.Plan{}
		sys.HW.Topology = topo
		points = append(points, evalpool.Point{System: sys, Workload: wl})
	}
	reports, err := evalpool.Map(points)
	if err != nil {
		return nil, fmt.Errorf("explore: autotune: %w", err)
	}

	reportOf := func(c candidate) *core.Report {
		if c.uniform >= 0 {
			return reports[mixed+c.uniform]
		}
		return reports[c.point]
	}
	best := 0
	for i := 1; i < len(cands); i++ {
		if reportOf(cands[i]).Cycles < reportOf(cands[best]).Cycles {
			best = i
		}
	}
	uni := 0
	for i := 1; i < len(topos); i++ {
		if reports[mixed+i].Cycles < reports[mixed+uni].Cycles {
			uni = i
		}
	}

	res := &AutotuneResult{
		Plan:          cands[best].plan,
		Report:        reportOf(cands[best]),
		BestUniform:   topos[uni],
		UniformReport: reports[mixed+uni],
	}
	res.Margin = res.UniformReport.Cycles / res.Report.Cycles
	for _, c := range classes {
		topo, _ := cands[best].plan.Explicit(c)
		res.PerClass = append(res.PerClass, ClassChoice{Class: c, Topology: topo})
	}
	return res, nil
}
