package explore

import (
	"testing"

	"mcudist/internal/collective"
	"mcudist/internal/core"
	"mcudist/internal/evalpool"
	"mcudist/internal/hw"
	"mcudist/internal/interconnect"
	"mcudist/internal/model"
	"mcudist/internal/partition"
)

// The pruned session autotuner must return the identical winner —
// plan, exact cycles, and margin — as exhaustive enumeration of the
// joint grid at the pinned 8-chip point, for at least 5x fewer exact
// simulations (measured, not estimated: both counts are evalpool
// cache-miss deltas over a cold cache).
func TestAutotuneSessionMatchesExhaustive8(t *testing.T) {
	base := core.DefaultSystem(8)
	cfg := model.TinyLlama42M()

	evalpool.ResetCache()
	pruned, err := AutotuneSession(base, cfg, SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	evalpool.ResetCache()
	exact, err := AutotuneSession(base, cfg, SessionOptions{Exhaustive: true})
	if err != nil {
		t.Fatal(err)
	}

	if pruned.Plan != exact.Plan {
		t.Errorf("pruned winner %s != exhaustive winner %s", pruned.Plan, exact.Plan)
	}
	if pruned.Cycles != exact.Cycles {
		t.Errorf("pruned cycles %g != exhaustive %g", pruned.Cycles, exact.Cycles)
	}
	if pruned.Margin != exact.Margin {
		t.Errorf("pruned margin %g != exhaustive %g", pruned.Margin, exact.Margin)
	}
	if exact.ExactSims < 5*pruned.ExactSims {
		t.Errorf("pruning saved too little: %d exact sims vs %d exhaustive (want >= 5x fewer)",
			pruned.ExactSims, exact.ExactSims)
	}
	if exact.ExactSims != exact.GridSims {
		t.Errorf("exhaustive ran %d sims over a %d-sim grid", exact.ExactSims, exact.GridSims)
	}
	// PR 4's 8-chip finding holds on the joint grid: the ring wins both
	// phases, so the best joint plan IS the uniform ring and the margin
	// is exactly 1.
	if pruned.BestUniform != hw.TopoRing || pruned.Margin != 1 {
		t.Errorf("8-chip session: best uniform %s margin %g, want uniform ring at margin 1",
			pruned.BestUniform, pruned.Margin)
	}
	for _, cc := range pruned.PerClass {
		if cc.Topology != hw.TopoRing {
			t.Errorf("8-chip session bound %s to %s, want ring", cc.Class, cc.Topology)
		}
	}
}

// At the paper's 64-chip scaled point the joint autotuner must
// rediscover the PR 4 session finding — prefill on the ring, decode on
// the tree, a >1.25x win over the best uniform session — from a
// pruned search at least 5x cheaper than the grid.
func TestAutotuneSessionPinned64(t *testing.T) {
	evalpool.ResetCache()
	res, err := AutotuneSession(core.DefaultSystem(64), model.TinyLlamaScaled64(), SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := map[collective.SyncClass]hw.Topology{
		collective.PrefillMHSA: hw.TopoRing,
		collective.PrefillFFN:  hw.TopoRing,
		collective.DecodeMHSA:  hw.TopoTree,
		collective.DecodeFFN:   hw.TopoTree,
	}
	if len(res.PerClass) != len(want) {
		t.Fatalf("session tuned %d classes, want %d", len(res.PerClass), len(want))
	}
	for _, cc := range res.PerClass {
		if cc.Topology != want[cc.Class] {
			t.Errorf("%s tuned to %s, want %s", cc.Class, cc.Topology, want[cc.Class])
		}
	}
	if res.BestUniform != hw.TopoRing {
		t.Errorf("best uniform session = %s, want ring", res.BestUniform)
	}
	if res.Margin < 1.25 {
		t.Errorf("session margin %g, want > 1.25 (the hybrid's PR 4 win)", res.Margin)
	}
	if res.Candidates != 256 || res.GridSims != 512 {
		t.Errorf("joint grid = %d candidates / %d sims, want 256 / 512", res.Candidates, res.GridSims)
	}
	if 5*res.ExactSims > res.GridSims {
		t.Errorf("pruned search ran %d exact sims over a %d-sim grid (want >= 5x fewer)",
			res.ExactSims, res.GridSims)
	}
}

// The 64-chip pruned winner must equal exhaustive enumeration of the
// full 512-simulation joint grid. ~6s of simulations; skipped under
// -short.
func TestAutotuneSessionMatchesExhaustive64(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive 64-chip joint grid is 512 simulations")
	}
	base := core.DefaultSystem(64)
	cfg := model.TinyLlamaScaled64()
	evalpool.ResetCache()
	pruned, err := AutotuneSession(base, cfg, SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	evalpool.ResetCache()
	exact, err := AutotuneSession(base, cfg, SessionOptions{Exhaustive: true})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Plan != exact.Plan || pruned.Cycles != exact.Cycles || pruned.Margin != exact.Margin {
		t.Errorf("pruned (%s, %g cycles, %gx) != exhaustive (%s, %g cycles, %gx)",
			pruned.Plan, pruned.Cycles, pruned.Margin, exact.Plan, exact.Cycles, exact.Margin)
	}
	if exact.ExactSims < 5*pruned.ExactSims {
		t.Errorf("%d pruned vs %d exhaustive sims, want >= 5x fewer", pruned.ExactSims, exact.ExactSims)
	}
}

// The predictor has to be good enough to steer: its ranking of the
// verified candidates must largely agree with exact cycles, it must
// rank the true winner first at the pinned 64-chip point (where every
// top candidate deviates in at most one class per phase, making the
// additive model exact), and its cost vector must carry one entry per
// (phase, class, topology).
func TestSessionPredictorRankAccuracy(t *testing.T) {
	evalpool.ResetCache()
	res, err := AutotuneSession(core.DefaultSystem(64), model.TinyLlamaScaled64(), SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.RankAccuracy < 0.9 {
		t.Errorf("64-chip rank accuracy %g, want >= 0.9", res.RankAccuracy)
	}
	if len(res.Verified) == 0 || res.Verified[0].Plan != res.Plan {
		t.Errorf("predictor ranked %v first, want the exact winner %s", res.Verified, res.Plan)
	}
	if res.PredictedCycles != res.Cycles {
		t.Errorf("winner predicted at %g but measured %g: the single-deviation prediction should be exact here",
			res.PredictedCycles, res.Cycles)
	}
	// 2 phases x 2 classes x 4 topologies.
	if len(res.Costs) != 16 {
		t.Fatalf("cost vector has %d entries, want 16", len(res.Costs))
	}
	for _, c := range res.Costs {
		if c.Topology == hw.TopoTree && c.DeltaCycles != 0 {
			t.Errorf("reference entry %s/%s carries delta %g, want 0", c.Class, c.Topology, c.DeltaCycles)
		}
	}

	res8, err := AutotuneSession(core.DefaultSystem(8), model.TinyLlama42M(), SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res8.RankAccuracy < 0.7 {
		t.Errorf("8-chip rank accuracy %g, want >= 0.7", res8.RankAccuracy)
	}
}

// Repeated session autotunes must never re-lower a schedule: after one
// call interned every (network, chips, topology) triple the search
// touches, a second identical call — with the report cache dropped, so
// every simulation genuinely re-runs — performs zero new lowerings.
func TestAutotuneSessionZeroNewLowerings(t *testing.T) {
	base := core.DefaultSystem(8)
	cfg := model.TinyLlama42M()
	first, err := AutotuneSession(base, cfg, SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	before := interconnect.Lowerings()
	evalpool.ResetCache()
	second, err := AutotuneSession(base, cfg, SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := interconnect.Lowerings() - before; got != 0 {
		t.Errorf("repeat autotune re-lowered %d schedules, want 0 (intern cache must absorb them)", got)
	}
	if first.Plan != second.Plan || first.Cycles != second.Cycles {
		t.Errorf("repeat autotune diverged: %s/%g vs %s/%g",
			first.Plan, first.Cycles, second.Plan, second.Cycles)
	}
	if second.ExactSims == 0 {
		t.Error("report cache was not dropped: the repeat ran no simulations and proves nothing")
	}
}

// The replicated baseline's exchanges execute in both phases, so its
// joint grid is topologies^2 and one binding serves prefill and
// decode.
func TestAutotuneSessionReplicated(t *testing.T) {
	base := core.DefaultSystem(8)
	base.Strategy = partition.Replicated
	res, err := AutotuneSession(base, model.TinyLlama42M(), SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Candidates != 16 {
		t.Errorf("replicated joint grid = %d candidates, want 16", res.Candidates)
	}
	if len(res.PerClass) != 2 ||
		res.PerClass[0].Class != collective.KVExchange ||
		res.PerClass[1].Class != collective.OutputExchange {
		t.Fatalf("replicated session classes = %v, want kv-exchange and output-exchange", res.PerClass)
	}
	if res.Margin < 1 {
		t.Errorf("margin %g < 1: the winner lost to a uniform plan it had in its grid", res.Margin)
	}
}

// The pipeline strategy has no collective synchronizations to plan.
func TestAutotuneSessionPipelineRejected(t *testing.T) {
	base := core.DefaultSystem(8)
	base.Strategy = partition.Pipeline
	if _, err := AutotuneSession(base, model.TinyLlama42M(), SessionOptions{}); err == nil {
		t.Fatal("pipeline session autotune accepted")
	}
}

// AutotuneSessionNetworks tunes one plan per network profile: the
// uniform result must match a direct call, and the clustered result
// must be tuned for (and report) its own network.
func TestAutotuneSessionNetworks(t *testing.T) {
	base := core.DefaultSystem(8)
	cfg := model.TinyLlama42M()
	nets := []hw.Network{
		hw.UniformNetwork(hw.MIPI()),
		hw.ClusteredNetwork(hw.MIPI(), hw.MIPI().Slower(10), 4),
	}
	results, err := AutotuneSessionNetworks(base, cfg, SessionOptions{}, nets)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("%d results for 2 networks", len(results))
	}
	direct, err := AutotuneSession(base, cfg, SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Plan != direct.Plan || results[0].Cycles != direct.Cycles {
		t.Errorf("uniform-network result %s/%g != direct %s/%g",
			results[0].Plan, results[0].Cycles, direct.Plan, direct.Cycles)
	}
	for i, net := range nets {
		if results[i].Network != net {
			t.Errorf("result %d reports network %s, want %s", i, results[i].Network, net)
		}
		if results[i].Margin < 1 {
			t.Errorf("network %s margin %g < 1", net, results[i].Margin)
		}
	}
	if results[0].Plan == results[1].Plan && results[0].Cycles == results[1].Cycles {
		t.Error("clustered backhaul changed nothing: results identical to uniform network")
	}
}
