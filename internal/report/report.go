// Package report renders experiment results as aligned ASCII tables
// and CSV — the textual equivalents of the paper's figures.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case float32:
			row[i] = formatFloat(float64(v))
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

func formatFloat(v float64) string {
	a := v
	if a < 0 {
		a = -a
	}
	switch {
	case a == 0:
		return "0"
	case a >= 1e6 || a < 1e-3:
		return fmt.Sprintf("%.3e", v)
	case a >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

// CSV writes the table as comma-separated values.
func (t *Table) CSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString(strings.Join(t.Headers, ","))
	b.WriteByte('\n')
	for _, row := range t.rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Bar renders a proportional text bar of the given width for
// value/total (used for runtime-breakdown visualizations).
func Bar(value, total float64, width int) string {
	if total <= 0 || value <= 0 || width <= 0 {
		return ""
	}
	n := int(value/total*float64(width) + 0.5)
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}
