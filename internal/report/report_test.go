package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("My Table", "chips", "cycles", "speedup")
	tb.AddRow(1, 1000000.0, 1.0)
	tb.AddRow(8, 43000.0, 23.25)
	out := tb.String()
	if !strings.Contains(out, "My Table") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "chips") || !strings.Contains(out, "speedup") {
		t.Error("headers missing")
	}
	if !strings.Contains(out, "23.25") {
		t.Errorf("row value missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("lines = %d, want 5:\n%s", len(lines), out)
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("", "a", "long-header")
	tb.AddRow("xxxxxxxxxx", 1)
	out := tb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header and row lines should have equal rendered width.
	if len(strings.TrimRight(lines[0], " ")) > len(lines[1]) {
		t.Errorf("misaligned table:\n%s", out)
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow(1, 2)
	var b strings.Builder
	if err := tb.CSV(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != "a,b\n1,2\n" {
		t.Fatalf("csv = %q", b.String())
	}
}

func TestFloatFormatting(t *testing.T) {
	tb := NewTable("", "v")
	tb.AddRow(0.0)
	tb.AddRow(1.5e9)
	tb.AddRow(0.00001)
	tb.AddRow(123.456)
	tb.AddRow(float32(2.5))
	out := tb.String()
	for _, want := range []string{"0", "1.500e+09", "1.000e-05", "123.5", "2.500"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted output missing %q:\n%s", want, out)
		}
	}
}

func TestRowsCount(t *testing.T) {
	tb := NewTable("", "a")
	if tb.Rows() != 0 {
		t.Fatal("fresh table has rows")
	}
	tb.AddRow(1)
	tb.AddRow(2)
	if tb.Rows() != 2 {
		t.Fatalf("rows = %d", tb.Rows())
	}
}

func TestBar(t *testing.T) {
	if Bar(50, 100, 10) != "#####" {
		t.Errorf("bar = %q", Bar(50, 100, 10))
	}
	if Bar(0, 100, 10) != "" {
		t.Error("zero bar should be empty")
	}
	if Bar(200, 100, 10) != "##########" {
		t.Error("bar should clamp at width")
	}
	if Bar(1, 0, 10) != "" {
		t.Error("zero total should be empty")
	}
}
