// Package quant implements the int8 symmetric quantization used for
// MCU deployment: per-tensor scales, integer GEMM/GEMV with int32
// accumulators, and requantization back to int8.
//
// The important property for the paper's partitioning scheme is that
// partial int32 accumulators from different chips can be summed
// exactly before requantization, so the distributed quantized network
// is bit-identical to the single-chip quantized network. The numeric
// tests in internal/numeric rely on this.
package quant

import (
	"fmt"
	"math"

	"mcudist/internal/tensor"
)

// QMat is a row-major int8 matrix with a per-tensor symmetric scale:
// real value ≈ Scale × int8 value.
type QMat struct {
	Rows, Cols int
	Scale      float32
	Data       []int8
}

// NewQ returns a zero int8 matrix with the given shape and scale.
func NewQ(rows, cols int, scale float32) *QMat {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("quant: negative shape %dx%d", rows, cols))
	}
	return &QMat{Rows: rows, Cols: cols, Scale: scale, Data: make([]int8, rows*cols)}
}

// At returns element (r, c).
func (q *QMat) At(r, c int) int8 { return q.Data[r*q.Cols+c] }

// Row returns a view of row r.
func (q *QMat) Row(r int) []int8 { return q.Data[r*q.Cols : (r+1)*q.Cols] }

// Bytes returns the storage footprint of the int8 payload.
func (q *QMat) Bytes() int { return len(q.Data) }

// Clone returns a deep copy.
func (q *QMat) Clone() *QMat {
	out := NewQ(q.Rows, q.Cols, q.Scale)
	copy(out.Data, q.Data)
	return out
}

// SliceCols returns a copy of columns [lo, hi); the scale is shared.
func (q *QMat) SliceCols(lo, hi int) *QMat {
	if lo < 0 || hi > q.Cols || lo > hi {
		panic(fmt.Sprintf("quant: column slice [%d,%d) of %d cols", lo, hi, q.Cols))
	}
	out := NewQ(q.Rows, hi-lo, q.Scale)
	for r := 0; r < q.Rows; r++ {
		copy(out.Row(r), q.Row(r)[lo:hi])
	}
	return out
}

// SliceRows returns a copy of rows [lo, hi); the scale is shared.
func (q *QMat) SliceRows(lo, hi int) *QMat {
	if lo < 0 || hi > q.Rows || lo > hi {
		panic(fmt.Sprintf("quant: row slice [%d,%d) of %d rows", lo, hi, q.Rows))
	}
	out := NewQ(hi-lo, q.Cols, q.Scale)
	copy(out.Data, q.Data[lo*q.Cols:hi*q.Cols])
	return out
}

// Quantize converts a float matrix to int8 with a symmetric per-tensor
// scale chosen from the maximum absolute value.
func Quantize(m *tensor.Mat) *QMat {
	var maxAbs float64
	for _, v := range m.Data {
		a := math.Abs(float64(v))
		if a > maxAbs {
			maxAbs = a
		}
	}
	scale := float32(maxAbs / 127)
	if maxAbs == 0 {
		scale = 1
	}
	out := NewQ(m.Rows, m.Cols, scale)
	inv := 1 / float64(scale)
	for i, v := range m.Data {
		out.Data[i] = clampInt8(math.Round(float64(v) * inv))
	}
	return out
}

// QuantizeWithScale converts using a caller-chosen scale, so that
// differently-sliced copies of one tensor share identical codes.
func QuantizeWithScale(m *tensor.Mat, scale float32) *QMat {
	if scale <= 0 {
		panic("quant: scale must be positive")
	}
	out := NewQ(m.Rows, m.Cols, scale)
	inv := 1 / float64(scale)
	for i, v := range m.Data {
		out.Data[i] = clampInt8(math.Round(float64(v) * inv))
	}
	return out
}

// Dequantize converts back to float32.
func (q *QMat) Dequantize() *tensor.Mat {
	out := tensor.New(q.Rows, q.Cols)
	for i, v := range q.Data {
		out.Data[i] = float32(v) * q.Scale
	}
	return out
}

// Acc is a row-major int32 accumulator matrix produced by integer
// matrix multiplication before requantization. Scale is the product of
// the input scales (the real value of one accumulator unit).
type Acc struct {
	Rows, Cols int
	Scale      float32
	Data       []int32
}

// NewAcc returns a zero accumulator matrix.
func NewAcc(rows, cols int, scale float32) *Acc {
	return &Acc{Rows: rows, Cols: cols, Scale: scale, Data: make([]int32, rows*cols)}
}

// Row returns a view of row r.
func (a *Acc) Row(r int) []int32 { return a.Data[r*a.Cols : (r+1)*a.Cols] }

// Bytes returns the storage footprint of the int32 payload.
func (a *Acc) Bytes() int { return 4 * len(a.Data) }

// AddInPlace accumulates b into a; scales must match. This is the
// reduction step of the distributed partial sums.
func (a *Acc) AddInPlace(b *Acc) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("quant: acc add shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if a.Scale != b.Scale {
		panic(fmt.Sprintf("quant: acc add scale mismatch %g vs %g", a.Scale, b.Scale))
	}
	for i := range a.Data {
		a.Data[i] += b.Data[i]
	}
}

// MatMulQ computes x·w into int32 accumulators: x is S×K activations,
// w is K×N weights. The accumulator scale is x.Scale × w.Scale.
func MatMulQ(x, w *QMat) *Acc {
	if x.Cols != w.Rows {
		panic(fmt.Sprintf("quant: matmul shape mismatch %dx%d · %dx%d", x.Rows, x.Cols, w.Rows, w.Cols))
	}
	out := NewAcc(x.Rows, w.Cols, x.Scale*w.Scale)
	for i := 0; i < x.Rows; i++ {
		xrow := x.Row(i)
		orow := out.Row(i)
		for k := 0; k < x.Cols; k++ {
			xv := int32(xrow[k])
			if xv == 0 {
				continue
			}
			wrow := w.Row(k)
			for j := range orow {
				orow[j] += xv * int32(wrow[j])
			}
		}
	}
	return out
}

// Requantize converts accumulators to int8 under the target scale,
// with round-to-nearest and saturation. The mapping is
// int8 ≈ (acc × acc.Scale) / outScale.
func (a *Acc) Requantize(outScale float32) *QMat {
	if outScale <= 0 {
		panic("quant: requantize scale must be positive")
	}
	out := NewQ(a.Rows, a.Cols, outScale)
	ratio := float64(a.Scale) / float64(outScale)
	for i, v := range a.Data {
		out.Data[i] = clampInt8(math.Round(float64(v) * ratio))
	}
	return out
}

// Dequantize converts accumulators directly to float32.
func (a *Acc) Dequantize() *tensor.Mat {
	out := tensor.New(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = float32(v) * a.Scale
	}
	return out
}

// Equal reports whether two quantized matrices have identical shape,
// scale and codes.
func Equal(a, b *QMat) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols || a.Scale != b.Scale {
		return false
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			return false
		}
	}
	return true
}

func clampInt8(v float64) int8 {
	if v > 127 {
		return 127
	}
	if v < -128 {
		return -128
	}
	return int8(v)
}
