package quant

import (
	"fmt"
	"math"

	"mcudist/internal/tensor"
)

// QCMat is an int8 weight matrix with per-output-channel (per-column)
// scales — the granularity PULP-NN / Deeploy deployments use, which
// tolerates channels of very different magnitude.
//
// Per-channel scales compose with the paper's partitioning exactly:
// column slices carry their own scales, and row slices (inner-dim
// splits) keep every column's scale, so int32 partial sums from
// different chips still reduce exactly. The property tests alongside
// prove both directions.
type QCMat struct {
	Rows, Cols int
	Scales     []float32 // one per column
	Data       []int8
}

// QuantizePerChannel converts a float weight matrix to int8 with one
// symmetric scale per column.
func QuantizePerChannel(m *tensor.Mat) *QCMat {
	q := &QCMat{
		Rows:   m.Rows,
		Cols:   m.Cols,
		Scales: make([]float32, m.Cols),
		Data:   make([]int8, m.Rows*m.Cols),
	}
	for c := 0; c < m.Cols; c++ {
		var maxAbs float64
		for r := 0; r < m.Rows; r++ {
			if a := math.Abs(float64(m.At(r, c))); a > maxAbs {
				maxAbs = a
			}
		}
		scale := float32(maxAbs / 127)
		if maxAbs == 0 {
			scale = 1
		}
		q.Scales[c] = scale
		inv := 1 / float64(scale)
		for r := 0; r < m.Rows; r++ {
			q.Data[r*m.Cols+c] = clampInt8(math.Round(float64(m.At(r, c)) * inv))
		}
	}
	return q
}

// At returns element (r, c).
func (q *QCMat) At(r, c int) int8 { return q.Data[r*q.Cols+c] }

// Row returns a view of row r.
func (q *QCMat) Row(r int) []int8 { return q.Data[r*q.Cols : (r+1)*q.Cols] }

// SliceCols returns a copy of columns [lo, hi) with their scales.
func (q *QCMat) SliceCols(lo, hi int) *QCMat {
	if lo < 0 || hi > q.Cols || lo > hi {
		panic(fmt.Sprintf("quant: per-channel column slice [%d,%d) of %d", lo, hi, q.Cols))
	}
	out := &QCMat{
		Rows:   q.Rows,
		Cols:   hi - lo,
		Scales: append([]float32(nil), q.Scales[lo:hi]...),
		Data:   make([]int8, q.Rows*(hi-lo)),
	}
	for r := 0; r < q.Rows; r++ {
		copy(out.Row(r), q.Row(r)[lo:hi])
	}
	return out
}

// SliceRows returns a copy of rows [lo, hi); every column keeps its
// scale (the inner-dimension split of the partitioning).
func (q *QCMat) SliceRows(lo, hi int) *QCMat {
	if lo < 0 || hi > q.Rows || lo > hi {
		panic(fmt.Sprintf("quant: per-channel row slice [%d,%d) of %d", lo, hi, q.Rows))
	}
	out := &QCMat{
		Rows:   hi - lo,
		Cols:   q.Cols,
		Scales: append([]float32(nil), q.Scales...),
		Data:   append([]int8(nil), q.Data[lo*q.Cols:hi*q.Cols]...),
	}
	return out
}

// Dequantize converts back to float32.
func (q *QCMat) Dequantize() *tensor.Mat {
	out := tensor.New(q.Rows, q.Cols)
	for r := 0; r < q.Rows; r++ {
		row := q.Row(r)
		orow := out.Row(r)
		for c := range row {
			orow[c] = float32(row[c]) * q.Scales[c]
		}
	}
	return out
}

// AccPC is an int32 accumulator matrix whose real value per element is
// Data × ActScale × WScales[col].
type AccPC struct {
	Rows, Cols int
	ActScale   float32
	WScales    []float32
	Data       []int32
}

// Row returns a view of row r.
func (a *AccPC) Row(r int) []int32 { return a.Data[r*a.Cols : (r+1)*a.Cols] }

// MatMulQPC computes x·w into per-channel int32 accumulators.
func MatMulQPC(x *QMat, w *QCMat) *AccPC {
	if x.Cols != w.Rows {
		panic(fmt.Sprintf("quant: per-channel matmul shape mismatch %dx%d · %dx%d", x.Rows, x.Cols, w.Rows, w.Cols))
	}
	out := &AccPC{
		Rows:     x.Rows,
		Cols:     w.Cols,
		ActScale: x.Scale,
		WScales:  append([]float32(nil), w.Scales...),
		Data:     make([]int32, x.Rows*w.Cols),
	}
	for i := 0; i < x.Rows; i++ {
		xrow := x.Row(i)
		orow := out.Row(i)
		for k := 0; k < x.Cols; k++ {
			xv := int32(xrow[k])
			if xv == 0 {
				continue
			}
			wrow := w.Row(k)
			for j := range orow {
				orow[j] += xv * int32(wrow[j])
			}
		}
	}
	return out
}

// AddInPlace accumulates b into a; shapes and scale bases must match
// (the distributed partial-sum reduction).
func (a *AccPC) AddInPlace(b *AccPC) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("quant: per-channel acc shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if a.ActScale != b.ActScale {
		panic(fmt.Sprintf("quant: per-channel act scale mismatch %g vs %g", a.ActScale, b.ActScale))
	}
	for c := range a.WScales {
		if a.WScales[c] != b.WScales[c] {
			panic(fmt.Sprintf("quant: channel %d scale mismatch %g vs %g", c, a.WScales[c], b.WScales[c]))
		}
	}
	for i := range a.Data {
		a.Data[i] += b.Data[i]
	}
}

// Requantize converts per-channel accumulators to int8 under a single
// per-tensor scale (the exchange grid of the distributed reduce),
// with round-to-nearest and saturation.
func (a *AccPC) Requantize(outScale float32) *QMat {
	if outScale <= 0 {
		panic("quant: requantize scale must be positive")
	}
	out := NewQ(a.Rows, a.Cols, outScale)
	for r := 0; r < a.Rows; r++ {
		row := a.Row(r)
		orow := out.Row(r)
		for c := range row {
			ratio := float64(a.ActScale) * float64(a.WScales[c]) / float64(outScale)
			orow[c] = clampInt8(math.Round(float64(row[c]) * ratio))
		}
	}
	return out
}

// Dequantize converts accumulators to float32 using the per-channel
// scale basis.
func (a *AccPC) Dequantize() *tensor.Mat {
	out := tensor.New(a.Rows, a.Cols)
	for r := 0; r < a.Rows; r++ {
		row := a.Row(r)
		orow := out.Row(r)
		for c := range row {
			orow[c] = float32(row[c]) * a.ActScale * a.WScales[c]
		}
	}
	return out
}

// ConcatColsPC concatenates per-channel accumulators side by side (the
// head-dimension partition: each chip produced distinct columns).
func ConcatColsPC(parts ...*AccPC) *AccPC {
	if len(parts) == 0 {
		panic("quant: concat of nothing")
	}
	rows := parts[0].Rows
	act := parts[0].ActScale
	cols := 0
	for _, p := range parts {
		if p.Rows != rows {
			panic("quant: per-channel concat row mismatch")
		}
		if p.ActScale != act {
			panic("quant: per-channel concat act-scale mismatch")
		}
		cols += p.Cols
	}
	out := &AccPC{Rows: rows, Cols: cols, ActScale: act, Data: make([]int32, rows*cols)}
	for _, p := range parts {
		out.WScales = append(out.WScales, p.WScales...)
	}
	for r := 0; r < rows; r++ {
		dst := out.Row(r)
		off := 0
		for _, p := range parts {
			copy(dst[off:off+p.Cols], p.Row(r))
			off += p.Cols
		}
	}
	return out
}
