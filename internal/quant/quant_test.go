package quant

import (
	"math"
	"testing"
	"testing/quick"

	"mcudist/internal/tensor"
)

func TestQuantizeRoundTripError(t *testing.T) {
	m := tensor.Random(16, 16, 2, 1)
	q := Quantize(m)
	back := q.Dequantize()
	// Round-trip error is bounded by half a quantization step.
	step := float64(q.Scale)
	if d := tensor.MaxAbsDiff(m, back); d > step/2+1e-6 {
		t.Fatalf("round-trip error %g exceeds half step %g", d, step/2)
	}
}

func TestQuantizeZeroMatrix(t *testing.T) {
	m := tensor.New(3, 3)
	q := Quantize(m)
	for _, v := range q.Data {
		if v != 0 {
			t.Fatal("zero matrix quantized to nonzero")
		}
	}
	if q.Scale <= 0 {
		t.Fatalf("zero matrix scale %g must stay positive", q.Scale)
	}
}

func TestQuantizeUsesFullRange(t *testing.T) {
	m := tensor.FromSlice(1, 2, []float32{-1, 1})
	q := Quantize(m)
	if q.Data[0] != -127 || q.Data[1] != 127 {
		t.Fatalf("codes = %v, want [-127 127]", q.Data)
	}
}

func TestMatMulQMatchesFloatApproximately(t *testing.T) {
	x := tensor.Random(4, 32, 1, 2)
	w := tensor.Random(32, 8, 1, 3)
	ref := tensor.MatMul(x, w)
	got := MatMulQ(Quantize(x), Quantize(w)).Dequantize()
	// Int8 quantization error for K=32 accumulation stays small
	// relative to the output magnitude.
	if d := tensor.MaxAbsDiff(ref, got); d > 0.2 {
		t.Fatalf("quantized matmul error %g too large", d)
	}
}

func TestAccAddExactPartition(t *testing.T) {
	// The key distributed-inference property: splitting the inner
	// dimension and summing int32 accumulators is EXACT.
	x := tensor.Random(3, 20, 1, 4)
	w := tensor.Random(20, 5, 1, 5)
	qx := Quantize(x)
	qw := Quantize(w)
	full := MatMulQ(qx, qw)

	partial := MatMulQ(qx.SliceCols(0, 8), qw.SliceRows(0, 8))
	p2 := MatMulQ(qx.SliceCols(8, 20), qw.SliceRows(8, 20))
	partial.AddInPlace(p2)

	for i := range full.Data {
		if full.Data[i] != partial.Data[i] {
			t.Fatalf("acc[%d]: full %d != partitioned %d", i, full.Data[i], partial.Data[i])
		}
	}
}

func TestRequantizeSaturates(t *testing.T) {
	a := NewAcc(1, 2, 1)
	a.Data[0] = 1 << 20
	a.Data[1] = -(1 << 20)
	q := a.Requantize(1)
	if q.Data[0] != 127 || q.Data[1] != -128 {
		t.Fatalf("saturation failed: %v", q.Data)
	}
}

func TestRequantizeScaleIdentity(t *testing.T) {
	a := NewAcc(1, 3, 0.5)
	a.Data[0], a.Data[1], a.Data[2] = 10, -20, 40
	q := a.Requantize(0.5)
	want := []int8{10, -20, 40}
	for i := range want {
		if q.Data[i] != want[i] {
			t.Fatalf("requant[%d] = %d, want %d", i, q.Data[i], want[i])
		}
	}
}

func TestSliceSharesScale(t *testing.T) {
	m := tensor.Random(6, 6, 1, 9)
	q := Quantize(m)
	s := q.SliceCols(1, 4)
	if s.Scale != q.Scale {
		t.Fatal("column slice changed scale")
	}
	r := q.SliceRows(2, 5)
	if r.Scale != q.Scale {
		t.Fatal("row slice changed scale")
	}
	for i := 0; i < s.Rows; i++ {
		for j := 0; j < s.Cols; j++ {
			if s.At(i, j) != q.At(i, j+1) {
				t.Fatal("column slice codes differ")
			}
		}
	}
}

func TestQuantizeWithScaleConsistentAcrossSlices(t *testing.T) {
	m := tensor.Random(8, 8, 1, 10)
	full := Quantize(m)
	left := QuantizeWithScale(m.SliceCols(0, 4), full.Scale)
	for r := 0; r < 8; r++ {
		for c := 0; c < 4; c++ {
			if left.At(r, c) != full.At(r, c) {
				t.Fatal("slice-then-quantize differs from quantize-then-slice")
			}
		}
	}
}

func TestEqual(t *testing.T) {
	m := tensor.Random(4, 4, 1, 11)
	a := Quantize(m)
	b := a.Clone()
	if !Equal(a, b) {
		t.Fatal("clone not equal")
	}
	b.Data[0]++
	if Equal(a, b) {
		t.Fatal("modified clone still equal")
	}
}

func TestBytes(t *testing.T) {
	q := NewQ(3, 5, 1)
	if q.Bytes() != 15 {
		t.Fatalf("qmat bytes = %d, want 15", q.Bytes())
	}
	a := NewAcc(3, 5, 1)
	if a.Bytes() != 60 {
		t.Fatalf("acc bytes = %d, want 60", a.Bytes())
	}
}

// Property: for any K split point, inner-partitioned integer matmul with
// int32 reduction is exactly equal to the unpartitioned product.
func TestPropertyInnerPartitionExact(t *testing.T) {
	f := func(seed int64, splitRaw uint8) bool {
		const k = 24
		split := 1 + int(splitRaw)%(k-1)
		x := tensor.Random(2, k, 1, seed)
		w := tensor.Random(k, 3, 1, seed+1)
		qx := Quantize(x)
		qw := Quantize(w)
		full := MatMulQ(qx, qw)
		p := MatMulQ(qx.SliceCols(0, split), qw.SliceRows(0, split))
		p.AddInPlace(MatMulQ(qx.SliceCols(split, k), qw.SliceRows(split, k)))
		for i := range full.Data {
			if full.Data[i] != p.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: column-partitioned integer matmul concatenates exactly.
func TestPropertyColumnPartitionExact(t *testing.T) {
	f := func(seed int64, splitRaw uint8) bool {
		const n = 12
		split := 1 + int(splitRaw)%(n-1)
		x := tensor.Random(2, 8, 1, seed)
		w := tensor.Random(8, n, 1, seed+1)
		qx := Quantize(x)
		qw := Quantize(w)
		full := MatMulQ(qx, qw)
		left := MatMulQ(qx, qw.SliceCols(0, split))
		right := MatMulQ(qx, qw.SliceCols(split, n))
		for i := 0; i < full.Rows; i++ {
			for j := 0; j < n; j++ {
				var v int32
				if j < split {
					v = left.Row(i)[j]
				} else {
					v = right.Row(i)[j-split]
				}
				if full.Row(i)[j] != v {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: requantization is monotone in the accumulator value.
func TestPropertyRequantizeMonotone(t *testing.T) {
	f := func(a32, b32 int32) bool {
		a := NewAcc(1, 2, 0.01)
		a.Data[0], a.Data[1] = a32, b32
		q := a.Requantize(0.02)
		if a32 <= b32 {
			return q.Data[0] <= q.Data[1]
		}
		return q.Data[0] >= q.Data[1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDequantizeAcc(t *testing.T) {
	a := NewAcc(1, 2, 0.5)
	a.Data[0], a.Data[1] = 4, -6
	m := a.Dequantize()
	if m.Data[0] != 2 || m.Data[1] != -3 {
		t.Fatalf("acc dequantize = %v, want [2 -3]", m.Data)
	}
}

func TestAccAddMismatchPanics(t *testing.T) {
	a := NewAcc(1, 2, 1)
	b := NewAcc(1, 2, 2)
	defer func() {
		if recover() == nil {
			t.Error("scale mismatch did not panic")
		}
	}()
	a.AddInPlace(b)
}

func BenchmarkMatMulQ(b *testing.B) {
	x := Quantize(tensor.Random(16, 512, 1, 1))
	w := Quantize(tensor.Random(512, 512, 1, 2))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMulQ(x, w)
	}
}

func init() {
	// Guard against platforms where math.Round might misbehave for
	// the clamp range; fail loudly at package load in that case.
	if clampInt8(math.Round(127.4)) != 127 || clampInt8(math.Round(-128.4)) != -128 {
		panic("quant: clamp sanity check failed")
	}
}
