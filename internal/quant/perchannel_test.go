package quant

import (
	"testing"
	"testing/quick"

	"mcudist/internal/tensor"
)

// illConditioned builds a weight matrix whose columns differ in
// magnitude by 100× — the case per-channel quantization exists for.
func illConditioned(rows, cols int, seed int64) *tensor.Mat {
	m := tensor.Random(rows, cols, 1, seed)
	for c := 0; c < cols; c++ {
		scale := float32(1)
		if c%2 == 0 {
			scale = 0.01
		}
		for r := 0; r < rows; r++ {
			m.Set(r, c, m.At(r, c)*scale)
		}
	}
	return m
}

func TestPerChannelBeatsPerTensorOnIllConditioned(t *testing.T) {
	w := illConditioned(32, 16, 1)
	pt := Quantize(w).Dequantize()
	pc := QuantizePerChannel(w).Dequantize()
	ePT := tensor.MaxAbsDiff(w, pt)
	ePC := tensor.MaxAbsDiff(w, pc)
	// Per-tensor error on the small columns is bounded by the big
	// columns' step; per-channel adapts per column.
	if ePC >= ePT {
		t.Fatalf("per-channel error %g not below per-tensor %g", ePC, ePT)
	}
	// Relative error of SMALL columns is the real win: check column 0.
	var smallColErr float64
	for r := 0; r < w.Rows; r++ {
		d := float64(w.At(r, 0) - pc.At(r, 0))
		if d < 0 {
			d = -d
		}
		if d > smallColErr {
			smallColErr = d
		}
	}
	if smallColErr > 0.01/127+1e-9 {
		t.Fatalf("small-column error %g exceeds its own half step", smallColErr)
	}
}

func TestPerChannelRoundTripScales(t *testing.T) {
	w := tensor.Random(8, 4, 1, 2)
	q := QuantizePerChannel(w)
	if len(q.Scales) != 4 {
		t.Fatalf("scales = %d", len(q.Scales))
	}
	back := q.Dequantize()
	for c := 0; c < 4; c++ {
		step := float64(q.Scales[c])
		for r := 0; r < 8; r++ {
			d := float64(w.At(r, c) - back.At(r, c))
			if d < 0 {
				d = -d
			}
			if d > step/2+1e-6 {
				t.Fatalf("(%d,%d) error %g exceeds half step %g", r, c, d, step/2)
			}
		}
	}
}

func TestMatMulQPCMatchesFloat(t *testing.T) {
	x := tensor.Random(4, 32, 1, 3)
	w := illConditioned(32, 8, 4)
	ref := tensor.MatMul(x, w)
	got := MatMulQPC(Quantize(x), QuantizePerChannel(w)).Dequantize()
	if d := tensor.MaxAbsDiff(ref, got); d > 0.05 {
		t.Fatalf("per-channel matmul error %g", d)
	}
}

// The paper-relevant property: the head-dimension (column) partition
// of per-channel-quantized weights is exact.
func TestPerChannelColumnPartitionExact(t *testing.T) {
	x := tensor.Random(3, 16, 1, 5)
	w := illConditioned(16, 12, 6)
	qx := Quantize(x)
	qw := QuantizePerChannel(w)
	full := MatMulQPC(qx, qw)
	left := MatMulQPC(qx, qw.SliceCols(0, 5))
	right := MatMulQPC(qx, qw.SliceCols(5, 12))
	joined := ConcatColsPC(left, right)
	if joined.Cols != full.Cols {
		t.Fatal("concat shape wrong")
	}
	for i := range full.Data {
		if full.Data[i] != joined.Data[i] {
			t.Fatalf("acc[%d]: %d != %d", i, full.Data[i], joined.Data[i])
		}
	}
	for c := range full.WScales {
		if full.WScales[c] != joined.WScales[c] {
			t.Fatal("scales not preserved by partition")
		}
	}
}

// And the inner-dimension (row) partition with int32 reduction is
// exact — the all-reduce property, now with per-channel scales.
func TestPerChannelInnerPartitionExact(t *testing.T) {
	x := tensor.Random(3, 20, 1, 7)
	w := illConditioned(20, 6, 8)
	qx := Quantize(x)
	qw := QuantizePerChannel(w)
	full := MatMulQPC(qx, qw)

	p1 := MatMulQPC(qx.SliceCols(0, 8), qw.SliceRows(0, 8))
	p2 := MatMulQPC(qx.SliceCols(8, 20), qw.SliceRows(8, 20))
	p1.AddInPlace(p2)
	for i := range full.Data {
		if full.Data[i] != p1.Data[i] {
			t.Fatalf("acc[%d]: %d != %d", i, full.Data[i], p1.Data[i])
		}
	}
}

// Property: both partitions stay exact for random split points.
func TestPropertyPerChannelPartitionExact(t *testing.T) {
	f := func(seed int64, splitRaw uint8) bool {
		const k, n = 24, 10
		x := tensor.Random(2, k, 1, seed)
		w := illConditioned(k, n, seed+1)
		qx := Quantize(x)
		qw := QuantizePerChannel(w)
		full := MatMulQPC(qx, qw)

		ks := 1 + int(splitRaw)%(k-1)
		inner := MatMulQPC(qx.SliceCols(0, ks), qw.SliceRows(0, ks))
		inner.AddInPlace(MatMulQPC(qx.SliceCols(ks, k), qw.SliceRows(ks, k)))

		ns := 1 + int(splitRaw>>4)%(n-1)
		outer := ConcatColsPC(
			MatMulQPC(qx, qw.SliceCols(0, ns)),
			MatMulQPC(qx, qw.SliceCols(ns, n)),
		)
		for i := range full.Data {
			if full.Data[i] != inner.Data[i] || full.Data[i] != outer.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAccPCMismatchPanics(t *testing.T) {
	w := tensor.Random(8, 4, 1, 9)
	a := MatMulQPC(Quantize(tensor.Random(2, 8, 1, 10)), QuantizePerChannel(w))
	b := MatMulQPC(QuantizeWithScale(tensor.Random(2, 8, 1, 10), a.ActScale*2), QuantizePerChannel(w))
	defer func() {
		if recover() == nil {
			t.Error("act-scale mismatch accepted")
		}
	}()
	a.AddInPlace(b)
}

func TestPerChannelSliceBounds(t *testing.T) {
	q := QuantizePerChannel(tensor.Random(4, 4, 1, 11))
	for i, f := range []func(){
		func() { q.SliceCols(-1, 2) },
		func() { q.SliceCols(2, 5) },
		func() { q.SliceRows(3, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: bad slice accepted", i)
				}
			}()
			f()
		}()
	}
}

func TestPerChannelZeroColumn(t *testing.T) {
	m := tensor.New(4, 2)
	m.Set(0, 1, 1)
	q := QuantizePerChannel(m)
	if q.Scales[0] <= 0 {
		t.Fatal("zero column scale must stay positive")
	}
	back := q.Dequantize()
	for r := 0; r < 4; r++ {
		if back.At(r, 0) != 0 {
			t.Fatal("zero column corrupted")
		}
	}
}
