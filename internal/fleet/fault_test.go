package fleet

import (
	"reflect"
	"testing"

	"mcudist/internal/core"
	"mcudist/internal/evalpool"
	"mcudist/internal/model"
	"mcudist/internal/resilience"
	"mcudist/internal/resultstore"
)

// A mid-trace fault must change the degraded group's serving (the
// faulted run's metrics differ from the pristine run's), stay fully
// deterministic (two faulted runs are byte-identical), and still
// drain the whole trace.
func TestFleetMidTraceFaultDeterministic(t *testing.T) {
	// Leave the process-wide memo as cold as we found it: later tests
	// pin their evaluation counts against an empty cache.
	defer evalpool.ResetCache()
	opts := smallOptions(300, 30)
	opts.Groups = 2
	pristine := mustFleet(t, opts)

	opts.Fault = &FaultPlan{
		AtSeconds: 3,
		Group:     1,
		Faults:    []resilience.Fault{resilience.SlowEdge(0, 1, 10)},
	}
	faulted := mustFleet(t, opts)
	if !faulted.FaultApplied {
		t.Fatal("fault at 3s never fired on a 300-request trace")
	}
	if faulted.PostFaultChips != 8 {
		t.Fatalf("slow-edge fault changed chips to %d, want 8", faulted.PostFaultChips)
	}
	if faulted.Metrics.Completed != 300 {
		t.Fatalf("faulted fleet completed %d of 300 requests", faulted.Metrics.Completed)
	}
	if reflect.DeepEqual(faulted.Metrics, pristine.Metrics) {
		t.Error("a 10x-slowed edge left the fleet metrics byte-identical")
	}
	again := mustFleet(t, opts)
	if !reflect.DeepEqual(faulted.Metrics, again.Metrics) {
		t.Error("two faulted runs at the same seed diverged")
	}
	if again.PostFaultChips != faulted.PostFaultChips || again.PostFaultPlan != faulted.PostFaultPlan {
		t.Error("post-fault record diverged across runs")
	}

	// Dropping a chip shrinks the degraded group and is visible in the
	// record.
	opts.Fault = &FaultPlan{AtSeconds: 3, Group: 0, Faults: []resilience.Fault{resilience.DropChip(3)}}
	dropped := mustFleet(t, opts)
	if !dropped.FaultApplied || dropped.PostFaultChips != 7 {
		t.Fatalf("drop fault: applied=%v chips=%d, want true and 7",
			dropped.FaultApplied, dropped.PostFaultChips)
	}

	// A fault scheduled after the trace drains is a no-op: metrics stay
	// byte-identical to the pristine run and the makespan is not
	// extended to the fault time.
	opts.Fault = &FaultPlan{AtSeconds: 1e9, Group: 0, Faults: []resilience.Fault{resilience.DropChip(3)}}
	late := mustFleet(t, opts)
	if late.FaultApplied {
		t.Error("a post-drain fault reported as applied")
	}
	if !reflect.DeepEqual(late.Metrics, pristine.Metrics) {
		t.Error("a post-drain fault changed the metrics")
	}
}

// A degraded group's steps replay from a warm persistent store with
// zero exact simulations: the post-fault shapes are a deterministic
// function of (trace, system, fault plan), so the cold run prices them
// all into the store — including the re-planning autotune — and the
// warm run is pure disk hits with byte-identical metrics.
func TestFleetFaultWarmReplayZeroSims(t *testing.T) {
	store, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	evalpool.SetStore(store)
	defer evalpool.SetStore(nil)
	evalpool.ResetCache()
	defer evalpool.ResetCache()

	opts := smallOptions(2000, 100)
	opts.Groups = 2
	opts.Fault = &FaultPlan{
		AtSeconds: 5,
		Group:     0,
		Faults:    []resilience.Fault{resilience.DropChip(3)},
		Replan:    true,
	}
	cold := mustFleet(t, opts)
	if !cold.FaultApplied || cold.PostFaultChips != 7 {
		t.Fatalf("fault record: applied=%v chips=%d, want true and 7",
			cold.FaultApplied, cold.PostFaultChips)
	}
	if cold.PostFaultMargin < 1 {
		t.Errorf("re-planned margin %g < 1", cold.PostFaultMargin)
	}
	if cold.ExactSims == 0 {
		t.Fatal("cold faulted run on an empty store simulated nothing")
	}

	evalpool.ResetCache()
	warm := mustFleet(t, opts)
	if warm.ExactSims != 0 {
		t.Errorf("warm faulted run executed %d exact simulations, want 0", warm.ExactSims)
	}
	if !reflect.DeepEqual(warm.Metrics, cold.Metrics) {
		t.Error("warm faulted metrics diverged from cold")
	}
	if warm.PostFaultPlan != cold.PostFaultPlan || warm.PostFaultMargin != cold.PostFaultMargin {
		t.Error("warm re-planning record diverged from cold")
	}
}

// Invalid fault plans are rejected up front.
func TestFleetFaultValidation(t *testing.T) {
	drop := []resilience.Fault{resilience.DropChip(3)}
	cases := []*FaultPlan{
		{AtSeconds: -1, Group: 0, Faults: drop},
		{AtSeconds: 1, Group: 2, Faults: drop},
		{AtSeconds: 1, Group: -1, Faults: drop},
		{AtSeconds: 1, Group: 0},
	}
	for _, fp := range cases {
		opts := smallOptions(10, 1)
		opts.Groups = 2
		opts.Fault = fp
		if _, err := Run(opts); err == nil {
			t.Errorf("accepted fault plan %+v", fp)
		}
	}
	// A fault that degrades the board below 2 chips fails the run, not
	// silently: the degraded system is invalid.
	opts := smallOptions(10, 1)
	opts.System = core.DefaultSystem(2)
	opts.Model = model.TinyLlama42M()
	opts.Fault = &FaultPlan{AtSeconds: 0, Group: 0, Faults: []resilience.Fault{resilience.DropChip(0)}}
	if _, err := Run(opts); err == nil {
		t.Error("accepted a fault dropping the board below 2 chips")
	}
}
