// Package fleet is the fleet-serving simulator: an event-driven
// scheduler that admits a stream of inference requests (seeded Poisson
// or trace-driven arrivals, mixed prompt lengths and decode budgets)
// onto one or more chip groups and continuously batches decode steps
// across sessions, reporting serving metrics — p50/p99 request
// latency, tokens per second, queue depth over time, chip-group
// utilization, energy per request — instead of cycles per run.
//
// Every scheduled step is priced by a step-cost oracle: a prefill of
// length L is the (System, Workload{Prompt, L}) point and a decode
// micro-batch of width B at context C is (System, Workload{AR, C,
// Batch: B}), both evaluated through the evalpool cache tiers
// (in-process memo → persistent resultstore → exact simulation).
// Context lengths are bucketed, so a fleet run prices only as many
// exact simulations as there are distinct step shapes — tens, not
// millions — and a warm persistent store prices a million-request run
// with zero exact simulations.
//
// The scheduler itself is strictly serial on the eventsim engine
// (time in seconds), so fleet output is byte-identical across worker
// counts and runs at a fixed seed: concurrency only ever lives in the
// oracle pool, whose results are byte-identical by evalpool's own
// guarantee.
//
// Before the serial replay starts, a dry pre-pricing pass enumerates
// the speculative shape rectangle the trace can touch (every distinct
// prompt length at batch 1, every context bucket a decoding session
// can cross at every micro-batch width up to the cap) and prices it
// through evalpool workers-wide. The replay then runs as pure memory
// hits, so a cold fleet run pays its exact simulations in parallel
// instead of one at a time inside the event loop. Options.NoPrePrice
// forces the lazy reference path the pass is pinned byte-identical to.
package fleet

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"mcudist/internal/collective"
	"mcudist/internal/core"
	"mcudist/internal/evalpool"
	"mcudist/internal/eventsim"
	"mcudist/internal/explore"
	"mcudist/internal/model"
	"mcudist/internal/resilience"
)

// Request is one inference request: a prompt to prefill and a decode
// budget to generate.
type Request struct {
	// ID is the request's index in the trace.
	ID int
	// ArrivalSeconds is the request's arrival time on the fleet clock.
	ArrivalSeconds float64
	// PromptLen is the prompt length in tokens (the prefill shape).
	PromptLen int
	// DecodeTokens is how many tokens the session generates in decode
	// steps after the prefill produced its first token.
	DecodeTokens int
}

// Trace is an arrival schedule: requests sorted by arrival time.
type Trace struct {
	Requests []Request
}

// TraceOptions parameterizes PoissonTrace. The zero value of each
// field selects the default noted on it.
type TraceOptions struct {
	// Requests is the trace length (default 1000).
	Requests int
	// RatePerSecond is the mean Poisson arrival rate (default 1).
	RatePerSecond float64
	// Seed seeds the deterministic generator; equal seeds yield
	// byte-identical traces (default 1).
	Seed uint64
	// PromptLens are the prompt-length choices, picked uniformly
	// (default 16, 32, 64, 128).
	PromptLens []int
	// MinDecode/MaxDecode bound the uniform decode budget
	// (defaults 4 and 32).
	MinDecode, MaxDecode int
}

// PoissonTrace generates a seeded Poisson arrival trace with mixed
// prompt lengths and decode budgets. The generator is a splitmix64
// stream owned by the trace, so the result depends only on the
// options — never on process scheduling or math/rand global state.
func PoissonTrace(opts TraceOptions) Trace {
	n := opts.Requests
	if n <= 0 {
		n = 1000
	}
	rate := opts.RatePerSecond
	if rate <= 0 {
		rate = 1
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	prompts := opts.PromptLens
	if len(prompts) == 0 {
		prompts = []int{16, 32, 64, 128}
	}
	minD, maxD := opts.MinDecode, opts.MaxDecode
	if minD <= 0 {
		minD = 4
	}
	if maxD < minD {
		maxD = 32
		if maxD < minD {
			maxD = minD
		}
	}
	r := rng{state: seed}
	tr := Trace{Requests: make([]Request, n)}
	at := 0.0
	for i := 0; i < n; i++ {
		at += r.exp() / rate
		tr.Requests[i] = Request{
			ID:             i,
			ArrivalSeconds: at,
			PromptLen:      prompts[r.intn(len(prompts))],
			DecodeTokens:   minD + r.intn(maxD-minD+1),
		}
	}
	return tr
}

// Options configures one fleet run.
type Options struct {
	// Trace is the request stream (required).
	Trace Trace
	// System is the per-group platform: hardware, chip count, strategy,
	// and planner options. Every group is identical.
	System core.System
	// Model is the served model.
	Model model.Config
	// Groups is the number of independent chip groups requests are
	// routed across (default 1). Arrivals go to the group with the
	// fewest outstanding requests, lowest index first.
	Groups int
	// MaxBatch caps the decode micro-batch width per group (default 8;
	// 1 disables continuous batching — the sequential baseline).
	MaxBatch int
	// ContextBucket rounds decode-step contexts up to a multiple of
	// this many tokens for pricing (default 32). Larger buckets mean
	// fewer distinct step shapes (fewer exact simulations) at the cost
	// of coarser step prices; a step is never priced below its true
	// context. Prompts are priced at their exact length — a trace's
	// distinct prompt lengths bound those shapes already.
	ContextBucket int
	// NoPrePrice disables the parallel shape pre-pricing pass, pricing
	// every step shape lazily inside the strictly-serial event loop —
	// the reference path pre-pricing is pinned byte-identical to.
	NoPrePrice bool
	// Autotune runs explore.AutotuneSession once on the group system
	// and adopts the winning per-sync collective plan for every group,
	// so fleet throughput inherits the per-sync plan wins.
	Autotune bool
	// AutotuneTopK is the session autotuner's pruning knob (0 =
	// explore's default).
	AutotuneTopK int
	// Fault, when non-nil, injects a mid-trace hardware fault into one
	// chip group: at AtSeconds the group's platform is rewritten by
	// resilience.Degrade and every later step on it is priced on the
	// degraded system. The other groups keep serving pristine.
	Fault *FaultPlan
}

// FaultPlan is a mid-trace fault injection: at AtSeconds on the fleet
// clock, Group's system degrades by Faults. The step in flight on the
// group (if any) completes at its already-committed price; every step
// scheduled after the fault is priced on the degraded system. With
// Replan set, the fleet re-runs the session autotuner on the degraded
// system at fault time and the group serves the re-planned collective
// plan; otherwise it keeps serving the stale pre-fault plan on the
// degraded wiring (failing the run if that plan became infeasible).
type FaultPlan struct {
	// AtSeconds is the fault time on the fleet clock (>= 0).
	AtSeconds float64
	// Group is the chip group that degrades.
	Group int
	// Faults is the non-empty fault set applied via resilience.Perturb.
	Faults []resilience.Fault
	// Replan re-tunes the collective plan for the degraded system.
	Replan bool
	// ReplanTopK is the re-planning autotuner's pruning knob (0 =
	// explore's default).
	ReplanTopK int
}

// QueueSample is one point of the queue-depth-over-time series.
type QueueSample struct {
	AtSeconds float64
	// Depth is the number of requests in the system (arrived, not yet
	// completed: waiting for prefill or actively decoding).
	Depth int
}

// Metrics are the serving metrics of one fleet run. Every field is a
// pure function of (Trace, System, Model, scheduler options): cold and
// warm stores, and any worker count, produce byte-identical Metrics.
type Metrics struct {
	// Requests / Completed count the trace and its completions (equal
	// unless the trace is empty).
	Requests  int
	Completed int
	// SimSeconds is the fleet makespan: the time the last request
	// completed (or the last arrival, if later).
	SimSeconds float64
	// Request latency (arrival → last token) percentiles and mean, by
	// nearest rank over completed requests.
	P50LatencySeconds  float64
	P99LatencySeconds  float64
	MeanLatencySeconds float64
	// Time to first token (arrival → prefill complete) percentiles.
	P50TTFTSeconds float64
	P99TTFTSeconds float64
	// TokensPerSecond is decoded tokens per simulated second over the
	// makespan (prefill tokens are not counted as output).
	TokensPerSecond float64
	// RequestsPerSecond is completed requests over the makespan — the
	// achieved throughput the saturation sweep compares to the offered
	// rate.
	RequestsPerSecond float64
	// Energy: the analytical model's joules summed over every
	// scheduled step, and the per-request quotient. A decode step's
	// energy is split evenly across its batch.
	TotalEnergyJoules      float64
	EnergyPerRequestJoules float64
	// Queue depth (requests in system): time-weighted mean over the
	// makespan, the maximum, and an adaptively strided series.
	MeanQueueDepth float64
	MaxQueueDepth  int
	QueueOverTime  []QueueSample
	// GroupUtilization is busy-seconds / makespan per chip group.
	GroupUtilization []float64
	// MeanBatch is the mean decode micro-batch width over decode
	// steps; PrefillSteps/DecodeSteps count scheduled steps.
	MeanBatch    float64
	PrefillSteps int
	DecodeSteps  int
}

// Result is one fleet run: deterministic serving metrics plus the
// run's oracle accounting and the adopted plan.
type Result struct {
	Metrics Metrics
	// DistinctShapes is how many distinct step shapes the run priced —
	// the speculative pre-pricing rectangle united with anything the
	// replay priced lazily — and the upper bound on exact simulations
	// a cold run pays.
	DistinctShapes int
	// ExactSims is how many exact core.Run simulations this run
	// actually executed (the process-wide evalpool delta): positive on
	// a cold store, zero on a warm one. Evaluations is the
	// storage-independent memory-miss count.
	ExactSims   uint64
	Evaluations uint64
	// Plan is the adopted per-sync collective plan (zero unless
	// Autotune) and AutotuneMargin its win over the best uniform
	// topology.
	Plan           collective.Plan
	AutotuneMargin float64
	// FaultApplied reports whether the configured FaultPlan fired
	// before the trace drained (false when the fleet finished first).
	FaultApplied bool
	// PostFaultChips is the degraded group's chip count after the
	// fault; PostFaultPlan/PostFaultMargin record the re-planned
	// collective plan and its margin when FaultPlan.Replan is set.
	PostFaultChips  int
	PostFaultPlan   collective.Plan
	PostFaultMargin float64
}

// session is one admitted request's decoding state.
type session struct {
	req       Request
	ctx       int // current context length in tokens
	remaining int // decode tokens still to generate
	energy    float64
	prefilled float64 // prefill completion time (TTFT reference)
}

// stepCost is one priced step shape.
type stepCost struct {
	seconds float64
	joules  float64
}

// shapeKey identifies a step shape in the fleet-local price memo.
type shapeKey struct {
	mode   model.Mode
	seqLen int
	batch  int
}

// group is one chip group's scheduler state.
type group struct {
	id          int
	promptQ     []*session // waiting for prefill, FIFO
	active      []*session // admitted sessions, admission order
	busy        bool
	busySeconds float64
	// The in-flight step (at most one per group, guarded by busy) is
	// parked in step* and consumed by the reusable finish callback, so
	// scheduling a step allocates no closure.
	stepPrefill *session // non-nil → prefill step; nil → decode step
	stepWidth   int
	stepJoules  float64
	stepEnd     float64
	finish      func()
}

func (g *group) outstanding() int { return len(g.promptQ) + len(g.active) }

// fleet is one run's full state.
type fleet struct {
	opts   Options
	sys    core.System
	eng    *eventsim.Engine
	groups []*group
	prices map[shapeKey]stepCost
	// last* is a one-entry fast path over prices: consecutive steps
	// overwhelmingly repeat the previous step's shape (a decode batch
	// keeps its width and bucket for many tokens), so the hot loop
	// usually skips the map hash entirely. lastDeg keys the entry to
	// the memo it came from (pristine vs degraded).
	lastKey   shapeKey
	lastCost  stepCost
	lastValid bool
	lastDeg   bool
	// Fault state: degGroup is -1 until the FaultPlan fires, then the
	// id of the degraded group, which prices its steps on degSys
	// through its own memo (degraded shapes can never share a price
	// with pristine ones — the systems differ).
	degGroup        int
	degSys          core.System
	degPrices       map[shapeKey]stepCost
	postFaultChips  int
	postFaultPlan   collective.Plan
	postFaultMargin float64
	// Arrival feed: reqs is sorted by arrival time and fed into the
	// event queue one request at a time by the reusable arriveNext
	// callback. Scheduling arrivals lazily keeps the event heap a few
	// entries deep (next arrival + one in-flight step per group)
	// instead of pre-loading every request, and avoids allocating a
	// Request-capturing closure per arrival.
	reqs       []Request
	nextReq    int
	arriveNext func()

	// depth accounting (requests in system, all groups)
	depth       int
	maxDepth    int
	lastDepthAt float64
	depthArea   float64
	samples     []QueueSample
	stride      int
	sinceSample int

	latencies []float64
	ttfts     []float64

	decodedTokens int64
	totalEnergy   float64
	prefillSteps  int
	decodeSteps   int
	batchSum      int64
	completed     int
	err           error
}

const maxQueueSamples = 512

// Run simulates the trace on the fleet and returns its metrics.
func Run(opts Options) (*Result, error) {
	if len(opts.Trace.Requests) == 0 {
		return nil, fmt.Errorf("fleet: empty trace")
	}
	if opts.System.Chips <= 0 {
		return nil, fmt.Errorf("fleet: chip count %d must be positive", opts.System.Chips)
	}
	if opts.Model.L == 0 {
		return nil, fmt.Errorf("fleet: no model configured")
	}
	groups := opts.Groups
	if groups <= 0 {
		groups = 1
	}
	if opts.MaxBatch < 0 {
		return nil, fmt.Errorf("fleet: max batch %d must be non-negative", opts.MaxBatch)
	}
	if opts.ContextBucket < 0 {
		return nil, fmt.Errorf("fleet: context bucket %d must be non-negative", opts.ContextBucket)
	}
	if fp := opts.Fault; fp != nil {
		if fp.AtSeconds < 0 || math.IsNaN(fp.AtSeconds) || math.IsInf(fp.AtSeconds, 0) {
			return nil, fmt.Errorf("fleet: bad fault time %v", fp.AtSeconds)
		}
		if fp.Group < 0 || fp.Group >= groups {
			return nil, fmt.Errorf("fleet: fault group %d out of range [0,%d)", fp.Group, groups)
		}
		if len(fp.Faults) == 0 {
			return nil, fmt.Errorf("fleet: fault plan without faults")
		}
	}
	for i, r := range opts.Trace.Requests {
		if r.PromptLen <= 0 {
			return nil, fmt.Errorf("fleet: request %d: prompt length %d must be positive", i, r.PromptLen)
		}
		if r.DecodeTokens < 0 {
			return nil, fmt.Errorf("fleet: request %d: decode budget %d must be non-negative", i, r.DecodeTokens)
		}
		if r.ArrivalSeconds < 0 || math.IsNaN(r.ArrivalSeconds) || math.IsInf(r.ArrivalSeconds, 0) {
			return nil, fmt.Errorf("fleet: request %d: bad arrival time %v", i, r.ArrivalSeconds)
		}
	}

	simsBefore := evalpool.Simulations()
	evalsBefore := evalpool.Evaluations()

	res := &Result{}
	sys := opts.System
	if opts.Autotune {
		tuned, err := explore.AutotuneSession(sys, opts.Model,
			explore.SessionOptions{TopK: opts.AutotuneTopK})
		if err != nil {
			return nil, fmt.Errorf("fleet: autotune: %w", err)
		}
		sys.Options.SyncPlan = tuned.Plan
		res.Plan = tuned.Plan
		res.AutotuneMargin = tuned.Margin
	}

	f := &fleet{
		opts:     opts,
		sys:      sys,
		eng:      eventsim.NewEngine(),
		prices:   make(map[shapeKey]stepCost),
		stride:   1,
		degGroup: -1,
	}
	if opts.Fault != nil {
		f.eng.At(opts.Fault.AtSeconds, f.applyFault)
	}
	for i := 0; i < groups; i++ {
		g := &group{id: i}
		g.finish = func() {
			if s := g.stepPrefill; s != nil {
				g.stepPrefill = nil
				f.finishPrefill(g, s, g.stepEnd)
			} else {
				f.finishDecode(g, g.stepWidth, g.stepJoules, g.stepEnd)
			}
		}
		f.groups = append(f.groups, g)
	}

	// Arrivals are sorted defensively (stable, so equal times keep
	// trace order) and fed lazily: only the next arrival sits in the
	// event queue, and delivering it schedules the one after. The
	// next arrival is scheduled before the delivered request is
	// processed so simultaneous arrivals still run in trace order.
	reqs := make([]Request, len(opts.Trace.Requests))
	copy(reqs, opts.Trace.Requests)
	sort.SliceStable(reqs, func(i, j int) bool {
		return reqs[i].ArrivalSeconds < reqs[j].ArrivalSeconds
	})
	f.reqs = reqs
	f.arriveNext = func() {
		i := f.nextReq
		f.nextReq++
		if f.nextReq < len(f.reqs) {
			f.eng.At(f.reqs[f.nextReq].ArrivalSeconds, f.arriveNext)
		}
		f.arrive(f.reqs[i])
	}
	if len(reqs) > 0 {
		f.eng.At(reqs[0].ArrivalSeconds, f.arriveNext)
	}
	if !opts.NoPrePrice {
		f.prePrice(reqs)
	}
	end := f.eng.Run()
	if f.err != nil {
		return nil, f.err
	}
	if opts.Fault != nil && end > f.lastDepthAt {
		// The fault event outlived the trace: the makespan is the last
		// arrival or completion, not the fault time.
		end = f.lastDepthAt
	}

	res.Metrics = f.metrics(end)
	res.DistinctShapes = len(f.prices) + len(f.degPrices)
	res.ExactSims = evalpool.Simulations() - simsBefore
	res.Evaluations = evalpool.Evaluations() - evalsBefore
	if f.degGroup >= 0 {
		res.FaultApplied = true
		res.PostFaultChips = f.postFaultChips
		res.PostFaultPlan = f.postFaultPlan
		res.PostFaultMargin = f.postFaultMargin
	}
	return res, nil
}

// arrive routes one request to the least-loaded group and kicks its
// scheduler.
func (f *fleet) arrive(req Request) {
	if f.err != nil {
		return
	}
	now := f.eng.Now()
	best := f.groups[0]
	for _, g := range f.groups[1:] {
		if g.outstanding() < best.outstanding() {
			best = g
		}
	}
	best.promptQ = append(best.promptQ, &session{req: req, ctx: req.PromptLen, remaining: req.DecodeTokens})
	f.noteDepth(now, +1)
	f.start(best, now)
}

// maxBatch returns the effective decode micro-batch cap.
func (f *fleet) maxBatch() int {
	if f.opts.MaxBatch == 0 {
		return 8
	}
	return f.opts.MaxBatch
}

// bucket rounds a decode context up to the pricing bucket.
func (f *fleet) bucket(n int) int {
	b := f.opts.ContextBucket
	if b == 0 {
		b = 32
	}
	if b == 1 || n%b == 0 {
		return n
	}
	return (n/b + 1) * b
}

// price returns the cost of one step shape on group g through the
// oracle tiers, memoized fleet-locally so the scheduler's hot loop
// costs one map probe per step. A group degraded by the FaultPlan
// prices against the degraded system through its own memo.
func (f *fleet) price(g *group, mode model.Mode, seqLen, batch int) (stepCost, error) {
	deg := g.id == f.degGroup
	key := shapeKey{mode: mode, seqLen: seqLen, batch: batch}
	if f.lastValid && key == f.lastKey && deg == f.lastDeg {
		return f.lastCost, nil
	}
	prices, sys := f.prices, f.sys
	if deg {
		prices, sys = f.degPrices, f.degSys
	}
	if c, ok := prices[key]; ok {
		f.lastKey, f.lastCost, f.lastValid, f.lastDeg = key, c, true, deg
		return c, nil
	}
	rep, err := evalpool.Run(sys, core.Workload{Model: f.opts.Model, Mode: mode, SeqLen: seqLen, Batch: batch})
	if err != nil {
		return stepCost{}, fmt.Errorf("fleet: price %s seq=%d batch=%d: %w", mode, seqLen, batch, err)
	}
	c := stepCost{seconds: rep.Seconds, joules: rep.Energy.Total()}
	prices[key] = c
	f.lastKey, f.lastCost, f.lastValid, f.lastDeg = key, c, true, deg
	return c, nil
}

// applyFault is the FaultPlan event: it degrades the target group's
// system via resilience.Degrade (optionally re-tuning the collective
// plan on the degraded wiring) and routes the group's later steps to
// the degraded price memo. The step in flight keeps its committed
// finish time and price.
func (f *fleet) applyFault() {
	if f.err != nil {
		return
	}
	// After the trace drains there is nothing left to serve degraded:
	// the fault is a no-op and the run reports FaultApplied=false.
	if f.nextReq >= len(f.reqs) && f.depth == 0 {
		return
	}
	fp := f.opts.Fault
	deg, _, err := resilience.Degrade(f.sys, f.opts.Model, fp.Faults...)
	if err != nil {
		f.err = fmt.Errorf("fleet: fault at %gs: %w", fp.AtSeconds, err)
		return
	}
	if fp.Replan {
		tuned, err := explore.AutotuneSession(deg, f.opts.Model,
			explore.SessionOptions{TopK: fp.ReplanTopK})
		if err != nil {
			f.err = fmt.Errorf("fleet: fault at %gs: replan: %w", fp.AtSeconds, err)
			return
		}
		deg.Options.SyncPlan = tuned.Plan
		f.postFaultPlan = tuned.Plan
		f.postFaultMargin = tuned.Margin
	}
	f.degGroup = fp.Group
	f.degSys = deg
	f.degPrices = make(map[shapeKey]stepCost)
	f.postFaultChips = deg.Chips
	f.lastValid = false
}

// speculativeShapes enumerates every step shape the trace can touch:
// each distinct prompt length at batch 1 and — when any request
// decodes — every pricing bucket in the context range a decoding
// session can cross, at every micro-batch width up to the cap. The
// rectangle over-covers what the replay actually prices (a decode
// step's bucketed context is a bucket multiple between the smallest
// decoding prompt's bucket and the bucket of the longest session's
// final context, and its width never exceeds the cap), and it is a
// pure function of (trace, scheduler options): cold and warm runs of
// the same options price the same set, so a warm store still replays
// with zero exact simulations.
func (f *fleet) speculativeShapes(reqs []Request) []shapeKey {
	var shapes []shapeKey
	seenPrompt := make(map[int]bool)
	minCtx, maxCtx := 0, 0
	decode := false
	for i := range reqs {
		r := &reqs[i]
		if !seenPrompt[r.PromptLen] {
			seenPrompt[r.PromptLen] = true
			shapes = append(shapes, shapeKey{mode: model.Prompt, seqLen: r.PromptLen, batch: 1})
		}
		if r.DecodeTokens > 0 {
			last := r.PromptLen + r.DecodeTokens - 1
			if !decode || r.PromptLen < minCtx {
				minCtx = r.PromptLen
			}
			if !decode || last > maxCtx {
				maxCtx = last
			}
			decode = true
		}
	}
	if decode {
		step := f.opts.ContextBucket
		if step == 0 {
			step = 32
		}
		for ctx := f.bucket(minCtx); ctx <= f.bucket(maxCtx); ctx += step {
			for width := 1; width <= f.maxBatch(); width++ {
				shapes = append(shapes, shapeKey{mode: model.Autoregressive, seqLen: ctx, batch: width})
			}
		}
	}
	return shapes
}

// prePrice prices the speculative shape rectangle through evalpool
// with the pool's worker width, then seeds the fleet-local memo so the
// serial replay runs as pure memory hits. A speculative shape that
// fails to evaluate is skipped, not fatal: the replay may never need
// it, and if it does, the lazy path repeats the error and fails the
// run exactly like the reference path. Prices are evalpool results
// either way, so metrics are byte-identical to the lazy path.
func (f *fleet) prePrice(reqs []Request) {
	shapes := f.speculativeShapes(reqs)
	costs := make([]stepCost, len(shapes))
	ok := make([]bool, len(shapes))
	price := func(i int) {
		k := shapes[i]
		rep, err := evalpool.Run(f.sys, core.Workload{Model: f.opts.Model, Mode: k.mode, SeqLen: k.seqLen, Batch: k.batch})
		if err != nil {
			return
		}
		costs[i] = stepCost{seconds: rep.Seconds, joules: rep.Energy.Total()}
		ok[i] = true
	}
	if workers := evalpool.Default().Workers(); workers > 1 && len(shapes) > 1 {
		var next atomic.Int64
		var wg sync.WaitGroup
		if workers > len(shapes) {
			workers = len(shapes)
		}
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(shapes) {
						return
					}
					price(i)
				}
			}()
		}
		wg.Wait()
	} else {
		for i := range shapes {
			price(i)
		}
	}
	for i, k := range shapes {
		if ok[i] {
			f.prices[k] = costs[i]
		}
	}
}

// start schedules the group's next step if it is idle and has work:
// admit the oldest waiting prefill while the batch has room, otherwise
// decode one micro-batch across every active session (continuous
// batching).
func (f *fleet) start(g *group, now float64) {
	if f.err != nil || g.busy {
		return
	}
	switch {
	case len(g.promptQ) > 0 && len(g.active) < f.maxBatch():
		s := g.promptQ[0]
		g.promptQ[0] = nil
		g.promptQ = g.promptQ[1:]
		cost, err := f.price(g, model.Prompt, s.req.PromptLen, 1)
		if err != nil {
			f.err = err
			return
		}
		end := now + cost.seconds
		s.energy += cost.joules
		f.totalEnergy += cost.joules
		f.prefillSteps++
		g.busy = true
		g.busySeconds += cost.seconds
		g.stepPrefill = s
		g.stepEnd = end
		f.eng.At(end, g.finish)
	case len(g.active) > 0:
		width := len(g.active)
		if cap := f.maxBatch(); width > cap {
			width = cap
		}
		batch := g.active[:width]
		maxCtx := 0
		for _, s := range batch {
			if s.ctx > maxCtx {
				maxCtx = s.ctx
			}
		}
		cost, err := f.price(g, model.Autoregressive, f.bucket(maxCtx), width)
		if err != nil {
			f.err = err
			return
		}
		end := now + cost.seconds
		f.totalEnergy += cost.joules
		f.decodeSteps++
		f.batchSum += int64(width)
		g.busy = true
		g.busySeconds += cost.seconds
		g.stepPrefill = nil
		g.stepWidth = width
		g.stepJoules = cost.joules
		g.stepEnd = end
		f.eng.At(end, g.finish)
	}
}

// finishPrefill admits the prefilled session to the decode pool (or
// completes it outright when it has no decode budget) and reschedules.
func (f *fleet) finishPrefill(g *group, s *session, end float64) {
	if f.err != nil {
		return
	}
	g.busy = false
	s.prefilled = end
	f.ttfts = append(f.ttfts, end-s.req.ArrivalSeconds)
	if s.remaining == 0 {
		f.complete(s, end)
	} else {
		g.active = append(g.active, s)
	}
	f.start(g, end)
}

// finishDecode advances the first `width` active sessions by one token
// each, completes the ones that exhausted their budget, and
// reschedules.
func (f *fleet) finishDecode(g *group, width int, joules float64, end float64) {
	if f.err != nil {
		return
	}
	g.busy = false
	share := joules / float64(width)
	kept := g.active[:0]
	for i, s := range g.active {
		if i < width {
			s.ctx++
			s.remaining--
			s.energy += share
			if s.remaining == 0 {
				f.decodedTokens++
				f.complete(s, end)
				continue
			}
			f.decodedTokens++
		}
		kept = append(kept, s)
	}
	for i := len(kept); i < len(g.active); i++ {
		g.active[i] = nil
	}
	g.active = kept
	f.start(g, end)
}

// complete records one finished request.
func (f *fleet) complete(s *session, end float64) {
	f.completed++
	f.latencies = append(f.latencies, end-s.req.ArrivalSeconds)
	f.noteDepth(end, -1)
}

// noteDepth accumulates the time-weighted queue-depth integral and the
// adaptively strided series: when the series fills, every other sample
// is dropped and the stride doubles, bounding it to maxQueueSamples
// regardless of trace length.
func (f *fleet) noteDepth(now float64, delta int) {
	f.depthArea += float64(f.depth) * (now - f.lastDepthAt)
	f.lastDepthAt = now
	f.depth += delta
	if f.depth > f.maxDepth {
		f.maxDepth = f.depth
	}
	f.sinceSample++
	if f.sinceSample < f.stride {
		return
	}
	f.sinceSample = 0
	if len(f.samples) == maxQueueSamples {
		keep := f.samples[:0]
		for i := 0; i < len(f.samples); i += 2 {
			keep = append(keep, f.samples[i])
		}
		f.samples = keep
		f.stride *= 2
	}
	f.samples = append(f.samples, QueueSample{AtSeconds: now, Depth: f.depth})
}

// metrics assembles the run's deterministic serving metrics.
func (f *fleet) metrics(end float64) Metrics {
	// Close the depth integral out to the makespan.
	f.depthArea += float64(f.depth) * (end - f.lastDepthAt)
	f.lastDepthAt = end

	m := Metrics{
		Requests:      len(f.opts.Trace.Requests),
		Completed:     f.completed,
		SimSeconds:    end,
		MaxQueueDepth: f.maxDepth,
		QueueOverTime: f.samples,
		PrefillSteps:  f.prefillSteps,
		DecodeSteps:   f.decodeSteps,
	}
	if end > 0 {
		m.TokensPerSecond = float64(f.decodedTokens) / end
		m.RequestsPerSecond = float64(f.completed) / end
		m.MeanQueueDepth = f.depthArea / end
	}
	m.TotalEnergyJoules = f.totalEnergy
	if f.completed > 0 {
		m.EnergyPerRequestJoules = f.totalEnergy / float64(f.completed)
	}
	if f.decodeSteps > 0 {
		m.MeanBatch = float64(f.batchSum) / float64(f.decodeSteps)
	}
	m.P50LatencySeconds = percentile(f.latencies, 50)
	m.P99LatencySeconds = percentile(f.latencies, 99)
	m.MeanLatencySeconds = mean(f.latencies)
	m.P50TTFTSeconds = percentile(f.ttfts, 50)
	m.P99TTFTSeconds = percentile(f.ttfts, 99)
	for _, g := range f.groups {
		util := 0.0
		if end > 0 {
			util = g.busySeconds / end
		}
		m.GroupUtilization = append(m.GroupUtilization, util)
	}
	return m
}

// percentile is the nearest-rank percentile of the values (0 when
// empty). The input is copied before sorting: completion order is part
// of the deterministic record.
func percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	s := make([]float64, len(values))
	copy(s, values)
	sort.Float64s(s)
	rank := int(math.Ceil(p / 100 * float64(len(s))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(s) {
		rank = len(s)
	}
	return s[rank-1]
}

func mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	total := 0.0
	for _, v := range values {
		total += v
	}
	return total / float64(len(values))
}
