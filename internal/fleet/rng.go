package fleet

import "math"

// rng is a splitmix64 generator: a tiny, allocation-free,
// reproducible stream fully determined by its seed. The fleet owns
// its generator per trace, so arrival schedules never depend on
// math/rand global state, worker count, or call interleaving.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform value in [0, 1).
func (r *rng) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// exp returns an exponentially distributed value with mean 1 (the
// Poisson inter-arrival kernel).
func (r *rng) exp() float64 {
	return -math.Log(1 - r.float64())
}

// intn returns a uniform value in [0, n).
func (r *rng) intn(n int) int {
	return int(r.next() % uint64(n))
}
