package fleet

import (
	"reflect"
	"testing"

	"mcudist/internal/evalpool"
	"mcudist/internal/resultstore"
)

// The pre-pricing pass is pinned to the serial reference path: the
// speculative rectangle changes when shapes are priced and by whom,
// never what a step costs. Metrics must be byte-identical across
// NoPrePrice vs pre-priced, oracle worker counts, and cold vs warm
// stores — and the rectangle must cover every shape the serial replay
// prices.
func TestFleetPrePricingDeterminismPin(t *testing.T) {
	defer evalpool.SetWorkers(0)
	opts := smallOptions(300, 40)
	opts.Groups = 2

	ref := opts
	ref.NoPrePrice = true
	evalpool.SetWorkers(1)
	serial := mustFleet(t, ref)

	evalpool.SetWorkers(1)
	pre1 := mustFleet(t, opts)
	if !reflect.DeepEqual(serial.Metrics, pre1.Metrics) {
		t.Error("pre-priced metrics diverged from the serial reference path")
	}
	if pre1.DistinctShapes < serial.DistinctShapes {
		t.Errorf("pre-priced rectangle has %d shapes, fewer than the %d the serial path priced",
			pre1.DistinctShapes, serial.DistinctShapes)
	}

	// Rectangle coverage: a reference-path replay over the in-process
	// memo the pre-priced run just filled must miss nothing.
	replay := mustFleet(t, ref)
	if replay.Evaluations != 0 {
		t.Errorf("serial replay evaluated %d shapes outside the pre-priced rectangle, want 0",
			replay.Evaluations)
	}

	evalpool.SetWorkers(8)
	pre8 := mustFleet(t, opts)
	if !reflect.DeepEqual(serial.Metrics, pre8.Metrics) {
		t.Error("workers=8 pre-priced metrics diverged from the workers=1 serial reference")
	}

	// Cold vs warm across a persistent store, still workers-wide: the
	// rectangle is a pure function of (trace, options), so the warm
	// replay re-requests exactly what the cold run persisted.
	store, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	evalpool.SetStore(store)
	defer evalpool.SetStore(nil)
	evalpool.ResetCache()
	cold := mustFleet(t, opts)
	evalpool.ResetCache()
	warm := mustFleet(t, opts)
	if warm.ExactSims != 0 {
		t.Errorf("warm pre-priced run executed %d exact simulations, want 0", warm.ExactSims)
	}
	if !reflect.DeepEqual(cold.Metrics, warm.Metrics) {
		t.Error("warm pre-priced metrics diverged from cold")
	}
	if !reflect.DeepEqual(cold.Metrics, serial.Metrics) {
		t.Error("store-backed pre-priced metrics diverged from the serial reference")
	}
}
