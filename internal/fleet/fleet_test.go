package fleet

import (
	"reflect"
	"testing"

	"mcudist/internal/core"
	"mcudist/internal/evalpool"
	"mcudist/internal/model"
	"mcudist/internal/resultstore"
)

func smallOptions(requests int, rate float64) Options {
	return Options{
		Trace:  PoissonTrace(TraceOptions{Requests: requests, RatePerSecond: rate, Seed: 7}),
		System: core.DefaultSystem(8),
		Model:  model.TinyLlama42M(),
	}
}

func mustFleet(t *testing.T, opts Options) *Result {
	t.Helper()
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// Every request must complete, and every reported metric must be
// populated and internally consistent.
func TestFleetBasics(t *testing.T) {
	res := mustFleet(t, smallOptions(200, 50))
	m := res.Metrics
	if m.Completed != m.Requests || m.Completed != 200 {
		t.Fatalf("completed %d of %d requests", m.Completed, m.Requests)
	}
	if m.P50LatencySeconds <= 0 || m.P99LatencySeconds < m.P50LatencySeconds {
		t.Errorf("latency percentiles inconsistent: p50=%g p99=%g", m.P50LatencySeconds, m.P99LatencySeconds)
	}
	if m.P50TTFTSeconds <= 0 || m.P50TTFTSeconds > m.P50LatencySeconds {
		t.Errorf("TTFT p50 %g outside (0, p50 latency %g]", m.P50TTFTSeconds, m.P50LatencySeconds)
	}
	if m.TokensPerSecond <= 0 || m.EnergyPerRequestJoules <= 0 {
		t.Errorf("throughput/energy not populated: tok/s=%g J/req=%g", m.TokensPerSecond, m.EnergyPerRequestJoules)
	}
	if m.MaxQueueDepth <= 0 || m.MeanQueueDepth <= 0 || len(m.QueueOverTime) == 0 {
		t.Errorf("queue accounting not populated: max=%d mean=%g samples=%d",
			m.MaxQueueDepth, m.MeanQueueDepth, len(m.QueueOverTime))
	}
	if len(m.GroupUtilization) != 1 || m.GroupUtilization[0] <= 0 || m.GroupUtilization[0] > 1 {
		t.Errorf("group utilization %v out of (0, 1]", m.GroupUtilization)
	}
	if m.PrefillSteps != 200 || m.DecodeSteps <= 0 {
		t.Errorf("step counts: prefill=%d decode=%d", m.PrefillSteps, m.DecodeSteps)
	}
	if m.MeanBatch <= 1 {
		t.Errorf("mean decode batch %g shows no batching at rate 50", m.MeanBatch)
	}
	if res.DistinctShapes <= 0 || uint64(res.DistinctShapes) != res.Evaluations {
		t.Errorf("distinct shapes %d != evaluations %d on an empty cache",
			res.DistinctShapes, res.Evaluations)
	}
}

// The fleet must be deterministic: the same seed yields byte-identical
// metrics across runs and across oracle worker counts (the scheduler
// is serial; workers only parallelize the oracle pool, whose results
// are byte-identical by evalpool's guarantee).
func TestFleetDeterministicAcrossWorkers(t *testing.T) {
	defer evalpool.SetWorkers(0)
	opts := smallOptions(500, 20)
	opts.Groups = 2

	evalpool.SetWorkers(1)
	serial := mustFleet(t, opts)
	again := mustFleet(t, opts)
	if !reflect.DeepEqual(serial.Metrics, again.Metrics) {
		t.Error("two runs at the same seed diverged")
	}

	evalpool.SetWorkers(8)
	parallel := mustFleet(t, opts)
	if !reflect.DeepEqual(serial.Metrics, parallel.Metrics) {
		t.Error("-workers 1 and -workers 8 fleet metrics diverged")
	}

	other := opts
	other.Trace = PoissonTrace(TraceOptions{Requests: 500, RatePerSecond: 20, Seed: 8})
	if reflect.DeepEqual(mustFleet(t, other).Metrics, serial.Metrics) {
		t.Error("different seeds produced identical metrics")
	}
}

// Oracle-hit accounting: a warm fleet run of >= 10k requests answers
// every step shape from the persistent store — zero exact simulations
// — with metrics byte-identical to the cold run that filled it. This
// extends the TestSuiteWarmStoreZeroSims pattern to the fleet path.
func TestFleetWarmStoreZeroSims(t *testing.T) {
	store, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	evalpool.SetStore(store)
	defer evalpool.SetStore(nil)

	opts := smallOptions(10_000, 200)
	cold := mustFleet(t, opts)
	if cold.ExactSims == 0 {
		t.Fatal("cold run on an empty store simulated nothing")
	}
	if cold.ExactSims != uint64(cold.DistinctShapes) {
		t.Errorf("cold run simulated %d times for %d distinct shapes",
			cold.ExactSims, cold.DistinctShapes)
	}

	evalpool.ResetCache()
	warm := mustFleet(t, opts)
	if warm.ExactSims != 0 {
		t.Errorf("warm run executed %d exact simulations, want 0", warm.ExactSims)
	}
	if !reflect.DeepEqual(warm.Metrics, cold.Metrics) {
		t.Error("warm metrics diverged from cold metrics")
	}
}

// The acceptance point: a warm-store fleet run of >= 100k requests on
// the 64-chip pinned configuration completes with zero exact
// simulations and reports the full serving-metric set.
func TestFleetWarm100kRequests64Chips(t *testing.T) {
	store, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	evalpool.SetStore(store)
	defer evalpool.SetStore(nil)

	opts := Options{
		Trace:  PoissonTrace(TraceOptions{Requests: 100_000, RatePerSecond: 2000, Seed: 42, MinDecode: 4, MaxDecode: 16}),
		System: core.DefaultSystem(64),
		Model:  model.TinyLlamaScaled64(),
		Groups: 4,
	}
	cold := mustFleet(t, opts)
	evalpool.ResetCache()
	warm := mustFleet(t, opts)

	if warm.ExactSims != 0 {
		t.Errorf("warm 100k-request run executed %d exact simulations, want 0", warm.ExactSims)
	}
	if !reflect.DeepEqual(warm.Metrics, cold.Metrics) {
		t.Error("warm metrics diverged from cold metrics")
	}
	m := warm.Metrics
	if m.Completed != 100_000 {
		t.Fatalf("completed %d of 100000 requests", m.Completed)
	}
	if m.P50LatencySeconds <= 0 || m.P99LatencySeconds <= 0 ||
		m.TokensPerSecond <= 0 || m.EnergyPerRequestJoules <= 0 ||
		m.MeanQueueDepth <= 0 || len(m.QueueOverTime) == 0 {
		t.Errorf("serving metrics not populated: %+v", m)
	}
	if warm.DistinctShapes > 200 {
		t.Errorf("100k requests priced %d distinct shapes; bucketing is not bounding the shape space",
			warm.DistinctShapes)
	}
}

// Continuous batching must beat the no-batching baseline on tokens/sec
// at saturation by a real margin: the decode micro-batch shares every
// weight read, kernel setup, and collective per step.
func TestFleetBatchingBeatsSequentialAtSaturation(t *testing.T) {
	// A decode-heavy trace (short prompts, long generations — the
	// chat-serving shape) offered far beyond single-session service
	// capacity, so both schedulers run saturated and the margin
	// measures the decode path. MaxBatch 4 stays on the resident tier
	// at 8 chips: width 8 would overflow L2 with KV and fall back to
	// streaming — the honest KV-pressure tradeoff the batch cap tunes.
	trace := PoissonTrace(TraceOptions{
		Requests: 400, RatePerSecond: 1000, Seed: 7,
		PromptLens: []int{16}, MinDecode: 32, MaxDecode: 64,
	})
	opts := Options{Trace: trace, System: core.DefaultSystem(8), Model: model.TinyLlama42M(), MaxBatch: 4}
	batched := mustFleet(t, opts)
	opts.MaxBatch = 1
	sequential := mustFleet(t, opts)

	margin := batched.Metrics.TokensPerSecond / sequential.Metrics.TokensPerSecond
	t.Logf("saturated tokens/sec: batched=%.1f sequential=%.1f margin=%.2fx",
		batched.Metrics.TokensPerSecond, sequential.Metrics.TokensPerSecond, margin)
	if margin < 1.5 {
		t.Errorf("continuous batching margin %.2fx below 1.5x at saturation", margin)
	}
	if batched.Metrics.MeanBatch <= 3 {
		t.Errorf("saturated mean batch %.2f did not approach the cap", batched.Metrics.MeanBatch)
	}
}

// Invalid configurations are rejected up front.
func TestFleetValidation(t *testing.T) {
	if _, err := Run(Options{System: core.DefaultSystem(8), Model: model.TinyLlama42M()}); err == nil {
		t.Error("empty trace accepted")
	}
	opts := smallOptions(10, 1)
	opts.System.Chips = 0
	if _, err := Run(opts); err == nil {
		t.Error("zero chips accepted")
	}
	opts = smallOptions(10, 1)
	opts.Trace.Requests[3].PromptLen = 0
	if _, err := Run(opts); err == nil {
		t.Error("zero prompt length accepted")
	}
}

// The seeded Poisson generator is stable: the same options always
// produce the same trace, and the empirical mean inter-arrival time
// matches the requested rate.
func TestPoissonTraceDeterministicAndCalibrated(t *testing.T) {
	a := PoissonTrace(TraceOptions{Requests: 5000, RatePerSecond: 10, Seed: 3})
	b := PoissonTrace(TraceOptions{Requests: 5000, RatePerSecond: 10, Seed: 3})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("equal seeds produced different traces")
	}
	last := a.Requests[len(a.Requests)-1].ArrivalSeconds
	meanGap := last / float64(len(a.Requests))
	if meanGap < 0.08 || meanGap > 0.12 {
		t.Errorf("mean inter-arrival %gs far from 0.1s at rate 10", meanGap)
	}
	for i := 1; i < len(a.Requests); i++ {
		if a.Requests[i].ArrivalSeconds < a.Requests[i-1].ArrivalSeconds {
			t.Fatal("arrivals not monotonic")
		}
	}
}
