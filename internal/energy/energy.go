// Package energy implements the paper's analytical energy model:
//
//	E_Total = N_C2C·E_C2C + Σ_chips ( P·T_Comp,j
//	        + N_L3↔L2,j·E_L3↔L2 + N_L2↔L1,j·E_L2↔L1 )
//
// with the paper's constants: 100 pJ/B for the MIPI link and for L3
// accesses, 2 pJ/B for L2 accesses, and 13 mW average cluster power at
// 500 MHz. Inputs are the byte counters and busy times measured by the
// performance simulator.
package energy

import (
	"fmt"

	"mcudist/internal/collective"
	"mcudist/internal/hw"
	"mcudist/internal/perfsim"
)

// Report itemizes the energy of one forward pass, in joules.
type Report struct {
	// Compute is Σ P·T_comp over chips.
	Compute float64
	// L3 is off-chip memory transfer energy.
	L3 float64
	// L2 is on-chip L2↔L1 transfer energy.
	L2 float64
	// C2C is chip-to-chip link energy.
	C2C float64
}

// Total returns the summed energy in joules.
func (r Report) Total() float64 { return r.Compute + r.L3 + r.L2 + r.C2C }

// String formats the report in millijoules.
func (r Report) String() string {
	return fmt.Sprintf("compute=%.4f mJ L3=%.4f mJ L2=%.4f mJ C2C=%.4f mJ total=%.4f mJ",
		r.Compute*1e3, r.L3*1e3, r.L2*1e3, r.C2C*1e3, r.Total()*1e3)
}

const pJ = 1e-12

// FromResult evaluates the analytical model over a simulation result.
// Chip-to-chip energy is charged per link class: each byte pays the
// pJ/B of the edge class it actually crossed (a slow SPI backhaul and
// a fast MIPI local link bill differently), using the per-class byte
// counters the simulator splits out. Results without per-class
// counters (hand-built in tests, or from older traces) fall back to
// the network's local class for every byte — exactly the pre-refactor
// uniform accounting.
func FromResult(p hw.Params, res *perfsim.Result) Report {
	// Under the hierarchical memory model, off-chip bytes cross the
	// DRAM channel and pay its pJ/B; the flat model keeps the paper's
	// L3 constant.
	l3pj := p.Energy.L3PJPerByte
	if p.Mem.Enabled() {
		l3pj = p.Mem.DRAMPJPerByte
	}
	var rep Report
	for _, st := range res.PerChip {
		rep.Compute += p.Chip.ClusterPowerW * p.CyclesToSeconds(st.ComputeCycles)
		rep.L3 += float64(st.L3Bytes) * l3pj * pJ
		rep.L2 += float64(st.L2L1Bytes) * p.Energy.L2PJPerByte * pJ
		if len(st.C2CSentBytesByClass) > 0 {
			for i, b := range st.C2CSentBytesByClass {
				rep.C2C += float64(b) * res.LinkClasses[i].EnergyPJPerByte * pJ
			}
		} else {
			rep.C2C += float64(st.C2CSentBytes) * p.Network.Local.EnergyPJPerByte * pJ
		}
	}
	return rep
}

// ClassEnergy is the chip-to-chip link energy of one synchronization
// class.
type ClassEnergy struct {
	Class collective.SyncClass
	// Topology is the schedule shape the class executed.
	Topology hw.Topology
	// C2CJoules is the class's link energy, each byte billed at the
	// pJ/B of the link class it crossed.
	C2CJoules float64
}

// C2CByClass splits the C2C term of the analytical model per
// synchronization class — the attribution a per-sync collective plan
// is judged on. The classes sum to FromResult's C2C term for the
// collective strategies (the pipeline's handoff chain belongs to no
// synchronization and is excluded), up to float summation order.
// Results without per-link counters fall back to the network's local
// class for every byte, mirroring FromResult.
func C2CByClass(p hw.Params, res *perfsim.Result) []ClassEnergy {
	out := make([]ClassEnergy, 0, len(res.ByClass))
	for _, cs := range res.ByClass {
		e := ClassEnergy{Class: cs.Class, Topology: cs.Topology}
		if len(cs.C2CSentBytesByLink) > 0 {
			for i, b := range cs.C2CSentBytesByLink {
				e.C2CJoules += float64(b) * res.LinkClasses[i].EnergyPJPerByte * pJ
			}
		} else {
			e.C2CJoules = float64(cs.C2CSentBytes) * p.Network.Local.EnergyPJPerByte * pJ
		}
		out = append(out, e)
	}
	return out
}

// FromResultIdleAware evaluates the model with every chip powered for
// the whole inference (P × T_total per chip) instead of the paper's
// compute-time-only term — the accounting that penalizes
// parallelization when chips wait on each other.
func FromResultIdleAware(p hw.Params, res *perfsim.Result) Report {
	rep := FromResult(p, res)
	rep.Compute = 0
	wall := p.CyclesToSeconds(res.TotalCycles)
	for range res.PerChip {
		rep.Compute += p.Chip.ClusterPowerW * wall
	}
	return rep
}

// EDP returns the energy-delay product in joule-seconds for a result
// under the given parameters.
func EDP(p hw.Params, res *perfsim.Result) float64 {
	return FromResult(p, res).Total() * p.CyclesToSeconds(res.TotalCycles)
}
