package energy

import (
	"testing"
	"testing/quick"

	"mcudist/internal/hw"
	"mcudist/internal/perfsim"
)

// Property: energy is monotone in every counter.
func TestPropertyEnergyMonotone(t *testing.T) {
	p := hw.Siracusa()
	f := func(compRaw, l3Raw, l2Raw, c2cRaw uint32) bool {
		base := perfsim.ChipStats{
			ComputeCycles: float64(compRaw),
			L3Bytes:       int64(l3Raw),
			L2L1Bytes:     int64(l2Raw),
			C2CSentBytes:  int64(c2cRaw),
		}
		res := &perfsim.Result{PerChip: []perfsim.ChipStats{base}}
		e0 := FromResult(p, res).Total()

		bumped := base
		bumped.L3Bytes++
		bumped.ComputeCycles++
		res2 := &perfsim.Result{PerChip: []perfsim.ChipStats{bumped}}
		e1 := FromResult(p, res2).Total()
		return e1 >= e0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: energy is additive over chips.
func TestPropertyEnergyAdditiveOverChips(t *testing.T) {
	p := hw.Siracusa()
	f := func(aRaw, bRaw uint32) bool {
		a := perfsim.ChipStats{ComputeCycles: float64(aRaw), L3Bytes: int64(aRaw)}
		b := perfsim.ChipStats{ComputeCycles: float64(bRaw), L2L1Bytes: int64(bRaw)}
		joint := FromResult(p, &perfsim.Result{PerChip: []perfsim.ChipStats{a, b}}).Total()
		separate := FromResult(p, &perfsim.Result{PerChip: []perfsim.ChipStats{a}}).Total() +
			FromResult(p, &perfsim.Result{PerChip: []perfsim.ChipStats{b}}).Total()
		diff := joint - separate
		if diff < 0 {
			diff = -diff
		}
		return diff <= 1e-12*(joint+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroActivityZeroEnergy(t *testing.T) {
	p := hw.Siracusa()
	res := &perfsim.Result{PerChip: make([]perfsim.ChipStats, 8)}
	if got := FromResult(p, res).Total(); got != 0 {
		t.Fatalf("idle system consumed %g J", got)
	}
}
