package energy

import (
	"math"
	"strings"
	"testing"

	"mcudist/internal/deploy"
	"mcudist/internal/hw"
	"mcudist/internal/model"
	"mcudist/internal/partition"
	"mcudist/internal/perfsim"
)

func simulate(t *testing.T, cfg model.Config, n int, mode model.Mode, s int) *perfsim.Result {
	t.Helper()
	p, err := partition.NewTensorParallel(cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	d, err := deploy.New(p, hw.Siracusa(), mode, s, deploy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := perfsim.Run(d)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestEnergyComponentsManual(t *testing.T) {
	p := hw.Siracusa()
	res := &perfsim.Result{
		TotalCycles: 500e6, // one second
		PerChip: []perfsim.ChipStats{{
			ComputeCycles: 500e6,
			L3Bytes:       1e6,
			L2L1Bytes:     1e6,
			C2CSentBytes:  1e6,
		}},
	}
	rep := FromResult(p, res)
	if math.Abs(rep.Compute-13e-3) > 1e-9 {
		t.Errorf("compute = %g, want 13 mJ (13 mW × 1 s)", rep.Compute)
	}
	if math.Abs(rep.L3-1e-4) > 1e-12 {
		t.Errorf("L3 = %g, want 100 µJ (1 MB × 100 pJ/B)", rep.L3)
	}
	if math.Abs(rep.L2-2e-6) > 1e-12 {
		t.Errorf("L2 = %g, want 2 µJ (1 MB × 2 pJ/B)", rep.L2)
	}
	if math.Abs(rep.C2C-1e-4) > 1e-12 {
		t.Errorf("C2C = %g, want 100 µJ", rep.C2C)
	}
	if math.Abs(rep.Total()-(rep.Compute+rep.L3+rep.L2+rep.C2C)) > 1e-15 {
		t.Error("total is not the component sum")
	}
	edp := EDP(p, res)
	if math.Abs(edp-rep.Total()*1.0) > 1e-12 {
		t.Errorf("EDP = %g, want total × 1 s", edp)
	}
}

// Chip-to-chip energy is billed per link class: bytes over a
// 150 pJ/B backhaul cost 1.5x the bytes over the 100 pJ/B local
// class, and the per-class path must agree with the uniform fallback
// when there is only one class.
func TestC2CEnergyPerClass(t *testing.T) {
	p := hw.Siracusa()
	local := hw.MIPI()
	backhaul := hw.LinkClass{BandwidthBytesPerSec: 50e6, SetupCycles: 512, EnergyPJPerByte: 150}
	res := &perfsim.Result{
		LinkClasses: []hw.LinkClass{local, backhaul},
		PerChip: []perfsim.ChipStats{{
			C2CSentBytes:        3e6,
			C2CSentBytesByClass: []int64{1e6, 2e6},
		}},
	}
	rep := FromResult(p, res)
	want := (1e6*100 + 2e6*150) * 1e-12
	if math.Abs(rep.C2C-want) > 1e-15 {
		t.Errorf("per-class C2C = %g, want %g", rep.C2C, want)
	}

	// Without per-class counters the model falls back to charging the
	// local class for every byte (the pre-refactor accounting).
	legacy := &perfsim.Result{
		PerChip: []perfsim.ChipStats{{C2CSentBytes: 3e6}},
	}
	if got := FromResult(p, legacy).C2C; math.Abs(got-3e6*100*1e-12) > 1e-15 {
		t.Errorf("fallback C2C = %g, want %g", got, 3e6*100*1e-12)
	}
}

func TestTinyLlamaEnergySimilarAtFitBoundary(t *testing.T) {
	// Paper: 8 chips run at similar energy per inference to 1 chip
	// (the L3 traffic is unchanged; compute energy splits).
	cfg := model.TinyLlama42M()
	p := hw.Siracusa()
	e1 := FromResult(p, simulate(t, cfg, 1, model.Autoregressive, 128)).Total()
	e8 := FromResult(p, simulate(t, cfg, 8, model.Autoregressive, 128)).Total()
	ratio := e8 / e1
	if ratio < 0.8 || ratio > 1.2 {
		t.Fatalf("8-chip/1-chip energy ratio %g, want similar (paper: ~0.96)", ratio)
	}
}

func TestEDPImprovementSuperLinear(t *testing.T) {
	// Paper headline: 27.2× EDP improvement at 8 chips.
	cfg := model.TinyLlama42M()
	p := hw.Siracusa()
	edp1 := EDP(p, simulate(t, cfg, 1, model.Autoregressive, 128))
	edp8 := EDP(p, simulate(t, cfg, 8, model.Autoregressive, 128))
	improvement := edp1 / edp8
	if improvement < 15 {
		t.Fatalf("EDP improvement %g too low (paper: 27.2)", improvement)
	}
	if improvement > 60 {
		t.Fatalf("EDP improvement %g implausibly high (paper: 27.2)", improvement)
	}
}

func TestResidentAllSlashesEnergy(t *testing.T) {
	// Scaled model at 32+ chips: no L3 traffic at all, so energy
	// drops (the paper reports 1.3×; our byte-accurate L3 accounting
	// makes the drop larger — see EXPERIMENTS.md).
	cfg := model.TinyLlamaScaled64()
	p := hw.Siracusa()
	e16 := FromResult(p, simulate(t, cfg, 16, model.Autoregressive, 128))
	e32 := FromResult(p, simulate(t, cfg, 32, model.Autoregressive, 128))
	if e32.L3 != 0 {
		t.Fatalf("32-chip L3 energy %g, want 0", e32.L3)
	}
	if e32.Total() >= e16.Total() {
		t.Fatalf("32-chip energy %g not below 16-chip %g", e32.Total(), e16.Total())
	}
}

func TestEnergyScalesWithPower(t *testing.T) {
	cfg := model.TinyLlama42M()
	res := simulate(t, cfg, 8, model.Autoregressive, 128)
	p := hw.Siracusa()
	base := FromResult(p, res)
	p.Chip.ClusterPowerW *= 2
	doubled := FromResult(p, res)
	if math.Abs(doubled.Compute-2*base.Compute) > 1e-12 {
		t.Fatal("compute energy did not scale with power")
	}
	if doubled.L3 != base.L3 {
		t.Fatal("L3 energy changed with cluster power")
	}
}

func TestC2CEnergyOnlyWhenDistributed(t *testing.T) {
	cfg := model.TinyLlama42M()
	p := hw.Siracusa()
	if c := FromResult(p, simulate(t, cfg, 1, model.Autoregressive, 128)).C2C; c != 0 {
		t.Fatalf("single chip C2C energy %g", c)
	}
	if c := FromResult(p, simulate(t, cfg, 8, model.Autoregressive, 128)).C2C; c <= 0 {
		t.Fatal("8-chip C2C energy missing")
	}
}

func TestIdleAwareAccounting(t *testing.T) {
	cfg := model.TinyLlama42M()
	p := hw.Siracusa()
	res8 := simulate(t, cfg, 8, model.Autoregressive, 128)
	paper := FromResult(p, res8)
	idle := FromResultIdleAware(p, res8)
	// Idle-aware charges 8 chips for the full wall clock: strictly
	// more compute energy than the busy-time-only formula.
	if idle.Compute <= paper.Compute {
		t.Fatalf("idle-aware compute %g not above busy-only %g", idle.Compute, paper.Compute)
	}
	// Non-compute terms unchanged.
	if idle.L3 != paper.L3 || idle.C2C != paper.C2C || idle.L2 != paper.L2 {
		t.Fatal("idle-aware accounting changed memory/link terms")
	}
	// Exact value: 8 chips × 13 mW × wall seconds.
	want := 8 * p.Chip.ClusterPowerW * p.CyclesToSeconds(res8.TotalCycles)
	if math.Abs(idle.Compute-want) > 1e-12 {
		t.Fatalf("idle compute %g, want %g", idle.Compute, want)
	}
	// Even under the harsher accounting, the 8-chip system stays
	// energy-competitive with 1 chip for TinyLlama AR (the wall
	// clock shrinks 32×).
	res1 := simulate(t, cfg, 1, model.Autoregressive, 128)
	e1 := FromResultIdleAware(p, res1).Total()
	e8 := idle.Total()
	if e8 > 1.2*e1 {
		t.Fatalf("idle-aware 8-chip energy %g far above 1-chip %g", e8, e1)
	}
}

func TestReportString(t *testing.T) {
	r := Report{Compute: 1e-3, L3: 2e-3, L2: 3e-3, C2C: 4e-3}
	s := r.String()
	if !strings.Contains(s, "total=10.0000 mJ") {
		t.Fatalf("report string %q missing total", s)
	}
}
