package energy

import (
	"math"
	"testing"

	"mcudist/internal/collective"
	"mcudist/internal/hw"
	"mcudist/internal/perfsim"
)

// C2CByClass must bill each class's bytes at the pJ/B of the link
// classes they crossed, and the per-class split must sum to the C2C
// term of the whole-run model.
func TestC2CByClassBillsPerLink(t *testing.T) {
	p := hw.Siracusa()
	local := hw.MIPI()
	backhaul := hw.MIPI().Slower(10)

	res := &perfsim.Result{
		LinkClasses: []hw.LinkClass{local, backhaul},
		PerChip: []perfsim.ChipStats{
			{C2CSentBytes: 3072, C2CSentBytesByClass: []int64{1024, 2048}},
			{C2CSentBytes: 512, C2CSentBytesByClass: []int64{512, 0}},
		},
		ByClass: []perfsim.ClassStats{
			{
				Class: collective.PrefillMHSA, Topology: hw.TopoRing, Syncs: 8,
				C2CSentBytes: 2048, C2CSentBytesByLink: []int64{1024, 1024},
			},
			{
				Class: collective.PrefillFFN, Topology: hw.TopoTree, Syncs: 8,
				C2CSentBytes: 1536, C2CSentBytesByLink: []int64{512, 1024},
			},
		},
	}

	split := C2CByClass(p, res)
	if len(split) != 2 {
		t.Fatalf("%d classes, want 2", len(split))
	}
	const pJ = 1e-12
	wantMHSA := (1024*local.EnergyPJPerByte + 1024*backhaul.EnergyPJPerByte) * pJ
	if math.Abs(split[0].C2CJoules-wantMHSA) > 1e-18 {
		t.Errorf("prefill-mhsa %g J, want %g", split[0].C2CJoules, wantMHSA)
	}
	if split[0].Class != collective.PrefillMHSA || split[0].Topology != hw.TopoRing {
		t.Errorf("class 0 = %s on %s", split[0].Class, split[0].Topology)
	}

	var sum float64
	for _, e := range split {
		sum += e.C2CJoules
	}
	whole := FromResult(p, res).C2C
	if math.Abs(sum-whole) > 1e-12*whole {
		t.Errorf("per-class energy sums to %g J, whole-run C2C term is %g J", sum, whole)
	}
}

// Hand-built class stats without a per-link split fall back to the
// local class, mirroring FromResult.
func TestC2CByClassFallback(t *testing.T) {
	p := hw.Siracusa()
	res := &perfsim.Result{
		ByClass: []perfsim.ClassStats{
			{Class: collective.DecodeMHSA, Topology: hw.TopoTree, Syncs: 4, C2CSentBytes: 4096},
		},
	}
	split := C2CByClass(p, res)
	want := 4096 * p.Network.Local.EnergyPJPerByte * 1e-12
	if len(split) != 1 || math.Abs(split[0].C2CJoules-want) > 1e-18 {
		t.Fatalf("fallback billed %v, want %g", split, want)
	}
}
