package evalpool

import (
	"reflect"
	"sync"
	"testing"

	"mcudist/internal/core"
	"mcudist/internal/model"
	"mcudist/internal/resultstore"
)

func openStore(t *testing.T, dir string) *resultstore.Store {
	t.Helper()
	s, err := resultstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestStoreTiers walks one configuration through all three tiers: an
// exact simulation in the first process, a disk hit in the second, a
// memory hit on every repeat — with Stats attributing each request to
// the tier that answered it and the served reports identical.
func TestStoreTiers(t *testing.T) {
	dir := t.TempDir()
	wl := core.Workload{Model: model.TinyLlama42M(), Mode: model.Autoregressive}

	cold := New(2)
	cold.SetStore(openStore(t, dir))
	first, err := cold.Eval(core.DefaultSystem(1), wl, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := cold.Stats(); got != (Stats{Simulations: 3}) {
		t.Errorf("cold stats = %+v, want 3 simulations only", got)
	}
	if cold.Store().Len() != 3 {
		t.Errorf("store holds %d entries after cold fill, want 3", cold.Store().Len())
	}

	// A second process: fresh pool, fresh store handle, warm disk.
	warm := New(2)
	warm.SetStore(openStore(t, dir))
	second, err := warm.Eval(core.DefaultSystem(1), wl, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := warm.Stats(); got != (Stats{DiskHits: 3}) {
		t.Errorf("warm stats = %+v, want 3 disk hits and zero simulations", got)
	}
	for i := range first {
		if !reflect.DeepEqual(first[i], second[i]) {
			t.Fatalf("point %d: disk-served report differs from the simulated one:\n%+v\nvs\n%+v",
				i, first[i], second[i])
		}
	}

	// Repeats inside the warm process are memory hits.
	if _, err := warm.Run(core.DefaultSystem(2), wl); err != nil {
		t.Fatal(err)
	}
	if got := warm.Stats(); got != (Stats{MemoryHits: 1, DiskHits: 3}) {
		t.Errorf("stats after repeat = %+v, want a memory hit on top", got)
	}
}

// TestErrorsNotPersisted pins satellite semantics: a failed evaluation
// is memoized only in-process — it never reaches the store, and after
// Reset the configuration is genuinely re-evaluated, so a transient
// failure does not poison any later run.
func TestErrorsNotPersisted(t *testing.T) {
	p := New(2)
	p.SetStore(openStore(t, t.TempDir()))
	wl := core.Workload{Model: model.TinyLlama42M(), Mode: model.Autoregressive}
	bad := core.DefaultSystem(0) // 0 chips: core.Run rejects it

	if _, err := p.Run(bad, wl); err == nil {
		t.Fatal("expected the 0-chip configuration to fail")
	}
	if got := p.Simulations(); got != 1 {
		t.Fatalf("failed evaluation counted %d simulations, want 1", got)
	}
	if p.Store().Len() != 0 {
		t.Fatal("error entry was persisted to the result store")
	}
	// Within the process the failure is memoized...
	if _, err := p.Run(bad, wl); err == nil {
		t.Fatal("memoized failure did not fail")
	}
	if got := p.Simulations(); got != 1 {
		t.Fatalf("memoized failure re-simulated (count %d)", got)
	}
	// ...but Reset clears it: the point is re-evaluated, not served
	// from any tier.
	p.Reset()
	if _, err := p.Run(bad, wl); err == nil {
		t.Fatal("expected the re-evaluated configuration to fail again")
	}
	if got := p.Simulations(); got != 2 {
		t.Fatalf("post-Reset evaluation count = %d, want 2 (transient failure must be retried)", got)
	}
	if p.Store().Len() != 0 {
		t.Fatal("retried error entry was persisted")
	}
}

// TestConcurrentPoolsSharedDir runs two pools, each with its own store
// handle on one directory, over overlapping point sets concurrently —
// the cross-process writer race in miniature, under the race detector.
// The log must come out clean: a fresh open indexes every entry and
// skips nothing.
func TestConcurrentPoolsSharedDir(t *testing.T) {
	dir := t.TempDir()
	wl := core.Workload{Model: model.TinyLlama42M(), Mode: model.Autoregressive}
	chips := []int{1, 2, 4, 8}

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		p := New(4)
		p.SetStore(openStore(t, dir))
		wg.Add(1)
		go func(p *Pool) {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				if _, err := p.Eval(core.DefaultSystem(1), wl, chips); err != nil {
					t.Error(err)
				}
			}
		}(p)
	}
	wg.Wait()

	s := openStore(t, dir)
	if s.Skipped() != 0 {
		t.Errorf("concurrent pools corrupted %d records", s.Skipped())
	}
	if s.Len() != len(chips) {
		t.Errorf("store holds %d entries, want %d", s.Len(), len(chips))
	}
	serial, err := core.Sweep(core.DefaultSystem(1), wl, chips)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range chips {
		got, ok := s.Load(core.DefaultSystem(n), wl)
		if !ok {
			t.Fatalf("chips=%d missing from the shared store", n)
		}
		if !reflect.DeepEqual(got, serial[i]) {
			t.Errorf("chips=%d: stored report differs from serial reference", n)
		}
	}
}

// TestSetWorkersKeepsStore pins that replacing the default pool via
// SetWorkers carries the attached store over — commands parse -workers
// and -cache-dir independently, in either order.
func TestSetWorkersKeepsStore(t *testing.T) {
	defer func() {
		SetStore(nil)
		SetWorkers(0)
	}()
	s := openStore(t, t.TempDir())
	SetStore(s)
	SetWorkers(2)
	if Default().Store() != s {
		t.Fatal("SetWorkers dropped the attached result store")
	}
}
