// Package evalpool is the concurrent evaluation engine behind every
// figure, table, ablation, and design-space sweep: a worker pool that
// fans (System, Workload) points out across CPUs plus a memoized,
// concurrency-safe report cache keyed by the exact configuration, so
// a point shared by several figures (the 1-chip TinyLlama baseline
// appears in Fig. 4, Fig. 5, Table I, and the headline metrics) is
// simulated exactly once per process.
//
// The engine is guaranteed to produce byte-identical results to the
// serial path (core.Run in a loop, core.Sweep): results are returned
// in input order, errors are reported for the lowest failing input
// index, and core.Run shares no mutable state between runs. The
// equivalence is locked in by TestPoolMatchesSerial and a race-detector
// pass over this package.
//
// The in-process cache is the fast tier of a two-tier design: a pool
// may additionally be attached (SetStore) to a persistent
// resultstore.Store, which is consulted on every memory miss and
// appended to on every successful fill. Errors never reach the store —
// a failure may be transient, so it is retried in any process that has
// not already memoized it. Stats exposes the tier split (memory hits /
// disk hits / exact simulations) so searches and CLIs can report
// exactly what a cache saved.
//
// Cold-cache concurrency is singleflighted: when N workers race on
// the same uncached point, one evaluation runs and the other N-1 wait
// for it and share its result, so exactly one exact simulation (or
// disk read) ever executes per distinct point — a guarantee that
// holds even across Reset, because the in-flight registry survives
// the cache drop.
//
// Reports returned by the engine may be shared between callers and
// must be treated as immutable.
package evalpool

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"mcudist/internal/core"
	"mcudist/internal/resultstore"
)

// Point is one configuration to evaluate: a fully specified system
// and workload. Point is a comparable struct and doubles as the cache
// key, so two Points request the same cache entry exactly when every
// hardware parameter, planner option, model field, and sequence length
// matches.
type Point struct {
	System   core.System
	Workload core.Workload
}

// Pool is a worker-pool evaluator with a memoized report cache. The
// zero value is not usable; construct with New. A Pool is safe for
// concurrent use by multiple goroutines.
type Pool struct {
	workers int

	// sims counts cache-miss evaluations (core.Run invocations) over
	// the pool's lifetime; it survives Reset so callers can meter the
	// exact-simulation cost of a search by delta. evals counts memory
	// misses regardless of which tier fills them (disk hit or
	// simulation) — the storage-independent "distinct exact evaluations"
	// a search needed.
	sims  atomic.Uint64
	evals atomic.Uint64
	// memHits counts requests answered by an already-settled (or
	// in-flight) in-process cache entry; diskHits counts memory misses
	// filled from the persistent store instead of a simulation.
	memHits  atomic.Uint64
	diskHits atomic.Uint64

	// store is the optional persistent tier (nil when detached).
	store atomic.Pointer[resultstore.Store]

	mu sync.Mutex
	// cache/errs hold settled evaluations (errors are memoized
	// in-process only, never persisted); inflight is the singleflight
	// registry: at most one evaluation per Point is ever running, and
	// every concurrent requester of that Point waits on the same
	// flight. inflight deliberately survives Reset — a result being
	// computed when the cache is dropped still settles once and is
	// shared by everyone already waiting on it.
	cache    map[Point]*core.Report
	errs     map[Point]error
	inflight map[Point]*flight
}

// Stats is a snapshot of a pool's cache-tier counters. All three
// survive Reset, so the cost profile of one search is the delta of a
// snapshot taken around it.
type Stats struct {
	// MemoryHits counts requests served by the in-process cache.
	MemoryHits uint64
	// DiskHits counts memory misses filled from the persistent store.
	DiskHits uint64
	// Simulations counts exact core.Run invocations.
	Simulations uint64
}

// flight is one in-progress evaluation shared by every concurrent
// requester of the same Point: the owner fills rep/err and closes
// done; joiners block on done and read the settled result.
type flight struct {
	done chan struct{}
	rep  *core.Report
	err  error
}

// New returns a Pool evaluating up to workers points concurrently.
// workers <= 0 selects runtime.GOMAXPROCS(0).
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{
		workers:  workers,
		cache:    make(map[Point]*core.Report),
		errs:     make(map[Point]error),
		inflight: make(map[Point]*flight),
	}
}

// Workers returns the pool's concurrency limit.
func (p *Pool) Workers() int { return p.workers }

// Reset drops every memoized report (and memoized error). In-flight
// evaluations are untouched: they settle exactly once into the
// post-Reset cache, still shared by every requester that joined them.
func (p *Pool) Reset() {
	p.mu.Lock()
	p.cache = make(map[Point]*core.Report)
	p.errs = make(map[Point]error)
	p.mu.Unlock()
}

// Run evaluates one point through the cache tiers: the in-process
// memo first, then the attached persistent store (if any), and only
// then an exact core.Run — whose successful report is appended to the
// store for every later process. Concurrent requests for the same
// point are collapsed into one in-flight evaluation (simulation
// singleflight): exactly one core.Run executes per point no matter
// how many workers race on a cold cache, and the registry survives
// Reset so not even a cache drop can double-simulate a point. Failed
// evaluations are memoized for this process's lifetime (until Reset)
// but never persisted.
func (p *Pool) Run(sys core.System, wl core.Workload) (*core.Report, error) {
	key := Point{System: sys, Workload: wl}
	p.mu.Lock()
	if rep, ok := p.cache[key]; ok {
		p.mu.Unlock()
		p.memHits.Add(1)
		return rep, nil
	}
	if err, ok := p.errs[key]; ok {
		p.mu.Unlock()
		p.memHits.Add(1)
		return nil, err
	}
	if f, ok := p.inflight[key]; ok {
		p.mu.Unlock()
		p.memHits.Add(1)
		<-f.done
		return f.rep, f.err
	}
	f := &flight{done: make(chan struct{})}
	p.inflight[key] = f
	p.mu.Unlock()

	f.rep, f.err = p.fill(sys, wl)

	p.mu.Lock()
	delete(p.inflight, key)
	if f.err == nil {
		p.cache[key] = f.rep
	} else {
		p.errs[key] = f.err
	}
	p.mu.Unlock()
	close(f.done)
	return f.rep, f.err
}

// fill resolves one memory miss: the persistent store if attached,
// an exact simulation otherwise. Exactly one fill runs per point at
// any time (the caller holds the point's flight).
func (p *Pool) fill(sys core.System, wl core.Workload) (*core.Report, error) {
	p.evals.Add(1)
	if s := p.store.Load(); s != nil {
		if rep, hit := s.Load(sys, wl); hit {
			p.diskHits.Add(1)
			return rep, nil
		}
	}
	p.sims.Add(1)
	rep, err := core.Run(sys, wl)
	if err == nil {
		if s := p.store.Load(); s != nil {
			// A failed append degrades the store to a smaller cache,
			// never the evaluation itself.
			_ = s.Append(sys, wl, rep)
		}
	}
	return rep, err
}

// SetStore attaches (or, with nil, detaches) a persistent result
// store as the pool's second cache tier. Safe to call concurrently
// with Run; in-flight evaluations settle against whichever store they
// observed.
func (p *Pool) SetStore(s *resultstore.Store) { p.store.Store(s) }

// Store returns the attached persistent store, or nil.
func (p *Pool) Store() *resultstore.Store { return p.store.Load() }

// Simulations returns the number of cache-miss evaluations — actual
// core.Run invocations — the pool has executed since construction.
// Cache hits leave it unchanged, and Reset does not rewind it, so the
// exact-simulation cost of a search is the counter's delta around it
// (process-wide on the default pool: concurrent unrelated work is
// counted too).
func (p *Pool) Simulations() uint64 { return p.sims.Load() }

// Evaluations returns the number of memory-memo misses the pool has
// settled — exact evaluations a caller needed, whether a simulation
// ran or the persistent store answered. Searches meter their cost by
// this counter's delta so reported sim counts are byte-identical with
// and without a warm store; Simulations is the subset that actually
// invoked core.Run.
func (p *Pool) Evaluations() uint64 { return p.evals.Load() }

// Stats returns a snapshot of the pool's lifetime cache counters.
func (p *Pool) Stats() Stats {
	return Stats{
		MemoryHits:  p.memHits.Load(),
		DiskHits:    p.diskHits.Load(),
		Simulations: p.sims.Load(),
	}
}

// Map evaluates every point on the worker pool and returns reports in
// input order. On failure it returns the error of the lowest failing
// index — the same error the serial loop would hit first — so error
// behavior is deterministic regardless of scheduling.
func (p *Pool) Map(points []Point) ([]*core.Report, error) {
	reports := make([]*core.Report, len(points))
	errs := make([]error, len(points))

	workers := p.workers
	if workers > len(points) {
		workers = len(points)
	}
	if workers <= 1 {
		for i, pt := range points {
			reports[i], errs[i] = p.Run(pt.System, pt.Workload)
		}
	} else {
		var next int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(atomic.AddInt64(&next, 1)) - 1
					if i >= len(points) {
						return
					}
					reports[i], errs[i] = p.Run(points[i].System, points[i].Workload)
				}
			}()
		}
		wg.Wait()
	}

	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("evalpool: point %d (%d chips): %w",
				i, points[i].System.Chips, err)
		}
	}
	return reports, nil
}

// Eval runs the workload across several chip counts on otherwise
// identical systems — the pooled equivalent of core.Sweep, returning
// reports in chip-list order.
func (p *Pool) Eval(base core.System, wl core.Workload, chips []int) ([]*core.Report, error) {
	points := make([]Point, len(chips))
	for i, n := range chips {
		sys := base
		sys.Chips = n
		points[i] = Point{System: sys, Workload: wl}
	}
	return p.Map(points)
}

// The default pool serves package-level calls. Every consumer in the
// repository (root facade, explore, experiments, cmds) shares it, so
// configurations repeated across figures are computed once per
// process.
var (
	defaultMu   sync.RWMutex
	defaultPool = New(0)
)

// SetWorkers replaces the default pool with one of the given
// concurrency (<= 0 selects GOMAXPROCS), dropping the accumulated
// cache and restarting the counters but keeping any attached
// persistent store. Commands call this once at startup from their
// -workers flag; it is not intended to race with in-flight
// evaluations.
func SetWorkers(n int) {
	defaultMu.Lock()
	store := defaultPool.Store()
	defaultPool = New(n)
	defaultPool.SetStore(store)
	defaultMu.Unlock()
}

// Default returns the process-wide shared pool.
func Default() *Pool {
	defaultMu.RLock()
	defer defaultMu.RUnlock()
	return defaultPool
}

// ResetCache drops the default pool's memoized reports — the release
// valve for long-lived processes sweeping unbounded configuration
// spaces (the cache has no eviction of its own).
func ResetCache() { Default().Reset() }

// Simulations returns the default pool's cache-miss evaluation count
// (see Pool.Simulations). SetWorkers replaces the pool and therefore
// restarts the counter.
func Simulations() uint64 { return Default().Simulations() }

// Evaluations returns the default pool's memory-miss count (see
// Pool.Evaluations).
func Evaluations() uint64 { return Default().Evaluations() }

// SetStore attaches a persistent result store to the default pool
// (nil detaches). The attachment survives SetWorkers.
func SetStore(s *resultstore.Store) { Default().SetStore(s) }

// GetStats returns the default pool's cache-tier counters.
func GetStats() Stats { return Default().Stats() }

// Run evaluates one point on the default pool's cache.
func Run(sys core.System, wl core.Workload) (*core.Report, error) {
	return Default().Run(sys, wl)
}

// Map evaluates points on the default pool.
func Map(points []Point) ([]*core.Report, error) {
	return Default().Map(points)
}

// Eval sweeps chip counts on the default pool.
func Eval(base core.System, wl core.Workload, chips []int) ([]*core.Report, error) {
	return Default().Eval(base, wl, chips)
}
