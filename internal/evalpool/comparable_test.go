package evalpool

import (
	"reflect"
	"testing"

	"mcudist/internal/collective"
	"mcudist/internal/core"
	"mcudist/internal/hw"
	"mcudist/internal/model"
)

// The memoized report cache keys on Point — the full (System,
// Workload) configuration, including the topology selector. Every
// field added to core.System, hw.Params, deploy.Options, or
// model.Config must keep the structs comparable, or the cache map
// silently stops compiling/deduplicating. This test turns that
// contract into a regression: it fails the moment someone adds a
// slice, map, or function field to any struct reachable from Point.
func TestPointStaysComparable(t *testing.T) {
	for _, typ := range []reflect.Type{
		reflect.TypeOf(Point{}),
		reflect.TypeOf(core.System{}),
		reflect.TypeOf(core.Workload{}),
		reflect.TypeOf(hw.Params{}),
		reflect.TypeOf(hw.Network{}),
		reflect.TypeOf(hw.LinkClass{}),
		reflect.TypeOf(collective.Plan{}),
	} {
		if !typ.Comparable() {
			t.Errorf("%s is no longer comparable; the evalpool cache key is broken", typ)
		}
	}
}

// Beyond static comparability, the key must behave: two value-equal
// configurations must collide on one cache entry, and flipping any
// axis — including the new topology field — must miss.
func TestPointKeyBehaviour(t *testing.T) {
	wl := core.Workload{Model: model.TinyLlama42M(), Mode: model.Autoregressive}
	a := Point{System: core.DefaultSystem(8), Workload: wl}
	b := Point{System: core.DefaultSystem(8), Workload: wl}

	cache := map[Point]int{}
	cache[a]++
	cache[b]++
	if len(cache) != 1 || cache[a] != 2 {
		t.Fatalf("value-equal points did not collide: %d entries", len(cache))
	}

	ring := b
	ring.System.HW.Topology = hw.TopoRing
	cache[ring]++
	if len(cache) != 2 {
		t.Fatal("topology change did not produce a distinct cache key")
	}

	clustered := b
	clustered.System.HW.Network = hw.ClusteredNetwork(hw.MIPI(), hw.MIPI().Slower(10), 4)
	cache[clustered]++
	if len(cache) != 3 {
		t.Fatal("network change did not produce a distinct cache key")
	}

	// Per-edge tables intern by canonical content digest: equal tables
	// must collide on one key, different tables must not.
	t1, err := hw.TableNetwork(map[hw.Edge]hw.LinkClass{{From: 0, To: 1}: hw.MIPI(), {From: 1, To: 0}: hw.MIPI()})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := hw.TableNetwork(map[hw.Edge]hw.LinkClass{{From: 1, To: 0}: hw.MIPI(), {From: 0, To: 1}: hw.MIPI()})
	if err != nil {
		t.Fatal(err)
	}
	ta, tb := b, b
	ta.System.HW.Network = t1
	tb.System.HW.Network = t2
	cache[ta]++
	cache[tb]++
	if len(cache) != 4 || cache[ta] != 2 {
		t.Fatalf("equal per-edge tables did not collide on one cache key (%d entries)", len(cache))
	}

	// The per-sync collective plan is a cache axis too: equal plans
	// collide, a different binding misses.
	planned := b
	planned.System.Options.SyncPlan = collective.Plan{}.
		With(collective.DecodeMHSA, hw.TopoRing).
		With(collective.DecodeFFN, hw.TopoRing)
	samePlan := b
	samePlan.System.Options.SyncPlan = collective.Plan{}.
		With(collective.DecodeMHSA, hw.TopoRing).
		With(collective.DecodeFFN, hw.TopoRing)
	cache[planned]++
	cache[samePlan]++
	if len(cache) != 5 || cache[planned] != 2 {
		t.Fatalf("equal sync plans did not collide on one cache key (%d entries)", len(cache))
	}
	otherPlan := planned
	otherPlan.System.Options.SyncPlan = collective.Plan{}.
		With(collective.DecodeMHSA, hw.TopoRing)
	cache[otherPlan]++
	if len(cache) != 6 {
		t.Fatal("sync plan change did not produce a distinct cache key")
	}

	// The live pool must dedupe the same way: same config twice is
	// one simulation, a different topology is a second one.
	p := New(1)
	r1, err := p.Run(a.System, a.Workload)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := p.Run(b.System, b.Workload)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("identical configurations returned distinct reports (cache miss)")
	}
	r3, err := p.Run(ring.System, ring.Workload)
	if err != nil {
		t.Fatal(err)
	}
	if r3 == r1 {
		t.Error("ring topology served the tree topology's cached report")
	}
	if r3.Cycles == r1.Cycles {
		t.Error("ring and tree reports coincide exactly; topology likely ignored")
	}
	r4, err := p.Run(clustered.System, clustered.Workload)
	if err != nil {
		t.Fatal(err)
	}
	if r4 == r1 {
		t.Error("clustered network served the uniform network's cached report")
	}
	if r4.Cycles == r1.Cycles {
		t.Error("clustered and uniform reports coincide exactly; network likely ignored")
	}
	r5, err := p.Run(planned.System, planned.Workload)
	if err != nil {
		t.Fatal(err)
	}
	if r5 == r1 {
		t.Error("planned run served the uniform plan's cached report")
	}
	if r5.Cycles == r1.Cycles {
		t.Error("planned and unplanned reports coincide exactly; sync plan likely ignored")
	}
	r6, err := p.Run(samePlan.System, samePlan.Workload)
	if err != nil {
		t.Fatal(err)
	}
	if r6 != r5 {
		t.Error("value-equal sync plans returned distinct reports (cache miss)")
	}
}
