package evalpool

import (
	"sync"
	"testing"

	"mcudist/internal/core"
	"mcudist/internal/model"
)

// Many goroutines racing on one uncached point must collapse into a
// single simulation: the singleflight guarantee. Every waiter shares
// the one settled report, the metering stays exact (one evaluation,
// one simulation, N-1 memory hits), and the race detector sees no
// unsynchronized access.
func TestSingleflightOneSimulationPerPoint(t *testing.T) {
	p := New(8)
	sys := core.DefaultSystem(4)
	wl := core.Workload{Model: model.TinyLlama42M(), Mode: model.Autoregressive}

	const goroutines = 64
	reports := make([]*core.Report, goroutines)
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(goroutines)
	for i := 0; i < goroutines; i++ {
		go func() {
			defer done.Done()
			start.Wait() // release everyone at once
			rep, err := p.Run(sys, wl)
			if err != nil {
				t.Error(err)
				return
			}
			reports[i] = rep
		}()
	}
	start.Done()
	done.Wait()

	if sims := p.Simulations(); sims != 1 {
		t.Errorf("%d goroutines on one digest ran %d simulations, want exactly 1", goroutines, sims)
	}
	if evals := p.Evaluations(); evals != 1 {
		t.Errorf("%d goroutines on one digest settled %d evaluations, want exactly 1", goroutines, evals)
	}
	for i, rep := range reports {
		if rep != reports[0] {
			t.Fatalf("goroutine %d got a different report pointer: the flight's result was not shared", i)
		}
	}
	st := p.Stats()
	if st.MemoryHits != goroutines-1 {
		t.Errorf("memory hits %d, want %d (every joiner of the flight)", st.MemoryHits, goroutines-1)
	}
}

// Reset must not break the singleflight guarantee: requests that
// joined a flight before the cache drop still share its result, and
// the flight settles into the post-Reset cache so later requests hit
// memory instead of re-simulating.
func TestSingleflightSurvivesReset(t *testing.T) {
	p := New(8)
	sys := core.DefaultSystem(2)
	wl := core.Workload{Model: model.TinyLlama42M(), Mode: model.Autoregressive}

	const goroutines = 32
	var done sync.WaitGroup
	done.Add(goroutines)
	for i := 0; i < goroutines; i++ {
		go func() {
			defer done.Done()
			if _, err := p.Run(sys, wl); err != nil {
				t.Error(err)
			}
		}()
	}
	p.Reset() // concurrent with the flight: must not double-simulate
	done.Wait()

	if sims := p.Simulations(); sims != 1 {
		t.Errorf("Reset during the flight caused %d simulations, want exactly 1", sims)
	}
	// The flight settled after the Reset, so its result landed in the
	// live cache: this request is a pure memory hit.
	before := p.Evaluations()
	if _, err := p.Run(sys, wl); err != nil {
		t.Fatal(err)
	}
	if p.Evaluations() != before {
		t.Error("post-Reset request missed memory although the flight settled after Reset")
	}
}

// Failed evaluations singleflight too, and stay retryable: the error
// is memoized until Reset, then the next request re-evaluates.
func TestSingleflightErrorMemoizedUntilReset(t *testing.T) {
	p := New(4)
	sys := core.DefaultSystem(0) // invalid: zero chips fails validation
	wl := core.Workload{Model: model.TinyLlama42M(), Mode: model.Autoregressive}

	if _, err := p.Run(sys, wl); err == nil {
		t.Fatal("zero-chip system evaluated without error")
	}
	evalsAfterFirst := p.Evaluations()
	if _, err := p.Run(sys, wl); err == nil {
		t.Fatal("memoized failure lost")
	}
	if p.Evaluations() != evalsAfterFirst {
		t.Error("memoized error re-evaluated before Reset")
	}
	p.Reset()
	if _, err := p.Run(sys, wl); err == nil {
		t.Fatal("failure not retried after Reset")
	}
	if p.Evaluations() != evalsAfterFirst+1 {
		t.Error("error not re-evaluated after Reset")
	}
}
