package evalpool

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"mcudist/internal/core"
	"mcudist/internal/model"
)

// figurePointSets returns the exact point sets behind Fig. 4(a),
// Fig. 5(a), and Fig. 6 — the sweeps the determinism guarantee is
// stated over.
func figurePointSets() map[string][]Point {
	points := func(wl core.Workload, chips []int) []Point {
		out := make([]Point, len(chips))
		for i, n := range chips {
			sys := core.DefaultSystem(n)
			out[i] = Point{System: sys, Workload: wl}
		}
		return out
	}
	tiny := model.TinyLlama42M()
	scaled := model.TinyLlamaScaled64()

	fig5a := points(core.Workload{Model: tiny, Mode: model.Autoregressive}, []int{1, 2, 4, 8})
	fig5a = append(fig5a,
		points(core.Workload{Model: scaled, Mode: model.Autoregressive}, []int{8, 16, 32, 64})...)

	fig6 := points(core.Workload{Model: scaled, Mode: model.Autoregressive},
		[]int{1, 2, 4, 8, 16, 32, 64})
	fig6 = append(fig6,
		points(core.Workload{Model: scaled, Mode: model.Prompt},
			[]int{1, 2, 4, 8, 16, 32, 64})...)

	return map[string][]Point{
		"Fig4a": points(core.Workload{Model: tiny, Mode: model.Autoregressive}, []int{1, 2, 4, 8}),
		"Fig5a": fig5a,
		"Fig6":  fig6,
	}
}

// TestDeterminismAcrossWorkerCounts runs the figure point sets with 1
// and 8 workers and requires identical reports.
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	for name, points := range figurePointSets() {
		t.Run(name, func(t *testing.T) {
			serial, err := New(1).Map(points)
			if err != nil {
				t.Fatal(err)
			}
			pooled, err := New(8).Map(points)
			if err != nil {
				t.Fatal(err)
			}
			if len(serial) != len(pooled) {
				t.Fatalf("length mismatch: %d vs %d", len(serial), len(pooled))
			}
			for i := range serial {
				if !reflect.DeepEqual(serial[i], pooled[i]) {
					t.Fatalf("point %d: workers=1 and workers=8 reports differ:\n%+v\nvs\n%+v",
						i, serial[i], pooled[i])
				}
			}
		})
	}
}

// TestPoolMatchesSerial checks the engine against the serial reference
// path (core.Sweep / core.Run in a loop): byte-identical reports in
// the same order.
func TestPoolMatchesSerial(t *testing.T) {
	wl := core.Workload{Model: model.TinyLlama42M(), Mode: model.Autoregressive}
	chips := []int{1, 2, 4, 8}

	serial, err := core.Sweep(core.DefaultSystem(1), wl, chips)
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := New(8).Eval(core.DefaultSystem(1), wl, chips)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], pooled[i]) {
			t.Fatalf("chips=%d: pooled report differs from core.Sweep:\n%+v\nvs\n%+v",
				chips[i], serial[i], pooled[i])
		}
	}
}

// TestCacheMemoizes requires repeated requests for the same
// configuration to return the same report instance, including across
// Eval and Run entry points.
func TestCacheMemoizes(t *testing.T) {
	p := New(4)
	wl := core.Workload{Model: model.TinyLlama42M(), Mode: model.Autoregressive}

	first, err := p.Eval(core.DefaultSystem(1), wl, []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	second, err := p.Eval(core.DefaultSystem(1), wl, []int{8, 1})
	if err != nil {
		t.Fatal(err)
	}
	if first[0] != second[1] || first[1] != second[0] {
		t.Fatal("repeated Eval did not reuse cached reports")
	}
	rep, err := p.Run(core.DefaultSystem(8), wl)
	if err != nil {
		t.Fatal(err)
	}
	if rep != first[1] {
		t.Fatal("Run did not hit the Eval-populated cache")
	}
}

// TestReset requires Reset to drop memoized entries so the next
// request recomputes.
func TestReset(t *testing.T) {
	p := New(2)
	wl := core.Workload{Model: model.TinyLlama42M(), Mode: model.Autoregressive}
	before, err := p.Run(core.DefaultSystem(8), wl)
	if err != nil {
		t.Fatal(err)
	}
	p.Reset()
	after, err := p.Run(core.DefaultSystem(8), wl)
	if err != nil {
		t.Fatal(err)
	}
	if before == after {
		t.Fatal("Reset did not drop the cached report")
	}
	if !reflect.DeepEqual(before, after) {
		t.Fatal("recomputed report differs from the original")
	}
}

// TestErrorIsLowestIndex requires the pooled error to be the one the
// serial loop would hit first, regardless of scheduling.
func TestErrorIsLowestIndex(t *testing.T) {
	wl := core.Workload{Model: model.TinyLlama42M(), Mode: model.Autoregressive}
	// Index 1 (0 chips) and index 3 (-1 chips) both fail; index 1 must
	// win.
	_, err := New(8).Eval(core.DefaultSystem(1), wl, []int{8, 0, 4, -1})
	if err == nil {
		t.Fatal("expected an error")
	}
	if !strings.Contains(err.Error(), "point 1 (0 chips)") {
		t.Fatalf("error %q does not name the lowest failing index", err)
	}
}

// TestConcurrentSharedPool hammers one pool from many goroutines over
// overlapping point sets — the race-detector workout for the cache's
// lock and once-per-entry discipline.
func TestConcurrentSharedPool(t *testing.T) {
	p := New(8)
	sets := figurePointSets()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		for name := range sets {
			wg.Add(1)
			go func(points []Point) {
				defer wg.Done()
				if _, err := p.Map(points); err != nil {
					t.Error(err)
				}
			}(sets[name])
		}
	}
	wg.Wait()
}

// TestDefaultPoolAndSetWorkers covers the package-level facade.
func TestDefaultPoolAndSetWorkers(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(2)
	if got := Default().Workers(); got != 2 {
		t.Fatalf("workers = %d, want 2", got)
	}
	wl := core.Workload{Model: model.TinyLlama42M(), Mode: model.Autoregressive}
	reports, err := Eval(core.DefaultSystem(1), wl, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(core.DefaultSystem(2), wl)
	if err != nil {
		t.Fatal(err)
	}
	if rep != reports[1] {
		t.Fatal("package-level Run and Eval do not share the default cache")
	}
	pts := []Point{{System: core.DefaultSystem(1), Workload: wl}}
	if _, err := Map(pts); err != nil {
		t.Fatal(err)
	}
}

// TestSimulationsCounter pins that the counter meters cache misses
// only: hits and Reset leave past counts in place, so search code can
// measure its exact-simulation cost by delta.
func TestSimulationsCounter(t *testing.T) {
	p := New(2)
	wl := core.Workload{Model: model.TinyLlama42M(), Mode: model.Autoregressive}
	if got := p.Simulations(); got != 0 {
		t.Fatalf("fresh pool reports %d simulations", got)
	}
	if _, err := p.Eval(core.DefaultSystem(1), wl, []int{1, 2, 4}); err != nil {
		t.Fatal(err)
	}
	if got := p.Simulations(); got != 3 {
		t.Errorf("three distinct points simulated %d times", got)
	}
	// Repeats are hits.
	if _, err := p.Eval(core.DefaultSystem(1), wl, []int{1, 2, 4}); err != nil {
		t.Fatal(err)
	}
	if got := p.Simulations(); got != 3 {
		t.Errorf("cache hits moved the counter to %d", got)
	}
	// Reset drops the cache but not the history: the same points
	// simulate again and the counter keeps accumulating.
	p.Reset()
	if _, err := p.Eval(core.DefaultSystem(1), wl, []int{1, 2}); err != nil {
		t.Fatal(err)
	}
	if got := p.Simulations(); got != 5 {
		t.Errorf("post-Reset re-evaluation left the counter at %d, want 5", got)
	}
}
