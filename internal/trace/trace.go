// Package trace records execution timelines from the performance
// simulator: one span per kernel, DMA transfer, or link hop, per chip.
// Timelines render as per-chip text Gantt charts or export in the
// Chrome trace-event format for chrome://tracing / Perfetto.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Span is one timed activity on one chip.
type Span struct {
	Chip     int
	Category string // compute | dma-l2l1 | dma-l3 | link
	Label    string
	Start    float64 // cycles
	End      float64
}

// Duration returns the span length in cycles.
func (s Span) Duration() float64 { return s.End - s.Start }

// Timeline collects spans in emission order.
type Timeline struct {
	spans []Span
}

// Add records one span. Inverted spans are rejected loudly: they
// indicate a simulator bug.
func (t *Timeline) Add(chip int, category, label string, start, end float64) {
	if end < start {
		panic(fmt.Sprintf("trace: inverted span %s [%g, %g)", label, start, end))
	}
	t.spans = append(t.spans, Span{Chip: chip, Category: category, Label: label, Start: start, End: end})
}

// Len returns the number of recorded spans.
func (t *Timeline) Len() int { return len(t.spans) }

// Spans returns a copy sorted by start time (chip, category break
// ties).
func (t *Timeline) Spans() []Span {
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		if out[i].Chip != out[j].Chip {
			return out[i].Chip < out[j].Chip
		}
		return out[i].Category < out[j].Category
	})
	return out
}

// End returns the latest span end.
func (t *Timeline) End() float64 {
	var end float64
	for _, s := range t.spans {
		if s.End > end {
			end = s.End
		}
	}
	return end
}

// BusyCycles sums span durations per category.
func (t *Timeline) BusyCycles() map[string]float64 {
	out := map[string]float64{}
	for _, s := range t.spans {
		out[s.Category] += s.Duration()
	}
	return out
}

// CheckNoOverlap verifies that spans sharing a chip and category never
// overlap (each models an exclusive resource). It returns the first
// violation found.
func (t *Timeline) CheckNoOverlap() error {
	type key struct {
		chip int
		cat  string
	}
	byRes := map[key][]Span{}
	for _, s := range t.spans {
		k := key{s.Chip, s.Category}
		byRes[k] = append(byRes[k], s)
	}
	for k, spans := range byRes {
		sort.Slice(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
		for i := 1; i < len(spans); i++ {
			if spans[i].Start < spans[i-1].End-1e-9 {
				return fmt.Errorf("trace: chip %d %s: %q [%g,%g) overlaps %q [%g,%g)",
					k.chip, k.cat,
					spans[i-1].Label, spans[i-1].Start, spans[i-1].End,
					spans[i].Label, spans[i].Start, spans[i].End)
			}
		}
	}
	return nil
}

// chromeEvent is one complete ("X" phase) trace event.
type chromeEvent struct {
	Name     string  `json:"name"`
	Phase    string  `json:"ph"`
	TsMicros float64 `json:"ts"`
	DurUs    float64 `json:"dur"`
	PID      int     `json:"pid"`
	TID      string  `json:"tid"`
	Cat      string  `json:"cat"`
}

// ChromeJSON writes the timeline in the Chrome trace-event array
// format; freqHz converts cycles to microseconds.
func (t *Timeline) ChromeJSON(w io.Writer, freqHz float64) error {
	if freqHz <= 0 {
		return fmt.Errorf("trace: frequency must be positive")
	}
	toUs := 1e6 / freqHz
	events := make([]chromeEvent, 0, len(t.spans))
	for _, s := range t.Spans() {
		events = append(events, chromeEvent{
			Name:     s.Label,
			Phase:    "X",
			TsMicros: s.Start * toUs,
			DurUs:    s.Duration() * toUs,
			PID:      s.Chip,
			TID:      s.Category,
			Cat:      s.Category,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

// Render writes a per-chip text Gantt chart of the given width.
func (t *Timeline) Render(w io.Writer, width int) error {
	if width <= 0 {
		width = 80
	}
	end := t.End()
	if end == 0 {
		_, err := io.WriteString(w, "(empty timeline)\n")
		return err
	}
	glyphFor := func(cat string) byte {
		switch {
		case cat == "compute":
			return 'C'
		case cat == "dma-l2l1":
			return 'd'
		case cat == "dma-l3":
			return 'M'
		case strings.HasPrefix(cat, "link"):
			return 'L'
		default:
			return '?'
		}
	}
	byChip := map[int][]Span{}
	maxChip := 0
	for _, s := range t.spans {
		byChip[s.Chip] = append(byChip[s.Chip], s)
		if s.Chip > maxChip {
			maxChip = s.Chip
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "timeline: %d spans over %.0f cycles (C=compute d=L2/L1 M=L3 L=link)\n", len(t.spans), end)
	for chip := 0; chip <= maxChip; chip++ {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, s := range byChip[chip] {
			lo := int(s.Start / end * float64(width))
			hi := int(s.End / end * float64(width))
			if hi >= width {
				hi = width - 1
			}
			g := glyphFor(s.Category)
			for i := lo; i <= hi; i++ {
				row[i] = g
			}
		}
		fmt.Fprintf(&b, "chip %2d |%s|\n", chip, row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
