package trace

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestAddAndSort(t *testing.T) {
	var tl Timeline
	tl.Add(1, "compute", "b", 10, 20)
	tl.Add(0, "compute", "a", 0, 5)
	tl.Add(0, "link", "c", 10, 12)
	if tl.Len() != 3 {
		t.Fatalf("len = %d", tl.Len())
	}
	spans := tl.Spans()
	if spans[0].Label != "a" {
		t.Fatalf("first span %q, want a", spans[0].Label)
	}
	if tl.End() != 20 {
		t.Fatalf("end = %g", tl.End())
	}
}

func TestInvertedSpanPanics(t *testing.T) {
	var tl Timeline
	defer func() {
		if recover() == nil {
			t.Error("inverted span did not panic")
		}
	}()
	tl.Add(0, "compute", "bad", 10, 5)
}

func TestBusyCycles(t *testing.T) {
	var tl Timeline
	tl.Add(0, "compute", "a", 0, 10)
	tl.Add(1, "compute", "b", 0, 15)
	tl.Add(0, "link", "c", 0, 3)
	busy := tl.BusyCycles()
	if busy["compute"] != 25 {
		t.Fatalf("compute busy = %g", busy["compute"])
	}
	if busy["link"] != 3 {
		t.Fatalf("link busy = %g", busy["link"])
	}
}

func TestCheckNoOverlap(t *testing.T) {
	var ok Timeline
	ok.Add(0, "compute", "a", 0, 10)
	ok.Add(0, "compute", "b", 10, 20)
	ok.Add(0, "link", "c", 5, 15) // different category: allowed
	ok.Add(1, "compute", "d", 5, 15)
	if err := ok.CheckNoOverlap(); err != nil {
		t.Fatalf("valid timeline rejected: %v", err)
	}
	var bad Timeline
	bad.Add(0, "compute", "a", 0, 10)
	bad.Add(0, "compute", "b", 5, 15)
	if err := bad.CheckNoOverlap(); err == nil {
		t.Fatal("overlapping spans accepted")
	}
}

func TestChromeJSON(t *testing.T) {
	var tl Timeline
	tl.Add(0, "compute", "linear", 0, 500) // 1 µs at 500 MHz
	tl.Add(1, "link", "0->1", 500, 1000)
	var b strings.Builder
	if err := tl.ChromeJSON(&b, 500e6); err != nil {
		t.Fatal(err)
	}
	var events []map[string]interface{}
	if err := json.Unmarshal([]byte(b.String()), &events); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(events) != 2 {
		t.Fatalf("events = %d", len(events))
	}
	if events[0]["dur"].(float64) != 1.0 {
		t.Fatalf("duration = %v µs, want 1", events[0]["dur"])
	}
	if events[0]["ph"] != "X" {
		t.Fatal("phase must be X (complete event)")
	}
	if err := tl.ChromeJSON(&b, 0); err == nil {
		t.Fatal("zero frequency accepted")
	}
}

func TestRender(t *testing.T) {
	var tl Timeline
	tl.Add(0, "compute", "a", 0, 50)
	tl.Add(1, "dma-l3", "w", 50, 100)
	var b strings.Builder
	if err := tl.Render(&b, 40); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "chip  0") || !strings.Contains(out, "chip  1") {
		t.Fatalf("missing chip rows:\n%s", out)
	}
	if !strings.Contains(out, "C") || !strings.Contains(out, "M") {
		t.Fatalf("missing glyphs:\n%s", out)
	}
	var empty Timeline
	b.Reset()
	if err := empty.Render(&b, 40); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "empty") {
		t.Fatal("empty timeline not flagged")
	}
}
