package analytic

import (
	"testing"

	"mcudist/internal/deploy"
	"mcudist/internal/hw"
	"mcudist/internal/model"
	"mcudist/internal/partition"
	"mcudist/internal/perfsim"
)

// crossValidate compares the closed form against the event simulator.
func crossValidate(t *testing.T, cfg model.Config, n int, mode model.Mode, s int, tol float64) {
	t.Helper()
	p, err := partition.NewTensorParallel(cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	d, err := deploy.New(p, hw.Siracusa(), mode, s, deploy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := perfsim.Run(d)
	if err != nil {
		t.Fatal(err)
	}
	est, err := Estimate(d)
	if err != nil {
		t.Fatal(err)
	}
	ratio := est / sim.TotalCycles
	if ratio < 1-tol || ratio > 1+tol {
		t.Errorf("%s n=%d %v S=%d: analytic %.3e vs sim %.3e (ratio %.3f, tol %.0f%%)",
			cfg.Name, n, mode, s, est, sim.TotalCycles, ratio, tol*100)
	}
}

// The two independent derivations of the same model must agree
// closely across the paper's entire evaluation grid.
func TestCrossValidationAgainstSimulator(t *testing.T) {
	ll := model.TinyLlama42M()
	for _, n := range []int{1, 2, 4, 8} {
		crossValidate(t, ll, n, model.Autoregressive, 128, 0.15)
		crossValidate(t, ll, n, model.Prompt, 16, 0.15)
	}
	mb := model.MobileBERT512()
	for _, n := range []int{1, 2, 4} {
		crossValidate(t, mb, n, model.Prompt, 268, 0.15)
	}
	sc := model.TinyLlamaScaled64()
	for _, n := range []int{16, 32, 64} {
		crossValidate(t, sc, n, model.Autoregressive, 128, 0.25)
	}
}

func TestEstimateRejectsBaselines(t *testing.T) {
	cfg := model.TinyLlama42M()
	p, _ := partition.NewReplicated(cfg, 4)
	d, err := deploy.New(p, hw.Siracusa(), model.Prompt, 16, deploy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Estimate(d); err == nil {
		t.Fatal("replicated plan accepted")
	}
}

func TestEstimateMonotoneInBlocks(t *testing.T) {
	short := model.TinyLlama42M()
	long := short
	long.L = 16
	p1, _ := partition.NewTensorParallel(short, 8)
	p2, _ := partition.NewTensorParallel(long, 8)
	d1, _ := deploy.New(p1, hw.Siracusa(), model.Autoregressive, 128, deploy.Options{})
	d2, _ := deploy.New(p2, hw.Siracusa(), model.Autoregressive, 128, deploy.Options{})
	e1, err := Estimate(d1)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Estimate(d2)
	if err != nil {
		t.Fatal(err)
	}
	if e2 <= e1 {
		t.Fatalf("16-block estimate %g not above 8-block %g", e2, e1)
	}
}

func TestEstimatePrefetchExposure(t *testing.T) {
	cfg := model.TinyLlama42M()
	p, _ := partition.NewTensorParallel(cfg, 8)
	hidden, _ := deploy.New(p, hw.Siracusa(), model.Autoregressive, 128, deploy.Options{})
	exposed, _ := deploy.New(p, hw.Siracusa(), model.Autoregressive, 128, deploy.Options{PrefetchExposed: true})
	eh, err := Estimate(hidden)
	if err != nil {
		t.Fatal(err)
	}
	ee, err := Estimate(exposed)
	if err != nil {
		t.Fatal(err)
	}
	if ee <= eh {
		t.Fatalf("exposed estimate %g not above hidden %g", ee, eh)
	}
}
