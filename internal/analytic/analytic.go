// Package analytic provides a closed-form latency estimator for
// tensor-parallel deployments — an independent derivation of what the
// event-driven simulator computes. The two agreeing within a tolerance
// is a cross-validation of both models; the estimator is also orders
// of magnitude cheaper for coarse design-space sweeps.
package analytic

import (
	"fmt"

	"mcudist/internal/deploy"
	"mcudist/internal/interconnect"
	"mcudist/internal/kernels"
	"mcudist/internal/partition"
)

// Estimate returns a closed-form per-forward cycle estimate for a
// tensor-parallel deployment: per-block phase times (slowest chip),
// plus two collective synchronizations per block, serialized across L
// blocks.
func Estimate(d *deploy.Deployment) (float64, error) {
	if d.Plan.Strategy != partition.TensorParallel {
		return 0, fmt.Errorf("analytic: estimator supports the tensor-parallel strategy, got %v", d.Plan.Strategy)
	}
	tree, err := interconnect.BuildTree(d.Plan.Chips, d.HW.GroupSize)
	if err != nil {
		return 0, err
	}

	var mhsaMax, fcMax, blockLoadMax float64
	for c := range d.Chips {
		cd := &d.Chips[c]
		mhsa := phaseTime(d, cd.MHSA, cd.ExposedMHSABytes)
		fc := phaseTime(d, cd.FC, cd.ExposedFCBytes)
		if mhsa > mhsaMax {
			mhsaMax = mhsa
		}
		if fc > fcMax {
			fcMax = fc
		}
		if cd.Tier == deploy.TierResidentSingle {
			load := kernels.DMATime(cd.BlockLoadBytes, d.HW.Chip.DMAL3L2BytesPerCycle,
				d.HW.Chip.DMAL3L2SetupCycles, int64(d.HW.Chip.L1Bytes/2))
			if load > blockLoadMax {
				blockLoadMax = load
			}
		}
	}

	sync := syncTime(d, tree)
	blocks := float64(d.Chips[0].Blocks)
	perBlock := blockLoadMax + mhsaMax + sync + fcMax + sync

	total := blocks * perBlock
	if d.Options.PrefetchExposed {
		for c := range d.Chips {
			cd := &d.Chips[c]
			if cd.Tier != deploy.TierDoubleBuffered {
				continue
			}
			prefetch := kernels.DMATime(cd.StreamBytesPerBlock, d.HW.Chip.DMAL3L2BytesPerCycle,
				d.HW.Chip.DMAL3L2SetupCycles, int64(d.HW.Chip.L1Bytes/2))
			if exposed := prefetch - perBlock; exposed > 0 {
				total += blocks * exposed
			}
		}
	}
	return total, nil
}

// phaseTime is the serialized cost of one phase on one chip: exposed
// L3 streaming, L2↔L1 tile movement, and compute.
func phaseTime(d *deploy.Deployment, ops []kernels.Cost, exposedL3 int64) float64 {
	hwp := d.HW
	l1Tile := int64(hwp.Chip.L1Bytes / 2)
	t := kernels.DMATime(exposedL3, hwp.Chip.DMAL3L2BytesPerCycle, hwp.Chip.DMAL3L2SetupCycles, l1Tile)
	for _, op := range ops {
		t += kernels.DMATime(op.TotalL2L1Bytes(), hwp.Chip.DMAL2L1BytesPerCycle, hwp.Chip.DMAL2L1SetupCycles, l1Tile)
		t += op.Cycles
	}
	return t
}

// syncTime estimates one hierarchical all-reduce + root work +
// broadcast with tile pipelining: the reduce costs one serialized
// payload per tree level (links on different levels overlap across
// tiles), the root's accumulate/normalize work runs once, and the
// pipelined broadcast trails by roughly one tile per level.
func syncTime(d *deploy.Deployment, tree *interconnect.Tree) float64 {
	depth := tree.Depth()
	if depth == 0 {
		return rootWork(d)
	}
	commTile := int64(d.Options.CommTileBytes)
	if commTile == 0 {
		commTile = deploy.DefaultCommTileBytes
	}
	reduceHop := interconnect.TransferCycles(d.HW, d.ReducePayload)
	bcastTile := d.BcastPayload
	if bcastTile > commTile {
		bcastTile = commTile
	}
	bcastTrail := interconnect.TransferCycles(d.HW, bcastTile) * float64(depth)
	bcastFull := interconnect.TransferCycles(d.HW, d.BcastPayload)

	// Accumulations at each level's parent, serialized per child.
	fanIn := float64(d.HW.GroupSize - 1)
	adds := float64(depth) * fanIn * d.ReduceAdd.Cycles

	return float64(depth)*reduceHop + adds + rootWork(d) + bcastFull + bcastTrail
}

func rootWork(d *deploy.Deployment) float64 {
	var t float64
	for _, op := range d.RootSync {
		t += op.Cycles
	}
	return t
}
