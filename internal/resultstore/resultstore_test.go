package resultstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"mcudist/internal/core"
	"mcudist/internal/hw"
	"mcudist/internal/model"
)

func testPoint(chips int) (core.System, core.Workload) {
	return core.DefaultSystem(chips),
		core.Workload{Model: model.TinyLlama42M(), Mode: model.Autoregressive}
}

func mustRun(t *testing.T, sys core.System, wl core.Workload) *core.Report {
	t.Helper()
	rep, err := core.Run(sys, wl)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func logPath(dir string) string {
	return filepath.Join(dir, fmt.Sprintf("results-v%d.log", DigestVersion))
}

// A persisted report must round-trip exactly: every field the
// simulator computed — floats included — comes back bit-identical, so
// warm runs print byte-identical output.
func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sys, wl := testPoint(4)
	rep := mustRun(t, sys, wl)
	if err := s.Append(sys, wl, rep); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Load(sys, wl)
	if !ok {
		t.Fatal("persisted entry missed")
	}
	if !reflect.DeepEqual(got, rep) {
		t.Errorf("round-trip diverged:\n got %+v\nwant %+v", got, rep)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
	if s.SizeBytes() <= 0 {
		t.Error("SizeBytes reported an empty log")
	}

	// A cold process: a fresh store on the same directory serves the
	// entry without any simulation.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got2, ok := s2.Load(sys, wl)
	if !ok {
		t.Fatal("reopened store missed the persisted entry")
	}
	if !reflect.DeepEqual(got2, rep) {
		t.Error("reopened store returned a different report")
	}
	if s2.Skipped() != 0 {
		t.Errorf("clean log skipped %d records", s2.Skipped())
	}
}

// Distinct configurations must get distinct digests (chips, plan,
// workload, and mode all participate), equal configurations equal
// ones, and the digest string must carry its version.
func TestDigest(t *testing.T) {
	sys, wl := testPoint(4)
	if d, d2 := Digest(sys, wl), Digest(sys, wl); d != d2 {
		t.Errorf("digest not deterministic: %s vs %s", d, d2)
	}
	if !strings.HasPrefix(Digest(sys, wl), fmt.Sprintf("v%d-", DigestVersion)) {
		t.Errorf("digest %q does not carry its version", Digest(sys, wl))
	}
	sys8 := sys
	sys8.Chips = 8
	if Digest(sys, wl) == Digest(sys8, wl) {
		t.Error("chip count did not reach the digest")
	}
	wlP := wl
	wlP.Mode = model.Prompt
	if Digest(sys, wl) == Digest(sys, wlP) {
		t.Error("mode did not reach the digest")
	}
	planned := sys
	planned.Options.SyncPlan = planned.Options.SyncPlan.With(0, hw.TopoRing)
	if Digest(sys, wl) == Digest(planned, wl) {
		t.Error("the collective plan (an unexported binding array) did not reach the digest")
	}
}

// A truncated trailing record — a writer killed mid-append — must be
// skipped on open: earlier entries stay served, the torn one misses
// and is re-simulated, and nothing is fatal.
func TestTruncatedTailSkipped(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sysA, wlA := testPoint(2)
	sysB, wlB := testPoint(4)
	if err := s.Append(sysA, wlA, mustRun(t, sysA, wlA)); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(sysB, wlB, mustRun(t, sysB, wlB)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	raw, err := os.ReadFile(logPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(logPath(dir), raw[:len(raw)-37], 0o666); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("torn log failed to open: %v", err)
	}
	if _, ok := s2.Load(sysA, wlA); !ok {
		t.Error("entry before the torn tail was lost")
	}
	if _, ok := s2.Load(sysB, wlB); ok {
		t.Error("torn entry was served")
	}
	if s2.Skipped() != 1 {
		t.Errorf("skipped %d records, want 1", s2.Skipped())
	}

	// The store stays appendable after the torn tail: the re-simulated
	// entry lands after the partial line and both reads still work on a
	// fresh open (the damaged line stays skipped, not resurrected).
	if err := s2.Append(sysB, wlB, mustRun(t, sysB, wlB)); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s3.Load(sysB, wlB); !ok {
		t.Error("re-appended entry after torn tail missed")
	}
}

// A corrupt record in the middle of the log — a flipped byte caught by
// the CRC — is skipped without affecting its neighbors.
func TestCorruptEntrySkipped(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sysA, wlA := testPoint(2)
	sysB, wlB := testPoint(4)
	if err := s.Append(sysA, wlA, mustRun(t, sysA, wlA)); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(sysB, wlB, mustRun(t, sysB, wlB)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	raw, err := os.ReadFile(logPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	// Flip one digit inside the first record's report payload without
	// breaking JSON syntax: corruption the CRC, not the parser, catches.
	idx := strings.Index(string(raw), `"Cycles":`)
	if idx < 0 {
		t.Fatal("no Cycles field in log")
	}
	for i := idx + len(`"Cycles":`); ; i++ {
		if raw[i] >= '1' && raw[i] <= '8' {
			raw[i]++
			break
		}
	}
	if err := os.WriteFile(logPath(dir), raw, 0o666); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Load(sysA, wlA); ok {
		t.Error("corrupt entry was served")
	}
	if _, ok := s2.Load(sysB, wlB); !ok {
		t.Error("entry after the corrupt record was lost")
	}
	if s2.Skipped() != 1 {
		t.Errorf("skipped %d records, want 1", s2.Skipped())
	}
}

// Records written under another digest version are invalidated
// wholesale: they are skipped on open and never served.
func TestDigestVersionMismatchInvalidates(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sys, wl := testPoint(2)
	if err := s.Append(sys, wl, mustRun(t, sys, wl)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	raw, err := os.ReadFile(logPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	doctored := strings.Replace(string(raw), fmt.Sprintf(`"v":%d`, DigestVersion), `"v":0`, 1)
	if doctored == string(raw) {
		t.Fatal("no version field found to doctor")
	}
	if err := os.WriteFile(logPath(dir), []byte(doctored), 0o666); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Load(sys, wl); ok {
		t.Error("entry from a foreign digest version was served")
	}
	if s2.Skipped() != 1 {
		t.Errorf("skipped %d records, want 1", s2.Skipped())
	}
}

// Reports on table-backed networks persist their per-edge wiring, so
// the log is self-contained: reopening re-registers the table (and a
// table record whose wiring does not reproduce its recorded digest is
// rejected).
func TestTableNetworkPersisted(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	edges := map[hw.Edge]hw.LinkClass{}
	for _, e := range [][2]int{{0, 1}, {1, 0}} {
		edges[hw.Edge{From: e[0], To: e[1]}] = hw.MIPI()
	}
	net, err := hw.TableNetwork(edges)
	if err != nil {
		t.Fatal(err)
	}
	sys, wl := testPoint(2)
	sys.HW.Network = net
	sys.HW.Topology = hw.TopoRing
	if err := s.Append(sys, wl, mustRun(t, sys, wl)); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(logPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"kind":"table"`) ||
		!strings.Contains(string(raw), net.TableDigest) {
		t.Fatal("table wiring was not persisted next to the entry")
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Skipped() != 0 {
		t.Errorf("reopen skipped %d records", s2.Skipped())
	}
	if got, ok := s2.Load(sys, wl); !ok || got.Cycles <= 0 {
		t.Error("table-backed entry missed after reopen")
	}
	if _, ok := hw.TableEdges(net.TableDigest); !ok {
		t.Error("table not registered after reopen")
	}

	// A table record with a forged digest must be skipped.
	doctored := strings.Replace(string(raw), net.TableDigest[:8], "deadbeef", 1)
	dir2 := t.TempDir()
	if err := os.MkdirAll(dir2, 0o777); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(logPath(dir2), []byte(doctored), 0o666); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir2)
	if err != nil {
		t.Fatal(err)
	}
	if s3.Skipped() == 0 {
		t.Error("forged table digest was accepted")
	}
}

// Appending the same configuration twice writes one record.
func TestAppendDeduplicates(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sys, wl := testPoint(2)
	rep := mustRun(t, sys, wl)
	if err := s.Append(sys, wl, rep); err != nil {
		t.Fatal(err)
	}
	size := s.SizeBytes()
	if err := s.Append(sys, wl, rep); err != nil {
		t.Fatal(err)
	}
	if s.SizeBytes() != size || s.Len() != 1 {
		t.Errorf("duplicate append grew the log (%d -> %d bytes, %d entries)",
			size, s.SizeBytes(), s.Len())
	}
}

// Two stores on one directory — two processes, in miniature — append
// concurrently without corrupting the log: a fresh open afterwards
// indexes every entry and skips nothing.
func TestConcurrentStores(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	wl := core.Workload{Model: model.TinyLlama42M(), Mode: model.Autoregressive}
	var wg sync.WaitGroup
	for i, s := range []*Store{s1, s2} {
		wg.Add(1)
		go func(s *Store, off int) {
			defer wg.Done()
			for n := 1; n <= 4; n++ {
				sys := core.DefaultSystem(n)
				sys.Options.CommTileBytes = 4096 + off // disjoint configs per writer
				rep, err := core.Run(sys, wl)
				if err != nil {
					t.Error(err)
					return
				}
				if err := s.Append(sys, wl, rep); err != nil {
					t.Error(err)
				}
			}
		}(s, i)
	}
	wg.Wait()

	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s3.Len() != 8 {
		t.Errorf("concurrent appends left %d entries, want 8", s3.Len())
	}
	if s3.Skipped() != 0 {
		t.Errorf("concurrent appends corrupted %d records", s3.Skipped())
	}
}

// The log is plain JSON lines: every record parses standalone (the
// property the corruption handling and external tooling rely on).
func TestLogIsJSONLines(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sys, wl := testPoint(2)
	if err := s.Append(sys, wl, mustRun(t, sys, wl)); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(logPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(strings.TrimRight(string(raw), "\n"), "\n") {
		var v map[string]any
		if err := json.Unmarshal([]byte(line), &v); err != nil {
			t.Errorf("line %d is not standalone JSON: %v", i, err)
		}
	}
}

// CompactTo must keep exactly the newest valid record per digest and
// drop duplicate and damaged lines: a store written by two concurrent
// handles (each blind to the other's appends) plus a torn final write
// compacts to one clean record per configuration, with the newest
// duplicate winning.
func TestCompactTo(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir) // scanned before s1 writes: will duplicate
	if err != nil {
		t.Fatal(err)
	}
	sysA, wlA := testPoint(2)
	sysB, wlB := testPoint(4)
	repA := mustRun(t, sysA, wlA)
	repB := mustRun(t, sysB, wlB)
	if err := s1.Append(sysA, wlA, repA); err != nil {
		t.Fatal(err)
	}
	// s2 re-appends the same digest with a doctored payload, so the
	// log holds two different records for it; the newest must win.
	newer := *repA
	newer.Cycles += 1000
	if err := s2.Append(sysA, wlA, &newer); err != nil {
		t.Fatal(err)
	}
	if err := s1.Append(sysB, wlB, repB); err != nil {
		t.Fatal(err)
	}
	s1.Close()
	s2.Close()

	// A writer dies mid-record: the log gains a torn tail.
	f, err := os.OpenFile(logPath(dir), os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"kind":"report","v":`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	src, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if src.Skipped() != 1 {
		t.Fatalf("source skipped %d records, want 1 (the torn tail)", src.Skipped())
	}

	if _, err := src.CompactTo(dir); err == nil {
		t.Fatal("compacting a store onto its own directory was accepted")
	}

	dstDir := t.TempDir()
	dst, err := src.CompactTo(dstDir)
	if err != nil {
		t.Fatal(err)
	}
	if dst.Len() != 2 {
		t.Errorf("compacted store holds %d entries, want 2", dst.Len())
	}
	if dst.SizeBytes() >= src.SizeBytes() {
		t.Errorf("compacted log (%d bytes) not smaller than source (%d bytes)",
			dst.SizeBytes(), src.SizeBytes())
	}
	gotA, ok := dst.Load(sysA, wlA)
	if !ok {
		t.Fatal("compacted store missed the duplicated entry")
	}
	if gotA.Cycles != newer.Cycles {
		t.Errorf("compacted store kept cycles %g, want the newest duplicate's %g",
			gotA.Cycles, newer.Cycles)
	}
	if gotB, ok := dst.Load(sysB, wlB); !ok || !reflect.DeepEqual(gotB, repB) {
		t.Error("compacted store lost or altered the second entry")
	}
	dst.Close()

	// The compacted log reopens clean: no skipped records, same index.
	re, err := Open(dstDir)
	if err != nil {
		t.Fatal(err)
	}
	if re.Skipped() != 0 {
		t.Errorf("compacted log skipped %d records on reopen, want 0", re.Skipped())
	}
	if re.Len() != 2 {
		t.Errorf("reopened compacted store holds %d entries, want 2", re.Len())
	}
}
