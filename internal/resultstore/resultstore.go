// Package resultstore is the persistent tier of the evaluation cache:
// a disk-backed, content-addressed, append-only log of core.Reports
// keyed by a canonical digest of the full (System, Workload)
// configuration. The in-process evalpool cache dies with the process,
// so every CLI invocation and CI run re-pays the whole exact-simulation
// bill; a Store opened on a cache directory makes sweeps incremental
// across runs — a configuration simulated once is never simulated
// again on that machine until the digest version changes.
//
// Design points:
//
//   - Content addressing reuses the canonicalization pattern of
//     hw.TableNetwork: a sha256 over an exact, deterministic rendering
//     of every field of the configuration. Two Points collide on one
//     entry exactly when the evalpool cache would have shared them.
//   - The digest is versioned (DigestVersion participates in the hash,
//     the digest string, the log filename, and every record), so any
//     format or semantics change invalidates old entries cleanly
//     instead of serving stale results.
//   - The log is append-only JSON lines with a per-record CRC. A
//     truncated or corrupt record — a crashed writer, a torn page — is
//     skipped (the configuration is simply re-simulated), never fatal.
//   - Reports whose system routes over an explicit per-edge table
//     (hw.NetTable) persist the table wiring alongside the entry, so a
//     cold process rehydrates the registry before serving table-backed
//     configurations.
//   - Errors are never persisted: a failed evaluation may be transient
//     (or fixed by the next release), so only successful reports reach
//     the log.
//
// Concurrency: a Store is safe for concurrent use, and two Stores (or
// two processes) appending to the same directory interleave cleanly —
// every record is one O_APPEND write of one complete line, and readers
// tolerate duplicate entries (content addressing makes them
// identical).
package resultstore

import (
	"bufio"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"mcudist/internal/core"
	"mcudist/internal/hw"
)

// DigestVersion is the version of the digest scheme and the log
// format. Bump it whenever the canonical rendering, the report schema,
// or the simulator's semantics change in a way that should invalidate
// cached results; old entries (and old log files, which carry the
// version in their name) are then ignored wholesale.
//
// v2: core.Workload gained the Batch field (decode micro-batch
// width), which changes the canonical %#v rendering of every
// workload.
//
// v3: hw.Params gained the Mem hierarchy (profile, DRAM channel,
// prefetch depth, SRAM banks, per-family tilings, DRAM energy), which
// changes the canonical rendering of every system.
const DigestVersion = 3

// Digest returns the canonical content address of one evaluation
// point: a versioned sha256 over an exact rendering of every System
// and Workload field (Go-syntax formatting reaches unexported fields
// like the collective plan's binding array, and float64 values render
// in shortest-round-trip form, so distinct bit patterns yield distinct
// digests). Two configurations digest equally exactly when the
// in-process evalpool cache would have shared their entry.
func Digest(sys core.System, wl core.Workload) string {
	h := sha256.New()
	fmt.Fprintf(h, "mcudist-resultstore/v%d\x00%#v\x00%#v\x00", DigestVersion, sys, wl)
	return fmt.Sprintf("v%d-%x", DigestVersion, h.Sum(nil))
}

// record is one line of the append-only log.
type record struct {
	// Kind is "report" or "table".
	Kind string `json:"kind"`
	// V is the digest/format version the record was written under;
	// records from other versions are ignored on read.
	V int `json:"v"`

	// Report records: the configuration digest, the CRC-32 (IEEE) of
	// the raw report bytes, and the report itself.
	Digest string          `json:"digest,omitempty"`
	CRC    uint32          `json:"crc,omitempty"`
	Report json.RawMessage `json:"report,omitempty"`

	// Table records: the hw.TableNetwork content digest and the edge
	// list needed to re-register it in a cold process.
	Table string      `json:"table,omitempty"`
	Edges []tableEdge `json:"edges,omitempty"`
}

// tableEdge is one wired edge of a persisted per-edge link table.
type tableEdge struct {
	From  int          `json:"from"`
	To    int          `json:"to"`
	Class hw.LinkClass `json:"class"`
}

// entryRef locates one report record inside the log.
type entryRef struct {
	offset int64
	length int
}

// Store is a handle on one cache directory's append-only result log.
// The zero value is not usable; construct with Open.
type Store struct {
	dir  string
	path string

	mu       sync.Mutex
	file     *os.File // O_APPEND write handle
	index    map[string]entryRef
	tables   map[string]bool // table digests already persisted
	skipped  int             // corrupt/truncated/foreign-version records ignored on open
	tornTail bool            // log ends mid-record (a writer died); heal before appending
}

// Open opens (creating if needed) the result store under dir. The
// whole log is scanned once: report records are indexed by digest,
// table records re-register their per-edge wirings, and records that
// are truncated, corrupt, or from another digest version are counted
// and skipped — a damaged log degrades to extra simulations, never to
// an error or a wrong result.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	path := filepath.Join(dir, fmt.Sprintf("results-v%d.log", DigestVersion))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	s := &Store{
		dir:    dir,
		path:   path,
		file:   f,
		index:  map[string]entryRef{},
		tables: map[string]bool{},
	}
	if err := s.scan(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// scan reads the existing log and builds the digest index.
func (s *Store) scan() error {
	f, err := os.Open(s.path)
	if err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var offset int64
	for {
		line, err := r.ReadBytes('\n')
		if len(line) == 0 && err != nil {
			break
		}
		length := len(line)
		complete := err == nil // a line without its newline is a torn tail write
		s.tornTail = !complete
		s.indexLine(line, offset, length, complete)
		offset += int64(length)
		if err != nil {
			break
		}
	}
	return nil
}

// indexLine parses one log line and folds it into the index; anything
// unparseable is skipped.
func (s *Store) indexLine(line []byte, offset int64, length int, complete bool) {
	var rec record
	if !complete || json.Unmarshal(line, &rec) != nil {
		s.skipped++
		return
	}
	if rec.V != DigestVersion {
		s.skipped++
		return
	}
	switch rec.Kind {
	case "report":
		if rec.Digest == "" || crc32.ChecksumIEEE(rec.Report) != rec.CRC {
			s.skipped++
			return
		}
		s.index[rec.Digest] = entryRef{offset: offset, length: length}
	case "table":
		edges := make(map[hw.Edge]hw.LinkClass, len(rec.Edges))
		for _, e := range rec.Edges {
			edges[hw.Edge{From: e.From, To: e.To}] = e.Class
		}
		net, err := hw.TableNetwork(edges)
		if err != nil || net.TableDigest != rec.Table {
			// The wiring does not reproduce its recorded digest: the
			// record is damaged. TableNetwork interned it under its
			// actual content digest, which no entry references.
			s.skipped++
			return
		}
		s.tables[rec.Table] = true
	default:
		s.skipped++
	}
}

// Load returns the persisted report for the configuration, or ok=false
// on a miss (no entry, damaged entry, or read failure — all of which
// the caller answers by simulating). The returned report carries the
// requested System and Workload verbatim, so it is indistinguishable
// from a fresh core.Run result, and must be treated as immutable like
// every cached report.
func (s *Store) Load(sys core.System, wl core.Workload) (*core.Report, bool) {
	digest := Digest(sys, wl)
	s.mu.Lock()
	ref, ok := s.index[digest]
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	f, err := os.Open(s.path)
	if err != nil {
		return nil, false
	}
	defer f.Close()
	line := make([]byte, ref.length)
	if _, err := io.ReadFull(io.NewSectionReader(f, ref.offset, int64(ref.length)), line); err != nil {
		return nil, false
	}
	var rec record
	if json.Unmarshal(line, &rec) != nil ||
		rec.Digest != digest || crc32.ChecksumIEEE(rec.Report) != rec.CRC {
		return nil, false
	}
	rep := &core.Report{}
	if json.Unmarshal(rec.Report, rep) != nil {
		return nil, false
	}
	// The requested configuration is the key; restating it exactly
	// sidesteps any serialization asymmetry in the System/Workload
	// echo (and makes the report self-describing for the caller).
	rep.System = sys
	rep.Workload = wl
	return rep, true
}

// Contains reports whether the configuration has a persisted entry.
func (s *Store) Contains(sys core.System, wl core.Workload) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[Digest(sys, wl)]
	return ok
}

// Append persists one successful evaluation. Configurations already
// present are not re-written (content addressing makes duplicates
// byte-equivalent), and a system routing over an explicit per-edge
// table writes the table wiring first so the entry is self-contained
// for cold processes. Errors are reported but callers typically treat
// a failed append as a cache-fill miss, not a failure of the
// evaluation itself.
func (s *Store) Append(sys core.System, wl core.Workload, rep *core.Report) error {
	digest := Digest(sys, wl)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.index[digest]; ok {
		return nil
	}
	if sys.HW.Network.Profile == hw.NetTable {
		if err := s.appendTableLocked(sys.HW.Network.TableDigest); err != nil {
			return err
		}
	}
	rb, err := json.Marshal(rep)
	if err != nil {
		return fmt.Errorf("resultstore: encode report: %w", err)
	}
	line, err := json.Marshal(record{
		Kind:   "report",
		V:      DigestVersion,
		Digest: digest,
		CRC:    crc32.ChecksumIEEE(rb),
		Report: rb,
	})
	if err != nil {
		return fmt.Errorf("resultstore: encode record: %w", err)
	}
	offset, err := s.writeLineLocked(line)
	if err != nil {
		return err
	}
	s.index[digest] = entryRef{offset: offset, length: len(line) + 1}
	return nil
}

// appendTableLocked persists the per-edge wiring registered under the
// given hw table digest, once per store lifetime.
func (s *Store) appendTableLocked(tableDigest string) error {
	if s.tables[tableDigest] {
		return nil
	}
	edges, ok := hw.TableEdges(tableDigest)
	if !ok {
		return fmt.Errorf("resultstore: per-edge table %q is not registered", tableDigest)
	}
	rec := record{Kind: "table", V: DigestVersion, Table: tableDigest}
	for e, c := range edges {
		rec.Edges = append(rec.Edges, tableEdge{From: e.From, To: e.To, Class: c})
	}
	// Canonical edge order, matching hw.TableNetwork's digest walk.
	sortEdges(rec.Edges)
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("resultstore: encode table: %w", err)
	}
	if _, err := s.writeLineLocked(line); err != nil {
		return err
	}
	s.tables[tableDigest] = true
	return nil
}

func sortEdges(edges []tableEdge) {
	for i := 1; i < len(edges); i++ {
		for j := i; j > 0 && (edges[j].From < edges[j-1].From ||
			(edges[j].From == edges[j-1].From && edges[j].To < edges[j-1].To)); j-- {
			edges[j], edges[j-1] = edges[j-1], edges[j]
		}
	}
}

// writeLineLocked appends one record line in a single write (atomic
// under O_APPEND, so concurrent stores on the same directory never
// interleave partial records) and returns the record's offset. If the
// scan found the log ending mid-record — a writer died with its line
// half flushed — the first append leads with a newline so the damaged
// partial stays its own (skipped) line instead of swallowing this one.
func (s *Store) writeLineLocked(line []byte) (int64, error) {
	offset, err := s.file.Seek(0, io.SeekEnd)
	if err != nil {
		return 0, fmt.Errorf("resultstore: %w", err)
	}
	buf := make([]byte, 0, len(line)+2)
	if s.tornTail {
		buf = append(buf, '\n')
		offset++
	}
	buf = append(append(buf, line...), '\n')
	if _, err := s.file.Write(buf); err != nil {
		return 0, fmt.Errorf("resultstore: %w", err)
	}
	s.tornTail = false
	return offset, nil
}

// CompactTo rewrites the store into dstDir, keeping only the newest
// valid record per digest (duplicates from concurrent writers, corrupt
// lines, torn tails, and foreign-version records are all dropped) and
// each referenced per-edge table wiring once. The source store is not
// modified — CI swaps the compacted directory in place of the old one
// — and the returned store is open for use. Records are written in
// digest order, so compacting equal contents yields byte-identical
// logs. Compacting a store onto its own directory is rejected.
func (s *Store) CompactTo(dstDir string) (*Store, error) {
	if same, err := sameDirAs(s.dir, dstDir); err != nil {
		return nil, err
	} else if same {
		return nil, fmt.Errorf("resultstore: compact target %q is the store's own directory", dstDir)
	}

	s.mu.Lock()
	digests := make([]string, 0, len(s.index))
	refs := make(map[string]entryRef, len(s.index))
	for d, ref := range s.index {
		digests = append(digests, d)
		refs[d] = ref
	}
	tables := make([]string, 0, len(s.tables))
	for t := range s.tables {
		tables = append(tables, t)
	}
	s.mu.Unlock()
	sort.Strings(digests)
	sort.Strings(tables)

	dst, err := Open(dstDir)
	if err != nil {
		return nil, err
	}
	src, err := os.Open(s.path)
	if err != nil {
		dst.Close()
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	defer src.Close()

	dst.mu.Lock()
	defer dst.mu.Unlock()
	for _, t := range tables {
		// The scan re-registered every persisted wiring, so the edges
		// are available to re-encode.
		if err := dst.appendTableLocked(t); err != nil {
			dst.file.Close()
			return nil, err
		}
	}
	for _, digest := range digests {
		ref := refs[digest]
		line := make([]byte, ref.length)
		if _, err := io.ReadFull(io.NewSectionReader(src, ref.offset, int64(ref.length)), line); err != nil {
			dst.file.Close()
			return nil, fmt.Errorf("resultstore: compact read %s: %w", digest, err)
		}
		// Re-validate before copying: the record was clean at scan
		// time, but the bytes travel once more.
		var rec record
		if json.Unmarshal(line, &rec) != nil || rec.Kind != "report" ||
			rec.Digest != digest || crc32.ChecksumIEEE(rec.Report) != rec.CRC {
			continue
		}
		trimmed := line
		if n := len(trimmed); n > 0 && trimmed[n-1] == '\n' {
			trimmed = trimmed[:n-1]
		}
		if _, ok := dst.index[digest]; ok {
			continue
		}
		offset, err := dst.writeLineLocked(trimmed)
		if err != nil {
			dst.file.Close()
			return nil, err
		}
		dst.index[digest] = entryRef{offset: offset, length: len(trimmed) + 1}
	}
	return dst, nil
}

// sameDirAs reports whether two directory paths name the same place on
// disk (lexically after Abs, or the same inode when both exist).
func sameDirAs(a, b string) (bool, error) {
	aa, err := filepath.Abs(a)
	if err != nil {
		return false, fmt.Errorf("resultstore: %w", err)
	}
	ab, err := filepath.Abs(b)
	if err != nil {
		return false, fmt.Errorf("resultstore: %w", err)
	}
	if aa == ab {
		return true, nil
	}
	fa, errA := os.Stat(aa)
	fb, errB := os.Stat(ab)
	if errA != nil || errB != nil {
		return false, nil // at most one exists; they cannot be the same
	}
	return os.SameFile(fa, fb), nil
}

// Len returns the number of distinct persisted configurations.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Skipped returns the number of records ignored when the log was
// opened: truncated or corrupt lines and records from other digest
// versions.
func (s *Store) Skipped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.skipped
}

// SizeBytes returns the current size of the log file on disk.
func (s *Store) SizeBytes() int64 {
	fi, err := os.Stat(s.path)
	if err != nil {
		return 0
	}
	return fi.Size()
}

// Dir returns the cache directory the store was opened on.
func (s *Store) Dir() string { return s.dir }

// Close releases the append handle. Load keeps working (it opens the
// log per call), but Append fails after Close.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.file.Close()
}
