package deploy

import (
	"mcudist/internal/hw"
	"mcudist/internal/mem"
	"mcudist/internal/model"
	"mcudist/internal/partition"
)

// DefaultCommTileBytes bounds the L2 staging for inbound/outbound
// partial tensors: larger payloads are exchanged in tiles of this
// size, so staging does not grow with sequence length.
const DefaultCommTileBytes = 64 * 1024

// queryRows returns the number of token rows processed per forward:
// the decode micro-batch width in autoregressive mode (one row per
// concurrent session, 1 for the paper's single-session step), S in
// prompt mode.
func queryRows(mode model.Mode, s, batch int) int {
	if mode == model.Autoregressive {
		if batch > 1 {
			return batch
		}
		return 1
	}
	return s
}

// activationBytes estimates the peak per-block activation storage of
// one chip under the plan: the broadcast input, the chip's Q/K/V
// slices, the larger of one head's score matrix and the FFN
// intermediate slice, the partial output staging, and the block
// output.
func activationBytes(p *partition.Plan, chip int, mode model.Mode, s, batch int) int {
	cfg := p.Config
	sq := queryRows(mode, s, batch)
	x := sq * cfg.E * cfg.ActBytes
	qkv := sq * (p.PSlice(chip) + 2*p.KVWidth(chip)) * cfg.ActBytes
	scores := sq * s * cfg.ActBytes
	ffnInter := sq * p.FWidth(chip) * cfg.ActBytes
	inner := scores
	if ffnInter > inner {
		inner = ffnInter
	}
	partial := sq * cfg.E * cfg.ReduceBytes
	out := sq * cfg.E * cfg.ActBytes
	return x + qkv + inner + partial + out
}

// commStagingBytes is the bounded L2 staging for collective payloads.
func commStagingBytes(p *partition.Plan, mode model.Mode, s, batch int, commTile int) int {
	sq := queryRows(mode, s, batch)
	staging := 0
	for _, payload := range []int64{p.ReducePayloadBytes(sq), p.BcastPayloadBytes(sq)} {
		if payload > int64(commTile) {
			staging += commTile
		} else {
			staging += int(payload)
		}
	}
	return staging
}

// kvResidentBytes is the chip's resident KV-cache requirement: its
// head slices for every block it participates in (decoders only),
// once per concurrently batched session — KV pressure is the honest
// cost of continuous batching and pushes tier selection down as the
// micro-batch widens.
func kvResidentBytes(p *partition.Plan, chip int, s, batch int) int {
	if p.Config.Arch != model.Decoder {
		return 0
	}
	sessions := 1
	if batch > 1 {
		sessions = batch
	}
	return p.KVBytesPerBlockOnChip(chip, s) * p.BlocksOnChip(chip) * sessions
}

// footprintAt builds the L2 footprint of a chip under a candidate
// weight-residency multiple: weightBlocks = how many blocks' weight
// slices are held simultaneously (0 = streamed tile only).
func footprintAt(p *partition.Plan, chip int, mode model.Mode, s, batch, weightBlocks, commTile int, hwp hw.Params) mem.Footprint {
	wb := p.BlockWeightBytesOnChip(chip) * weightBlocks
	if weightBlocks == 0 {
		// Streaming needs a double-buffered weight tile in L2 — or,
		// under the hierarchical memory model, the prefetch engine's
		// stream buffer of PrefetchDepth+1 tile slots.
		wb = 2 * streamTileBytes(hwp)
		if hwp.Mem.Enabled() {
			wb = streamBufferBytes(p, hwp)
		}
	}
	return mem.Footprint{
		WeightBytes:     wb,
		KVBytes:         kvResidentBytes(p, chip, s, batch),
		ActivationBytes: activationBytes(p, chip, mode, s, batch),
		CommBytes:       commStagingBytes(p, mode, s, batch, commTile),
	}
}

// streamTileBytes is the L2 tile used when weights stream from L3.
func streamTileBytes(hwp hw.Params) int {
	t := hwp.Chip.L1Bytes / 2
	if t <= 0 {
		t = 4096
	}
	return t
}

// streamBufferBytes sizes the hierarchical model's L2 stream buffer:
// PrefetchDepth+1 slots (one active tile, the rest in flight) of the
// largest tile either layer family pins — the full slot when a family
// auto-sizes. Pinned tiles larger than a slot are capped here; the
// planner rejects them with a real error when it builds the plans.
func streamBufferBytes(p *partition.Plan, hwp hw.Params) int {
	slot := streamTileBytes(hwp)
	tile := 0
	for _, ffn := range []bool{false, true} {
		n, k := hwp.Mem.TileFor(ffn)
		fam := slot
		if n > 0 && k > 0 {
			if fam = n * k * p.Config.WeightBytes; fam > slot {
				fam = slot
			}
		}
		if fam > tile {
			tile = fam
		}
	}
	return (hwp.Mem.PrefetchDepth + 1) * tile
}

// chooseTier picks the best placement the chip's L2 budget allows.
func chooseTier(p *partition.Plan, chip int, mode model.Mode, s, batch, commTile int, hwp hw.Params) (Tier, mem.Footprint) {
	budget := hwp.UsableL2Bytes()
	blocks := p.BlocksOnChip(chip)
	if fp := footprintAt(p, chip, mode, s, batch, blocks, commTile, hwp); fp.FitsIn(budget) {
		return TierResidentAll, fp
	}
	if fp := footprintAt(p, chip, mode, s, batch, 2, commTile, hwp); blocks > 1 && fp.FitsIn(budget) {
		return TierDoubleBuffered, fp
	}
	if fp := footprintAt(p, chip, mode, s, batch, 1, commTile, hwp); fp.FitsIn(budget) {
		return TierResidentSingle, fp
	}
	return TierStreamed, footprintAt(p, chip, mode, s, batch, 0, commTile, hwp)
}
