package deploy

import (
	"testing"

	"mcudist/internal/hw"
	"mcudist/internal/model"
)

func TestGQADeploymentMACsConserved(t *testing.T) {
	cfg := model.SmolLM135M()
	for _, mode := range []model.Mode{model.Autoregressive, model.Prompt} {
		s := 64
		single := mustDeploy(t, mustTP(t, cfg, 1), mode, s)
		singleMACs := single.MHSACost(0).MACs + single.FCCost(0).MACs
		d := mustDeploy(t, mustTP(t, cfg, 3), mode, s)
		var total int64
		for c := range d.Chips {
			total += d.MHSACost(c).MACs + d.FCCost(c).MACs
		}
		if total != singleMACs {
			t.Errorf("%v: distributed MACs %d != single %d", mode, total, singleMACs)
		}
	}
}

func TestGQAWeightBytesConserved(t *testing.T) {
	cfg := model.SmolLM135M()
	d := mustDeploy(t, mustTP(t, cfg, 3), model.Autoregressive, 64)
	var weightBytes int64
	for c := range d.Chips {
		weightBytes += d.MHSACost(c).WeightBytes + d.FCCost(c).WeightBytes
	}
	if weightBytes != int64(cfg.BlockWeightBytes()) {
		t.Errorf("per-block weights touched %d, want %d", weightBytes, cfg.BlockWeightBytes())
	}
}

func TestGQAKVTrafficSmaller(t *testing.T) {
	gqa := model.SmolLM135M()
	mha := gqa
	mha.KVHeads = 0
	// Same chip count: the GQA chip's MHSA phase moves fewer bytes
	// (smaller K/V projections and KV cache reads).
	dg := mustDeploy(t, mustTP(t, gqa, 3), model.Autoregressive, 128)
	dm := mustDeploy(t, mustTP(t, mha, 3), model.Autoregressive, 128)
	if dg.MHSACost(0).TotalL2L1Bytes() >= dm.MHSACost(0).TotalL2L1Bytes() {
		t.Errorf("GQA MHSA bytes %d not below MHA %d",
			dg.MHSACost(0).TotalL2L1Bytes(), dm.MHSACost(0).TotalL2L1Bytes())
	}
}

func TestDeployOptionsNoSpill(t *testing.T) {
	cfg := model.MobileBERT512()
	p := mustTP(t, cfg, 1)
	with, err := New(p, hw.Siracusa(), model.Prompt, 268, Options{})
	if err != nil {
		t.Fatal(err)
	}
	without, err := New(p, hw.Siracusa(), model.Prompt, 268, Options{NoActivationSpill: true})
	if err != nil {
		t.Fatal(err)
	}
	if with.Chips[0].Tier != TierStreamed {
		t.Fatalf("expected streamed tier, got %v", with.Chips[0].Tier)
	}
	if without.Chips[0].ExposedMHSABytes >= with.Chips[0].ExposedMHSABytes {
		t.Error("disabling spill did not shrink exposed L3 bytes")
	}
	// Weight traffic is identical either way.
	if with.TotalL3BytesPerForward() != without.TotalL3BytesPerForward() {
		t.Error("spill option changed weight traffic")
	}
}

func TestStreamedExposureCoversWeightsAndSpill(t *testing.T) {
	cfg := model.TinyLlama42M()
	d := mustDeploy(t, mustTP(t, cfg, 1), model.Autoregressive, 128)
	cd := d.Chips[0]
	if cd.Tier != TierStreamed {
		t.Fatalf("tier %v", cd.Tier)
	}
	exposed := cd.ExposedMHSABytes + cd.ExposedFCBytes
	if exposed <= cd.StreamBytesPerBlock {
		t.Errorf("exposure %d should exceed weights %d (spill missing)", exposed, cd.StreamBytesPerBlock)
	}
	// The MHSA/FC weight shares must partition the block's weights.
	mhsaW := phaseWeightBytes(cd.MHSA)
	fcW := phaseWeightBytes(cd.FC)
	if mhsaW+fcW != cd.StreamBytesPerBlock {
		t.Errorf("phase weights %d+%d != block %d", mhsaW, fcW, cd.StreamBytesPerBlock)
	}
}

func TestResidentSingleBlockLoad(t *testing.T) {
	cfg := model.TinyLlama42M()
	d := mustDeploy(t, mustTP(t, cfg, 4), model.Autoregressive, 128)
	for _, cd := range d.Chips {
		if cd.Tier != TierResidentSingle {
			t.Fatalf("tier %v", cd.Tier)
		}
		if cd.BlockLoadBytes != cd.StreamBytesPerBlock {
			t.Errorf("block load %d != stream %d", cd.BlockLoadBytes, cd.StreamBytesPerBlock)
		}
		if cd.ExposedMHSABytes != 0 || cd.ExposedFCBytes != 0 {
			t.Error("resident-single should not stream inside phases")
		}
	}
}

func TestContextGrowthDegradesTier(t *testing.T) {
	// At 8 chips, TinyLlama double-buffers at context 128 but the KV
	// cache at context 4096 no longer leaves room for two weight
	// buffers.
	cfg := model.TinyLlama42M()
	short := mustDeploy(t, mustTP(t, cfg, 8), model.Autoregressive, 128)
	long := mustDeploy(t, mustTP(t, cfg, 8), model.Autoregressive, 4096)
	if short.WorstTier() != TierDoubleBuffered {
		t.Fatalf("short context tier %v", short.WorstTier())
	}
	if long.WorstTier() >= TierDoubleBuffered {
		t.Fatalf("long context kept tier %v; KV growth should degrade it", long.WorstTier())
	}
}
