package deploy

import (
	"mcudist/internal/hw"
	"mcudist/internal/kernels"
	"mcudist/internal/model"
	"mcudist/internal/partition"
)

// elem converts the model's element sizes for the kernel models.
func elem(cfg model.Config) kernels.Elem {
	return kernels.Elem{Weight: cfg.WeightBytes, Act: cfg.ActBytes, Acc: cfg.AccBytes, Reduce: cfg.ReduceBytes}
}

// mhsaOps returns the compute sequence of one chip's partial MHSA for
// one block under the tensor-parallel plan: QKV projections over the
// chip's head slice, RoPE, KV append, per-head attention, and the
// partial output projection (plus requantization of the partial when
// partials are exchanged in int8).
func mhsaOps(p *partition.Plan, chip int, mode model.Mode, s, batch int, hwp hw.Params) []kernels.Cost {
	cfg := p.Config
	e := elem(cfg)
	sq := queryRows(mode, s, batch)
	ps := p.PSlice(chip)
	kvw := p.KVWidth(chip)
	hd := cfg.HeadDim()
	heads := ps / hd

	var ops []kernels.Cost
	// Q projection over the chip's query heads, K/V over its KV
	// heads (narrower under GQA).
	ops = append(ops, kernels.Linear(hwp, sq, cfg.E, ps, e))
	ops = append(ops, kernels.Linear(hwp, sq, cfg.E, kvw, e))
	ops = append(ops, kernels.Linear(hwp, sq, cfg.E, kvw, e))
	if cfg.RoPE {
		ops = append(ops, kernels.RoPE(hwp, sq, ps, e), kernels.RoPE(hwp, sq, kvw, e))
	}
	if cfg.Arch == model.Decoder {
		ops = append(ops, kernels.KVAppend(hwp, sq, kvw, e))
	}
	// Per-head attention over context length s.
	for h := 0; h < heads; h++ {
		ops = append(ops,
			kernels.MatMulAct(hwp, sq, hd, s, e), // scores = Q·Kᵀ
			kernels.Softmax(hwp, sq, s, e),
			kernels.MatMulAct(hwp, sq, s, hd, e), // context = A·V
		)
	}
	// Partial output projection: sq×PSlice · PSlice×E.
	ops = append(ops, kernels.Linear(hwp, sq, ps, cfg.E, e))
	if cfg.ReduceBytes < cfg.AccBytes {
		ops = append(ops, kernels.Requant(hwp, sq, cfg.E, e))
	}
	return ops
}

// fcOps returns one chip's partial FC sequence: the F-sliced first
// linear (plus gate for gated FFNs), activation, and the partial
// second linear.
func fcOps(p *partition.Plan, chip int, mode model.Mode, s, batch int, hwp hw.Params) []kernels.Cost {
	cfg := p.Config
	e := elem(cfg)
	sq := queryRows(mode, s, batch)
	fw := p.FWidth(chip)

	var ops []kernels.Cost
	ops = append(ops, kernels.Linear(hwp, sq, cfg.E, fw, e))
	if cfg.FFN == model.FFNGated {
		ops = append(ops, kernels.Linear(hwp, sq, cfg.E, fw, e))
		// SiLU + elementwise gate product.
		ops = append(ops, kernels.GELU(hwp, sq, fw, e), kernels.ResidualAdd(hwp, sq, fw, e))
	} else {
		ops = append(ops, kernels.GELU(hwp, sq, fw, e))
	}
	ops = append(ops, kernels.Linear(hwp, sq, fw, cfg.E, e))
	if cfg.ReduceBytes < cfg.AccBytes {
		ops = append(ops, kernels.Requant(hwp, sq, cfg.E, e))
	}
	return markFFN(ops)
}

// markFFN tags a kernel sequence as the feed-forward layer family so
// the memory-hierarchy planner assigns it the FFN tiling. In place;
// returns ops for call-site chaining.
func markFFN(ops []kernels.Cost) []kernels.Cost {
	for i := range ops {
		ops[i].FFN = true
	}
	return ops
}

// reduceAddOp is the accumulation a parent performs per received
// partial tile during the all-reduce.
func reduceAddOp(cfg model.Config, mode model.Mode, s, batch int, hwp hw.Params) kernels.Cost {
	return kernels.ReduceAdd(hwp, queryRows(mode, s, batch), cfg.E, elem(cfg))
}

// rootSyncOps is the serial work of the root after the reduce: merge
// the residual stream, normalize, and requantize for the broadcast.
func rootSyncOps(cfg model.Config, mode model.Mode, s, batch int, hwp hw.Params) []kernels.Cost {
	sq := queryRows(mode, s, batch)
	e := elem(cfg)
	return []kernels.Cost{
		kernels.ResidualAdd(hwp, sq, cfg.E, e),
		kernels.Norm(hwp, sq, cfg.E, e),
		kernels.Requant(hwp, sq, cfg.E, e),
	}
}

// replicatedChipOps models the weight-replicated baseline: the chip
// processes its sequence rows against the full model (all heads, full
// F). rows == 0 means the chip idles.
func replicatedChipOps(p *partition.Plan, rows int, s int, hwp hw.Params) []kernels.Cost {
	if rows == 0 {
		return nil
	}
	cfg := p.Config
	e := elem(cfg)
	var ops []kernels.Cost
	ops = append(ops, kernels.Linear(hwp, rows, cfg.E, cfg.P, e))
	ops = append(ops, kernels.Linear(hwp, rows, cfg.E, cfg.KVDim(), e))
	ops = append(ops, kernels.Linear(hwp, rows, cfg.E, cfg.KVDim(), e))
	if cfg.RoPE {
		ops = append(ops, kernels.RoPE(hwp, rows, cfg.P, e), kernels.RoPE(hwp, rows, cfg.KVDim(), e))
	}
	hd := cfg.HeadDim()
	for h := 0; h < cfg.H; h++ {
		ops = append(ops,
			kernels.MatMulAct(hwp, rows, hd, s, e),
			kernels.Softmax(hwp, rows, s, e),
			kernels.MatMulAct(hwp, rows, s, hd, e),
		)
	}
	ops = append(ops, kernels.Linear(hwp, rows, cfg.P, cfg.E, e))
	ops = append(ops, kernels.ResidualAdd(hwp, rows, cfg.E, e), kernels.Norm(hwp, rows, cfg.E, e))
	// Everything from here on is the feed-forward sublayer: the fused
	// per-chip list still carries the family split for the
	// memory-hierarchy tiler.
	var ffn []kernels.Cost
	ffn = append(ffn, kernels.Linear(hwp, rows, cfg.E, cfg.F, e))
	if cfg.FFN == model.FFNGated {
		ffn = append(ffn, kernels.Linear(hwp, rows, cfg.E, cfg.F, e))
		ffn = append(ffn, kernels.GELU(hwp, rows, cfg.F, e), kernels.ResidualAdd(hwp, rows, cfg.F, e))
	} else {
		ffn = append(ffn, kernels.GELU(hwp, rows, cfg.F, e))
	}
	ffn = append(ffn, kernels.Linear(hwp, rows, cfg.F, cfg.E, e))
	ffn = append(ffn, kernels.ResidualAdd(hwp, rows, cfg.E, e), kernels.Norm(hwp, rows, cfg.E, e))
	return append(ops, markFFN(ffn)...)
}

// singleChipBlockOps is the whole-block sequence on one chip (used by
// the pipeline baseline stages and equivalent to the 1-chip
// tensor-parallel plan).
func singleChipBlockOps(cfg model.Config, mode model.Mode, s, batch int, hwp hw.Params) []kernels.Cost {
	p, err := partition.NewTensorParallel(cfg, 1)
	if err != nil {
		panic(err)
	}
	ops := mhsaOps(p, 0, mode, s, batch, hwp)
	ops = append(ops, rootSyncOps(cfg, mode, s, batch, hwp)...)
	ops = append(ops, fcOps(p, 0, mode, s, batch, hwp)...)
	ops = append(ops, rootSyncOps(cfg, mode, s, batch, hwp)...)
	return ops
}

// sumCosts aggregates a kernel sequence.
func sumCosts(ops []kernels.Cost) kernels.Cost {
	var total kernels.Cost
	total.Name = "total"
	for _, op := range ops {
		total = total.Add(op)
	}
	return total
}
