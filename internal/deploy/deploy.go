// Package deploy is the deployment planner (the role Deeploy plays in
// the paper): given a partition plan, a hardware description, and a
// workload, it decides weight placement (which residency tier each
// chip runs in), sizes the L2 footprint, and lowers each block into
// per-chip kernel sequences plus collective operations for the
// performance simulator.
package deploy

import (
	"fmt"

	"mcudist/internal/collective"
	"mcudist/internal/hw"
	"mcudist/internal/kernels"
	"mcudist/internal/mem"
	"mcudist/internal/memsim"
	"mcudist/internal/model"
	"mcudist/internal/partition"
)

// Options tune planner behaviour; the zero value is the paper's
// accounting.
type Options struct {
	// PrefetchExposed charges the double-buffered weight prefetch's
	// residual time (transfer beyond the block's other work) to
	// runtime instead of hiding it — the accounting ablation.
	PrefetchExposed bool
	// CommTileBytes overrides the collective staging tile
	// (DefaultCommTileBytes when zero).
	CommTileBytes int
	// NoActivationSpill disables the streamed-tier activation spill
	// to L3 — the ablation that isolates how much of the single-chip
	// penalty comes from L3-resident intermediate tensors.
	NoActivationSpill bool
	// DegradedLinkFactor, when positive, scales the bandwidth of
	// every link touching DegradedLinkChip (failure injection: 0.25
	// models a link renegotiated to quarter rate; 0 disables).
	DegradedLinkFactor float64
	// DegradedLinkChip selects the chip whose links degrade.
	DegradedLinkChip int
	// SyncPlan binds synchronization classes (prefill vs decode, MHSA
	// vs FFN, the replicated exchanges) to interconnect topologies,
	// overriding HW.Topology per class — the per-sync collective plan.
	// The zero value executes every synchronization on the run
	// topology, byte-identical to the single-topology simulator. It
	// rides in Options (a comparable value) so it reaches both the
	// evalpool cache key and the simulator without extra plumbing; the
	// pipeline strategy has no collective synchronizations and ignores
	// it.
	SyncPlan collective.Plan
	// StragglerFactor, when positive, scales one chip's compute
	// throughput (thermal throttling / process variation: 0.5 runs
	// StragglerChip at half speed; 0 disables). Under the
	// tensor-parallel scheme every synchronization waits for the
	// straggler.
	StragglerFactor float64
	// StragglerChip selects the throttled chip.
	StragglerChip int
}

// ChipDeploy is the lowered program of one chip.
type ChipDeploy struct {
	Chip      int
	Tier      Tier
	Footprint mem.Footprint
	// MHSA and FC are the block-phase kernel sequences.
	MHSA []kernels.Cost
	FC   []kernels.Cost
	// MHSAStream / FCStream are the memory-hierarchy tile plans of the
	// phase sequences, index-parallel to MHSA / FC (nil entries for
	// kernels that stream no tileable weights). Populated only when
	// the platform enables the hierarchical memory model and the chip
	// runs in the streamed tier; the simulator then executes those
	// kernels tile-by-tile through the DRAM channel instead of the
	// flat exposed-bytes accounting.
	MHSAStream []*memsim.Plan
	FCStream   []*memsim.Plan
	// StreamBytesPerBlock is the weight traffic L3→L2 this chip
	// incurs per block execution in steady state (zero for
	// TierResidentAll).
	StreamBytesPerBlock int64
	// ExposedMHSABytes / ExposedFCBytes are the synchronous L3
	// transfers inside each phase under TierStreamed: the phase's
	// weight share plus the activation spill (with L2 reduced to a
	// staging buffer, every activation tensor lives in L3; tiled
	// weights force operand re-fetches).
	ExposedMHSABytes int64
	ExposedFCBytes   int64
	// BlockLoadBytes is the synchronous between-blocks weight load
	// under TierResidentSingle.
	BlockLoadBytes int64
	// Blocks is how many blocks this chip executes per forward.
	Blocks int
	// SeqRows is the number of token rows this chip processes
	// (differs per chip only under the Replicated baseline).
	SeqRows int
}

// Deployment is the complete lowered program for the multi-chip
// system.
type Deployment struct {
	Plan    *partition.Plan
	HW      hw.Params
	Mode    model.Mode
	SeqLen  int
	Options Options
	// Batch is the decode micro-batch width (1 = the paper's
	// single-session step): how many concurrent sessions share this
	// lowering's weight reads, kernel launches, and collectives.
	Batch int

	Chips []ChipDeploy
	// ReduceAdd is the per-received-tile accumulation cost during the
	// all-reduce (tensor-parallel and replicated strategies).
	ReduceAdd kernels.Cost
	// RootSync is the root's serial residual+norm+requant work per
	// synchronization.
	RootSync []kernels.Cost
	// ReducePayload/BcastPayload are per-hop collective payloads.
	ReducePayload int64
	BcastPayload  int64
}

// New lowers a partition plan onto the hardware for the given
// workload, a single-session step (micro-batch width 1).
func New(p *partition.Plan, hwp hw.Params, mode model.Mode, s int, opts Options) (*Deployment, error) {
	return NewBatched(p, hwp, mode, s, 1, opts)
}

// NewBatched lowers a partition plan for a decode micro-batch of
// `batch` concurrent sessions (each at context length s); batch <= 1
// is the single-session lowering New produces. Batching widens every
// GEMM's row dimension while weight bytes, kernel setup, and per-hop
// link setup stay fixed — the continuous-batching amortization — and
// multiplies the resident KV footprint, which is the pressure that
// eventually pushes chips off the resident tiers.
func NewBatched(p *partition.Plan, hwp hw.Params, mode model.Mode, s, batch int, opts Options) (*Deployment, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := hwp.Validate(); err != nil {
		return nil, err
	}
	if s <= 0 {
		return nil, fmt.Errorf("deploy: sequence length %d must be positive", s)
	}
	if batch < 1 {
		batch = 1
	}
	if batch > 1 && mode != model.Autoregressive {
		return nil, fmt.Errorf("deploy: micro-batch width %d needs autoregressive mode", batch)
	}
	if mode == model.Autoregressive && p.Config.Arch != model.Decoder {
		return nil, fmt.Errorf("deploy: autoregressive mode needs a decoder, %s is an %s",
			p.Config.Name, p.Config.Arch)
	}
	commTile := opts.CommTileBytes
	if commTile == 0 {
		commTile = DefaultCommTileBytes
	}

	d := &Deployment{
		Plan:          p,
		HW:            hwp,
		Mode:          mode,
		SeqLen:        s,
		Options:       opts,
		Batch:         batch,
		ReduceAdd:     reduceAddOp(p.Config, mode, s, batch, hwp),
		RootSync:      rootSyncOps(p.Config, mode, s, batch, hwp),
		ReducePayload: p.ReducePayloadBytes(queryRows(mode, s, batch)),
		BcastPayload:  p.BcastPayloadBytes(queryRows(mode, s, batch)),
	}

	// Chips with the same plan-level shares lower to identical
	// deployments, so each distinct signature is lowered once and the
	// ChipDeploy is reused (the op slices are read-only downstream).
	// Uniform plans lower one chip instead of p.Chips.
	var split []partition.Range
	if p.Strategy == partition.Replicated {
		split = p.SeqSplit(queryRows(mode, s, batch))
	}
	seen := make(map[chipSig]int, 4)
	for chip := 0; chip < p.Chips; chip++ {
		sig := chipSig{
			pslice:      p.PSlice(chip),
			kvw:         p.KVWidth(chip),
			fw:          p.FWidth(chip),
			blocks:      p.BlocksOnChip(chip),
			blockWeight: p.BlockWeightBytesOnChip(chip),
			kvPerBlock:  p.KVBytesPerBlockOnChip(chip, s),
		}
		if split != nil {
			sig.rows = split[chip].Len()
		}
		if prev, ok := seen[sig]; ok {
			cd := d.Chips[prev]
			cd.Chip = chip
			d.Chips = append(d.Chips, cd)
			continue
		}
		cd, err := lowerChip(p, chip, hwp, mode, s, batch, commTile, opts)
		if err != nil {
			return nil, err
		}
		seen[sig] = len(d.Chips)
		d.Chips = append(d.Chips, cd)
	}
	return d, nil
}

// chipSig captures every per-chip input of lowerChip: the chip's
// tensor-parallel shares, its block placement and weight bytes, its
// per-block KV requirement, and (replicated strategy only) its
// sequence-split rows. Equal signatures lower identically.
type chipSig struct {
	pslice, kvw, fw, blocks, blockWeight, kvPerBlock, rows int
}

func lowerChip(p *partition.Plan, chip int, hwp hw.Params, mode model.Mode, s, batch, commTile int, opts Options) (ChipDeploy, error) {
	tier, fp := chooseTier(p, chip, mode, s, batch, commTile, hwp)
	cd := ChipDeploy{
		Chip:      chip,
		Tier:      tier,
		Footprint: fp,
		Blocks:    p.BlocksOnChip(chip),
		SeqRows:   queryRows(mode, s, batch),
	}
	if tier != TierResidentAll {
		cd.StreamBytesPerBlock = int64(p.BlockWeightBytesOnChip(chip))
	}

	switch p.Strategy {
	case partition.TensorParallel:
		cd.MHSA = mhsaOps(p, chip, mode, s, batch, hwp)
		cd.FC = fcOps(p, chip, mode, s, batch, hwp)
	case partition.Replicated:
		rows := p.SeqSplit(queryRows(mode, s, batch))[chip].Len()
		cd.SeqRows = rows
		// The replicated baseline's block is modeled as one fused
		// phase (MHSA) plus an empty FC phase; synchronization slots
		// still apply (context exchange + output exchange).
		cd.MHSA = replicatedChipOps(p, rows, s, hwp)
		cd.FC = nil
		if rows == 0 {
			cd.StreamBytesPerBlock = 0 // idle chips do not touch weights
		}
	case partition.Pipeline:
		cd.MHSA = singleChipBlockOps(p.Config, mode, s, batch, hwp)
		cd.FC = nil
	default:
		return cd, fmt.Errorf("deploy: unknown strategy %v", p.Strategy)
	}
	if err := attachL3Exposure(&cd, hwp, opts); err != nil {
		return cd, err
	}
	return cd, nil
}

// attachL3Exposure derives the synchronous L3 traffic of the chip from
// its tier: streamed chips move each phase's weights plus all
// activations through L3; resident-single chips reload one block's
// weights between blocks. Under the hierarchical memory model,
// streamed weights are instead planned tile-by-tile through the DRAM
// channel (MHSAStream/FCStream) and the exposed byte counts carry only
// the activation spill.
func attachL3Exposure(cd *ChipDeploy, hwp hw.Params, opts Options) error {
	switch cd.Tier {
	case TierStreamed:
		if hwp.Mem.Enabled() {
			ch := memsim.ChannelOf(hwp)
			var err error
			if cd.MHSAStream, err = streamPlans(ch, hwp.Mem, cd.MHSA); err != nil {
				return err
			}
			if cd.FCStream, err = streamPlans(ch, hwp.Mem, cd.FC); err != nil {
				return err
			}
			if !opts.NoActivationSpill {
				cd.ExposedMHSABytes = hierSpillBytes(cd.MHSA, cd.MHSAStream)
				cd.ExposedFCBytes = hierSpillBytes(cd.FC, cd.FCStream)
			}
			return nil
		}
		l1Tile := int64(hwp.Chip.L1Bytes / 2)
		mw, fw := phaseWeightBytes(cd.MHSA), phaseWeightBytes(cd.FC)
		cd.ExposedMHSABytes = weightShare(cd.StreamBytesPerBlock, mw, mw+fw)
		cd.ExposedFCBytes = weightShare(cd.StreamBytesPerBlock, fw, mw+fw)
		if !opts.NoActivationSpill {
			cd.ExposedMHSABytes += spillBytes(cd.MHSA, l1Tile)
			cd.ExposedFCBytes += spillBytes(cd.FC, l1Tile)
		}
	case TierResidentSingle:
		cd.BlockLoadBytes = cd.StreamBytesPerBlock
	}
	return nil
}

// streamPlans builds the index-parallel tile plans of a phase's kernel
// sequence: one plan per weight-streaming GEMM (family tiling resolved
// per op), nil for everything else. Returns nil when the phase streams
// no tileable weights at all.
func streamPlans(ch memsim.Channel, m hw.MemHierarchy, ops []kernels.Cost) ([]*memsim.Plan, error) {
	var plans []*memsim.Plan
	for i := range ops {
		g, ok := memsim.GEMMOf(ops[i])
		if !ok {
			continue
		}
		n, k := m.TileFor(ops[i].FFN)
		pl, err := memsim.PlanGEMM(ch, g, memsim.Tiling{K: k, N: n})
		if err != nil {
			return nil, fmt.Errorf("deploy: tiling %s kernel %dx%dx%d: %w",
				ops[i].Name, g.M, g.K, g.N, err)
		}
		if plans == nil {
			plans = make([]*memsim.Plan, len(ops))
		}
		plans[i] = pl
	}
	return plans, nil
}

// hierSpillBytes is spillBytes under the hierarchical model: the
// activation re-fetch count of a planned GEMM is its actual column
// pass count (each N-tile group re-reads the M×K input slice), and
// unplanned kernels keep the stage-in/stage-out minimum.
func hierSpillBytes(ops []kernels.Cost, plans []*memsim.Plan) int64 {
	var total int64
	for i := range ops {
		refetch := int64(2)
		if plans != nil && plans[i] != nil {
			if p := int64(plans[i].ActPasses) + 1; p > refetch {
				refetch = p
			}
		}
		total += ops[i].ActInBytes*refetch + ops[i].ActOutBytes
	}
	return total
}

func phaseWeightBytes(ops []kernels.Cost) int64 {
	var total int64
	for _, op := range ops {
		total += op.WeightBytes
	}
	return total
}

func weightShare(total, part, sum int64) int64 {
	if sum == 0 {
		return 0
	}
	return total * part / sum
}

// spillBytes is the extra L3 traffic of running a kernel list with
// L3-resident activations: each input operand is staged through L2
// once and re-fetched once per weight tile beyond the first (tiled
// GEMM re-reads its activation operand per output tile), and outputs
// are written back once.
func spillBytes(ops []kernels.Cost, l1Tile int64) int64 {
	var total int64
	for _, op := range ops {
		refetch := int64(2)
		if op.WeightBytes > 0 && l1Tile > 0 {
			if t := (op.WeightBytes+l1Tile-1)/l1Tile + 1; t > refetch {
				refetch = t
			}
		}
		total += op.ActInBytes*refetch + op.ActOutBytes
	}
	return total
}

// MHSACost returns the aggregated MHSA-phase cost of a chip.
func (d *Deployment) MHSACost(chip int) kernels.Cost { return sumCosts(d.Chips[chip].MHSA) }

// FCCost returns the aggregated FC-phase cost of a chip.
func (d *Deployment) FCCost(chip int) kernels.Cost { return sumCosts(d.Chips[chip].FC) }

// RootSyncCost returns the aggregated root serial cost per sync.
func (d *Deployment) RootSyncCost() kernels.Cost { return sumCosts(d.RootSync) }

// WorstTier returns the weakest placement across chips — the tier
// that governs whether the system as a whole avoids exposed off-chip
// traffic.
func (d *Deployment) WorstTier() Tier {
	worst := TierResidentAll
	for _, c := range d.Chips {
		if c.Tier < worst {
			worst = c.Tier
		}
	}
	return worst
}

// TotalL3BytesPerForward returns the steady-state L3 weight traffic of
// one full forward pass across all chips.
func (d *Deployment) TotalL3BytesPerForward() int64 {
	var total int64
	for _, c := range d.Chips {
		total += c.StreamBytesPerBlock * int64(c.Blocks)
	}
	return total
}
