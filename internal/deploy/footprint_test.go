package deploy

import (
	"testing"

	"mcudist/internal/hw"
	"mcudist/internal/model"
)

// TestStreamBufferBytes pins the streamed-tier weight-staging
// arithmetic: the flat model double-buffers one L1-half tile, while
// the hierarchical model holds PrefetchDepth+1 slots of the largest
// tile either layer family pins — the full slot when a family
// auto-sizes, and capped at the slot when a pinned tile would not fit
// one (the planner later rejects such tilings with a real error; the
// footprint just must not overflow the budget first).
func TestStreamBufferBytes(t *testing.T) {
	cfg := model.TinyLlama42M() // int8: WeightBytes = 1
	p := mustTP(t, cfg, 2)
	slot := streamTileBytes(hw.Siracusa())
	if slot != 128*1024 {
		t.Fatalf("fixture drift: slot = %d, want half of Siracusa L1", slot)
	}
	dram := func(mutate func(*hw.MemHierarchy)) hw.Params {
		hwp := hw.Siracusa()
		hwp.Mem = hw.LPDDR5()
		if mutate != nil {
			mutate(&hwp.Mem)
		}
		return hwp
	}
	cases := []struct {
		name string
		hwp  hw.Params
		want int
	}{
		{"auto tiles fill whole slots", dram(nil), 3 * slot},
		{"depth widens the buffer", dram(func(m *hw.MemHierarchy) { m.PrefetchDepth = 4 }), 5 * slot},
		{"pinned tile shrinks the buffer", dram(func(m *hw.MemHierarchy) {
			m.TileK, m.TileN = 32, 256
		}), 3 * 32 * 256 * cfg.WeightBytes},
		{"largest family tile governs", dram(func(m *hw.MemHierarchy) {
			m.TileK, m.TileN = 32, 256
			m.FFNTileK, m.FFNTileN = 64, 512
		}), 3 * 64 * 512 * cfg.WeightBytes},
		{"auto family keeps the full slot", dram(func(m *hw.MemHierarchy) {
			// Only the FFN family is pinned; attention auto-sizes, so its
			// full slot governs the shared buffer.
			m.FFNTileK, m.FFNTileN = 32, 256
		}), 3 * slot},
		{"oversized tile capped at the slot", dram(func(m *hw.MemHierarchy) {
			m.TileK, m.TileN = 512, 512 // 256 KiB > one 128 KiB slot
		}), 3 * slot},
	}
	for _, tc := range cases {
		if got := streamBufferBytes(p, tc.hwp); got != tc.want {
			t.Errorf("%s: streamBufferBytes = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestStreamedFootprintUsesStreamBuffer pins that the tier chooser's
// streamed fallback actually charges the stream buffer: the flat model
// stages 2 tile slots, the hierarchy PrefetchDepth+1, and the rest of
// the footprint (KV, activations, comm staging) is identical — the
// memory model re-prices weight staging only.
func TestStreamedFootprintUsesStreamBuffer(t *testing.T) {
	cfg := model.TinyLlama42M()
	p := mustTP(t, cfg, 2)
	s := model.PaperSeqLen(cfg, model.Autoregressive)

	flat := mustDeploy(t, p, model.Autoregressive, s)
	if flat.WorstTier() != TierStreamed {
		t.Fatalf("fixture must be streamed, got %v", flat.WorstTier())
	}
	hwp := hw.Siracusa()
	hwp.Mem = hw.LPDDR5()
	dram, err := New(p, hwp, model.Autoregressive, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	slot := streamTileBytes(hwp)
	for i := range flat.Chips {
		ff, df := flat.Chips[i].Footprint, dram.Chips[i].Footprint
		if ff.WeightBytes != 2*slot {
			t.Errorf("chip %d: flat streamed staging %d, want %d", i, ff.WeightBytes, 2*slot)
		}
		if want := (hwp.Mem.PrefetchDepth + 1) * slot; df.WeightBytes != want {
			t.Errorf("chip %d: dram streamed staging %d, want %d", i, df.WeightBytes, want)
		}
		if ff.KVBytes != df.KVBytes || ff.ActivationBytes != df.ActivationBytes || ff.CommBytes != df.CommBytes {
			t.Errorf("chip %d: non-weight footprint diverged: flat %+v vs dram %+v", i, ff, df)
		}
	}
}
