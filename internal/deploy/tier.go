package deploy

import "fmt"

// Tier is the weight-placement regime of one chip, the capacity
// decision that produces the paper's super-linear speedups: crossing
// from Streamed/ResidentSingle into DoubleBuffered removes L3 from the
// critical path, and into ResidentAll removes L3 entirely.
type Tier int

const (
	// TierStreamed: one block's weight slice does not fit in usable
	// L2; weights stream from L3 synchronously during the block.
	TierStreamed Tier = iota
	// TierResidentSingle: one block fits, two do not. The next
	// block's weights load synchronously between blocks; L3 time is
	// exposed, locality of the current block improves.
	TierResidentSingle
	// TierDoubleBuffered: two blocks fit; the next block prefetches
	// during compute. L3 traffic costs energy but (by the paper's
	// accounting) no runtime.
	TierDoubleBuffered
	// TierResidentAll: every owned block's weights stay in L2; no
	// steady-state L3 traffic at all.
	TierResidentAll
)

func (t Tier) String() string {
	switch t {
	case TierStreamed:
		return "streamed"
	case TierResidentSingle:
		return "resident-single"
	case TierDoubleBuffered:
		return "double-buffered"
	case TierResidentAll:
		return "resident-all"
	default:
		return fmt.Sprintf("tier(%d)", int(t))
	}
}

// OffChipFree reports whether the tier keeps L3 off the runtime
// critical path.
func (t Tier) OffChipFree() bool {
	return t == TierDoubleBuffered || t == TierResidentAll
}
