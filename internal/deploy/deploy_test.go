package deploy

import (
	"testing"

	"mcudist/internal/hw"
	"mcudist/internal/model"
	"mcudist/internal/partition"
)

func mustTP(t *testing.T, cfg model.Config, n int) *partition.Plan {
	t.Helper()
	p, err := partition.NewTensorParallel(cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mustDeploy(t *testing.T, p *partition.Plan, mode model.Mode, s int) *Deployment {
	t.Helper()
	d, err := New(p, hw.Siracusa(), mode, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// The tier table below is the capacity arithmetic that produces every
// fit statement in the paper. These are the load-bearing assertions of
// the reproduction.
func TestTinyLlamaAutoregressiveTiers(t *testing.T) {
	cfg := model.TinyLlama42M()
	s := model.PaperSeqLen(cfg, model.Autoregressive)
	want := map[int]Tier{
		1: TierStreamed,       // 3 MiB block > usable L2
		2: TierStreamed,       // 1.5 MiB + KV + act still too big
		4: TierResidentSingle, // one 768 KiB slice fits, two do not
		8: TierDoubleBuffered, // paper: super-linear at 8
	}
	for n, wantTier := range want {
		d := mustDeploy(t, mustTP(t, cfg, n), model.Autoregressive, s)
		if got := d.WorstTier(); got != wantTier {
			t.Errorf("n=%d: tier %v, want %v (footprint %v, usable %d)",
				n, got, wantTier, d.Chips[0].Footprint, hw.Siracusa().UsableL2Bytes())
		}
	}
}

func TestScaledTinyLlamaTiers(t *testing.T) {
	cfg := model.TinyLlamaScaled64()
	s := model.PaperSeqLen(cfg, model.Autoregressive)
	want := map[int]Tier{
		8:  TierDoubleBuffered, // paper: double-buffering at 8 and 16
		16: TierDoubleBuffered,
		32: TierResidentAll, // paper: all weights fit on-chip at 32
		64: TierResidentAll,
	}
	for n, wantTier := range want {
		d := mustDeploy(t, mustTP(t, cfg, n), model.Autoregressive, s)
		if got := d.WorstTier(); got != wantTier {
			t.Errorf("n=%d: tier %v, want %v (footprint %v)", n, got, wantTier, d.Chips[0].Footprint)
		}
	}
}

func TestMobileBERTTiers(t *testing.T) {
	cfg := model.MobileBERT512()
	s := model.PaperSeqLen(cfg, model.Prompt)
	want := map[int]Tier{
		1: TierStreamed,
		2: TierResidentSingle, // L3 still exposed at 2 chips
		4: TierDoubleBuffered, // paper: super-linear at 4
	}
	for n, wantTier := range want {
		d := mustDeploy(t, mustTP(t, cfg, n), model.Prompt, s)
		if got := d.WorstTier(); got != wantTier {
			t.Errorf("n=%d: tier %v, want %v (footprint %v)", n, got, wantTier, d.Chips[0].Footprint)
		}
	}
}

func TestResidentAllHasNoL3Traffic(t *testing.T) {
	cfg := model.TinyLlamaScaled64()
	d := mustDeploy(t, mustTP(t, cfg, 32), model.Autoregressive, 128)
	if d.TotalL3BytesPerForward() != 0 {
		t.Fatalf("resident-all deployment moves %d L3 bytes", d.TotalL3BytesPerForward())
	}
}

func TestStreamingTiersMoveWholeModelPerForward(t *testing.T) {
	cfg := model.TinyLlama42M()
	for _, n := range []int{1, 2, 4, 8} {
		d := mustDeploy(t, mustTP(t, cfg, n), model.Autoregressive, 128)
		if got := d.TotalL3BytesPerForward(); got != int64(cfg.TotalWeightBytes()) {
			t.Errorf("n=%d: L3 bytes per forward %d, want full model %d",
				n, got, cfg.TotalWeightBytes())
		}
	}
}

func TestFootprintFitsBudget(t *testing.T) {
	cfg := model.TinyLlama42M()
	budget := hw.Siracusa().UsableL2Bytes()
	for _, n := range []int{1, 2, 4, 8} {
		d := mustDeploy(t, mustTP(t, cfg, n), model.Autoregressive, 128)
		for _, c := range d.Chips {
			if !c.Footprint.FitsIn(budget) {
				t.Errorf("n=%d chip %d footprint %v exceeds budget %d", n, c.Chip, c.Footprint, budget)
			}
		}
	}
}

func TestOpsCoverAllMACs(t *testing.T) {
	// The summed per-chip MACs must equal the single-chip MACs: no
	// work is dropped or duplicated by the partitioning.
	cfg := model.TinyLlama42M()
	for _, mode := range []model.Mode{model.Autoregressive, model.Prompt} {
		s := model.PaperSeqLen(cfg, mode)
		single := mustDeploy(t, mustTP(t, cfg, 1), mode, s)
		singleMACs := single.MHSACost(0).MACs + single.FCCost(0).MACs
		for _, n := range []int{2, 4, 8} {
			d := mustDeploy(t, mustTP(t, cfg, n), mode, s)
			var total int64
			for c := range d.Chips {
				total += d.MHSACost(c).MACs + d.FCCost(c).MACs
			}
			if total != singleMACs {
				t.Errorf("%v n=%d: distributed MACs %d != single %d", mode, n, total, singleMACs)
			}
		}
	}
}

func TestPerChipCyclesShrinkWithChips(t *testing.T) {
	cfg := model.TinyLlama42M()
	prev := -1.0
	for _, n := range []int{1, 2, 4, 8} {
		d := mustDeploy(t, mustTP(t, cfg, n), model.Prompt, 16)
		c := d.MHSACost(0).Cycles + d.FCCost(0).Cycles
		if prev > 0 && c >= prev {
			t.Errorf("n=%d: per-chip cycles %g did not shrink from %g", n, c, prev)
		}
		prev = c
	}
}

func TestSubLinearComputeScaling(t *testing.T) {
	// Total compute across chips grows with the chip count (the
	// utilization-loss effect the paper reports for MobileBERT).
	cfg := model.MobileBERT512()
	single := mustDeploy(t, mustTP(t, cfg, 1), model.Prompt, 268)
	singleCycles := single.MHSACost(0).Cycles + single.FCCost(0).Cycles
	multi := mustDeploy(t, mustTP(t, cfg, 4), model.Prompt, 268)
	var total float64
	for c := range multi.Chips {
		total += multi.MHSACost(c).Cycles + multi.FCCost(c).Cycles
	}
	if total <= singleCycles {
		t.Fatalf("4-chip aggregate compute %g <= single-chip %g: utilization loss missing", total, singleCycles)
	}
	if total > 1.5*singleCycles {
		t.Fatalf("4-chip aggregate compute %g implausibly high vs %g", total, singleCycles)
	}
}

func TestCollectivePayloads(t *testing.T) {
	cfg := model.TinyLlama42M()
	d := mustDeploy(t, mustTP(t, cfg, 8), model.Autoregressive, 128)
	if d.ReducePayload != 512 || d.BcastPayload != 512 {
		t.Fatalf("payloads %d/%d, want 512/512", d.ReducePayload, d.BcastPayload)
	}
	dp := mustDeploy(t, mustTP(t, cfg, 8), model.Prompt, 16)
	if dp.ReducePayload != 16*512 {
		t.Fatalf("prompt reduce payload %d", dp.ReducePayload)
	}
}

func TestReplicatedBaselineLowering(t *testing.T) {
	cfg := model.TinyLlama42M()
	p, err := partition.NewReplicated(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Prompt mode: rows split across chips.
	d, err := New(p, hw.Siracusa(), model.Prompt, 16, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Chips[0].SeqRows != 4 {
		t.Fatalf("chip 0 rows = %d, want 4", d.Chips[0].SeqRows)
	}
	// Full weights per chip: replicated never fits TinyLlama.
	if d.WorstTier() != TierStreamed {
		t.Fatalf("replicated tier %v, want streamed", d.WorstTier())
	}
	// Autoregressive: one active chip, three idle.
	da, err := New(p, hw.Siracusa(), model.Autoregressive, 128, Options{})
	if err != nil {
		t.Fatal(err)
	}
	active := 0
	for _, c := range da.Chips {
		if len(c.MHSA) > 0 {
			active++
		}
	}
	if active != 1 {
		t.Fatalf("replicated AR activates %d chips, want 1", active)
	}
}

func TestPipelineBaselineLowering(t *testing.T) {
	cfg := model.TinyLlama42M()
	p, err := partition.NewPipeline(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(p, hw.Siracusa(), model.Prompt, 16, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range d.Chips {
		if c.Blocks != 2 {
			t.Fatalf("stage %d holds %d blocks", c.Chip, c.Blocks)
		}
		if len(c.MHSA) == 0 {
			t.Fatalf("stage %d has no ops", c.Chip)
		}
	}
}

func TestModeValidation(t *testing.T) {
	cfg := model.MobileBERT512()
	p := mustTP(t, cfg, 2)
	if _, err := New(p, hw.Siracusa(), model.Autoregressive, 128, Options{}); err == nil {
		t.Fatal("autoregressive encoder accepted")
	}
	ll := mustTP(t, model.TinyLlama42M(), 2)
	if _, err := New(ll, hw.Siracusa(), model.Prompt, 0, Options{}); err == nil {
		t.Fatal("zero sequence length accepted")
	}
}

func TestTierStringAndOffChipFree(t *testing.T) {
	if TierStreamed.OffChipFree() || TierResidentSingle.OffChipFree() {
		t.Fatal("streaming tiers claim off-chip freedom")
	}
	if !TierDoubleBuffered.OffChipFree() || !TierResidentAll.OffChipFree() {
		t.Fatal("resident tiers deny off-chip freedom")
	}
	for _, tier := range []Tier{TierStreamed, TierResidentSingle, TierDoubleBuffered, TierResidentAll} {
		if tier.String() == "" {
			t.Fatal("empty tier name")
		}
	}
}

func TestWeightBytesConservedAcrossChips(t *testing.T) {
	cfg := model.TinyLlama42M()
	for _, n := range []int{2, 4, 8} {
		d := mustDeploy(t, mustTP(t, cfg, n), model.Autoregressive, 128)
		var weightBytes int64
		for c := range d.Chips {
			weightBytes += d.MHSACost(c).WeightBytes + d.FCCost(c).WeightBytes
		}
		if weightBytes != int64(cfg.BlockWeightBytes()) {
			t.Errorf("n=%d: per-block weight bytes touched %d, want %d", n, weightBytes, cfg.BlockWeightBytes())
		}
	}
}

func TestGatedFFNOpsLarger(t *testing.T) {
	cfg := model.TinyLlama42M()
	gated := cfg
	gated.FFN = model.FFNGated
	d1 := mustDeploy(t, mustTP(t, cfg, 4), model.Prompt, 16)
	d2 := mustDeploy(t, mustTP(t, gated, 4), model.Prompt, 16)
	if d2.FCCost(0).MACs <= d1.FCCost(0).MACs {
		t.Fatal("gated FFN should cost more MACs")
	}
}
