package numeric

import (
	"math"

	"mcudist/internal/quant"
	"mcudist/internal/tensor"
)

// weight abstracts the quantization granularity of a weight matrix so
// the distributed engine runs identically over per-tensor and
// per-channel codes.
type weight interface {
	cols(lo, hi int) weight
	rows(lo, hi int) weight
	mul(x *quant.QMat) accum
}

// accum abstracts the matching int32 accumulator.
type accum interface {
	add(accum)
	deq() *tensor.Mat
	req8(outScale float32) *quant.QMat
	req16(scale16 float32) []int16
	dims() (rows, cols int)
}

// --- per-tensor ---

type ptWeight struct{ m *quant.QMat }

func (w ptWeight) cols(lo, hi int) weight  { return ptWeight{w.m.SliceCols(lo, hi)} }
func (w ptWeight) rows(lo, hi int) weight  { return ptWeight{w.m.SliceRows(lo, hi)} }
func (w ptWeight) mul(x *quant.QMat) accum { return ptAcc{quant.MatMulQ(x, w.m)} }

type ptAcc struct{ a *quant.Acc }

func (a ptAcc) add(o accum)                { a.a.AddInPlace(o.(ptAcc).a) }
func (a ptAcc) deq() *tensor.Mat           { return a.a.Dequantize() }
func (a ptAcc) req8(s float32) *quant.QMat { return a.a.Requantize(s) }
func (a ptAcc) dims() (int, int)           { return a.a.Rows, a.a.Cols }

func (a ptAcc) req16(scale16 float32) []int16 {
	out := make([]int16, len(a.a.Data))
	ratio := float64(a.a.Scale) / float64(scale16)
	for i, v := range a.a.Data {
		out[i] = clamp16(float64(v) * ratio)
	}
	return out
}

// --- per-channel ---

type pcWeight struct{ m *quant.QCMat }

func (w pcWeight) cols(lo, hi int) weight  { return pcWeight{w.m.SliceCols(lo, hi)} }
func (w pcWeight) rows(lo, hi int) weight  { return pcWeight{w.m.SliceRows(lo, hi)} }
func (w pcWeight) mul(x *quant.QMat) accum { return pcAcc{quant.MatMulQPC(x, w.m)} }

type pcAcc struct{ a *quant.AccPC }

func (a pcAcc) add(o accum)                { a.a.AddInPlace(o.(pcAcc).a) }
func (a pcAcc) deq() *tensor.Mat           { return a.a.Dequantize() }
func (a pcAcc) req8(s float32) *quant.QMat { return a.a.Requantize(s) }
func (a pcAcc) dims() (int, int)           { return a.a.Rows, a.a.Cols }

func (a pcAcc) req16(scale16 float32) []int16 {
	out := make([]int16, len(a.a.Data))
	for r := 0; r < a.a.Rows; r++ {
		row := a.a.Row(r)
		for c := range row {
			ratio := float64(a.a.ActScale) * float64(a.a.WScales[c]) / float64(scale16)
			out[r*a.a.Cols+c] = clamp16(float64(row[c]) * ratio)
		}
	}
	return out
}

func clamp16(v float64) int16 {
	r := math.Round(v)
	if r > 32767 {
		return 32767
	}
	if r < -32768 {
		return -32768
	}
	return int16(r)
}
