package numeric

import (
	"testing"

	"mcudist/internal/model"
	"mcudist/internal/partition"
	"mcudist/internal/tensor"
)

// Per-channel weights preserve the core exactness property: the
// distributed int32-reduce network is bit-identical to the single-chip
// per-channel network.
func TestPerChannelInt32ReduceBitExact(t *testing.T) {
	cfg := testCfg()
	w := model.NewWeights(cfg, 61)
	x := tensor.Random(5, cfg.E, 1, 62)
	cal := Calibrate(w, x)

	p1, _ := partition.NewTensorParallel(cfg, 1)
	ref, err := NewQuantEngine(w, p1, cal, ReduceInt32, PerChannelWeights())
	if err != nil {
		t.Fatal(err)
	}
	refOut := ref.Forward(x)

	for _, n := range []int{2, 4} {
		p, _ := partition.NewTensorParallel(cfg, n)
		e, err := NewQuantEngine(w, p, cal, ReduceInt32, PerChannelWeights())
		if err != nil {
			t.Fatal(err)
		}
		if d := tensor.MaxAbsDiff(refOut, e.Forward(x)); d != 0 {
			t.Errorf("n=%d: per-channel int32-reduce differs by %g", n, d)
		}
	}
}

// Per-channel quantization approximates the float reference at least
// as well as per-tensor on the same network.
func TestPerChannelAccuracy(t *testing.T) {
	cfg := testCfg()
	w := model.NewWeights(cfg, 63)
	// Make one block's weights ill-conditioned: scale down half of
	// W1's columns so per-tensor quantization starves them.
	w1 := w.Blocks[0].W1
	for c := 0; c < w1.Cols/2; c++ {
		for r := 0; r < w1.Rows; r++ {
			w1.Set(r, c, w1.At(r, c)*0.02)
		}
	}
	x := tensor.Random(5, cfg.E, 1, 64)
	ref := model.Forward(w, x, nil)
	cal := Calibrate(w, x)
	p, _ := partition.NewTensorParallel(cfg, 4)

	pt, err := NewQuantEngine(w, p, cal, ReduceInt32)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := NewQuantEngine(w, p, cal, ReduceInt32, PerChannelWeights())
	if err != nil {
		t.Fatal(err)
	}
	ePT := tensor.MaxAbsDiff(ref, pt.Forward(x))
	ePC := tensor.MaxAbsDiff(ref, pc.Forward(x))
	// End-to-end output error is dominated by the shared activation
	// quantization, so the weight-granularity gain mostly cancels at
	// the network level (the per-matrix advantage is proven in the
	// quant package tests); per-channel must at least not be
	// meaningfully worse.
	if ePC > ePT*1.25 {
		t.Fatalf("per-channel error %g well above per-tensor %g", ePC, ePT)
	}
}

// Per-channel combines with GQA and int8/int16 exchanges.
func TestPerChannelGQAAndExchangeModes(t *testing.T) {
	cfg := gqaCfg()
	w := model.NewWeights(cfg, 65)
	x := tensor.Random(4, cfg.E, 1, 66)
	cal := Calibrate(w, x)
	p, _ := partition.NewTensorParallel(cfg, 4)

	exact, err := NewQuantEngine(w, p, cal, ReduceInt32, PerChannelWeights())
	if err != nil {
		t.Fatal(err)
	}
	refOut := exact.Forward(x)

	for _, mode := range []ReduceMode{ReduceInt8, ReduceInt16} {
		e, err := NewQuantEngine(w, p, cal, mode, PerChannelWeights())
		if err != nil {
			t.Fatal(err)
		}
		if d := tensor.MaxAbsDiff(refOut, e.Forward(x)); d > 0.25 {
			t.Errorf("mode %v: per-channel deviation %g too large", mode, d)
		}
	}

	// And against the single-chip per-channel reference: still exact.
	p1, _ := partition.NewTensorParallel(cfg, 1)
	ref1, _ := NewQuantEngine(w, p1, cal, ReduceInt32, PerChannelWeights())
	if d := tensor.MaxAbsDiff(ref1.Forward(x), refOut); d != 0 {
		t.Fatalf("per-channel GQA int32-reduce differs by %g", d)
	}
}

func TestPerChannelAutoregressive(t *testing.T) {
	cfg := testCfg()
	w := model.NewWeights(cfg, 67)
	x := tensor.Random(3, cfg.E, 1, 68)
	cal := Calibrate(w, x)
	p1, _ := partition.NewTensorParallel(cfg, 1)
	p4, _ := partition.NewTensorParallel(cfg, 4)
	ref, _ := NewQuantEngine(w, p1, cal, ReduceInt32, PerChannelWeights())
	e, _ := NewQuantEngine(w, p4, cal, ReduceInt32, PerChannelWeights())
	for i := 0; i < 3; i++ {
		row := x.SliceRows(i, i+1)
		var a, b *tensor.Mat
		if i == 0 {
			a, b = ref.Forward(row), e.Forward(row)
		} else {
			a, b = ref.ForwardStep(row), e.ForwardStep(row)
		}
		if d := tensor.MaxAbsDiff(a, b); d != 0 {
			t.Fatalf("step %d: per-channel AR differs by %g", i, d)
		}
	}
}
