package numeric

import (
	"testing"

	"mcudist/internal/model"
	"mcudist/internal/partition"
	"mcudist/internal/quant"
	"mcudist/internal/tensor"
)

// Cross-layer consistency: the element counts the numeric executor
// actually moved across the tree must equal the payload formulas the
// performance model charges for.
func TestCommVolumeMatchesPerformanceModel(t *testing.T) {
	cfg := testCfg()
	w := model.NewWeights(cfg, 41)
	const n, s = 4, 5
	p, err := partition.NewTensorParallel(cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewExecutor(w, p)
	if err != nil {
		t.Fatal(err)
	}
	e.Forward(tensor.Random(s, cfg.E, 1, 42))

	// Per sync: (n-1) hops, each carrying S×E elements; 2 syncs per
	// block.
	wantPerCollective := int64(n-1) * int64(s) * int64(cfg.E)
	syncs := int64(2 * cfg.L)
	if e.Stats.ReduceElems != syncs*wantPerCollective {
		t.Errorf("reduce elems %d, want %d", e.Stats.ReduceElems, syncs*wantPerCollective)
	}
	if e.Stats.BcastElems != syncs*wantPerCollective {
		t.Errorf("bcast elems %d, want %d", e.Stats.BcastElems, syncs*wantPerCollective)
	}

	// And the partition's payload accounting agrees: payload bytes ×
	// hops = element count × bytes per element.
	reduceBytes := p.ReducePayloadBytes(s) * int64(n-1) * syncs
	if reduceBytes != e.Stats.ReduceElems*int64(cfg.ReduceBytes) {
		t.Errorf("partition payload %d B != executor %d elems × %d B",
			reduceBytes, e.Stats.ReduceElems, cfg.ReduceBytes)
	}
}

// The reduce order is the tree's order: with float32 addition this is
// deterministic, so two identical runs agree bit for bit.
func TestReduceOrderDeterministic(t *testing.T) {
	cfg := testCfg()
	w := model.NewWeights(cfg, 43)
	x := tensor.Random(4, cfg.E, 1, 44)
	p, _ := partition.NewTensorParallel(cfg, 4)
	e1, _ := NewExecutor(w, p)
	e2, _ := NewExecutor(w, p)
	if d := tensor.MaxAbsDiff(e1.Forward(x), e2.Forward(x)); d != 0 {
		t.Fatalf("two identical runs differ by %g", d)
	}
}

// Different chip counts change the float32 summation order; outputs
// may differ in the last bits but never beyond rounding.
func TestChipCountOnlyRoundingDifferences(t *testing.T) {
	cfg := testCfg()
	w := model.NewWeights(cfg, 45)
	x := tensor.Random(4, cfg.E, 1, 46)
	var outs []*tensor.Mat
	for _, n := range []int{1, 2, 3, 4} {
		p, err := partition.NewTensorParallel(cfg, n)
		if err != nil {
			t.Fatal(err)
		}
		e, _ := NewExecutor(w, p)
		outs = append(outs, e.Forward(x))
	}
	for i := 1; i < len(outs); i++ {
		if d := tensor.MaxAbsDiff(outs[0], outs[i]); d > 1e-4 {
			t.Errorf("chip count %d diverged by %g", i+1, d)
		}
	}
}

// Failure injection: a corrupted plan must be rejected before any
// computation happens.
func TestExecutorRejectsCorruptPlan(t *testing.T) {
	cfg := testCfg()
	w := model.NewWeights(cfg, 47)
	p, _ := partition.NewTensorParallel(cfg, 2)
	p.Heads[1].Lo++ // break coverage
	if _, err := NewExecutor(w, p); err == nil {
		t.Fatal("corrupt plan accepted")
	}
}

func TestExecutorInputValidation(t *testing.T) {
	cfg := testCfg()
	w := model.NewWeights(cfg, 48)
	p, _ := partition.NewTensorParallel(cfg, 2)
	e, _ := NewExecutor(w, p)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("wrong-width input did not panic")
			}
		}()
		e.Forward(tensor.Random(2, cfg.E+1, 1, 1))
	}()
	e2, _ := NewExecutor(w, p)
	e2.Forward(tensor.Random(2, cfg.E, 1, 1))
	func() {
		defer func() {
			if recover() == nil {
				t.Error("second prompt on a filled cache did not panic")
			}
		}()
		e2.Forward(tensor.Random(2, cfg.E, 1, 2))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("multi-row step did not panic")
			}
		}()
		e2.ForwardStep(tensor.Random(2, cfg.E, 1, 3))
	}()
}

func TestQuantEngineRejectsBaselinePlan(t *testing.T) {
	cfg := testCfg()
	w := model.NewWeights(cfg, 49)
	cal := Calibrate(w, tensor.Random(3, cfg.E, 1, 50))
	p, _ := partition.NewReplicated(cfg, 2)
	if _, err := NewQuantEngine(w, p, cal, ReduceInt32); err == nil {
		t.Fatal("replicated plan accepted by quant engine")
	}
}

// Int8-reduce saturating addition must saturate, not wrap.
func TestSaturatingAdd(t *testing.T) {
	a := quant.NewQ(1, 2, 1)
	b := quant.NewQ(1, 2, 1)
	a.Data[0], b.Data[0] = 100, 100
	a.Data[1], b.Data[1] = -100, -100
	saturatingAdd(a, b)
	if a.Data[0] != 127 {
		t.Fatalf("positive saturation gave %d", a.Data[0])
	}
	if a.Data[1] != -128 {
		t.Fatalf("negative saturation gave %d", a.Data[1])
	}
}
