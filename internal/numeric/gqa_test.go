package numeric

import (
	"testing"
	"testing/quick"

	"mcudist/internal/model"
	"mcudist/internal/partition"
	"mcudist/internal/tensor"
)

// gqaCfg is a small grouped-query-attention decoder: 8 query heads
// sharing 4 KV heads.
func gqaCfg() model.Config {
	return model.Config{
		Name: "test-gqa", Arch: model.Decoder,
		E: 32, P: 64, H: 8, KVHeads: 4, F: 48, L: 2,
		Norm: model.RMSNorm, FFN: model.FFNGated,
		RoPE: true, RoPETheta: 10000, NormEps: 1e-5,
		WeightBytes: 1, ActBytes: 1, AccBytes: 4, ReduceBytes: 1,
	}
}

func TestGQADistributedMatchesReference(t *testing.T) {
	cfg := gqaCfg()
	w := model.NewWeights(cfg, 31)
	x := tensor.Random(5, cfg.E, 1, 32)
	ref := model.Forward(w, x, nil)
	for _, n := range []int{1, 2, 4} {
		p, err := partition.NewTensorParallel(cfg, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		e, err := NewExecutor(w, p)
		if err != nil {
			t.Fatal(err)
		}
		if d := tensor.MaxAbsDiff(ref, e.Forward(x)); d > 1e-4 {
			t.Errorf("n=%d: GQA distributed differs by %g", n, d)
		}
	}
}

func TestGQAAutoregressiveDistributed(t *testing.T) {
	cfg := gqaCfg()
	w := model.NewWeights(cfg, 33)
	const steps = 4
	x := tensor.Random(steps, cfg.E, 1, 34)

	cache := model.NewKVCache(cfg)
	p, _ := partition.NewTensorParallel(cfg, 4)
	e, err := NewExecutor(w, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < steps; i++ {
		row := x.SliceRows(i, i+1)
		var ref, got *tensor.Mat
		if i == 0 {
			ref = model.Forward(w, row, cache)
			got = e.Forward(row)
		} else {
			ref = model.ForwardStep(w, row, cache)
			got = e.ForwardStep(row)
		}
		if d := tensor.MaxAbsDiff(ref, got); d > 1e-4 {
			t.Fatalf("step %d: GQA AR differs by %g", i, d)
		}
	}
}

func TestGQAQuantizedInt32Exact(t *testing.T) {
	cfg := gqaCfg()
	w := model.NewWeights(cfg, 35)
	x := tensor.Random(4, cfg.E, 1, 36)
	cal := Calibrate(w, x)
	p1, _ := partition.NewTensorParallel(cfg, 1)
	ref, err := NewQuantEngine(w, p1, cal, ReduceInt32)
	if err != nil {
		t.Fatal(err)
	}
	refOut := ref.Forward(x)
	p4, _ := partition.NewTensorParallel(cfg, 4)
	e, _ := NewQuantEngine(w, p4, cal, ReduceInt32)
	if d := tensor.MaxAbsDiff(refOut, e.Forward(x)); d != 0 {
		t.Fatalf("GQA int32-reduce differs by %g, want bit-exact", d)
	}
}

// Property: GQA equivalence for every legal chip count.
func TestPropertyGQAEquivalence(t *testing.T) {
	cfg := gqaCfg()
	w := model.NewWeights(cfg, 37)
	f := func(nRaw, sRaw uint8, seed int64) bool {
		n := 1 + int(nRaw)%cfg.KVHeadCount()
		s := 1 + int(sRaw)%6
		x := tensor.Random(s, cfg.E, 1, seed)
		ref := model.Forward(w, x, nil)
		p, err := partition.NewTensorParallel(cfg, n)
		if err != nil {
			return false
		}
		e, err := NewExecutor(w, p)
		if err != nil {
			return false
		}
		return tensor.MaxAbsDiff(ref, e.Forward(x)) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
