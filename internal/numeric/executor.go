// Package numeric executes the partitioned transformer numerically,
// chip by chip, including the hierarchical reduce/broadcast dataflow —
// and proves that the distributed computation reproduces the reference
// single-device forward pass. This is the functional-correctness
// counterpart to the performance simulation: perfsim shows the scheme
// is fast, numeric shows it is right.
//
// Two paths are provided: a float32 executor (matches the reference up
// to summation-order rounding) and a quantized int8 executor whose
// int32 partial-sum reduction is bit-exact against the single-chip
// quantized reference.
package numeric

import (
	"fmt"
	"math"

	"mcudist/internal/interconnect"
	"mcudist/internal/model"
	"mcudist/internal/partition"
	"mcudist/internal/tensor"
)

// ChipBlock holds one chip's weight slices for one transformer block
// under the tensor-parallel plan.
type ChipBlock struct {
	WQ, WK, WV *tensor.Mat // E × PSlice
	WO         *tensor.Mat // PSlice × E
	W1, W2     *tensor.Mat // E × FSlice, FSlice × E
	W3         *tensor.Mat // E × FSlice (gated FFN)
	BQ, BK, BV []float32   // PSlice
	B1         []float32   // FSlice
}

// SliceBlock cuts the chip's share out of full block weights. Q and
// the output projection slice along query heads; K/V slice along KV
// heads (narrower under GQA).
func SliceBlock(bw *model.BlockWeights, p *partition.Plan, chip int) *ChipBlock {
	pr := p.PRange(chip)
	kr := p.KVRange(chip)
	fr := partition.Range{Lo: 0, Hi: p.Config.F}
	if p.Strategy == partition.TensorParallel {
		fr = p.FSlice[chip]
	}
	cb := &ChipBlock{
		WQ: bw.WQ.SliceCols(pr.Lo, pr.Hi),
		WK: bw.WK.SliceCols(kr.Lo, kr.Hi),
		WV: bw.WV.SliceCols(kr.Lo, kr.Hi),
		WO: bw.WO.SliceRows(pr.Lo, pr.Hi),
		W1: bw.W1.SliceCols(fr.Lo, fr.Hi),
		W2: bw.W2.SliceRows(fr.Lo, fr.Hi),
	}
	if bw.W3 != nil {
		cb.W3 = bw.W3.SliceCols(fr.Lo, fr.Hi)
	}
	if bw.HasBiases() {
		cb.BQ = bw.BQ[pr.Lo:pr.Hi]
		cb.BK = bw.BK[kr.Lo:kr.Hi]
		cb.BV = bw.BV[kr.Lo:kr.Hi]
		cb.B1 = bw.B1[fr.Lo:fr.Hi]
	}
	return cb
}

// Stats counts the communication the distributed execution performed,
// for cross-checking against the performance model.
type Stats struct {
	Reduces    int
	Broadcasts int
	// ReduceElems / BcastElems count scalar elements moved per hop,
	// summed over hops.
	ReduceElems int64
	BcastElems  int64
}

// Executor runs the float32 distributed forward pass.
type Executor struct {
	cfg    model.Config
	plan   *partition.Plan
	full   *model.Weights
	tree   *interconnect.Tree
	chips  [][]*ChipBlock // [chip][block]
	kvK    [][]*tensor.Mat
	kvV    [][]*tensor.Mat
	pos    int
	xState *tensor.Mat // root's residual stream between steps (unused across calls)

	Stats Stats
}

// NewExecutor distributes the weights according to the plan.
func NewExecutor(w *model.Weights, p *partition.Plan) (*Executor, error) {
	if p.Strategy != partition.TensorParallel {
		return nil, fmt.Errorf("numeric: executor supports the tensor-parallel strategy, got %v", p.Strategy)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	tree, err := interconnect.BuildTree(p.Chips, 4)
	if err != nil {
		return nil, err
	}
	e := &Executor{
		cfg:   w.Config,
		plan:  p,
		full:  w,
		tree:  tree,
		chips: make([][]*ChipBlock, p.Chips),
		kvK:   make([][]*tensor.Mat, p.Chips),
		kvV:   make([][]*tensor.Mat, p.Chips),
	}
	for c := 0; c < p.Chips; c++ {
		e.chips[c] = make([]*ChipBlock, w.Config.L)
		e.kvK[c] = make([]*tensor.Mat, w.Config.L)
		e.kvV[c] = make([]*tensor.Mat, w.Config.L)
		for b := 0; b < w.Config.L; b++ {
			e.chips[c][b] = SliceBlock(w.Blocks[b], p, c)
			e.kvK[c][b] = tensor.New(0, p.KVWidth(c))
			e.kvV[c][b] = tensor.New(0, p.KVWidth(c))
		}
	}
	return e, nil
}

// CacheLen returns the current distributed KV-cache length.
func (e *Executor) CacheLen() int { return e.pos }

// Forward runs the distributed prompt-mode pass over x (S×E) and
// fills the per-chip KV caches (decoders).
func (e *Executor) Forward(x *tensor.Mat) *tensor.Mat {
	if e.pos != 0 {
		panic("numeric: prompt forward requires empty caches")
	}
	out := e.run(x, 0)
	if e.cfg.Arch == model.Decoder {
		e.pos = x.Rows
	}
	return out
}

// ForwardStep runs one distributed autoregressive step (decoders).
func (e *Executor) ForwardStep(x *tensor.Mat) *tensor.Mat {
	if e.cfg.Arch != model.Decoder {
		panic("numeric: autoregressive mode requires a decoder")
	}
	if x.Rows != 1 {
		panic("numeric: step input must be a single row")
	}
	out := e.run(x, e.pos)
	e.pos++
	return out
}

func (e *Executor) run(x *tensor.Mat, startPos int) *tensor.Mat {
	if x.Cols != e.cfg.E {
		panic(fmt.Sprintf("numeric: input width %d != E %d", x.Cols, e.cfg.E))
	}
	out := x.Clone()
	for b := 0; b < e.cfg.L; b++ {
		out = e.block(b, out, startPos)
	}
	return out
}

// block executes one distributed transformer block: broadcast the
// (normalized) input, compute per-chip partials, reduce, root
// residual+norm, broadcast, per-chip FC partials, reduce, root
// residual+norm — the paper's two synchronizations.
func (e *Executor) block(b int, x *tensor.Mat, startPos int) *tensor.Mat {
	cfg := e.cfg
	bw := e.full.Blocks[b]

	var mhsaIn *tensor.Mat
	if cfg.Arch == model.Decoder {
		mhsaIn = normalize(cfg, x, bw.Norm1Gain, bw.Norm1Bias) // pre-norm
	} else {
		mhsaIn = x // post-norm encoder attends to the raw input
	}
	e.broadcast(mhsaIn)

	partials := make([]*tensor.Mat, e.plan.Chips)
	for c := 0; c < e.plan.Chips; c++ {
		partials[c] = e.chipMHSA(c, b, mhsaIn, startPos)
	}
	attSum := e.reduce(partials)
	if bw.BO != nil {
		addBias(attSum, bw.BO)
	}
	x2 := tensor.Add(x, attSum) // residual merged into the reduce

	var fcIn *tensor.Mat
	if cfg.Arch == model.Decoder {
		fcIn = normalize(cfg, x2, bw.Norm2Gain, bw.Norm2Bias)
	} else {
		x2 = normalize(cfg, x2, bw.Norm1Gain, bw.Norm1Bias) // post-norm
		fcIn = x2
	}
	e.broadcast(fcIn)

	for c := 0; c < e.plan.Chips; c++ {
		partials[c] = e.chipFC(c, b, fcIn)
	}
	fcSum := e.reduce(partials)
	if bw.B2 != nil {
		addBias(fcSum, bw.B2)
	}
	x3 := tensor.Add(x2, fcSum)
	if cfg.Arch == model.Encoder {
		x3 = normalize(cfg, x3, bw.Norm2Gain, bw.Norm2Bias)
	}
	return x3
}

// chipMHSA computes one chip's partial attention output (S×E).
func (e *Executor) chipMHSA(c, b int, h *tensor.Mat, startPos int) *tensor.Mat {
	cfg := e.cfg
	cb := e.chips[c][b]

	q := tensor.MatMul(h, cb.WQ)
	k := tensor.MatMul(h, cb.WK)
	v := tensor.MatMul(h, cb.WV)
	addBias(q, cb.BQ)
	addBias(k, cb.BK)
	addBias(v, cb.BV)
	if cfg.RoPE {
		positions := make([]int, h.Rows)
		for i := range positions {
			positions[i] = startPos + i
		}
		tensor.RoPE(q, cfg.HeadDim(), positions, cfg.RoPETheta)
		tensor.RoPE(k, cfg.HeadDim(), positions, cfg.RoPETheta)
	}

	keys, values := k, v
	if cfg.Arch == model.Decoder {
		e.kvK[c][b] = tensor.ConcatRows(e.kvK[c][b], k)
		e.kvV[c][b] = tensor.ConcatRows(e.kvV[c][b], v)
		keys = e.kvK[c][b]
		values = e.kvV[c][b]
	}

	att := attendHeads(cfg, q, keys, values, startPos, e.plan.Heads[c].Len())
	return tensor.MatMul(att, cb.WO)
}

// chipFC computes one chip's partial FC output (S×E).
func (e *Executor) chipFC(c, b int, h *tensor.Mat) *tensor.Mat {
	cfg := e.cfg
	cb := e.chips[c][b]
	if cfg.FFN == model.FFNGated {
		gate := tensor.SiLU(tensor.MatMul(h, cb.W1))
		up := tensor.MatMul(h, cb.W3)
		return tensor.MatMul(tensor.Mul(gate, up), cb.W2)
	}
	mid := tensor.MatMul(h, cb.W1)
	addBias(mid, cb.B1)
	tensor.GELU(mid)
	return tensor.MatMul(mid, cb.W2)
}

// attendHeads runs softmax attention over `heads` consecutive query
// head slices of q against the matching KV head slices of keys/values
// (with GQA, QueryGroupSize query heads share each KV head; chip
// slices are group-aligned, so local indices map directly).
func attendHeads(cfg model.Config, q, keys, values *tensor.Mat, startPos, heads int) *tensor.Mat {
	hd := cfg.HeadDim()
	group := cfg.QueryGroupSize()
	outs := make([]*tensor.Mat, heads)
	scale := float32(1 / math.Sqrt(float64(hd)))
	for h := 0; h < heads; h++ {
		qh := q.SliceCols(h*hd, (h+1)*hd)
		kv := h / group
		kh := keys.SliceCols(kv*hd, (kv+1)*hd)
		vh := values.SliceCols(kv*hd, (kv+1)*hd)
		scores := tensor.MatMulT(qh, kh).Scale(scale)
		if cfg.Arch == model.Decoder {
			tensor.CausalMaskedSoftmax(scores, startPos)
		} else {
			tensor.Softmax(scores)
		}
		outs[h] = tensor.MatMul(scores, vh)
	}
	return tensor.ConcatCols(outs...)
}

// reduce sums per-chip partials along the tree's reduce order and
// returns the root's accumulated tensor. Addition happens in float32,
// matching what the chips would compute.
func (e *Executor) reduce(partials []*tensor.Mat) *tensor.Mat {
	acc := make([]*tensor.Mat, len(partials))
	for i, p := range partials {
		acc[i] = p.Clone()
	}
	for _, hop := range e.tree.ReduceHops() {
		tensor.AddInPlace(acc[hop.To], acc[hop.From])
		e.Stats.ReduceElems += int64(acc[hop.From].Rows) * int64(acc[hop.From].Cols)
	}
	e.Stats.Reduces++
	return acc[e.tree.Root]
}

// broadcast records the root-to-all distribution of a tensor.
func (e *Executor) broadcast(m *tensor.Mat) {
	for range e.tree.BroadcastHops() {
		e.Stats.BcastElems += int64(m.Rows) * int64(m.Cols)
	}
	e.Stats.Broadcasts++
}

func normalize(cfg model.Config, x *tensor.Mat, gain, bias []float32) *tensor.Mat {
	if cfg.Norm == model.LayerNorm {
		return tensor.LayerNorm(x, gain, bias, cfg.NormEps)
	}
	return tensor.RMSNorm(x, gain, cfg.NormEps)
}

func addBias(m *tensor.Mat, bias []float32) {
	if bias == nil {
		return
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for i := range row {
			row[i] += bias[i]
		}
	}
}
