package numeric

import (
	"testing"
	"testing/quick"

	"mcudist/internal/model"
	"mcudist/internal/partition"
	"mcudist/internal/quant"
	"mcudist/internal/tensor"
)

// testCfg is a small decoder whose dimensions exercise uneven splits.
func testCfg() model.Config {
	return model.Config{
		Name: "test-decoder", Arch: model.Decoder,
		E: 32, P: 32, H: 4, F: 64, L: 3,
		Norm: model.RMSNorm, FFN: model.FFNGELU,
		RoPE: true, RoPETheta: 10000, NormEps: 1e-5,
		WeightBytes: 1, ActBytes: 1, AccBytes: 4, ReduceBytes: 1,
	}
}

func encoderCfg() model.Config {
	return model.Config{
		Name: "test-encoder", Arch: model.Encoder,
		E: 32, P: 32, H: 4, F: 48, L: 2,
		Norm: model.LayerNorm, FFN: model.FFNGELU,
		NormEps:     1e-5,
		WeightBytes: 1, ActBytes: 1, AccBytes: 4, ReduceBytes: 1,
	}
}

func mustExec(t *testing.T, w *model.Weights, n int) *Executor {
	t.Helper()
	p, err := partition.NewTensorParallel(w.Config, n)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewExecutor(w, p)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// The core correctness claim of the paper's scheme: the distributed
// forward pass equals the single-device reference.
func TestDistributedMatchesReferencePrompt(t *testing.T) {
	cfg := testCfg()
	w := model.NewWeights(cfg, 1)
	x := tensor.Random(6, cfg.E, 1, 2)
	ref := model.Forward(w, x, nil)
	for _, n := range []int{1, 2, 4} {
		e := mustExec(t, w, n)
		got := e.Forward(x)
		if d := tensor.MaxAbsDiff(ref, got); d > 1e-4 {
			t.Errorf("n=%d: distributed differs from reference by %g", n, d)
		}
	}
}

func TestDistributedMatchesReferenceEncoder(t *testing.T) {
	cfg := encoderCfg()
	w := model.NewWeights(cfg, 3)
	x := tensor.Random(5, cfg.E, 1, 4)
	ref := model.Forward(w, x, nil)
	for _, n := range []int{1, 2, 4} {
		e := mustExec(t, w, n)
		got := e.Forward(x)
		if d := tensor.MaxAbsDiff(ref, got); d > 1e-4 {
			t.Errorf("n=%d: encoder distributed differs by %g", n, d)
		}
	}
}

func TestDistributedMatchesReferenceGatedFFN(t *testing.T) {
	cfg := testCfg()
	cfg.FFN = model.FFNGated
	w := model.NewWeights(cfg, 5)
	x := tensor.Random(4, cfg.E, 1, 6)
	ref := model.Forward(w, x, nil)
	e := mustExec(t, w, 4)
	if d := tensor.MaxAbsDiff(ref, e.Forward(x)); d > 1e-4 {
		t.Errorf("gated distributed differs by %g", d)
	}
}

// Autoregressive generation with distributed KV caches must track the
// reference cache step by step.
func TestDistributedAutoregressive(t *testing.T) {
	cfg := testCfg()
	w := model.NewWeights(cfg, 7)
	const steps = 5
	x := tensor.Random(steps, cfg.E, 1, 8)

	cache := model.NewKVCache(cfg)
	e := mustExec(t, w, 4)
	for i := 0; i < steps; i++ {
		row := x.SliceRows(i, i+1)
		var ref, got *tensor.Mat
		if i == 0 {
			ref = model.Forward(w, row, cache)
			got = e.Forward(row)
		} else {
			ref = model.ForwardStep(w, row, cache)
			got = e.ForwardStep(row)
		}
		if d := tensor.MaxAbsDiff(ref, got); d > 1e-4 {
			t.Fatalf("step %d: distributed differs by %g", i, d)
		}
	}
	if e.CacheLen() != steps {
		t.Fatalf("distributed cache length %d, want %d", e.CacheLen(), steps)
	}
}

// Prefill with a prompt, then continue stepping — the paper's actual
// usage pattern (prompt mode then autoregressive mode).
func TestDistributedPrefillThenStep(t *testing.T) {
	cfg := testCfg()
	w := model.NewWeights(cfg, 9)
	x := tensor.Random(6, cfg.E, 1, 10)

	cache := model.NewKVCache(cfg)
	model.Forward(w, x.SliceRows(0, 5), cache)
	ref := model.ForwardStep(w, x.SliceRows(5, 6), cache)

	e := mustExec(t, w, 2)
	e.Forward(x.SliceRows(0, 5))
	got := e.ForwardStep(x.SliceRows(5, 6))
	if d := tensor.MaxAbsDiff(ref, got); d > 1e-4 {
		t.Fatalf("prefill+step differs by %g", d)
	}
}

// Exactly two reduces and two broadcasts per block — the paper's
// synchronization count.
func TestTwoSyncsPerBlockNumeric(t *testing.T) {
	cfg := testCfg()
	w := model.NewWeights(cfg, 11)
	e := mustExec(t, w, 4)
	e.Forward(tensor.Random(3, cfg.E, 1, 12))
	if e.Stats.Reduces != 2*cfg.L || e.Stats.Broadcasts != 2*cfg.L {
		t.Fatalf("reduces=%d broadcasts=%d, want %d each",
			e.Stats.Reduces, e.Stats.Broadcasts, 2*cfg.L)
	}
}

// Property: distributed equivalence holds for random chip counts and
// sequence lengths, including uneven head splits.
func TestPropertyDistributedEquivalence(t *testing.T) {
	cfg := testCfg()
	w := model.NewWeights(cfg, 13)
	f := func(nRaw, sRaw uint8, seed int64) bool {
		n := 1 + int(nRaw)%cfg.H
		s := 1 + int(sRaw)%8
		x := tensor.Random(s, cfg.E, 1, seed)
		ref := model.Forward(w, x, nil)
		p, err := partition.NewTensorParallel(cfg, n)
		if err != nil {
			return false
		}
		e, err := NewExecutor(w, p)
		if err != nil {
			return false
		}
		return tensor.MaxAbsDiff(ref, e.Forward(x)) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestExecutorRejectsBaselinePlans(t *testing.T) {
	cfg := testCfg()
	w := model.NewWeights(cfg, 1)
	p, _ := partition.NewReplicated(cfg, 2)
	if _, err := NewExecutor(w, p); err == nil {
		t.Fatal("replicated plan accepted by tensor-parallel executor")
	}
}

// ---- quantized paths ----

// The int32-reduce distributed quantized network must be EXACTLY the
// single-chip quantized network: int32 partial sums commute.
func TestQuantizedInt32ReduceBitExact(t *testing.T) {
	cfg := testCfg()
	w := model.NewWeights(cfg, 15)
	x := tensor.Random(5, cfg.E, 1, 16)
	cal := Calibrate(w, x)

	p1, _ := partition.NewTensorParallel(cfg, 1)
	ref, err := NewQuantEngine(w, p1, cal, ReduceInt32)
	if err != nil {
		t.Fatal(err)
	}
	refOut := ref.Forward(x)

	for _, n := range []int{2, 4} {
		p, _ := partition.NewTensorParallel(cfg, n)
		e, err := NewQuantEngine(w, p, cal, ReduceInt32)
		if err != nil {
			t.Fatal(err)
		}
		got := e.Forward(x)
		if d := tensor.MaxAbsDiff(refOut, got); d != 0 {
			t.Errorf("n=%d: int32-reduce output differs by %g, want bit-exact", n, d)
		}
	}
}

func TestQuantizedEncoderInt32Exact(t *testing.T) {
	cfg := encoderCfg()
	w := model.NewWeights(cfg, 17)
	x := tensor.Random(4, cfg.E, 1, 18)
	cal := Calibrate(w, x)
	p1, _ := partition.NewTensorParallel(cfg, 1)
	ref, _ := NewQuantEngine(w, p1, cal, ReduceInt32)
	refOut := ref.Forward(x)
	p4, _ := partition.NewTensorParallel(cfg, 4)
	e, _ := NewQuantEngine(w, p4, cal, ReduceInt32)
	if d := tensor.MaxAbsDiff(refOut, e.Forward(x)); d != 0 {
		t.Fatalf("encoder int32-reduce differs by %g", d)
	}
}

// The deployed int8-reduce flow trades exactness for 4× less link
// traffic; its deviation is bounded by a few quantization steps per
// reduce.
func TestQuantizedInt8ReduceClose(t *testing.T) {
	cfg := testCfg()
	w := model.NewWeights(cfg, 19)
	x := tensor.Random(5, cfg.E, 1, 20)
	cal := Calibrate(w, x)

	p, _ := partition.NewTensorParallel(cfg, 4)
	exact, _ := NewQuantEngine(w, p, cal, ReduceInt32)
	approx, _ := NewQuantEngine(w, p, cal, ReduceInt8)
	a := exact.Forward(x)
	b := approx.Forward(x)

	// Tolerance: accumulated requantization error across blocks; the
	// output magnitude is O(1), so a few percent absolute.
	if d := tensor.MaxAbsDiff(a, b); d > 0.2 {
		t.Fatalf("int8-reduce deviates by %g from int32-reduce", d)
	}
}

// The int16 exchange must always deviate no more than the int8
// exchange from the exact int32 baseline.
func TestQuantizedInt16BetterThanInt8(t *testing.T) {
	cfg := testCfg()
	w := model.NewWeights(cfg, 51)
	x := tensor.Random(5, cfg.E, 1, 52)
	cal := Calibrate(w, x)
	p, _ := partition.NewTensorParallel(cfg, 4)

	run := func(mode ReduceMode) *tensor.Mat {
		e, err := NewQuantEngine(w, p, cal, mode)
		if err != nil {
			t.Fatal(err)
		}
		return e.Forward(x)
	}
	exact := run(ReduceInt32)
	d8 := tensor.MaxAbsDiff(exact, run(ReduceInt8))
	d16 := tensor.MaxAbsDiff(exact, run(ReduceInt16))
	if d16 > d8 {
		t.Fatalf("int16 deviation %g exceeds int8 %g", d16, d8)
	}
	if d16 > 0.05 {
		t.Fatalf("int16 deviation %g too large for a 3-block model", d16)
	}
}

func TestRequantize16Saturates(t *testing.T) {
	a := quant.NewAcc(1, 2, 1)
	a.Data[0] = 1 << 30
	a.Data[1] = -(1 << 30)
	q := ptAcc{a}.req16(1)
	if q[0] != 32767 || q[1] != -32768 {
		t.Fatalf("int16 saturation failed: %v", q)
	}
}

func TestSaturatingAdd16(t *testing.T) {
	a := []int16{30000, -30000, 5}
	b := []int16{30000, -30000, 7}
	saturatingAdd16(a, b)
	if a[0] != 32767 || a[1] != -32768 || a[2] != 12 {
		t.Fatalf("saturating add16: %v", a)
	}
}

// Quantized inference must approximate the float reference.
func TestQuantizedApproximatesFloat(t *testing.T) {
	cfg := testCfg()
	w := model.NewWeights(cfg, 21)
	x := tensor.Random(5, cfg.E, 1, 22)
	ref := model.Forward(w, x, nil)
	cal := Calibrate(w, x)
	p, _ := partition.NewTensorParallel(cfg, 4)
	e, _ := NewQuantEngine(w, p, cal, ReduceInt32)
	got := e.Forward(x)
	if d := tensor.MaxAbsDiff(ref, got); d > 0.5 {
		t.Fatalf("quantized output deviates by %g from float reference", d)
	}
}

// Quantized autoregressive stepping stays consistent with the
// quantized single-chip reference.
func TestQuantizedAutoregressiveExact(t *testing.T) {
	cfg := testCfg()
	w := model.NewWeights(cfg, 23)
	const steps = 4
	x := tensor.Random(steps, cfg.E, 1, 24)
	cal := Calibrate(w, x)

	p1, _ := partition.NewTensorParallel(cfg, 1)
	ref, _ := NewQuantEngine(w, p1, cal, ReduceInt32)
	p4, _ := partition.NewTensorParallel(cfg, 4)
	e, _ := NewQuantEngine(w, p4, cal, ReduceInt32)

	for i := 0; i < steps; i++ {
		row := x.SliceRows(i, i+1)
		var a, b *tensor.Mat
		if i == 0 {
			a = ref.Forward(row)
			b = e.Forward(row)
		} else {
			a = ref.ForwardStep(row)
			b = e.ForwardStep(row)
		}
		if d := tensor.MaxAbsDiff(a, b); d != 0 {
			t.Fatalf("step %d: quantized AR differs by %g", i, d)
		}
	}
}

func TestCalibrationScalesPositive(t *testing.T) {
	cfg := testCfg()
	w := model.NewWeights(cfg, 25)
	cal := Calibrate(w, tensor.Random(4, cfg.E, 1, 26))
	for b := 0; b < cfg.L; b++ {
		for _, s := range []float32{cal.MHSAIn[b], cal.AttOut[b], cal.AttProj[b], cal.FCIn[b], cal.Mid[b], cal.FCOut[b]} {
			if s <= 0 {
				t.Fatalf("block %d has non-positive scale", b)
			}
		}
	}
}

func TestSliceBlockShapes(t *testing.T) {
	cfg := testCfg()
	w := model.NewWeights(cfg, 27)
	p, _ := partition.NewTensorParallel(cfg, 4)
	cb := SliceBlock(w.Blocks[0], p, 1)
	if cb.WQ.Cols != cfg.P/4 || cb.WO.Rows != cfg.P/4 {
		t.Fatal("attention slice shapes wrong")
	}
	if cb.W1.Cols != cfg.F/4 || cb.W2.Rows != cfg.F/4 {
		t.Fatal("FFN slice shapes wrong")
	}
}

func BenchmarkDistributedForward(b *testing.B) {
	cfg := testCfg()
	w := model.NewWeights(cfg, 1)
	p, _ := partition.NewTensorParallel(cfg, 4)
	e, _ := NewExecutor(w, p)
	x := tensor.Random(4, cfg.E, 1, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// Rebuild when caches grow to keep iterations comparable.
		e, _ = NewExecutor(w, p)
		e.Forward(x)
	}
}
