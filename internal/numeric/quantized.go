package numeric

import (
	"fmt"
	"math"

	"mcudist/internal/interconnect"
	"mcudist/internal/model"
	"mcudist/internal/partition"
	"mcudist/internal/quant"
	"mcudist/internal/tensor"
)

// Calibration holds per-block activation scales, gathered from a
// float32 calibration pass (the standard post-training-quantization
// flow). All chips share these scales, which is what makes the
// distributed int8 network equal to the single-chip int8 network.
type Calibration struct {
	MHSAIn  []float32 // broadcast MHSA input
	AttOut  []float32 // concatenated head outputs (pre-WO)
	AttProj []float32 // attention projection sum (int8-reduce mode)
	FCIn    []float32 // broadcast FC input
	Mid     []float32 // post-activation FFN intermediate
	FCOut   []float32 // FC output sum (int8-reduce mode)
}

// Calibrate runs a float pass over x (prompt style) and records
// per-block maximum magnitudes at every quantization point.
func Calibrate(w *model.Weights, x *tensor.Mat) *Calibration {
	cfg := w.Config
	cal := &Calibration{
		MHSAIn:  make([]float32, cfg.L),
		AttOut:  make([]float32, cfg.L),
		AttProj: make([]float32, cfg.L),
		FCIn:    make([]float32, cfg.L),
		Mid:     make([]float32, cfg.L),
		FCOut:   make([]float32, cfg.L),
	}
	out := x.Clone()
	for b := 0; b < cfg.L; b++ {
		bw := w.Blocks[b]
		var mhsaIn *tensor.Mat
		if cfg.Arch == model.Decoder {
			mhsaIn = normalize(cfg, out, bw.Norm1Gain, bw.Norm1Bias)
		} else {
			mhsaIn = out
		}
		cal.MHSAIn[b] = scaleOf(mhsaIn)

		q := tensor.MatMul(mhsaIn, bw.WQ)
		k := tensor.MatMul(mhsaIn, bw.WK)
		v := tensor.MatMul(mhsaIn, bw.WV)
		addBias(q, bw.BQ)
		addBias(k, bw.BK)
		addBias(v, bw.BV)
		if cfg.RoPE {
			positions := make([]int, mhsaIn.Rows)
			for i := range positions {
				positions[i] = i
			}
			tensor.RoPE(q, cfg.HeadDim(), positions, cfg.RoPETheta)
			tensor.RoPE(k, cfg.HeadDim(), positions, cfg.RoPETheta)
		}
		att := attendHeads(cfg, q, k, v, 0, cfg.H)
		cal.AttOut[b] = scaleOf(att)
		proj := tensor.MatMul(att, bw.WO)
		addBias(proj, bw.BO)
		cal.AttProj[b] = scaleOf(proj)
		x2 := tensor.Add(out, proj)

		var fcIn *tensor.Mat
		if cfg.Arch == model.Decoder {
			fcIn = normalize(cfg, x2, bw.Norm2Gain, bw.Norm2Bias)
		} else {
			x2 = normalize(cfg, x2, bw.Norm1Gain, bw.Norm1Bias)
			fcIn = x2
		}
		cal.FCIn[b] = scaleOf(fcIn)

		var mid *tensor.Mat
		if cfg.FFN == model.FFNGated {
			gate := tensor.SiLU(tensor.MatMul(fcIn, bw.W1))
			mid = tensor.Mul(gate, tensor.MatMul(fcIn, bw.W3))
		} else {
			mid = tensor.MatMul(fcIn, bw.W1)
			addBias(mid, bw.B1)
			tensor.GELU(mid)
		}
		cal.Mid[b] = scaleOf(mid)
		fc := tensor.MatMul(mid, bw.W2)
		addBias(fc, bw.B2)
		cal.FCOut[b] = scaleOf(fc)
		out = tensor.Add(x2, fc)
		if cfg.Arch == model.Encoder {
			out = normalize(cfg, out, bw.Norm2Gain, bw.Norm2Bias)
		}
	}
	return cal
}

func scaleOf(m *tensor.Mat) float32 {
	var maxAbs float64
	for _, v := range m.Data {
		if a := math.Abs(float64(v)); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return 1
	}
	return float32(maxAbs / 127)
}

// QuantBlock holds one block's int8 weights (full tensors; slices are
// taken per chip so that every chip shares the same codes and scales).
// The weight representation is granularity-agnostic: per-tensor or
// per-channel scales behind the same interface.
type QuantBlock struct {
	WQ, WK, WV, WO weight
	W1, W2         weight
	W3             weight
}

func quantizeBlocks(w *model.Weights, perChannel bool) []*QuantBlock {
	qz := func(m *tensor.Mat) weight {
		if m == nil {
			return nil
		}
		if perChannel {
			return pcWeight{quant.QuantizePerChannel(m)}
		}
		return ptWeight{quant.Quantize(m)}
	}
	out := make([]*QuantBlock, w.Config.L)
	for b, bw := range w.Blocks {
		out[b] = &QuantBlock{
			WQ: qz(bw.WQ), WK: qz(bw.WK), WV: qz(bw.WV), WO: qz(bw.WO),
			W1: qz(bw.W1), W2: qz(bw.W2), W3: qz(bw.W3),
		}
	}
	return out
}

// EngineOption tunes the quantized engine.
type EngineOption func(*QuantEngine)

// PerChannelWeights quantizes weights with one scale per output
// channel (PULP-NN style) instead of one per tensor.
func PerChannelWeights() EngineOption {
	return func(e *QuantEngine) { e.perChannel = true }
}

// ReduceMode selects the precision of the inter-chip partial-output
// exchange.
type ReduceMode int

const (
	// ReduceInt32 exchanges int32 accumulators: the distributed
	// result is bit-exact against the single-chip quantized network.
	ReduceInt32 ReduceMode = iota
	// ReduceInt8 requantizes partials to the output's int8 grid
	// before the exchange (the minimal-traffic flow). Because each
	// chip's partial is roughly 1/N of the final magnitude, it lands
	// on few effective bits of that grid; the deviation grows with
	// chip count and depth.
	ReduceInt8
	// ReduceInt16 exchanges int16 partials: 2× the traffic of int8,
	// 256× finer grid — deviation drops to rounding noise. The
	// practical middle point.
	ReduceInt16
)

// QuantEngine runs the int8 network on n chips (n = 1 is the
// single-chip reference).
type QuantEngine struct {
	cfg        model.Config
	full       *model.Weights
	blocks     []*QuantBlock
	cal        *Calibration
	plan       *partition.Plan
	tree       *interconnect.Tree
	mode       ReduceMode
	perChannel bool
	kvK        [][]*tensor.Mat // [chip][block], float KV cache
	kvV        [][]*tensor.Mat
	pos        int
}

// NewQuantEngine quantizes w once and distributes the codes according
// to the plan.
func NewQuantEngine(w *model.Weights, p *partition.Plan, cal *Calibration, mode ReduceMode, opts ...EngineOption) (*QuantEngine, error) {
	if p.Strategy != partition.TensorParallel {
		return nil, fmt.Errorf("numeric: quant engine supports the tensor-parallel strategy, got %v", p.Strategy)
	}
	tree, err := interconnect.BuildTree(p.Chips, 4)
	if err != nil {
		return nil, err
	}
	e := &QuantEngine{
		cfg:  w.Config,
		full: w,
		cal:  cal,
		plan: p,
		tree: tree,
		mode: mode,
		kvK:  make([][]*tensor.Mat, p.Chips),
		kvV:  make([][]*tensor.Mat, p.Chips),
	}
	for _, opt := range opts {
		opt(e)
	}
	e.blocks = quantizeBlocks(w, e.perChannel)
	for c := 0; c < p.Chips; c++ {
		e.kvK[c] = make([]*tensor.Mat, w.Config.L)
		e.kvV[c] = make([]*tensor.Mat, w.Config.L)
		for b := 0; b < w.Config.L; b++ {
			e.kvK[c][b] = tensor.New(0, p.KVWidth(c))
			e.kvV[c][b] = tensor.New(0, p.KVWidth(c))
		}
	}
	return e, nil
}

// Forward runs the quantized prompt-mode pass.
func (e *QuantEngine) Forward(x *tensor.Mat) *tensor.Mat {
	if e.pos != 0 {
		panic("numeric: prompt forward requires empty caches")
	}
	out := e.run(x, 0)
	if e.cfg.Arch == model.Decoder {
		e.pos = x.Rows
	}
	return out
}

// ForwardStep runs one quantized autoregressive step.
func (e *QuantEngine) ForwardStep(x *tensor.Mat) *tensor.Mat {
	if e.cfg.Arch != model.Decoder {
		panic("numeric: autoregressive mode requires a decoder")
	}
	out := e.run(x, e.pos)
	e.pos++
	return out
}

func (e *QuantEngine) run(x *tensor.Mat, startPos int) *tensor.Mat {
	out := x.Clone()
	for b := 0; b < e.cfg.L; b++ {
		out = e.block(b, out, startPos)
	}
	return out
}

func (e *QuantEngine) block(b int, x *tensor.Mat, startPos int) *tensor.Mat {
	cfg := e.cfg
	bw := e.full.Blocks[b]
	n := e.plan.Chips

	var mhsaIn *tensor.Mat
	if cfg.Arch == model.Decoder {
		mhsaIn = normalize(cfg, x, bw.Norm1Gain, bw.Norm1Bias)
	} else {
		mhsaIn = x
	}
	// The root quantizes once; all chips receive the same codes.
	qIn := quant.QuantizeWithScale(mhsaIn, e.cal.MHSAIn[b])

	attParts := make([]accum, n)
	for c := 0; c < n; c++ {
		attParts[c] = e.chipMHSA(c, b, qIn, startPos)
	}
	att := e.reduceAccs(attParts, e.cal.AttProj[b])
	addBias(att, bw.BO)
	x2 := tensor.Add(x, att)

	var fcIn *tensor.Mat
	if cfg.Arch == model.Decoder {
		fcIn = normalize(cfg, x2, bw.Norm2Gain, bw.Norm2Bias)
	} else {
		x2 = normalize(cfg, x2, bw.Norm1Gain, bw.Norm1Bias)
		fcIn = x2
	}
	qFC := quant.QuantizeWithScale(fcIn, e.cal.FCIn[b])

	fcParts := make([]accum, n)
	for c := 0; c < n; c++ {
		fcParts[c] = e.chipFC(c, b, qFC)
	}
	fc := e.reduceAccs(fcParts, e.cal.FCOut[b])
	addBias(fc, bw.B2)
	x3 := tensor.Add(x2, fc)
	if cfg.Arch == model.Encoder {
		x3 = normalize(cfg, x3, bw.Norm2Gain, bw.Norm2Bias)
	}
	return x3
}

// chipMHSA computes one chip's partial attention projection as int32
// accumulators against the chip's weight-code slices.
func (e *QuantEngine) chipMHSA(c, b int, qIn *quant.QMat, startPos int) accum {
	cfg := e.cfg
	qb := e.blocks[b]
	bw := e.full.Blocks[b]
	pr := e.plan.PRange(c)
	kr := e.plan.KVRange(c)

	q := qb.WQ.cols(pr.Lo, pr.Hi).mul(qIn).deq()
	k := qb.WK.cols(kr.Lo, kr.Hi).mul(qIn).deq()
	v := qb.WV.cols(kr.Lo, kr.Hi).mul(qIn).deq()
	if bw.HasBiases() {
		addBias(q, bw.BQ[pr.Lo:pr.Hi])
		addBias(k, bw.BK[kr.Lo:kr.Hi])
		addBias(v, bw.BV[kr.Lo:kr.Hi])
	}
	if cfg.RoPE {
		positions := make([]int, qIn.Rows)
		for i := range positions {
			positions[i] = startPos + i
		}
		tensor.RoPE(q, cfg.HeadDim(), positions, cfg.RoPETheta)
		tensor.RoPE(k, cfg.HeadDim(), positions, cfg.RoPETheta)
	}
	keys, values := k, v
	if cfg.Arch == model.Decoder {
		e.kvK[c][b] = tensor.ConcatRows(e.kvK[c][b], k)
		e.kvV[c][b] = tensor.ConcatRows(e.kvV[c][b], v)
		keys = e.kvK[c][b]
		values = e.kvV[c][b]
	}
	att := attendHeads(cfg, q, keys, values, startPos, e.plan.Heads[c].Len())
	qAtt := quant.QuantizeWithScale(att, e.cal.AttOut[b])
	return qb.WO.rows(pr.Lo, pr.Hi).mul(qAtt)
}

// chipFC computes one chip's partial FC output as int32 accumulators.
func (e *QuantEngine) chipFC(c, b int, qIn *quant.QMat) accum {
	cfg := e.cfg
	qb := e.blocks[b]
	bw := e.full.Blocks[b]
	fr := e.plan.FSlice[c]

	var mid *tensor.Mat
	if cfg.FFN == model.FFNGated {
		gate := tensor.SiLU(qb.W1.cols(fr.Lo, fr.Hi).mul(qIn).deq())
		up := qb.W3.cols(fr.Lo, fr.Hi).mul(qIn).deq()
		mid = tensor.Mul(gate, up)
	} else {
		mid = qb.W1.cols(fr.Lo, fr.Hi).mul(qIn).deq()
		if bw.HasBiases() {
			addBias(mid, bw.B1[fr.Lo:fr.Hi])
		}
		tensor.GELU(mid)
	}
	qMid := quant.QuantizeWithScale(mid, e.cal.Mid[b])
	return qb.W2.rows(fr.Lo, fr.Hi).mul(qMid)
}

// reduceAccs combines per-chip partial accumulators along the tree and
// returns the dequantized float sum. Int32 mode adds exact
// accumulators; the int8/int16 modes requantize each partial onto the
// exchange grid first and add with saturation, exactly as the
// low-traffic deployments would.
func (e *QuantEngine) reduceAccs(parts []accum, outScale float32) *tensor.Mat {
	switch e.mode {
	case ReduceInt32:
		for _, hop := range e.tree.ReduceHops() {
			parts[hop.To].add(parts[hop.From])
		}
		return parts[e.tree.Root].deq()
	case ReduceInt8:
		q := make([]*quant.QMat, len(parts))
		for i, p := range parts {
			q[i] = p.req8(outScale)
		}
		for _, hop := range e.tree.ReduceHops() {
			saturatingAdd(q[hop.To], q[hop.From])
		}
		return q[e.tree.Root].Dequantize()
	case ReduceInt16:
		// 16-bit grid anchored at the output scale: 256× finer than
		// the int8 exchange, so the per-reduce injection is rounding
		// noise. (Deviations visible at network depth come from the
		// chaotic amplification every post-training-quantized network
		// applies to small perturbations — see cmd/verify — not from
		// this grid.)
		scale16 := outScale / 256
		q := make([][]int16, len(parts))
		for i, p := range parts {
			q[i] = p.req16(scale16)
		}
		for _, hop := range e.tree.ReduceHops() {
			saturatingAdd16(q[hop.To], q[hop.From])
		}
		rows, cols := parts[0].dims()
		out := tensor.New(rows, cols)
		root := q[e.tree.Root]
		for i, v := range root {
			out.Data[i] = float32(v) * scale16
		}
		return out
	default:
		panic("numeric: unknown reduce mode")
	}
}

func saturatingAdd16(dst, src []int16) {
	for i := range dst {
		s := int32(dst[i]) + int32(src[i])
		if s > 32767 {
			s = 32767
		}
		if s < -32768 {
			s = -32768
		}
		dst[i] = int16(s)
	}
}

func saturatingAdd(dst, src *quant.QMat) {
	for i := range dst.Data {
		s := int32(dst.Data[i]) + int32(src.Data[i])
		if s > 127 {
			s = 127
		}
		if s < -128 {
			s = -128
		}
		dst.Data[i] = int8(s)
	}
}
