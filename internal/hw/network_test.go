package hw

import (
	"encoding/json"
	"math"
	"testing"
)

func TestUniformNetworkResolvesEveryEdge(t *testing.T) {
	n := UniformNetwork(MIPI())
	for _, e := range []Edge{{0, 1}, {1, 0}, {5, 63}} {
		c, err := n.LinkFor(e.From, e.To)
		if err != nil {
			t.Fatalf("LinkFor(%d,%d): %v", e.From, e.To, err)
		}
		if c != MIPI() {
			t.Errorf("LinkFor(%d,%d) = %+v, want MIPI", e.From, e.To, c)
		}
	}
	if _, err := n.LinkFor(3, 3); err == nil {
		t.Error("self-edge resolved to a link")
	}
}

func TestClusteredNetworkSplitsLocalAndBackhaul(t *testing.T) {
	local := MIPI()
	back := MIPI().Slower(10)
	n := ClusteredNetwork(local, back, 4)
	cases := []struct {
		from, to int
		want     LinkClass
	}{
		{0, 1, local}, // same cluster [0..3]
		{2, 3, local}, // same cluster
		{3, 4, back},  // cluster boundary
		{0, 63, back}, // far apart
		{4, 7, local}, // cluster [4..7]
		{60, 63, local} /* cluster [60..63] */}
	for _, c := range cases {
		got, err := n.LinkFor(c.from, c.to)
		if err != nil {
			t.Fatalf("LinkFor(%d,%d): %v", c.from, c.to, err)
		}
		if got != c.want {
			t.Errorf("LinkFor(%d,%d) = %+v, want %+v", c.from, c.to, got, c.want)
		}
	}
	if back.BandwidthBytesPerSec != local.BandwidthBytesPerSec/10 {
		t.Errorf("Slower(10) bandwidth = %g, want %g", back.BandwidthBytesPerSec, local.BandwidthBytesPerSec/10)
	}
}

func TestTableNetworkResolvesAndRejects(t *testing.T) {
	spi := LinkClass{BandwidthBytesPerSec: 50e6, SetupCycles: 512, EnergyPJPerByte: 150}
	n, err := TableNetwork(map[Edge]LinkClass{
		{0, 1}: MIPI(),
		{1, 0}: MIPI(),
		{1, 2}: spi,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := n.LinkFor(1, 2); err != nil || got != spi {
		t.Errorf("LinkFor(1,2) = %+v, %v; want spi class", got, err)
	}
	// The table is directed: 2->1 was never wired.
	if _, err := n.LinkFor(2, 1); err == nil {
		t.Error("unwired edge 2->1 resolved to a link")
	}
	if _, err := n.LinkFor(0, 5); err == nil {
		t.Error("unwired edge 0->5 resolved to a link")
	}
}

// Two networks registered from equal tables must compare equal — the
// property that keeps the evalpool cache key meaningful — and a
// different table must produce a different digest.
func TestTableNetworkCanonicalDigest(t *testing.T) {
	table := map[Edge]LinkClass{{0, 1}: MIPI(), {1, 0}: MIPI().Slower(2)}
	a, err := TableNetwork(table)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TableNetwork(map[Edge]LinkClass{{1, 0}: MIPI().Slower(2), {0, 1}: MIPI()})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("equal tables produced distinct networks: %q vs %q", a.TableDigest, b.TableDigest)
	}
	c, err := TableNetwork(map[Edge]LinkClass{{0, 1}: MIPI()})
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("different tables collided on one digest")
	}
}

func TestTableNetworkRejectsBadTables(t *testing.T) {
	if _, err := TableNetwork(nil); err == nil {
		t.Error("empty table accepted")
	}
	if _, err := TableNetwork(map[Edge]LinkClass{{0, 0}: MIPI()}); err == nil {
		t.Error("self-edge accepted")
	}
	if _, err := TableNetwork(map[Edge]LinkClass{{0, 1}: {}}); err == nil {
		t.Error("zero-bandwidth class accepted")
	}
}

// Non-finite bandwidths (Slower(0) gives +Inf; 0/0-style configs give
// NaN) must not validate: an infinite-bandwidth link silently zeroes
// every transfer time.
func TestLinkClassRejectsNonFiniteBandwidth(t *testing.T) {
	for _, bad := range []float64{math.Inf(1), math.NaN(), 0, -1} {
		c := MIPI()
		c.BandwidthBytesPerSec = bad
		if err := c.Validate(); err == nil {
			t.Errorf("bandwidth %g validated", bad)
		}
		if err := UniformNetwork(c).Validate(); err == nil {
			t.Errorf("uniform network with bandwidth %g validated", bad)
		}
	}
}

func TestLinkClassTransferCycles(t *testing.T) {
	c := MIPI()
	// 0.5 GB/s at 500 MHz is exactly 1 byte per cycle.
	if got := c.BytesPerCycle(500e6); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("bytes/cycle = %g, want 1.0", got)
	}
	if got := c.TransferCycles(500e6, 0); got != 0 {
		t.Errorf("zero payload = %g cycles, want 0", got)
	}
	if got := c.TransferCycles(500e6, 512); got != 768 {
		t.Errorf("512 B = %g cycles, want 768 (512 + 256 setup)", got)
	}
	if got := c.Slower(10).TransferCycles(500e6, 512); got != 512*10+256 {
		t.Errorf("512 B on 10x-slower class = %g cycles, want %d", got, 512*10+256)
	}
}

// The sweep/bench JSON emits names, not bare ints, and any accepted
// spelling round-trips through the parser.
func TestTopologyTextRoundTrip(t *testing.T) {
	for _, topo := range Topologies() {
		b, err := topo.MarshalText()
		if err != nil {
			t.Fatalf("%v: %v", topo, err)
		}
		var back Topology
		if err := back.UnmarshalText(b); err != nil {
			t.Fatalf("%s: %v", b, err)
		}
		if back != topo {
			t.Errorf("round trip %v -> %s -> %v", topo, b, back)
		}
	}
	if _, err := Topology(99).MarshalText(); err == nil {
		t.Error("invalid topology marshaled")
	}
	var topo Topology
	if err := topo.UnmarshalText([]byte("dragonfly")); err == nil {
		t.Error("unknown spelling unmarshaled")
	}
	// JSON integration: the enum appears as its name inside documents.
	out, err := json.Marshal(map[string]Topology{"topology": TopoRing})
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != `{"topology":"ring"}` {
		t.Errorf("json = %s, want {\"topology\":\"ring\"}", out)
	}
}

func TestNetworkProfileTextRoundTrip(t *testing.T) {
	for _, p := range NetworkProfiles() {
		b, err := p.MarshalText()
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		var back NetworkProfile
		if err := back.UnmarshalText(b); err != nil {
			t.Fatalf("%s: %v", b, err)
		}
		if back != p {
			t.Errorf("round trip %v -> %s -> %v", p, b, back)
		}
		parsed, err := ParseNetworkProfile(p.String())
		if err != nil || parsed != p {
			t.Errorf("ParseNetworkProfile(%q) = %v, %v", p.String(), parsed, err)
		}
	}
	if _, err := NetworkProfile(99).MarshalText(); err == nil {
		t.Error("invalid profile marshaled")
	}
	if _, err := ParseNetworkProfile("token-ring"); err == nil {
		t.Error("unknown profile parsed")
	}
}

func TestNetworkString(t *testing.T) {
	if got := UniformNetwork(MIPI()).String(); got != "uniform" {
		t.Errorf("uniform String = %q", got)
	}
	if got := ClusteredNetwork(MIPI(), MIPI().Slower(10), 4).String(); got != "clustered-4x10" {
		t.Errorf("clustered String = %q", got)
	}
	n, err := TableNetwork(map[Edge]LinkClass{{0, 1}: MIPI()})
	if err != nil {
		t.Fatal(err)
	}
	if got := n.String(); len(got) != len("table-")+8 || got[:6] != "table-" {
		t.Errorf("table String = %q, want table-<8 hex>", got)
	}
}
