// Package hw defines the hardware parameter sets used across the
// simulator: the Siracusa-like MCU (compute cluster, memory hierarchy,
// DMA engines), the chip-to-chip network — a per-edge assignment of
// link classes (uniform MIPI by default, two-tier clustered and
// explicit per-edge tables for mixed MIPI/SPI boards) — and the energy
// constants of the paper's analytical model.
//
// All simulator and energy-model packages consume these parameters
// instead of hard-coding constants, so alternative platforms can be
// modeled by constructing a different Params value.
package hw

import (
	"errors"
	"fmt"
	"strings"
)

// Byte-size helpers.
const (
	KiB = 1024
	MiB = 1024 * KiB
)

// Chip describes a single Siracusa-like MCU: an octa-core RISC-V
// compute cluster with a two-level scratchpad hierarchy (L1 TCDM, L2)
// and off-chip L3 memory reached through an I/O DMA.
type Chip struct {
	// Cores is the number of RISC-V cores in the compute cluster.
	Cores int
	// FreqHz is the cluster clock frequency in Hz.
	FreqHz float64

	// MACsPerCorePerCycle is the peak int8 multiply-accumulate
	// throughput of one core (XpulpNN-class SIMD dot product).
	MACsPerCorePerCycle int

	// L1Bytes is the size of the tightly coupled L1 scratchpad.
	L1Bytes int
	// L1Banks is the number of interleaved L1 memory banks; the
	// logarithmic interconnect grants one 32-bit port per core.
	L1Banks int
	// L2Bytes is the size of the on-chip L2 scratchpad.
	L2Bytes int
	// L2ReserveBytes is L2 capacity reserved for the runtime: code,
	// stacks, I/O staging. It is unavailable to the deployment
	// planner.
	L2ReserveBytes int
	// L3Bytes is the size of the off-chip memory private to the chip.
	L3Bytes int

	// DMAL2L1BytesPerCycle is the cluster DMA bandwidth between L2
	// and L1 (64-bit AXI port at cluster frequency).
	DMAL2L1BytesPerCycle float64
	// DMAL2L1SetupCycles is the fixed cost of programming one cluster
	// DMA transfer.
	DMAL2L1SetupCycles int
	// DMAL3L2BytesPerCycle is the I/O DMA bandwidth between off-chip
	// L3 and L2.
	DMAL3L2BytesPerCycle float64
	// DMAL3L2SetupCycles is the fixed cost of one L3 burst.
	DMAL3L2SetupCycles int

	// KernelSetupCycles is the fixed software cost of launching one
	// kernel on the cluster (dispatch + barrier).
	KernelSetupCycles int
	// ClusterPowerW is the average active power of the compute
	// cluster. The Siracusa paper reports 13 mW average core power at
	// 500 MHz; the analytical model charges this power for every
	// cycle a chip is busy.
	ClusterPowerW float64
}

// Topology selects the interconnect shape of the chip-to-chip
// network. internal/interconnect turns a Topology into a link graph
// plus reduce/broadcast hop schedules; the performance simulator
// executes whatever schedule it is handed, so the network shape is a
// design variable of the platform rather than a property baked into
// the simulator.
type Topology int

const (
	// TopoTree is the paper's hierarchical reduction tree in groups
	// of GroupSize chips (Fig. 1). It is the zero value, so every
	// configuration that predates the topology axis keeps reproducing
	// the paper's numbers unchanged.
	TopoTree Topology = iota
	// TopoStar is the flat all-to-one reduction the paper rejects for
	// scalability: every chip sends its full partial straight to the
	// root, whose accumulations serialize. (Formerly only reachable
	// by setting GroupSize >= Chips.)
	TopoStar
	// TopoRing is the bandwidth-optimal ring all-reduce: 2(N-1) steps
	// moving payload/N chunks, with the root's residual work sharded
	// across all chips.
	TopoRing
	// TopoFullyConnected exchanges every partial pairwise: each chip
	// sends its full partial to every other chip and reduces locally.
	// Lowest schedule depth, N(N-1) times the reduce traffic, and no
	// broadcast phase.
	TopoFullyConnected

	topologyCount // sentinel for validation
)

// Topologies returns every supported interconnect shape, in enum
// order (the design-space exploration axis).
func Topologies() []Topology {
	return []Topology{TopoTree, TopoStar, TopoRing, TopoFullyConnected}
}

func (t Topology) String() string {
	switch t {
	case TopoTree:
		return "tree"
	case TopoStar:
		return "star"
	case TopoRing:
		return "ring"
	case TopoFullyConnected:
		return "fully-connected"
	default:
		return fmt.Sprintf("topology(%d)", int(t))
	}
}

// Valid reports whether t names a supported topology.
func (t Topology) Valid() bool { return t >= 0 && t < topologyCount }

// ParseTopology maps a command-line spelling to a Topology. Accepted
// names: tree, star, ring, full | fully-connected | all-to-all.
func ParseTopology(s string) (Topology, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "tree", "hierarchical":
		return TopoTree, nil
	case "star", "flat", "all-to-one":
		return TopoStar, nil
	case "ring":
		return TopoRing, nil
	case "full", "fully-connected", "all-to-all", "fc":
		return TopoFullyConnected, nil
	default:
		return 0, fmt.Errorf("hw: unknown topology %q (want tree | star | ring | fully-connected)", s)
	}
}

// MarshalText emits the canonical spelling, so JSON/CSV sinks print
// "ring" instead of a bare int.
func (t Topology) MarshalText() ([]byte, error) {
	if !t.Valid() {
		return nil, fmt.Errorf("hw: cannot marshal invalid topology %d", int(t))
	}
	return []byte(t.String()), nil
}

// UnmarshalText parses any spelling ParseTopology accepts, so
// "fully-connected" and the "fc" shorthand both round-trip.
func (t *Topology) UnmarshalText(text []byte) error {
	v, err := ParseTopology(string(text))
	if err != nil {
		return err
	}
	*t = v
	return nil
}

// Energy holds the constants of the paper's analytical energy model.
type Energy struct {
	// L3PJPerByte is the energy of moving one byte between L3 and L2.
	L3PJPerByte float64
	// L2PJPerByte is the energy of moving one byte between L2 and L1.
	L2PJPerByte float64
}

// Params is the complete hardware description of the multi-chip system.
type Params struct {
	Chip Chip
	// Network assigns a LinkClass — bandwidth, setup cycles, pJ/B — to
	// every directed chip-to-chip edge. The uniform profile with the
	// MIPI class is the paper's network (and the Siracusa default);
	// clustered and per-edge-table profiles model mixed MIPI/SPI
	// boards. Network is a comparable value (explicit tables are
	// carried by content digest), so it participates in the evalpool
	// cache key like every other hardware parameter.
	Network Network
	Energy  Energy
	// GroupSize is the fan-in of the hierarchical all-reduce tree
	// (the paper uses groups of four chips). Only TopoTree and
	// TopoStar lower through the tree builder that consults it.
	GroupSize int
	// Topology selects the interconnect shape. The zero value is the
	// paper's hierarchical tree, so existing configurations are
	// unchanged. Params stays a comparable value type: the evalpool
	// report cache keys on it, so the topology participates in
	// memoization like every other hardware parameter.
	Topology Topology
	// Mem selects the off-chip memory model. The zero value is the
	// legacy flat byte-count accounting (pinned byte-identical by the
	// golden tests); MemDRAM prices streamed weights through
	// internal/memsim's tiled DRAM channel with prefetch depth and
	// SRAM bank contention.
	Mem MemHierarchy
}

// Siracusa returns the default parameter set modeling the system of the
// paper: Siracusa MCUs (8 RV32 cores at 500 MHz, 256 KiB L1, 2 MiB L2)
// joined by MIPI links (0.5 GB/s, 100 pJ/B), 100 pJ/B L3 and 2 pJ/B L2
// access energy, hierarchical reduction in groups of four.
func Siracusa() Params {
	return Params{
		Chip: Chip{
			Cores:                8,
			FreqHz:               500e6,
			MACsPerCorePerCycle:  8,
			L1Bytes:              256 * KiB,
			L1Banks:              16,
			L2Bytes:              2 * MiB,
			L2ReserveBytes:       448 * KiB,
			L3Bytes:              64 * MiB,
			DMAL2L1BytesPerCycle: 16,
			DMAL2L1SetupCycles:   16,
			DMAL3L2BytesPerCycle: 2.5,
			DMAL3L2SetupCycles:   64,
			KernelSetupCycles:    300,
			ClusterPowerW:        13e-3,
		},
		Network: UniformNetwork(MIPI()),
		Energy: Energy{
			L3PJPerByte: 100,
			L2PJPerByte: 2,
		},
		GroupSize: 4,
	}
}

// CyclesToSeconds converts cluster cycles to wall-clock seconds.
func (p Params) CyclesToSeconds(cycles float64) float64 {
	return cycles / p.Chip.FreqHz
}

// SecondsToCycles converts wall-clock seconds to cluster cycles.
func (p Params) SecondsToCycles(sec float64) float64 {
	return sec * p.Chip.FreqHz
}

// LinkBytesPerCycle is the local/uniform link class bandwidth
// expressed in payload bytes per cluster cycle. Per-edge consumers
// (the event simulator) resolve each edge's own class via LinkFor;
// this helper backs the closed-form estimates, which assume the
// uniform class.
func (p Params) LinkBytesPerCycle() float64 {
	return p.Network.Local.BytesPerCycle(p.Chip.FreqHz)
}

// LinkFor resolves the link class of the directed edge from->to under
// the platform's network description.
func (p Params) LinkFor(from, to int) (LinkClass, error) {
	return p.Network.LinkFor(from, to)
}

// UsableL2Bytes is the L2 capacity available to the deployment planner
// after the runtime reservation.
func (p Params) UsableL2Bytes() int {
	return p.Chip.L2Bytes - p.Chip.L2ReserveBytes
}

// PeakMACsPerCycle is the peak int8 MAC throughput of one chip.
func (p Params) PeakMACsPerCycle() int {
	return p.Chip.Cores * p.Chip.MACsPerCorePerCycle
}

// Validate reports the first structural problem with the parameter
// set, or nil if it is usable by the simulator.
func (p Params) Validate() error {
	c := p.Chip
	switch {
	case c.Cores <= 0:
		return errors.New("hw: chip must have at least one core")
	case c.FreqHz <= 0:
		return errors.New("hw: frequency must be positive")
	case c.MACsPerCorePerCycle <= 0:
		return errors.New("hw: MAC throughput must be positive")
	case c.L1Bytes <= 0 || c.L2Bytes <= 0 || c.L3Bytes <= 0:
		return errors.New("hw: memory sizes must be positive")
	case c.L2ReserveBytes < 0:
		return errors.New("hw: L2 reserve must be non-negative")
	case c.L2ReserveBytes >= c.L2Bytes:
		return fmt.Errorf("hw: L2 reserve %d consumes entire L2 %d", c.L2ReserveBytes, c.L2Bytes)
	case c.DMAL2L1BytesPerCycle <= 0 || c.DMAL3L2BytesPerCycle <= 0:
		return errors.New("hw: DMA bandwidths must be positive")
	case c.DMAL2L1SetupCycles < 0 || c.DMAL3L2SetupCycles < 0 || c.KernelSetupCycles < 0:
		return errors.New("hw: setup costs must be non-negative")
	case c.ClusterPowerW < 0:
		return errors.New("hw: cluster power must be non-negative")
	}
	if err := p.Network.Validate(); err != nil {
		return err
	}
	if p.Energy.L3PJPerByte < 0 || p.Energy.L2PJPerByte < 0 {
		return errors.New("hw: energy constants must be non-negative")
	}
	if !p.Topology.Valid() {
		return fmt.Errorf("hw: %s is not a supported topology", p.Topology)
	}
	// Only the tree-lowered shapes consult GroupSize; the ring and the
	// fully-connected exchange ignore it, so a zero or 1 group size
	// must not reject an otherwise valid ring platform.
	if (p.Topology == TopoTree || p.Topology == TopoStar) && p.GroupSize < 2 {
		return errors.New("hw: reduce group size must be at least 2 (select TopoStar for a flat all-to-one reduction)")
	}
	return p.Mem.Validate()
}
