package hw

import "testing"

func TestTopologyStringAndParse(t *testing.T) {
	for _, topo := range Topologies() {
		got, err := ParseTopology(topo.String())
		if err != nil || got != topo {
			t.Errorf("ParseTopology(%q) = %v, %v", topo.String(), got, err)
		}
	}
	for spelling, want := range map[string]Topology{
		"TREE": TopoTree, "flat": TopoStar, "all-to-one": TopoStar,
		"Ring": TopoRing, "full": TopoFullyConnected, "all-to-all": TopoFullyConnected,
	} {
		got, err := ParseTopology(spelling)
		if err != nil || got != want {
			t.Errorf("ParseTopology(%q) = %v, %v, want %v", spelling, got, err, want)
		}
	}
	if _, err := ParseTopology("mesh"); err == nil {
		t.Error("unknown topology spelling accepted")
	}
}

func TestValidateRejectsUnknownTopology(t *testing.T) {
	p := Siracusa()
	p.Topology = Topology(99)
	if err := p.Validate(); err == nil {
		t.Error("unknown topology passed validation")
	}
	for _, topo := range Topologies() {
		p.Topology = topo
		if err := p.Validate(); err != nil {
			t.Errorf("%s rejected: %v", topo, err)
		}
	}
}
