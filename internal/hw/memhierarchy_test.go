package hw

import "testing"

func TestMemProfileRoundTrip(t *testing.T) {
	for _, p := range MemProfiles() {
		if !p.Valid() {
			t.Fatalf("%s reported invalid", p)
		}
		text, err := p.MarshalText()
		if err != nil {
			t.Fatalf("marshal %s: %v", p, err)
		}
		var q MemProfile
		if err := q.UnmarshalText(text); err != nil {
			t.Fatalf("unmarshal %q: %v", text, err)
		}
		if q != p {
			t.Fatalf("round trip %s -> %q -> %s", p, text, q)
		}
	}
	if _, err := ParseMemProfile("sram"); err == nil {
		t.Fatal("want error for unknown profile")
	}
	if _, err := MemProfile(99).MarshalText(); err == nil {
		t.Fatal("want marshal error for invalid profile")
	}
	for spelling, want := range map[string]MemProfile{
		"flat": MemFlat, "legacy": MemFlat,
		"dram": MemDRAM, "LPDDR5": MemDRAM, "hierarchy": MemDRAM,
	} {
		got, err := ParseMemProfile(spelling)
		if err != nil || got != want {
			t.Fatalf("ParseMemProfile(%q) = %s, %v; want %s", spelling, got, err, want)
		}
	}
}

func TestMemHierarchyZeroValueIsFlatAndValid(t *testing.T) {
	var m MemHierarchy
	if m.Enabled() {
		t.Fatal("zero value must be the flat (disabled) model")
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("zero value must validate: %v", err)
	}
	if m.String() != "flat" {
		t.Fatalf("zero value String = %q", m.String())
	}
	// The flat zero value must not disturb Params validation either.
	if err := Siracusa().Validate(); err != nil {
		t.Fatalf("Siracusa with zero Mem: %v", err)
	}
}

func TestLPDDR5Validates(t *testing.T) {
	m := LPDDR5()
	if !m.Enabled() {
		t.Fatal("LPDDR5 must enable the hierarchy")
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("LPDDR5: %v", err)
	}
	p := Siracusa()
	p.Mem = m
	if err := p.Validate(); err != nil {
		t.Fatalf("Siracusa+LPDDR5: %v", err)
	}
}

func TestMemHierarchyValidateRejects(t *testing.T) {
	base := LPDDR5()
	cases := []struct {
		name string
		mut  func(*MemHierarchy)
	}{
		{"zero bandwidth", func(m *MemHierarchy) { m.DRAMBytesPerCycle = 0 }},
		{"zero burst", func(m *MemHierarchy) { m.DRAMBurstBytes = 0 }},
		{"negative setup", func(m *MemHierarchy) { m.DRAMBurstSetupCycles = -1 }},
		{"zero depth", func(m *MemHierarchy) { m.PrefetchDepth = 0 }},
		{"zero banks", func(m *MemHierarchy) { m.SRAMBanks = 0 }},
		{"half tiling", func(m *MemHierarchy) { m.TileN = 64 }},
		{"half ffn tiling", func(m *MemHierarchy) { m.FFNTileK = 64 }},
		{"negative tile", func(m *MemHierarchy) { m.TileN, m.TileK = -1, -1 }},
		{"negative energy", func(m *MemHierarchy) { m.DRAMPJPerByte = -1 }},
		{"invalid profile", func(m *MemHierarchy) { m.Profile = MemProfile(42) }},
	}
	for _, tc := range cases {
		m := base
		tc.mut(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: want validation error", tc.name)
		}
		p := Siracusa()
		p.Mem = m
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Params.Validate must reject too", tc.name)
		}
	}
}

func TestMemHierarchyTileFor(t *testing.T) {
	m := LPDDR5()
	m.TileK, m.TileN = 256, 128
	if n, k := m.TileFor(false); n != 128 || k != 256 {
		t.Fatalf("attention tile = %dx%d", k, n)
	}
	// FFN inherits the attention tiling until overridden.
	if n, k := m.TileFor(true); n != 128 || k != 256 {
		t.Fatalf("inherited FFN tile = %dx%d", k, n)
	}
	m.FFNTileK, m.FFNTileN = 512, 64
	if n, k := m.TileFor(true); n != 64 || k != 512 {
		t.Fatalf("override FFN tile = %dx%d", k, n)
	}
}

func TestMemHierarchyString(t *testing.T) {
	m := LPDDR5()
	if got := m.String(); got != "dram-d2b8" {
		t.Fatalf("LPDDR5 String = %q", got)
	}
	m.TileK, m.TileN = 256, 128
	if got := m.String(); got != "dram-d2b8-t256x128" {
		t.Fatalf("tiled String = %q", got)
	}
	m.FFNTileK, m.FFNTileN = 512, 64
	if got := m.String(); got != "dram-d2b8-t256x128-f512x64" {
		t.Fatalf("per-family String = %q", got)
	}
}
