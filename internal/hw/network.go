package hw

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// LinkClass describes one class of chip-to-chip serial interface: a
// (bandwidth, setup, energy) triple. Real multi-MCU boards mix link
// classes — MIPI between neighbouring chips, a slower SPI or shared
// backhaul between clusters — so the network description assigns a
// LinkClass to each directed edge instead of assuming one global link.
// LinkClass is a comparable value type: it participates in the
// evalpool cache key through Network.
type LinkClass struct {
	// BandwidthBytesPerSec is the usable payload bandwidth.
	BandwidthBytesPerSec float64
	// SetupCycles is the fixed per-transfer cost (packetization,
	// handshake) expressed in cluster cycles.
	SetupCycles int
	// EnergyPJPerByte is the transfer energy per payload byte.
	EnergyPJPerByte float64
}

// MIPI returns the paper's chip-to-chip link class: 0.5 GB/s, 256
// setup cycles, 100 pJ/B.
func MIPI() LinkClass {
	return LinkClass{BandwidthBytesPerSec: 0.5e9, SetupCycles: 256, EnergyPJPerByte: 100}
}

// Defined reports whether the class describes a usable link. The zero
// LinkClass is the "no edge here" marker: resolving it is how a
// schedule hop over an unwired chip pair is rejected.
func (c LinkClass) Defined() bool { return c.BandwidthBytesPerSec > 0 }

// BytesPerCycle is the class bandwidth expressed in payload bytes per
// cluster cycle at the given cluster frequency (the unit used by the
// event simulator).
func (c LinkClass) BytesPerCycle(freqHz float64) float64 {
	return c.BandwidthBytesPerSec / freqHz
}

// TransferCycles is the time one transfer of the given payload
// occupies a link of this class, in cluster cycles: payload/bandwidth
// plus the per-transfer setup.
func (c LinkClass) TransferCycles(freqHz float64, payloadBytes int64) float64 {
	if payloadBytes <= 0 {
		return 0
	}
	return float64(payloadBytes)/c.BytesPerCycle(freqHz) + float64(c.SetupCycles)
}

// Slower returns the class with bandwidth divided by factor — the
// spelling of "a 10x-slower backhaul" used by the clustered-network
// constructors and the -backhaul CLI flags.
func (c LinkClass) Slower(factor float64) LinkClass {
	c.BandwidthBytesPerSec /= factor
	return c
}

// Validate reports the first structural problem with the class.
func (c LinkClass) Validate() error {
	if !(c.BandwidthBytesPerSec > 0) || math.IsInf(c.BandwidthBytesPerSec, 1) {
		return fmt.Errorf("hw: link bandwidth must be positive and finite, got %g", c.BandwidthBytesPerSec)
	}
	if c.SetupCycles < 0 || c.EnergyPJPerByte < 0 {
		return fmt.Errorf("hw: link costs must be non-negative")
	}
	return nil
}

// NetworkProfile selects how a Network assigns link classes to edges.
type NetworkProfile int

const (
	// NetUniform assigns one class (Network.Local) to every edge —
	// the paper's all-MIPI assumption and the zero value, so every
	// configuration that predates the per-edge link model keeps
	// reproducing the paper's numbers unchanged.
	NetUniform NetworkProfile = iota
	// NetClustered is the two-tier board: chips are grouped into
	// consecutive clusters of Network.ClusterSize; edges inside a
	// cluster use Network.Local, edges between clusters use
	// Network.Backhaul (typically much slower).
	NetClustered
	// NetTable resolves edges from an explicit per-edge table
	// registered with TableNetwork — the shape for measured board
	// wirings. Edges absent from the table are undefined and reject
	// any schedule that routes over them.
	NetTable

	networkProfileCount // sentinel for validation
)

// NetworkProfiles returns every supported profile, in enum order.
func NetworkProfiles() []NetworkProfile {
	return []NetworkProfile{NetUniform, NetClustered, NetTable}
}

func (p NetworkProfile) String() string {
	switch p {
	case NetUniform:
		return "uniform"
	case NetClustered:
		return "clustered"
	case NetTable:
		return "table"
	default:
		return fmt.Sprintf("network-profile(%d)", int(p))
	}
}

// Valid reports whether p names a supported profile.
func (p NetworkProfile) Valid() bool { return p >= 0 && p < networkProfileCount }

// ParseNetworkProfile maps a command-line spelling to a profile.
// Accepted names: uniform | mipi, clustered | two-tier, table.
func ParseNetworkProfile(s string) (NetworkProfile, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "uniform", "mipi", "flat":
		return NetUniform, nil
	case "clustered", "two-tier", "backhaul":
		return NetClustered, nil
	case "table", "per-edge", "netlist":
		return NetTable, nil
	default:
		return 0, fmt.Errorf("hw: unknown network profile %q (want uniform | clustered | table)", s)
	}
}

// MarshalText emits the canonical spelling, so JSON/CSV sinks print
// "clustered" instead of a bare int.
func (p NetworkProfile) MarshalText() ([]byte, error) {
	if !p.Valid() {
		return nil, fmt.Errorf("hw: cannot marshal invalid network profile %d", int(p))
	}
	return []byte(p.String()), nil
}

// UnmarshalText parses any spelling ParseNetworkProfile accepts.
func (p *NetworkProfile) UnmarshalText(text []byte) error {
	v, err := ParseNetworkProfile(string(text))
	if err != nil {
		return err
	}
	*p = v
	return nil
}

// Edge is one directed chip pair of a per-edge link table.
type Edge struct {
	From, To int
}

// Network assigns a LinkClass to every directed chip-to-chip edge.
// It is a comparable value type — the evalpool report cache keys on
// the full hw.Params — so the explicit per-edge table is carried by a
// canonical content digest into a process-wide registry rather than by
// a map field: two networks built from equal tables compare equal and
// share one cache entry.
type Network struct {
	Profile NetworkProfile
	// Local is the uniform class (NetUniform) or the intra-cluster
	// class (NetClustered).
	Local LinkClass
	// Backhaul is the inter-cluster class (NetClustered only).
	Backhaul LinkClass
	// ClusterSize is the number of consecutive chips per cluster
	// (NetClustered only).
	ClusterSize int
	// TableDigest identifies a registered per-edge table (NetTable
	// only): the canonical content digest returned by TableNetwork.
	TableDigest string
}

// UniformNetwork assigns one class to every edge — today's default
// wiring, byte-identical to the pre-refactor single hw.Link.
func UniformNetwork(c LinkClass) Network {
	return Network{Profile: NetUniform, Local: c}
}

// ClusteredNetwork builds the two-tier board: consecutive clusters of
// clusterSize chips wired with local internally and backhaul between
// clusters.
func ClusteredNetwork(local, backhaul LinkClass, clusterSize int) Network {
	return Network{Profile: NetClustered, Local: local, Backhaul: backhaul, ClusterSize: clusterSize}
}

// tableRegistry interns explicit per-edge tables by canonical digest,
// keeping Network a comparable value while supporting arbitrary
// measured wirings.
var (
	tableMu  sync.RWMutex
	tableReg = map[string]map[Edge]LinkClass{}
)

// TableNetwork registers an explicit per-edge link table and returns
// the Network referencing it. The table is keyed by a canonical
// digest of its exact contents (edges sorted, float bit patterns), so
// registering an equal table twice yields equal Network values — the
// property the evalpool cache key depends on. Every class in the
// table must validate; edges not present are undefined and reject
// schedules that route over them.
func TableNetwork(edges map[Edge]LinkClass) (Network, error) {
	if len(edges) == 0 {
		return Network{}, fmt.Errorf("hw: per-edge table must define at least one edge")
	}
	keys := make([]Edge, 0, len(edges))
	for e, c := range edges {
		if e.From < 0 || e.To < 0 || e.From == e.To {
			return Network{}, fmt.Errorf("hw: bad table edge %d->%d", e.From, e.To)
		}
		if err := c.Validate(); err != nil {
			return Network{}, fmt.Errorf("hw: table edge %d->%d: %w", e.From, e.To, err)
		}
		keys = append(keys, e)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].From != keys[j].From {
			return keys[i].From < keys[j].From
		}
		return keys[i].To < keys[j].To
	})
	h := sha256.New()
	for _, e := range keys {
		c := edges[e]
		fmt.Fprintf(h, "%d>%d:%016x:%d:%016x;", e.From, e.To,
			math.Float64bits(c.BandwidthBytesPerSec), c.SetupCycles,
			math.Float64bits(c.EnergyPJPerByte))
	}
	digest := hex.EncodeToString(h.Sum(nil))

	cp := make(map[Edge]LinkClass, len(edges))
	for e, c := range edges {
		cp[e] = c
	}
	tableMu.Lock()
	tableReg[digest] = cp
	tableMu.Unlock()
	return Network{Profile: NetTable, TableDigest: digest}, nil
}

// lookupTable returns the registered table, or nil.
func lookupTable(digest string) map[Edge]LinkClass {
	tableMu.RLock()
	defer tableMu.RUnlock()
	return tableReg[digest]
}

// TableEdges returns a copy of the per-edge table registered under
// digest, or ok=false if no table with that digest is registered in
// this process. The persistent result store uses it to write table
// wirings next to the reports that reference them, so a cold process
// can re-register the table (through TableNetwork, which reproduces
// the same content digest) before serving cached table-backed runs.
func TableEdges(digest string) (map[Edge]LinkClass, bool) {
	table := lookupTable(digest)
	if table == nil {
		return nil, false
	}
	cp := make(map[Edge]LinkClass, len(table))
	for e, c := range table {
		cp[e] = c
	}
	return cp, true
}

// LinkFor resolves the class of the directed edge from->to. An edge a
// network does not define — a table edge that was never registered, or
// an unwired chip pair — returns an error; schedule lowering surfaces
// it before any simulation runs.
func (n Network) LinkFor(from, to int) (LinkClass, error) {
	if from == to {
		return LinkClass{}, fmt.Errorf("hw: self-edge %d->%d has no link", from, to)
	}
	switch n.Profile {
	case NetUniform:
		return n.Local, nil
	case NetClustered:
		if n.ClusterSize <= 0 {
			return LinkClass{}, fmt.Errorf("hw: clustered network needs a positive cluster size, got %d", n.ClusterSize)
		}
		if from/n.ClusterSize == to/n.ClusterSize {
			return n.Local, nil
		}
		return n.Backhaul, nil
	case NetTable:
		table := lookupTable(n.TableDigest)
		if table == nil {
			return LinkClass{}, fmt.Errorf("hw: per-edge table %q is not registered (build the network with TableNetwork)", n.TableDigest)
		}
		c, ok := table[Edge{From: from, To: to}]
		if !ok {
			return LinkClass{}, fmt.Errorf("hw: edge %d->%d is not wired in the per-edge table", from, to)
		}
		return c, nil
	default:
		return LinkClass{}, fmt.Errorf("hw: %s is not a supported network profile", n.Profile)
	}
}

// String names the network for sweep labels and reports: "uniform",
// "clustered-4x10" (cluster size 4, backhaul 10x slower), or
// "table-<digest prefix>".
func (n Network) String() string {
	switch n.Profile {
	case NetUniform:
		return "uniform"
	case NetClustered:
		slow := "?"
		if n.Backhaul.BandwidthBytesPerSec > 0 {
			slow = fmt.Sprintf("%g", n.Local.BandwidthBytesPerSec/n.Backhaul.BandwidthBytesPerSec)
		}
		return fmt.Sprintf("clustered-%dx%s", n.ClusterSize, slow)
	case NetTable:
		d := n.TableDigest
		if len(d) > 8 {
			d = d[:8]
		}
		return "table-" + d
	default:
		return n.Profile.String()
	}
}

// Validate reports the first structural problem with the network.
func (n Network) Validate() error {
	switch n.Profile {
	case NetUniform:
		return n.Local.Validate()
	case NetClustered:
		if err := n.Local.Validate(); err != nil {
			return fmt.Errorf("hw: clustered local class: %w", err)
		}
		if err := n.Backhaul.Validate(); err != nil {
			return fmt.Errorf("hw: clustered backhaul class: %w", err)
		}
		if n.ClusterSize <= 0 {
			return fmt.Errorf("hw: clustered network needs a positive cluster size, got %d", n.ClusterSize)
		}
		return nil
	case NetTable:
		if lookupTable(n.TableDigest) == nil {
			return fmt.Errorf("hw: per-edge table %q is not registered (build the network with TableNetwork)", n.TableDigest)
		}
		return nil
	default:
		return fmt.Errorf("hw: %s is not a supported network profile", n.Profile)
	}
}
