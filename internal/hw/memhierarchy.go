package hw

import (
	"fmt"
	"math"
	"strings"
)

// MemProfile selects how the simulator prices the off-chip memory
// path.
type MemProfile int

const (
	// MemFlat is the paper's accounting and the zero value: off-chip
	// traffic is a flat byte count through the I/O DMA
	// (DMAL3L2BytesPerCycle + DMAL3L2SetupCycles), with no tiling,
	// prefetch-depth, or bank-contention structure. Every
	// configuration that predates the memory hierarchy keeps
	// reproducing its numbers byte-identically.
	MemFlat MemProfile = iota
	// MemDRAM models the off-chip path as a DRAM channel feeding a
	// banked SRAM through a tile-granular double-buffered prefetch
	// engine: per-burst setup + bandwidth on the channel, a bounded
	// number of tiles in flight (PrefetchDepth), and contention
	// stalls when compute and prefetch arbitrate for the same SRAM
	// banks. Streamed weights are priced per tile by internal/memsim
	// instead of as one undifferentiated transfer.
	MemDRAM

	memProfileCount // sentinel for validation
)

// MemProfiles returns every supported memory profile, in enum order.
func MemProfiles() []MemProfile {
	return []MemProfile{MemFlat, MemDRAM}
}

func (p MemProfile) String() string {
	switch p {
	case MemFlat:
		return "flat"
	case MemDRAM:
		return "dram"
	default:
		return fmt.Sprintf("mem-profile(%d)", int(p))
	}
}

// Valid reports whether p names a supported memory profile.
func (p MemProfile) Valid() bool { return p >= 0 && p < memProfileCount }

// ParseMemProfile maps a command-line spelling to a memory profile.
// Accepted names: flat | legacy, dram | lpddr5 | hierarchy.
func ParseMemProfile(s string) (MemProfile, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "flat", "legacy", "byte-count":
		return MemFlat, nil
	case "dram", "lpddr5", "hierarchy", "tiled":
		return MemDRAM, nil
	default:
		return 0, fmt.Errorf("hw: unknown memory profile %q (want flat | dram)", s)
	}
}

// MarshalText emits the canonical spelling, so JSON/CSV sinks print
// "dram" instead of a bare int.
func (p MemProfile) MarshalText() ([]byte, error) {
	if !p.Valid() {
		return nil, fmt.Errorf("hw: cannot marshal invalid memory profile %d", int(p))
	}
	return []byte(p.String()), nil
}

// UnmarshalText parses any spelling ParseMemProfile accepts.
func (p *MemProfile) UnmarshalText(text []byte) error {
	v, err := ParseMemProfile(string(text))
	if err != nil {
		return err
	}
	*p = v
	return nil
}

// MemHierarchy describes the off-chip memory subsystem as a hierarchy
// rather than a flat byte count: a DRAM channel (per-burst setup plus
// bandwidth), a tile-granular prefetch engine with a bounded number of
// tiles in flight, and an N-bank SRAM arbiter that charges contention
// stalls when compute and prefetch hit the banks concurrently.
//
// The zero value (Profile == MemFlat) is the legacy flat model and is
// pinned byte-identical by the golden tests; MemDRAM is strictly
// additive. MemHierarchy is a comparable value type carried on
// hw.Params, so every knob — including the tiling dimensions —
// participates in the evalpool cache key and the persistent result
// store digest like any other hardware parameter.
type MemHierarchy struct {
	// Profile selects the model (MemFlat = legacy, the zero value).
	Profile MemProfile

	// DRAMBytesPerCycle is the channel's payload bandwidth in bytes
	// per cluster cycle.
	DRAMBytesPerCycle float64
	// DRAMBurstBytes is the burst granule: a transfer of n bytes
	// issues ceil(n / DRAMBurstBytes) bursts.
	DRAMBurstBytes int
	// DRAMBurstSetupCycles is the fixed cost of opening one burst
	// (row activation, command overhead).
	DRAMBurstSetupCycles int

	// PrefetchDepth is how many weight tiles the prefetch engine may
	// fetch ahead of the tile being computed (>= 1). The stream
	// buffer holds PrefetchDepth+1 tile slots: one active, the rest
	// in flight — the buffer split that bounds fetch/compute overlap.
	PrefetchDepth int
	// SRAMBanks is the number of interleaved SRAM banks between the
	// prefetch engine and the compute cluster. While a prefetch is in
	// flight during a tile's compute, the arbiter charges a
	// contention stall of min(tile work, next fetch) / SRAMBanks.
	SRAMBanks int

	// TileN / TileK are the weight-tile dimensions in elements (the
	// tile covers TileK rows of the GEMM's K axis by TileN columns of
	// its N axis). Zero means auto: the largest tile that fits one
	// stream-buffer slot. Both must be set together.
	TileN, TileK int
	// FFNTileN / FFNTileK override the tile dimensions for the FFN
	// layer family (the attention family uses TileN/TileK); zero
	// inherits. The per-family split is the exemplar's stretch goal:
	// attention and FFN GEMMs have different shapes and prefer
	// different tilings, exactly as prefill and decode preferred
	// different topologies.
	FFNTileN, FFNTileK int

	// DRAMPJPerByte is the DRAM transfer energy, billed for every
	// off-chip byte in place of Energy.L3PJPerByte when the hierarchy
	// is enabled — DRAM pJ/B is a different physical constant than
	// the chip-to-chip link's.
	DRAMPJPerByte float64
}

// Enabled reports whether the hierarchical model is selected.
func (m MemHierarchy) Enabled() bool { return m.Profile != MemFlat }

// LPDDR5 returns a DRAM-backed hierarchy modeled on the
// lm_memory_controller exemplar's edge SoC: a single LPDDR5 channel at
// 4 GB/s usable payload bandwidth (8 B per 500 MHz cluster cycle),
// 512-byte bursts costing 96 cycles of setup each, a prefetch engine
// running 2 tiles ahead of compute over an 8-bank SRAM, auto tile
// sizing, and 60 pJ/B transfer energy.
func LPDDR5() MemHierarchy {
	return MemHierarchy{
		Profile:              MemDRAM,
		DRAMBytesPerCycle:    8,
		DRAMBurstBytes:       512,
		DRAMBurstSetupCycles: 96,
		PrefetchDepth:        2,
		SRAMBanks:            8,
		DRAMPJPerByte:        60,
	}
}

// TileFor returns the resolved tile dimensions of a layer family
// (ffn selects the FFN overrides when set). Zeros mean auto sizing.
func (m MemHierarchy) TileFor(ffn bool) (n, k int) {
	if ffn && (m.FFNTileN > 0 || m.FFNTileK > 0) {
		return m.FFNTileN, m.FFNTileK
	}
	return m.TileN, m.TileK
}

// String names the hierarchy for sweep labels: "flat", or
// "dram-d<depth>b<banks>" with the tile dims appended when pinned
// ("dram-d2b8-t256x128" is depth 2, 8 banks, TileK=256, TileN=128).
func (m MemHierarchy) String() string {
	if !m.Enabled() {
		return "flat"
	}
	s := fmt.Sprintf("dram-d%db%d", m.PrefetchDepth, m.SRAMBanks)
	if m.TileN > 0 {
		s += fmt.Sprintf("-t%dx%d", m.TileK, m.TileN)
	}
	if m.FFNTileN > 0 || m.FFNTileK > 0 {
		s += fmt.Sprintf("-f%dx%d", m.FFNTileK, m.FFNTileN)
	}
	return s
}

// Validate reports the first structural problem with the hierarchy.
// The zero value (flat profile) always validates; the knobs are
// checked only when the hierarchical model is enabled.
func (m MemHierarchy) Validate() error {
	if !m.Profile.Valid() {
		return fmt.Errorf("hw: %s is not a supported memory profile", m.Profile)
	}
	if !m.Enabled() {
		return nil
	}
	switch {
	case !(m.DRAMBytesPerCycle > 0) || math.IsInf(m.DRAMBytesPerCycle, 1):
		return fmt.Errorf("hw: DRAM bandwidth must be positive and finite, got %g", m.DRAMBytesPerCycle)
	case m.DRAMBurstBytes <= 0:
		return fmt.Errorf("hw: DRAM burst bytes must be positive, got %d", m.DRAMBurstBytes)
	case m.DRAMBurstSetupCycles < 0:
		return fmt.Errorf("hw: DRAM burst setup must be non-negative, got %d", m.DRAMBurstSetupCycles)
	case m.PrefetchDepth < 1:
		return fmt.Errorf("hw: prefetch depth must be at least 1, got %d", m.PrefetchDepth)
	case m.SRAMBanks < 1:
		return fmt.Errorf("hw: SRAM bank count must be at least 1, got %d", m.SRAMBanks)
	case m.TileN < 0 || m.TileK < 0 || m.FFNTileN < 0 || m.FFNTileK < 0:
		return fmt.Errorf("hw: tile dimensions must be non-negative")
	case (m.TileN > 0) != (m.TileK > 0):
		return fmt.Errorf("hw: tile dimensions must be set together (TileN=%d TileK=%d)", m.TileN, m.TileK)
	case (m.FFNTileN > 0) != (m.FFNTileK > 0):
		return fmt.Errorf("hw: FFN tile dimensions must be set together (FFNTileN=%d FFNTileK=%d)", m.FFNTileN, m.FFNTileK)
	case m.DRAMPJPerByte < 0:
		return fmt.Errorf("hw: DRAM energy must be non-negative, got %g", m.DRAMPJPerByte)
	}
	return nil
}
