package hw

import (
	"math"
	"testing"
)

func TestSiracusaValid(t *testing.T) {
	p := Siracusa()
	if err := p.Validate(); err != nil {
		t.Fatalf("default preset invalid: %v", err)
	}
}

func TestSiracusaMatchesPaperConstants(t *testing.T) {
	p := Siracusa()
	if p.Chip.Cores != 8 {
		t.Errorf("cores = %d, want 8", p.Chip.Cores)
	}
	if p.Chip.FreqHz != 500e6 {
		t.Errorf("freq = %g, want 500 MHz", p.Chip.FreqHz)
	}
	if p.Chip.L1Bytes != 256*KiB {
		t.Errorf("L1 = %d, want 256 KiB", p.Chip.L1Bytes)
	}
	if p.Chip.L2Bytes != 2*MiB {
		t.Errorf("L2 = %d, want 2 MiB", p.Chip.L2Bytes)
	}
	if p.Network.Profile != NetUniform {
		t.Errorf("network profile = %v, want uniform", p.Network.Profile)
	}
	if p.Network.Local.BandwidthBytesPerSec != 0.5e9 {
		t.Errorf("link bw = %g, want 0.5 GB/s", p.Network.Local.BandwidthBytesPerSec)
	}
	if p.Network.Local.EnergyPJPerByte != 100 {
		t.Errorf("link energy = %g, want 100 pJ/B", p.Network.Local.EnergyPJPerByte)
	}
	if p.Energy.L3PJPerByte != 100 || p.Energy.L2PJPerByte != 2 {
		t.Errorf("memory energies = %g/%g, want 100/2 pJ/B", p.Energy.L3PJPerByte, p.Energy.L2PJPerByte)
	}
	if p.GroupSize != 4 {
		t.Errorf("group size = %d, want 4", p.GroupSize)
	}
	if p.Chip.ClusterPowerW != 13e-3 {
		t.Errorf("cluster power = %g, want 13 mW", p.Chip.ClusterPowerW)
	}
}

func TestCycleConversionRoundTrip(t *testing.T) {
	p := Siracusa()
	for _, cycles := range []float64{0, 1, 500e6, 1.25e9} {
		sec := p.CyclesToSeconds(cycles)
		back := p.SecondsToCycles(sec)
		if math.Abs(back-cycles) > 1e-6*math.Max(1, cycles) {
			t.Errorf("round trip %g -> %g", cycles, back)
		}
	}
	if got := p.CyclesToSeconds(500e6); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("500e6 cycles at 500 MHz = %g s, want 1 s", got)
	}
}

func TestLinkBytesPerCycle(t *testing.T) {
	p := Siracusa()
	// 0.5 GB/s at 500 MHz is exactly 1 byte per cycle.
	if got := p.LinkBytesPerCycle(); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("link bytes/cycle = %g, want 1.0", got)
	}
}

func TestUsableL2(t *testing.T) {
	p := Siracusa()
	want := 2*MiB - 448*KiB
	if got := p.UsableL2Bytes(); got != want {
		t.Errorf("usable L2 = %d, want %d", got, want)
	}
}

func TestPeakMACs(t *testing.T) {
	p := Siracusa()
	if got := p.PeakMACsPerCycle(); got != 64 {
		t.Errorf("peak MACs/cycle = %d, want 64", got)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Params)
	}{
		{"zero cores", func(p *Params) { p.Chip.Cores = 0 }},
		{"negative freq", func(p *Params) { p.Chip.FreqHz = -1 }},
		{"zero macs", func(p *Params) { p.Chip.MACsPerCorePerCycle = 0 }},
		{"zero l1", func(p *Params) { p.Chip.L1Bytes = 0 }},
		{"zero l2", func(p *Params) { p.Chip.L2Bytes = 0 }},
		{"zero l3", func(p *Params) { p.Chip.L3Bytes = 0 }},
		{"negative reserve", func(p *Params) { p.Chip.L2ReserveBytes = -1 }},
		{"reserve too large", func(p *Params) { p.Chip.L2ReserveBytes = p.Chip.L2Bytes }},
		{"zero l2l1 bw", func(p *Params) { p.Chip.DMAL2L1BytesPerCycle = 0 }},
		{"zero l3l2 bw", func(p *Params) { p.Chip.DMAL3L2BytesPerCycle = 0 }},
		{"negative dma setup", func(p *Params) { p.Chip.DMAL2L1SetupCycles = -1 }},
		{"negative kernel setup", func(p *Params) { p.Chip.KernelSetupCycles = -1 }},
		{"negative power", func(p *Params) { p.Chip.ClusterPowerW = -1 }},
		{"zero link bw", func(p *Params) { p.Network.Local.BandwidthBytesPerSec = 0 }},
		{"negative link setup", func(p *Params) { p.Network.Local.SetupCycles = -1 }},
		{"negative link energy", func(p *Params) { p.Network.Local.EnergyPJPerByte = -1 }},
		{"invalid network profile", func(p *Params) { p.Network.Profile = NetworkProfile(99) }},
		{"clustered zero cluster size", func(p *Params) {
			p.Network = ClusteredNetwork(MIPI(), MIPI().Slower(10), 0)
		}},
		{"clustered dead backhaul", func(p *Params) {
			p.Network = ClusteredNetwork(MIPI(), LinkClass{}, 4)
		}},
		{"unregistered table", func(p *Params) {
			p.Network = Network{Profile: NetTable, TableDigest: "no-such-digest"}
		}},
		{"negative l3 energy", func(p *Params) { p.Energy.L3PJPerByte = -1 }},
		{"negative l2 energy", func(p *Params) { p.Energy.L2PJPerByte = -1 }},
		{"tiny group", func(p *Params) { p.GroupSize = 1 }},
	}
	for _, m := range mutations {
		p := Siracusa()
		m.mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted bad params", m.name)
		}
	}
}

// The GroupSize floor only applies to the tree-lowered shapes: the
// ring and the fully-connected exchange never consult it, so a ring
// platform with the zero GroupSize must validate.
func TestGroupSizeFloorOnlyForTreeShapes(t *testing.T) {
	for _, topo := range Topologies() {
		p := Siracusa()
		p.Topology = topo
		p.GroupSize = 0
		err := p.Validate()
		treeLowered := topo == TopoTree || topo == TopoStar
		if treeLowered && err == nil {
			t.Errorf("%s: GroupSize=0 accepted for a tree-lowered topology", topo)
		}
		if !treeLowered && err != nil {
			t.Errorf("%s: GroupSize=0 rejected for a topology that never consults it: %v", topo, err)
		}
	}
}
