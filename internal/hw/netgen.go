package hw

import "fmt"

// This file generates explicit per-edge wirings on top of the
// TableNetwork machinery: a materializer that expands any network
// profile into its edge table (the form the resilience tier perturbs),
// and two classic sparse fabrics — the 2D torus and the dragonfly —
// that exercise multi-hop stage routing because most chip pairs have
// no direct edge.

// NetworkEdges materializes the network's wiring over chips 0..n-1 as
// an explicit per-edge table: every directed edge the network defines
// between those chips, with its resolved class. For the uniform and
// clustered profiles that is the complete bipartite set (every ordered
// pair is wired); for a table profile it is the registered edges
// restricted to chips below n. The result is a fresh map the caller
// may mutate — the fault-injection layer rewrites it and re-registers
// the perturbed table.
func NetworkEdges(net Network, n int) (map[Edge]LinkClass, error) {
	if n < 2 {
		return nil, fmt.Errorf("hw: cannot materialize a network over %d chips (need at least 2)", n)
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	edges := make(map[Edge]LinkClass)
	if net.Profile == NetTable {
		table := lookupTable(net.TableDigest)
		for e, c := range table {
			if e.From < n && e.To < n {
				edges[e] = c
			}
		}
		if len(edges) == 0 {
			return nil, fmt.Errorf("hw: per-edge table %s defines no edges below chip %d", net, n)
		}
		return edges, nil
	}
	for from := 0; from < n; from++ {
		for to := 0; to < n; to++ {
			if from == to {
				continue
			}
			c, err := net.LinkFor(from, to)
			if err != nil {
				return nil, err
			}
			edges[Edge{From: from, To: to}] = c
		}
	}
	return edges, nil
}

// TorusNetwork wires dimX x dimY chips as a 2D torus: chip (x, y) is
// chip y*dimX+x, with bidirectional links to its +-x and +-y
// neighbours, wrapping at the edges. Dimensions of 1 contribute no
// edges on their axis (a 1 x N torus is a ring) and a dimension of 2
// collapses the wraparound onto the direct neighbour link. Non-
// neighbour pairs are unwired, so collective schedules that hop
// arbitrary pairs are rejected and pipeline handoffs route multi-hop.
func TorusNetwork(dimX, dimY int, c LinkClass) (Network, error) {
	if dimX < 1 || dimY < 1 || dimX*dimY < 2 {
		return Network{}, fmt.Errorf("hw: torus dimensions %dx%d need at least 2 chips", dimX, dimY)
	}
	edges := make(map[Edge]LinkClass)
	wire := func(a, b int) {
		if a == b {
			return
		}
		edges[Edge{From: a, To: b}] = c
		edges[Edge{From: b, To: a}] = c
	}
	for y := 0; y < dimY; y++ {
		for x := 0; x < dimX; x++ {
			chip := y*dimX + x
			wire(chip, y*dimX+(x+1)%dimX)
			wire(chip, ((y+1)%dimY)*dimX+x)
		}
	}
	return TableNetwork(edges)
}

// DragonflyNetwork wires groups x perGroup chips as a dragonfly: each
// group of perGroup consecutive chips is fully connected with the
// local class, and every group pair is joined by one bidirectional
// global link with the global class. The global link between groups a
// and b attaches to deterministic port chips — a's chip a*perGroup +
// b%perGroup and b's chip b*perGroup + a%perGroup — so global traffic
// spreads across a group's members instead of converging on chip 0.
func DragonflyNetwork(groups, perGroup int, local, global LinkClass) (Network, error) {
	if groups < 1 || perGroup < 1 || groups*perGroup < 2 {
		return Network{}, fmt.Errorf("hw: dragonfly %d groups x %d chips needs at least 2 chips", groups, perGroup)
	}
	edges := make(map[Edge]LinkClass)
	for g := 0; g < groups; g++ {
		base := g * perGroup
		for i := 0; i < perGroup; i++ {
			for j := 0; j < perGroup; j++ {
				if i != j {
					edges[Edge{From: base + i, To: base + j}] = local
				}
			}
		}
	}
	for a := 0; a < groups; a++ {
		for b := a + 1; b < groups; b++ {
			pa := a*perGroup + b%perGroup
			pb := b*perGroup + a%perGroup
			edges[Edge{From: pa, To: pb}] = global
			edges[Edge{From: pb, To: pa}] = global
		}
	}
	return TableNetwork(edges)
}
