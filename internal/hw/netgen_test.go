package hw

import "testing"

func TestNetworkEdgesUniform(t *testing.T) {
	net := UniformNetwork(MIPI())
	edges, err := NetworkEdges(net, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 12 {
		t.Fatalf("uniform over 4 chips materialized %d edges, want 12", len(edges))
	}
	for e, c := range edges {
		if c != MIPI() {
			t.Fatalf("edge %v got class %+v, want MIPI", e, c)
		}
	}
	// Round trip: materializing and re-registering must reproduce the
	// resolved classes exactly.
	tbl, err := TableNetwork(edges)
	if err != nil {
		t.Fatal(err)
	}
	for from := 0; from < 4; from++ {
		for to := 0; to < 4; to++ {
			if from == to {
				continue
			}
			want, _ := net.LinkFor(from, to)
			got, err := tbl.LinkFor(from, to)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("edge %d->%d: table resolves %+v, network %+v", from, to, got, want)
			}
		}
	}
}

func TestNetworkEdgesClustered(t *testing.T) {
	local, back := MIPI(), MIPI().Slower(10)
	net := ClusteredNetwork(local, back, 2)
	edges, err := NetworkEdges(net, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := edges[Edge{From: 0, To: 1}]; got != local {
		t.Fatalf("intra-cluster edge got %+v, want local", got)
	}
	if got := edges[Edge{From: 0, To: 2}]; got != back {
		t.Fatalf("inter-cluster edge got %+v, want backhaul", got)
	}
}

func TestNetworkEdgesTableRestricts(t *testing.T) {
	net, err := TableNetwork(map[Edge]LinkClass{
		{From: 0, To: 1}: MIPI(),
		{From: 1, To: 0}: MIPI(),
		{From: 5, To: 6}: MIPI(),
	})
	if err != nil {
		t.Fatal(err)
	}
	edges, err := NetworkEdges(net, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 2 {
		t.Fatalf("restricted table materialized %d edges, want 2", len(edges))
	}
	if _, err := NetworkEdges(UniformNetwork(MIPI()), 1); err == nil {
		t.Fatal("materializing over 1 chip should fail")
	}
}

func TestTorusNetworkRoundTrip(t *testing.T) {
	a, err := TorusNetwork(4, 4, MIPI())
	if err != nil {
		t.Fatal(err)
	}
	b, err := TorusNetwork(4, 4, MIPI())
	if err != nil {
		t.Fatal(err)
	}
	// Equal parameters intern to the same content digest, so the two
	// values compare equal — the evalpool cache-key property.
	if a != b {
		t.Fatalf("equal torus parameters produced unequal networks: %v vs %v", a, b)
	}
	edges, ok := TableEdges(a.TableDigest)
	if !ok {
		t.Fatal("torus table not registered")
	}
	// 16 chips x degree 4, both directions.
	if len(edges) != 64 {
		t.Fatalf("4x4 torus has %d directed edges, want 64", len(edges))
	}
	rt, err := TableNetwork(edges)
	if err != nil {
		t.Fatal(err)
	}
	if rt != a {
		t.Fatal("re-registering the torus edge table changed the digest")
	}
}

func TestTorusNetworkLinkFor(t *testing.T) {
	net, err := TorusNetwork(4, 4, MIPI())
	if err != nil {
		t.Fatal(err)
	}
	// Chip 5 = (1,1): neighbours 4, 6, 1, 9.
	for _, to := range []int{4, 6, 1, 9} {
		if _, err := net.LinkFor(5, to); err != nil {
			t.Fatalf("torus neighbour 5->%d should be wired: %v", to, err)
		}
	}
	if _, err := net.LinkFor(5, 10); err == nil {
		t.Fatal("torus diagonal 5->10 should be unwired")
	}
	// Wraparound: chip 0 = (0,0) reaches (3,0)=3 and (0,3)=12.
	for _, to := range []int{3, 12} {
		if _, err := net.LinkFor(0, to); err != nil {
			t.Fatalf("torus wraparound 0->%d should be wired: %v", to, err)
		}
	}
	// A 1xN torus degenerates to a ring.
	ring, err := TorusNetwork(1, 4, MIPI())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ring.LinkFor(0, 1); err != nil {
		t.Fatal("1x4 torus should wire the ring edge 0->1")
	}
	if _, err := ring.LinkFor(0, 2); err == nil {
		t.Fatal("1x4 torus should not wire the chord 0->2")
	}
	if _, err := TorusNetwork(1, 1, MIPI()); err == nil {
		t.Fatal("1x1 torus should be rejected")
	}
}

func TestDragonflyNetwork(t *testing.T) {
	local, global := MIPI(), MIPI().Slower(4)
	net, err := DragonflyNetwork(3, 4, local, global)
	if err != nil {
		t.Fatal(err)
	}
	// Local all-to-all inside group 0.
	c, err := net.LinkFor(1, 2)
	if err != nil || c != local {
		t.Fatalf("local edge 1->2: class %+v err %v, want local", c, err)
	}
	// Global link between groups 0 and 1: ports 0*4+1%4=1 and 1*4+0%4=4.
	c, err = net.LinkFor(1, 4)
	if err != nil || c != global {
		t.Fatalf("global edge 1->4: class %+v err %v, want global", c, err)
	}
	// Non-port cross-group pairs are unwired.
	if _, err := net.LinkFor(0, 4); err == nil {
		t.Fatal("cross-group non-port edge 0->4 should be unwired")
	}
	// Edge count: 3 groups x 4*3 local + 3 group pairs x 2 directions.
	edges, _ := TableEdges(net.TableDigest)
	if len(edges) != 3*12+3*2 {
		t.Fatalf("dragonfly has %d directed edges, want %d", len(edges), 3*12+3*2)
	}
	// Round trip: equal parameters, equal network.
	again, err := DragonflyNetwork(3, 4, local, global)
	if err != nil {
		t.Fatal(err)
	}
	if again != net {
		t.Fatal("equal dragonfly parameters produced unequal networks")
	}
	if _, err := DragonflyNetwork(1, 1, local, global); err == nil {
		t.Fatal("1x1 dragonfly should be rejected")
	}
}
