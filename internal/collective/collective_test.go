package collective

import (
	"strings"
	"testing"

	"mcudist/internal/hw"
	"mcudist/internal/model"
	"mcudist/internal/partition"
)

func TestZeroPlanBindsNothing(t *testing.T) {
	var p Plan
	if !p.IsZero() {
		t.Fatal("zero plan not IsZero")
	}
	for _, c := range Classes() {
		if _, ok := p.Explicit(c); ok {
			t.Errorf("zero plan binds %s", c)
		}
		if got := p.Topology(c, hw.TopoRing); got != hw.TopoRing {
			t.Errorf("zero plan resolves %s to %s, want run topology", c, got)
		}
	}
	if p.String() != "uniform" {
		t.Errorf("zero plan prints %q", p.String())
	}
}

func TestWithExplicitResolve(t *testing.T) {
	p := Plan{}.With(PrefillMHSA, hw.TopoRing).With(DecodeFFN, hw.TopoStar)
	if topo, ok := p.Explicit(PrefillMHSA); !ok || topo != hw.TopoRing {
		t.Errorf("prefill-mhsa = %v/%v, want ring", topo, ok)
	}
	if got := p.Topology(PrefillFFN, hw.TopoTree); got != hw.TopoTree {
		t.Errorf("unbound class resolved to %s, want run topology", got)
	}
	if got := p.Topology(DecodeFFN, hw.TopoTree); got != hw.TopoStar {
		t.Errorf("decode-ffn resolved to %s, want star", got)
	}
	// Rebinding overwrites.
	p = p.With(PrefillMHSA, hw.TopoTree)
	if topo, _ := p.Explicit(PrefillMHSA); topo != hw.TopoTree {
		t.Errorf("rebind left %s", topo)
	}
}

func TestUniformPlan(t *testing.T) {
	p := Uniform(hw.TopoRing)
	for _, c := range Classes() {
		if topo, ok := p.Explicit(c); !ok || topo != hw.TopoRing {
			t.Errorf("%s = %v/%v, want ring", c, topo, ok)
		}
	}
}

func TestMerge(t *testing.T) {
	prefill := Plan{}.With(PrefillMHSA, hw.TopoRing).With(PrefillFFN, hw.TopoRing)
	decode := Plan{}.With(DecodeMHSA, hw.TopoTree).With(DecodeFFN, hw.TopoTree)
	merged, err := prefill.Merge(decode)
	if err != nil {
		t.Fatal(err)
	}
	if merged.String() != "prefill=ring,decode=tree" {
		t.Errorf("merged plan prints %q", merged.String())
	}
	// Agreeing bindings merge fine; conflicting ones error.
	if _, err := merged.Merge(prefill); err != nil {
		t.Errorf("agreeing merge failed: %v", err)
	}
	conflict := Plan{}.With(PrefillMHSA, hw.TopoStar)
	if _, err := merged.Merge(conflict); err == nil {
		t.Error("conflicting merge accepted")
	}
}

func TestStringParsePlanRoundTrip(t *testing.T) {
	plans := []Plan{
		{},
		Uniform(hw.TopoTree),
		Plan{}.With(PrefillMHSA, hw.TopoRing),
		Plan{}.With(PrefillMHSA, hw.TopoRing).With(PrefillFFN, hw.TopoTree),
		Plan{}.With(PrefillMHSA, hw.TopoRing).With(PrefillFFN, hw.TopoRing).
			With(DecodeMHSA, hw.TopoTree).With(DecodeFFN, hw.TopoTree),
		Plan{}.With(KVExchange, hw.TopoFullyConnected).With(OutputExchange, hw.TopoStar),
	}
	for _, p := range plans {
		got, err := ParsePlan(p.String())
		if err != nil {
			t.Errorf("ParsePlan(%q): %v", p.String(), err)
			continue
		}
		if got != p {
			t.Errorf("round trip of %q yielded %q", p.String(), got.String())
		}
	}
}

func TestParsePlanSpellings(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Plan
	}{
		{"", Plan{}},
		{"uniform", Plan{}},
		{"prefill=ring,decode=tree", Plan{}.
			With(PrefillMHSA, hw.TopoRing).With(PrefillFFN, hw.TopoRing).
			With(DecodeMHSA, hw.TopoTree).With(DecodeFFN, hw.TopoTree)},
		{" Prefill-MHSA = ring , kv=fc ", Plan{}.
			With(PrefillMHSA, hw.TopoRing).With(KVExchange, hw.TopoFullyConnected)},
		{"all=tree,prefill=ring", func() Plan {
			p := Uniform(hw.TopoTree)
			return p.With(PrefillMHSA, hw.TopoRing).With(PrefillFFN, hw.TopoRing)
		}()},
		{"output=all-to-all", Plan{}.With(OutputExchange, hw.TopoFullyConnected)},
		// The "+" separator keeps plans CSV-safe: cmd/sweep's autotune
		// plan cell pastes straight back into -plan.
		{"prefill=ring+decode=tree", Plan{}.
			With(PrefillMHSA, hw.TopoRing).With(PrefillFFN, hw.TopoRing).
			With(DecodeMHSA, hw.TopoTree).With(DecodeFFN, hw.TopoTree)},
		{"prefill=ring,decode=tree+kv=star", Plan{}.
			With(PrefillMHSA, hw.TopoRing).With(PrefillFFN, hw.TopoRing).
			With(DecodeMHSA, hw.TopoTree).With(DecodeFFN, hw.TopoTree).
			With(KVExchange, hw.TopoStar)},
	} {
		got, err := ParsePlan(tc.in)
		if err != nil {
			t.Errorf("ParsePlan(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParsePlan(%q) = %q, want %q", tc.in, got.String(), tc.want.String())
		}
	}
	for _, bad := range []string{"prefill", "prefill=warp", "blocks=ring", "prefill=ring decode=tree"} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted", bad)
		}
	}
}

func TestActiveClasses(t *testing.T) {
	for _, tc := range []struct {
		st   partition.Strategy
		mode model.Mode
		want []SyncClass
	}{
		{partition.TensorParallel, model.Prompt, []SyncClass{PrefillMHSA, PrefillFFN}},
		{partition.TensorParallel, model.Autoregressive, []SyncClass{DecodeMHSA, DecodeFFN}},
		{partition.Replicated, model.Prompt, []SyncClass{KVExchange, OutputExchange}},
		{partition.Replicated, model.Autoregressive, []SyncClass{KVExchange, OutputExchange}},
		{partition.Pipeline, model.Prompt, nil},
	} {
		got := ActiveClasses(tc.st, tc.mode)
		if len(got) != len(tc.want) {
			t.Errorf("%s/%s: %v, want %v", tc.st, tc.mode, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("%s/%s: %v, want %v", tc.st, tc.mode, got, tc.want)
				break
			}
		}
	}
}

func TestSyncClassStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Classes() {
		if !c.Valid() {
			t.Errorf("%s invalid", c)
		}
		s := c.String()
		if seen[s] || strings.Contains(s, "syncclass(") {
			t.Errorf("class %d prints %q", int(c), s)
		}
		seen[s] = true
	}
	if SyncClass(-1).Valid() || NumSyncClasses.Valid() {
		t.Error("out-of-range class reported valid")
	}
}

func TestWithPanicsOnInvalid(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	expectPanic("invalid class", func() { Plan{}.With(NumSyncClasses, hw.TopoTree) })
	expectPanic("invalid topology", func() { Plan{}.With(PrefillMHSA, hw.Topology(99)) })
}

// MarshalText must emit a spelling UnmarshalText restores bit for bit
// — the property JSON sinks (the persistent result store among them)
// rely on, since the binding array is unexported.
func TestPlanTextRoundTrip(t *testing.T) {
	plans := []Plan{
		{}, // zero plan: "uniform"
		Uniform(hw.TopoRing),
		mustParse(t, "prefill=ring,decode=tree"),
		mustParse(t, "prefill-mhsa=star,decode-ffn=fully-connected"),
		mustParse(t, "all=tree"),
	}
	for _, p := range plans {
		text, err := p.MarshalText()
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		var back Plan
		if err := back.UnmarshalText(text); err != nil {
			t.Fatalf("%q: %v", text, err)
		}
		if back != p {
			t.Errorf("round trip %q: got %s, want %s", text, back, p)
		}
	}
	var bad Plan
	if err := bad.UnmarshalText([]byte("prefill=moebius")); err == nil {
		t.Error("bad topology spelling accepted")
	}
}

func mustParse(t *testing.T, s string) Plan {
	t.Helper()
	p, err := ParsePlan(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
