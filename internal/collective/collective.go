// Package collective introduces a per-synchronization view of the
// chip-to-chip collectives: a taxonomy of SyncClasses (which phase and
// site of the forward pass a synchronization serves) and a Plan that
// binds each class to an interconnect topology. The PR 2/3 ablations
// showed no single shape wins everywhere — the ring's payload/N chunks
// take the large-payload prompt collectives while the tree's few
// serialized setups keep the small-payload autoregressive points — so
// the topology becomes a per-class decision instead of a per-run one.
//
// A Plan is a small comparable value: it participates in the evalpool
// report-cache key exactly like every hardware parameter, and its zero
// value binds nothing, reproducing the single-topology behavior
// byte for byte.
package collective

import (
	"fmt"
	"strings"

	"mcudist/internal/hw"
	"mcudist/internal/model"
	"mcudist/internal/partition"
)

// SyncClass classifies one chip synchronization by the phase of the
// forward pass it serves. The tensor-parallel scheme runs two
// synchronizations per block (after the MHSA and after the FFN), in
// either the prompt-prefill or the autoregressive-decode regime; the
// replicated baseline exchanges K/V context before attention and
// output rows after the block.
type SyncClass int

const (
	// PrefillMHSA is the post-attention all-reduce of a prompt-mode
	// block (large payloads: one row per prompt token).
	PrefillMHSA SyncClass = iota
	// PrefillFFN is the post-FFN all-reduce of a prompt-mode block.
	PrefillFFN
	// DecodeMHSA is the post-attention all-reduce of an autoregressive
	// step (single-row payloads).
	DecodeMHSA
	// DecodeFFN is the post-FFN all-reduce of an autoregressive step.
	DecodeFFN
	// KVExchange is the replicated baseline's pre-attention K/V
	// context exchange.
	KVExchange
	// OutputExchange is the replicated baseline's post-block output
	// row exchange.
	OutputExchange

	// NumSyncClasses is the sentinel size of the class axis.
	NumSyncClasses
)

// Classes returns every synchronization class, in enum order.
func Classes() []SyncClass {
	out := make([]SyncClass, NumSyncClasses)
	for i := range out {
		out[i] = SyncClass(i)
	}
	return out
}

// Valid reports whether c names a synchronization class.
func (c SyncClass) Valid() bool { return c >= 0 && c < NumSyncClasses }

func (c SyncClass) String() string {
	switch c {
	case PrefillMHSA:
		return "prefill-mhsa"
	case PrefillFFN:
		return "prefill-ffn"
	case DecodeMHSA:
		return "decode-mhsa"
	case DecodeFFN:
		return "decode-ffn"
	case KVExchange:
		return "kv-exchange"
	case OutputExchange:
		return "output-exchange"
	default:
		return fmt.Sprintf("syncclass(%d)", int(c))
	}
}

// ActiveClasses returns the synchronization classes a run of the given
// strategy and mode executes, in execution order within a block: the
// tensor-parallel scheme syncs after the MHSA then after the FFN
// (prefill or decode flavor per the mode); the replicated baseline
// exchanges K/V context then output rows; the pipeline transfers only
// on its handoff chain and has no collective synchronizations. This is
// the single source of truth the simulator's sync sites and the plan
// autotuner share.
func ActiveClasses(st partition.Strategy, mode model.Mode) []SyncClass {
	switch st {
	case partition.TensorParallel:
		if mode == model.Autoregressive {
			return []SyncClass{DecodeMHSA, DecodeFFN}
		}
		return []SyncClass{PrefillMHSA, PrefillFFN}
	case partition.Replicated:
		return []SyncClass{KVExchange, OutputExchange}
	default:
		return nil
	}
}

// Plan binds synchronization classes to interconnect topologies. An
// unbound class executes on the run topology (hw.Params.Topology), so
// the zero Plan is exactly today's single-topology behavior. Plan is a
// comparable value type: it rides in deploy.Options and therefore in
// the evalpool cache key, so two configurations collide on one cache
// entry exactly when their plans match.
type Plan struct {
	// choice[c] is 1 + the bound topology for class c; 0 leaves the
	// class on the run topology. Kept unexported so a Plan can only
	// hold valid bindings.
	choice [NumSyncClasses]int8
}

// IsZero reports whether the plan binds no class (the uniform,
// single-topology behavior).
func (p Plan) IsZero() bool { return p == Plan{} }

// With returns a copy of the plan with class c bound to topology t.
// It panics on an invalid class or topology — bindings are built in
// code or through ParsePlan, which validates its input.
func (p Plan) With(c SyncClass, t hw.Topology) Plan {
	if !c.Valid() {
		panic(fmt.Sprintf("collective: invalid sync class %d", int(c)))
	}
	if !t.Valid() {
		panic(fmt.Sprintf("collective: invalid topology %d", int(t)))
	}
	p.choice[c] = 1 + int8(t)
	return p
}

// Explicit returns the topology bound to class c, if any.
func (p Plan) Explicit(c SyncClass) (hw.Topology, bool) {
	if !c.Valid() || p.choice[c] == 0 {
		return 0, false
	}
	return hw.Topology(p.choice[c] - 1), true
}

// Topology resolves class c under the plan: its explicit binding, or
// the run topology.
func (p Plan) Topology(c SyncClass, run hw.Topology) hw.Topology {
	if t, ok := p.Explicit(c); ok {
		return t
	}
	return run
}

// Merge combines two plans; bindings present in exactly one side carry
// over, and both sides binding the same class to the same topology is
// fine. Conflicting bindings are an error — merging a prefill-tuned
// and a decode-tuned plan must not silently drop either decision.
func (p Plan) Merge(o Plan) (Plan, error) {
	out := p
	for c := SyncClass(0); c < NumSyncClasses; c++ {
		t, ok := o.Explicit(c)
		if !ok {
			continue
		}
		if prev, bound := p.Explicit(c); bound && prev != t {
			return Plan{}, fmt.Errorf("collective: merge conflict: %s bound to %s and %s", c, prev, t)
		}
		out.choice[c] = o.choice[c]
	}
	return out, nil
}

// Uniform returns the plan binding every class to one topology —
// behaviorally identical to selecting t as the run topology, spelled
// as a plan (the golden tests pin that equivalence bit for bit).
func Uniform(t hw.Topology) Plan {
	var p Plan
	for c := SyncClass(0); c < NumSyncClasses; c++ {
		p = p.With(c, t)
	}
	return p
}

// String renders the plan in ParsePlan's flag syntax, compressing the
// prefill and decode pairs when both members share a topology
// ("prefill=ring,decode=tree"). The zero plan prints as "uniform".
// ParsePlan(p.String()) round-trips every plan.
func (p Plan) String() string {
	if p.IsZero() {
		return "uniform"
	}
	var parts []string
	emit := func(key string, c SyncClass) {
		if t, ok := p.Explicit(c); ok {
			parts = append(parts, key+"="+t.String())
		}
	}
	pair := func(key string, a, b SyncClass) {
		ta, oka := p.Explicit(a)
		tb, okb := p.Explicit(b)
		if oka && okb && ta == tb {
			parts = append(parts, key+"="+ta.String())
			return
		}
		emit(a.String(), a)
		emit(b.String(), b)
	}
	pair("prefill", PrefillMHSA, PrefillFFN)
	pair("decode", DecodeMHSA, DecodeFFN)
	emit("kv", KVExchange)
	emit("output", OutputExchange)
	return strings.Join(parts, ",")
}

// MarshalText emits the flag-syntax spelling ("prefill=ring,decode=tree",
// "uniform" for the zero plan), so JSON/CSV sinks — the persistent
// result store among them — serialize a Plan readably instead of
// dropping its unexported binding array.
func (p Plan) MarshalText() ([]byte, error) {
	return []byte(p.String()), nil
}

// UnmarshalText parses any spelling ParsePlan accepts, so
// MarshalText's output round-trips bit for bit.
func (p *Plan) UnmarshalText(text []byte) error {
	v, err := ParsePlan(string(text))
	if err != nil {
		return err
	}
	*p = v
	return nil
}

// classesFor maps one assignment key of the flag syntax to the classes
// it binds.
func classesFor(key string) ([]SyncClass, error) {
	switch key {
	case "prefill":
		return []SyncClass{PrefillMHSA, PrefillFFN}, nil
	case "decode":
		return []SyncClass{DecodeMHSA, DecodeFFN}, nil
	case "prefill-mhsa":
		return []SyncClass{PrefillMHSA}, nil
	case "prefill-ffn":
		return []SyncClass{PrefillFFN}, nil
	case "decode-mhsa":
		return []SyncClass{DecodeMHSA}, nil
	case "decode-ffn":
		return []SyncClass{DecodeFFN}, nil
	case "kv", "kv-exchange":
		return []SyncClass{KVExchange}, nil
	case "output", "out", "output-exchange":
		return []SyncClass{OutputExchange}, nil
	case "all":
		return Classes(), nil
	default:
		return nil, fmt.Errorf("collective: unknown sync class %q (want prefill | decode | prefill-mhsa | prefill-ffn | decode-mhsa | decode-ffn | kv | output | all)", key)
	}
}

// ParsePlan parses the command-line plan syntax: class=topology
// assignments separated by commas or pluses, e.g.
// "prefill=ring,decode=tree" (the "+" spelling lets the assignments
// live inside a CSV cell, so cmd/sweep's autotune output pastes back
// into -plan). Classes accept the group spellings prefill / decode /
// all next to the six exact class names (plus kv and output
// shorthands); topologies accept every spelling hw.ParseTopology
// does. Later assignments overwrite earlier ones, so
// "all=tree,prefill=ring" reads naturally. The empty string (and
// "uniform") is the zero plan.
func ParsePlan(s string) (Plan, error) {
	var p Plan
	s = strings.TrimSpace(s)
	if s == "" || strings.EqualFold(s, "uniform") {
		return p, nil
	}
	for _, part := range strings.FieldsFunc(s, func(r rune) bool { return r == ',' || r == '+' }) {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return Plan{}, fmt.Errorf("collective: bad plan assignment %q (want class=topology)", part)
		}
		classes, err := classesFor(strings.ToLower(strings.TrimSpace(key)))
		if err != nil {
			return Plan{}, err
		}
		topo, err := hw.ParseTopology(val)
		if err != nil {
			return Plan{}, fmt.Errorf("collective: plan assignment %q: %w", part, err)
		}
		for _, c := range classes {
			p = p.With(c, topo)
		}
	}
	return p, nil
}
