package experiments

import "testing"

// TestAblationSyncPlan pins the acceptance claim of the per-sync plan
// subsystem: at the paper's 64-chip scaled operating point (one
// prompt prefill + one decode step), the prefill-on-ring /
// decode-on-tree hybrid strictly beats BOTH uniform baselines. At 8
// chips the ring wins both phases, so the hybrid's decode-on-tree
// binding loses to uniform ring there — the per-sync win is a
// property of diverging phase regimes, not a free lunch.
func TestAblationSyncPlan(t *testing.T) {
	rows, err := AblationSyncPlan()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows, want 6 (2 scenarios x 3 plans)", len(rows))
	}
	find := func(label string, chips int) AblationRow {
		t.Helper()
		for _, r := range rows {
			if r.Label == label && r.Chips == chips {
				return r
			}
		}
		t.Fatalf("row %q at %d chips missing", label, chips)
		return AblationRow{}
	}

	// The headline: a mixed plan strictly beats both uniform
	// topologies at 64 chips.
	hybrid := find("prefill-ring+decode-tree", 64)
	tree := find("uniform-tree", 64)
	ring := find("uniform-ring", 64)
	if hybrid.Cycles >= tree.Cycles {
		t.Errorf("64 chips: hybrid %.0f not below uniform tree %.0f", hybrid.Cycles, tree.Cycles)
	}
	if hybrid.Cycles >= ring.Cycles {
		t.Errorf("64 chips: hybrid %.0f not below uniform ring %.0f", hybrid.Cycles, ring.Cycles)
	}
	// The plan reroutes the decode phase only relative to uniform
	// ring; traffic per phase is schedule-decided, so the hybrid moves
	// exactly the uniform-ring prefill traffic plus the uniform-tree
	// decode traffic.
	if hybrid.C2CBytes >= ring.C2CBytes+tree.C2CBytes {
		t.Errorf("64 chips: hybrid moved %d bytes, above the phase sum bound", hybrid.C2CBytes)
	}

	// At 8 chips the ring wins both phases: the hybrid pays for its
	// decode-on-tree binding.
	hybrid8 := find("prefill-ring+decode-tree", 8)
	ring8 := find("uniform-ring", 8)
	tree8 := find("uniform-tree", 8)
	if ring8.Cycles >= hybrid8.Cycles {
		t.Errorf("8 chips: uniform ring %.0f not below hybrid %.0f", ring8.Cycles, hybrid8.Cycles)
	}
	// The hybrid still beats uniform tree (its prefill-on-ring half
	// carries it).
	if hybrid8.Cycles >= tree8.Cycles {
		t.Errorf("8 chips: hybrid %.0f not below uniform tree %.0f", hybrid8.Cycles, tree8.Cycles)
	}
}
