package experiments

import (
	"strings"
	"testing"

	"mcudist/internal/hw"
)

// The topology ablation backs the headline claims of the topology
// exploration axis:
//   - the ring's payload/N chunks beat the star's whole-payload
//     all-to-one on total latency at every prompt operating point
//     from 8 chips up (the collective is the only difference between
//     the two runs);
//   - the paper's hierarchical tree stays the latency winner among
//     all four shapes at the 64-chip autoregressive operating point
//     its scalability study targets;
//   - the fully-connected exchange always moves the most link bytes
//     (N-1 times the others' traffic).
func TestAblationTopologyShapes(t *testing.T) {
	rows, err := AblationTopologyShapes()
	if err != nil {
		t.Fatal(err)
	}
	nTopos := len(hw.Topologies())
	if len(rows)%nTopos != 0 {
		t.Fatalf("%d rows is not a whole number of %d-topology scenarios", len(rows), nTopos)
	}

	byLabel := func(group []AblationRow, prefix string) *AblationRow {
		for i := range group {
			if strings.HasPrefix(group[i].Label, prefix) {
				return &group[i]
			}
		}
		return nil
	}

	for g := 0; g < len(rows); g += nTopos {
		group := rows[g : g+nTopos]
		tree := byLabel(group, "tree")
		star := byLabel(group, "star")
		ring := byLabel(group, "ring")
		fc := byLabel(group, "fully-connected")
		if tree == nil || star == nil || ring == nil || fc == nil {
			t.Fatalf("scenario at row %d missing a topology: %+v", g, group)
		}

		prompt := strings.HasSuffix(tree.Label, "-prompt")
		if prompt && tree.Chips >= 8 && ring.Cycles >= star.Cycles {
			t.Errorf("%d chips prompt: ring %.0f cycles not below star %.0f",
				ring.Chips, ring.Cycles, star.Cycles)
		}

		for _, r := range []*AblationRow{tree, star, ring} {
			if fc.C2CBytes <= r.C2CBytes {
				t.Errorf("%d chips: fully-connected traffic %d not above %s's %d",
					fc.Chips, fc.C2CBytes, r.Label, r.C2CBytes)
			}
		}

		if !prompt && tree.Chips == 64 {
			for _, r := range []*AblationRow{star, ring, fc} {
				if tree.Cycles >= r.Cycles {
					t.Errorf("64-chip autoregressive: tree %.0f cycles not below %s's %.0f",
						tree.Cycles, r.Label, r.Cycles)
				}
			}
		}
	}

	// The ablation must include the paper's scalability operating
	// point (64 chips, autoregressive) where the tree wins.
	found := false
	for _, r := range rows {
		if r.Chips == 64 && strings.HasSuffix(r.Label, "-autoregressive") {
			found = true
		}
	}
	if !found {
		t.Error("no 64-chip autoregressive scenario in the topology ablation")
	}
}
