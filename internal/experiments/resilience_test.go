package experiments

import (
	"math"
	"testing"
)

// TestResilienceMargin pins the resilience-margin study: at the
// 64-chip prefill-ring/decode-tree operating point, every injected
// fault (dropped chip, 10x-slowed edge, 2x straggler) leaves the
// re-planned session no worse than serving the stale hybrid on the
// degraded board, and the margin — the price of not re-planning — is
// finite and >= 1 on every scenario at both pinned points.
func TestResilienceMargin(t *testing.T) {
	rows, err := ResilienceMargin()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows, want 6 (2 chip counts x 3 fault families)", len(rows))
	}
	find := func(chips int, faults string) ResilienceRow {
		for _, r := range rows {
			if r.Chips == chips && r.Faults == faults {
				return r
			}
		}
		t.Fatalf("no row for %d chips under %s", chips, faults)
		return ResilienceRow{}
	}

	for _, r := range rows {
		if r.StaticErr != "" {
			t.Errorf("%d/%s: stale plan infeasible on an all-pairs degraded board: %s",
				r.Chips, r.Faults, r.StaticErr)
			continue
		}
		if r.AdoptedCycles > r.StaticCycles {
			t.Errorf("%d/%s: re-planned session %g cycles worse than static %g",
				r.Chips, r.Faults, r.AdoptedCycles, r.StaticCycles)
		}
		if r.MarginCycles < 1 || math.IsInf(r.MarginCycles, 1) {
			t.Errorf("%d/%s: margin %g, want finite >= 1", r.Chips, r.Faults, r.MarginCycles)
		}
		if r.ReplanPays != (r.AdoptedCycles < r.StaticCycles) {
			t.Errorf("%d/%s: ReplanPays=%v inconsistent with adopted %g vs static %g",
				r.Chips, r.Faults, r.ReplanPays, r.AdoptedCycles, r.StaticCycles)
		}
		if r.ExactSims <= 0 {
			t.Errorf("%d/%s: exact-sim bill %d not recorded", r.Chips, r.Faults, r.ExactSims)
		}
	}

	// The 64-chip pinned point: the pristine winner is the
	// prefill-ring/decode-tree hybrid (the SessionAutotune finding),
	// and it is that plan the fault scenarios serve stale.
	for _, faults := range []string{"drop:3", "slow:0-1x10", "straggle:3x2"} {
		r := find(64, faults)
		if r.StalePlan != "prefill=ring,decode=tree" {
			t.Errorf("64/%s: stale plan %s, want the prefill=ring,decode=tree hybrid", faults, r.StalePlan)
		}
	}

	// Dropping a chip shrinks the board; the other faults do not.
	if r := find(64, "drop:3"); r.DegradedChips != 63 {
		t.Errorf("64/drop:3: degraded chips %d, want 63", r.DegradedChips)
	}
	if r := find(8, "drop:3"); r.DegradedChips != 7 {
		t.Errorf("8/drop:3: degraded chips %d, want 7", r.DegradedChips)
	}
	if r := find(64, "slow:0-1x10"); r.DegradedChips != 64 {
		t.Errorf("64/slow: degraded chips %d, want 64", r.DegradedChips)
	}
}
