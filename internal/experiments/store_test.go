package experiments

import (
	"reflect"
	"testing"

	"mcudist/internal/evalpool"
	"mcudist/internal/resultstore"
)

// runSuite executes every experiment entry point in the package — the
// same set cmd/paperrepro renders — and returns the results keyed by
// name, so two passes can be compared structurally.
func runSuite(t *testing.T) map[string]any {
	t.Helper()
	out := map[string]any{}
	run := func(name string, f func() (any, error)) {
		res, err := f()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = res
	}
	run("fig4a", func() (any, error) { return Fig4a() })
	run("fig4b", func() (any, error) { return Fig4b() })
	run("fig4c", func() (any, error) { return Fig4c() })
	run("fig5a", func() (any, error) { return Fig5a() })
	run("fig5b", func() (any, error) { return Fig5b() })
	run("fig5c", func() (any, error) { return Fig5c() })
	run("fig6", func() (any, error) { return Fig6() })
	run("table1", func() (any, error) { return Table1() })
	run("headline", func() (any, error) { return RunHeadline() })
	run("ablation-reduce-topology", func() (any, error) { return AblationReduceTopology() })
	run("ablation-topology-shapes", func() (any, error) { return AblationTopologyShapes() })
	run("ablation-network-backhaul", func() (any, error) { return AblationNetworkBackhaul(4, 10) })
	run("ablation-group-size", func() (any, error) { return AblationGroupSize() })
	run("ablation-reduce-precision", func() (any, error) { return AblationReducePrecision() })
	run("ablation-prefetch", func() (any, error) { return AblationPrefetch() })
	run("ablation-activation-spill", func() (any, error) { return AblationActivationSpill() })
	run("ablation-degraded-link", func() (any, error) { return AblationDegradedLink() })
	run("ablation-straggler", func() (any, error) { return AblationStraggler() })
	run("ablation-link-bandwidth", func() (any, error) { return AblationLinkBandwidth() })
	run("ablation-syncplan", func() (any, error) { return AblationSyncPlan() })
	run("session-autotune", func() (any, error) { return SessionAutotune() })
	run("extension-full-grid", func() (any, error) { return ExtensionFullGrid() })
	run("extension-seqlen", func() (any, error) { return ExtensionSeqLenStudy() })
	run("extension-context", func() (any, error) { return ExtensionContextStudy() })
	run("extension-lmhead", func() (any, error) { return ExtensionLMHeadStudy() })
	run("extension-batching", func() (any, error) { return ExtensionBatchingStudy() })
	run("extension-collective", func() (any, error) { return ExtensionCollectiveStudy() })
	run("extension-gqa", func() (any, error) { return ExtensionGQAStudy() })
	run("fleet-saturation", func() (any, error) { return FleetSaturation() })
	run("fleet-batching", func() (any, error) { return FleetBatchingAblation() })
	run("resilience-margin", func() (any, error) { return ResilienceMargin() })
	return out
}

// The whole experiments suite — every figure, table, ablation, and
// extension study — must replay from a warm persistent store without
// a single exact simulation, and produce structurally identical
// results. This is the paper-repro acceptance property end to end:
// the Stats() delta of the warm pass pins Simulations to zero.
func TestSuiteWarmStoreZeroSims(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full experiments suite twice")
	}
	store, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	evalpool.SetStore(store)
	defer evalpool.SetStore(nil)
	// Both passes start from a cold memory memo, so the warm pass's
	// hits are the disk tier's alone.
	evalpool.ResetCache()

	before := evalpool.GetStats()
	cold := runSuite(t)
	mid := evalpool.GetStats()
	if sims := mid.Simulations - before.Simulations; sims == 0 {
		t.Fatal("cold pass ran no simulations — the suite proves nothing")
	}
	if hits := mid.DiskHits - before.DiskHits; hits != 0 {
		t.Errorf("cold pass took %d disk hits from an empty store", hits)
	}
	if store.Len() == 0 {
		t.Fatal("cold pass left the store empty")
	}

	evalpool.ResetCache()
	warm := runSuite(t)
	after := evalpool.GetStats()
	if sims := after.Simulations - mid.Simulations; sims != 0 {
		t.Errorf("warm pass ran %d exact simulations, want 0", sims)
	}
	if hits := after.DiskHits - mid.DiskHits; hits == 0 {
		t.Error("warm pass took no disk hits")
	}

	for name, c := range cold {
		if !reflect.DeepEqual(c, warm[name]) {
			t.Errorf("%s: warm result differs from cold", name)
		}
	}
}
