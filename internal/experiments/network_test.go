package experiments

import (
	"math"
	"testing"
)

// TestAblationNetworkBackhaul pins the shape of the heterogeneous-link
// ablation at the paper's default board (clusters of 4, 10x-slower
// backhaul): the tree-vs-ring crossover stays payload-driven — the
// ring keeps every prompt point even with the backhaul, the tree keeps
// the 64-chip autoregressive operating point — and the backhaul
// *widens* the ring's 64-chip prompt lead, because the tree funnels
// whole payloads through its upper levels while every ring hop moves
// only payload/N.
func TestAblationNetworkBackhaul(t *testing.T) {
	// Degenerate boards are rejected up front: a slowdown below 1
	// would mean an infinitely fast or speeding-up "backhaul".
	for _, bad := range []float64{0, 0.5, -1, math.NaN()} {
		if _, err := AblationNetworkBackhaul(4, bad); err == nil {
			t.Errorf("backhaul slowdown %g accepted", bad)
		}
	}
	if _, err := AblationNetworkBackhaul(0, 10); err == nil {
		t.Error("cluster size 0 accepted")
	}

	rows, err := AblationNetworkBackhaul(4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 16 {
		t.Fatalf("%d rows, want 16 (4 scenarios x 2 networks x 2 topologies)", len(rows))
	}
	find := func(label string, chips int) AblationRow {
		t.Helper()
		for _, r := range rows {
			if r.Label == label && r.Chips == chips {
				return r
			}
		}
		t.Fatalf("row %q at %d chips missing", label, chips)
		return AblationRow{}
	}

	// Prompt points: the ring wins under BOTH networks at 8/16/64.
	for _, chips := range []int{8, 16, 64} {
		for _, net := range []string{"uniform", "clustered-4x10"} {
			tree := find("tree-"+net+"-prompt", chips)
			ring := find("ring-"+net+"-prompt", chips)
			if ring.Cycles >= tree.Cycles {
				t.Errorf("%d chips %s prompt: ring %.0f not below tree %.0f",
					chips, net, ring.Cycles, tree.Cycles)
			}
			// The backhaul reroutes no bytes: traffic is decided by the
			// schedule, only the time changes.
			if net == "clustered-4x10" {
				if u := find("ring-uniform-prompt", chips); u.C2CBytes != ring.C2CBytes {
					t.Errorf("%d chips: clustered ring moved %d bytes, uniform %d", chips, ring.C2CBytes, u.C2CBytes)
				}
			}
		}
	}

	// The crossover: in the small-payload autoregressive mode at 64
	// chips the ring's 2(N-1) serialized setups dominate and the tree
	// wins — under the uniform and the clustered network alike.
	for _, net := range []string{"uniform", "clustered-4x10"} {
		tree := find("tree-"+net+"-autoregressive", 64)
		ring := find("ring-"+net+"-autoregressive", 64)
		if tree.Cycles >= ring.Cycles {
			t.Errorf("64-chip AR %s: tree %.0f not below ring %.0f", net, tree.Cycles, ring.Cycles)
		}
	}

	// The backhaul widens the ring's 64-chip prompt lead: tree/ring
	// cycle ratio grows from ~1.5x (uniform) to ~1.9x (clustered).
	uniLead := find("tree-uniform-prompt", 64).Cycles / find("ring-uniform-prompt", 64).Cycles
	cluLead := find("tree-clustered-4x10-prompt", 64).Cycles / find("ring-clustered-4x10-prompt", 64).Cycles
	if cluLead <= uniLead {
		t.Errorf("backhaul narrowed the ring's 64-chip prompt lead: %.3g <= %.3g", cluLead, uniLead)
	}
	if uniLead < 1.4 || uniLead > 1.7 || cluLead < 1.7 || cluLead > 2.2 {
		t.Errorf("prompt-64 tree/ring leads = %.3g (uniform) / %.3g (clustered), want ~1.5 / ~1.9", uniLead, cluLead)
	}

	// With equal pJ/B on both classes, the per-class energy billing
	// must reproduce the uniform energy exactly: same bytes, same
	// price, only slower.
	for _, chips := range []int{8, 16, 64} {
		u := find("ring-uniform-prompt", chips)
		c := find("ring-clustered-4x10-prompt", chips)
		if u.EnergyMJ != c.EnergyMJ {
			t.Errorf("%d chips: clustered energy %.6g != uniform %.6g despite equal pJ/B", chips, c.EnergyMJ, u.EnergyMJ)
		}
		if c.Cycles <= u.Cycles {
			t.Errorf("%d chips: clustered ring %.0f cycles not above uniform %.0f", chips, c.Cycles, u.Cycles)
		}
	}
}
