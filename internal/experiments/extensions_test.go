package experiments

import "testing"

func TestExtensionFullGrid(t *testing.T) {
	rows, err := ExtensionFullGrid()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	// The full grid exposes the crossover at 5 chips — inside the
	// paper's 4-to-8 gap.
	byChips := map[int]GridRow{}
	for _, r := range rows {
		byChips[r.Chips] = r
	}
	if byChips[4].Tier == "double-buffered" {
		t.Error("4 chips should not be off-chip free")
	}
	if byChips[5].Tier != "double-buffered" {
		t.Errorf("5 chips tier %s, want double-buffered", byChips[5].Tier)
	}
	if byChips[5].Speedup <= 5 {
		t.Errorf("5-chip speedup %g should already be super-linear", byChips[5].Speedup)
	}
	// Monotone non-increasing runtime with more chips.
	for n := 2; n <= 8; n++ {
		if byChips[n].Cycles > byChips[n-1].Cycles {
			t.Errorf("runtime grew from %d to %d chips", n-1, n)
		}
	}
}

func TestExtensionSeqLenStudy(t *testing.T) {
	rows, err := ExtensionSeqLenStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Short prompts are more memory-bound than long ones.
	first, last := rows[0], rows[len(rows)-1]
	if first.L3Share1 <= last.L3Share1 {
		t.Errorf("L3 share did not fall with prompt length: %g -> %g", first.L3Share1, last.L3Share1)
	}
	// Speedup falls toward the linear regime as compute dominates.
	if first.Speedup8 <= last.Speedup8 {
		t.Errorf("speedup did not fall with prompt length: %g -> %g", first.Speedup8, last.Speedup8)
	}
	// All speedups stay positive and bounded.
	for _, r := range rows {
		if r.Speedup8 <= 1 || r.Speedup8 > 64 {
			t.Errorf("S=%d: speedup %g out of range", r.SeqLen, r.Speedup8)
		}
	}
}

func TestExtensionContextStudy(t *testing.T) {
	rows, err := ExtensionContextStudy()
	if err != nil {
		t.Fatal(err)
	}
	// Per-token cost grows monotonically with context (KV reads).
	for i := 1; i < len(rows); i++ {
		if rows[i].CyclesPer8 <= rows[i-1].CyclesPer8 {
			t.Errorf("context %d not slower than %d", rows[i].Context, rows[i-1].Context)
		}
	}
	// The short-context points keep the double-buffered tier.
	if rows[0].Tier != "double-buffered" {
		t.Errorf("context 32 tier %s", rows[0].Tier)
	}
}

func TestExtensionBatchingStudy(t *testing.T) {
	rows, err := ExtensionBatchingStudy()
	if err != nil {
		t.Fatal(err)
	}
	byBatch := map[int]BatchRow{}
	for _, r := range rows {
		byBatch[r.Batch] = r
	}
	b1, b16 := byBatch[1], byBatch[16]
	// Batch 1 (the edge reality): ours wins on BOTH latency and
	// throughput — the paper's argument.
	if b1.OursLatencyCycles >= b1.PipeLastLatency {
		t.Errorf("batch 1: ours %g not faster than pipeline %g", b1.OursLatencyCycles, b1.PipeLastLatency)
	}
	if b1.OursThroughput <= b1.PipeThroughput {
		t.Error("batch 1: ours should also win throughput")
	}
	// Large batches: pipeline throughput recovers substantially.
	if b16.PipeThroughput <= 2*b1.PipeThroughput {
		t.Errorf("batch 16 pipeline throughput %g did not recover from %g", b16.PipeThroughput, b1.PipeThroughput)
	}
	// Our latency is batch-independent.
	if b1.OursLatencyCycles != b16.OursLatencyCycles {
		t.Error("tensor-parallel latency should be batch-independent")
	}
}

func TestExtensionCollectiveStudy(t *testing.T) {
	rows, err := ExtensionCollectiveStudy()
	if err != nil {
		t.Fatal(err)
	}
	find := func(chips int, payload int64) CollectiveRow {
		for _, r := range rows {
			if r.Chips == chips && r.Payload == payload {
				return r
			}
		}
		t.Fatalf("missing row %d/%d", chips, payload)
		return CollectiveRow{}
	}
	// At 8 chips the bandwidth-optimal ring edges out the tree even
	// for small payloads, and wins decisively for encoder-scale ones
	// — an optimization the paper leaves on the table.
	small := find(8, 512)
	if small.RingCycles >= small.TreeCycles {
		t.Errorf("8 chips/512 B: ring %g should edge out tree %g", small.RingCycles, small.TreeCycles)
	}
	big := find(8, 1<<20)
	if big.RingCycles >= big.TreeCycles/1.5 {
		t.Errorf("8 chips/1 MiB: ring %g should clearly beat tree %g", big.RingCycles, big.TreeCycles)
	}
	// The tree's advantage appears at scale for small payloads: at 64
	// chips the ring's 126 per-step setups dominate, the tree's
	// logarithmic depth wins — the regime the paper's autoregressive
	// scalability study lives in.
	small64 := find(64, 512)
	if small64.TreeCycles >= small64.RingCycles {
		t.Errorf("64 chips/512 B: tree %g should beat ring %g", small64.TreeCycles, small64.RingCycles)
	}
}

func TestExtensionLMHeadStudy(t *testing.T) {
	rows, err := ExtensionLMHeadStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	one, eight := rows[0], rows[1]
	if one.Chips != 1 || eight.Chips != 8 {
		t.Fatal("unexpected chip counts")
	}
	// At 8 chips the blocks are off-chip-free but the head still
	// streams: it must dominate the per-token cost.
	if eight.HeadShare < 0.5 {
		t.Errorf("8-chip head share %g; streaming the 16 MiB head should dominate", eight.HeadShare)
	}
	// Head streaming splits across chips: 8-chip head is cheaper.
	if eight.HeadCycles >= one.HeadCycles {
		t.Error("vocab split did not reduce head cost")
	}
	if one.HeadShare <= 0 || one.HeadShare >= 1 {
		t.Errorf("1-chip head share %g out of range", one.HeadShare)
	}
}

func TestExtensionGQAStudy(t *testing.T) {
	rows, err := ExtensionGQAStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	gqa, mha := rows[0], rows[1]
	if gqa.KVCacheBytes*3 != mha.KVCacheBytes {
		t.Errorf("GQA KV cache %d should be 1/3 of MHA %d", gqa.KVCacheBytes, mha.KVCacheBytes)
	}
	if gqa.BlockWeightMiB >= mha.BlockWeightMiB {
		t.Error("GQA should shrink block weights")
	}
	if gqa.MaxChips != 3 || mha.MaxChips != 9 {
		t.Errorf("chip ceilings %d/%d, want 3/9", gqa.MaxChips, mha.MaxChips)
	}
	// The study's finding: GQA saves memory but caps head
	// parallelism — SmolLM's 3.4 MiB blocks can never double-buffer
	// across only 3 chips, while the MHA variant reaches the
	// off-chip-free tier at 9.
	if gqa.MinChipsNoL3 != 0 {
		t.Errorf("GQA variant reached off-chip free at %d chips; ceiling should prevent it", gqa.MinChipsNoL3)
	}
	if mha.MinChipsNoL3 != 9 {
		t.Errorf("MHA variant min chips %d, want 9", mha.MinChipsNoL3)
	}
	if mha.LatencyMSAtBest >= gqa.LatencyMSAtBest {
		t.Error("MHA at its ceiling should be faster than GQA at its ceiling")
	}
}
