package experiments

import (
	"mcudist/internal/core"
	"mcudist/internal/deploy"
	"mcudist/internal/evalpool"
	"mcudist/internal/explore"
	"mcudist/internal/hw"
	"mcudist/internal/model"
)

// MemTierRow is one configuration of the memory-hierarchy cost-tier
// study: a streamed-tier deployment priced under the flat off-chip
// model or the DRAM-backed hierarchy with one knob varied.
type MemTierRow struct {
	Label  string
	Mode   string
	Chips  int
	Cycles float64
	// L3Cycles is the off-chip share of the runtime breakdown — the
	// bucket the hierarchy re-prices (tile fetches that the prefetch
	// depth cannot hide, plus bank-contention stalls).
	L3Cycles float64
	// L3Bytes is the total off-chip traffic.
	L3Bytes  int64
	EnergyMJ float64
	Tier     deploy.Tier
}

// MemTierStudy prices the paper's streamed-tier operating point —
// TinyLlama on 2 chips, where no chip fits its weight slice — under
// the flat exposed-bytes model and under the DRAM-backed hierarchy,
// sweeping the channel knobs in both inference modes. The shape of
// the result, pinned in TestMemTierStudy: the hierarchy's
// double-buffered tile prefetch prices the same off-chip traffic
// cheaper than the flat model's synchronous-bytes accounting in both
// modes; prefetch depth beyond 1 changes nothing — the planner's
// uniform tile streams saturate at double buffering, in either the
// fetch-bound (decode) or compute-bound (prompt) regime — while bank
// contention strictly bites exactly where tiles carry real compute
// (prompt), and DRAM bandwidth is the decode bottleneck.
func MemTierStudy() ([]MemTierRow, error) {
	dram := func(mutate func(*hw.MemHierarchy)) core.System {
		sys := core.DefaultSystem(2)
		sys.HW.Mem = hw.LPDDR5()
		if mutate != nil {
			mutate(&sys.HW.Mem)
		}
		return sys
	}
	type pt struct {
		label string
		mode  model.Mode
		sys   core.System
	}
	var pts []pt
	for _, mode := range []model.Mode{model.Autoregressive, model.Prompt} {
		pts = append(pts,
			pt{"flat", mode, core.DefaultSystem(2)},
			pt{"dram-lpddr5", mode, dram(nil)},
			pt{"dram-depth1", mode, dram(func(m *hw.MemHierarchy) { m.PrefetchDepth = 1 })},
			pt{"dram-depth4", mode, dram(func(m *hw.MemHierarchy) { m.PrefetchDepth = 4 })},
			pt{"dram-banks2", mode, dram(func(m *hw.MemHierarchy) { m.SRAMBanks = 2 })},
			pt{"dram-banks16", mode, dram(func(m *hw.MemHierarchy) { m.SRAMBanks = 16 })},
			pt{"dram-halfbw", mode, dram(func(m *hw.MemHierarchy) { m.DRAMBytesPerCycle /= 2 })},
		)
	}
	points := make([]evalpool.Point, len(pts))
	for i, p := range pts {
		points[i] = evalpool.Point{System: p.sys, Workload: core.Workload{Model: model.TinyLlama42M(), Mode: p.mode}}
	}
	reports, err := evalpool.Map(points)
	if err != nil {
		return nil, err
	}
	rows := make([]MemTierRow, len(pts))
	for i, r := range reports {
		rows[i] = MemTierRow{
			Label: pts[i].label, Mode: pts[i].mode.String(), Chips: pts[i].sys.Chips,
			Cycles: r.Cycles, L3Cycles: r.Breakdown.L3, L3Bytes: r.L3Bytes,
			EnergyMJ: r.Energy.Total() * 1e3, Tier: r.Tier,
		}
	}
	return rows, nil
}

// MemTilingRow is one operating point of the per-family tiling
// autotuning study.
type MemTilingRow struct {
	Model string
	Chips int
	// Attn / FFN are the winning tile shapes per layer family; Cycles
	// the winner's exact runtime.
	Attn   string
	FFN    string
	Cycles float64
	// BestUniform / UniformCycles is the best single shared tiling,
	// Margin = UniformCycles / Cycles, and EnergyMargin the same ratio
	// on total energy (a value below 1 means the split bought latency
	// with extra DRAM traffic).
	BestUniform   string
	UniformCycles float64
	Margin        float64
	EnergyMargin  float64
	// RankAccuracy is the closed-form predictor's pairwise concordance
	// on the verified pairs; ExactSims vs GridSims is the
	// predict-then-verify saving over exhaustive grid enumeration.
	RankAccuracy float64
	ExactSims    int
	GridSims     int
}

// MemTilingAutotune runs the per-family tiling autotuner on the
// streamed-tier operating points: the paper's TinyLlama on 2 chips and
// the bigger-than-SRAM EdgeLlama-1B — a billion-parameter model paged
// from DRAM — on 8 chips, both decoding. The shape of the result,
// pinned in TestMemTilingAutotune: on EdgeLlama the attention and FFN
// families prefer different tile shapes (32x352 vs 32x512) with a
// small strict latency win over the best uniform tiling, found with
// zero probe simulations and a fraction of the grid's exact-sim bill.
func MemTilingAutotune() ([]MemTilingRow, error) {
	scenarios := []struct {
		cfg   model.Config
		chips int
	}{
		{model.TinyLlama42M(), 2},
		{model.EdgeLlama1B(), 8},
	}
	var rows []MemTilingRow
	for _, sc := range scenarios {
		sys := core.DefaultSystem(sc.chips)
		sys.HW.Mem = hw.LPDDR5()
		wl := core.Workload{Model: sc.cfg, Mode: model.Autoregressive}
		res, err := explore.AutotuneTiling(sys, wl, explore.TilingOptions{Candidates: 6})
		if err != nil {
			return nil, err
		}
		rows = append(rows, MemTilingRow{
			Model:         sc.cfg.Name,
			Chips:         sc.chips,
			Attn:          res.Attn.String(),
			FFN:           res.FFN.String(),
			Cycles:        res.Cycles,
			BestUniform:   res.BestUniform.String(),
			UniformCycles: res.UniformCycles,
			Margin:        res.Margin,
			EnergyMargin:  res.UniformReport.Energy.Total() / res.Report.Energy.Total(),
			RankAccuracy:  res.RankAccuracy,
			ExactSims:     res.ExactSims,
			GridSims:      res.GridSims,
		})
	}
	return rows, nil
}
