package experiments

import (
	"mcudist/internal/core"
	"mcudist/internal/evalpool"
	"mcudist/internal/model"
	"mcudist/internal/partition"
)

// Headline collects the paper's abstract-level claims next to our
// measured values.
type Headline struct {
	// TinyLlama autoregressive, 8 chips vs 1 (paper: 26.1×).
	ARSpeedup8 float64
	// Energy per inference at 8 chips in mJ (paper: 0.64 mJ).
	AREnergy8MJ float64
	// Latency per inference at 8 chips in ms (paper: 0.54 ms).
	ARLatency8MS float64
	// EDP improvement 8 chips vs 1 (paper: 27.2×).
	AREDPImprovement float64
	// Energy ratio 8 chips / 1 chip (paper: "similar").
	AREnergyRatio float64
	// TinyLlama prompt mode speedup at 8 chips (paper: 9.9×).
	PromptSpeedup8 float64
	// MobileBERT speedup at 4 chips (paper: 4.7×).
	MobileBERTSpeedup4 float64
	// Scaled-up model speedup at 64 chips (paper: 60.1×).
	ScaledSpeedup64 float64
	// Scaled-up energy reduction at 64 chips vs 1 (paper: 1.3×).
	ScaledEnergyReduction64 float64
	// Synchronizations per transformer block (paper: 2).
	SyncsPerBlock int
	// Weight replication factor of the partitioning (paper: none).
	ReplicationFactor float64
}

// RunHeadline measures every abstract-level metric.
func RunHeadline() (*Headline, error) {
	h := &Headline{}

	ll := core.Workload{Model: model.TinyLlama42M(), Mode: model.Autoregressive}
	ar, err := evalpool.Eval(core.DefaultSystem(1), ll, []int{1, 8})
	if err != nil {
		return nil, err
	}
	h.ARSpeedup8 = core.Speedup(ar[0], ar[1])
	h.AREnergy8MJ = ar[1].Energy.Total() * 1e3
	h.ARLatency8MS = ar[1].Seconds * 1e3
	h.AREDPImprovement = ar[0].EDP / ar[1].EDP
	h.AREnergyRatio = ar[1].Energy.Total() / ar[0].Energy.Total()
	h.SyncsPerBlock = ar[1].Syncs / ll.Model.L

	pr, err := evalpool.Eval(core.DefaultSystem(1),
		core.Workload{Model: model.TinyLlama42M(), Mode: model.Prompt}, []int{1, 8})
	if err != nil {
		return nil, err
	}
	h.PromptSpeedup8 = core.Speedup(pr[0], pr[1])

	mb, err := evalpool.Eval(core.DefaultSystem(1),
		core.Workload{Model: model.MobileBERT512(), Mode: model.Prompt}, []int{1, 4})
	if err != nil {
		return nil, err
	}
	h.MobileBERTSpeedup4 = core.Speedup(mb[0], mb[1])

	sc, err := evalpool.Eval(core.DefaultSystem(1),
		core.Workload{Model: model.TinyLlamaScaled64(), Mode: model.Autoregressive}, []int{1, 64})
	if err != nil {
		return nil, err
	}
	h.ScaledSpeedup64 = core.Speedup(sc[0], sc[1])
	h.ScaledEnergyReduction64 = sc[0].Energy.Total() / sc[1].Energy.Total()

	plan, err := partition.NewTensorParallel(model.TinyLlama42M(), 8)
	if err != nil {
		return nil, err
	}
	h.ReplicationFactor = plan.ReplicationFactor()
	return h, nil
}

// PaperHeadline returns the values the paper reports, for side-by-side
// presentation.
func PaperHeadline() Headline {
	return Headline{
		ARSpeedup8:              26.1,
		AREnergy8MJ:             0.64,
		ARLatency8MS:            0.54,
		AREDPImprovement:        27.2,
		AREnergyRatio:           1.0,
		PromptSpeedup8:          9.9,
		MobileBERTSpeedup4:      4.7,
		ScaledSpeedup64:         60.1,
		ScaledEnergyReduction64: 1.3,
		SyncsPerBlock:           2,
		ReplicationFactor:       1.0,
	}
}
