package experiments

import (
	"mcudist/internal/core"
	"mcudist/internal/evalpool"
	"mcudist/internal/explore"
	"mcudist/internal/hw"
	"mcudist/internal/interconnect"
	"mcudist/internal/kernels"
	"mcudist/internal/model"
	"mcudist/internal/partition"
)

// Extension studies: questions the paper's evaluation grid leaves
// open, answered with the same machinery.

// GridRow is one chip count of the full-grid study.
type GridRow struct {
	Chips   int
	Cycles  float64
	Speedup float64
	Tier    string
}

// ExtensionFullGrid evaluates TinyLlama autoregressive on EVERY chip
// count 1–8, not just the paper's powers of two. It reveals that the
// off-chip-free crossover already happens at 5 chips.
func ExtensionFullGrid() ([]GridRow, error) {
	wl := core.Workload{Model: model.TinyLlama42M(), Mode: model.Autoregressive}
	chips := explore.LegalChipCounts(wl.Model, 8)
	reports, err := evalpool.Eval(core.DefaultSystem(1), wl, chips)
	if err != nil {
		return nil, err
	}
	rows := make([]GridRow, len(reports))
	for i, r := range reports {
		rows[i] = GridRow{
			Chips:   chips[i],
			Cycles:  r.Cycles,
			Speedup: core.Speedup(reports[0], r),
			Tier:    r.Tier.String(),
		}
	}
	return rows, nil
}

// SeqLenRow is one sequence length of the crossover study.
type SeqLenRow struct {
	SeqLen   int
	Speedup8 float64
	// L3Share1 is the single-chip L3 runtime fraction.
	L3Share1 float64
}

// ExtensionSeqLenStudy sweeps the prompt length: short prompts are
// memory-bound (big speedups from removing L3), long prompts
// compute-bound (speedups approach the chip count).
func ExtensionSeqLenStudy() ([]SeqLenRow, error) {
	cfg := model.TinyLlama42M()
	lens := []int{4, 8, 16, 32, 64, 128}
	// One (1-chip, 8-chip) pair per prompt length, all in one fan-out.
	var points []evalpool.Point
	for _, s := range lens {
		wl := core.Workload{Model: cfg, Mode: model.Prompt, SeqLen: s}
		points = append(points,
			evalpool.Point{System: core.DefaultSystem(1), Workload: wl},
			evalpool.Point{System: core.DefaultSystem(8), Workload: wl})
	}
	reports, err := evalpool.Map(points)
	if err != nil {
		return nil, err
	}
	rows := make([]SeqLenRow, len(lens))
	for i, s := range lens {
		one, eight := reports[2*i], reports[2*i+1]
		rows[i] = SeqLenRow{
			SeqLen:   s,
			Speedup8: core.Speedup(one, eight),
			L3Share1: one.Breakdown.L3 / one.Cycles,
		}
	}
	return rows, nil
}

// ContextRow is one context length of the autoregressive KV study.
type ContextRow struct {
	Context    int
	CyclesPer8 float64
	EnergyMJ8  float64
	Tier       string
}

// ExtensionContextStudy sweeps the autoregressive context length at 8
// chips: per-token cost grows with the KV reads, and very long
// contexts eventually push the KV cache out of the double-buffered
// budget.
func ExtensionContextStudy() ([]ContextRow, error) {
	cfg := model.TinyLlama42M()
	ctxs := []int{32, 64, 128, 256, 512, 1024}
	points := make([]evalpool.Point, len(ctxs))
	for i, ctx := range ctxs {
		points[i] = evalpool.Point{
			System:   core.DefaultSystem(8),
			Workload: core.Workload{Model: cfg, Mode: model.Autoregressive, SeqLen: ctx},
		}
	}
	reports, err := evalpool.Map(points)
	if err != nil {
		return nil, err
	}
	rows := make([]ContextRow, len(ctxs))
	for i, rep := range reports {
		rows[i] = ContextRow{
			Context:    ctxs[i],
			CyclesPer8: rep.Cycles,
			EnergyMJ8:  rep.Energy.Total() * 1e3,
			Tier:       rep.Tier.String(),
		}
	}
	return rows, nil
}

// LMHeadRow quantifies what the paper's block-only measurement
// excludes: the output (LM head) projection of one token.
type LMHeadRow struct {
	Chips int
	// BlocksCycles is the simulated per-token cost of all blocks.
	BlocksCycles float64
	// HeadCycles is the analytical cost of the vocab projection:
	// streaming the E×V int8 head slice from L3 plus the GEMV.
	HeadCycles float64
	// HeadShare is head / (head + blocks).
	HeadShare float64
}

// ExtensionLMHeadStudy adds the vocabulary projection the paper's
// per-block measurements exclude. The head is vocab-split across
// chips (each chip computes its logit slice; the argmax exchange is
// negligible), but its 16 MiB weight matrix can never reside on-chip,
// so it streams from L3 every token — and dominates the per-token
// cost, justifying the paper's focus on making the blocks
// off-chip-free first.
func ExtensionLMHeadStudy() ([]LMHeadRow, error) {
	cfg := model.TinyLlama42M()
	hwp := hw.Siracusa()
	e := kernels.Elem{Weight: cfg.WeightBytes, Act: cfg.ActBytes, Acc: cfg.AccBytes, Reduce: cfg.ReduceBytes}
	var rows []LMHeadRow
	for _, n := range []int{1, 8} {
		rep, err := evalpool.Run(core.DefaultSystem(n),
			core.Workload{Model: cfg, Mode: model.Autoregressive})
		if err != nil {
			return nil, err
		}
		vSlice := cfg.VocabSize / n
		headBytes := int64(cfg.E) * int64(vSlice) * int64(cfg.WeightBytes)
		stream := kernels.DMATime(headBytes, hwp.Chip.DMAL3L2BytesPerCycle,
			hwp.Chip.DMAL3L2SetupCycles, int64(hwp.Chip.L1Bytes/2))
		gemv := kernels.Linear(hwp, 1, cfg.E, vSlice, e)
		head := stream + gemv.Cycles +
			kernels.DMATime(gemv.TotalL2L1Bytes(), hwp.Chip.DMAL2L1BytesPerCycle,
				hwp.Chip.DMAL2L1SetupCycles, int64(hwp.Chip.L1Bytes/2))
		rows = append(rows, LMHeadRow{
			Chips:        n,
			BlocksCycles: rep.Cycles,
			HeadCycles:   head,
			HeadShare:    head / (head + rep.Cycles),
		})
	}
	return rows, nil
}

// BatchRow is one batch size of the pipelining study.
type BatchRow struct {
	Batch int
	// OursLatencyCycles is the per-request latency of the paper's
	// tensor-parallel scheme (batch-independent: requests serialize).
	OursLatencyCycles float64
	// PipeLastLatency is when the last request of the batch leaves
	// the pipeline; PipeThroughput is requests per second once full.
	PipeLastLatency float64
	// Throughputs in requests/s at 500 MHz.
	OursThroughput float64
	PipeThroughput float64
}

// ExtensionBatchingStudy quantifies the paper's Table I argument
// against pipeline parallelism: with batch 1 (the smart-glasses
// reality) a pipeline gives neither latency nor throughput; only with
// multi-user batches does its throughput recover — which is exactly
// the regime edge devices do not have.
func ExtensionBatchingStudy() ([]BatchRow, error) {
	cfg := model.TinyLlama42M()
	wl := core.Workload{Model: cfg, Mode: model.Prompt, SeqLen: 16}

	ours, err := evalpool.Run(core.DefaultSystem(8), wl)
	if err != nil {
		return nil, err
	}
	pipeSys := core.DefaultSystem(8)
	pipeSys.Strategy = partition.Pipeline
	pipe, err := evalpool.Run(pipeSys, wl)
	if err != nil {
		return nil, err
	}
	// Per-stage occupancy from the simulated single request: the
	// slowest stage bounds pipeline throughput.
	var maxStage float64
	for _, st := range pipe.PerChip {
		busy := st.ComputeCycles + st.L2L1Cycles + st.L3Cycles
		if busy > maxStage {
			maxStage = busy
		}
	}
	freq := pipeSys.HW.Chip.FreqHz

	var rows []BatchRow
	for _, b := range []int{1, 2, 4, 8, 16} {
		fb := float64(b)
		rows = append(rows, BatchRow{
			Batch:             b,
			OursLatencyCycles: ours.Cycles,
			PipeLastLatency:   pipe.Cycles + (fb-1)*maxStage,
			OursThroughput:    freq / ours.Cycles, // requests serialize
			PipeThroughput:    fb * freq / (pipe.Cycles + (fb-1)*maxStage),
		})
	}
	return rows, nil
}

// CollectiveRow compares the tree and ring collectives for one
// payload.
type CollectiveRow struct {
	Payload    int64
	Chips      int
	TreeCycles float64
	RingCycles float64
}

// ExtensionCollectiveStudy compares the paper's hierarchical tree
// against a bandwidth-optimal ring all-reduce across payload sizes
// and chip counts. The ring wins at moderate scale (8 chips) — even
// for small payloads — and decisively for encoder-scale payloads; the
// tree's logarithmic depth wins for small payloads at 64 chips, the
// regime the paper's scalability study targets.
func ExtensionCollectiveStudy() ([]CollectiveRow, error) {
	p := hw.Siracusa()
	var rows []CollectiveRow
	for _, chips := range []int{8, 64} {
		tree, err := interconnect.BuildTree(chips, p.GroupSize)
		if err != nil {
			return nil, err
		}
		for _, payload := range []int64{512, 8 * 1024, 137 * 1024, 1 << 20} {
			rows = append(rows, CollectiveRow{
				Payload:    payload,
				Chips:      chips,
				TreeCycles: interconnect.CriticalPathCycles(tree, p, payload, payload),
				RingCycles: interconnect.RingAllReduceCycles(chips, p, 2*payload),
			})
		}
	}
	return rows, nil
}

// GQARow compares grouped-query attention against full multi-head
// attention for the same model geometry.
type GQARow struct {
	Variant         string
	KVCacheBytes    int // per block at S=128
	BlockWeightMiB  float64
	MaxChips        int
	MinChipsNoL3    int
	LatencyMSAtBest float64
}

// ExtensionGQAStudy quantifies what GQA changes for the partitioning
// scheme: smaller KV caches and K/V projections ease the fit, but the
// chip ceiling drops to the KV head count.
func ExtensionGQAStudy() ([]GQARow, error) {
	gqa := model.SmolLM135M()
	mha := gqa
	mha.Name = "smollm-135m-mha"
	mha.KVHeads = 0 // full multi-head attention

	var rows []GQARow
	for _, cfg := range []model.Config{gqa, mha} {
		wl := core.Workload{Model: cfg, Mode: model.Autoregressive, SeqLen: 128}
		maxChips := explore.LegalChipCounts(cfg, 64)
		best := maxChips[len(maxChips)-1]

		row := GQARow{
			Variant:        cfg.Name,
			KVCacheBytes:   cfg.KVBytesPerBlock(128),
			BlockWeightMiB: float64(cfg.BlockWeightBytes()) / (1 << 20),
			MaxChips:       best,
		}
		if pt, err := explore.MinChipsOffChipFree(core.DefaultSystem(1), wl, best); err == nil {
			row.MinChipsNoL3 = pt.Chips
		}
		rep, err := evalpool.Run(core.DefaultSystem(best), wl)
		if err != nil {
			return nil, err
		}
		row.LatencyMSAtBest = rep.Seconds * 1e3
		rows = append(rows, row)
	}
	return rows, nil
}
