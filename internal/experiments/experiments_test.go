package experiments

import (
	"testing"

	"mcudist/internal/deploy"
)

// These tests are the reproduction contract: every figure and table of
// the paper must regenerate with the shapes the paper reports.

func TestFig4aShape(t *testing.T) {
	res, err := Fig4a()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	r8, err := res.Row(8)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 26.1× super-linear at 8 chips.
	if r8.Speedup <= 8 {
		t.Errorf("8-chip AR speedup %g not super-linear", r8.Speedup)
	}
	if r8.Speedup < 15 || r8.Speedup > 40 {
		t.Errorf("8-chip AR speedup %g far from paper's 26.1", r8.Speedup)
	}
	// L3 dominates below the fit boundary.
	for _, n := range []int{1, 2, 4} {
		r, err := res.Row(n)
		if err != nil {
			t.Fatal(err)
		}
		if r.Breakdown.L3 < r.Breakdown.Compute {
			t.Errorf("n=%d: L3 %g below compute %g", n, r.Breakdown.L3, r.Breakdown.Compute)
		}
		if r.Tier.OffChipFree() {
			t.Errorf("n=%d: tier %v should not be off-chip free", n, r.Tier)
		}
	}
	if r8.Breakdown.L3 != 0 {
		t.Errorf("8-chip L3 %g, want 0", r8.Breakdown.L3)
	}
}

func TestFig4bShape(t *testing.T) {
	res, err := Fig4b()
	if err != nil {
		t.Fatal(err)
	}
	r8, err := res.Row(8)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 9.9× super-linear but below the AR figure.
	if r8.Speedup <= 8 || r8.Speedup > 16 {
		t.Errorf("prompt 8-chip speedup %g outside (8,16] (paper: 9.9)", r8.Speedup)
	}
	// Compute is the largest contributor once L3 is gone.
	b := r8.Breakdown
	if b.Compute < b.L2L1 || b.Compute < b.C2C {
		t.Errorf("prompt 8-chip compute %g not dominant (%+v)", b.Compute, b)
	}
}

func TestFig4cShape(t *testing.T) {
	res, err := Fig4c()
	if err != nil {
		t.Fatal(err)
	}
	r4, err := res.Row(4)
	if err != nil {
		t.Fatal(err)
	}
	if r4.Speedup <= 4 || r4.Speedup > 8 {
		t.Errorf("MobileBERT 4-chip speedup %g outside (4,8] (paper: 4.7)", r4.Speedup)
	}
	if !r4.Tier.OffChipFree() {
		t.Errorf("MobileBERT at 4 chips should be off-chip free, got %v", r4.Tier)
	}
}

func TestFig5aShape(t *testing.T) {
	res, err := Fig5a()
	if err != nil {
		t.Fatal(err)
	}
	p1, err := res.Point(1, false)
	if err != nil {
		t.Fatal(err)
	}
	p8, err := res.Point(8, false)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: similar energy at the fit boundary, much lower EDP.
	ratio := p8.EnergyMJ / p1.EnergyMJ
	if ratio < 0.8 || ratio > 1.2 {
		t.Errorf("8-chip energy ratio %g, want similar", ratio)
	}
	if p8.EDP >= p1.EDP/10 {
		t.Errorf("EDP did not improve by 10×: %g vs %g", p1.EDP, p8.EDP)
	}
	// Scaled model: energy drops once weights become resident (32+).
	s16, err := res.Point(16, true)
	if err != nil {
		t.Fatal(err)
	}
	s32, err := res.Point(32, true)
	if err != nil {
		t.Fatal(err)
	}
	if s32.EnergyMJ >= s16.EnergyMJ {
		t.Errorf("32-chip scaled energy %g not below 16-chip %g", s32.EnergyMJ, s16.EnergyMJ)
	}
	if s16.Tier != deploy.TierDoubleBuffered || s32.Tier != deploy.TierResidentAll {
		t.Errorf("scaled tiers 16=%v 32=%v, want double-buffered/resident-all", s16.Tier, s32.Tier)
	}
}

func TestFig5bShape(t *testing.T) {
	res, err := Fig5b()
	if err != nil {
		t.Fatal(err)
	}
	p1, _ := res.Point(1, false)
	p8, _ := res.Point(8, false)
	if p8.EnergyMJ > p1.EnergyMJ*1.05 {
		t.Errorf("prompt 8-chip energy %g above 1-chip %g (paper: reduced)", p8.EnergyMJ, p1.EnergyMJ)
	}
	s64, err := res.Point(64, true)
	if err != nil {
		t.Fatal(err)
	}
	if s64.Tier != deploy.TierResidentAll {
		t.Errorf("scaled prompt 64-chip tier %v", s64.Tier)
	}
}

func TestFig5cShape(t *testing.T) {
	res, err := Fig5c()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d, want 3", len(res.Points))
	}
	p4, _ := res.Point(4, false)
	p1, _ := res.Point(1, false)
	if p4.Cycles >= p1.Cycles {
		t.Error("MobileBERT 4-chip not faster")
	}
}

func TestFig6Shape(t *testing.T) {
	res, err := Fig6()
	if err != nil {
		t.Fatal(err)
	}
	byChips := map[int]Fig6Row{}
	for _, r := range res.Rows {
		byChips[r.Chips] = r
	}
	// Paper: AR super-linear for 8–32, quasi-linear at 64 (60.1×).
	for _, n := range []int{8, 16, 32} {
		if byChips[n].AutoregressiveSpeedup <= float64(n) {
			t.Errorf("scaled AR speedup at %d chips = %g, want super-linear", n, byChips[n].AutoregressiveSpeedup)
		}
	}
	s64 := byChips[64].AutoregressiveSpeedup
	if s64 < 40 || s64 > 100 {
		t.Errorf("scaled AR speedup at 64 = %g, far from paper's 60.1", s64)
	}
	// Prompt: diminishing returns past 16 chips.
	p16, p64 := byChips[16].PromptSpeedup, byChips[64].PromptSpeedup
	if p64 > p16*1.35 {
		t.Errorf("prompt speedup kept scaling: 16→%g 64→%g (paper: diminishing)", p16, p64)
	}
	if byChips[8].PromptSpeedup <= 8 {
		t.Errorf("scaled prompt at 8 chips %g not super-linear", byChips[8].PromptSpeedup)
	}
}

func TestTable1Shape(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	var ours, repl, pipe Table1Row
	for _, r := range rows {
		switch r.Work {
		case "Ours (tensor-parallel)":
			ours = r
		case "When the Edge Meets Transformers [21]":
			repl = r
		default:
			pipe = r
		}
	}
	if ours.WeightDuplication || ours.Pipelining {
		t.Error("our row should have no duplication and no pipelining")
	}
	if !repl.WeightDuplication {
		t.Error("replicated row should duplicate weights")
	}
	// The paper's scheme must beat both baselines in both modes.
	if ours.ARCycles >= repl.ARCycles || ours.ARCycles >= pipe.ARCycles {
		t.Errorf("ours AR %g not fastest (repl %g, pipe %g)", ours.ARCycles, repl.ARCycles, pipe.ARCycles)
	}
	if ours.PromptCycles >= repl.PromptCycles || ours.PromptCycles >= pipe.PromptCycles {
		t.Errorf("ours prompt %g not fastest (repl %g, pipe %g)", ours.PromptCycles, repl.PromptCycles, pipe.PromptCycles)
	}
	// Single-user AR latency: neither baseline achieves real speedup.
	if repl.ARSpeedup > 1.5 || pipe.ARSpeedup > 1.5 {
		t.Errorf("baselines should not accelerate single-token AR: repl %g pipe %g", repl.ARSpeedup, pipe.ARSpeedup)
	}
}

func TestHeadlineMetrics(t *testing.T) {
	h, err := RunHeadline()
	if err != nil {
		t.Fatal(err)
	}
	paper := PaperHeadline()
	if h.SyncsPerBlock != paper.SyncsPerBlock {
		t.Errorf("syncs per block %d, want %d", h.SyncsPerBlock, paper.SyncsPerBlock)
	}
	if h.ReplicationFactor != 1.0 {
		t.Errorf("replication factor %g, want 1", h.ReplicationFactor)
	}
	if h.ARSpeedup8 <= 8 {
		t.Errorf("AR speedup %g not super-linear", h.ARSpeedup8)
	}
	if h.PromptSpeedup8 <= 8 {
		t.Errorf("prompt speedup %g not super-linear", h.PromptSpeedup8)
	}
	if h.MobileBERTSpeedup4 <= 4 {
		t.Errorf("MobileBERT speedup %g not super-linear", h.MobileBERTSpeedup4)
	}
	if h.AREDPImprovement < 15 {
		t.Errorf("EDP improvement %g too low", h.AREDPImprovement)
	}
	if h.ScaledEnergyReduction64 <= 1 {
		t.Errorf("scaled energy reduction %g, want > 1", h.ScaledEnergyReduction64)
	}
	if h.ARLatency8MS <= 0 || h.AREnergy8MJ <= 0 {
		t.Error("headline latency/energy not positive")
	}
}

func TestAblationReduceTopology(t *testing.T) {
	rows, err := AblationReduceTopology()
	if err != nil {
		t.Fatal(err)
	}
	// At 64 chips the hierarchical tree must beat flat all-to-one.
	var hier, flat float64
	for _, r := range rows {
		if r.Chips == 64 {
			if r.Label == "hierarchical-4" {
				hier = r.Cycles
			} else {
				flat = r.Cycles
			}
		}
	}
	if hier == 0 || flat == 0 {
		t.Fatal("missing 64-chip rows")
	}
	if hier >= flat {
		t.Errorf("hierarchical %g not faster than flat %g at 64 chips", hier, flat)
	}
}

func TestAblationReducePrecision(t *testing.T) {
	rows, err := AblationReducePrecision()
	if err != nil {
		t.Fatal(err)
	}
	var int8AR, int32AR int64
	for _, r := range rows {
		switch r.Label {
		case "autoregressive-int8-exchange":
			int8AR = r.C2CBytes
		case "autoregressive-int32-exchange":
			int32AR = r.C2CBytes
		}
	}
	// int32 exchange moves more reduce traffic (reduce payload 4×;
	// broadcast unchanged).
	if int32AR <= int8AR {
		t.Errorf("int32 exchange traffic %d not above int8 %d", int32AR, int8AR)
	}
}

func TestAblationPrefetch(t *testing.T) {
	rows, err := AblationPrefetch()
	if err != nil {
		t.Fatal(err)
	}
	var hidden, exposed float64
	for _, r := range rows {
		if r.Label == "prefetch-overlapped" {
			hidden = r.Cycles
		} else {
			exposed = r.Cycles
		}
	}
	if exposed <= hidden {
		t.Errorf("exposed prefetch %g not slower than overlapped %g", exposed, hidden)
	}
}

func TestAblationActivationSpill(t *testing.T) {
	rows, err := AblationActivationSpill()
	if err != nil {
		t.Fatal(err)
	}
	get := func(label string, chips int) AblationRow {
		for _, r := range rows {
			if r.Label == label && r.Chips == chips {
				return r
			}
		}
		t.Fatalf("missing row %s/%d", label, chips)
		return AblationRow{}
	}
	with1 := get("with-spill", 1)
	no1 := get("no-spill", 1)
	// Spill only affects capacity-starved (single-chip) systems.
	if with1.Cycles <= no1.Cycles {
		t.Error("spill did not slow the single-chip system")
	}
	with4 := get("with-spill", 4)
	no4 := get("no-spill", 4)
	if with4.Cycles != no4.Cycles {
		t.Error("spill affected the 4-chip (double-buffered) system")
	}
}

func TestAblationDegradedLink(t *testing.T) {
	rows, err := AblationDegradedLink()
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]AblationRow{}
	for _, r := range rows {
		byLabel[r.Label] = r
	}
	healthy := byLabel["healthy"].Cycles
	leaf := byLabel["leaf-chip7-quarter-rate"].Cycles
	root := byLabel["root-chip0-quarter-rate"].Cycles
	if leaf <= healthy {
		t.Errorf("degrading a leaf link did not slow the system: %g vs %g", leaf, healthy)
	}
	if root <= leaf {
		t.Errorf("degrading the root (%g) should hurt more than a leaf (%g)", root, leaf)
	}
	// Traffic is unchanged — only timing degrades.
	if byLabel["healthy"].C2CBytes != byLabel["root-chip0-quarter-rate"].C2CBytes {
		t.Error("degradation changed traffic volume")
	}
}

func TestAblationStraggler(t *testing.T) {
	rows, err := AblationStraggler()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Runtime grows monotonically as the straggler slows.
	for i := 1; i < len(rows); i++ {
		if rows[i].Cycles <= rows[i-1].Cycles {
			t.Errorf("straggler at step %d did not slow the system: %g vs %g",
				i, rows[i].Cycles, rows[i-1].Cycles)
		}
	}
	// A half-speed chip should cost well under 2× total (only its
	// compute slows, not DMA or links), but clearly more than nothing.
	healthy, half := rows[0].Cycles, rows[2].Cycles
	if half < 1.1*healthy || half > 2*healthy {
		t.Errorf("half-speed straggler impact %g/%g out of expected band", half, healthy)
	}
}

func TestAblationGroupSizeAndLink(t *testing.T) {
	gs, err := AblationGroupSize()
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 4 {
		t.Fatalf("group-size rows = %d", len(gs))
	}
	lb, err := AblationLinkBandwidth()
	if err != nil {
		t.Fatal(err)
	}
	// More link bandwidth must not slow things down.
	for i := 1; i < len(lb); i++ {
		if lb[i].Cycles > lb[i-1].Cycles*1.001 {
			t.Errorf("link bandwidth increase slowed runtime: %v", lb)
		}
	}
}
