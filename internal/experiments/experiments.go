// Package experiments regenerates every table and figure of the
// paper's evaluation section from the simulator, plus the ablations
// called out in DESIGN.md. Each experiment returns structured data;
// cmd/paperrepro renders them and the root benchmarks wrap them.
//
// Concurrency model: every experiment evaluates its configurations
// through the shared evalpool engine — points fan out across the
// worker pool and land in the process-wide memoized report cache, so
// rows arrive in deterministic order, repeated runs of an experiment
// are free, and configurations shared between figures (the 1-chip
// TinyLlama baseline appears in Fig. 4, Fig. 5, Table I, and the
// headline metrics) are simulated once per process. Output is
// byte-identical to the serial core.Run path.
package experiments

import (
	"fmt"

	"mcudist/internal/core"
	"mcudist/internal/deploy"
	"mcudist/internal/evalpool"
	"mcudist/internal/model"
	"mcudist/internal/perfsim"
)

// BreakdownRow is one bar group of Fig. 4: runtime breakdown and
// speedup at a chip count.
type BreakdownRow struct {
	Chips     int
	Cycles    float64
	Breakdown perfsim.Breakdown
	Speedup   float64
	Tier      deploy.Tier
}

// Fig4Result is one subplot of Fig. 4.
type Fig4Result struct {
	Name string
	Rows []BreakdownRow
}

func breakdownSweep(name string, wl core.Workload, chips []int) (*Fig4Result, error) {
	reports, err := evalpool.Eval(core.DefaultSystem(1), wl, chips)
	if err != nil {
		return nil, err
	}
	base := reports[0]
	if chips[0] != 1 {
		b, err := evalpool.Run(core.DefaultSystem(1), wl)
		if err != nil {
			return nil, err
		}
		base = b
	}
	out := &Fig4Result{Name: name}
	for i, r := range reports {
		out.Rows = append(out.Rows, BreakdownRow{
			Chips:     chips[i],
			Cycles:    r.Cycles,
			Breakdown: r.Breakdown,
			Speedup:   core.Speedup(base, r),
			Tier:      r.Tier,
		})
	}
	return out, nil
}

// Fig4a reproduces TinyLlama autoregressive mode on 1–8 chips
// (paper: 26.1× at 8 chips, L3-dominated below 8).
func Fig4a() (*Fig4Result, error) {
	return breakdownSweep("Fig4a TinyLlama autoregressive",
		core.Workload{Model: model.TinyLlama42M(), Mode: model.Autoregressive},
		[]int{1, 2, 4, 8})
}

// Fig4b reproduces TinyLlama prompt mode on 1–8 chips (paper: 9.9×).
func Fig4b() (*Fig4Result, error) {
	return breakdownSweep("Fig4b TinyLlama prompt",
		core.Workload{Model: model.TinyLlama42M(), Mode: model.Prompt},
		[]int{1, 2, 4, 8})
}

// Fig4c reproduces MobileBERT on 1–4 chips (paper: 4.7× at 4).
func Fig4c() (*Fig4Result, error) {
	return breakdownSweep("Fig4c MobileBERT",
		core.Workload{Model: model.MobileBERT512(), Mode: model.Prompt},
		[]int{1, 2, 4})
}

// Fig5Point is one marker of Fig. 5: runtime vs energy at a chip
// count, for the original (cross) or scaled-up (circle) model.
type Fig5Point struct {
	Chips    int
	Cycles   float64
	EnergyMJ float64
	EDP      float64
	Scaled   bool
	Tier     deploy.Tier
}

// Fig5Result is one subplot of Fig. 5.
type Fig5Result struct {
	Name   string
	Points []Fig5Point
}

func energySweep(name string, wl core.Workload, chips []int, scaled bool, acc *Fig5Result) (*Fig5Result, error) {
	if acc == nil {
		acc = &Fig5Result{Name: name}
	}
	reports, err := evalpool.Eval(core.DefaultSystem(1), wl, chips)
	if err != nil {
		return nil, err
	}
	for i, r := range reports {
		acc.Points = append(acc.Points, Fig5Point{
			Chips:    chips[i],
			Cycles:   r.Cycles,
			EnergyMJ: r.Energy.Total() * 1e3,
			EDP:      r.EDP,
			Scaled:   scaled,
			Tier:     r.Tier,
		})
	}
	return acc, nil
}

// Fig5a: energy vs runtime, TinyLlama autoregressive — original model
// at 1–8 chips plus the scaled-up model at 8–64.
func Fig5a() (*Fig5Result, error) {
	res, err := energySweep("Fig5a energy/runtime autoregressive",
		core.Workload{Model: model.TinyLlama42M(), Mode: model.Autoregressive},
		[]int{1, 2, 4, 8}, false, nil)
	if err != nil {
		return nil, err
	}
	return energySweep(res.Name,
		core.Workload{Model: model.TinyLlamaScaled64(), Mode: model.Autoregressive},
		[]int{8, 16, 32, 64}, true, res)
}

// Fig5b: energy vs runtime, TinyLlama prompt mode.
func Fig5b() (*Fig5Result, error) {
	res, err := energySweep("Fig5b energy/runtime prompt",
		core.Workload{Model: model.TinyLlama42M(), Mode: model.Prompt},
		[]int{1, 2, 4, 8}, false, nil)
	if err != nil {
		return nil, err
	}
	return energySweep(res.Name,
		core.Workload{Model: model.TinyLlamaScaled64(), Mode: model.Prompt},
		[]int{8, 16, 32, 64}, true, res)
}

// Fig5c: energy vs runtime, MobileBERT at 1–4 chips.
func Fig5c() (*Fig5Result, error) {
	return energySweep("Fig5c energy/runtime MobileBERT",
		core.Workload{Model: model.MobileBERT512(), Mode: model.Prompt},
		[]int{1, 2, 4}, false, nil)
}

// Fig6Row is one chip count of the scalability study.
type Fig6Row struct {
	Chips                                int
	AutoregressiveSpeedup, PromptSpeedup float64
}

// Fig6Result is the scaled-up TinyLlama scalability study.
type Fig6Result struct {
	Rows []Fig6Row
}

// Fig6 reproduces the scalability study on the 64-head TinyLlama:
// speedup of 2–64 chips over a single chip, both modes (paper: 60.1×
// autoregressive at 64 chips, prompt linear until 16).
func Fig6() (*Fig6Result, error) {
	cfg := model.TinyLlamaScaled64()
	chips := []int{1, 2, 4, 8, 16, 32, 64}
	ar, err := evalpool.Eval(core.DefaultSystem(1), core.Workload{Model: cfg, Mode: model.Autoregressive}, chips)
	if err != nil {
		return nil, err
	}
	pr, err := evalpool.Eval(core.DefaultSystem(1), core.Workload{Model: cfg, Mode: model.Prompt}, chips)
	if err != nil {
		return nil, err
	}
	out := &Fig6Result{}
	for i, n := range chips {
		if n == 1 {
			continue
		}
		out.Rows = append(out.Rows, Fig6Row{
			Chips:                 n,
			AutoregressiveSpeedup: core.Speedup(ar[0], ar[i]),
			PromptSpeedup:         core.Speedup(pr[0], pr[i]),
		})
	}
	return out, nil
}

// row lookup helper for tests and the headline metrics.
func (f *Fig4Result) Row(chips int) (BreakdownRow, error) {
	for _, r := range f.Rows {
		if r.Chips == chips {
			return r, nil
		}
	}
	return BreakdownRow{}, fmt.Errorf("experiments: no row for %d chips", chips)
}

// Point lookup helper.
func (f *Fig5Result) Point(chips int, scaled bool) (Fig5Point, error) {
	for _, p := range f.Points {
		if p.Chips == chips && p.Scaled == scaled {
			return p, nil
		}
	}
	return Fig5Point{}, fmt.Errorf("experiments: no point for %d chips (scaled=%v)", chips, scaled)
}
