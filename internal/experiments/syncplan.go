package experiments

import (
	"mcudist/internal/collective"
	"mcudist/internal/core"
	"mcudist/internal/evalpool"
	"mcudist/internal/hw"
	"mcudist/internal/model"
)

// AblationSyncPlan pins the per-synchronization collective plan
// against the uniform baselines over a generation-shaped operating
// point: one prompt prefill plus one autoregressive decode step at
// the paper's sequence lengths, summed — the two regimes a deployed
// assistant alternates between, and the only workload where a single
// run-wide topology must compromise. Each row is one plan at one chip
// count, with cycles, chip-to-chip time, traffic, and energy summed
// over the two phases.
//
// The shape of the result, pinned in TestAblationSyncPlan: at the
// paper's 64-chip scaled point the prefill-on-ring/decode-on-tree
// hybrid strictly beats BOTH uniform baselines — uniform ring drags
// its 2(N-1) serialized setups through the small-payload decode,
// uniform tree funnels the large prefill payloads through its root —
// while at 8 chips the ring wins both phases and the hybrid's
// decode-on-tree binding costs it the win. Per-sync planning pays
// exactly where the phase regimes diverge.
func AblationSyncPlan() ([]AblationRow, error) {
	hybrid := collective.Plan{}.
		With(collective.PrefillMHSA, hw.TopoRing).
		With(collective.PrefillFFN, hw.TopoRing).
		With(collective.DecodeMHSA, hw.TopoTree).
		With(collective.DecodeFFN, hw.TopoTree)
	scenarios := []struct {
		cfg   model.Config
		chips int
	}{
		{model.TinyLlama42M(), 8},
		{model.TinyLlamaScaled64(), 64},
	}
	configs := []struct {
		label string
		topo  hw.Topology
		plan  collective.Plan
	}{
		{"uniform-tree", hw.TopoTree, collective.Plan{}},
		{"uniform-ring", hw.TopoRing, collective.Plan{}},
		{"prefill-ring+decode-tree", hw.TopoTree, hybrid},
	}

	// Two evalpool points per row: the prefill and the decode phase.
	var points []evalpool.Point
	for _, sc := range scenarios {
		for _, c := range configs {
			sys := core.DefaultSystem(sc.chips)
			sys.HW.Topology = c.topo
			sys.Options.SyncPlan = c.plan
			points = append(points,
				evalpool.Point{System: sys, Workload: core.Workload{Model: sc.cfg, Mode: model.Prompt}},
				evalpool.Point{System: sys, Workload: core.Workload{Model: sc.cfg, Mode: model.Autoregressive}})
		}
	}
	reports, err := evalpool.Map(points)
	if err != nil {
		return nil, err
	}

	rows := make([]AblationRow, 0, len(points)/2)
	for i := 0; i+1 < len(points); i += 2 {
		pre, dec := reports[i], reports[i+1]
		sc := scenarios[(i/2)/len(configs)]
		c := configs[(i/2)%len(configs)]
		rows = append(rows, AblationRow{
			Label:     c.label,
			Chips:     sc.chips,
			Cycles:    pre.Cycles + dec.Cycles,
			C2CCycles: pre.Breakdown.C2C + dec.Breakdown.C2C,
			C2CBytes:  pre.C2CBytes + dec.C2CBytes,
			EnergyMJ:  (pre.Energy.Total() + dec.Energy.Total()) * 1e3,
		})
	}
	return rows, nil
}
