package experiments

import (
	"mcudist/internal/core"
	"mcudist/internal/fleet"
	"mcudist/internal/model"
)

// FleetRow is one offered-load point of the fleet saturation study.
type FleetRow struct {
	// OfferedPerSec is the Poisson arrival rate; AchievedPerSec the
	// completed-request throughput over the makespan.
	OfferedPerSec  float64
	AchievedPerSec float64
	// Latency and serving metrics at this operating point.
	P50LatencySeconds      float64
	P99LatencySeconds      float64
	TokensPerSecond        float64
	EnergyPerRequestJoules float64
	MeanQueueDepth         float64
	MeanBatch              float64
	// Utilization is the mean chip-group utilization.
	Utilization float64
	// Saturated marks points where achieved throughput fell below 95%
	// of offered — the fleet can no longer keep up.
	Saturated bool
}

// FleetSaturationResult is the saturation study: the latency-vs-load
// curve and its knee.
type FleetSaturationResult struct {
	Rows []FleetRow
	// KneePerSec is the largest offered rate the fleet still served at
	// >= 95% of offered throughput (0 if every point saturated).
	KneePerSec float64
	// Plan is the per-group collective plan AutotuneSession picked
	// (the 64-chip prefill-ring/decode-tree hybrid) and PlanMargin its
	// win over the best uniform topology.
	Plan       string
	PlanMargin float64
}

// fleetSaturationRates is the offered-load ladder of the saturation
// study, in requests per second.
var fleetSaturationRates = []float64{50, 100, 200, 400, 800, 1600, 3200}

// FleetSaturation sweeps offered load on the paper's scaled 64-chip
// point served as a two-group fleet with continuous batching (the
// per-group plan picked by AutotuneSession) and identifies the
// saturation knee: the largest offered rate the fleet still serves at
// >= 95% of offered throughput. Below the knee latency is flat at the
// service floor; past it the queue grows without bound and p99
// latency is queueing delay, not service time.
func FleetSaturation() (*FleetSaturationResult, error) {
	res := &FleetSaturationResult{}
	for _, rate := range fleetSaturationRates {
		opts := fleet.Options{
			Trace: fleet.PoissonTrace(fleet.TraceOptions{
				Requests: 2000, RatePerSecond: rate, Seed: 11,
			}),
			System:   core.DefaultSystem(64),
			Model:    model.TinyLlamaScaled64(),
			Groups:   2,
			Autotune: true,
		}
		fr, err := fleet.Run(opts)
		if err != nil {
			return nil, err
		}
		m := fr.Metrics
		util := 0.0
		for _, u := range m.GroupUtilization {
			util += u
		}
		util /= float64(len(m.GroupUtilization))
		row := FleetRow{
			OfferedPerSec:          rate,
			AchievedPerSec:         m.RequestsPerSecond,
			P50LatencySeconds:      m.P50LatencySeconds,
			P99LatencySeconds:      m.P99LatencySeconds,
			TokensPerSecond:        m.TokensPerSecond,
			EnergyPerRequestJoules: m.EnergyPerRequestJoules,
			MeanQueueDepth:         m.MeanQueueDepth,
			MeanBatch:              m.MeanBatch,
			Utilization:            util,
			Saturated:              m.RequestsPerSecond < 0.95*rate,
		}
		res.Rows = append(res.Rows, row)
		if !row.Saturated {
			res.KneePerSec = rate
		}
		res.Plan = fr.Plan.String()
		res.PlanMargin = fr.AutotuneMargin
	}
	return res, nil
}

// FleetBatchRow is one batch-cap point of the continuous-batching
// ablation.
type FleetBatchRow struct {
	MaxBatch               int
	TokensPerSecond        float64
	P99LatencySeconds      float64
	EnergyPerRequestJoules float64
	MeanBatch              float64
	// Margin is this cap's tokens/sec over the MaxBatch=1 sequential
	// baseline.
	Margin float64
}

// FleetBatchingAblation saturates the 64-chip fleet at each decode
// micro-batch cap: MaxBatch=1 is the no-batching baseline (one
// session at a time), wider caps amortize weight reads, kernel setup,
// and collective synchronizations across sessions. Tokens/sec climbs
// with the cap; energy per request falls with it.
func FleetBatchingAblation() ([]FleetBatchRow, error) {
	trace := fleet.PoissonTrace(fleet.TraceOptions{
		Requests: 1500, RatePerSecond: 3000, Seed: 13,
		PromptLens: []int{16, 32}, MinDecode: 16, MaxDecode: 48,
	})
	var rows []FleetBatchRow
	base := 0.0
	for _, cap := range []int{1, 2, 4, 8} {
		fr, err := fleet.Run(fleet.Options{
			Trace:    trace,
			System:   core.DefaultSystem(64),
			Model:    model.TinyLlamaScaled64(),
			MaxBatch: cap,
		})
		if err != nil {
			return nil, err
		}
		m := fr.Metrics
		if cap == 1 {
			base = m.TokensPerSecond
		}
		rows = append(rows, FleetBatchRow{
			MaxBatch:               cap,
			TokensPerSecond:        m.TokensPerSecond,
			P99LatencySeconds:      m.P99LatencySeconds,
			EnergyPerRequestJoules: m.EnergyPerRequestJoules,
			MeanBatch:              m.MeanBatch,
			Margin:                 m.TokensPerSecond / base,
		})
	}
	return rows, nil
}
