package experiments

import (
	"mcudist/internal/core"
	"mcudist/internal/explore"
	"mcudist/internal/hw"
	"mcudist/internal/model"
)

// SessionRow is one operating point of the joint-session autotuning
// study: the winning prefill+decode plan for one (chip count, network
// profile) pair, its margin over the best uniform session, and the
// search's exact-simulation bill against the naive joint grid.
type SessionRow struct {
	Chips   int
	Network string
	// Plan is the winning joint plan in ParsePlan syntax; Cycles its
	// exact session cost (one prompt prefill + one decode step).
	Plan   string
	Cycles float64
	// BestUniform / UniformCycles is the best single-topology session,
	// and Margin = UniformCycles / Cycles.
	BestUniform   string
	UniformCycles float64
	Margin        float64
	// RankAccuracy is the predictor's pairwise concordance on the
	// verified candidates; ExactSims vs GridSims is the
	// predict-then-verify saving over exhaustive joint enumeration.
	RankAccuracy float64
	ExactSims    int
	GridSims     int
}

// SessionAutotune runs the joint prefill+decode autotuner at the
// paper's 8-chip TinyLlama and 64-chip scaled operating points, on the
// uniform MIPI network and on the clustered-4x10 board — one plan per
// network profile, the ROADMAP's session/network follow-on.
//
// The shape of the result, pinned in TestSessionAutotune: at 64 chips
// on uniform links the joint winner is the prefill-ring/decode-tree
// hybrid at a ~1.28x margin, found for >5x fewer exact simulations
// than the 512-simulation joint grid; at 8 chips the ring takes both
// phases and the winner is the uniform ring at margin 1 — the
// autotuner pays exactly where the phase regimes diverge, and the
// predictor prices both situations correctly.
func SessionAutotune() ([]SessionRow, error) {
	scenarios := []struct {
		cfg   model.Config
		chips int
	}{
		{model.TinyLlama42M(), 8},
		{model.TinyLlamaScaled64(), 64},
	}
	nets := []hw.Network{
		hw.UniformNetwork(hw.MIPI()),
		hw.ClusteredNetwork(hw.MIPI(), hw.MIPI().Slower(10), 4),
	}
	var rows []SessionRow
	for _, sc := range scenarios {
		results, err := explore.AutotuneSessionNetworks(
			core.DefaultSystem(sc.chips), sc.cfg, explore.SessionOptions{}, nets)
		if err != nil {
			return nil, err
		}
		for _, res := range results {
			rows = append(rows, SessionRow{
				Chips:         sc.chips,
				Network:       res.Network.String(),
				Plan:          res.Plan.String(),
				Cycles:        res.Cycles,
				BestUniform:   res.BestUniform.String(),
				UniformCycles: res.UniformCycles,
				Margin:        res.Margin,
				RankAccuracy:  res.RankAccuracy,
				ExactSims:     res.ExactSims,
				GridSims:      res.GridSims,
			})
		}
	}
	return rows, nil
}
