package experiments

import "testing"

// TestSessionAutotune pins the joint-session autotuning study's
// findings: per-sync planning pays exactly where the phase regimes
// diverge (the 64-chip hybrid), collapses to the best uniform shape
// where they don't (8 chips on both networks — including the
// clustered flip to fully-connected, the PR 3 BestTopology finding
// holding jointly across both phases), and the predict-then-verify
// search stays >= 5x under the naive joint grid everywhere.
func TestSessionAutotune(t *testing.T) {
	rows, err := SessionAutotune()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4 (2 chip counts x 2 networks)", len(rows))
	}
	find := func(chips int, network string) SessionRow {
		for _, r := range rows {
			if r.Chips == chips && r.Network == network {
				return r
			}
		}
		t.Fatalf("no row for %d chips on %s", chips, network)
		return SessionRow{}
	}

	u8 := find(8, "uniform")
	if u8.Plan != "prefill=ring,decode=ring" || u8.BestUniform != "ring" || u8.Margin != 1 {
		t.Errorf("8-chip uniform: %s (best uniform %s, margin %g), want the uniform ring at margin 1",
			u8.Plan, u8.BestUniform, u8.Margin)
	}

	c8 := find(8, "clustered-4x10")
	if c8.Plan != "prefill=fully-connected,decode=fully-connected" ||
		c8.BestUniform != "fully-connected" || c8.Margin != 1 {
		t.Errorf("8-chip clustered: %s (best uniform %s, margin %g), want fully-connected sweeping both phases at margin 1",
			c8.Plan, c8.BestUniform, c8.Margin)
	}

	u64 := find(64, "uniform")
	if u64.Plan != "prefill=ring,decode=tree" || u64.BestUniform != "ring" {
		t.Errorf("64-chip uniform: %s over best uniform %s, want prefill=ring,decode=tree over ring",
			u64.Plan, u64.BestUniform)
	}
	if u64.Margin < 1.25 {
		t.Errorf("64-chip uniform margin %g, want > 1.25", u64.Margin)
	}

	c64 := find(64, "clustered-4x10")
	if c64.Plan != "prefill=ring,decode=tree" {
		t.Errorf("64-chip clustered: %s, want the hybrid to survive the backhaul", c64.Plan)
	}
	if c64.Margin <= 1.02 || c64.Margin >= u64.Margin {
		t.Errorf("64-chip clustered margin %g, want a real but narrower win than uniform's %g",
			c64.Margin, u64.Margin)
	}

	for _, r := range rows {
		if r.Margin < 1 {
			t.Errorf("%d/%s: margin %g < 1", r.Chips, r.Network, r.Margin)
		}
		if r.RankAccuracy < 0.7 {
			t.Errorf("%d/%s: rank accuracy %g < 0.7", r.Chips, r.Network, r.RankAccuracy)
		}
		if r.GridSims != 512 {
			t.Errorf("%d/%s: joint grid %d sims, want 512", r.Chips, r.Network, r.GridSims)
		}
		if 5*r.ExactSims > r.GridSims {
			t.Errorf("%d/%s: %d exact sims over a %d-sim grid, want >= 5x fewer",
				r.Chips, r.Network, r.ExactSims, r.GridSims)
		}
		if r.Cycles <= 0 || r.UniformCycles < r.Cycles {
			t.Errorf("%d/%s: cycles %g / uniform %g inconsistent", r.Chips, r.Network, r.Cycles, r.UniformCycles)
		}
	}
}
