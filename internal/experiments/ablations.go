package experiments

import (
	"fmt"

	"mcudist/internal/core"
	"mcudist/internal/deploy"
	"mcudist/internal/evalpool"
	"mcudist/internal/hw"
	"mcudist/internal/model"
)

// AblationRow is one configuration of an ablation sweep.
type AblationRow struct {
	Label     string
	Chips     int
	Cycles    float64
	C2CCycles float64 // chip-to-chip share of the runtime breakdown
	C2CBytes  int64
	EnergyMJ  float64
}

// ablationPoint is one labeled configuration of an ablation.
type ablationPoint struct {
	label string
	sys   core.System
	wl    core.Workload
}

// runAblation fans the configurations out on the evalpool engine and
// assembles rows in input order.
func runAblation(pts []ablationPoint) ([]AblationRow, error) {
	points := make([]evalpool.Point, len(pts))
	for i, p := range pts {
		points[i] = evalpool.Point{System: p.sys, Workload: p.wl}
	}
	reports, err := evalpool.Map(points)
	if err != nil {
		return nil, err
	}
	rows := make([]AblationRow, len(pts))
	for i, r := range reports {
		rows[i] = AblationRow{
			Label: pts[i].label, Chips: pts[i].sys.Chips, Cycles: r.Cycles,
			C2CCycles: r.Breakdown.C2C, C2CBytes: r.C2CBytes,
			EnergyMJ: r.Energy.Total() * 1e3,
		}
	}
	return rows, nil
}

// AblationReduceTopology compares the paper's hierarchical groups-of-4
// reduction against a flat all-to-one reduce at scale — the design
// choice Fig. 1 motivates ("an all-to-one reduce operation lacks the
// required scalability"). The flat baseline is the explicit TopoStar
// topology (it used to require abusing GroupSize >= n, which built the
// same degenerate one-group tree).
func AblationReduceTopology() ([]AblationRow, error) {
	wl := core.Workload{Model: model.TinyLlamaScaled64(), Mode: model.Prompt}
	var pts []ablationPoint
	for _, n := range []int{16, 32, 64} {
		for _, flat := range []bool{false, true} {
			sys := core.DefaultSystem(n)
			label := "hierarchical-4"
			if flat {
				sys.HW.Topology = hw.TopoStar
				label = "flat-all-to-one"
			}
			pts = append(pts, ablationPoint{label: label, sys: sys, wl: wl})
		}
	}
	return runAblation(pts)
}

// AblationTopologyShapes is the full topology ablation: all four
// interconnect shapes at the paper's chip counts, in the prompt mode
// where collective payloads are largest, reporting latency, the
// chip-to-chip runtime share, link traffic, and energy. The shape of
// the result: the ring's payload/N chunks and sharded root work win
// the large-payload prompt collectives from 8 chips up, the star's
// serialized root accumulation collapses at scale, the fully-connected
// exchange buys the lowest hop depth with N(N-1)x the traffic (and the
// energy bill to match), and the paper's tree stays the latency winner
// in the small-payload autoregressive regime at 64 chips that its
// scalability study targets (see TestAblationTopologyShapes).
func AblationTopologyShapes() ([]AblationRow, error) {
	scenarios := []struct {
		cfg   model.Config
		mode  model.Mode
		chips int
	}{
		{model.TinyLlama42M(), model.Prompt, 8},
		{model.TinyLlamaScaled64(), model.Prompt, 16},
		{model.TinyLlamaScaled64(), model.Prompt, 64},
		{model.TinyLlamaScaled64(), model.Autoregressive, 64},
	}
	var pts []ablationPoint
	for _, sc := range scenarios {
		for _, topo := range hw.Topologies() {
			sys := core.DefaultSystem(sc.chips)
			sys.HW.Topology = topo
			pts = append(pts, ablationPoint{
				label: topo.String() + "-" + sc.mode.String(),
				sys:   sys,
				wl:    core.Workload{Model: sc.cfg, Mode: sc.mode},
			})
		}
	}
	return runAblation(pts)
}

// AblationNetworkBackhaul puts the tree-vs-ring decision under a
// heterogeneous link layer: chips grouped in clusters of clusterSize
// with intra-cluster MIPI links and an inter-cluster backhaul slowed
// by backhaulSlowdown, at the paper's 8/16/64-chip points (prompt,
// plus the 64-chip autoregressive operating point the paper's
// scalability study targets).
//
// The shape of the result, pinned in TestAblationNetworkBackhaul:
// the backhaul does NOT hand the prompt collectives back to the tree
// — every ring hop moves only payload/N, so even with one in every
// clusterSize hops 10x slower the ring's boundary chips serialize
// ~2·payload·slowdown/clusterSize worth of backhaul time, while the
// tree funnels whole payloads through its upper levels and pays
// ~2·depth·slowdown of them; the ring's prompt lead *widens* at 64
// chips (1.9x vs 1.5x uniform). The crossover stays where the
// payload regime puts it: in the small-payload autoregressive mode
// the ring's 2(N-1) serialized setups dominate and the tree wins at
// 64 chips under the uniform and the clustered network alike.
func AblationNetworkBackhaul(clusterSize int, backhaulSlowdown float64) ([]AblationRow, error) {
	if clusterSize < 1 {
		return nil, fmt.Errorf("experiments: cluster size %d must be at least 1", clusterSize)
	}
	if !(backhaulSlowdown >= 1) { // also rejects NaN
		return nil, fmt.Errorf("experiments: backhaul slowdown %g must be >= 1", backhaulSlowdown)
	}
	scenarios := []struct {
		cfg   model.Config
		mode  model.Mode
		chips int
	}{
		{model.TinyLlama42M(), model.Prompt, 8},
		{model.TinyLlamaScaled64(), model.Prompt, 16},
		{model.TinyLlamaScaled64(), model.Prompt, 64},
		{model.TinyLlamaScaled64(), model.Autoregressive, 64},
	}
	networks := []hw.Network{
		hw.UniformNetwork(hw.MIPI()),
		hw.ClusteredNetwork(hw.MIPI(), hw.MIPI().Slower(backhaulSlowdown), clusterSize),
	}
	var pts []ablationPoint
	for _, sc := range scenarios {
		for _, net := range networks {
			for _, topo := range []hw.Topology{hw.TopoTree, hw.TopoRing} {
				sys := core.DefaultSystem(sc.chips)
				sys.HW.Topology = topo
				sys.HW.Network = net
				pts = append(pts, ablationPoint{
					label: topo.String() + "-" + net.String() + "-" + sc.mode.String(),
					sys:   sys,
					wl:    core.Workload{Model: sc.cfg, Mode: sc.mode},
				})
			}
		}
	}
	return runAblation(pts)
}

// AblationGroupSize sweeps the reduction-tree arity at 64 chips.
func AblationGroupSize() ([]AblationRow, error) {
	wl := core.Workload{Model: model.TinyLlamaScaled64(), Mode: model.Prompt}
	var pts []ablationPoint
	for _, g := range []int{2, 4, 8, 16} {
		sys := core.DefaultSystem(64)
		sys.HW.GroupSize = g
		pts = append(pts, ablationPoint{label: fmt.Sprintf("group-%d", g), sys: sys, wl: wl})
	}
	return runAblation(pts)
}

// AblationReducePrecision compares the deployed int8 partial exchange
// against int16 (accuracy middle point, see cmd/verify) and exact
// int32 accumulator exchange (4× the link traffic).
func AblationReducePrecision() ([]AblationRow, error) {
	names := map[int]string{1: "int8", 2: "int16", 4: "int32"}
	var pts []ablationPoint
	for _, mode := range []model.Mode{model.Autoregressive, model.Prompt} {
		for _, bytes := range []int{1, 2, 4} {
			cfg := model.TinyLlama42M()
			cfg.ReduceBytes = bytes
			pts = append(pts, ablationPoint{
				label: mode.String() + "-" + names[bytes] + "-exchange",
				sys:   core.DefaultSystem(8),
				wl:    core.Workload{Model: cfg, Mode: mode},
			})
		}
	}
	return runAblation(pts)
}

// AblationPrefetch compares the paper's overlapped double-buffer
// accounting against charging the prefetch to runtime.
func AblationPrefetch() ([]AblationRow, error) {
	wl := core.Workload{Model: model.TinyLlama42M(), Mode: model.Autoregressive}
	var pts []ablationPoint
	for _, exposed := range []bool{false, true} {
		sys := core.DefaultSystem(8)
		sys.Options = deploy.Options{PrefetchExposed: exposed}
		label := "prefetch-overlapped"
		if exposed {
			label = "prefetch-exposed"
		}
		pts = append(pts, ablationPoint{label: label, sys: sys, wl: wl})
	}
	return runAblation(pts)
}

// AblationActivationSpill isolates the streamed-tier activation-spill
// model on MobileBERT: with the spill, the single-chip system pays the
// paper's "intermediate tensors in L3" penalty; without it, the
// 4-chip speedup loses super-linearity.
func AblationActivationSpill() ([]AblationRow, error) {
	wl := core.Workload{Model: model.MobileBERT512(), Mode: model.Prompt}
	var pts []ablationPoint
	for _, noSpill := range []bool{false, true} {
		label := "with-spill"
		if noSpill {
			label = "no-spill"
		}
		for _, n := range []int{1, 4} {
			sys := core.DefaultSystem(n)
			sys.Options = deploy.Options{NoActivationSpill: noSpill}
			pts = append(pts, ablationPoint{label: label, sys: sys, wl: wl})
		}
	}
	return runAblation(pts)
}

// AblationDegradedLink injects a single degraded link (quarter-rate,
// e.g. a PHY renegotiation) and measures the whole-system impact at 8
// chips, prompt mode. Degrading a leaf chip stretches only its branch;
// degrading the root chip throttles every collective.
func AblationDegradedLink() ([]AblationRow, error) {
	wl := core.Workload{Model: model.TinyLlama42M(), Mode: model.Prompt}
	configs := []struct {
		label  string
		chip   int
		factor float64
	}{
		{"healthy", 0, 0},
		{"leaf-chip7-quarter-rate", 7, 0.25},
		{"root-chip0-quarter-rate", 0, 0.25},
	}
	var pts []ablationPoint
	for _, c := range configs {
		sys := core.DefaultSystem(8)
		sys.Options = deploy.Options{DegradedLinkFactor: c.factor, DegradedLinkChip: c.chip}
		pts = append(pts, ablationPoint{label: c.label, sys: sys, wl: wl})
	}
	return runAblation(pts)
}

// AblationStraggler throttles one chip's cluster to half speed
// (thermal throttling / process variation). Under tensor parallelism
// every one of the 2L synchronizations waits for the straggler, so a
// single slow chip drags the whole system — the flip side of the
// scheme's tight coupling.
func AblationStraggler() ([]AblationRow, error) {
	wl := core.Workload{Model: model.TinyLlama42M(), Mode: model.Prompt}
	var pts []ablationPoint
	for _, f := range []float64{0, 0.75, 0.5, 0.25} {
		sys := core.DefaultSystem(8)
		label := "healthy"
		if f > 0 {
			sys.Options = deploy.Options{StragglerFactor: f, StragglerChip: 3}
			label = fmt.Sprintf("chip3-at-%.0f%%-speed", f*100)
		}
		pts = append(pts, ablationPoint{label: label, sys: sys, wl: wl})
	}
	return runAblation(pts)
}

// AblationLinkBandwidth sweeps the MIPI link bandwidth at 8 chips,
// prompt mode, where the collective payloads are largest.
func AblationLinkBandwidth() ([]AblationRow, error) {
	wl := core.Workload{Model: model.TinyLlama42M(), Mode: model.Prompt}
	var pts []ablationPoint
	for _, scale := range []float64{0.5, 1, 2, 4} {
		sys := core.DefaultSystem(8)
		sys.HW.Network.Local.BandwidthBytesPerSec = hw.MIPI().BandwidthBytesPerSec * scale
		pts = append(pts, ablationPoint{label: fmt.Sprintf("link-x%g", scale), sys: sys, wl: wl})
	}
	return runAblation(pts)
}
