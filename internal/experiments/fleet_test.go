package experiments

import "testing"

// The saturation study's knee is pinned: the two-group 64-chip fleet
// keeps up with offered load through 200 req/s and saturates past it,
// plateauing near its ~206 req/s service capacity (~3.7k decoded
// tokens/sec) with the autotuned prefill-ring/decode-tree plan.
func TestFleetSaturationKnee(t *testing.T) {
	res, err := FleetSaturation()
	if err != nil {
		t.Fatal(err)
	}
	if res.KneePerSec != 200 {
		t.Errorf("saturation knee at %g req/s, want 200", res.KneePerSec)
	}
	if res.Plan != "prefill=ring,decode=tree" {
		t.Errorf("fleet adopted plan %q, want the 64-chip prefill-ring/decode-tree hybrid", res.Plan)
	}
	if res.PlanMargin < 1.2 {
		t.Errorf("plan margin %.3f below the pinned 1.28x win", res.PlanMargin)
	}
	var prevP99 float64
	for _, row := range res.Rows {
		wantSat := row.OfferedPerSec > res.KneePerSec
		if row.Saturated != wantSat {
			t.Errorf("offered %g: saturated=%v, want %v", row.OfferedPerSec, row.Saturated, wantSat)
		}
		if row.P99LatencySeconds < prevP99 {
			t.Errorf("offered %g: p99 %.5fs fell below the previous point's %.5fs",
				row.OfferedPerSec, row.P99LatencySeconds, prevP99)
		}
		prevP99 = row.P99LatencySeconds
	}
	last := res.Rows[len(res.Rows)-1]
	if last.AchievedPerSec < 150 || last.AchievedPerSec > 250 {
		t.Errorf("saturated throughput %.1f req/s outside the ~206 req/s capacity plateau",
			last.AchievedPerSec)
	}
	if last.MeanBatch < 7 {
		t.Errorf("saturated mean batch %.2f did not approach the cap of 8", last.MeanBatch)
	}
}

// The batching ablation is pinned: tokens/sec climbs monotonically
// with the micro-batch cap — at least 1.5x over the sequential
// baseline at cap 8 — while energy per request falls monotonically
// (weight reads, kernel setup, and collectives amortize).
func TestFleetBatchingAblation(t *testing.T) {
	rows, err := FleetBatchingAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || rows[0].MaxBatch != 1 {
		t.Fatalf("unexpected ablation shape: %+v", rows)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].TokensPerSecond <= rows[i-1].TokensPerSecond {
			t.Errorf("cap %d: tokens/sec %.1f did not improve on cap %d's %.1f",
				rows[i].MaxBatch, rows[i].TokensPerSecond, rows[i-1].MaxBatch, rows[i-1].TokensPerSecond)
		}
		if rows[i].EnergyPerRequestJoules >= rows[i-1].EnergyPerRequestJoules {
			t.Errorf("cap %d: J/req %.4f did not fall below cap %d's %.4f",
				rows[i].MaxBatch, rows[i].EnergyPerRequestJoules, rows[i-1].MaxBatch, rows[i-1].EnergyPerRequestJoules)
		}
	}
	final := rows[len(rows)-1]
	if final.Margin < 1.5 {
		t.Errorf("cap-8 batching margin %.3fx below the 1.5x floor", final.Margin)
	}
}
