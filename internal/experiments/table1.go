package experiments

import (
	"mcudist/internal/core"
	"mcudist/internal/evalpool"
	"mcudist/internal/model"
	"mcudist/internal/partition"
)

// Table1Row compares one partitioning strategy, combining the paper's
// qualitative Table I attributes with measured numbers on the same
// workload (TinyLlama, 8 chips).
type Table1Row struct {
	Work              string
	Strategy          partition.Strategy
	Pipelining        bool
	WeightDuplication bool
	// Measured on TinyLlama with 8 chips:
	ARCycles, PromptCycles   float64
	ARSpeedup, PromptSpeedup float64
	EnergyARMJ               float64
}

// Table1 reproduces the comparison of partitioning approaches. The
// datacenter rows of the paper's table have no MCU equivalent; the
// three edge-feasible schemes are compared quantitatively.
func Table1() ([]Table1Row, error) {
	cfg := model.TinyLlama42M()
	arWL := core.Workload{Model: cfg, Mode: model.Autoregressive}
	prWL := core.Workload{Model: cfg, Mode: model.Prompt}

	rows := []Table1Row{
		{Work: "When the Edge Meets Transformers [21]", Strategy: partition.Replicated,
			Pipelining: false, WeightDuplication: true},
		{Work: "PipeEdge/Hermes [31,22]", Strategy: partition.Pipeline,
			Pipelining: true, WeightDuplication: false},
		{Work: "Ours (tensor-parallel)", Strategy: partition.TensorParallel,
			Pipelining: false, WeightDuplication: false},
	}

	// Two single-chip baselines plus an (AR, prompt) pair per strategy,
	// all evaluated in one fan-out.
	points := []evalpool.Point{
		{System: core.DefaultSystem(1), Workload: arWL},
		{System: core.DefaultSystem(1), Workload: prWL},
	}
	for _, row := range rows {
		sys := core.DefaultSystem(8)
		sys.Strategy = row.Strategy
		points = append(points,
			evalpool.Point{System: sys, Workload: arWL},
			evalpool.Point{System: sys, Workload: prWL})
	}
	reports, err := evalpool.Map(points)
	if err != nil {
		return nil, err
	}
	baseAR, basePR := reports[0], reports[1]
	for i := range rows {
		ar, pr := reports[2+2*i], reports[3+2*i]
		rows[i].ARCycles = ar.Cycles
		rows[i].PromptCycles = pr.Cycles
		rows[i].ARSpeedup = core.Speedup(baseAR, ar)
		rows[i].PromptSpeedup = core.Speedup(basePR, pr)
		rows[i].EnergyARMJ = ar.Energy.Total() * 1e3
	}
	return rows, nil
}
