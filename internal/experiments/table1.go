package experiments

import (
	"mcudist/internal/core"
	"mcudist/internal/model"
	"mcudist/internal/partition"
)

// Table1Row compares one partitioning strategy, combining the paper's
// qualitative Table I attributes with measured numbers on the same
// workload (TinyLlama, 8 chips).
type Table1Row struct {
	Work              string
	Strategy          partition.Strategy
	Pipelining        bool
	WeightDuplication bool
	// Measured on TinyLlama with 8 chips:
	ARCycles, PromptCycles   float64
	ARSpeedup, PromptSpeedup float64
	EnergyARMJ               float64
}

// Table1 reproduces the comparison of partitioning approaches. The
// datacenter rows of the paper's table have no MCU equivalent; the
// three edge-feasible schemes are compared quantitatively.
func Table1() ([]Table1Row, error) {
	cfg := model.TinyLlama42M()
	arWL := core.Workload{Model: cfg, Mode: model.Autoregressive}
	prWL := core.Workload{Model: cfg, Mode: model.Prompt}

	baseAR, err := core.Run(core.DefaultSystem(1), arWL)
	if err != nil {
		return nil, err
	}
	basePR, err := core.Run(core.DefaultSystem(1), prWL)
	if err != nil {
		return nil, err
	}

	rows := []Table1Row{
		{Work: "When the Edge Meets Transformers [21]", Strategy: partition.Replicated,
			Pipelining: false, WeightDuplication: true},
		{Work: "PipeEdge/Hermes [31,22]", Strategy: partition.Pipeline,
			Pipelining: true, WeightDuplication: false},
		{Work: "Ours (tensor-parallel)", Strategy: partition.TensorParallel,
			Pipelining: false, WeightDuplication: false},
	}
	for i := range rows {
		sys := core.DefaultSystem(8)
		sys.Strategy = rows[i].Strategy
		ar, err := core.Run(sys, arWL)
		if err != nil {
			return nil, err
		}
		pr, err := core.Run(sys, prWL)
		if err != nil {
			return nil, err
		}
		rows[i].ARCycles = ar.Cycles
		rows[i].PromptCycles = pr.Cycles
		rows[i].ARSpeedup = core.Speedup(baseAR, ar)
		rows[i].PromptSpeedup = core.Speedup(basePR, pr)
		rows[i].EnergyARMJ = ar.Energy.Total() * 1e3
	}
	return rows, nil
}
