package experiments

import (
	"testing"

	"mcudist/internal/deploy"
)

// TestMemTierStudy pins the memory-hierarchy cost-tier study's
// findings at the streamed 2-chip TinyLlama point, per mode: every
// row runs in the streamed tier; the DRAM hierarchy's double-buffered
// tile prefetch beats the flat model's synchronous-bytes pricing;
// prefetch depth beyond 1 changes nothing (uniform tile streams
// saturate at double buffering in either regime — a closed-form
// property of the makespan recurrence, not a tolerance); bank
// contention strictly bites in prompt mode where tiles carry real
// compute and stays within the fetch-bound shadow in decode; and
// halving DRAM bandwidth always costs runtime.
func TestMemTierStudy(t *testing.T) {
	rows, err := MemTierStudy()
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]map[string]MemTierRow{"autoregressive": {}, "prompt": {}}
	for _, r := range rows {
		if r.Tier != deploy.TierStreamed {
			t.Errorf("%s/%s: tier %v, want streamed", r.Mode, r.Label, r.Tier)
		}
		if r.L3Bytes <= 0 || r.L3Cycles <= 0 {
			t.Errorf("%s/%s: no off-chip traffic (%d bytes, %.0f cycles)", r.Mode, r.Label, r.L3Bytes, r.L3Cycles)
		}
		byLabel[r.Mode][r.Label] = r
	}
	for mode, rowsOf := range byLabel {
		flat, dram := rowsOf["flat"], rowsOf["dram-lpddr5"]
		if dram.Cycles >= flat.Cycles {
			t.Errorf("%s: hierarchy overlap should beat flat synchronous pricing: dram %.0f vs flat %.0f",
				mode, dram.Cycles, flat.Cycles)
		}
		if d1, d4 := rowsOf["dram-depth1"], rowsOf["dram-depth4"]; d1.Cycles != dram.Cycles || d4.Cycles != dram.Cycles {
			t.Errorf("%s: uniform tile streams must saturate at double buffering: depth1 %.0f, depth2 %.0f, depth4 %.0f",
				mode, d1.Cycles, dram.Cycles, d4.Cycles)
		}
		if b2, b16 := rowsOf["dram-banks2"], rowsOf["dram-banks16"]; !(b16.Cycles <= dram.Cycles && dram.Cycles <= b2.Cycles) {
			t.Errorf("%s: bank contention must monotonically hurt: banks2 %.0f, banks8 %.0f, banks16 %.0f",
				mode, b2.Cycles, dram.Cycles, b16.Cycles)
		}
		if half := rowsOf["dram-halfbw"]; half.Cycles <= dram.Cycles {
			t.Errorf("%s: half DRAM bandwidth cannot be free: %.0f vs %.0f", mode, half.Cycles, dram.Cycles)
		}
	}
	// The contention knob's bite is regime-dependent: strict in prompt
	// mode (compute-heavy tiles contend for banks), shadowed by the
	// DRAM fetch chain in decode.
	pr := byLabel["prompt"]
	if !(pr["dram-banks2"].Cycles > pr["dram-lpddr5"].Cycles && pr["dram-lpddr5"].Cycles > pr["dram-banks16"].Cycles) {
		t.Errorf("prompt-mode bank contention must bite strictly: banks2 %.0f, banks8 %.0f, banks16 %.0f",
			pr["dram-banks2"].Cycles, pr["dram-lpddr5"].Cycles, pr["dram-banks16"].Cycles)
	}
	ar := byLabel["autoregressive"]
	t.Logf("decode flat %.0f vs dram %.0f; prompt flat %.0f vs dram %.0f (banks2 %.0f, banks16 %.0f)",
		ar["flat"].Cycles, ar["dram-lpddr5"].Cycles, pr["flat"].Cycles, pr["dram-lpddr5"].Cycles,
		pr["dram-banks2"].Cycles, pr["dram-banks16"].Cycles)
}

// TestMemTilingAutotune pins the tiling study: on the
// bigger-than-SRAM EdgeLlama point the layer families split (the
// ISSUE's ablation), the split never loses to the best uniform
// tiling, and the search's exact-simulation bill stays at least 5x
// under the grid on every row.
func TestMemTilingAutotune(t *testing.T) {
	rows, err := MemTilingAutotune()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Margin < 1 {
			t.Errorf("%s: winner lost to uniform (margin %.4f)", r.Model, r.Margin)
		}
		if r.GridSims < 5*r.ExactSims {
			t.Errorf("%s: %d exact sims for a %d-sim grid, want >= 5x fewer", r.Model, r.ExactSims, r.GridSims)
		}
	}
	edge := rows[1]
	if edge.Model != "edgellama-1b" {
		t.Fatalf("second row is %s, want edgellama-1b", edge.Model)
	}
	if edge.Attn == edge.FFN {
		t.Errorf("EdgeLlama families picked the same tiling %s", edge.Attn)
	}
	if edge.Attn != "32x352" || edge.FFN != "32x512" {
		t.Errorf("EdgeLlama winner (%s, %s), want pinned (32x352, 32x512)", edge.Attn, edge.FFN)
	}
	if edge.Margin <= 1 {
		t.Errorf("EdgeLlama per-family margin %.4f, want strictly > 1", edge.Margin)
	}
	for _, r := range rows {
		t.Logf("%s@%d: attn %s ffn %s (uniform %s) margin %.4f energy %.4f rank %.2f sims %d/%d",
			r.Model, r.Chips, r.Attn, r.FFN, r.BestUniform, r.Margin, r.EnergyMargin,
			r.RankAccuracy, r.ExactSims, r.GridSims)
	}
}
