package experiments

import (
	"mcudist/internal/core"
	"mcudist/internal/explore"
	"mcudist/internal/model"
	"mcudist/internal/resilience"
)

// ResilienceRow is one fault scenario of the resilience-margin study:
// a pristine operating point is autotuned, a fault degrades the board,
// and the stale plan races the re-planned one on the degraded system.
type ResilienceRow struct {
	Chips  int
	Faults string
	// DegradedChips is the board size after the fault (smaller than
	// Chips when a chip drops).
	DegradedChips int
	// StalePlan is the pristine winner the static fleet keeps serving;
	// StaticCycles its exact session cost on the degraded board (0 and
	// StaticErr set when it no longer validates there).
	StalePlan    string
	StaticCycles float64
	StaticErr    string
	// AdoptedPlan is what a re-planning fleet serves (the better of
	// stale and re-tuned on exact cycles); ReplanPays reports whether
	// re-tuning actually changed the plan.
	AdoptedPlan   string
	AdoptedCycles float64
	ReplanPays    bool
	// MarginCycles is the resilience margin — the latency factor a
	// static fleet pays for not re-planning (>= 1; +Inf when the stale
	// plan is infeasible on the degraded wiring). MarginJoules is the
	// same ratio in energy.
	MarginCycles float64
	MarginJoules float64
	// ExactSims is the evalpool memory-miss bill of the degraded-board
	// comparison (static pricing plus the re-tune).
	ExactSims int
}

// ResilienceMargin measures the re-planning margin at the paper's two
// pinned operating points — 8-chip TinyLlama and the 64-chip scaled
// model, both on uniform MIPI wiring — under the three fault families
// the resilience tier injects: a dropped chip, a 10x-degraded link,
// and a 2x compute straggler.
//
// The shape of the result, pinned in TestResilienceMargin: at 64
// chips the pristine winner is the prefill-ring/decode-tree hybrid,
// and every fault leaves the re-planned session no worse than serving
// the stale hybrid on the degraded board — the margin is the price of
// not re-planning, >= 1 by construction and measured here.
func ResilienceMargin() ([]ResilienceRow, error) {
	scenarios := []struct {
		cfg   model.Config
		chips int
	}{
		{model.TinyLlama42M(), 8},
		{model.TinyLlamaScaled64(), 64},
	}
	faultSets := [][]resilience.Fault{
		{resilience.DropChip(3)},
		{resilience.SlowEdge(0, 1, 10)},
		{resilience.StraggleChip(3, 2)},
	}
	var rows []ResilienceRow
	for _, sc := range scenarios {
		for _, faults := range faultSets {
			study, err := resilience.ReplanStudy(
				core.DefaultSystem(sc.chips), sc.cfg, faults, explore.SessionOptions{})
			if err != nil {
				return nil, err
			}
			r := study.Replan
			row := ResilienceRow{
				Chips:         sc.chips,
				Faults:        resilience.FaultsString(faults),
				DegradedChips: study.DegradedChips,
				StalePlan:     study.Pristine.Plan.String(),
				StaticErr:     r.StaticErr,
				AdoptedPlan:   r.AdoptedPlan.String(),
				AdoptedCycles: r.AdoptedCycles,
				ReplanPays:    r.ReplanPays,
				MarginCycles:  r.MarginCycles,
				MarginJoules:  r.MarginJoules,
				ExactSims:     r.ExactSims,
			}
			if r.Static != nil {
				row.StaticCycles = r.Static.Cycles
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}
