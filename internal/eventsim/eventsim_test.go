package eventsim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	eng := NewEngine()
	var order []Time
	for _, at := range []Time{5, 1, 3, 2, 4} {
		at := at
		eng.At(at, func() { order = append(order, at) })
	}
	end := eng.Run()
	if end != 5 {
		t.Fatalf("end time = %v, want 5", end)
	}
	if !sort.Float64sAreSorted(order) {
		t.Fatalf("events out of order: %v", order)
	}
	if len(order) != 5 {
		t.Fatalf("ran %d events, want 5", len(order))
	}
}

func TestSimultaneousEventsAreFIFO(t *testing.T) {
	eng := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		eng.At(7, func() { order = append(order, i) })
	}
	eng.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated at %d: %v", i, order)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	eng := NewEngine()
	var hit Time = -1
	eng.At(10, func() {
		eng.After(5, func() { hit = eng.Now() })
	})
	eng.Run()
	if hit != 15 {
		t.Fatalf("After fired at %v, want 15", hit)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	eng := NewEngine()
	eng.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		eng.At(5, func() {})
	})
	eng.Run()
}

func TestNegativeDelayPanics(t *testing.T) {
	eng := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	eng.After(-1, func() {})
}

func TestRunUntilLeavesLaterEvents(t *testing.T) {
	eng := NewEngine()
	var ran []Time
	for _, at := range []Time{1, 2, 3, 10, 20} {
		at := at
		eng.At(at, func() { ran = append(ran, at) })
	}
	eng.RunUntil(5)
	if len(ran) != 3 {
		t.Fatalf("RunUntil(5) ran %d events, want 3", len(ran))
	}
	if eng.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", eng.Pending())
	}
	eng.Run()
	if len(ran) != 5 {
		t.Fatalf("Run after RunUntil ran %d total, want 5", len(ran))
	}
}

func TestResourceSerializesUsers(t *testing.T) {
	eng := NewEngine()
	r := NewResource(eng, "dma")
	var spans [][2]Time
	for i := 0; i < 3; i++ {
		r.Use(10, func(s, e Time) { spans = append(spans, [2]Time{s, e}) })
	}
	eng.Run()
	want := [][2]Time{{0, 10}, {10, 20}, {20, 30}}
	for i, sp := range spans {
		if sp != want[i] {
			t.Fatalf("span %d = %v, want %v", i, sp, want[i])
		}
	}
	if r.BusyTime() != 30 {
		t.Fatalf("busy = %v, want 30", r.BusyTime())
	}
	if r.Uses() != 3 {
		t.Fatalf("uses = %d, want 3", r.Uses())
	}
}

func TestResourceUseAfterHonorsReadyTime(t *testing.T) {
	eng := NewEngine()
	r := NewResource(eng, "link")
	var first, second [2]Time
	r.UseAfter(100, 10, func(s, e Time) { first = [2]Time{s, e} })
	// Queued behind the first, even though ready earlier.
	r.UseAfter(0, 10, func(s, e Time) { second = [2]Time{s, e} })
	eng.Run()
	if first != [2]Time{100, 110} {
		t.Fatalf("first = %v, want [100 110]", first)
	}
	if second != [2]Time{110, 120} {
		t.Fatalf("second = %v, want [110 120]", second)
	}
}

func TestResourceInterleavedWithEvents(t *testing.T) {
	eng := NewEngine()
	r := NewResource(eng, "cluster")
	var end Time
	eng.At(50, func() {
		r.Use(25, func(_, e Time) { end = e })
	})
	eng.Run()
	if end != 75 {
		t.Fatalf("usage scheduled at t=50 ended at %v, want 75", end)
	}
}

func TestBarrierReleasesAtLatestArrival(t *testing.T) {
	eng := NewEngine()
	var released Time = -1
	b := NewBarrier(eng, 3, func(at Time) { released = at })
	b.Arrive(5)
	b.Arrive(42)
	b.Arrive(17)
	eng.Run()
	if released != 42 {
		t.Fatalf("released at %v, want 42", released)
	}
}

func TestBarrierSingleParty(t *testing.T) {
	eng := NewEngine()
	var released Time = -1
	b := NewBarrier(eng, 1, func(at Time) { released = at })
	b.Arrive(9)
	eng.Run()
	if released != 9 {
		t.Fatalf("released at %v, want 9", released)
	}
}

func TestBarrierExtraArrivalPanics(t *testing.T) {
	eng := NewEngine()
	b := NewBarrier(eng, 1, func(Time) {})
	b.Arrive(1)
	defer func() {
		if recover() == nil {
			t.Error("extra arrival did not panic")
		}
	}()
	b.Arrive(2)
}

// Property: for any random set of event times, execution order is the
// sorted order of those times.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) > 200 {
			raw = raw[:200]
		}
		eng := NewEngine()
		var got []Time
		times := make([]Time, len(raw))
		for i, v := range raw {
			at := Time(v)
			times[i] = at
			eng.At(at, func() { got = append(got, at) })
		}
		eng.Run()
		sort.Float64s(times)
		if len(got) != len(times) {
			return false
		}
		for i := range got {
			if got[i] != times[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: a resource's total busy time equals the sum of requested
// durations, and usage spans never overlap.
func TestPropertyResourceNoOverlap(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 100 {
			raw = raw[:100]
		}
		eng := NewEngine()
		r := NewResource(eng, "x")
		var spans [][2]Time
		var total Time
		for _, v := range raw {
			d := Time(v)
			total += d
			r.Use(d, func(s, e Time) { spans = append(spans, [2]Time{s, e}) })
		}
		eng.Run()
		if r.BusyTime() != total {
			return false
		}
		for i := 1; i < len(spans); i++ {
			if spans[i][0] < spans[i-1][1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestProcessedCounter(t *testing.T) {
	eng := NewEngine()
	const n = 37
	for i := 0; i < n; i++ {
		eng.At(Time(i), func() {})
	}
	eng.Run()
	if eng.Processed() != n {
		t.Fatalf("processed = %d, want %d", eng.Processed(), n)
	}
}

func BenchmarkEngineThroughput(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	eng := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng.At(eng.Now()+Time(rng.Intn(64)), func() {})
		if eng.Pending() > 1024 {
			eng.RunUntil(eng.Now() + 32)
		}
	}
	eng.Run()
}
