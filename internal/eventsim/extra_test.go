package eventsim

import (
	"math"
	"testing"
)

func TestNonFiniteTimePanics(t *testing.T) {
	eng := NewEngine()
	for _, bad := range []float64{math.NaN(), math.Inf(1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("time %v accepted", bad)
				}
			}()
			eng.At(bad, func() {})
		}()
	}
}

func TestRunUntilExactBoundary(t *testing.T) {
	eng := NewEngine()
	hits := 0
	eng.At(10, func() { hits++ })
	eng.At(10.0000001, func() { hits++ })
	eng.RunUntil(10)
	if hits != 1 {
		t.Fatalf("hits = %d, want 1 (boundary inclusive, later exclusive)", hits)
	}
}

func TestRunUntilAdvancesClockToDeadline(t *testing.T) {
	eng := NewEngine()
	eng.At(100, func() {})
	eng.RunUntil(50)
	if eng.Now() != 50 {
		t.Fatalf("clock at %g, want 50", eng.Now())
	}
}

func TestRunUntilEmptyQueueKeepsClock(t *testing.T) {
	eng := NewEngine()
	eng.At(5, func() {})
	eng.Run()
	eng.RunUntil(100)
	// No pending events: the clock must not jump forward.
	if eng.Now() != 5 {
		t.Fatalf("clock at %g, want 5", eng.Now())
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	eng := NewEngine()
	var order []string
	eng.At(1, func() {
		order = append(order, "a")
		eng.At(2, func() { order = append(order, "c") })
		eng.After(0.5, func() { order = append(order, "b") })
	})
	eng.Run()
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("order = %v", order)
	}
}

func TestNegativeUsePanics(t *testing.T) {
	eng := NewEngine()
	r := NewResource(eng, "x")
	for _, f := range []func(){
		func() { r.Use(-1, nil) },
		func() { r.UseAfter(0, -1, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("negative duration accepted")
				}
			}()
			f()
		}()
	}
}

func TestZeroDurationUse(t *testing.T) {
	eng := NewEngine()
	r := NewResource(eng, "x")
	end := r.Use(0, nil)
	if end != 0 {
		t.Fatalf("zero use ended at %g", end)
	}
	if r.Uses() != 1 {
		t.Fatal("zero use not counted")
	}
}

func TestBarrierZeroPartiesPanics(t *testing.T) {
	eng := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("zero-party barrier accepted")
		}
	}()
	NewBarrier(eng, 0, func(Time) {})
}

func TestResourceName(t *testing.T) {
	eng := NewEngine()
	r := NewResource(eng, "dma0")
	if r.Name() != "dma0" {
		t.Fatalf("name = %q", r.Name())
	}
}

func TestFreeAtTracksQueue(t *testing.T) {
	eng := NewEngine()
	r := NewResource(eng, "x")
	r.Use(10, nil)
	r.Use(5, nil)
	if r.FreeAt() != 15 {
		t.Fatalf("freeAt = %g, want 15", r.FreeAt())
	}
}
