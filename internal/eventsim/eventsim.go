// Package eventsim implements a small discrete-event simulation kernel.
// It stands in for GVSoC, the event-driven platform simulator the paper
// uses: simulated entities schedule events on a shared virtual clock,
// and contended resources (DMA engines, serial links) serialize their
// users in FIFO order.
//
// Time is measured in cluster cycles as a float64 so that fractional
// bandwidth quotients (e.g. 0.5 bytes/cycle) accumulate exactly.
package eventsim

import (
	"fmt"
	"math"
)

// Time is a point on the simulated clock, in cycles.
type Time = float64

// Event is a callback scheduled to run at a simulated time.
type event struct {
	at   Time
	seq  uint64 // tie-break: FIFO among simultaneous events
	call func()
}

// eventQueue is a binary min-heap of events stored by value: pushing
// an event moves the struct into the backing slice instead of
// allocating it on the heap and boxing a pointer through the
// container/heap interface. The fleet simulator schedules millions of
// events per run, so the two allocations per event (one for the
// struct, one for the interface conversion) were the engine's whole
// allocation profile beyond the callback closures themselves.
type eventQueue []event

func (q eventQueue) less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q *eventQueue) push(ev event) {
	*q = append(*q, ev)
	h := *q
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (q *eventQueue) pop() event {
	h := *q
	n := len(h) - 1
	top := h[0]
	h[0] = h[n]
	h[n] = event{} // release the callback reference
	h = h[:n]
	*q = h
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		if right := left + 1; right < n && h.less(right, left) {
			least = right
		}
		if !h.less(least, i) {
			break
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
	return top
}

// Engine owns the event queue and the simulated clock.
type Engine struct {
	now    Time
	queue  eventQueue
	seq    uint64
	events uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Reset returns the engine to its initial state — clock at zero, no
// queued events, counters cleared — keeping the queue's backing array
// so a recycled engine schedules without reallocating. Arena reuse
// (perfsim's pooled simulations) resets one engine per run instead of
// allocating one.
func (e *Engine) Reset() {
	clear(e.queue) // release callback references
	e.queue = e.queue[:0]
	e.now = 0
	e.seq = 0
	e.events = 0
}

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.events }

// At schedules fn to run at absolute time t. Scheduling in the past
// panics: it indicates a causality bug in the model.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("eventsim: scheduling at %v before now %v", t, e.now))
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("eventsim: non-finite event time %v", t))
	}
	e.seq++
	e.queue.push(event{at: t, seq: e.seq, call: fn})
}

// After schedules fn to run delay cycles from now.
func (e *Engine) After(delay Time, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("eventsim: negative delay %v", delay))
	}
	e.At(e.now+delay, fn)
}

// Run executes events until the queue is empty and returns the final
// simulated time.
func (e *Engine) Run() Time {
	for len(e.queue) > 0 {
		ev := e.queue.pop()
		e.now = ev.at
		e.events++
		ev.call()
	}
	return e.now
}

// RunUntil executes events with timestamps <= deadline, leaving later
// events queued, and advances the clock to min(deadline, last event).
func (e *Engine) RunUntil(deadline Time) Time {
	for len(e.queue) > 0 && e.queue[0].at <= deadline {
		ev := e.queue.pop()
		e.now = ev.at
		e.events++
		ev.call()
	}
	if e.now < deadline && len(e.queue) > 0 {
		e.now = deadline
	}
	return e.now
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// Resource is a FIFO-served exclusive device (a DMA engine, a link
// endpoint, a compute cluster). Acquire queues a usage of a given
// duration; done fires when the usage completes. Busy time is
// accumulated for utilization accounting.
type Resource struct {
	eng       *Engine
	name      string
	freeAt    Time
	busy      Time
	uses      uint64
	lastStart Time
}

// NewResource creates a resource bound to an engine.
func NewResource(eng *Engine, name string) *Resource {
	return &Resource{eng: eng, name: name}
}

// Init (re)binds the resource to an engine with fresh state, in place.
// It is the arena-reuse counterpart of NewResource: a pooled simulation
// keeps a dense slice of Resource values and re-initializes them per
// run instead of allocating each behind a pointer.
func (r *Resource) Init(eng *Engine, name string) {
	*r = Resource{eng: eng, name: name}
}

// Name returns the resource's diagnostic name.
func (r *Resource) Name() string { return r.name }

// Use occupies the resource for duration cycles starting no earlier
// than now, queuing FIFO behind earlier users. It returns the
// completion time and invokes done (if non-nil) at that time.
func (r *Resource) Use(duration Time, done func(start, end Time)) Time {
	if duration < 0 {
		panic(fmt.Sprintf("eventsim: negative use duration %v on %s", duration, r.name))
	}
	start := r.freeAt
	if now := r.eng.Now(); start < now {
		start = now
	}
	end := start + duration
	r.freeAt = end
	r.busy += duration
	r.uses++
	r.lastStart = start
	if done != nil {
		r.eng.At(end, func() { done(start, end) })
	}
	return end
}

// UseAfter is like Use but the usage cannot start before ready.
func (r *Resource) UseAfter(ready Time, duration Time, done func(start, end Time)) Time {
	if duration < 0 {
		panic(fmt.Sprintf("eventsim: negative use duration %v on %s", duration, r.name))
	}
	start := r.freeAt
	if start < ready {
		start = ready
	}
	if now := r.eng.Now(); start < now {
		start = now
	}
	end := start + duration
	r.freeAt = end
	r.busy += duration
	r.uses++
	r.lastStart = start
	if done != nil {
		r.eng.At(end, func() { done(start, end) })
	}
	return end
}

// FreeAt returns the earliest time a new usage could start.
func (r *Resource) FreeAt() Time { return r.freeAt }

// BusyTime returns the cumulative occupied cycles.
func (r *Resource) BusyTime() Time { return r.busy }

// Uses returns the number of completed or queued usages.
func (r *Resource) Uses() uint64 { return r.uses }

// Barrier synchronizes n parties: each party calls Arrive with its own
// ready time; when all have arrived, the release callback fires at the
// maximum arrival time.
type Barrier struct {
	eng     *Engine
	need    int
	arrived int
	latest  Time
	release func(at Time)
	done    bool
}

// NewBarrier creates a barrier for n parties. release fires exactly
// once, at the latest arrival time.
func NewBarrier(eng *Engine, n int, release func(at Time)) *Barrier {
	if n <= 0 {
		panic("eventsim: barrier needs at least one party")
	}
	return &Barrier{eng: eng, need: n, release: release}
}

// Arrive registers one party as ready at time t.
func (b *Barrier) Arrive(t Time) {
	if b.done {
		panic("eventsim: arrival after barrier release")
	}
	if t > b.latest {
		b.latest = t
	}
	b.arrived++
	if b.arrived == b.need {
		b.done = true
		at := b.latest
		b.eng.At(at, func() { b.release(at) })
	}
}

// Arrived returns how many parties have arrived so far.
func (b *Barrier) Arrived() int { return b.arrived }
