package mem

import (
	"testing"
	"testing/quick"
)

func TestAllocFreeCycle(t *testing.T) {
	a := NewAllocator(100)
	if err := a.Alloc("w", 60); err != nil {
		t.Fatal(err)
	}
	if err := a.Alloc("kv", 40); err != nil {
		t.Fatal(err)
	}
	if a.Available() != 0 {
		t.Fatalf("available = %d, want 0", a.Available())
	}
	if err := a.Alloc("x", 1); err == nil {
		t.Fatal("over-allocation accepted")
	}
	if err := a.Free("w"); err != nil {
		t.Fatal(err)
	}
	if a.Used() != 40 {
		t.Fatalf("used = %d, want 40", a.Used())
	}
	if err := a.Alloc("x", 60); err != nil {
		t.Fatalf("realloc after free failed: %v", err)
	}
}

func TestAllocDuplicateName(t *testing.T) {
	a := NewAllocator(100)
	if err := a.Alloc("w", 10); err != nil {
		t.Fatal(err)
	}
	if err := a.Alloc("w", 10); err == nil {
		t.Fatal("duplicate name accepted")
	}
	// The rejected duplicate must not consume capacity, resize the
	// original region, or leave a phantom entry behind.
	if a.Used() != 10 {
		t.Fatalf("failed duplicate changed used to %d", a.Used())
	}
	rs := a.Regions()
	if len(rs) != 1 || rs[0].Name != "w" || rs[0].Bytes != 10 {
		t.Fatalf("failed duplicate disturbed regions: %v", rs)
	}
}

func TestAllocNegative(t *testing.T) {
	a := NewAllocator(100)
	if err := a.Alloc("w", -1); err == nil {
		t.Fatal("negative allocation accepted")
	}
}

func TestFreeUnknown(t *testing.T) {
	a := NewAllocator(100)
	if err := a.Free("nope"); err == nil {
		t.Fatal("freeing unknown region succeeded")
	}
}

func TestFailedAllocHasNoSideEffects(t *testing.T) {
	a := NewAllocator(50)
	if err := a.Alloc("w", 40); err != nil {
		t.Fatal(err)
	}
	_ = a.Alloc("big", 20) // fails
	if a.Used() != 40 {
		t.Fatalf("failed alloc changed used to %d", a.Used())
	}
	if len(a.Regions()) != 1 {
		t.Fatalf("failed alloc left %d regions", len(a.Regions()))
	}
	if a.Available() != 10 {
		t.Fatalf("failed alloc changed available to %d", a.Available())
	}
	// The allocator must still be fully usable after the rejection.
	if err := a.Alloc("fits", 10); err != nil {
		t.Fatalf("exact-fit alloc after rejection failed: %v", err)
	}
}

func TestRegionsSorted(t *testing.T) {
	a := NewAllocator(100)
	for _, n := range []string{"z", "a", "m"} {
		if err := a.Alloc(n, 10); err != nil {
			t.Fatal(err)
		}
	}
	rs := a.Regions()
	if rs[0].Name != "a" || rs[1].Name != "m" || rs[2].Name != "z" {
		t.Fatalf("regions not sorted: %v", rs)
	}
}

func TestZeroByteRegionAllowed(t *testing.T) {
	a := NewAllocator(10)
	if err := a.Alloc("empty", 0); err != nil {
		t.Fatal(err)
	}
	if a.Used() != 0 {
		t.Fatal("zero-byte region consumed capacity")
	}
}

func TestFootprint(t *testing.T) {
	f := Footprint{WeightBytes: 100, KVBytes: 20, ActivationBytes: 30, CommBytes: 5}
	if f.Total() != 155 {
		t.Fatalf("total = %d", f.Total())
	}
	if !f.FitsIn(155) {
		t.Fatal("exact fit rejected")
	}
	if f.FitsIn(154) {
		t.Fatal("overflow accepted")
	}
}

func TestLevelString(t *testing.T) {
	if L1.String() != "L1" || L2.String() != "L2" || L3.String() != "L3" {
		t.Fatal("level names wrong")
	}
}

// Property: used + available == capacity under any alloc/free sequence.
func TestPropertyConservation(t *testing.T) {
	f := func(ops []uint16) bool {
		a := NewAllocator(1 << 16)
		names := []string{}
		for i, op := range ops {
			if op%3 == 0 && len(names) > 0 {
				_ = a.Free(names[0])
				names = names[1:]
			} else {
				name := string(rune('a'+i%26)) + string(rune('0'+i%10)) + string(rune('A'+(i/26)%26))
				if a.Alloc(name, int(op)) == nil {
					names = append(names, name)
				}
			}
			if a.Used()+a.Available() != a.Capacity() {
				return false
			}
			if a.Used() < 0 || a.Used() > a.Capacity() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: sum of region sizes equals Used.
func TestPropertyRegionSumMatchesUsed(t *testing.T) {
	f := func(sizes []uint8) bool {
		a := NewAllocator(1 << 20)
		for i, s := range sizes {
			name := "r" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
			_ = a.Alloc(name, int(s))
		}
		sum := 0
		for _, r := range a.Regions() {
			sum += r.Bytes
		}
		return sum == a.Used()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
