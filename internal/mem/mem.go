// Package mem models the on-chip memory budget of one MCU: a named
// region allocator for L2 placement decisions and footprint reports
// used by the deployment planner to decide which tier (resident,
// double-buffered, streamed) a model fits into.
package mem

import (
	"fmt"
	"sort"
)

// Level identifies a memory level of the hierarchy.
type Level int

const (
	L1 Level = iota
	L2
	L3
)

func (l Level) String() string {
	switch l {
	case L1:
		return "L1"
	case L2:
		return "L2"
	case L3:
		return "L3"
	default:
		return fmt.Sprintf("L?(%d)", int(l))
	}
}

// Region is one named allocation.
type Region struct {
	Name  string
	Bytes int
}

// Allocator tracks named allocations against a fixed capacity. It is a
// budget allocator (no addresses): the deployment planner only needs
// fit/no-fit decisions and footprint attribution.
type Allocator struct {
	capacity int
	used     int
	regions  map[string]int
}

// NewAllocator returns an allocator with the given capacity in bytes.
func NewAllocator(capacity int) *Allocator {
	if capacity < 0 {
		panic(fmt.Sprintf("mem: negative capacity %d", capacity))
	}
	return &Allocator{capacity: capacity, regions: make(map[string]int)}
}

// Alloc reserves bytes under name. It fails without side effects if
// the capacity would be exceeded or the name already exists.
func (a *Allocator) Alloc(name string, bytes int) error {
	if bytes < 0 {
		return fmt.Errorf("mem: negative allocation %q (%d)", name, bytes)
	}
	if _, ok := a.regions[name]; ok {
		return fmt.Errorf("mem: region %q already allocated", name)
	}
	if a.used+bytes > a.capacity {
		return fmt.Errorf("mem: %q needs %d bytes, only %d of %d free",
			name, bytes, a.capacity-a.used, a.capacity)
	}
	a.regions[name] = bytes
	a.used += bytes
	return nil
}

// Free releases a named region.
func (a *Allocator) Free(name string) error {
	b, ok := a.regions[name]
	if !ok {
		return fmt.Errorf("mem: region %q not allocated", name)
	}
	delete(a.regions, name)
	a.used -= b
	return nil
}

// Used returns the allocated byte count.
func (a *Allocator) Used() int { return a.used }

// Free bytes remaining.
func (a *Allocator) Available() int { return a.capacity - a.used }

// Capacity returns the total byte capacity.
func (a *Allocator) Capacity() int { return a.capacity }

// Regions returns the current allocations sorted by name.
func (a *Allocator) Regions() []Region {
	out := make([]Region, 0, len(a.regions))
	for n, b := range a.regions {
		out = append(out, Region{Name: n, Bytes: b})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Footprint itemizes one chip's L2 budget for a deployment.
type Footprint struct {
	// WeightBytes is resident weight storage (× 2 when
	// double-buffered).
	WeightBytes int
	// KVBytes is the resident KV-cache storage (decoders).
	KVBytes int
	// ActivationBytes is peak activation storage for one block.
	ActivationBytes int
	// CommBytes is staging for inbound/outbound partial tensors.
	CommBytes int
}

// Total returns the summed footprint.
func (f Footprint) Total() int {
	return f.WeightBytes + f.KVBytes + f.ActivationBytes + f.CommBytes
}

// FitsIn reports whether the footprint fits the given budget.
func (f Footprint) FitsIn(budget int) bool { return f.Total() <= budget }

func (f Footprint) String() string {
	return fmt.Sprintf("weights=%d kv=%d act=%d comm=%d total=%d",
		f.WeightBytes, f.KVBytes, f.ActivationBytes, f.CommBytes, f.Total())
}
