// Package tensor provides the dense float32 linear algebra used by the
// functional transformer engine: matrices in row-major layout, GEMM and
// GEMV with float64 accumulation (so that differently-ordered partial
// sums stay comparable), and the activation functions that appear in
// the paper's models (softmax, GELU, SiLU, LayerNorm, RMSNorm, RoPE).
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Mat is a row-major matrix of float32 values.
type Mat struct {
	Rows, Cols int
	Data       []float32
}

// New returns a zero matrix with the given shape.
func New(rows, cols int) *Mat {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative shape %dx%d", rows, cols))
	}
	return &Mat{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice wraps data (length rows*cols) as a matrix without copying.
func FromSlice(rows, cols int, data []float32) *Mat {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Mat{Rows: rows, Cols: cols, Data: data}
}

// Random returns a matrix with values uniform in [-scale, scale],
// deterministic for a given seed.
func Random(rows, cols int, scale float32, seed int64) *Mat {
	rng := rand.New(rand.NewSource(seed))
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = (rng.Float32()*2 - 1) * scale
	}
	return m
}

// At returns element (r, c).
func (m *Mat) At(r, c int) float32 {
	return m.Data[r*m.Cols+c]
}

// Set assigns element (r, c).
func (m *Mat) Set(r, c int, v float32) {
	m.Data[r*m.Cols+c] = v
}

// Row returns a view of row r (no copy).
func (m *Mat) Row(r int) []float32 {
	return m.Data[r*m.Cols : (r+1)*m.Cols]
}

// Clone returns a deep copy.
func (m *Mat) Clone() *Mat {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// SliceCols returns a copy of columns [lo, hi).
func (m *Mat) SliceCols(lo, hi int) *Mat {
	if lo < 0 || hi > m.Cols || lo > hi {
		panic(fmt.Sprintf("tensor: column slice [%d,%d) of %d cols", lo, hi, m.Cols))
	}
	out := New(m.Rows, hi-lo)
	for r := 0; r < m.Rows; r++ {
		copy(out.Row(r), m.Row(r)[lo:hi])
	}
	return out
}

// SliceRows returns a copy of rows [lo, hi).
func (m *Mat) SliceRows(lo, hi int) *Mat {
	if lo < 0 || hi > m.Rows || lo > hi {
		panic(fmt.Sprintf("tensor: row slice [%d,%d) of %d rows", lo, hi, m.Rows))
	}
	out := New(hi-lo, m.Cols)
	copy(out.Data, m.Data[lo*m.Cols:hi*m.Cols])
	return out
}

// MatMul returns a·b with float64 accumulation.
func MatMul(a, b *Mat) *Mat {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k := 0; k < a.Cols; k++ {
			av := float64(arow[k])
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j := range orow {
				orow[j] += float32(av * float64(brow[j]))
			}
		}
	}
	return out
}

// MatMulT returns a·bᵀ with float64 accumulation; b is given untransposed
// (rows of b are the columns of the product).
func MatMulT(a, b *Mat) *Mat {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmulT shape mismatch %dx%d · (%dx%d)T", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			var acc float64
			for k := range arow {
				acc += float64(arow[k]) * float64(brow[k])
			}
			out.Set(i, j, float32(acc))
		}
	}
	return out
}

// Add returns a+b elementwise.
func Add(a, b *Mat) *Mat {
	checkSameShape("add", a, b)
	out := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

// AddInPlace accumulates b into a.
func AddInPlace(a, b *Mat) {
	checkSameShape("add", a, b)
	for i := range a.Data {
		a.Data[i] += b.Data[i]
	}
}

// Scale multiplies every element by s, in place, and returns m.
func (m *Mat) Scale(s float32) *Mat {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// ConcatCols concatenates matrices with equal row counts side by side.
func ConcatCols(ms ...*Mat) *Mat {
	if len(ms) == 0 {
		panic("tensor: concat of nothing")
	}
	rows := ms[0].Rows
	cols := 0
	for _, m := range ms {
		if m.Rows != rows {
			panic(fmt.Sprintf("tensor: concat rows %d != %d", m.Rows, rows))
		}
		cols += m.Cols
	}
	out := New(rows, cols)
	for r := 0; r < rows; r++ {
		dst := out.Row(r)
		off := 0
		for _, m := range ms {
			copy(dst[off:off+m.Cols], m.Row(r))
			off += m.Cols
		}
	}
	return out
}

// ConcatRows stacks matrices with equal column counts vertically.
func ConcatRows(ms ...*Mat) *Mat {
	if len(ms) == 0 {
		panic("tensor: concat of nothing")
	}
	cols := ms[0].Cols
	rows := 0
	for _, m := range ms {
		if m.Cols != cols {
			panic(fmt.Sprintf("tensor: concat cols %d != %d", m.Cols, cols))
		}
		rows += m.Rows
	}
	out := New(rows, cols)
	off := 0
	for _, m := range ms {
		copy(out.Data[off:off+len(m.Data)], m.Data)
		off += len(m.Data)
	}
	return out
}

// Softmax applies a numerically stable row-wise softmax in place and
// returns m. This is equation (3) of the paper.
func Softmax(m *Mat) *Mat {
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		maxV := float64(math.Inf(-1))
		for _, v := range row {
			if float64(v) > maxV {
				maxV = float64(v)
			}
		}
		var sum float64
		for i, v := range row {
			e := math.Exp(float64(v) - maxV)
			row[i] = float32(e)
			sum += e
		}
		inv := 1 / sum
		for i := range row {
			row[i] = float32(float64(row[i]) * inv)
		}
	}
	return m
}

// CausalMaskedSoftmax applies softmax per row over only the first
// (offset + row + 1) columns, writing zero attention to future
// positions. Used by decoder attention in prompt mode.
func CausalMaskedSoftmax(m *Mat, offset int) *Mat {
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		valid := offset + r + 1
		if valid > len(row) {
			valid = len(row)
		}
		maxV := float64(math.Inf(-1))
		for _, v := range row[:valid] {
			if float64(v) > maxV {
				maxV = float64(v)
			}
		}
		var sum float64
		for i := 0; i < valid; i++ {
			e := math.Exp(float64(row[i]) - maxV)
			row[i] = float32(e)
			sum += e
		}
		inv := 1 / sum
		for i := 0; i < valid; i++ {
			row[i] = float32(float64(row[i]) * inv)
		}
		for i := valid; i < len(row); i++ {
			row[i] = 0
		}
	}
	return m
}

// GELU applies the Gaussian error linear unit (tanh approximation, as
// deployed on MCU kernels) in place and returns m.
func GELU(m *Mat) *Mat {
	const c = 0.7978845608028654 // sqrt(2/pi)
	for i, v := range m.Data {
		x := float64(v)
		m.Data[i] = float32(0.5 * x * (1 + math.Tanh(c*(x+0.044715*x*x*x))))
	}
	return m
}

// SiLU applies x·sigmoid(x) in place and returns m (used by the
// Llama-style gated FFN variant).
func SiLU(m *Mat) *Mat {
	for i, v := range m.Data {
		x := float64(v)
		m.Data[i] = float32(x / (1 + math.Exp(-x)))
	}
	return m
}

// Mul returns the elementwise product a∘b.
func Mul(a, b *Mat) *Mat {
	checkSameShape("mul", a, b)
	out := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
	return out
}

// LayerNorm normalizes each row to zero mean and unit variance, then
// applies the elementwise affine gain/bias, returning a new matrix.
func LayerNorm(m *Mat, gain, bias []float32, eps float64) *Mat {
	if len(gain) != m.Cols || len(bias) != m.Cols {
		panic(fmt.Sprintf("tensor: layernorm affine length %d/%d != cols %d", len(gain), len(bias), m.Cols))
	}
	out := New(m.Rows, m.Cols)
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		var mean float64
		for _, v := range row {
			mean += float64(v)
		}
		mean /= float64(len(row))
		var variance float64
		for _, v := range row {
			d := float64(v) - mean
			variance += d * d
		}
		variance /= float64(len(row))
		inv := 1 / math.Sqrt(variance+eps)
		orow := out.Row(r)
		for i, v := range row {
			orow[i] = float32((float64(v)-mean)*inv*float64(gain[i])) + bias[i]
		}
	}
	return out
}

// RMSNorm normalizes each row by its root-mean-square and applies the
// gain, returning a new matrix (Llama-style normalization).
func RMSNorm(m *Mat, gain []float32, eps float64) *Mat {
	if len(gain) != m.Cols {
		panic(fmt.Sprintf("tensor: rmsnorm gain length %d != cols %d", len(gain), m.Cols))
	}
	out := New(m.Rows, m.Cols)
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		var ss float64
		for _, v := range row {
			ss += float64(v) * float64(v)
		}
		inv := 1 / math.Sqrt(ss/float64(len(row))+eps)
		orow := out.Row(r)
		for i, v := range row {
			orow[i] = float32(float64(v) * inv * float64(gain[i]))
		}
	}
	return out
}

// RoPE applies rotary position embeddings in place to a matrix whose
// rows are per-position vectors laid out as consecutive head slices of
// headDim elements. positions[r] is the absolute position of row r.
func RoPE(m *Mat, headDim int, positions []int, theta float64) *Mat {
	if headDim <= 0 || headDim%2 != 0 {
		panic(fmt.Sprintf("tensor: rope head dim %d must be positive and even", headDim))
	}
	if m.Cols%headDim != 0 {
		panic(fmt.Sprintf("tensor: rope cols %d not a multiple of head dim %d", m.Cols, headDim))
	}
	if len(positions) != m.Rows {
		panic(fmt.Sprintf("tensor: rope positions %d != rows %d", len(positions), m.Rows))
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		pos := float64(positions[r])
		for h := 0; h < m.Cols; h += headDim {
			for i := 0; i < headDim; i += 2 {
				freq := 1 / math.Pow(theta, float64(i)/float64(headDim))
				angle := pos * freq
				sin, cos := math.Sincos(angle)
				a, b := float64(row[h+i]), float64(row[h+i+1])
				row[h+i] = float32(a*cos - b*sin)
				row[h+i+1] = float32(a*sin + b*cos)
			}
		}
	}
	return m
}

// MaxAbsDiff returns the largest absolute elementwise difference.
func MaxAbsDiff(a, b *Mat) float64 {
	checkSameShape("diff", a, b)
	var maxD float64
	for i := range a.Data {
		d := math.Abs(float64(a.Data[i]) - float64(b.Data[i]))
		if d > maxD {
			maxD = d
		}
	}
	return maxD
}

func checkSameShape(op string, a, b *Mat) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}
