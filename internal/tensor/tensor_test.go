package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMatMulSmall(t *testing.T) {
	a := FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float32{7, 8, 9, 10, 11, 12})
	got := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i, v := range want {
		if got.Data[i] != v {
			t.Fatalf("matmul[%d] = %g, want %g", i, got.Data[i], v)
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	a := Random(5, 5, 1, 1)
	id := New(5, 5)
	for i := 0; i < 5; i++ {
		id.Set(i, i, 1)
	}
	got := MatMul(a, id)
	if MaxAbsDiff(a, got) != 0 {
		t.Fatal("a·I != a")
	}
	got = MatMul(id, a)
	if MaxAbsDiff(a, got) != 0 {
		t.Fatal("I·a != a")
	}
}

func TestMatMulTMatchesExplicitTranspose(t *testing.T) {
	a := Random(4, 6, 1, 2)
	b := Random(5, 6, 1, 3)
	bt := New(6, 5)
	for i := 0; i < b.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			bt.Set(j, i, b.At(i, j))
		}
	}
	got := MatMulT(a, b)
	want := MatMul(a, bt)
	if d := MaxAbsDiff(got, want); d > 1e-5 {
		t.Fatalf("matmulT differs from matmul by %g", d)
	}
}

func TestMatMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("shape mismatch did not panic")
		}
	}()
	MatMul(New(2, 3), New(4, 5))
}

func TestSlicesRoundTrip(t *testing.T) {
	m := Random(6, 8, 1, 4)
	back := ConcatCols(m.SliceCols(0, 3), m.SliceCols(3, 8))
	if MaxAbsDiff(m, back) != 0 {
		t.Fatal("column slice + concat is not identity")
	}
	back = ConcatRows(m.SliceRows(0, 2), m.SliceRows(2, 6))
	if MaxAbsDiff(m, back) != 0 {
		t.Fatal("row slice + concat is not identity")
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	m := Random(7, 13, 5, 5)
	Softmax(m)
	for r := 0; r < m.Rows; r++ {
		var sum float64
		for _, v := range m.Row(r) {
			if v < 0 {
				t.Fatalf("negative softmax output %g", v)
			}
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Fatalf("row %d sums to %g", r, sum)
		}
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	m := FromSlice(1, 3, []float32{1000, 1000, 1000})
	Softmax(m)
	for _, v := range m.Data {
		if math.Abs(float64(v)-1.0/3.0) > 1e-6 {
			t.Fatalf("softmax of equal large values = %g, want 1/3", v)
		}
	}
}

func TestCausalMaskedSoftmax(t *testing.T) {
	m := Random(4, 4, 1, 6)
	CausalMaskedSoftmax(m, 0)
	for r := 0; r < 4; r++ {
		row := m.Row(r)
		var sum float64
		for c, v := range row {
			if c > r && v != 0 {
				t.Fatalf("future position (%d,%d) has weight %g", r, c, v)
			}
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Fatalf("masked row %d sums to %g", r, sum)
		}
	}
}

func TestCausalMaskedSoftmaxWithOffset(t *testing.T) {
	// With offset 2, row 0 may attend to positions 0..2.
	m := Random(2, 5, 1, 7)
	CausalMaskedSoftmax(m, 2)
	if m.At(0, 3) != 0 || m.At(0, 4) != 0 {
		t.Fatal("offset mask allowed future attention")
	}
	if m.At(1, 3) == 0 {
		t.Fatal("offset mask blocked a valid position")
	}
}

func TestGELUKnownValues(t *testing.T) {
	m := FromSlice(1, 3, []float32{0, 10, -10})
	GELU(m)
	if m.Data[0] != 0 {
		t.Errorf("gelu(0) = %g, want 0", m.Data[0])
	}
	if math.Abs(float64(m.Data[1])-10) > 1e-3 {
		t.Errorf("gelu(10) = %g, want ~10", m.Data[1])
	}
	if math.Abs(float64(m.Data[2])) > 1e-3 {
		t.Errorf("gelu(-10) = %g, want ~0", m.Data[2])
	}
}

func TestSiLUKnownValues(t *testing.T) {
	m := FromSlice(1, 2, []float32{0, 20})
	SiLU(m)
	if m.Data[0] != 0 {
		t.Errorf("silu(0) = %g, want 0", m.Data[0])
	}
	if math.Abs(float64(m.Data[1])-20) > 1e-3 {
		t.Errorf("silu(20) = %g, want ~20", m.Data[1])
	}
}

func TestLayerNormStatistics(t *testing.T) {
	m := Random(3, 64, 10, 8)
	gain := make([]float32, 64)
	bias := make([]float32, 64)
	for i := range gain {
		gain[i] = 1
	}
	out := LayerNorm(m, gain, bias, 1e-5)
	for r := 0; r < out.Rows; r++ {
		var mean, variance float64
		for _, v := range out.Row(r) {
			mean += float64(v)
		}
		mean /= 64
		for _, v := range out.Row(r) {
			d := float64(v) - mean
			variance += d * d
		}
		variance /= 64
		if math.Abs(mean) > 1e-4 {
			t.Fatalf("row %d mean %g", r, mean)
		}
		if math.Abs(variance-1) > 1e-2 {
			t.Fatalf("row %d variance %g", r, variance)
		}
	}
}

func TestRMSNormUnitRMS(t *testing.T) {
	m := Random(3, 32, 4, 9)
	gain := make([]float32, 32)
	for i := range gain {
		gain[i] = 1
	}
	out := RMSNorm(m, gain, 1e-6)
	for r := 0; r < out.Rows; r++ {
		var ss float64
		for _, v := range out.Row(r) {
			ss += float64(v) * float64(v)
		}
		rms := math.Sqrt(ss / 32)
		if math.Abs(rms-1) > 1e-2 {
			t.Fatalf("row %d rms %g", r, rms)
		}
	}
}

func TestRoPEPreservesNorm(t *testing.T) {
	m := Random(4, 64, 1, 10)
	orig := m.Clone()
	positions := []int{0, 1, 5, 100}
	RoPE(m, 16, positions, 10000)
	for r := 0; r < m.Rows; r++ {
		var a, b float64
		for _, v := range orig.Row(r) {
			a += float64(v) * float64(v)
		}
		for _, v := range m.Row(r) {
			b += float64(v) * float64(v)
		}
		if math.Abs(a-b) > 1e-3*a {
			t.Fatalf("rope changed norm of row %d: %g -> %g", r, a, b)
		}
	}
}

func TestRoPEPositionZeroIsIdentity(t *testing.T) {
	m := Random(1, 32, 1, 11)
	orig := m.Clone()
	RoPE(m, 8, []int{0}, 10000)
	if d := MaxAbsDiff(m, orig); d != 0 {
		t.Fatalf("rope at position 0 changed values by %g", d)
	}
}

func TestRoPERelativeShiftInvariance(t *testing.T) {
	// Dot products between rotated q and k depend only on the relative
	// position difference: <R(p)q, R(p+d)k> constant over p.
	q := Random(1, 16, 1, 12)
	k := Random(1, 16, 1, 13)
	dot := func(p, pd int) float64 {
		qr := q.Clone()
		kr := k.Clone()
		RoPE(qr, 16, []int{p}, 10000)
		RoPE(kr, 16, []int{pd}, 10000)
		var acc float64
		for i := range qr.Data {
			acc += float64(qr.Data[i]) * float64(kr.Data[i])
		}
		return acc
	}
	d1 := dot(0, 3)
	d2 := dot(7, 10)
	if math.Abs(d1-d2) > 1e-3 {
		t.Fatalf("rope relative invariance broken: %g vs %g", d1, d2)
	}
}

// Property: (a+b)·c == a·c + b·c — distributivity is the algebraic fact
// the partitioned all-reduce relies on.
func TestPropertyMatMulDistributive(t *testing.T) {
	f := func(seed int64) bool {
		a := Random(3, 4, 1, seed)
		b := Random(3, 4, 1, seed+1)
		c := Random(4, 5, 1, seed+2)
		lhs := MatMul(Add(a, b), c)
		rhs := Add(MatMul(a, c), MatMul(b, c))
		return MaxAbsDiff(lhs, rhs) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: column-partitioned matmul equals full matmul:
// a·b == concat_cols(a·b[:, p0], a·b[:, p1], ...).
func TestPropertyMatMulColumnPartition(t *testing.T) {
	f := func(seed int64) bool {
		a := Random(3, 6, 1, seed)
		b := Random(6, 8, 1, seed+1)
		full := MatMul(a, b)
		parts := ConcatCols(
			MatMul(a, b.SliceCols(0, 3)),
			MatMul(a, b.SliceCols(3, 8)),
		)
		return MaxAbsDiff(full, parts) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: inner-dimension-partitioned matmul sums to the full result:
// a·b == a[:, :k]·b[:k, :] + a[:, k:]·b[k:, :].
func TestPropertyMatMulInnerPartition(t *testing.T) {
	f := func(seed int64) bool {
		a := Random(4, 10, 1, seed)
		b := Random(10, 3, 1, seed+1)
		full := MatMul(a, b)
		split := Add(
			MatMul(a.SliceCols(0, 4), b.SliceRows(0, 4)),
			MatMul(a.SliceCols(4, 10), b.SliceRows(4, 10)),
		)
		return MaxAbsDiff(full, split) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAddInPlace(t *testing.T) {
	a := FromSlice(1, 3, []float32{1, 2, 3})
	b := FromSlice(1, 3, []float32{10, 20, 30})
	AddInPlace(a, b)
	want := []float32{11, 22, 33}
	for i := range want {
		if a.Data[i] != want[i] {
			t.Fatalf("addinplace[%d] = %g, want %g", i, a.Data[i], want[i])
		}
	}
}

func TestMulAndScale(t *testing.T) {
	a := FromSlice(1, 3, []float32{1, 2, 3})
	b := FromSlice(1, 3, []float32{4, 5, 6})
	p := Mul(a, b)
	want := []float32{4, 10, 18}
	for i := range want {
		if p.Data[i] != want[i] {
			t.Fatalf("mul[%d] = %g, want %g", i, p.Data[i], want[i])
		}
	}
	p.Scale(0.5)
	for i := range want {
		if p.Data[i] != want[i]/2 {
			t.Fatalf("scale[%d] = %g, want %g", i, p.Data[i], want[i]/2)
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(4, 4, 1, 42)
	b := Random(4, 4, 1, 42)
	if MaxAbsDiff(a, b) != 0 {
		t.Fatal("same seed produced different matrices")
	}
	c := Random(4, 4, 1, 43)
	if MaxAbsDiff(a, c) == 0 {
		t.Fatal("different seeds produced identical matrices")
	}
}

func BenchmarkMatMul128(b *testing.B) {
	x := Random(128, 512, 1, 1)
	w := Random(512, 512, 1, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMul(x, w)
	}
}
