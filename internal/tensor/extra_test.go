package tensor

import (
	"testing"
	"testing/quick"
)

func TestFromSliceLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch accepted")
		}
	}()
	FromSlice(2, 3, []float32{1, 2, 3})
}

func TestNegativeShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative shape accepted")
		}
	}()
	New(-1, 4)
}

func TestSliceBoundsPanics(t *testing.T) {
	m := New(4, 4)
	cases := []func(){
		func() { m.SliceCols(-1, 2) },
		func() { m.SliceCols(2, 5) },
		func() { m.SliceCols(3, 2) },
		func() { m.SliceRows(-1, 2) },
		func() { m.SliceRows(2, 5) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: bad slice accepted", i)
				}
			}()
			f()
		}()
	}
}

func TestConcatMismatchPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("row mismatch accepted")
			}
		}()
		ConcatCols(New(2, 3), New(3, 3))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("col mismatch accepted")
			}
		}()
		ConcatRows(New(2, 3), New(2, 4))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty concat accepted")
			}
		}()
		ConcatCols()
	}()
}

func TestEmptyMatrixOperations(t *testing.T) {
	empty := New(0, 8)
	full := Random(3, 8, 1, 1)
	joined := ConcatRows(empty, full)
	if joined.Rows != 3 {
		t.Fatalf("rows = %d", joined.Rows)
	}
	if MaxAbsDiff(joined, full) != 0 {
		t.Fatal("empty concat changed values")
	}
}

func TestRoPEValidation(t *testing.T) {
	m := Random(2, 32, 1, 1)
	cases := []func(){
		func() { RoPE(m, 7, []int{0, 1}, 1e4) },           // odd head dim
		func() { RoPE(m, 0, []int{0, 1}, 1e4) },           // zero head dim
		func() { RoPE(m, 12, []int{0, 1}, 1e4) },          // 32 % 12 != 0
		func() { RoPE(m, 8, []int{0}, 1e4) },              // positions length
		func() { RoPE(Random(2, 30, 1, 1), 8, nil, 1e4) }, // cols not multiple
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: invalid rope accepted", i)
				}
			}()
			f()
		}()
	}
}

func TestLayerNormAffineLengthPanics(t *testing.T) {
	m := Random(2, 8, 1, 1)
	defer func() {
		if recover() == nil {
			t.Error("short affine accepted")
		}
	}()
	LayerNorm(m, make([]float32, 4), make([]float32, 8), 1e-5)
}

// Property: softmax is invariant to adding a constant to a row.
func TestPropertySoftmaxShiftInvariant(t *testing.T) {
	f := func(seed int64, shiftRaw uint8) bool {
		shift := float32(shiftRaw) / 8
		a := Random(2, 16, 2, seed)
		b := a.Clone()
		for i := range b.Data {
			b.Data[i] += shift
		}
		Softmax(a)
		Softmax(b)
		return MaxAbsDiff(a, b) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: MatMulT(a, b) == MatMulT over row-partitioned b stacked.
func TestPropertyMatMulTRowPartition(t *testing.T) {
	f := func(seed int64) bool {
		a := Random(3, 8, 1, seed)
		b := Random(6, 8, 1, seed+1)
		full := MatMulT(a, b)
		parts := ConcatCols(MatMulT(a, b.SliceRows(0, 2)), MatMulT(a, b.SliceRows(2, 6)))
		return MaxAbsDiff(full, parts) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	m := New(3, 4)
	m.Set(2, 3, 42)
	if m.At(2, 3) != 42 {
		t.Fatal("At/Set mismatch")
	}
	if m.Row(2)[3] != 42 {
		t.Fatal("Row view inconsistent")
	}
}
