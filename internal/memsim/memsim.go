// Package memsim models the off-chip memory path as a hierarchy
// instead of a flat byte count: streamed GEMM weights move through a
// DRAM channel (per-burst setup plus bandwidth) into a bounded stream
// buffer of tile slots, a prefetch engine runs up to PrefetchDepth
// tiles ahead of compute, and an N-bank SRAM arbiter charges a
// contention stall whenever a prefetch is in flight during a tile's
// compute.
//
// The unit of planning is one GEMM: PlanGEMM cuts its K×N weight
// matrix into TileK×TileN tiles (N-major order, so each output column
// group's partial sums complete before the next begins) and prices
// every tile's DRAM fetch, L2→L1 DMA, compute share, and bank stall.
// Plan.Makespan evaluates the pipeline recurrence in closed form; the
// performance simulator replays the identical per-tile costs on its
// eventsim resources, so the closed form and the event-driven result
// agree exactly — which is what lets explore.AutotuneTiling use plan
// makespans as a zero-probe additive predictor.
//
// Tiling is a real trade-off, not a monotone knob: small tiles overlap
// better (more fetch/compute interleave) but pay more per-burst DRAM
// setups, more per-transfer DMA setups, and — because each column
// group re-reads the M×K activation slice — more activation refetch
// passes (ceil(N/TileN) of them). Attention-family GEMMs (narrow N
// per chip, M = 1 in decode) and FFN GEMMs (wide K and N) therefore
// prefer different tilings; that divergence is pinned as an ablation
// in internal/experiments.
package memsim

import (
	"fmt"
	"strconv"
	"strings"

	"mcudist/internal/hw"
	"mcudist/internal/kernels"
)

// Tiling names one weight-tile shape: K rows by N columns of the
// weight matrix, in elements. The zero value means "auto": the
// largest tile that fits one stream-buffer slot.
type Tiling struct {
	K, N int
}

// Zero reports whether the tiling requests auto sizing.
func (t Tiling) Zero() bool { return t.K == 0 && t.N == 0 }

// String prints the flag spelling "KxN" ("auto" for the zero value).
func (t Tiling) String() string {
	if t.Zero() {
		return "auto"
	}
	return fmt.Sprintf("%dx%d", t.K, t.N)
}

// ParseTiling parses the "KxN" flag spelling (e.g. "256x128" = 256
// rows of K by 128 columns of N); "auto" or "" yield the zero value.
func ParseTiling(s string) (Tiling, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if s == "" || s == "auto" {
		return Tiling{}, nil
	}
	a, b, ok := strings.Cut(s, "x")
	if !ok {
		return Tiling{}, fmt.Errorf("memsim: tiling %q is not KxN (e.g. 256x128) or auto", s)
	}
	k, err := strconv.Atoi(strings.TrimSpace(a))
	if err != nil {
		return Tiling{}, fmt.Errorf("memsim: tiling K in %q: %v", s, err)
	}
	n, err := strconv.Atoi(strings.TrimSpace(b))
	if err != nil {
		return Tiling{}, fmt.Errorf("memsim: tiling N in %q: %v", s, err)
	}
	if k <= 0 || n <= 0 {
		return Tiling{}, fmt.Errorf("memsim: tiling %q must have positive dims", s)
	}
	return Tiling{K: k, N: n}, nil
}

// Channel is the priced memory path of one chip: the DRAM side
// (payload bandwidth, burst granule, per-burst setup), the prefetch
// engine's depth and slot capacity, the SRAM bank count, and the
// L2→L1 cluster DMA the computed tiles still traverse.
type Channel struct {
	// BytesPerCycle is DRAM payload bandwidth per cluster cycle.
	BytesPerCycle float64
	// BurstBytes is the DRAM burst granule.
	BurstBytes int64
	// SetupCycles is the fixed cost of opening one burst.
	SetupCycles int
	// Depth is the prefetch depth: tiles the engine may run ahead.
	Depth int
	// Banks is the SRAM bank count of the arbiter.
	Banks int
	// SlotBytes is the capacity of one stream-buffer tile slot.
	SlotBytes int64
	// L2BytesPerCycle / L2SetupCycles / L1TileBytes describe the
	// cluster DMA that moves each fetched tile (plus its activation
	// slices) between L2 and L1.
	L2BytesPerCycle float64
	L2SetupCycles   int
	L1TileBytes     int64
}

// ChannelOf derives the priced channel from a platform description.
// Meaningful only when p.Mem.Enabled().
func ChannelOf(p hw.Params) Channel {
	return Channel{
		BytesPerCycle:   p.Mem.DRAMBytesPerCycle,
		BurstBytes:      int64(p.Mem.DRAMBurstBytes),
		SetupCycles:     p.Mem.DRAMBurstSetupCycles,
		Depth:           p.Mem.PrefetchDepth,
		Banks:           p.Mem.SRAMBanks,
		SlotBytes:       int64(p.Chip.L1Bytes / 2),
		L2BytesPerCycle: p.Chip.DMAL2L1BytesPerCycle,
		L2SetupCycles:   p.Chip.DMAL2L1SetupCycles,
		L1TileBytes:     int64(p.Chip.L1Bytes / 2),
	}
}

// TransferCycles prices moving n bytes over the DRAM channel:
// bandwidth time plus one setup per burst.
func (c Channel) TransferCycles(bytes int64) float64 {
	return kernels.DMATime(bytes, c.BytesPerCycle, c.SetupCycles, c.BurstBytes)
}

// GEMM is the planning view of one weight-streaming kernel: the M×K·K×N
// shape, element widths, and the kernel's total compute cycles (tile
// compute shares are prorated from it).
type GEMM struct {
	M, K, N         int
	WeightElemBytes int
	ActElemBytes    int
	ComputeCycles   float64
}

// GEMMOf extracts the planning view from a kernel cost. The second
// return is false for costs that don't stream a tileable weight
// matrix (elementwise kernels, activation-activation matmuls, and
// composite costs, whose dims Add deliberately dropped).
func GEMMOf(c kernels.Cost) (GEMM, bool) {
	if c.M <= 0 || c.K <= 0 || c.N <= 0 || c.WeightBytes <= 0 {
		return GEMM{}, false
	}
	kn := int64(c.K) * int64(c.N)
	mk := int64(c.M) * int64(c.K)
	wb := c.WeightBytes / kn
	ab := int64(1)
	if c.ActInBytes > 0 {
		ab = c.ActInBytes / mk
	}
	if wb <= 0 || ab <= 0 {
		return GEMM{}, false
	}
	return GEMM{
		M:               c.M,
		K:               c.K,
		N:               c.N,
		WeightElemBytes: int(wb),
		ActElemBytes:    int(ab),
		ComputeCycles:   c.Cycles,
	}, true
}

// Plan is the fully priced tile schedule of one GEMM: per-tile DRAM
// fetch time, L2→L1 DMA time, compute share, and bank-contention
// stall, in execution order (N-major, K-inner).
type Plan struct {
	Tiling Tiling
	// Tiles = ceil(K/TileK) * ceil(N/TileN).
	Tiles int
	// ActPasses = ceil(N/TileN): how many times the M×K activation
	// slice is re-read (once per output column group).
	ActPasses int
	// Depth and Banks echo the channel knobs the plan was priced
	// under (the recurrence needs Depth; Banks is already folded into
	// Stall).
	Depth, Banks int

	// Fetch[i] is tile i's DRAM channel occupancy.
	Fetch []float64
	// DMA[i] is tile i's L2→L1 cluster-DMA occupancy (weight tile +
	// activation slice in + partial out on column-group boundaries).
	DMA []float64
	// Comp[i] is tile i's prorated compute-cluster occupancy.
	Comp []float64
	// Stall[i] is the SRAM bank-contention charge: while tile i+1's
	// prefetch is in flight during tile i's work, the arbiter steals
	// min(work_i, fetch_{i+1}) / Banks cycles. Deterministic by
	// construction — it depends on the per-tile costs, not on event
	// timing — which keeps the closed form and the event replay
	// identical and makes the charge monotone in Banks.
	Stall []float64
	// L2L1Bytes[i] is tile i's L2↔L1 traffic in bytes.
	L2L1Bytes []int64

	// WeightBytes is the whole weight matrix (= sum of tile fetches'
	// payloads), billed once as off-chip traffic.
	WeightBytes int64
}

// resolveTiling returns the effective tiling: t itself when set, else
// the largest tile that fits one stream-buffer slot.
func resolveTiling(ch Channel, g GEMM, t Tiling) Tiling {
	if !t.Zero() {
		return t
	}
	return AutoTiling(ch, g)
}

// AutoTiling returns the default tile shape for a GEMM: start from the
// whole K×N matrix and repeatedly halve the larger dimension until the
// tile fits one stream-buffer slot. No overlap, minimal setups — the
// baseline the autotuner must beat.
func AutoTiling(ch Channel, g GEMM) Tiling {
	tk, tn := g.K, g.N
	wb := int64(g.WeightElemBytes)
	for int64(tk)*int64(tn)*wb > ch.SlotBytes {
		if tk >= tn && tk > 1 {
			tk = (tk + 1) / 2
		} else if tn > 1 {
			tn = (tn + 1) / 2
		} else {
			break
		}
	}
	return Tiling{K: tk, N: tn}
}

// PlanGEMM prices the tile schedule of one GEMM under the channel.
// The zero tiling auto-sizes; an explicit tiling whose tile exceeds
// the stream-buffer slot is an error.
func PlanGEMM(ch Channel, g GEMM, t Tiling) (*Plan, error) {
	if g.M <= 0 || g.K <= 0 || g.N <= 0 {
		return nil, fmt.Errorf("memsim: GEMM shape %dx%dx%d", g.M, g.K, g.N)
	}
	if ch.BytesPerCycle <= 0 || ch.Banks < 1 || ch.Depth < 1 || ch.SlotBytes <= 0 {
		return nil, fmt.Errorf("memsim: channel not configured (bandwidth %g, depth %d, banks %d, slot %d)",
			ch.BytesPerCycle, ch.Depth, ch.Banks, ch.SlotBytes)
	}
	t = resolveTiling(ch, g, t)
	tk, tn := t.K, t.N
	if tk <= 0 || tn <= 0 {
		return nil, fmt.Errorf("memsim: tiling %s must have positive dims", t)
	}
	if tk > g.K {
		tk = g.K
	}
	if tn > g.N {
		tn = g.N
	}
	wb := int64(g.WeightElemBytes)
	ab := int64(g.ActElemBytes)
	if int64(tk)*int64(tn)*wb > ch.SlotBytes {
		return nil, fmt.Errorf("memsim: tile %dx%d (%d B) exceeds stream-buffer slot (%d B)",
			tk, tn, int64(tk)*int64(tn)*wb, ch.SlotBytes)
	}

	nK := (g.K + tk - 1) / tk
	nN := (g.N + tn - 1) / tn
	tiles := nK * nN
	p := &Plan{
		Tiling:    Tiling{K: tk, N: tn},
		Tiles:     tiles,
		ActPasses: nN,
		Depth:     ch.Depth,
		Banks:     ch.Banks,
		Fetch:     make([]float64, tiles),
		DMA:       make([]float64, tiles),
		Comp:      make([]float64, tiles),
		Stall:     make([]float64, tiles),
		L2L1Bytes: make([]int64, tiles),
	}

	total := float64(g.K) * float64(g.N)
	i := 0
	for nIdx := 0; nIdx < nN; nIdx++ {
		tnI := tn
		if rem := g.N - nIdx*tn; rem < tn {
			tnI = rem
		}
		for kIdx := 0; kIdx < nK; kIdx++ {
			tkI := tk
			if rem := g.K - kIdx*tk; rem < tk {
				tkI = rem
			}
			wBytes := int64(tkI) * int64(tnI) * wb
			actIn := int64(g.M) * int64(tkI) * ab
			var actOut int64
			if kIdx == nK-1 {
				// The column group's accumulators are complete:
				// write the M×tnI output slice back.
				actOut = int64(g.M) * int64(tnI) * ab
			}
			l2l1 := wBytes + actIn + actOut
			p.Fetch[i] = ch.TransferCycles(wBytes)
			p.DMA[i] = kernels.DMATime(l2l1, ch.L2BytesPerCycle, ch.L2SetupCycles, ch.L1TileBytes)
			p.Comp[i] = g.ComputeCycles * float64(tkI) * float64(tnI) / total
			p.L2L1Bytes[i] = l2l1
			p.WeightBytes += wBytes
			i++
		}
	}
	for i := 0; i < tiles-1; i++ {
		work := p.DMA[i] + p.Comp[i]
		next := p.Fetch[i+1]
		if next < work {
			p.Stall[i] = next / float64(ch.Banks)
		} else {
			p.Stall[i] = work / float64(ch.Banks)
		}
	}
	return p, nil
}

// Makespan evaluates the pipeline recurrence in closed form: with
// slots = Depth+1 stream-buffer slots, tile i's fetch may start once
// the channel is free AND slot i mod slots has been drained by tile
// i-slots's compute; tile i's work (DMA + compute + stall) starts when
// its fetch has landed and the previous tile's work is done.
//
//	fd[i] = max(fd[i-1], cd[i-slots]) + Fetch[i]
//	cd[i] = max(cd[i-1], fd[i]) + DMA[i] + Comp[i] + Stall[i]
//
// The performance simulator replays the same schedule on eventsim
// resources (io = channel, dma+cluster = work) and lands on this exact
// value — pinned by a test — so plan makespans double as an exact
// additive predictor for the tiling autotuner.
func (p *Plan) Makespan() float64 {
	slots := p.Depth + 1
	// cdRing[j] holds cd[i-slots+ (j offset)]; small fixed window.
	cdRing := make([]float64, slots)
	var fdPrev, cdPrev float64
	for i := 0; i < p.Tiles; i++ {
		fd := fdPrev
		if drained := cdRing[i%slots]; drained > fd {
			fd = drained
		}
		fd += p.Fetch[i]
		cs := cdPrev
		if fd > cs {
			cs = fd
		}
		cd := cs + p.DMA[i] + p.Comp[i] + p.Stall[i]
		fdPrev, cdPrev = fd, cd
		cdRing[i%slots] = cd
	}
	return cdPrev
}

// WorkCycles is the chip-busy portion of the plan: every tile's DMA,
// compute, and stall time (the part billed to the compute/DMA
// breakdown).
func (p *Plan) WorkCycles() float64 {
	var s float64
	for i := 0; i < p.Tiles; i++ {
		s += p.DMA[i] + p.Comp[i] + p.Stall[i]
	}
	return s
}

// ExposedCycles is the makespan not hidden behind work: the fetch
// latency the prefetch depth failed to overlap (billed as off-chip
// wait, the hierarchy's analogue of exposed L3 time).
func (p *Plan) ExposedCycles() float64 {
	return p.Makespan() - p.WorkCycles()
}

// minTileDim is the smallest tile dimension CandidateTilings descends
// to: below ~32 elements per axis the per-tile setup costs dominate
// any conceivable overlap win and the candidate grid just bloats.
const minTileDim = 32

// halvings returns d, ceil(d/2), ceil(d/4), ... down to minTileDim
// (always including d itself, even when d < minTileDim).
func halvings(d int) []int {
	var out []int
	for v := d; ; v = (v + 1) / 2 {
		out = append(out, v)
		if v <= minTileDim || v == 1 {
			break
		}
	}
	return out
}

// CandidateTilings enumerates the tiling candidates of a GEMM: the
// cross product of halving sequences of K and N, filtered to tiles
// that fit one stream-buffer slot, deduplicated, in deterministic
// (K-major descending) order. The auto tiling is always present —
// it is the largest fitting member of the grid.
func CandidateTilings(ch Channel, g GEMM) []Tiling {
	wb := int64(g.WeightElemBytes)
	seen := make(map[Tiling]bool)
	var out []Tiling
	for _, tk := range halvings(g.K) {
		for _, tn := range halvings(g.N) {
			if int64(tk)*int64(tn)*wb > ch.SlotBytes {
				continue
			}
			t := Tiling{K: tk, N: tn}
			if seen[t] {
				continue
			}
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}
