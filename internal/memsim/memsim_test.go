package memsim

import (
	"math"
	"testing"

	"mcudist/internal/hw"
	"mcudist/internal/kernels"
)

func testChannel() Channel {
	p := hw.Siracusa()
	p.Mem = hw.LPDDR5()
	return ChannelOf(p)
}

func testGEMM() GEMM {
	p := hw.Siracusa()
	e := kernels.Elem{Weight: 1, Act: 1, Acc: 4, Reduce: 1}
	g, ok := GEMMOf(kernels.Linear(p, 16, 2048, 5632, e))
	if !ok {
		panic("Linear cost must yield a GEMM")
	}
	return g
}

func TestTilingParseRoundTrip(t *testing.T) {
	for _, s := range []string{"auto", "256x128", "1x1", "2048x32"} {
		tl, err := ParseTiling(s)
		if err != nil {
			t.Fatalf("ParseTiling(%q): %v", s, err)
		}
		back, err := ParseTiling(tl.String())
		if err != nil || back != tl {
			t.Fatalf("round trip %q -> %s -> %s (%v)", s, tl, back, err)
		}
	}
	if tl, err := ParseTiling(""); err != nil || !tl.Zero() {
		t.Fatalf("empty spelling must be auto, got %s, %v", tl, err)
	}
	for _, bad := range []string{"256", "x128", "256x", "0x8", "-4x8", "axb"} {
		if _, err := ParseTiling(bad); err == nil {
			t.Errorf("ParseTiling(%q): want error", bad)
		}
	}
}

func TestGEMMOf(t *testing.T) {
	p := hw.Siracusa()
	e := kernels.Elem{Weight: 1, Act: 1, Acc: 4, Reduce: 1}
	lin := kernels.Linear(p, 4, 512, 256, e)
	g, ok := GEMMOf(lin)
	if !ok {
		t.Fatal("Linear must yield a GEMM")
	}
	if g.M != 4 || g.K != 512 || g.N != 256 || g.WeightElemBytes != 1 || g.ActElemBytes != 1 {
		t.Fatalf("GEMMOf(Linear) = %+v", g)
	}
	if g.ComputeCycles != lin.Cycles {
		t.Fatalf("compute cycles %g != kernel cycles %g", g.ComputeCycles, lin.Cycles)
	}
	// Activation-activation matmuls stream no weights: not tileable.
	if _, ok := GEMMOf(kernels.MatMulAct(p, 4, 512, 256, e)); ok {
		t.Fatal("MatMulAct must not yield a GEMM")
	}
	// Elementwise kernels carry no dims.
	if _, ok := GEMMOf(kernels.Softmax(p, 4, 256, e)); ok {
		t.Fatal("Softmax must not yield a GEMM")
	}
	// Composite costs drop their dims: a sum is not one GEMM.
	if _, ok := GEMMOf(lin.Add(lin)); ok {
		t.Fatal("summed cost must not yield a GEMM")
	}
}

// TestPlanConservation checks the per-tile accounting sums to the whole
// GEMM no matter the tiling: weight bytes, activation passes, compute.
func TestPlanConservation(t *testing.T) {
	ch := testChannel()
	g := testGEMM()
	for _, tl := range []Tiling{{}, {K: 2048, N: 32}, {K: 256, N: 128}, {K: 333, N: 77}} {
		p, err := PlanGEMM(ch, g, tl)
		if err != nil {
			t.Fatalf("PlanGEMM(%s): %v", tl, err)
		}
		wantW := int64(g.K) * int64(g.N) * int64(g.WeightElemBytes)
		if p.WeightBytes != wantW {
			t.Errorf("%s: weight bytes %d, want %d", tl, p.WeightBytes, wantW)
		}
		var comp float64
		var l2l1 int64
		for i := 0; i < p.Tiles; i++ {
			comp += p.Comp[i]
			l2l1 += p.L2L1Bytes[i]
		}
		if math.Abs(comp-g.ComputeCycles) > 1e-6*g.ComputeCycles {
			t.Errorf("%s: compute %g, want %g", tl, comp, g.ComputeCycles)
		}
		// L2L1 = weights + nN activation passes + one output write.
		nN := (g.N + p.Tiling.N - 1) / p.Tiling.N
		wantL2L1 := wantW +
			int64(nN)*int64(g.M)*int64(g.K)*int64(g.ActElemBytes) +
			int64(g.M)*int64(g.N)*int64(g.ActElemBytes)
		if l2l1 != wantL2L1 {
			t.Errorf("%s: l2l1 bytes %d, want %d", tl, l2l1, wantL2L1)
		}
	}
}

func TestPlanRejects(t *testing.T) {
	ch := testChannel()
	g := testGEMM()
	// A tile bigger than the stream-buffer slot must be rejected, not
	// silently clamped.
	if _, err := PlanGEMM(ch, g, Tiling{K: 2048, N: 2048}); err == nil {
		t.Fatal("want slot-overflow error")
	}
	if _, err := PlanGEMM(Channel{}, g, Tiling{}); err == nil {
		t.Fatal("want unconfigured-channel error")
	}
	if _, err := PlanGEMM(ch, GEMM{}, Tiling{}); err == nil {
		t.Fatal("want bad-shape error")
	}
}

func TestAutoTilingFits(t *testing.T) {
	ch := testChannel()
	g := testGEMM()
	tl := AutoTiling(ch, g)
	if int64(tl.K)*int64(tl.N)*int64(g.WeightElemBytes) > ch.SlotBytes {
		t.Fatalf("auto tiling %s exceeds slot %d", tl, ch.SlotBytes)
	}
	// A GEMM that already fits keeps its full shape.
	small := GEMM{M: 1, K: 64, N: 64, WeightElemBytes: 1, ActElemBytes: 1, ComputeCycles: 100}
	if tl := AutoTiling(ch, small); tl.K != 64 || tl.N != 64 {
		t.Fatalf("small GEMM auto tiling = %s", tl)
	}
}

// naiveMakespan replays the plan with an explicit event simulation:
// one channel resource, one work resource, slot drain times tracked
// individually. Independent of the ring-buffer recurrence in Makespan.
func naiveMakespan(p *Plan) float64 {
	slots := p.Depth + 1
	slotFree := make([]float64, slots)
	var channelFree, workFree float64
	for i := 0; i < p.Tiles; i++ {
		fetchStart := math.Max(channelFree, slotFree[i%slots])
		fetchDone := fetchStart + p.Fetch[i]
		channelFree = fetchDone
		workStart := math.Max(workFree, fetchDone)
		workDone := workStart + p.DMA[i] + p.Comp[i] + p.Stall[i]
		workFree = workDone
		slotFree[i%slots] = workDone
	}
	return workFree
}

func TestMakespanMatchesNaiveReplay(t *testing.T) {
	ch := testChannel()
	g := testGEMM()
	for _, depth := range []int{1, 2, 4} {
		for _, tl := range []Tiling{{}, {K: 2048, N: 32}, {K: 256, N: 128}, {K: 64, N: 64}} {
			c := ch
			c.Depth = depth
			p, err := PlanGEMM(c, g, tl)
			if err != nil {
				t.Fatalf("PlanGEMM(depth=%d, %s): %v", depth, tl, err)
			}
			got, want := p.Makespan(), naiveMakespan(p)
			if got != want {
				t.Errorf("depth=%d %s: Makespan %g != naive %g", depth, tl, got, want)
			}
			if p.ExposedCycles() < -1e-9 {
				t.Errorf("depth=%d %s: negative exposed cycles %g", depth, tl, p.ExposedCycles())
			}
		}
	}
}

func TestMakespanMonotoneInDepth(t *testing.T) {
	ch := testChannel()
	g := testGEMM()
	prev := math.Inf(1)
	for _, depth := range []int{1, 2, 4, 8} {
		c := ch
		c.Depth = depth
		p, err := PlanGEMM(c, g, Tiling{K: 256, N: 128})
		if err != nil {
			t.Fatal(err)
		}
		ms := p.Makespan()
		if ms > prev+1e-9 {
			t.Fatalf("depth %d makespan %g worse than shallower %g", depth, ms, prev)
		}
		prev = ms
	}
}

func TestStallMonotoneInBanks(t *testing.T) {
	ch := testChannel()
	g := testGEMM()
	var prev float64 = math.Inf(1)
	for _, banks := range []int{1, 2, 8, 64} {
		c := ch
		c.Banks = banks
		p, err := PlanGEMM(c, g, Tiling{K: 256, N: 128})
		if err != nil {
			t.Fatal(err)
		}
		var stall float64
		for _, s := range p.Stall {
			stall += s
		}
		if stall > prev+1e-9 {
			t.Fatalf("banks %d total stall %g worse than fewer banks %g", banks, stall, prev)
		}
		if banks > 1 && stall >= prev {
			t.Fatalf("banks %d stall %g did not strictly improve on %g", banks, stall, prev)
		}
		prev = stall
	}
}

func TestCandidateTilingsFitAndDedupe(t *testing.T) {
	ch := testChannel()
	g := testGEMM()
	cands := CandidateTilings(ch, g)
	if len(cands) < 4 {
		t.Fatalf("only %d candidates for a %dx%d GEMM", len(cands), g.K, g.N)
	}
	seen := make(map[Tiling]bool)
	for _, tl := range cands {
		if seen[tl] {
			t.Fatalf("duplicate candidate %s", tl)
		}
		seen[tl] = true
		if int64(tl.K)*int64(tl.N)*int64(g.WeightElemBytes) > ch.SlotBytes {
			t.Fatalf("candidate %s exceeds slot", tl)
		}
		if _, err := PlanGEMM(ch, g, tl); err != nil {
			t.Fatalf("candidate %s does not plan: %v", tl, err)
		}
	}
	if !seen[AutoTiling(ch, g)] {
		t.Fatalf("auto tiling %s missing from candidates", AutoTiling(ch, g))
	}
}

// TestTilingIsARealTradeoff pins that neither extreme of the candidate
// grid wins: some interior tiling beats both the largest-fitting tile
// (no overlap) and the smallest candidate (setup-dominated), so the
// autotuner has something to find.
func TestTilingIsARealTradeoff(t *testing.T) {
	ch := testChannel()
	g := testGEMM()
	cands := CandidateTilings(ch, g)
	best, worst := math.Inf(1), 0.0
	var bestT Tiling
	for _, tl := range cands {
		p, err := PlanGEMM(ch, g, tl)
		if err != nil {
			t.Fatal(err)
		}
		ms := p.Makespan()
		if ms < best {
			best, bestT = ms, tl
		}
		if ms > worst {
			worst = ms
		}
	}
	if worst <= best {
		t.Fatalf("all %d tilings cost the same (%g)", len(cands), best)
	}
	auto, err := PlanGEMM(ch, g, Tiling{})
	if err != nil {
		t.Fatal(err)
	}
	if best >= auto.Makespan() {
		t.Fatalf("no candidate beats the auto tiling (%s best %g, auto %g)",
			bestT, best, auto.Makespan())
	}
	t.Logf("best %s = %.0f cycles, auto %s = %.0f, worst = %.0f (%.2fx spread)",
		bestT, best, auto.Tiling, auto.Makespan(), worst, worst/best)
}
