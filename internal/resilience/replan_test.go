package resilience

import (
	"math"
	"testing"

	"mcudist/internal/core"
	"mcudist/internal/explore"
	"mcudist/internal/model"
)

func TestDegradeKeepsLegalChipCount(t *testing.T) {
	cfg := model.TinyLlama42M()
	sys := core.DefaultSystem(8)
	deg, _, err := Degrade(sys, cfg, DropChip(7))
	if err != nil {
		t.Fatal(err)
	}
	// TinyLlama42M accepts every count up to its 8 heads: 7 survivors
	// stay 7 chips.
	if deg.Chips != 7 {
		t.Fatalf("degraded chips = %d, want 7", deg.Chips)
	}
}

func TestReplanStudySlowEdge(t *testing.T) {
	sys := core.DefaultSystem(8)
	cfg := model.TinyLlama42M()
	study, err := ReplanStudy(sys, cfg, []Fault{SlowEdge(0, 1, 10)}, explore.SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if study.Chips != 8 || study.DegradedChips != 8 {
		t.Fatalf("chips %d -> %d, want 8 -> 8", study.Chips, study.DegradedChips)
	}
	r := study.Replan
	if r.Static == nil {
		t.Fatalf("stale plan infeasible on a slowed edge: %s", r.StaticErr)
	}
	if r.AdoptedCycles > r.Static.Cycles {
		t.Fatalf("replanned %g cycles worse than static %g", r.AdoptedCycles, r.Static.Cycles)
	}
	if r.MarginCycles < 1 || math.IsInf(r.MarginCycles, 1) {
		t.Fatalf("margin %g, want finite >= 1", r.MarginCycles)
	}
	// The degraded board costs more than the pristine one under any
	// plan: slowing an edge never speeds a session up.
	if r.AdoptedCycles < study.Pristine.Cycles {
		t.Fatalf("degraded session %g cycles cheaper than pristine %g", r.AdoptedCycles, study.Pristine.Cycles)
	}
}

func TestReplanStudyDropChip(t *testing.T) {
	sys := core.DefaultSystem(8)
	cfg := model.TinyLlama42M()
	study, err := ReplanStudy(sys, cfg, []Fault{DropChip(3)}, explore.SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if study.DegradedChips != 7 {
		t.Fatalf("degraded chips = %d, want 7", study.DegradedChips)
	}
	r := study.Replan
	if r.Static == nil {
		t.Fatalf("stale plan infeasible after a drop on an all-pairs board: %s", r.StaticErr)
	}
	if r.AdoptedCycles > r.Static.Cycles || r.MarginCycles < 1 {
		t.Fatalf("replanned %g vs static %g (margin %g): replanning must never lose",
			r.AdoptedCycles, r.Static.Cycles, r.MarginCycles)
	}
}
