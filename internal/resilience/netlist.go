// Package resilience is the robustness tier: it imports measured
// board wirings (netlists) into the per-edge network model, injects
// deterministic faults — a dropped chip, a slowed edge, a compute
// straggler — by rewriting the network table and hardware options, and
// measures the re-planning margin: how much latency/energy a fleet
// serving a stale pre-tuned plan loses on the degraded board before
// re-running the autotuner pays.
//
// Everything in the package is a pure rewrite of value-typed
// configuration: a perturbed system carries a different interned
// network table (a different content digest) and different planner
// options, so the evalpool/resultstore cache tiers can never confuse
// degraded results with pristine ones — the digests differ by
// construction.
package resilience

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"mcudist/internal/hw"
)

// Netlist is a measured per-edge board wiring: a chip count, named
// link classes (bandwidth/setup/energy triples), and the directed
// edges wired between chips. It is the file-format view of
// hw.TableNetwork: Parse and Format round-trip it, Network registers
// it with the interned table machinery.
type Netlist struct {
	// Chips is the number of chips the wiring spans (chip ids are
	// 0..Chips-1).
	Chips int
	// Classes names the link classes edges refer to.
	Classes map[string]hw.LinkClass
	// Edges assigns each wired directed edge its class name.
	Edges map[hw.Edge]string
}

// ParseNetlist reads the netlist file format:
//
//	# comments and blank lines are ignored
//	chips 8
//	class mipi 0.5e9 256 100      # name, bandwidth B/s, setup cycles, pJ/B
//	link 0 1 mipi bidi            # from, to, class; bidi wires both directions
//	link 2 0 mipi                 # directed edge
//
// Every malformed input — a missing or duplicate chips line, an
// unknown directive, an undeclared or redeclared class, a chip index
// out of range, a self-edge, a duplicate edge, a non-positive
// bandwidth — is rejected with the offending line number.
func ParseNetlist(r io.Reader) (*Netlist, error) {
	nl := &Netlist{
		Classes: map[string]hw.LinkClass{},
		Edges:   map[hw.Edge]string{},
	}
	sawChips := false
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		fields := strings.Fields(text)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "chips":
			if sawChips {
				return nil, fmt.Errorf("netlist line %d: duplicate chips directive", line)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("netlist line %d: want `chips <n>`", line)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 2 {
				return nil, fmt.Errorf("netlist line %d: chip count %q must be an integer >= 2", line, fields[1])
			}
			nl.Chips = n
			sawChips = true
		case "class":
			if len(fields) != 5 {
				return nil, fmt.Errorf("netlist line %d: want `class <name> <bandwidth B/s> <setup cycles> <pJ/B>`", line)
			}
			name := fields[1]
			if _, dup := nl.Classes[name]; dup {
				return nil, fmt.Errorf("netlist line %d: class %q already declared", line, name)
			}
			bw, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("netlist line %d: bad bandwidth %q", line, fields[2])
			}
			setup, err := strconv.Atoi(fields[3])
			if err != nil {
				return nil, fmt.Errorf("netlist line %d: bad setup cycles %q", line, fields[3])
			}
			pj, err := strconv.ParseFloat(fields[4], 64)
			if err != nil {
				return nil, fmt.Errorf("netlist line %d: bad energy %q", line, fields[4])
			}
			c := hw.LinkClass{BandwidthBytesPerSec: bw, SetupCycles: setup, EnergyPJPerByte: pj}
			if err := c.Validate(); err != nil {
				return nil, fmt.Errorf("netlist line %d: class %q: %w", line, name, err)
			}
			nl.Classes[name] = c
		case "link":
			if !sawChips {
				return nil, fmt.Errorf("netlist line %d: link before the chips directive", line)
			}
			if len(fields) != 4 && !(len(fields) == 5 && fields[4] == "bidi") {
				return nil, fmt.Errorf("netlist line %d: want `link <from> <to> <class> [bidi]`", line)
			}
			from, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("netlist line %d: bad chip id %q", line, fields[1])
			}
			to, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("netlist line %d: bad chip id %q", line, fields[2])
			}
			if from < 0 || from >= nl.Chips || to < 0 || to >= nl.Chips {
				return nil, fmt.Errorf("netlist line %d: link %d->%d out of range for %d chips", line, from, to, nl.Chips)
			}
			if from == to {
				return nil, fmt.Errorf("netlist line %d: self-edge %d->%d", line, from, to)
			}
			name := fields[3]
			if _, ok := nl.Classes[name]; !ok {
				return nil, fmt.Errorf("netlist line %d: class %q not declared", line, name)
			}
			dirs := []hw.Edge{{From: from, To: to}}
			if len(fields) == 5 {
				dirs = append(dirs, hw.Edge{From: to, To: from})
			}
			for _, e := range dirs {
				if _, dup := nl.Edges[e]; dup {
					return nil, fmt.Errorf("netlist line %d: edge %d->%d already wired", line, e.From, e.To)
				}
				nl.Edges[e] = name
			}
		default:
			return nil, fmt.Errorf("netlist line %d: unknown directive %q (want chips | class | link)", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("netlist: %w", err)
	}
	if !sawChips {
		return nil, fmt.Errorf("netlist: missing chips directive")
	}
	if len(nl.Edges) == 0 {
		return nil, fmt.Errorf("netlist: no links wired")
	}
	return nl, nil
}

// LoadNetlist parses a netlist file from disk.
func LoadNetlist(path string) (*Netlist, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("netlist: %w", err)
	}
	defer f.Close()
	nl, err := ParseNetlist(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return nl, nil
}

// EdgeTable resolves the netlist into the explicit per-edge class
// table — the map TableNetwork registers and Perturb rewrites.
func (nl *Netlist) EdgeTable() map[hw.Edge]hw.LinkClass {
	edges := make(map[hw.Edge]hw.LinkClass, len(nl.Edges))
	for e, name := range nl.Edges {
		edges[e] = nl.Classes[name]
	}
	return edges
}

// Network registers the wiring as an interned per-edge table network.
// Equal netlists (same resolved edges, whatever the class names)
// produce equal Network values — the content digest ignores naming.
func (nl *Netlist) Network() (hw.Network, error) {
	return hw.TableNetwork(nl.EdgeTable())
}

// NetlistFromNetwork materializes any network over n chips into a
// netlist, naming the distinct classes c0, c1, ... in descending
// bandwidth order. This is how a profile network (or a perturbed
// table) is exported to the file format.
func NetlistFromNetwork(net hw.Network, n int) (*Netlist, error) {
	edges, err := hw.NetworkEdges(net, n)
	if err != nil {
		return nil, err
	}
	var classes []hw.LinkClass
	seen := map[hw.LinkClass]bool{}
	for _, c := range edges {
		if !seen[c] {
			seen[c] = true
			classes = append(classes, c)
		}
	}
	sort.Slice(classes, func(i, j int) bool {
		a, b := classes[i], classes[j]
		if a.BandwidthBytesPerSec != b.BandwidthBytesPerSec {
			return a.BandwidthBytesPerSec > b.BandwidthBytesPerSec
		}
		if a.SetupCycles != b.SetupCycles {
			return a.SetupCycles < b.SetupCycles
		}
		return a.EnergyPJPerByte < b.EnergyPJPerByte
	})
	nl := &Netlist{
		Chips:   n,
		Classes: make(map[string]hw.LinkClass, len(classes)),
		Edges:   make(map[hw.Edge]string, len(edges)),
	}
	names := map[hw.LinkClass]string{}
	for i, c := range classes {
		name := fmt.Sprintf("c%d", i)
		nl.Classes[name] = c
		names[c] = name
	}
	for e, c := range edges {
		nl.Edges[e] = names[c]
	}
	return nl, nil
}

// Format renders the netlist in the canonical file spelling: classes
// in name order, edges sorted by (from, to) with symmetric same-class
// pairs collapsed to one bidi line. Parse(Format(nl)) resolves to the
// same edge table.
func (nl *Netlist) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chips %d\n", nl.Chips)
	names := make([]string, 0, len(nl.Classes))
	for name := range nl.Classes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c := nl.Classes[name]
		fmt.Fprintf(&b, "class %s %g %d %g\n", name, c.BandwidthBytesPerSec, c.SetupCycles, c.EnergyPJPerByte)
	}
	edges := make([]hw.Edge, 0, len(nl.Edges))
	for e := range nl.Edges {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	emitted := make(map[hw.Edge]bool, len(edges))
	for _, e := range edges {
		if emitted[e] {
			continue
		}
		name := nl.Edges[e]
		rev := hw.Edge{From: e.To, To: e.From}
		if revName, wired := nl.Edges[rev]; wired && revName == name && e.From < e.To {
			fmt.Fprintf(&b, "link %d %d %s bidi\n", e.From, e.To, name)
			emitted[rev] = true
			continue
		}
		fmt.Fprintf(&b, "link %d %d %s\n", e.From, e.To, name)
	}
	return b.String()
}
