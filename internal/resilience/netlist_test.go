package resilience

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mcudist/internal/hw"
)

const sampleNetlist = `
# 4-chip lab board: MIPI daisy chain plus a slow SPI repair link.
chips 4
class mipi 0.5e9 256 100
class spi  5e7  64  40
link 0 1 mipi bidi
link 1 2 mipi bidi
link 2 3 mipi bidi
link 0 3 spi  bidi
link 3 1 spi          # directed extra
`

func TestParseNetlist(t *testing.T) {
	nl, err := ParseNetlist(strings.NewReader(sampleNetlist))
	if err != nil {
		t.Fatal(err)
	}
	if nl.Chips != 4 || len(nl.Classes) != 2 || len(nl.Edges) != 9 {
		t.Fatalf("parsed chips=%d classes=%d edges=%d, want 4/2/9", nl.Chips, len(nl.Classes), len(nl.Edges))
	}
	net, err := nl.Network()
	if err != nil {
		t.Fatal(err)
	}
	c, err := net.LinkFor(0, 1)
	if err != nil || c.BandwidthBytesPerSec != 0.5e9 {
		t.Fatalf("edge 0->1 resolves %+v err %v, want MIPI", c, err)
	}
	c, err = net.LinkFor(3, 0)
	if err != nil || c.BandwidthBytesPerSec != 5e7 {
		t.Fatalf("edge 3->0 resolves %+v err %v, want SPI", c, err)
	}
	if _, err := net.LinkFor(0, 2); err == nil {
		t.Fatal("unwired edge 0->2 resolved")
	}
	if _, err := net.LinkFor(1, 3); err == nil {
		t.Fatal("the 3->1 link is directed; 1->3 should be unwired")
	}
}

func TestNetlistRoundTrip(t *testing.T) {
	nl, err := ParseNetlist(strings.NewReader(sampleNetlist))
	if err != nil {
		t.Fatal(err)
	}
	again, err := ParseNetlist(strings.NewReader(nl.Format()))
	if err != nil {
		t.Fatalf("formatted netlist does not re-parse: %v", err)
	}
	a, err := nl.Network()
	if err != nil {
		t.Fatal(err)
	}
	b, err := again.Network()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("Parse(Format(nl)) resolves to a different network digest")
	}
	// Formatting is canonical: a second round trip is byte-identical.
	if nl.Format() != again.Format() {
		t.Fatal("Format is not a fixed point of Parse")
	}
}

func TestNetlistFromNetworkRoundTrip(t *testing.T) {
	torus, err := hw.TorusNetwork(4, 2, hw.MIPI())
	if err != nil {
		t.Fatal(err)
	}
	nl, err := NetlistFromNetwork(torus, 8)
	if err != nil {
		t.Fatal(err)
	}
	net, err := nl.Network()
	if err != nil {
		t.Fatal(err)
	}
	if net != torus {
		t.Fatal("exporting and re-registering the torus changed its digest")
	}
	parsed, err := ParseNetlist(strings.NewReader(nl.Format()))
	if err != nil {
		t.Fatal(err)
	}
	rt, err := parsed.Network()
	if err != nil {
		t.Fatal(err)
	}
	if rt != torus {
		t.Fatal("file round trip changed the torus digest")
	}
}

func TestLoadNetlist(t *testing.T) {
	path := filepath.Join(t.TempDir(), "board.netlist")
	if err := os.WriteFile(path, []byte(sampleNetlist), 0o644); err != nil {
		t.Fatal(err)
	}
	nl, err := LoadNetlist(path)
	if err != nil {
		t.Fatal(err)
	}
	if nl.Chips != 4 {
		t.Fatalf("loaded chips=%d, want 4", nl.Chips)
	}
	if _, err := LoadNetlist(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("loading a missing file should fail")
	}
}

// Every malformed spelling is rejected with an error naming the line —
// the CI-pinned contract: a bad measured wiring must never silently
// simulate.
func TestParseNetlistRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"missing chips":      "class mipi 0.5e9 256 100\nlink 0 1 mipi\n",
		"chips too small":    "chips 1\n",
		"chips not a number": "chips eight\n",
		"duplicate chips":    "chips 4\nchips 4\n",
		"unknown directive":  "chips 4\nwire 0 1\n",
		"class field count":  "chips 4\nclass mipi 0.5e9 256\n",
		"class bad float":    "chips 4\nclass mipi fast 256 100\n",
		"class bad setup":    "chips 4\nclass mipi 0.5e9 soon 100\n",
		"class zero bw":      "chips 4\nclass mipi 0 256 100\n",
		"duplicate class":    "chips 4\nclass mipi 0.5e9 256 100\nclass mipi 1e9 0 0\n",
		"link before chips":  "class mipi 0.5e9 256 100\nlink 0 1 mipi\nchips 4\n",
		"link field count":   "chips 4\nclass mipi 0.5e9 256 100\nlink 0 1\n",
		"link bad chip":      "chips 4\nclass mipi 0.5e9 256 100\nlink zero 1 mipi\n",
		"link out of range":  "chips 4\nclass mipi 0.5e9 256 100\nlink 0 4 mipi\n",
		"link self edge":     "chips 4\nclass mipi 0.5e9 256 100\nlink 2 2 mipi\n",
		"unknown class":      "chips 4\nclass mipi 0.5e9 256 100\nlink 0 1 spi\n",
		"duplicate edge":     "chips 4\nclass mipi 0.5e9 256 100\nlink 0 1 mipi\nlink 0 1 mipi\n",
		"bidi duplicates":    "chips 4\nclass mipi 0.5e9 256 100\nlink 1 0 mipi\nlink 0 1 mipi bidi\n",
		"bad bidi marker":    "chips 4\nclass mipi 0.5e9 256 100\nlink 0 1 mipi both\n",
		"no links":           "chips 4\nclass mipi 0.5e9 256 100\n",
	}
	for name, input := range cases {
		if _, err := ParseNetlist(strings.NewReader(input)); err == nil {
			t.Errorf("%s: accepted %q", name, input)
		}
	}
}
