package resilience

import (
	"reflect"
	"testing"

	"mcudist/internal/core"
	"mcudist/internal/hw"
	"mcudist/internal/model"
	"mcudist/internal/resultstore"
)

func TestParseFaults(t *testing.T) {
	faults, err := ParseFaults("drop:3, slow:0-1x10, straggle:2x2")
	if err != nil {
		t.Fatal(err)
	}
	want := []Fault{DropChip(3), SlowEdge(0, 1, 10), StraggleChip(2, 2)}
	if !reflect.DeepEqual(faults, want) {
		t.Fatalf("parsed %+v, want %+v", faults, want)
	}
	// The String spelling round-trips through the parser.
	again, err := ParseFaults(FaultsString(faults))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, want) {
		t.Fatalf("round trip %+v, want %+v", again, want)
	}
	for _, bad := range []string{"", "drop", "drop:x", "slow:0-1", "slow:ax10", "straggle:1", "melt:3"} {
		if _, err := ParseFaults(bad); err == nil {
			t.Errorf("accepted bad fault spec %q", bad)
		}
	}
}

func TestPerturbSlowEdge(t *testing.T) {
	sys := core.DefaultSystem(4)
	deg, remap, err := Perturb(sys, SlowEdge(0, 1, 10))
	if err != nil {
		t.Fatal(err)
	}
	if deg.Chips != 4 || !reflect.DeepEqual(remap, []int{0, 1, 2, 3}) {
		t.Fatalf("slow-edge changed chips/remap: %d %v", deg.Chips, remap)
	}
	slow, err := deg.HW.Network.LinkFor(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if want := hw.MIPI().Slower(10); slow != want {
		t.Fatalf("slowed edge class %+v, want %+v", slow, want)
	}
	rev, _ := deg.HW.Network.LinkFor(1, 0)
	if rev != hw.MIPI().Slower(10) {
		t.Fatalf("reverse direction not slowed: %+v", rev)
	}
	untouched, _ := deg.HW.Network.LinkFor(2, 3)
	if untouched != hw.MIPI() {
		t.Fatalf("unrelated edge changed: %+v", untouched)
	}
}

func TestPerturbDropChipRenumbers(t *testing.T) {
	// Daisy chain 0-1-2-3 with a repair link 1-3: dropping chip 2
	// must remove its edges and renumber 3 -> 2.
	edges := map[hw.Edge]hw.LinkClass{}
	wire := func(a, b int) {
		edges[hw.Edge{From: a, To: b}] = hw.MIPI()
		edges[hw.Edge{From: b, To: a}] = hw.MIPI()
	}
	wire(0, 1)
	wire(1, 2)
	wire(2, 3)
	wire(1, 3)
	net, err := hw.TableNetwork(edges)
	if err != nil {
		t.Fatal(err)
	}
	sys := core.DefaultSystem(4)
	sys.HW.Network = net
	deg, remap, err := Perturb(sys, DropChip(2))
	if err != nil {
		t.Fatal(err)
	}
	if deg.Chips != 3 || !reflect.DeepEqual(remap, []int{0, 1, -1, 2}) {
		t.Fatalf("drop chip 2: chips=%d remap=%v", deg.Chips, remap)
	}
	kept, ok := hw.TableEdges(deg.HW.Network.TableDigest)
	if !ok {
		t.Fatal("degraded table not registered")
	}
	// Surviving edges: 0<->1 and old 1<->3 renumbered to 1<->2.
	want := map[hw.Edge]hw.LinkClass{
		{From: 0, To: 1}: hw.MIPI(), {From: 1, To: 0}: hw.MIPI(),
		{From: 1, To: 2}: hw.MIPI(), {From: 2, To: 1}: hw.MIPI(),
	}
	if !reflect.DeepEqual(kept, want) {
		t.Fatalf("surviving edges %+v, want %+v", kept, want)
	}
}

func TestPerturbStraggler(t *testing.T) {
	sys := core.DefaultSystem(8)
	deg, _, err := Perturb(sys, StraggleChip(5, 2))
	if err != nil {
		t.Fatal(err)
	}
	if deg.Options.StragglerChip != 5 || deg.Options.StragglerFactor != 0.5 {
		t.Fatalf("straggler options %+v, want chip 5 at factor 0.5", deg.Options)
	}
	// Dropping a lower chip remaps the straggler's id.
	deg, _, err = Perturb(sys, DropChip(1), StraggleChip(5, 2))
	if err != nil {
		t.Fatal(err)
	}
	if deg.Chips != 7 || deg.Options.StragglerChip != 4 {
		t.Fatalf("drop+straggle: chips=%d straggler=%d, want 7 and 4", deg.Chips, deg.Options.StragglerChip)
	}
}

func TestPerturbRejectsBadFaults(t *testing.T) {
	sys := core.DefaultSystem(4)
	cases := [][]Fault{
		nil,
		{DropChip(4)},
		{DropChip(-1)},
		{SlowEdge(0, 1, 0.5)},
		{StraggleChip(0, 0.5)},
		{StraggleChip(9, 2)},
		{StraggleChip(0, 2), StraggleChip(1, 2)},
		{DropChip(2), StraggleChip(2, 2)},
		{DropChip(0), DropChip(1), DropChip(2)},
	}
	for _, faults := range cases {
		if _, _, err := Perturb(sys, faults...); err == nil {
			t.Errorf("accepted faults %v", faults)
		}
	}
	// Slowing an unwired edge is an error, not a silent no-op.
	chain, err := hw.TableNetwork(map[hw.Edge]hw.LinkClass{
		{From: 0, To: 1}: hw.MIPI(), {From: 1, To: 0}: hw.MIPI(),
		{From: 1, To: 2}: hw.MIPI(), {From: 2, To: 1}: hw.MIPI(),
	})
	if err != nil {
		t.Fatal(err)
	}
	sys = core.DefaultSystem(3)
	sys.HW.Network = chain
	if _, _, err := Perturb(sys, SlowEdge(0, 2, 10)); err == nil {
		t.Error("slowed an unwired edge")
	}
}

// The acceptance criterion the cache tiers rest on: a perturbed system
// can never share an evalpool/resultstore digest with the pristine
// one, because the perturbation rides in the network table digest (or
// the straggler options), both part of the cache key.
func TestPerturbedDigestNeverCollides(t *testing.T) {
	sys := core.DefaultSystem(8)
	wl := core.Workload{Model: model.TinyLlama42M(), Mode: model.Prompt, SeqLen: 128}
	pristine := resultstore.Digest(sys, wl)
	for _, faults := range [][]Fault{
		{DropChip(3)},
		{SlowEdge(0, 1, 10)},
		{StraggleChip(3, 2)},
		{DropChip(3), SlowEdge(0, 1, 10)},
	} {
		deg, _, err := Perturb(sys, faults...)
		if err != nil {
			t.Fatal(err)
		}
		if d := resultstore.Digest(deg, wl); d == pristine {
			t.Errorf("faults %v: degraded digest collides with pristine", faults)
		}
	}
	// Materializing the pristine wiring into a table (no faults beyond
	// a 1x slow, a no-op on rates) still changes the digest: a table
	// network is a different description than a uniform profile, and
	// the digest is honest about it.
	deg, _, err := Perturb(sys, SlowEdge(0, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if d := resultstore.Digest(deg, wl); d == pristine {
		t.Error("materialized table digest collides with the uniform profile")
	}
}
