package resilience

import (
	"fmt"
	"strconv"
	"strings"

	"mcudist/internal/core"
	"mcudist/internal/hw"
)

// FaultKind selects one deterministic perturbation.
type FaultKind int

const (
	// FaultDropChip removes a chip: every edge touching it disappears
	// and the survivors renumber consecutively (the partitioner and
	// the schedules address chips 0..n-1).
	FaultDropChip FaultKind = iota
	// FaultSlowEdge divides one edge's bandwidth (both directions when
	// both are wired) by Factor in the network table itself, so the
	// degradation rides in the network digest like any measured wiring.
	FaultSlowEdge
	// FaultStraggle throttles one chip's compute throughput by Factor
	// via the deployment straggler options (the perfsim hook the
	// thermal-throttling ablation uses).
	FaultStraggle
)

func (k FaultKind) String() string {
	switch k {
	case FaultDropChip:
		return "drop"
	case FaultSlowEdge:
		return "slow"
	case FaultStraggle:
		return "straggle"
	default:
		return fmt.Sprintf("fault-kind(%d)", int(k))
	}
}

// Fault is one deterministic perturbation of a system: which chip or
// edge it hits and how hard. Construct with DropChip, SlowEdge, or
// StraggleChip.
type Fault struct {
	Kind FaultKind
	// Chip is the dropped or straggling chip (FaultDropChip,
	// FaultStraggle).
	Chip int
	// Edge is the slowed edge (FaultSlowEdge).
	Edge hw.Edge
	// Factor is the slowdown multiple, >= 1: a FaultSlowEdge divides
	// the edge bandwidth by it, a FaultStraggle divides the chip's
	// compute throughput by it.
	Factor float64
}

// DropChip fails chip i outright.
func DropChip(i int) Fault { return Fault{Kind: FaultDropChip, Chip: i} }

// SlowEdge degrades the edge from->to (and the reverse direction,
// when wired) to 1/factor of its bandwidth.
func SlowEdge(from, to int, factor float64) Fault {
	return Fault{Kind: FaultSlowEdge, Edge: hw.Edge{From: from, To: to}, Factor: factor}
}

// StraggleChip throttles chip i's compute to 1/factor of its speed.
func StraggleChip(i int, factor float64) Fault {
	return Fault{Kind: FaultStraggle, Chip: i, Factor: factor}
}

// String renders the fault in the ParseFaults spelling.
func (f Fault) String() string {
	switch f.Kind {
	case FaultDropChip:
		return fmt.Sprintf("drop:%d", f.Chip)
	case FaultSlowEdge:
		return fmt.Sprintf("slow:%d-%dx%g", f.Edge.From, f.Edge.To, f.Factor)
	case FaultStraggle:
		return fmt.Sprintf("straggle:%dx%g", f.Chip, f.Factor)
	default:
		return f.Kind.String()
	}
}

// ParseFaults parses a comma-separated fault spec — the CLI spelling:
//
//	drop:3                 fail chip 3
//	slow:0-1x10            slow edge 0<->1 to 1/10 bandwidth
//	straggle:3x2           throttle chip 3's compute to half speed
func ParseFaults(spec string) ([]Fault, error) {
	var faults []Fault
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kind, arg, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("resilience: fault %q: want kind:args", part)
		}
		switch kind {
		case "drop":
			chip, err := strconv.Atoi(arg)
			if err != nil {
				return nil, fmt.Errorf("resilience: fault %q: bad chip id %q", part, arg)
			}
			faults = append(faults, DropChip(chip))
		case "slow":
			edgePart, factorPart, ok := strings.Cut(arg, "x")
			if !ok {
				return nil, fmt.Errorf("resilience: fault %q: want slow:<from>-<to>x<factor>", part)
			}
			fromPart, toPart, ok := strings.Cut(edgePart, "-")
			if !ok {
				return nil, fmt.Errorf("resilience: fault %q: want slow:<from>-<to>x<factor>", part)
			}
			from, err1 := strconv.Atoi(fromPart)
			to, err2 := strconv.Atoi(toPart)
			factor, err3 := strconv.ParseFloat(factorPart, 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("resilience: fault %q: want slow:<from>-<to>x<factor>", part)
			}
			faults = append(faults, SlowEdge(from, to, factor))
		case "straggle":
			chipPart, factorPart, ok := strings.Cut(arg, "x")
			if !ok {
				return nil, fmt.Errorf("resilience: fault %q: want straggle:<chip>x<factor>", part)
			}
			chip, err1 := strconv.Atoi(chipPart)
			factor, err2 := strconv.ParseFloat(factorPart, 64)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("resilience: fault %q: want straggle:<chip>x<factor>", part)
			}
			faults = append(faults, StraggleChip(chip, factor))
		default:
			return nil, fmt.Errorf("resilience: fault %q: unknown kind %q (want drop | slow | straggle)", part, kind)
		}
	}
	if len(faults) == 0 {
		return nil, fmt.Errorf("resilience: empty fault spec")
	}
	return faults, nil
}

// FaultsString renders a fault list in the ParseFaults spelling.
func FaultsString(faults []Fault) string {
	parts := make([]string, len(faults))
	for i, f := range faults {
		parts[i] = f.String()
	}
	return strings.Join(parts, ",")
}

// Perturb applies the faults to a system deterministically and
// returns the degraded system plus the chip remap: remap[old] is the
// survivor's new id, or -1 for a dropped chip.
//
// The network — whatever its profile — is first materialized into an
// explicit per-edge table over the system's chips; slowed edges divide
// their bandwidth inside that table, dropped chips remove their edges
// and renumber the survivors consecutively, and the result registers
// as a fresh interned table whose content digest can never collide
// with the pristine wiring's. Stragglers ride in the deployment
// options (which the evalpool cache key also covers). Every schedule
// the degraded system lowers re-validates against the degraded wiring;
// pipeline chains re-route through surviving stage paths.
func Perturb(sys core.System, faults ...Fault) (core.System, []int, error) {
	n := sys.Chips
	if n < 2 {
		return core.System{}, nil, fmt.Errorf("resilience: cannot perturb a %d-chip system", n)
	}
	if len(faults) == 0 {
		return core.System{}, nil, fmt.Errorf("resilience: no faults to apply")
	}
	edges, err := hw.NetworkEdges(sys.HW.Network, n)
	if err != nil {
		return core.System{}, nil, fmt.Errorf("resilience: %w", err)
	}

	dropped := make(map[int]bool)
	straggler := -1
	stragglerFactor := 0.0
	for _, f := range faults {
		switch f.Kind {
		case FaultDropChip:
			if f.Chip < 0 || f.Chip >= n {
				return core.System{}, nil, fmt.Errorf("resilience: drop chip %d out of range for %d chips", f.Chip, n)
			}
			dropped[f.Chip] = true
		case FaultSlowEdge:
			if !(f.Factor >= 1) {
				return core.System{}, nil, fmt.Errorf("resilience: slow-edge factor %g must be >= 1", f.Factor)
			}
			fwd, fok := edges[f.Edge]
			rev := hw.Edge{From: f.Edge.To, To: f.Edge.From}
			bwd, bok := edges[rev]
			if !fok && !bok {
				return core.System{}, nil, fmt.Errorf("resilience: edge %d->%d is not wired, nothing to slow", f.Edge.From, f.Edge.To)
			}
			if fok {
				edges[f.Edge] = fwd.Slower(f.Factor)
			}
			if bok {
				edges[rev] = bwd.Slower(f.Factor)
			}
		case FaultStraggle:
			if f.Chip < 0 || f.Chip >= n {
				return core.System{}, nil, fmt.Errorf("resilience: straggle chip %d out of range for %d chips", f.Chip, n)
			}
			if !(f.Factor >= 1) {
				return core.System{}, nil, fmt.Errorf("resilience: straggle factor %g must be >= 1", f.Factor)
			}
			if straggler >= 0 && straggler != f.Chip {
				return core.System{}, nil, fmt.Errorf("resilience: the simulator models one straggler chip, got %d and %d", straggler, f.Chip)
			}
			straggler = f.Chip
			stragglerFactor = f.Factor
		default:
			return core.System{}, nil, fmt.Errorf("resilience: unknown fault kind %v", f.Kind)
		}
	}
	if straggler >= 0 && dropped[straggler] {
		return core.System{}, nil, fmt.Errorf("resilience: chip %d is both dropped and straggling", straggler)
	}
	if sys.Options.StragglerFactor > 0 && straggler >= 0 && sys.Options.StragglerChip != straggler {
		return core.System{}, nil, fmt.Errorf("resilience: system already throttles chip %d, cannot also straggle chip %d",
			sys.Options.StragglerChip, straggler)
	}

	// Renumber survivors consecutively, preserving order.
	remap := make([]int, n)
	next := 0
	for c := 0; c < n; c++ {
		if dropped[c] {
			remap[c] = -1
			continue
		}
		remap[c] = next
		next++
	}
	if next < 2 {
		return core.System{}, nil, fmt.Errorf("resilience: %d of %d chips dropped, fewer than 2 survive", len(dropped), n)
	}

	kept := make(map[hw.Edge]hw.LinkClass, len(edges))
	for e, c := range edges {
		from, to := remap[e.From], remap[e.To]
		if from < 0 || to < 0 {
			continue
		}
		kept[hw.Edge{From: from, To: to}] = c
	}
	if len(kept) == 0 {
		return core.System{}, nil, fmt.Errorf("resilience: no edges survive the faults")
	}
	net, err := hw.TableNetwork(kept)
	if err != nil {
		return core.System{}, nil, fmt.Errorf("resilience: %w", err)
	}

	out := sys
	out.Chips = next
	out.HW.Network = net
	// Remap a pre-existing degradation target; clear it if its chip
	// dropped (its links are gone with it).
	if out.Options.DegradedLinkFactor > 0 {
		if nc := remap[out.Options.DegradedLinkChip]; nc >= 0 {
			out.Options.DegradedLinkChip = nc
		} else {
			out.Options.DegradedLinkChip = 0
			out.Options.DegradedLinkFactor = 0
		}
	}
	if out.Options.StragglerFactor > 0 {
		out.Options.StragglerChip = remap[out.Options.StragglerChip]
	}
	if straggler >= 0 {
		out.Options.StragglerChip = remap[straggler]
		// Options.StragglerFactor scales throughput (0.5 = half
		// speed); the fault spells slowdown (2 = half speed).
		out.Options.StragglerFactor = 1 / stragglerFactor
	}
	return out, remap, nil
}
