package resilience

import (
	"fmt"

	"mcudist/internal/core"
	"mcudist/internal/explore"
	"mcudist/internal/model"
)

// Degrade is Perturb plus partition legality: when dropping chips
// leaves a count the model's tensor-parallel scheme cannot split
// across (more chips than heads never happens here, but a GQA model
// can lose divisibility), the system shrinks to the largest legal
// chip count at or below the survivor count — the realistic recovery:
// re-partition onto the biggest usable subset and idle the rest.
func Degrade(sys core.System, cfg model.Config, faults ...Fault) (core.System, []int, error) {
	out, remap, err := Perturb(sys, faults...)
	if err != nil {
		return core.System{}, nil, err
	}
	counts := explore.LegalChipCounts(cfg, out.Chips)
	if len(counts) == 0 {
		return core.System{}, nil, fmt.Errorf("resilience: no legal chip count at or below %d survivors", out.Chips)
	}
	if legal := counts[len(counts)-1]; legal != out.Chips {
		out.Chips = legal
	}
	return out, remap, nil
}

// Study is one resilience-margin measurement: a pristine system is
// tuned, a fault degrades it, and the stale plan races the re-tuned
// one on the degraded board.
type Study struct {
	// Faults is what happened to the board; Chips / DegradedChips the
	// chip counts before and after (they differ when a chip drops).
	Faults        []Fault
	Chips         int
	DegradedChips int
	// Pristine is the session autotune on the healthy board — its
	// Plan is the stale plan the static fleet keeps serving.
	Pristine *explore.SessionResult
	// Replan is the degraded-board comparison: stale vs re-tuned vs
	// uniform baselines, with the resilience margin.
	Replan *explore.ReplanResult
}

// ReplanStudy measures the resilience margin of one fault scenario:
// tune the pristine system, apply the faults, and compare serving the
// stale plan on the degraded board against re-planning for it. The
// returned study's Replan.MarginCycles is the headline number — how
// much latency the static fleet pays before re-planning, >= 1 by
// construction (+Inf when the stale plan no longer validates).
func ReplanStudy(sys core.System, cfg model.Config, faults []Fault, opts explore.SessionOptions) (*Study, error) {
	pristine, err := explore.AutotuneSession(sys, cfg, opts)
	if err != nil {
		return nil, fmt.Errorf("resilience: pristine autotune: %w", err)
	}
	degraded, _, err := Degrade(sys, cfg, faults...)
	if err != nil {
		return nil, err
	}
	replan, err := explore.ReplanSession(degraded, cfg, pristine.Plan, opts)
	if err != nil {
		return nil, err
	}
	return &Study{
		Faults:        faults,
		Chips:         sys.Chips,
		DegradedChips: degraded.Chips,
		Pristine:      pristine,
		Replan:        replan,
	}, nil
}
