// Package perfsim executes a lowered deployment on the discrete-event
// substrate and reports what the paper extracts from GVSoC: total
// runtime in cycles, the runtime breakdown (computation, chip-to-chip
// link, L3↔L2 DMA, L2↔L1 DMA), and per-chip byte counters for the
// energy model.
//
// Modeling conventions (matching the paper's stacked-bar accounting):
// compute, L2↔L1 tile movement, and exposed L3 streaming serialize
// within a phase. Collective hops come from interconnect.Schedules —
// the simulator executes whatever hop lists the selected topologies
// lowered to, holding no structural knowledge of its own. Each
// synchronization carries a collective.SyncClass (prefill vs decode,
// MHSA vs FFN, the replicated exchanges), and a per-sync collective
// plan (deploy.Options.SyncPlan) may bind classes to different
// topologies: every bound shape is lowered once up front, and each
// sync executes its own class's schedule, with the synchronization
// count and link accounting split per class. Every (from, to) chip pair used by a schedule is an
// independent full-duplex link (the Fig. 1 hub wiring generalized)
// driven at its own edge's link class — bandwidth, setup, pJ/B —
// resolved from the platform's network description, so mixed MIPI/SPI
// boards and clustered backhauls simulate natively; partials
// converging on a chip arrive concurrently while that chip's
// accumulations serialize on its cluster.
// Collective payloads move in tiles, letting the broadcast of early
// tiles overlap the reduction of later ones.
//
// The simulator is allocation-free on its hot path: all per-run
// scratch state lives in a reusable Sim arena recycled through a
// sync.Pool, and only the returned Result (copied out of the arena) is
// freshly allocated per run.
package perfsim

import (
	"fmt"
	"sync"

	"mcudist/internal/collective"
	"mcudist/internal/deploy"
	"mcudist/internal/eventsim"
	"mcudist/internal/hw"
	"mcudist/internal/interconnect"
	"mcudist/internal/kernels"
	"mcudist/internal/memsim"
	"mcudist/internal/model"
	"mcudist/internal/partition"
	"mcudist/internal/trace"
)

// ChipStats accumulates one chip's activity.
type ChipStats struct {
	// Cycle buckets (busy time by cause).
	ComputeCycles float64
	L3Cycles      float64
	L2L1Cycles    float64
	C2CCycles     float64
	// Byte counters for the energy model.
	L3Bytes      int64 // all off-chip traffic (weights + spill)
	L3SpillBytes int64 // activation-spill share of L3Bytes
	L2L1Bytes    int64
	C2CSentBytes int64
	// C2CCyclesByClass / C2CSentBytesByClass split the chip-to-chip
	// totals per link class, indexed like Result.LinkClasses — the
	// axis heterogeneous networks (fast local links, slow backhaul)
	// are analyzed and billed on. A uniform network has exactly one
	// class, so index 0 equals the totals.
	C2CCyclesByClass    []float64
	C2CSentBytesByClass []int64
	// End is the chip's final timestamp.
	End float64
}

// Breakdown attributes total runtime to the paper's four categories,
// measured on the root chip's timeline (waits for remote partials are
// chip-to-chip time).
type Breakdown struct {
	Compute float64
	L2L1    float64
	L3      float64
	C2C     float64
}

// Total returns the summed breakdown, equal to the runtime.
func (b Breakdown) Total() float64 { return b.Compute + b.L2L1 + b.L3 + b.C2C }

// ClassStats aggregates the whole system's collective activity of one
// synchronization class — the axis a per-sync collective plan is
// chosen and judged on. C2CCycles is link busy time summed across
// chips (the per-class share of the ChipStats.C2CCycles totals), not
// the root-timeline chip-to-chip share of Breakdown.
type ClassStats struct {
	// Class is the synchronization class these counters cover.
	Class collective.SyncClass
	// Topology is the schedule shape the class's synchronizations
	// executed: the plan's binding, or the run topology.
	Topology hw.Topology
	// Syncs counts the synchronizations of this class.
	Syncs int
	// C2CCycles / C2CSentBytes total the class's link activity across
	// chips.
	C2CCycles    float64
	C2CSentBytes int64
	// C2CSentBytesByLink splits the class's bytes per link class,
	// indexed like Result.LinkClasses — what the energy model bills
	// each edge's own pJ/B on.
	C2CSentBytesByLink []int64
}

// Result is the outcome of one simulated forward pass.
type Result struct {
	TotalCycles float64
	Breakdown   Breakdown
	PerChip     []ChipStats
	// Syncs is the number of chip synchronizations executed (the
	// paper's scheme: 2 per block).
	Syncs int
	// ByClass splits the synchronization and link accounting per
	// synchronization class, in class order, covering only classes
	// that executed at least once. Pipeline handoffs are point-to-point
	// transfers outside any collective and appear in no class.
	ByClass []ClassStats
	// TreeDepth is the serialized hop depth of the RUN topology's
	// reduce schedule (the tree's depth; 1 for star and
	// fully-connected, N-1 for the ring). A per-sync plan's rebound
	// classes execute their own schedules — see ByClass for the
	// shapes that actually ran.
	TreeDepth int
	// Topology is the run topology (HW.Topology); classes rebound by
	// a per-sync plan report their own shape in ByClass.
	Topology hw.Topology
	// LinkClasses lists the distinct link classes the run's transfers
	// crossed, in first-use order; the per-class counters in ChipStats
	// are indexed against it. The energy model charges each class's
	// own pJ/B.
	LinkClasses []hw.LinkClass
	// TotalC2CBytes is the summed link traffic.
	TotalC2CBytes int64
}

// classNone marks link transfers outside any collective
// synchronization (pipeline handoffs).
const classNone = collective.SyncClass(-1)

// classAccum accumulates one synchronization class's activity while
// the simulation runs.
type classAccum struct {
	topology hw.Topology
	syncs    int
	cycles   float64
	bytes    int64
	// byLink is indexed like Sim.classes (carved full-width from the
	// arena once the class axis is final).
	byLink []int64
}

// Sim is a reusable simulation arena: one Sim owns every piece of
// per-run scratch state — the event engine, the chip and link
// resources, the per-(chip, chunk) readiness matrices, the per-chip
// and per-class accumulators, the tile buffers — and recycles all of
// it across runs, so repeated simulations (sweeps, autotuning probes,
// fleet step pricing) allocate only their Results. The package-level
// Run/RunTraced draw Sims from an internal sync.Pool; construct one
// with NewSim to pin an arena to a caller instead.
//
// A Sim is not safe for concurrent use. Results it returns are copied
// out of the arena into fresh exact-size allocations, so they stay
// valid (and immutable-shareable, as evalpool requires) across later
// runs of the same Sim.
type Sim struct {
	d *deploy.Deployment
	// sched is the run topology's schedule. lows holds it (always at
	// index 0) plus one lowered schedule per topology the collective
	// plan binds, each with its hops' class ids interned once at
	// setup, so the per-sync hop loops index the class axis directly
	// instead of hashing a LinkClass per hop; scheds maps a bound
	// topology to its index in lows.
	sched  *interconnect.Schedule
	lows   []loweredSched
	scheds map[hw.Topology]int32
	// curClass is the synchronization class currently executing
	// (classNone outside collectives), the axis hopOn attributes link
	// activity to.
	curClass collective.SyncClass
	classAcc [collective.NumSyncClasses]classAccum
	eng      eventsim.Engine
	// chipRes densely backs the per-chip exclusive devices; cluster,
	// dma, and io are its thirds. linkRes holds one full-duplex
	// resource per directed chip pair, indexed from*n+to (the hot-path
	// replacement for a per-pair map of pointers).
	chipRes []eventsim.Resource
	cluster []eventsim.Resource
	dma     []eventsim.Resource
	io      []eventsim.Resource
	linkRes []eventsim.Resource
	n       int
	// classes/classID intern the distinct link classes transfers
	// cross (schedule classes first, pipeline-chain classes in chain
	// order), defining the per-class accounting axis. The axis is
	// complete before the simulation starts: every schedule lists its
	// hops' classes and the pipeline chain is resolved up front.
	classes []hw.LinkClass
	classID map[hw.LinkClass]int
	// pipeHops is the routed pipeline handoff chain (pipeline strategy
	// only), flattened in chain order with interned class ids; the
	// stage boundary c -> c+1 spans pipeHops[pipeOff[c]:pipeOff[c+1]].
	// On a fully wired network every boundary is the single direct hop
	// the simulator always took; on sparse or degraded wirings a
	// boundary routes multi-hop through surviving chips.
	pipeHops []pipeHop
	pipeOff  []int32
	stats    []ChipStats
	// chipClassCycles/chipClassBytes back the per-chip per-class
	// counters (n × len(classes), carved into stats[i]); accByLink
	// backs the per-class byLink accumulators the same way.
	chipClassCycles []float64
	chipClassBytes  []int64
	accByLink       []int64
	syncs           int
	commTile        int64
	tl              *trace.Timeline
	// sync/strategy scratch: flat per-(chip, chunk) readiness
	// matrices, ping-pong arrival buffers (alternating so a caller's
	// previous arrival slice stays valid while the next sync reads
	// it), phase timelines, and payload tile buffers.
	partial  []float64
	has      []float64
	syncA    []float64
	syncB    []float64
	flip     bool
	phaseBuf []float64
	tiles    []int64
	bcast    []int64

	// linkGen[i] records the generation that last initialized
	// linkRes[i]; gen is bumped per run, so links are re-initialized
	// lazily on first touch instead of sweeping all n*n slots — a run
	// only ever uses the topology's edges, a small fraction of the
	// dense pair matrix.
	linkGen []uint32
	gen     uint32

	// Hardware scalars the per-kernel and per-hop paths read on every
	// call, cached flat at setup so the hot path never copies the
	// platform struct.
	freqHz     float64
	dmaL2BPC   float64
	dmaL2Setup int
	dmaL3BPC   float64
	dmaL3Setup int
	l1Tile     int64
	strChip    int
	strFactor  float64
	degChip    int
	degFactor  float64

	// Hierarchical memory model state: when the platform enables it,
	// off-chip transfers are priced on the DRAM channel (memCh) and
	// streamed GEMMs execute tile-by-tile (execTiled) over the
	// tileRing scratch that tracks stream-buffer slot drain times.
	memEnabled bool
	memCh      memsim.Channel
	tileRing   []float64
}

// loweredSched is one schedule bound for this run plus the run-local
// interned id of every hop's link class, resolved once at setup.
type loweredSched struct {
	sc     *interconnect.Schedule
	reduce []int32 // class id per sc.Reduce hop
	bcast  []int32 // class id per sc.Broadcast hop
}

// pipeHop is one lowered hop of the routed pipeline handoff chain: a
// directed edge with its interned accounting-class id.
type pipeHop struct {
	from, to int32
	class    int32
}

// NewSim returns an empty arena. The zero Sim is ready to use; every
// run sizes the scratch to its deployment.
func NewSim() *Sim { return &Sim{} }

// simPool recycles arenas across the package-level entry points:
// concurrent evaluations (the evalpool workers) each borrow a Sim for
// the duration of one run.
var simPool = sync.Pool{New: func() any { return NewSim() }}

// classIndex interns a link class into the per-class accounting axis.
func (s *Sim) classIndex(c hw.LinkClass) int {
	if id, ok := s.classID[c]; ok {
		return id
	}
	id := len(s.classes)
	s.classes = append(s.classes, c)
	s.classID[c] = id
	return id
}

// link returns the exclusive resource of the directed edge from->to,
// re-initializing the slot in place the first time this run touches
// it. A run only exercises its topology's edges, so the generation
// check replaces a per-run sweep of the whole n*n matrix.
func (s *Sim) link(from, to int) *eventsim.Resource {
	idx := from*s.n + to
	if s.linkGen[idx] != s.gen {
		s.linkGen[idx] = s.gen
		s.linkRes[idx].Init(&s.eng, "")
	}
	return &s.linkRes[idx]
}

// lowerSched registers one schedule for this run: its classes join the
// accounting axis in declaration order and every hop's class id is
// resolved through the intern map once, here, instead of per sync.
func (s *Sim) lowerSched(sc *interconnect.Schedule) int32 {
	idx := int32(len(s.lows))
	if len(s.lows) < cap(s.lows) {
		s.lows = s.lows[:idx+1]
	} else {
		s.lows = append(s.lows, loweredSched{})
	}
	lo := &s.lows[idx]
	lo.sc = sc
	for _, c := range sc.Classes {
		s.classIndex(c)
	}
	lo.reduce = lo.reduce[:0]
	for i := range sc.Reduce {
		lo.reduce = append(lo.reduce, int32(s.classIndex(sc.Reduce[i].Class)))
	}
	lo.bcast = lo.bcast[:0]
	for i := range sc.Broadcast {
		lo.bcast = append(lo.bcast, int32(s.classIndex(sc.Broadcast[i].Class)))
	}
	return idx
}

func (s *Sim) span(chip int, category, label string, start, end float64) {
	if s.tl != nil && end > start {
		s.tl.Add(chip, category, label, start, end)
	}
}

// Run simulates the deployment and returns the runtime report.
func Run(d *deploy.Deployment) (*Result, error) {
	return RunTraced(d, nil)
}

// RunTraced simulates the deployment, additionally recording every
// kernel, DMA transfer, and link hop into tl (when non-nil).
func RunTraced(d *deploy.Deployment, tl *trace.Timeline) (*Result, error) {
	s := simPool.Get().(*Sim)
	res, err := s.RunTraced(d, tl)
	// Drop the per-run references before pooling so a parked arena
	// does not pin a deployment (or a timeline) alive.
	s.d = nil
	s.sched = nil
	s.tl = nil
	simPool.Put(s)
	return res, err
}

// Run simulates the deployment on this arena.
func (s *Sim) Run(d *deploy.Deployment) (*Result, error) { return s.RunTraced(d, nil) }

// RunTraced simulates the deployment on this arena, recording spans
// into tl when non-nil.
func (s *Sim) RunTraced(d *deploy.Deployment, tl *trace.Timeline) (*Result, error) {
	n := d.Plan.Chips
	var sched *interconnect.Schedule
	var err error
	if d.Plan.Strategy == partition.Pipeline {
		// The pipeline never executes the collective hops — it
		// transfers only on its handoff chain (resolved below) — so a
		// network that wires just the chain must not be rejected for
		// leaving collective edges undefined.
		sched, err = interconnect.NewBareSchedule(d.HW.Topology, n, d.HW.GroupSize)
	} else {
		// Collective schedules come from the process-wide intern cache:
		// lowering and validation run once per (network, chips,
		// topology) triple, so repeated evaluations — sweeps, frontier
		// grids, autotuning — never re-lower on the hot path. The
		// interned schedule is shared and read-only.
		sched, err = interconnect.CachedSchedule(d.HW, n)
	}
	if err != nil {
		return nil, err
	}
	commTile := int64(d.Options.CommTileBytes)
	if commTile == 0 {
		commTile = deploy.DefaultCommTileBytes
	}

	// Rebind the recycled arena to this run.
	s.d = d
	s.sched = sched
	s.curClass = classNone
	s.syncs = 0
	s.commTile = commTile
	s.tl = tl
	s.n = n
	s.flip = false
	s.eng.Reset()
	s.freqHz = d.HW.Chip.FreqHz
	s.dmaL2BPC = d.HW.Chip.DMAL2L1BytesPerCycle
	s.dmaL2Setup = d.HW.Chip.DMAL2L1SetupCycles
	s.dmaL3BPC = d.HW.Chip.DMAL3L2BytesPerCycle
	s.dmaL3Setup = d.HW.Chip.DMAL3L2SetupCycles
	s.l1Tile = int64(d.HW.Chip.L1Bytes / 2)
	s.memEnabled = d.HW.Mem.Enabled()
	if s.memEnabled {
		s.memCh = memsim.ChannelOf(d.HW)
	}
	s.strChip, s.strFactor = d.Options.StragglerChip, d.Options.StragglerFactor
	s.degChip, s.degFactor = d.Options.DegradedLinkChip, d.Options.DegradedLinkFactor
	if s.scheds == nil {
		s.scheds = make(map[hw.Topology]int32, 4)
	} else {
		clear(s.scheds)
	}
	if s.classID == nil {
		s.classID = make(map[hw.LinkClass]int, 4)
	} else {
		clear(s.classID)
	}
	s.classes = s.classes[:0]
	s.lows = s.lows[:0]

	// Seed the accounting axis with the schedule's classes so class
	// order is deterministic (first reduce hop's class is class 0)
	// regardless of which hop executes first, and resolve the run
	// schedule's per-hop class ids (lows index 0, schedFor's default).
	s.scheds[sched.Topology] = s.lowerSched(sched)
	// Resolve one schedule per topology the collective plan binds to a
	// class this run executes, each lowered and validated against the
	// network wiring up front (through the same intern cache as the run
	// schedule) — a plan routing an active class over an unwired edge
	// fails here, before any simulation runs, while a merged
	// prefill+decode plan never pays (or fails) for the other mode's
	// bindings. The run topology's schedule is reused
	// untouched, so the zero plan stays byte-identical to the
	// single-topology simulator. The pipeline strategy executes no
	// collectives and skips the lowering (its network may wire only
	// the handoff chain).
	if d.Plan.Strategy != partition.Pipeline {
		for _, cl := range collective.ActiveClasses(d.Plan.Strategy, d.Mode) {
			topo, bound := d.Options.SyncPlan.Explicit(cl)
			if !bound {
				continue
			}
			if _, ok := s.scheds[topo]; ok {
				continue
			}
			hp := d.HW
			hp.Topology = topo
			alt, err := interconnect.CachedSchedule(hp, n)
			if err != nil {
				return nil, fmt.Errorf("perfsim: collective plan: %w", err)
			}
			s.scheds[topo] = s.lowerSched(alt)
		}
	}
	if d.Plan.Strategy == partition.Pipeline {
		// The pipeline handoff chain is not part of the collective
		// schedule; it is routed and class-resolved against the network
		// up front (through the interconnect intern cache, once per
		// (network, chips) pair), so a severed chain fails before
		// simulation, like any schedule hop over an undefined edge. A
		// stage boundary whose direct edge is unwired — a sparse fabric
		// or a degraded board — executes its routed multi-hop segment;
		// on fully wired networks every segment is the single direct
		// hop, byte-identical to the legacy chain.
		chain, err := interconnect.CachedPipelineChain(d.HW.Network, n)
		if err != nil {
			return nil, fmt.Errorf("perfsim: %w", err)
		}
		s.pipeHops = s.pipeHops[:0]
		s.pipeOff = append(s.pipeOff[:0], 0)
		for c := 0; c+1 < n; c++ {
			for _, h := range chain.Segment(c) {
				s.pipeHops = append(s.pipeHops, pipeHop{
					from:  int32(h.From),
					to:    int32(h.To),
					class: int32(s.classIndex(h.Class)),
				})
			}
			s.pipeOff = append(s.pipeOff, int32(len(s.pipeHops)))
		}
	}

	// The class axis is final; carve the per-chip and per-class
	// counters full-width from the arena's backing arrays.
	nc := len(s.classes)
	s.chipClassCycles = growFloats(s.chipClassCycles, n*nc)
	s.chipClassBytes = growInts(s.chipClassBytes, n*nc)
	if cap(s.stats) < n {
		s.stats = make([]ChipStats, n)
	}
	s.stats = s.stats[:n]
	for i := 0; i < n; i++ {
		s.stats[i] = ChipStats{
			C2CCyclesByClass:    carveFloats(s.chipClassCycles, i, nc),
			C2CSentBytesByClass: carveInts(s.chipClassBytes, i, nc),
		}
	}
	s.accByLink = growInts(s.accByLink, int(collective.NumSyncClasses)*nc)
	for c := range s.classAcc {
		s.classAcc[c] = classAccum{byLink: carveInts(s.accByLink, c, nc)}
	}

	// Reusable resources: the chips' exclusive devices and one
	// full-duplex link per directed pair, re-initialized in place.
	s.chipRes = growResources(s.chipRes, 3*n)
	for i := range s.chipRes {
		s.chipRes[i].Init(&s.eng, "")
	}
	s.cluster = s.chipRes[:n]
	s.dma = s.chipRes[n : 2*n]
	s.io = s.chipRes[2*n : 3*n]
	// Link resources initialize lazily on first touch (see link): bump
	// the generation instead of sweeping the dense n*n slot matrix.
	s.gen++
	if s.gen == 0 {
		// Generation counter wrapped: restart the generation space so
		// a stale slot can never alias the live generation.
		s.gen = 1
		clear(s.linkGen)
	}
	s.linkRes = growResources(s.linkRes, n*n)
	s.linkGen = growGens(s.linkGen, n*n)

	// Synchronization scratch: readiness matrices sized for the widest
	// schedule, ping-pong arrival buffers, phase timelines.
	maxChunks := 0
	for i := range s.lows {
		if c := s.lows[i].sc.Chunks; c > maxChunks {
			maxChunks = c
		}
	}
	s.partial = growFloats(s.partial, n*maxChunks)
	s.has = growFloats(s.has, n*maxChunks)
	s.syncA = growFloats(s.syncA, n)
	s.syncB = growFloats(s.syncB, n)
	s.phaseBuf = growFloats(s.phaseBuf, 3*n)

	var end float64
	switch d.Plan.Strategy {
	case partition.TensorParallel:
		end = s.runTensorParallel()
	case partition.Replicated:
		end = s.runReplicated()
	case partition.Pipeline:
		end = s.runPipeline()
	default:
		return nil, fmt.Errorf("perfsim: unknown strategy %v", d.Plan.Strategy)
	}

	// Results escape into caches shared between callers (evalpool
	// memoizes them as immutable), so every accumulator is copied out
	// of the arena into exact-size fresh slices: the per-chip class
	// counters carve two backing arrays, one allocation each.
	res := &Result{
		TotalCycles: end,
		Syncs:       s.syncs,
		TreeDepth:   sched.Depth,
		Topology:    sched.Topology,
		LinkClasses: append([]hw.LinkClass(nil), s.classes...),
		PerChip:     make([]ChipStats, n),
	}
	cyc := make([]float64, n*nc)
	byt := make([]int64, n*nc)
	copy(cyc, s.chipClassCycles)
	copy(byt, s.chipClassBytes)
	for i := range s.stats {
		res.PerChip[i] = s.stats[i]
		res.PerChip[i].C2CCyclesByClass = carveFloats(cyc, i, nc)
		res.PerChip[i].C2CSentBytesByClass = carveInts(byt, i, nc)
		res.TotalC2CBytes += s.stats[i].C2CSentBytes
	}
	nActive := 0
	for c := range s.classAcc {
		if s.classAcc[c].syncs > 0 {
			nActive++
		}
	}
	if nActive > 0 {
		res.ByClass = make([]ClassStats, 0, nActive)
		links := make([]int64, nActive*nc)
		li := 0
		for c := collective.SyncClass(0); c < collective.NumSyncClasses; c++ {
			acc := &s.classAcc[c]
			if acc.syncs == 0 {
				continue
			}
			bl := carveInts(links, li, nc)
			copy(bl, acc.byLink)
			li++
			res.ByClass = append(res.ByClass, ClassStats{
				Class:              c,
				Topology:           acc.topology,
				Syncs:              acc.syncs,
				C2CCycles:          acc.cycles,
				C2CSentBytes:       acc.bytes,
				C2CSentBytesByLink: bl,
			})
		}
	}
	if d.Plan.Strategy == partition.Pipeline {
		// Stages run serially: the whole-system breakdown is the sum
		// of per-stage activity plus the link handoffs.
		for i := range s.stats {
			res.Breakdown.Compute += s.stats[i].ComputeCycles
			res.Breakdown.L2L1 += s.stats[i].L2L1Cycles
			res.Breakdown.L3 += s.stats[i].L3Cycles
		}
	} else {
		// The root participates in every phase and sync; gaps in its
		// timeline are waits on remote partials (chip-to-chip time).
		rb := &s.stats[sched.Root]
		res.Breakdown = Breakdown{
			Compute: rb.ComputeCycles,
			L2L1:    rb.L2L1Cycles,
			L3:      rb.L3Cycles,
		}
	}
	res.Breakdown.C2C = end - res.Breakdown.Compute - res.Breakdown.L2L1 - res.Breakdown.L3
	// Clamp floating-point residue: a system that moved no link bytes
	// has no chip-to-chip time.
	if res.Breakdown.C2C < 0 || (res.TotalC2CBytes == 0 && res.Breakdown.C2C < 1e-6*end) {
		res.Breakdown.C2C = 0
	}
	return res, nil
}

// growFloats returns a zeroed length-n slice, reusing buf's backing
// array when it is large enough.
func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

// growInts is growFloats for int64 scratch.
func growInts(buf []int64, n int) []int64 {
	if cap(buf) < n {
		return make([]int64, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

// growResources resizes a resource arena without zeroing (each
// element is re-initialized in place).
func growResources(buf []eventsim.Resource, n int) []eventsim.Resource {
	if cap(buf) < n {
		return make([]eventsim.Resource, n)
	}
	return buf[:n]
}

// growGens resizes the link-generation array without zeroing: fresh
// backing is zero (never the live generation, which starts at 1) and
// reused slots hold generations from earlier runs, which are always
// older than the current one.
func growGens(buf []uint32, n int) []uint32 {
	if cap(buf) < n {
		return make([]uint32, n)
	}
	return buf[:n]
}

// carveFloats cuts row i of width nc out of a flat backing array,
// capacity-clamped. A zero-width axis yields nil, matching the slices
// a run with no link classes historically reported.
func carveFloats(backing []float64, i, nc int) []float64 {
	if nc == 0 {
		return nil
	}
	return backing[i*nc : (i+1)*nc : (i+1)*nc]
}

// carveInts is carveFloats for int64 rows.
func carveInts(backing []int64, i, nc int) []int64 {
	if nc == 0 {
		return nil
	}
	return backing[i*nc : (i+1)*nc : (i+1)*nc]
}

// execCost runs one kernel on a chip starting no earlier than t: tile
// DMA and compute serialize, matching the stacked accounting.
func (s *Sim) execCost(chip int, t float64, cost *kernels.Cost) float64 {
	bytes := cost.TotalL2L1Bytes()
	if bytes > 0 {
		dmaT := kernels.DMATime(bytes, s.dmaL2BPC, s.dmaL2Setup, s.l1Tile)
		t = s.dma[chip].UseAfter(t, dmaT, nil)
		s.span(chip, "dma-l2l1", cost.Name, t-dmaT, t)
		s.stats[chip].L2L1Cycles += dmaT
		s.stats[chip].L2L1Bytes += bytes
	}
	if cost.Cycles > 0 {
		cycles := cost.Cycles
		if f := s.strFactor; f > 0 && chip == s.strChip {
			cycles /= f
		}
		t = s.cluster[chip].UseAfter(t, cycles, nil)
		s.span(chip, "compute", cost.Name, t-cycles, t)
		s.stats[chip].ComputeCycles += cycles
	}
	if t > s.stats[chip].End {
		s.stats[chip].End = t
	}
	return t
}

// execScaled runs a fraction of a kernel's cost (tile-level collective
// work).
func (s *Sim) execScaled(chip int, t float64, cost *kernels.Cost, frac float64) float64 {
	scaled := kernels.Cost{
		Name:        cost.Name,
		Cycles:      cost.Cycles * frac,
		ActInBytes:  int64(float64(cost.ActInBytes) * frac),
		ActOutBytes: int64(float64(cost.ActOutBytes) * frac),
	}
	return s.execCost(chip, t, &scaled)
}

// l3Time prices moving bytes over the off-chip path: the DRAM channel
// (per-burst setup + bandwidth) under the hierarchical model, the flat
// I/O-DMA accounting otherwise.
func (s *Sim) l3Time(bytes int64) float64 {
	if s.memEnabled {
		return s.memCh.TransferCycles(bytes)
	}
	return kernels.DMATime(bytes, s.dmaL3BPC, s.dmaL3Setup, s.l1Tile)
}

// l3Load streams bytes from L3 into L2 starting no earlier than t and
// returns the completion time. spill marks activation-spill traffic.
func (s *Sim) l3Load(chip int, t float64, bytes int64, spill bool) float64 {
	if bytes <= 0 {
		return t
	}
	dur := s.l3Time(bytes)
	end := s.io[chip].UseAfter(t, dur, nil)
	if s.tl != nil {
		label := "weights"
		if spill {
			label = "act-spill"
		}
		s.span(chip, "dma-l3", label, end-dur, end)
	}
	s.stats[chip].L3Cycles += dur
	s.stats[chip].L3Bytes += bytes
	if spill {
		s.stats[chip].L3SpillBytes += bytes
	}
	if end > s.stats[chip].End {
		s.stats[chip].End = end
	}
	return end
}

// l3Background charges prefetch traffic that is off the critical path:
// bytes and engine occupancy, no dependency for the caller. Returns
// the transfer duration.
func (s *Sim) l3Background(chip int, t float64, bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	dur := s.l3Time(bytes)
	end := s.io[chip].UseAfter(t, dur, nil)
	s.span(chip, "dma-l3", "prefetch", end-dur, end)
	s.stats[chip].L3Bytes += bytes
	return dur
}

// phase executes a kernel list with optional synchronous L3 traffic
// (TierStreamed weights + activation spill), serialized before the
// compute as on a capacity-starved chip. plans, when non-nil, is the
// index-parallel tile-plan list of the hierarchical memory model:
// planned kernels execute tile-by-tile through the DRAM channel
// instead of the monolithic execCost path.
func (s *Sim) phase(chip int, t float64, ops []kernels.Cost, plans []*memsim.Plan, exposedL3 int64, spillShare int64) float64 {
	if exposedL3 > 0 {
		weightPart := exposedL3 - spillShare
		if weightPart > 0 {
			t = s.l3Load(chip, t, weightPart, false)
		}
		if spillShare > 0 {
			t = s.l3Load(chip, t, spillShare, true)
		}
	}
	for i := range ops {
		if plans != nil && plans[i] != nil {
			t = s.execTiled(chip, t, &ops[i], plans[i])
		} else {
			t = s.execCost(chip, t, &ops[i])
		}
	}
	return t
}

// execTiled runs one weight-streaming GEMM tile-by-tile: each tile's
// DRAM fetch occupies the chip's io engine (gated by the channel being
// free and by its stream-buffer slot having drained, Depth+1 slots),
// then its L2→L1 DMA and compute+stall serialize after the previous
// tile's work — exactly the recurrence Plan.Makespan evaluates in
// closed form, so with a free chip the elapsed time equals the plan
// makespan (pinned by a test; the identity is what lets the autotuner
// rank tilings without simulating).
//
// Accounting: per-tile DMA and compute are billed to their own
// breakdown buckets, bank-contention stalls and the fetch latency the
// prefetch failed to hide are billed as off-chip (L3) time, and the
// whole weight matrix is billed once as off-chip bytes — so the root
// chip's buckets still sum exactly to its elapsed time.
func (s *Sim) execTiled(chip int, t float64, cost *kernels.Cost, p *memsim.Plan) float64 {
	slots := p.Depth + 1
	ring := growFloats(s.tileRing, slots)
	s.tileRing = ring
	start := t
	prevCd := t
	var charged float64
	st := &s.stats[chip]
	for i := 0; i < p.Tiles; i++ {
		ready := start
		if r := ring[i%slots]; r > ready {
			ready = r
		}
		fEnd := s.io[chip].UseAfter(ready, p.Fetch[i], nil)
		if s.tl != nil {
			s.span(chip, "dma-l3", "tile-fetch", fEnd-p.Fetch[i], fEnd)
		}
		dEnd := s.dma[chip].UseAfter(maxF(fEnd, prevCd), p.DMA[i], nil)
		s.span(chip, "dma-l2l1", cost.Name, dEnd-p.DMA[i], dEnd)
		comp := p.Comp[i]
		if f := s.strFactor; f > 0 && chip == s.strChip {
			comp /= f
		}
		work := comp + p.Stall[i]
		cEnd := s.cluster[chip].UseAfter(dEnd, work, nil)
		s.span(chip, "compute", cost.Name, cEnd-work, cEnd)
		st.L2L1Cycles += p.DMA[i]
		st.L2L1Bytes += p.L2L1Bytes[i]
		st.ComputeCycles += comp
		st.L3Cycles += p.Stall[i]
		charged += p.DMA[i] + comp + p.Stall[i]
		ring[i%slots] = cEnd
		prevCd = cEnd
	}
	st.L3Bytes += p.WeightBytes
	if exposed := (prevCd - start) - charged; exposed > 0 {
		st.L3Cycles += exposed
	}
	if prevCd > st.End {
		st.End = prevCd
	}
	return prevCd
}

// hopOn moves payload across one directed link resource of the given
// interned link class — each edge transfers at its own class's rate
// and setup cost, which is what lets one schedule mix fast local
// links with a slow backhaul. Links touching a degraded chip (failure
// injection) transfer at the configured fraction of nominal
// bandwidth.
func (s *Sim) hopOn(link *eventsim.Resource, from, to int, ready float64, payload int64, id int32) float64 {
	dur := s.classes[id].TransferCycles(s.freqHz, payload)
	if f := s.degFactor; f > 0 && (from == s.degChip || to == s.degChip) {
		dur /= f
	}
	end := link.UseAfter(ready, dur, nil)
	if s.tl != nil {
		// Each tree edge is its own full-duplex PHY: trace it as its
		// own exclusive resource. The labels are formatted only on the
		// traced (cold) path — they were the hot path's single biggest
		// allocation source.
		s.span(from, fmt.Sprintf("link%d-%d", from, to), fmt.Sprintf("%d->%d", from, to), end-dur, end)
	}
	st := &s.stats[from]
	st.C2CCycles += dur
	st.C2CSentBytes += payload
	st.C2CCyclesByClass[id] += dur
	st.C2CSentBytesByClass[id] += payload
	if s.curClass != classNone {
		acc := &s.classAcc[s.curClass]
		acc.cycles += dur
		acc.bytes += payload
		acc.byLink[id] += payload
	}
	if end > st.End {
		st.End = end
	}
	if end > s.stats[to].End {
		s.stats[to].End = end
	}
	return end
}

// appendTiles cuts a payload into tiles of at most commTile bytes,
// appending into the caller's scratch buffer.
func appendTiles(buf []int64, payload, commTile int64) []int64 {
	if payload <= 0 {
		return append(buf, 0)
	}
	for payload > 0 {
		t := payload
		if t > commTile {
			t = commTile
		}
		buf = append(buf, t)
		payload -= t
	}
	return buf
}

// schedFor resolves the schedule a synchronization class executes:
// the collective plan's binding, or the run topology's schedule (lows
// index 0). Every schedule a plan can select was lowered up front in
// RunTraced.
func (s *Sim) schedFor(class collective.SyncClass) *loweredSched {
	if topo, ok := s.d.Options.SyncPlan.Explicit(class); ok {
		return &s.lows[s.scheds[topo]]
	}
	return &s.lows[0]
}

// sync performs one collective synchronization — reduce + root work +
// broadcast — by executing the hop schedule its class is bound to,
// pipelined over payload tiles. ready[i] is when chip i's partial is
// available; the returned slice is when each chip holds the broadcast
// result. rootWork runs (tile- and share-proportionally) on the
// schedule's finalizing chips between a tile's reduction and its
// broadcast.
//
// Readiness is tracked per (chip, chunk): partial[c*chunks+q] is when
// chip c's accumulator for chunk q last settled, has[c*chunks+q] when
// chip c received the finalized chunk q. Whole-payload topologies use
// a single chunk, reducing to the original tree recursion; the ring's
// 2(N-1)-step chunk rotation needs the extra axis so a chip's send of
// one chunk never waits on its concurrent receive of another.
//
// The returned arrival slice is arena scratch: syncs alternate between
// two buffers, so it stays valid across exactly one subsequent sync —
// the only lifetime the phase loops need.
func (s *Sim) sync(class collective.SyncClass, ready []float64, reducePayload, bcastPayload int64, rootWork []kernels.Cost) []float64 {
	s.syncs++
	n := s.d.Plan.Chips
	lo := s.schedFor(class)
	sc := lo.sc
	acc := &s.classAcc[class]
	acc.topology = sc.Topology
	acc.syncs++
	s.curClass = class
	defer func() { s.curClass = classNone }()

	s.tiles = appendTiles(s.tiles[:0], reducePayload, s.commTile)
	tiles := s.tiles
	nt := len(tiles)
	bcastTiles := appendTiles(s.bcast[:0], bcastPayload, s.commTile)
	// Align tile counts (reduce fraction governs; broadcast payload
	// is split proportionally).
	for len(bcastTiles) < nt {
		bcastTiles = append(bcastTiles, 0)
	}
	if len(bcastTiles) > nt {
		merged := int64(0)
		for _, b := range bcastTiles[nt-1:] {
			merged += b
		}
		bcastTiles = append(bcastTiles[:nt-1], merged)
	}
	s.bcast = bcastTiles

	// arrive[c] tracks when chip c holds all broadcast tiles (its
	// start time for the next phase) — the ping-pong half the previous
	// sync did not return.
	arrive := s.syncB
	if s.flip = !s.flip; s.flip {
		arrive = s.syncA
	}
	copy(arrive, ready)

	chunks := sc.Chunks
	partial := s.partial
	has := s.has
	for k := 0; k < nt; k++ {
		frac := 1.0 / float64(nt)
		for c := 0; c < n; c++ {
			for q := 0; q < chunks; q++ {
				partial[c*chunks+q] = ready[c]
				has[c*chunks+q] = 0
			}
		}
		for i := range sc.Reduce {
			h := &sc.Reduce[i]
			start := partial[h.From*chunks+h.Chunk]
			if !h.FromAccumulated {
				// All-to-all sends the original partial; only the
				// receiver accumulates.
				start = ready[h.From]
			}
			end := s.hopOn(s.link(h.From, h.To), h.From, h.To, start,
				interconnect.ScalePayload(tiles[k], h.Frac), lo.reduce[i])
			addEnd := s.execScaled(h.To, maxF(end, partial[h.To*chunks+h.Chunk]), &s.d.ReduceAdd, frac*h.Frac)
			partial[h.To*chunks+h.Chunk] = addEnd
		}
		for _, f := range sc.Final {
			t := partial[f.Chip*chunks+f.Chunk]
			for i := range rootWork {
				t = s.execScaled(f.Chip, t, &rootWork[i], frac*f.Frac)
			}
			if t > arrive[f.Chip] {
				arrive[f.Chip] = t
			}
			has[f.Chip*chunks+f.Chunk] = t
		}
		for i := range sc.Broadcast {
			h := &sc.Broadcast[i]
			end := s.hopOn(s.link(h.From, h.To), h.From, h.To, has[h.From*chunks+h.Chunk],
				interconnect.ScalePayload(bcastTiles[k], h.Frac), lo.bcast[i])
			if end > has[h.To*chunks+h.Chunk] {
				has[h.To*chunks+h.Chunk] = end
			}
			if end > arrive[h.To] {
				arrive[h.To] = end
			}
		}
	}
	return arrive
}

func (s *Sim) runTensorParallel() float64 {
	n := s.d.Plan.Chips
	blocks := s.d.Chips[0].Blocks
	ready := s.phaseBuf[0:n]
	blockStart := s.phaseBuf[n : 2*n]
	phaseEnd := s.phaseBuf[2*n : 3*n]

	// The block's two synchronizations, classed by mode: [MHSA, FFN]
	// in prefill or decode flavor.
	cls := collective.ActiveClasses(partition.TensorParallel, s.d.Mode)

	for b := 0; b < blocks; b++ {
		copy(blockStart, ready)

		for c := 0; c < n; c++ {
			cd := &s.d.Chips[c]
			t := ready[c]
			if cd.Tier == deploy.TierResidentSingle {
				// Next block's weights load synchronously between
				// blocks.
				t = s.l3Load(c, t, cd.BlockLoadBytes, false)
			}
			spill := cd.ExposedMHSABytes - s.weightPartOf(cd, true)
			phaseEnd[c] = s.phase(c, t, cd.MHSA, cd.MHSAStream, cd.ExposedMHSABytes, spill)
		}
		afterMHSA := s.sync(cls[0], phaseEnd, s.d.ReducePayload, s.d.BcastPayload, s.d.RootSync)

		for c := 0; c < n; c++ {
			cd := &s.d.Chips[c]
			spill := cd.ExposedFCBytes - s.weightPartOf(cd, false)
			phaseEnd[c] = s.phase(c, afterMHSA[c], cd.FC, cd.FCStream, cd.ExposedFCBytes, spill)
		}
		ready = s.sync(cls[1], phaseEnd, s.d.ReducePayload, s.d.BcastPayload, s.d.RootSync)

		// Double-buffered prefetch of the next block's weights:
		// energy always, runtime only under the exposure ablation.
		for c := 0; c < n; c++ {
			cd := &s.d.Chips[c]
			if cd.Tier != deploy.TierDoubleBuffered {
				continue
			}
			dur := s.l3Background(c, blockStart[c], cd.StreamBytesPerBlock)
			if s.d.Options.PrefetchExposed {
				if exposed := dur - (ready[c] - blockStart[c]); exposed > 0 {
					s.stats[c].L3Cycles += exposed
					ready[c] += exposed
					if ready[c] > s.stats[c].End {
						s.stats[c].End = ready[c]
					}
				}
			}
		}
	}
	return maxAll(ready)
}

// weightPartOf returns the weight share of a phase's exposed L3 bytes.
// Zero under the hierarchical memory model: streamed weights execute
// through their tile plans, so the exposed bytes are pure spill.
func (s *Sim) weightPartOf(cd *deploy.ChipDeploy, mhsa bool) int64 {
	if cd.Tier != deploy.TierStreamed || s.memEnabled {
		return 0
	}
	var mw, fw int64
	for _, op := range cd.MHSA {
		mw += op.WeightBytes
	}
	for _, op := range cd.FC {
		fw += op.WeightBytes
	}
	total := mw + fw
	if total == 0 {
		return 0
	}
	if mhsa {
		return cd.StreamBytesPerBlock * mw / total
	}
	return cd.StreamBytesPerBlock * fw / total
}

func (s *Sim) runReplicated() float64 {
	n := s.d.Plan.Chips
	blocks := s.d.Chips[0].Blocks
	cfg := s.d.Plan.Config
	sq := queryRowsOf(s.d)
	active := 0
	for c := 0; c < n; c++ {
		if len(s.d.Chips[c].MHSA) > 0 {
			active++
		}
	}
	// Context exchange payload: each chip's keys/values for its rows;
	// output exchange payload: its output rows.
	rows := (sq + n - 1) / n
	kvPayload := int64(rows) * int64(2*cfg.P) * int64(cfg.ActBytes)
	outPayload := int64(rows) * int64(cfg.E) * int64(cfg.ActBytes)

	ready := s.phaseBuf[0:n]
	phaseEnd := s.phaseBuf[n : 2*n]
	for b := 0; b < blocks; b++ {
		for c := 0; c < n; c++ {
			cd := &s.d.Chips[c]
			t := ready[c]
			if cd.Tier == deploy.TierResidentSingle {
				t = s.l3Load(c, t, cd.BlockLoadBytes, false)
			}
			spill := cd.ExposedMHSABytes - s.weightPartOf(cd, true)
			phaseEnd[c] = s.phase(c, t, cd.MHSA, cd.MHSAStream, cd.ExposedMHSABytes, spill)
		}
		if active > 1 {
			// Two synchronizations per block: K/V exchange before
			// attention and output exchange after the block.
			mid := s.sync(collective.KVExchange, phaseEnd, kvPayload, kvPayload, nil)
			ready = s.sync(collective.OutputExchange, mid, outPayload, outPayload, nil)
		} else {
			ready = phaseEnd
		}
	}
	return maxAll(ready)
}

func (s *Sim) runPipeline() float64 {
	n := s.d.Plan.Chips
	cfg := s.d.Plan.Config
	sq := queryRowsOf(s.d)
	actPayload := int64(sq) * int64(cfg.E) * int64(cfg.ActBytes)

	t := 0.0
	for c := 0; c < n; c++ {
		cd := &s.d.Chips[c]
		for b := 0; b < cd.Blocks; b++ {
			if cd.Tier == deploy.TierResidentSingle {
				t = s.l3Load(c, t, cd.BlockLoadBytes, false)
			}
			spill := cd.ExposedMHSABytes - s.weightPartOf(cd, true)
			t = s.phase(c, t, cd.MHSA, cd.MHSAStream, cd.ExposedMHSABytes, spill)
		}
		if c+1 < n {
			// The handoff executes its routed segment serially: one
			// direct hop on fully wired networks, multi-hop through
			// surviving chips when the direct edge is missing.
			for _, h := range s.pipeHops[s.pipeOff[c]:s.pipeOff[c+1]] {
				t = s.hopOn(s.link(int(h.from), int(h.to)), int(h.from), int(h.to), t, actPayload, h.class)
			}
		}
	}
	return t
}

func queryRowsOf(d *deploy.Deployment) int {
	if d.Mode == model.Autoregressive {
		if d.Batch > 1 {
			return d.Batch
		}
		return 1
	}
	return d.SeqLen
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func maxAll(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
