// Package perfsim executes a lowered deployment on the discrete-event
// substrate and reports what the paper extracts from GVSoC: total
// runtime in cycles, the runtime breakdown (computation, chip-to-chip
// link, L3↔L2 DMA, L2↔L1 DMA), and per-chip byte counters for the
// energy model.
//
// Modeling conventions (matching the paper's stacked-bar accounting):
// compute, L2↔L1 tile movement, and exposed L3 streaming serialize
// within a phase. Collective hops come from interconnect.Schedules —
// the simulator executes whatever hop lists the selected topologies
// lowered to, holding no structural knowledge of its own. Each
// synchronization carries a collective.SyncClass (prefill vs decode,
// MHSA vs FFN, the replicated exchanges), and a per-sync collective
// plan (deploy.Options.SyncPlan) may bind classes to different
// topologies: every bound shape is lowered once up front, and each
// sync executes its own class's schedule, with the synchronization
// count and link accounting split per class. Every (from, to) chip pair used by a schedule is an
// independent full-duplex link (the Fig. 1 hub wiring generalized)
// driven at its own edge's link class — bandwidth, setup, pJ/B —
// resolved from the platform's network description, so mixed MIPI/SPI
// boards and clustered backhauls simulate natively; partials
// converging on a chip arrive concurrently while that chip's
// accumulations serialize on its cluster.
// Collective payloads move in tiles, letting the broadcast of early
// tiles overlap the reduction of later ones.
package perfsim

import (
	"fmt"

	"mcudist/internal/collective"
	"mcudist/internal/deploy"
	"mcudist/internal/eventsim"
	"mcudist/internal/hw"
	"mcudist/internal/interconnect"
	"mcudist/internal/kernels"
	"mcudist/internal/model"
	"mcudist/internal/partition"
	"mcudist/internal/trace"
)

// ChipStats accumulates one chip's activity.
type ChipStats struct {
	// Cycle buckets (busy time by cause).
	ComputeCycles float64
	L3Cycles      float64
	L2L1Cycles    float64
	C2CCycles     float64
	// Byte counters for the energy model.
	L3Bytes      int64 // all off-chip traffic (weights + spill)
	L3SpillBytes int64 // activation-spill share of L3Bytes
	L2L1Bytes    int64
	C2CSentBytes int64
	// C2CCyclesByClass / C2CSentBytesByClass split the chip-to-chip
	// totals per link class, indexed like Result.LinkClasses — the
	// axis heterogeneous networks (fast local links, slow backhaul)
	// are analyzed and billed on. A uniform network has exactly one
	// class, so index 0 equals the totals.
	C2CCyclesByClass    []float64
	C2CSentBytesByClass []int64
	// End is the chip's final timestamp.
	End float64
}

// Breakdown attributes total runtime to the paper's four categories,
// measured on the root chip's timeline (waits for remote partials are
// chip-to-chip time).
type Breakdown struct {
	Compute float64
	L2L1    float64
	L3      float64
	C2C     float64
}

// Total returns the summed breakdown, equal to the runtime.
func (b Breakdown) Total() float64 { return b.Compute + b.L2L1 + b.L3 + b.C2C }

// ClassStats aggregates the whole system's collective activity of one
// synchronization class — the axis a per-sync collective plan is
// chosen and judged on. C2CCycles is link busy time summed across
// chips (the per-class share of the ChipStats.C2CCycles totals), not
// the root-timeline chip-to-chip share of Breakdown.
type ClassStats struct {
	// Class is the synchronization class these counters cover.
	Class collective.SyncClass
	// Topology is the schedule shape the class's synchronizations
	// executed: the plan's binding, or the run topology.
	Topology hw.Topology
	// Syncs counts the synchronizations of this class.
	Syncs int
	// C2CCycles / C2CSentBytes total the class's link activity across
	// chips.
	C2CCycles    float64
	C2CSentBytes int64
	// C2CSentBytesByLink splits the class's bytes per link class,
	// indexed like Result.LinkClasses — what the energy model bills
	// each edge's own pJ/B on.
	C2CSentBytesByLink []int64
}

// Result is the outcome of one simulated forward pass.
type Result struct {
	TotalCycles float64
	Breakdown   Breakdown
	PerChip     []ChipStats
	// Syncs is the number of chip synchronizations executed (the
	// paper's scheme: 2 per block).
	Syncs int
	// ByClass splits the synchronization and link accounting per
	// synchronization class, in class order, covering only classes
	// that executed at least once. Pipeline handoffs are point-to-point
	// transfers outside any collective and appear in no class.
	ByClass []ClassStats
	// TreeDepth is the serialized hop depth of the RUN topology's
	// reduce schedule (the tree's depth; 1 for star and
	// fully-connected, N-1 for the ring). A per-sync plan's rebound
	// classes execute their own schedules — see ByClass for the
	// shapes that actually ran.
	TreeDepth int
	// Topology is the run topology (HW.Topology); classes rebound by
	// a per-sync plan report their own shape in ByClass.
	Topology hw.Topology
	// LinkClasses lists the distinct link classes the run's transfers
	// crossed, in first-use order; the per-class counters in ChipStats
	// are indexed against it. The energy model charges each class's
	// own pJ/B.
	LinkClasses []hw.LinkClass
	// TotalC2CBytes is the summed link traffic.
	TotalC2CBytes int64
}

// classNone marks link transfers outside any collective
// synchronization (pipeline handoffs).
const classNone = collective.SyncClass(-1)

// classAccum accumulates one synchronization class's activity while
// the simulation runs.
type classAccum struct {
	topology hw.Topology
	syncs    int
	cycles   float64
	bytes    int64
	// byLink is indexed like sim.classes (grown on demand, padded to
	// the full axis at result assembly).
	byLink []int64
}

type sim struct {
	d *deploy.Deployment
	// sched is the run topology's schedule; scheds additionally holds
	// one lowered schedule per topology the collective plan binds, so
	// each synchronization executes the schedule of its own class.
	sched  *interconnect.Schedule
	scheds map[hw.Topology]*interconnect.Schedule
	// curClass is the synchronization class currently executing
	// (classNone outside collectives), the axis hopOn attributes link
	// activity to.
	curClass collective.SyncClass
	classAcc [collective.NumSyncClasses]classAccum
	eng      *eventsim.Engine
	cluster  []*eventsim.Resource
	dma      []*eventsim.Resource
	io       []*eventsim.Resource
	// links holds one full-duplex resource per directed chip pair the
	// schedule uses, created on demand.
	links map[[2]int]*eventsim.Resource
	// classes/classID intern the distinct link classes transfers
	// cross (schedule classes first, pipeline-chain classes as they
	// appear), defining the per-class accounting axis.
	classes []hw.LinkClass
	classID map[hw.LinkClass]int
	// pipeClasses[c] is the resolved class of the pipeline handoff
	// edge c -> c+1 (pipeline strategy only).
	pipeClasses []hw.LinkClass
	stats       []ChipStats
	syncs       int
	commTile    int64
	tl          *trace.Timeline
}

// classIndex interns a link class into the per-class accounting axis.
func (s *sim) classIndex(c hw.LinkClass) int {
	if id, ok := s.classID[c]; ok {
		return id
	}
	id := len(s.classes)
	s.classes = append(s.classes, c)
	s.classID[c] = id
	return id
}

// link returns the exclusive resource of the directed edge from->to.
func (s *sim) link(from, to int) *eventsim.Resource {
	key := [2]int{from, to}
	if r, ok := s.links[key]; ok {
		return r
	}
	r := eventsim.NewResource(s.eng, fmt.Sprintf("link%d-%d", from, to))
	s.links[key] = r
	return r
}

func (s *sim) span(chip int, category, label string, start, end float64) {
	if s.tl != nil && end > start {
		s.tl.Add(chip, category, label, start, end)
	}
}

// Run simulates the deployment and returns the runtime report.
func Run(d *deploy.Deployment) (*Result, error) {
	return RunTraced(d, nil)
}

// RunTraced simulates the deployment, additionally recording every
// kernel, DMA transfer, and link hop into tl (when non-nil).
func RunTraced(d *deploy.Deployment, tl *trace.Timeline) (*Result, error) {
	n := d.Plan.Chips
	var sched *interconnect.Schedule
	var err error
	if d.Plan.Strategy == partition.Pipeline {
		// The pipeline never executes the collective hops — it
		// transfers only on its handoff chain (resolved below) — so a
		// network that wires just the chain must not be rejected for
		// leaving collective edges undefined.
		sched, err = interconnect.NewBareSchedule(d.HW.Topology, n, d.HW.GroupSize)
	} else {
		// Collective schedules come from the process-wide intern cache:
		// lowering and validation run once per (network, chips,
		// topology) triple, so repeated evaluations — sweeps, frontier
		// grids, autotuning — never re-lower on the hot path. The
		// interned schedule is shared and read-only.
		sched, err = interconnect.CachedSchedule(d.HW, n)
	}
	if err != nil {
		return nil, err
	}
	commTile := int64(d.Options.CommTileBytes)
	if commTile == 0 {
		commTile = deploy.DefaultCommTileBytes
	}
	s := &sim{
		d:        d,
		sched:    sched,
		scheds:   map[hw.Topology]*interconnect.Schedule{sched.Topology: sched},
		curClass: classNone,
		eng:      eventsim.NewEngine(),
		cluster:  make([]*eventsim.Resource, n),
		dma:      make([]*eventsim.Resource, n),
		io:       make([]*eventsim.Resource, n),
		links:    make(map[[2]int]*eventsim.Resource),
		classID:  make(map[hw.LinkClass]int),
		stats:    make([]ChipStats, n),
		commTile: commTile,
		tl:       tl,
	}
	// Seed the accounting axis with the schedule's classes so class
	// order is deterministic (first reduce hop's class is class 0)
	// regardless of which hop executes first.
	for _, c := range sched.Classes {
		s.classIndex(c)
	}
	// Resolve one schedule per topology the collective plan binds to a
	// class this run executes, each lowered and validated against the
	// network wiring up front (through the same intern cache as the run
	// schedule) — a plan routing an active class over an unwired edge
	// fails here, before any simulation runs, while a merged
	// prefill+decode plan never pays (or fails) for the other mode's
	// bindings. The run topology's schedule is reused
	// untouched, so the zero plan stays byte-identical to the
	// single-topology simulator. The pipeline strategy executes no
	// collectives and skips the lowering (its network may wire only
	// the handoff chain).
	if d.Plan.Strategy != partition.Pipeline {
		for _, cl := range collective.ActiveClasses(d.Plan.Strategy, d.Mode) {
			topo, bound := d.Options.SyncPlan.Explicit(cl)
			if !bound {
				continue
			}
			if _, ok := s.scheds[topo]; ok {
				continue
			}
			hp := d.HW
			hp.Topology = topo
			alt, err := interconnect.CachedSchedule(hp, n)
			if err != nil {
				return nil, fmt.Errorf("perfsim: collective plan: %w", err)
			}
			s.scheds[topo] = alt
			for _, c := range alt.Classes {
				s.classIndex(c)
			}
		}
	}
	for i := 0; i < n; i++ {
		s.cluster[i] = eventsim.NewResource(s.eng, fmt.Sprintf("cluster%d", i))
		s.dma[i] = eventsim.NewResource(s.eng, fmt.Sprintf("dma%d", i))
		s.io[i] = eventsim.NewResource(s.eng, fmt.Sprintf("io%d", i))
	}
	if d.Plan.Strategy == partition.Pipeline {
		// The pipeline handoff chain is not part of the collective
		// schedule; resolve its edges against the network up front so
		// an unwired chain edge fails before simulation, like any
		// schedule hop over an undefined edge.
		s.pipeClasses = make([]hw.LinkClass, n)
		for c := 0; c+1 < n; c++ {
			cls, err := d.HW.LinkFor(c, c+1)
			if err != nil {
				return nil, fmt.Errorf("perfsim: pipeline handoff %d->%d: %w", c, c+1, err)
			}
			s.pipeClasses[c] = cls
		}
	}

	var end float64
	switch d.Plan.Strategy {
	case partition.TensorParallel:
		end = s.runTensorParallel()
	case partition.Replicated:
		end = s.runReplicated()
	case partition.Pipeline:
		end = s.runPipeline()
	default:
		return nil, fmt.Errorf("perfsim: unknown strategy %v", d.Plan.Strategy)
	}

	res := &Result{
		TotalCycles: end,
		PerChip:     s.stats,
		Syncs:       s.syncs,
		TreeDepth:   sched.Depth,
		Topology:    sched.Topology,
		LinkClasses: s.classes,
	}
	for i := range s.stats {
		res.TotalC2CBytes += s.stats[i].C2CSentBytes
		// Pad the per-class counters to the full class axis: a chip
		// that never crossed a late-interned class still reports a
		// zero for it.
		for len(s.stats[i].C2CCyclesByClass) < len(s.classes) {
			s.stats[i].C2CCyclesByClass = append(s.stats[i].C2CCyclesByClass, 0)
			s.stats[i].C2CSentBytesByClass = append(s.stats[i].C2CSentBytesByClass, 0)
		}
	}
	for c := collective.SyncClass(0); c < collective.NumSyncClasses; c++ {
		acc := s.classAcc[c]
		if acc.syncs == 0 {
			continue
		}
		for len(acc.byLink) < len(s.classes) {
			acc.byLink = append(acc.byLink, 0)
		}
		res.ByClass = append(res.ByClass, ClassStats{
			Class:              c,
			Topology:           acc.topology,
			Syncs:              acc.syncs,
			C2CCycles:          acc.cycles,
			C2CSentBytes:       acc.bytes,
			C2CSentBytesByLink: acc.byLink,
		})
	}
	if d.Plan.Strategy == partition.Pipeline {
		// Stages run serially: the whole-system breakdown is the sum
		// of per-stage activity plus the link handoffs.
		for _, st := range s.stats {
			res.Breakdown.Compute += st.ComputeCycles
			res.Breakdown.L2L1 += st.L2L1Cycles
			res.Breakdown.L3 += st.L3Cycles
		}
	} else {
		// The root participates in every phase and sync; gaps in its
		// timeline are waits on remote partials (chip-to-chip time).
		rb := s.stats[sched.Root]
		res.Breakdown = Breakdown{
			Compute: rb.ComputeCycles,
			L2L1:    rb.L2L1Cycles,
			L3:      rb.L3Cycles,
		}
	}
	res.Breakdown.C2C = end - res.Breakdown.Compute - res.Breakdown.L2L1 - res.Breakdown.L3
	// Clamp floating-point residue: a system that moved no link bytes
	// has no chip-to-chip time.
	if res.Breakdown.C2C < 0 || (res.TotalC2CBytes == 0 && res.Breakdown.C2C < 1e-6*end) {
		res.Breakdown.C2C = 0
	}
	return res, nil
}

// l1TileBytes is the DMA tiling granularity into L1.
func (s *sim) l1TileBytes() int64 {
	return int64(s.d.HW.Chip.L1Bytes / 2)
}

// execCost runs one kernel on a chip starting no earlier than t: tile
// DMA and compute serialize, matching the stacked accounting.
func (s *sim) execCost(chip int, t float64, cost kernels.Cost) float64 {
	hwp := s.d.HW
	bytes := cost.TotalL2L1Bytes()
	if bytes > 0 {
		dmaT := kernels.DMATime(bytes, hwp.Chip.DMAL2L1BytesPerCycle, hwp.Chip.DMAL2L1SetupCycles, s.l1TileBytes())
		t = s.dma[chip].UseAfter(t, dmaT, nil)
		s.span(chip, "dma-l2l1", cost.Name, t-dmaT, t)
		s.stats[chip].L2L1Cycles += dmaT
		s.stats[chip].L2L1Bytes += bytes
	}
	if cost.Cycles > 0 {
		cycles := cost.Cycles
		if f := s.d.Options.StragglerFactor; f > 0 && chip == s.d.Options.StragglerChip {
			cycles /= f
		}
		t = s.cluster[chip].UseAfter(t, cycles, nil)
		s.span(chip, "compute", cost.Name, t-cycles, t)
		s.stats[chip].ComputeCycles += cycles
	}
	if t > s.stats[chip].End {
		s.stats[chip].End = t
	}
	return t
}

// execScaled runs a fraction of a kernel's cost (tile-level collective
// work).
func (s *sim) execScaled(chip int, t float64, cost kernels.Cost, frac float64) float64 {
	scaled := kernels.Cost{
		Name:        cost.Name,
		Cycles:      cost.Cycles * frac,
		ActInBytes:  int64(float64(cost.ActInBytes) * frac),
		ActOutBytes: int64(float64(cost.ActOutBytes) * frac),
	}
	return s.execCost(chip, t, scaled)
}

// l3Load streams bytes from L3 into L2 starting no earlier than t and
// returns the completion time. spill marks activation-spill traffic.
func (s *sim) l3Load(chip int, t float64, bytes int64, spill bool) float64 {
	if bytes <= 0 {
		return t
	}
	hwp := s.d.HW
	dur := kernels.DMATime(bytes, hwp.Chip.DMAL3L2BytesPerCycle, hwp.Chip.DMAL3L2SetupCycles, s.l1TileBytes())
	end := s.io[chip].UseAfter(t, dur, nil)
	label := "weights"
	if spill {
		label = "act-spill"
	}
	s.span(chip, "dma-l3", label, end-dur, end)
	s.stats[chip].L3Cycles += dur
	s.stats[chip].L3Bytes += bytes
	if spill {
		s.stats[chip].L3SpillBytes += bytes
	}
	if end > s.stats[chip].End {
		s.stats[chip].End = end
	}
	return end
}

// l3Background charges prefetch traffic that is off the critical path:
// bytes and engine occupancy, no dependency for the caller. Returns
// the transfer duration.
func (s *sim) l3Background(chip int, t float64, bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	hwp := s.d.HW
	dur := kernels.DMATime(bytes, hwp.Chip.DMAL3L2BytesPerCycle, hwp.Chip.DMAL3L2SetupCycles, s.l1TileBytes())
	end := s.io[chip].UseAfter(t, dur, nil)
	s.span(chip, "dma-l3", "prefetch", end-dur, end)
	s.stats[chip].L3Bytes += bytes
	return dur
}

// phase executes a kernel list with optional synchronous L3 traffic
// (TierStreamed weights + activation spill), serialized before the
// compute as on a capacity-starved chip.
func (s *sim) phase(chip int, t float64, ops []kernels.Cost, exposedL3 int64, spillShare int64) float64 {
	if exposedL3 > 0 {
		weightPart := exposedL3 - spillShare
		if weightPart > 0 {
			t = s.l3Load(chip, t, weightPart, false)
		}
		if spillShare > 0 {
			t = s.l3Load(chip, t, spillShare, true)
		}
	}
	for _, op := range ops {
		t = s.execCost(chip, t, op)
	}
	return t
}

// hopOn moves payload across one directed link resource of the given
// link class — each edge transfers at its own class's rate and setup
// cost, which is what lets one schedule mix fast local links with a
// slow backhaul. Links touching a degraded chip (failure injection)
// transfer at the configured fraction of nominal bandwidth.
func (s *sim) hopOn(link *eventsim.Resource, from, to int, ready float64, payload int64, class hw.LinkClass) float64 {
	dur := class.TransferCycles(s.d.HW.Chip.FreqHz, payload)
	if f := s.d.Options.DegradedLinkFactor; f > 0 && (from == s.d.Options.DegradedLinkChip || to == s.d.Options.DegradedLinkChip) {
		dur /= f
	}
	end := link.UseAfter(ready, dur, nil)
	// Each tree edge is its own full-duplex PHY: trace it as its own
	// exclusive resource.
	s.span(from, link.Name(), fmt.Sprintf("%d->%d", from, to), end-dur, end)
	id := s.classIndex(class)
	st := &s.stats[from]
	st.C2CCycles += dur
	st.C2CSentBytes += payload
	for len(st.C2CCyclesByClass) <= id {
		st.C2CCyclesByClass = append(st.C2CCyclesByClass, 0)
		st.C2CSentBytesByClass = append(st.C2CSentBytesByClass, 0)
	}
	st.C2CCyclesByClass[id] += dur
	st.C2CSentBytesByClass[id] += payload
	if s.curClass != classNone {
		acc := &s.classAcc[s.curClass]
		acc.cycles += dur
		acc.bytes += payload
		for len(acc.byLink) <= id {
			acc.byLink = append(acc.byLink, 0)
		}
		acc.byLink[id] += payload
	}
	if end > st.End {
		st.End = end
	}
	if end > s.stats[to].End {
		s.stats[to].End = end
	}
	return end
}

// splitTiles cuts a payload into tiles of at most commTile bytes.
func (s *sim) splitTiles(payload int64) []int64 {
	if payload <= 0 {
		return []int64{0}
	}
	var tiles []int64
	for payload > 0 {
		t := payload
		if t > s.commTile {
			t = s.commTile
		}
		tiles = append(tiles, t)
		payload -= t
	}
	return tiles
}

// schedFor resolves the schedule a synchronization class executes:
// the collective plan's binding, or the run topology's schedule. Every
// schedule a plan can select was lowered up front in RunTraced.
func (s *sim) schedFor(class collective.SyncClass) *interconnect.Schedule {
	if topo, ok := s.d.Options.SyncPlan.Explicit(class); ok {
		return s.scheds[topo]
	}
	return s.sched
}

// sync performs one collective synchronization — reduce + root work +
// broadcast — by executing the hop schedule its class is bound to,
// pipelined over payload tiles. ready[i] is when chip i's partial is
// available; the returned slice is when each chip holds the broadcast
// result. rootWork runs (tile- and share-proportionally) on the
// schedule's finalizing chips between a tile's reduction and its
// broadcast.
//
// Readiness is tracked per (chip, chunk): partial[c][q] is when chip
// c's accumulator for chunk q last settled, has[c][q] when chip c
// received the finalized chunk q. Whole-payload topologies use a
// single chunk, reducing to the original tree recursion; the ring's
// 2(N-1)-step chunk rotation needs the extra axis so a chip's send of
// one chunk never waits on its concurrent receive of another.
func (s *sim) sync(class collective.SyncClass, ready []float64, reducePayload, bcastPayload int64, rootWork []kernels.Cost) []float64 {
	s.syncs++
	n := s.d.Plan.Chips
	sc := s.schedFor(class)
	acc := &s.classAcc[class]
	acc.topology = sc.Topology
	acc.syncs++
	s.curClass = class
	defer func() { s.curClass = classNone }()

	tiles := s.splitTiles(reducePayload)
	nt := len(tiles)
	bcastTiles := s.splitTiles(bcastPayload)
	// Align tile counts (reduce fraction governs; broadcast payload
	// is split proportionally).
	for len(bcastTiles) < nt {
		bcastTiles = append(bcastTiles, 0)
	}
	if len(bcastTiles) > nt {
		merged := int64(0)
		for _, b := range bcastTiles[nt-1:] {
			merged += b
		}
		bcastTiles = append(bcastTiles[:nt-1], merged)
	}

	// arrive[c] tracks when chip c holds all broadcast tiles (its
	// start time for the next phase).
	arrive := make([]float64, n)
	copy(arrive, ready)

	partial := make([][]float64, n)
	has := make([][]float64, n)
	for c := 0; c < n; c++ {
		partial[c] = make([]float64, sc.Chunks)
		has[c] = make([]float64, sc.Chunks)
	}
	for k := 0; k < nt; k++ {
		frac := 1.0 / float64(nt)
		for c := 0; c < n; c++ {
			for q := 0; q < sc.Chunks; q++ {
				partial[c][q] = ready[c]
				has[c][q] = 0
			}
		}
		for _, h := range sc.Reduce {
			start := partial[h.From][h.Chunk]
			if !h.FromAccumulated {
				// All-to-all sends the original partial; only the
				// receiver accumulates.
				start = ready[h.From]
			}
			end := s.hopOn(s.link(h.From, h.To), h.From, h.To, start,
				interconnect.ScalePayload(tiles[k], h.Frac), h.Class)
			addEnd := s.execScaled(h.To, maxF(end, partial[h.To][h.Chunk]), s.d.ReduceAdd, frac*h.Frac)
			partial[h.To][h.Chunk] = addEnd
		}
		for _, f := range sc.Final {
			t := partial[f.Chip][f.Chunk]
			for _, op := range rootWork {
				t = s.execScaled(f.Chip, t, op, frac*f.Frac)
			}
			if t > arrive[f.Chip] {
				arrive[f.Chip] = t
			}
			has[f.Chip][f.Chunk] = t
		}
		for _, h := range sc.Broadcast {
			end := s.hopOn(s.link(h.From, h.To), h.From, h.To, has[h.From][h.Chunk],
				interconnect.ScalePayload(bcastTiles[k], h.Frac), h.Class)
			if end > has[h.To][h.Chunk] {
				has[h.To][h.Chunk] = end
			}
			if end > arrive[h.To] {
				arrive[h.To] = end
			}
		}
	}
	return arrive
}

func (s *sim) runTensorParallel() float64 {
	n := s.d.Plan.Chips
	blocks := s.d.Chips[0].Blocks
	ready := make([]float64, n)

	// The block's two synchronizations, classed by mode: [MHSA, FFN]
	// in prefill or decode flavor.
	cls := collective.ActiveClasses(partition.TensorParallel, s.d.Mode)

	for b := 0; b < blocks; b++ {
		blockStart := make([]float64, n)
		copy(blockStart, ready)

		phaseEnd := make([]float64, n)
		for c := 0; c < n; c++ {
			cd := &s.d.Chips[c]
			t := ready[c]
			if cd.Tier == deploy.TierResidentSingle {
				// Next block's weights load synchronously between
				// blocks.
				t = s.l3Load(c, t, cd.BlockLoadBytes, false)
			}
			spill := cd.ExposedMHSABytes - weightPartOf(cd, true)
			phaseEnd[c] = s.phase(c, t, cd.MHSA, cd.ExposedMHSABytes, spill)
		}
		afterMHSA := s.sync(cls[0], phaseEnd, s.d.ReducePayload, s.d.BcastPayload, s.d.RootSync)

		for c := 0; c < n; c++ {
			cd := &s.d.Chips[c]
			spill := cd.ExposedFCBytes - weightPartOf(cd, false)
			phaseEnd[c] = s.phase(c, afterMHSA[c], cd.FC, cd.ExposedFCBytes, spill)
		}
		ready = s.sync(cls[1], phaseEnd, s.d.ReducePayload, s.d.BcastPayload, s.d.RootSync)

		// Double-buffered prefetch of the next block's weights:
		// energy always, runtime only under the exposure ablation.
		for c := 0; c < n; c++ {
			cd := &s.d.Chips[c]
			if cd.Tier != deploy.TierDoubleBuffered {
				continue
			}
			dur := s.l3Background(c, blockStart[c], cd.StreamBytesPerBlock)
			if s.d.Options.PrefetchExposed {
				if exposed := dur - (ready[c] - blockStart[c]); exposed > 0 {
					s.stats[c].L3Cycles += exposed
					ready[c] += exposed
					if ready[c] > s.stats[c].End {
						s.stats[c].End = ready[c]
					}
				}
			}
		}
	}
	return maxAll(ready)
}

// weightPartOf returns the weight share of a phase's exposed L3 bytes.
func weightPartOf(cd *deploy.ChipDeploy, mhsa bool) int64 {
	if cd.Tier != deploy.TierStreamed {
		return 0
	}
	var mw, fw int64
	for _, op := range cd.MHSA {
		mw += op.WeightBytes
	}
	for _, op := range cd.FC {
		fw += op.WeightBytes
	}
	total := mw + fw
	if total == 0 {
		return 0
	}
	if mhsa {
		return cd.StreamBytesPerBlock * mw / total
	}
	return cd.StreamBytesPerBlock * fw / total
}

func (s *sim) runReplicated() float64 {
	n := s.d.Plan.Chips
	blocks := s.d.Chips[0].Blocks
	cfg := s.d.Plan.Config
	sq := queryRowsOf(s.d)
	active := 0
	for c := 0; c < n; c++ {
		if len(s.d.Chips[c].MHSA) > 0 {
			active++
		}
	}
	// Context exchange payload: each chip's keys/values for its rows;
	// output exchange payload: its output rows.
	rows := (sq + n - 1) / n
	kvPayload := int64(rows) * int64(2*cfg.P) * int64(cfg.ActBytes)
	outPayload := int64(rows) * int64(cfg.E) * int64(cfg.ActBytes)

	ready := make([]float64, n)
	for b := 0; b < blocks; b++ {
		phaseEnd := make([]float64, n)
		for c := 0; c < n; c++ {
			cd := &s.d.Chips[c]
			t := ready[c]
			if cd.Tier == deploy.TierResidentSingle {
				t = s.l3Load(c, t, cd.BlockLoadBytes, false)
			}
			spill := cd.ExposedMHSABytes - weightPartOf(cd, true)
			phaseEnd[c] = s.phase(c, t, cd.MHSA, cd.ExposedMHSABytes, spill)
		}
		if active > 1 {
			// Two synchronizations per block: K/V exchange before
			// attention and output exchange after the block.
			mid := s.sync(collective.KVExchange, phaseEnd, kvPayload, kvPayload, nil)
			ready = s.sync(collective.OutputExchange, mid, outPayload, outPayload, nil)
		} else {
			ready = phaseEnd
		}
	}
	return maxAll(ready)
}

func (s *sim) runPipeline() float64 {
	n := s.d.Plan.Chips
	cfg := s.d.Plan.Config
	sq := queryRowsOf(s.d)
	actPayload := int64(sq) * int64(cfg.E) * int64(cfg.ActBytes)

	t := 0.0
	for c := 0; c < n; c++ {
		cd := &s.d.Chips[c]
		for b := 0; b < cd.Blocks; b++ {
			if cd.Tier == deploy.TierResidentSingle {
				t = s.l3Load(c, t, cd.BlockLoadBytes, false)
			}
			spill := cd.ExposedMHSABytes - weightPartOf(cd, true)
			t = s.phase(c, t, cd.MHSA, cd.ExposedMHSABytes, spill)
		}
		if c+1 < n {
			t = s.hopOn(s.link(c, c+1), c, c+1, t, actPayload, s.pipeClasses[c])
		}
	}
	return t
}

func queryRowsOf(d *deploy.Deployment) int {
	if d.Mode == model.Autoregressive {
		if d.Batch > 1 {
			return d.Batch
		}
		return 1
	}
	return d.SeqLen
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func maxAll(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
