package perfsim

import (
	"math"
	"testing"

	"mcudist/internal/deploy"
	"mcudist/internal/hw"
	"mcudist/internal/model"
	"mcudist/internal/partition"
)

// runNet simulates TinyLlama on n chips under an arbitrary network
// description.
func runNet(t *testing.T, hwp hw.Params, n int, strategy partition.Strategy, mode model.Mode) (*Result, *deploy.Deployment) {
	t.Helper()
	var p *partition.Plan
	var err error
	switch strategy {
	case partition.Pipeline:
		p, err = partition.NewPipeline(model.TinyLlama42M(), n)
	default:
		p, err = partition.NewTensorParallel(model.TinyLlama42M(), n)
	}
	if err != nil {
		t.Fatal(err)
	}
	d, err := deploy.New(p, hwp, mode, 128, deploy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(d)
	if err != nil {
		t.Fatal(err)
	}
	return res, d
}

// A uniform network yields exactly one link class and per-class
// counters equal to the totals — the shape every pre-refactor
// consumer implicitly assumed.
func TestUniformNetworkSingleClassCounters(t *testing.T) {
	res, _ := runNet(t, hw.Siracusa(), 8, partition.TensorParallel, model.Prompt)
	if len(res.LinkClasses) != 1 || res.LinkClasses[0] != hw.MIPI() {
		t.Fatalf("link classes = %+v, want exactly [MIPI]", res.LinkClasses)
	}
	for c, st := range res.PerChip {
		if len(st.C2CCyclesByClass) != 1 || len(st.C2CSentBytesByClass) != 1 {
			t.Fatalf("chip %d: per-class counters %d/%d entries, want 1/1",
				c, len(st.C2CCyclesByClass), len(st.C2CSentBytesByClass))
		}
		if st.C2CCyclesByClass[0] != st.C2CCycles {
			t.Errorf("chip %d: class cycles %g != total %g", c, st.C2CCyclesByClass[0], st.C2CCycles)
		}
		if st.C2CSentBytesByClass[0] != st.C2CSentBytes {
			t.Errorf("chip %d: class bytes %d != total %d", c, st.C2CSentBytesByClass[0], st.C2CSentBytes)
		}
	}
}

// Under a clustered network the run reports both classes, the
// per-class counters partition the totals exactly, and slowing the
// backhaul stretches the runtime while leaving the byte split fixed
// (the schedule, not the rates, decides who sends what where).
func TestClusteredNetworkPerClassAccounting(t *testing.T) {
	uni, _ := runNet(t, hw.Siracusa(), 8, partition.TensorParallel, model.Prompt)

	hwp := hw.Siracusa()
	hwp.Network = hw.ClusteredNetwork(hw.MIPI(), hw.MIPI().Slower(10), 4)
	res, _ := runNet(t, hwp, 8, partition.TensorParallel, model.Prompt)

	if len(res.LinkClasses) != 2 {
		t.Fatalf("link classes = %+v, want [local backhaul]", res.LinkClasses)
	}
	if res.LinkClasses[0] != hw.MIPI() || res.LinkClasses[1] != hw.MIPI().Slower(10) {
		t.Fatalf("link classes = %+v, want local first (first reduce hop is intra-cluster)", res.LinkClasses)
	}
	var backBytes int64
	for c, st := range res.PerChip {
		var cycles float64
		var bytes int64
		for _, x := range st.C2CCyclesByClass {
			cycles += x
		}
		for _, b := range st.C2CSentBytesByClass {
			bytes += b
		}
		if math.Abs(cycles-st.C2CCycles) > 1e-9*math.Max(1, st.C2CCycles) {
			t.Errorf("chip %d: class cycles sum %g != total %g", c, cycles, st.C2CCycles)
		}
		if bytes != st.C2CSentBytes {
			t.Errorf("chip %d: class bytes sum %d != total %d", c, bytes, st.C2CSentBytes)
		}
		backBytes += st.C2CSentBytesByClass[1]
	}
	if backBytes <= 0 {
		t.Fatal("8 chips in clusters of 4 moved no backhaul bytes")
	}
	// Total traffic is schedule-determined, identical to uniform; only
	// the time changes.
	if res.TotalC2CBytes != uni.TotalC2CBytes {
		t.Errorf("clustered traffic %d != uniform %d", res.TotalC2CBytes, uni.TotalC2CBytes)
	}
	if res.TotalCycles <= uni.TotalCycles {
		t.Errorf("10x-slower backhaul did not stretch runtime: %g <= %g", res.TotalCycles, uni.TotalCycles)
	}
}

// The pipeline handoff chain resolves each edge's class from the
// network: a backhaul on the chain boundary slows the handoff, and a
// per-edge table that does not wire the chain is rejected.
func TestPipelineChainUsesNetworkClasses(t *testing.T) {
	uni, _ := runNet(t, hw.Siracusa(), 2, partition.Pipeline, model.Prompt)

	hwp := hw.Siracusa()
	hwp.Network = hw.ClusteredNetwork(hw.MIPI(), hw.MIPI().Slower(10), 1) // every edge backhaul
	slow, _ := runNet(t, hwp, 2, partition.Pipeline, model.Prompt)
	if slow.TotalCycles <= uni.TotalCycles {
		t.Errorf("backhaul pipeline handoff not slower: %g <= %g", slow.TotalCycles, uni.TotalCycles)
	}

	// A table wiring only 1->0 leaves the 0->1 handoff undefined.
	back, err := hw.TableNetwork(map[hw.Edge]hw.LinkClass{{From: 1, To: 0}: hw.MIPI()})
	if err != nil {
		t.Fatal(err)
	}
	hwp = hw.Siracusa()
	hwp.Network = back
	p, err := partition.NewPipeline(model.TinyLlama42M(), 2)
	if err != nil {
		t.Fatal(err)
	}
	d, err := deploy.New(p, hwp, model.Prompt, 128, deploy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(d); err == nil {
		t.Fatal("pipeline over a table without the chain edge ran")
	}

	// A chain-only table — the natural measured wiring of a
	// daisy-chained pipeline board — must run: the pipeline executes
	// no collective hops, so leaving collective edges unwired is fine.
	chain, err := hw.TableNetwork(map[hw.Edge]hw.LinkClass{{From: 0, To: 1}: hw.MIPI()})
	if err != nil {
		t.Fatal(err)
	}
	hwp = hw.Siracusa()
	hwp.Network = chain
	chained, _ := runNet(t, hwp, 2, partition.Pipeline, model.Prompt)
	if chained.TotalCycles != uni.TotalCycles {
		t.Errorf("chain-only MIPI table pipeline %g cycles, want uniform's %g", chained.TotalCycles, uni.TotalCycles)
	}
	// The same chain-only table must still reject a strategy that DOES
	// execute collective hops.
	if _, err := partialRun(t, hwp); err == nil {
		t.Error("tensor-parallel ran over a chain-only table")
	}
}

// A pipeline whose direct stage edge is missing re-routes the handoff
// through surviving chips instead of rejecting the run: the routed
// deployment completes, pays for the extra hops, and matches the
// directly wired chain everywhere the direct edges exist.
func TestPipelineRoutesAroundMissingStageEdge(t *testing.T) {
	mipi := hw.MIPI()
	full := map[hw.Edge]hw.LinkClass{}
	for c := 0; c < 3; c++ {
		full[hw.Edge{From: c, To: c + 1}] = mipi
	}
	wired, err := hw.TableNetwork(full)
	if err != nil {
		t.Fatal(err)
	}
	hwp := hw.Siracusa()
	hwp.Network = wired
	direct, _ := runNet(t, hwp, 4, partition.Pipeline, model.Prompt)

	// Sever the direct 1->2 edge and offer a detour through chip 3
	// (1->3->2): the handoff must route around the gap.
	gap := map[hw.Edge]hw.LinkClass{
		{From: 0, To: 1}: mipi,
		{From: 1, To: 3}: mipi,
		{From: 3, To: 2}: mipi,
		{From: 2, To: 3}: mipi,
	}
	gapped, err := hw.TableNetwork(gap)
	if err != nil {
		t.Fatal(err)
	}
	hwp.Network = gapped
	routed, _ := runNet(t, hwp, 4, partition.Pipeline, model.Prompt)
	if routed.TotalCycles <= direct.TotalCycles {
		t.Errorf("re-routed pipeline %g cycles, want more than the directly wired chain's %g",
			routed.TotalCycles, direct.TotalCycles)
	}
	// The detour bills its traffic on the intermediate chip: chip 3
	// forwards the 1->2 handoff and the 2->3 handoff's payload arrives
	// there anyway, so chip 1's sends double (1->3 then relayed).
	if routed.TotalC2CBytes <= direct.TotalC2CBytes {
		t.Errorf("re-routed pipeline moved %d bytes, want more than the direct chain's %d",
			routed.TotalC2CBytes, direct.TotalC2CBytes)
	}
}

// partialRun attempts a tensor-parallel run under hwp, returning the
// simulation error (deployment building must succeed).
func partialRun(t *testing.T, hwp hw.Params) (*Result, error) {
	t.Helper()
	p, err := partition.NewTensorParallel(model.TinyLlama42M(), 2)
	if err != nil {
		t.Fatal(err)
	}
	d, err := deploy.New(p, hwp, model.Prompt, 128, deploy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return Run(d)
}
