package perfsim

import (
	"math"
	"testing"

	"mcudist/internal/deploy"
	"mcudist/internal/hw"
	"mcudist/internal/kernels"
	"mcudist/internal/memsim"
	"mcudist/internal/model"
	"mcudist/internal/partition"
)

func dramParams() hw.Params {
	p := hw.Siracusa()
	p.Mem = hw.LPDDR5()
	return p
}

// tiledSim builds a one-chip arena ready for execTiled calls.
func tiledSim() *Sim {
	s := NewSim()
	s.eng.Reset()
	s.chipRes = growResources(s.chipRes, 3)
	for i := range s.chipRes {
		s.chipRes[i].Init(&s.eng, "")
	}
	s.cluster = s.chipRes[:1]
	s.dma = s.chipRes[1:2]
	s.io = s.chipRes[2:3]
	s.stats = make([]ChipStats, 1)
	s.memEnabled = true
	return s
}

// TestExecTiledMatchesPlanMakespan pins the identity the autotuner
// depends on: replaying a tile plan on the eventsim resources takes
// exactly the closed-form makespan, at any start time, and the
// per-chip buckets sum exactly to the elapsed time.
func TestExecTiledMatchesPlanMakespan(t *testing.T) {
	hwp := dramParams()
	ch := memsim.ChannelOf(hwp)
	e := kernels.Elem{Weight: 1, Act: 1, Acc: 4, Reduce: 1}
	cost := kernels.Linear(hwp, 16, 2048, 5632, e)
	g, ok := memsim.GEMMOf(cost)
	if !ok {
		t.Fatal("Linear must yield a GEMM")
	}
	for _, tl := range []memsim.Tiling{{}, {K: 256, N: 128}, {K: 2048, N: 32}} {
		for _, start := range []float64{0, 12345.5} {
			plan, err := memsim.PlanGEMM(ch, g, tl)
			if err != nil {
				t.Fatal(err)
			}
			s := tiledSim()
			end := s.execTiled(0, start, &cost, plan)
			if got, want := end-start, plan.Makespan(); got != want {
				t.Errorf("tiling %s start %g: elapsed %g != makespan %g", tl, start, got, want)
			}
			st := s.stats[0]
			sum := st.ComputeCycles + st.L2L1Cycles + st.L3Cycles
			if math.Abs(sum-(end-start)) > 1e-6 {
				t.Errorf("tiling %s: buckets %g != elapsed %g", tl, sum, end-start)
			}
			if st.L3Bytes != plan.WeightBytes {
				t.Errorf("tiling %s: off-chip bytes %d, want %d", tl, st.L3Bytes, plan.WeightBytes)
			}
		}
	}
}

// TestExecTiledBackToBack pins that a second GEMM right after a first
// one still reproduces its own makespan: the shared io/dma/cluster
// resources never delay the explicit-ready chain.
func TestExecTiledBackToBack(t *testing.T) {
	hwp := dramParams()
	ch := memsim.ChannelOf(hwp)
	e := kernels.Elem{Weight: 1, Act: 1, Acc: 4, Reduce: 1}
	a := kernels.Linear(hwp, 16, 2048, 512, e)
	b := kernels.Linear(hwp, 16, 512, 2048, e)
	ga, _ := memsim.GEMMOf(a)
	gb, _ := memsim.GEMMOf(b)
	pa, err := memsim.PlanGEMM(ch, ga, memsim.Tiling{})
	if err != nil {
		t.Fatal(err)
	}
	pb, err := memsim.PlanGEMM(ch, gb, memsim.Tiling{K: 128, N: 256})
	if err != nil {
		t.Fatal(err)
	}
	s := tiledSim()
	mid := s.execTiled(0, 0, &a, pa)
	end := s.execTiled(0, mid, &b, pb)
	if got, want := mid, pa.Makespan(); got != want {
		t.Fatalf("first GEMM elapsed %g != makespan %g", got, want)
	}
	if got, want := end-mid, pb.Makespan(); got != want {
		t.Fatalf("second GEMM elapsed %g != makespan %g", got, want)
	}
}

// TestDRAMHierarchyEndToEnd runs a streamed-tier deployment under the
// hierarchical memory model: the run must succeed, move off-chip
// bytes, keep the breakdown summing to the total, and price off-chip
// time differently from the flat model.
func TestDRAMHierarchyEndToEnd(t *testing.T) {
	cfg := model.TinyLlama42M()
	s := model.PaperSeqLen(cfg, model.Autoregressive)
	plan, err := partition.NewTensorParallel(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}

	flatDep, err := deploy.New(plan, hw.Siracusa(), model.Autoregressive, s, deploy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if flatDep.WorstTier() != deploy.TierStreamed {
		t.Fatalf("fixture must be streamed, got %v", flatDep.WorstTier())
	}
	flat, err := Run(flatDep)
	if err != nil {
		t.Fatal(err)
	}

	dramDep, err := deploy.New(plan, dramParams(), model.Autoregressive, s, deploy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, cd := range dramDep.Chips {
		if cd.MHSAStream == nil || cd.FCStream == nil {
			t.Fatalf("chip %d: streamed DRAM deployment must carry tile plans", cd.Chip)
		}
	}
	dram, err := Run(dramDep)
	if err != nil {
		t.Fatal(err)
	}

	if dram.TotalCycles <= 0 {
		t.Fatal("DRAM run has no runtime")
	}
	if got := dram.Breakdown.Total(); math.Abs(got-dram.TotalCycles) > 1e-6*dram.TotalCycles {
		t.Fatalf("breakdown %g != total %g", got, dram.TotalCycles)
	}
	if dram.TotalCycles == flat.TotalCycles {
		t.Fatal("DRAM hierarchy priced identically to the flat model")
	}
	// Both models move the same weight bytes off-chip; the hierarchy
	// additionally re-reads activations per column pass, so its
	// off-chip byte count can only grow.
	var flatBytes, dramBytes int64
	for i := range flat.PerChip {
		flatBytes += flat.PerChip[i].L3Bytes
		dramBytes += dram.PerChip[i].L3Bytes
	}
	if flatBytes <= 0 || dramBytes <= 0 {
		t.Fatalf("streamed runs must move off-chip bytes (flat %d, dram %d)", flatBytes, dramBytes)
	}
	t.Logf("flat: %.0f cycles / %d L3 bytes; dram: %.0f cycles / %d L3 bytes",
		flat.TotalCycles, flatBytes, dram.TotalCycles, dramBytes)
}

// TestDRAMDepthSaturates pins the prefetch-depth knob's end-to-end
// behavior: deeper prefetch never hurts, and for the planner's
// uniform tile streams it saturates at depth 1 (double buffering) —
// with slots = depth+1 >= 2, either the fetch chain or the work chain
// dominates every step of the makespan recurrence outright, so extra
// buffer slots have nothing left to hide. The knob exists for bursty
// tile schedules; uniform streams are the regime the planner emits.
func TestDRAMDepthSaturates(t *testing.T) {
	cfg := model.TinyLlama42M()
	s := model.PaperSeqLen(cfg, model.Autoregressive)
	plan, err := partition.NewTensorParallel(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	var base float64
	for i, depth := range []int{1, 2, 4} {
		hwp := dramParams()
		hwp.Mem.PrefetchDepth = depth
		d, err := deploy.New(plan, hwp, model.Autoregressive, s, deploy.Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(d)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			base = res.TotalCycles
		} else if res.TotalCycles != base {
			t.Fatalf("depth %d: %.0f cycles, want the depth-1 saturation value %.0f", depth, res.TotalCycles, base)
		}
	}
}
