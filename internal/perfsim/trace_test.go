package perfsim

import (
	"math"
	"strings"
	"testing"

	"mcudist/internal/deploy"
	"mcudist/internal/hw"
	"mcudist/internal/model"
	"mcudist/internal/partition"
	"mcudist/internal/trace"
)

func runTraced(t *testing.T, n int) (*Result, *trace.Timeline) {
	t.Helper()
	p, err := partition.NewTensorParallel(model.TinyLlama42M(), n)
	if err != nil {
		t.Fatal(err)
	}
	d, err := deploy.New(p, hw.Siracusa(), model.Autoregressive, 128, deploy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var tl trace.Timeline
	res, err := RunTraced(d, &tl)
	if err != nil {
		t.Fatal(err)
	}
	return res, &tl
}

func TestTraceMatchesResult(t *testing.T) {
	res, tl := runTraced(t, 8)
	if tl.Len() == 0 {
		t.Fatal("no spans recorded")
	}
	// The timeline may extend past the critical path: background
	// weight prefetch (the paper's overlap idealization) keeps the IO
	// DMA busy beyond the block boundary. It can never end earlier
	// than the runtime.
	if tl.End() < res.TotalCycles-1e-6 {
		t.Fatalf("trace end %g before total %g", tl.End(), res.TotalCycles)
	}
	// Per-category compute busy cycles must match the stats summed
	// over chips.
	busy := tl.BusyCycles()
	var compute float64
	for i := range res.PerChip {
		compute += res.PerChip[i].ComputeCycles
	}
	if math.Abs(busy["compute"]-compute) > 1e-6*compute {
		t.Fatalf("trace compute %g != stats %g", busy["compute"], compute)
	}
}

func TestTraceResourceExclusivity(t *testing.T) {
	// Spans on one chip's cluster / DMA / IO / link must never
	// overlap: each is an exclusive resource.
	for _, n := range []int{1, 4, 8} {
		_, tl := runTraced(t, n)
		if err := tl.CheckNoOverlap(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestTraceUntracedRunIdentical(t *testing.T) {
	res1, _ := runTraced(t, 8)
	p, _ := partition.NewTensorParallel(model.TinyLlama42M(), 8)
	d, _ := deploy.New(p, hw.Siracusa(), model.Autoregressive, 128, deploy.Options{})
	res2, err := Run(d)
	if err != nil {
		t.Fatal(err)
	}
	if res1.TotalCycles != res2.TotalCycles {
		t.Fatalf("tracing changed the result: %g vs %g", res1.TotalCycles, res2.TotalCycles)
	}
}

func TestTraceContainsAllCategories(t *testing.T) {
	_, tl := runTraced(t, 4) // resident-single: has L3 spans too
	busy := tl.BusyCycles()
	for _, cat := range []string{"compute", "dma-l2l1", "dma-l3"} {
		if busy[cat] <= 0 {
			t.Errorf("category %s missing from trace", cat)
		}
	}
	var linkBusy float64
	for cat, v := range busy {
		if strings.HasPrefix(cat, "link") {
			linkBusy += v
		}
	}
	if linkBusy <= 0 {
		t.Error("no link spans in trace")
	}
}
