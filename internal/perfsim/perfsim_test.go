package perfsim

import (
	"math"
	"testing"

	"mcudist/internal/deploy"
	"mcudist/internal/hw"
	"mcudist/internal/model"
	"mcudist/internal/partition"
)

func runTP(t *testing.T, cfg model.Config, n int, mode model.Mode, s int, opts deploy.Options) *Result {
	t.Helper()
	p, err := partition.NewTensorParallel(cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	d, err := deploy.New(p, hw.Siracusa(), mode, s, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(d)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSingleChipRunsWithoutSyncTraffic(t *testing.T) {
	res := runTP(t, model.TinyLlama42M(), 1, model.Autoregressive, 128, deploy.Options{})
	if res.TotalC2CBytes != 0 {
		t.Fatalf("single chip sent %d C2C bytes", res.TotalC2CBytes)
	}
	if res.TotalCycles <= 0 {
		t.Fatal("no runtime")
	}
	if res.Breakdown.C2C != 0 {
		t.Fatalf("single chip has C2C breakdown %g", res.Breakdown.C2C)
	}
}

func TestTwoSyncsPerBlock(t *testing.T) {
	cfg := model.TinyLlama42M()
	res := runTP(t, cfg, 8, model.Autoregressive, 128, deploy.Options{})
	if res.Syncs != 2*cfg.L {
		t.Fatalf("syncs = %d, want %d (two per block)", res.Syncs, 2*cfg.L)
	}
}

func TestBreakdownSumsToTotal(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		res := runTP(t, model.TinyLlama42M(), n, model.Autoregressive, 128, deploy.Options{})
		if d := math.Abs(res.Breakdown.Total() - res.TotalCycles); d > 1e-6*res.TotalCycles+1e-9 {
			t.Errorf("n=%d: breakdown %g != total %g", n, res.Breakdown.Total(), res.TotalCycles)
		}
	}
}

func TestDeterministic(t *testing.T) {
	a := runTP(t, model.TinyLlama42M(), 8, model.Autoregressive, 128, deploy.Options{})
	b := runTP(t, model.TinyLlama42M(), 8, model.Autoregressive, 128, deploy.Options{})
	if a.TotalCycles != b.TotalCycles || a.TotalC2CBytes != b.TotalC2CBytes {
		t.Fatal("simulation is not deterministic")
	}
}

// The headline reproduction target: the 8-chip system is super-linear
// (speedup > 8) in autoregressive mode because L3 leaves the critical
// path, while 2 and 4 chips stay roughly linear.
func TestTinyLlamaAutoregressiveSuperLinearAt8(t *testing.T) {
	cfg := model.TinyLlama42M()
	s := model.PaperSeqLen(cfg, model.Autoregressive)
	base := runTP(t, cfg, 1, model.Autoregressive, s, deploy.Options{}).TotalCycles
	speedup := func(n int) float64 {
		return base / runTP(t, cfg, n, model.Autoregressive, s, deploy.Options{}).TotalCycles
	}
	s2, s4, s8 := speedup(2), speedup(4), speedup(8)
	if s2 < 1.5 || s2 > 3 {
		t.Errorf("2-chip speedup %g out of linear range", s2)
	}
	if s4 < 3 || s4 > 6 {
		t.Errorf("4-chip speedup %g out of linear range", s4)
	}
	if s8 <= 8 {
		t.Errorf("8-chip speedup %g is not super-linear (paper: 26.1)", s8)
	}
	if s8 < 15 || s8 > 40 {
		t.Errorf("8-chip speedup %g far from paper's 26.1×", s8)
	}
}

func TestRuntimeBreakdownShapes(t *testing.T) {
	cfg := model.TinyLlama42M()
	s := model.PaperSeqLen(cfg, model.Autoregressive)
	// 1–4 chips: L3 dominates runtime (paper Fig. 4a).
	for _, n := range []int{1, 2, 4} {
		res := runTP(t, cfg, n, model.Autoregressive, s, deploy.Options{})
		if res.Breakdown.L3 < res.Breakdown.Compute {
			t.Errorf("n=%d: L3 %g not dominant over compute %g", n, res.Breakdown.L3, res.Breakdown.Compute)
		}
	}
	// 8 chips: no L3 on the critical path.
	res := runTP(t, cfg, 8, model.Autoregressive, s, deploy.Options{})
	if res.Breakdown.L3 != 0 {
		t.Errorf("8-chip L3 breakdown %g, want 0 (double-buffered)", res.Breakdown.L3)
	}
	if res.Breakdown.Compute <= 0 || res.Breakdown.L2L1 <= 0 {
		t.Error("8-chip compute/L2L1 breakdown missing")
	}
}

// The paper's Fig. 4 contrast: autoregressive mode is memory-bound,
// prompt mode much less so. We check it two ways: the single-chip L3
// share is larger in AR than in prompt mode, and once off-chip traffic
// is gone (8 chips) computation is the largest prompt-mode component.
func TestPromptModeLessMemoryBound(t *testing.T) {
	cfg := model.TinyLlama42M()
	ar := runTP(t, cfg, 1, model.Autoregressive, 128, deploy.Options{})
	pr := runTP(t, cfg, 1, model.Prompt, 16, deploy.Options{})
	arShare := ar.Breakdown.L3 / ar.TotalCycles
	prShare := pr.Breakdown.L3 / pr.TotalCycles
	if arShare <= prShare {
		t.Fatalf("AR L3 share %g not above prompt share %g", arShare, prShare)
	}
	p8 := runTP(t, cfg, 8, model.Prompt, 16, deploy.Options{})
	b := p8.Breakdown
	if b.Compute < b.L2L1 || b.Compute < b.C2C || b.Compute < b.L3 {
		t.Fatalf("8-chip prompt compute %g is not the largest component (%+v)", b.Compute, b)
	}
}

func TestPromptSuperLinearAt8(t *testing.T) {
	cfg := model.TinyLlama42M()
	base := runTP(t, cfg, 1, model.Prompt, 16, deploy.Options{}).TotalCycles
	got := base / runTP(t, cfg, 8, model.Prompt, 16, deploy.Options{}).TotalCycles
	if got <= 8 {
		t.Fatalf("prompt 8-chip speedup %g not super-linear (paper: 9.9)", got)
	}
	if got > 16 {
		t.Fatalf("prompt 8-chip speedup %g implausibly high vs paper's 9.9", got)
	}
}

func TestMobileBERTSuperLinearAt4(t *testing.T) {
	cfg := model.MobileBERT512()
	s := model.PaperSeqLen(cfg, model.Prompt)
	base := runTP(t, cfg, 1, model.Prompt, s, deploy.Options{}).TotalCycles
	got := base / runTP(t, cfg, 4, model.Prompt, s, deploy.Options{}).TotalCycles
	if got <= 4 {
		t.Fatalf("MobileBERT 4-chip speedup %g not super-linear (paper: 4.7)", got)
	}
	if got > 8 {
		t.Fatalf("MobileBERT 4-chip speedup %g implausibly high", got)
	}
}

func TestScaledModelQuasiLinearTo64(t *testing.T) {
	cfg := model.TinyLlamaScaled64()
	s := model.PaperSeqLen(cfg, model.Autoregressive)
	base := runTP(t, cfg, 1, model.Autoregressive, s, deploy.Options{}).TotalCycles
	speedup := func(n int) float64 {
		return base / runTP(t, cfg, n, model.Autoregressive, s, deploy.Options{}).TotalCycles
	}
	s8, s32, s64 := speedup(8), speedup(32), speedup(64)
	if s8 <= 8 || s32 <= 32 {
		t.Errorf("scaled speedups 8→%g 32→%g should be super-linear", s8, s32)
	}
	if s64 < 40 {
		t.Errorf("64-chip speedup %g too low (paper: 60.1)", s64)
	}
	if s64 > 100 {
		t.Errorf("64-chip speedup %g implausibly high (paper: 60.1)", s64)
	}
}

func TestPrefetchExposureAblation(t *testing.T) {
	cfg := model.TinyLlama42M()
	hidden := runTP(t, cfg, 8, model.Autoregressive, 128, deploy.Options{})
	exposed := runTP(t, cfg, 8, model.Autoregressive, 128, deploy.Options{PrefetchExposed: true})
	if exposed.TotalCycles <= hidden.TotalCycles {
		t.Fatalf("exposing prefetch did not increase runtime: %g vs %g",
			exposed.TotalCycles, hidden.TotalCycles)
	}
	// Same L3 bytes either way: exposure is accounting, not traffic.
	var hb, eb int64
	for i := range hidden.PerChip {
		hb += hidden.PerChip[i].L3Bytes
		eb += exposed.PerChip[i].L3Bytes
	}
	if hb != eb {
		t.Fatalf("prefetch accounting changed L3 bytes: %d vs %d", hb, eb)
	}
}

func TestL3BytesMatchDeployment(t *testing.T) {
	cfg := model.TinyLlama42M()
	for _, n := range []int{1, 4, 8} {
		p, _ := partition.NewTensorParallel(cfg, n)
		d, err := deploy.New(p, hw.Siracusa(), model.Autoregressive, 128, deploy.Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(d)
		if err != nil {
			t.Fatal(err)
		}
		var got int64
		for i := range res.PerChip {
			got += res.PerChip[i].L3Bytes - res.PerChip[i].L3SpillBytes
		}
		if got != d.TotalL3BytesPerForward() {
			t.Errorf("n=%d: simulated L3 weight bytes %d != planned %d", n, got, d.TotalL3BytesPerForward())
		}
	}
}

func TestResidentAllNoL3(t *testing.T) {
	cfg := model.TinyLlamaScaled64()
	res := runTP(t, cfg, 64, model.Autoregressive, 128, deploy.Options{})
	for i := range res.PerChip {
		if res.PerChip[i].L3Bytes != 0 {
			t.Fatalf("chip %d moved %d L3 bytes under resident-all", i, res.PerChip[i].L3Bytes)
		}
	}
}

func TestC2CBytesMatchTreeFormula(t *testing.T) {
	cfg := model.TinyLlama42M()
	res := runTP(t, cfg, 8, model.Autoregressive, 128, deploy.Options{})
	// 2 syncs/block × 8 blocks, each (N-1)·(reduce+bcast) payloads of
	// 512 B each.
	want := int64(2*cfg.L) * int64(7) * int64(512+512)
	if res.TotalC2CBytes != want {
		t.Fatalf("C2C bytes %d, want %d", res.TotalC2CBytes, want)
	}
}

func TestReplicatedBaselineAutoregressiveNoSpeedup(t *testing.T) {
	cfg := model.TinyLlama42M()
	p, _ := partition.NewReplicated(cfg, 4)
	d, err := deploy.New(p, hw.Siracusa(), model.Autoregressive, 128, deploy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := Run(d)
	if err != nil {
		t.Fatal(err)
	}
	single := runTP(t, cfg, 1, model.Autoregressive, 128, deploy.Options{})
	// Single-token replicated inference cannot parallelize: runtime
	// must be at least the single-chip runtime.
	if multi.TotalCycles < 0.9*single.TotalCycles {
		t.Fatalf("replicated AR runtime %g beat single chip %g", multi.TotalCycles, single.TotalCycles)
	}
}

func TestReplicatedPromptSplitsComputeButStreams(t *testing.T) {
	cfg := model.TinyLlama42M()
	p, _ := partition.NewReplicated(cfg, 4)
	d, err := deploy.New(p, hw.Siracusa(), model.Prompt, 16, deploy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(d)
	if err != nil {
		t.Fatal(err)
	}
	// Every active chip still streams the full model from L3 (plus
	// activation spill — the baseline's off-chip reliance persists).
	var weights int64
	for i := range res.PerChip {
		weights += res.PerChip[i].L3Bytes - res.PerChip[i].L3SpillBytes
	}
	if weights != 4*int64(cfg.TotalWeightBytes()) {
		t.Fatalf("replicated L3 weight bytes %d, want 4× model (%d)", weights, 4*cfg.TotalWeightBytes())
	}
}

func TestPipelineSingleRequestLatencyNotImproved(t *testing.T) {
	cfg := model.TinyLlama42M()
	p, _ := partition.NewPipeline(cfg, 4)
	d, err := deploy.New(p, hw.Siracusa(), model.Prompt, 16, deploy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := Run(d)
	if err != nil {
		t.Fatal(err)
	}
	single := runTP(t, cfg, 1, model.Prompt, 16, deploy.Options{})
	// A single request travels the stages serially: no latency win
	// (the paper's argument against pipelining for smart glasses).
	if pipe.TotalCycles < 0.95*single.TotalCycles {
		t.Fatalf("pipeline latency %g unexpectedly beat single chip %g", pipe.TotalCycles, single.TotalCycles)
	}
	ours := runTP(t, cfg, 4, model.Prompt, 16, deploy.Options{})
	if ours.TotalCycles >= pipe.TotalCycles {
		t.Fatalf("tensor-parallel %g not faster than pipeline %g", ours.TotalCycles, pipe.TotalCycles)
	}
}

func TestStatsEndsConsistent(t *testing.T) {
	res := runTP(t, model.TinyLlama42M(), 8, model.Prompt, 16, deploy.Options{})
	for i := range res.PerChip {
		if res.PerChip[i].End > res.TotalCycles+1e-9 {
			t.Fatalf("chip %d end %g beyond total %g", i, res.PerChip[i].End, res.TotalCycles)
		}
	}
}

func BenchmarkSimulate8ChipAR(b *testing.B) {
	cfg := model.TinyLlama42M()
	p, _ := partition.NewTensorParallel(cfg, 8)
	d, _ := deploy.New(p, hw.Siracusa(), model.Autoregressive, 128, deploy.Options{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(d); err != nil {
			b.Fatal(err)
		}
	}
}
