package perfsim

import (
	"math"
	"strings"
	"testing"

	"mcudist/internal/collective"
	"mcudist/internal/deploy"
	"mcudist/internal/hw"
	"mcudist/internal/model"
	"mcudist/internal/partition"
)

// runPlanned simulates TinyLlama under a collective plan.
func runPlanned(t *testing.T, plan collective.Plan, topo hw.Topology, n int, mode model.Mode) *Result {
	t.Helper()
	res, err := tryRunPlanned(plan, topo, hw.UniformNetwork(hw.MIPI()), n, mode)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func tryRunPlanned(plan collective.Plan, topo hw.Topology, net hw.Network, n int, mode model.Mode) (*Result, error) {
	p, err := partition.NewTensorParallel(model.TinyLlama42M(), n)
	if err != nil {
		return nil, err
	}
	hwp := hw.Siracusa()
	hwp.Topology = topo
	hwp.Network = net
	d, err := deploy.New(p, hwp, mode, 128, deploy.Options{SyncPlan: plan})
	if err != nil {
		return nil, err
	}
	return Run(d)
}

// A plan binding every active class to the run topology is the exact
// same simulation as the zero plan, for every shape: schedFor hands
// back the very schedule the run lowered.
func TestPlanUniformMatchesZeroPlan(t *testing.T) {
	for _, topo := range hw.Topologies() {
		for _, mode := range []model.Mode{model.Prompt, model.Autoregressive} {
			base := runPlanned(t, collective.Plan{}, topo, 8, mode)
			planned := runPlanned(t, collective.Uniform(topo), topo, 8, mode)
			if base.TotalCycles != planned.TotalCycles {
				t.Errorf("%s/%s: uniform plan %v cycles, zero plan %v", topo, mode,
					planned.TotalCycles, base.TotalCycles)
			}
			if base.TotalC2CBytes != planned.TotalC2CBytes {
				t.Errorf("%s/%s: uniform plan moved %d bytes, zero plan %d", topo, mode,
					planned.TotalC2CBytes, base.TotalC2CBytes)
			}
		}
	}
}

// Binding every active class to topology T on a run whose base shape
// is different must reproduce the uniform-T run exactly: the class
// schedule, not the run topology, decides every collective.
func TestPlanOverridesRunTopology(t *testing.T) {
	plan := collective.Plan{}.
		With(collective.PrefillMHSA, hw.TopoRing).
		With(collective.PrefillFFN, hw.TopoRing)
	overridden := runPlanned(t, plan, hw.TopoTree, 8, model.Prompt)
	uniformRing := runPlanned(t, collective.Plan{}, hw.TopoRing, 8, model.Prompt)
	if overridden.TotalCycles != uniformRing.TotalCycles {
		t.Errorf("ring-planned run on tree base: %v cycles, uniform ring %v",
			overridden.TotalCycles, uniformRing.TotalCycles)
	}
	if overridden.TotalC2CBytes != uniformRing.TotalC2CBytes {
		t.Errorf("ring-planned run moved %d bytes, uniform ring %d",
			overridden.TotalC2CBytes, uniformRing.TotalC2CBytes)
	}
	// The run-level reporting still names the base shape; the per-class
	// stats name the executed one.
	if overridden.Topology != hw.TopoTree {
		t.Errorf("result topology %s, want the base tree", overridden.Topology)
	}
	for _, cs := range overridden.ByClass {
		if cs.Topology != hw.TopoRing {
			t.Errorf("%s executed on %s, want ring", cs.Class, cs.Topology)
		}
	}
}

// The per-class split must cover the run exactly: class syncs sum to
// Result.Syncs, class bytes and link-busy cycles sum to the chip
// totals, and the classes match the strategy and mode.
func TestPlanClassAccountingConsistent(t *testing.T) {
	plan := collective.Plan{}.
		With(collective.PrefillMHSA, hw.TopoRing).
		With(collective.PrefillFFN, hw.TopoTree)
	res := runPlanned(t, plan, hw.TopoTree, 8, model.Prompt)

	if len(res.ByClass) != 2 {
		t.Fatalf("%d classes, want 2", len(res.ByClass))
	}
	if res.ByClass[0].Class != collective.PrefillMHSA || res.ByClass[1].Class != collective.PrefillFFN {
		t.Errorf("classes %s/%s, want prefill-mhsa/prefill-ffn",
			res.ByClass[0].Class, res.ByClass[1].Class)
	}
	if res.ByClass[0].Topology != hw.TopoRing || res.ByClass[1].Topology != hw.TopoTree {
		t.Errorf("topologies %s/%s, want ring/tree",
			res.ByClass[0].Topology, res.ByClass[1].Topology)
	}

	var syncs int
	var bytes int64
	var cycles float64
	for _, cs := range res.ByClass {
		syncs += cs.Syncs
		bytes += cs.C2CSentBytes
		cycles += cs.C2CCycles
		if cs.Syncs == 0 || cs.C2CSentBytes == 0 || cs.C2CCycles == 0 {
			t.Errorf("%s: empty counters (%d syncs, %d B, %g cycles)",
				cs.Class, cs.Syncs, cs.C2CSentBytes, cs.C2CCycles)
		}
		if len(cs.C2CSentBytesByLink) != len(res.LinkClasses) {
			t.Errorf("%s: %d link-class counters, want %d",
				cs.Class, len(cs.C2CSentBytesByLink), len(res.LinkClasses))
		}
		var perLink int64
		for _, b := range cs.C2CSentBytesByLink {
			perLink += b
		}
		if perLink != cs.C2CSentBytes {
			t.Errorf("%s: per-link bytes %d != class bytes %d", cs.Class, perLink, cs.C2CSentBytes)
		}
	}
	if syncs != res.Syncs {
		t.Errorf("class syncs sum to %d, run counted %d", syncs, res.Syncs)
	}
	if bytes != res.TotalC2CBytes {
		t.Errorf("class bytes sum to %d, run moved %d", bytes, res.TotalC2CBytes)
	}
	var chipCycles float64
	for _, st := range res.PerChip {
		chipCycles += st.C2CCycles
	}
	if math.Abs(cycles-chipCycles) > 1e-6*chipCycles {
		t.Errorf("class link cycles sum to %g, chips total %g", cycles, chipCycles)
	}
}

// The mixed plan must actually change the executed schedules: with
// MHSA syncs on the ring and FFN syncs on the tree, the run differs
// from both uniform runs.
func TestPlanMixedExecutesBothShapes(t *testing.T) {
	plan := collective.Plan{}.
		With(collective.PrefillMHSA, hw.TopoRing).
		With(collective.PrefillFFN, hw.TopoTree)
	mixed := runPlanned(t, plan, hw.TopoTree, 8, model.Prompt)
	tree := runPlanned(t, collective.Plan{}, hw.TopoTree, 8, model.Prompt)
	ring := runPlanned(t, collective.Plan{}, hw.TopoRing, 8, model.Prompt)
	if mixed.TotalCycles == tree.TotalCycles || mixed.TotalCycles == ring.TotalCycles {
		t.Errorf("mixed plan cycles %v coincide with a uniform run (tree %v, ring %v)",
			mixed.TotalCycles, tree.TotalCycles, ring.TotalCycles)
	}
	// Mixed runtime lies between the uniform extremes at this point.
	lo, hi := ring.TotalCycles, tree.TotalCycles
	if lo > hi {
		lo, hi = hi, lo
	}
	if mixed.TotalCycles < lo || mixed.TotalCycles > hi {
		t.Errorf("mixed plan cycles %v outside [%v, %v]", mixed.TotalCycles, lo, hi)
	}
}

// Decode-mode runs execute the decode classes, and a prefill-only plan
// has no effect on them.
func TestPlanModeSelectsClasses(t *testing.T) {
	res := runPlanned(t, collective.Plan{}, hw.TopoTree, 8, model.Autoregressive)
	if len(res.ByClass) != 2 ||
		res.ByClass[0].Class != collective.DecodeMHSA ||
		res.ByClass[1].Class != collective.DecodeFFN {
		t.Fatalf("AR classes = %v", res.ByClass)
	}
	prefillOnly := collective.Plan{}.
		With(collective.PrefillMHSA, hw.TopoRing).
		With(collective.PrefillFFN, hw.TopoRing)
	planned := runPlanned(t, prefillOnly, hw.TopoTree, 8, model.Autoregressive)
	if planned.TotalCycles != res.TotalCycles {
		t.Errorf("prefill-only plan changed an AR run: %v vs %v", planned.TotalCycles, res.TotalCycles)
	}
}

// The replicated baseline's two exchanges carry their own classes.
func TestPlanReplicatedClasses(t *testing.T) {
	p, err := partition.NewReplicated(model.TinyLlama42M(), 4)
	if err != nil {
		t.Fatal(err)
	}
	d, err := deploy.New(p, hw.Siracusa(), model.Prompt, 128, deploy.Options{
		SyncPlan: collective.Plan{}.With(collective.KVExchange, hw.TopoRing),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ByClass) != 2 ||
		res.ByClass[0].Class != collective.KVExchange ||
		res.ByClass[1].Class != collective.OutputExchange {
		t.Fatalf("replicated classes = %v", res.ByClass)
	}
	if res.ByClass[0].Topology != hw.TopoRing || res.ByClass[1].Topology != hw.TopoTree {
		t.Errorf("exchange topologies %s/%s, want ring/tree",
			res.ByClass[0].Topology, res.ByClass[1].Topology)
	}
}

// A plan routing a class over a network that does not wire that
// shape's edges must fail at lowering, before any simulation runs.
func TestPlanUnwiredEdgeRejected(t *testing.T) {
	// Wire only the tree edges of 4 chips under GroupSize 4 (star-like
	// hub on chip 0): the ring's 3->0 edge exists, but 1->2 does not.
	edges := map[hw.Edge]hw.LinkClass{}
	for c := 1; c < 4; c++ {
		edges[hw.Edge{From: 0, To: c}] = hw.MIPI()
		edges[hw.Edge{From: c, To: 0}] = hw.MIPI()
	}
	net, err := hw.TableNetwork(edges)
	if err != nil {
		t.Fatal(err)
	}
	// The base tree lowers fine on this wiring...
	if _, err := tryRunPlanned(collective.Plan{}, hw.TopoTree, net, 4, model.Prompt); err != nil {
		t.Fatalf("base tree on hub wiring failed: %v", err)
	}
	// ... but a plan binding an active class to the ring must be
	// rejected.
	plan := collective.Plan{}.With(collective.PrefillMHSA, hw.TopoRing)
	_, err = tryRunPlanned(plan, hw.TopoTree, net, 4, model.Prompt)
	if err == nil {
		t.Fatal("ring-planned class on a hub-only wiring accepted")
	}
	if !strings.Contains(err.Error(), "collective plan") {
		t.Errorf("error %q does not name the collective plan", err)
	}
	// A binding on a class the run never executes must neither fail
	// nor change the run: the decode half of a merged prefill+decode
	// plan is inert in prompt mode, even on a wiring that cannot
	// lower its shape.
	decodeOnly := collective.Plan{}.
		With(collective.DecodeMHSA, hw.TopoRing).
		With(collective.DecodeFFN, hw.TopoRing)
	planned, err := tryRunPlanned(decodeOnly, hw.TopoTree, net, 4, model.Prompt)
	if err != nil {
		t.Fatalf("inactive ring binding rejected on a hub-only wiring: %v", err)
	}
	base, err := tryRunPlanned(collective.Plan{}, hw.TopoTree, net, 4, model.Prompt)
	if err != nil {
		t.Fatal(err)
	}
	if planned.TotalCycles != base.TotalCycles {
		t.Errorf("inactive binding changed the run: %v vs %v cycles",
			planned.TotalCycles, base.TotalCycles)
	}
}
