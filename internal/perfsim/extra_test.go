package perfsim

import (
	"testing"
	"testing/quick"

	"mcudist/internal/deploy"
	"mcudist/internal/hw"
	"mcudist/internal/model"
	"mcudist/internal/partition"
)

// Property: for random chip counts, modes, and sequence lengths, the
// breakdown always sums to the total and every bucket is non-negative.
func TestPropertyBreakdownConsistency(t *testing.T) {
	cfg := model.TinyLlama42M()
	f := func(nRaw, sRaw uint8, prompt bool) bool {
		n := 1 + int(nRaw)%8
		s := 1 + int(sRaw)%128
		mode := model.Autoregressive
		if prompt {
			mode = model.Prompt
		}
		p, err := partition.NewTensorParallel(cfg, n)
		if err != nil {
			return false
		}
		d, err := deploy.New(p, hw.Siracusa(), mode, s, deploy.Options{})
		if err != nil {
			return false
		}
		res, err := Run(d)
		if err != nil {
			return false
		}
		b := res.Breakdown
		if b.Compute < 0 || b.L2L1 < 0 || b.L3 < 0 || b.C2C < 0 {
			return false
		}
		diff := b.Total() - res.TotalCycles
		if diff < 0 {
			diff = -diff
		}
		return diff <= 1e-6*res.TotalCycles+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: adding chips never increases total runtime for the
// tensor-parallel strategy on the paper's workloads.
func TestPropertyMoreChipsNotSlower(t *testing.T) {
	cfg := model.TinyLlama42M()
	prev := -1.0
	for n := 1; n <= 8; n++ {
		p, err := partition.NewTensorParallel(cfg, n)
		if err != nil {
			t.Fatal(err)
		}
		d, err := deploy.New(p, hw.Siracusa(), model.Autoregressive, 128, deploy.Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(d)
		if err != nil {
			t.Fatal(err)
		}
		if prev > 0 && res.TotalCycles > prev {
			t.Errorf("n=%d slower than n=%d: %g > %g", n, n-1, res.TotalCycles, prev)
		}
		prev = res.TotalCycles
	}
}

// The communication tile size changes pipelining granularity but must
// never change how many bytes cross the links.
func TestCommTileInvariantBytes(t *testing.T) {
	cfg := model.MobileBERT512()
	p, _ := partition.NewTensorParallel(cfg, 4)
	var bytes []int64
	for _, tile := range []int{8 * 1024, 64 * 1024, 1 << 20} {
		d, err := deploy.New(p, hw.Siracusa(), model.Prompt, 268, deploy.Options{CommTileBytes: tile})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(d)
		if err != nil {
			t.Fatal(err)
		}
		bytes = append(bytes, res.TotalC2CBytes)
	}
	if bytes[0] != bytes[1] || bytes[1] != bytes[2] {
		t.Fatalf("tile size changed link bytes: %v", bytes)
	}
}

// Smaller communication tiles pipeline better (or equal) on large
// payloads.
func TestCommTilePipelining(t *testing.T) {
	cfg := model.MobileBERT512()
	p, _ := partition.NewTensorParallel(cfg, 4)
	run := func(tile int) float64 {
		d, err := deploy.New(p, hw.Siracusa(), model.Prompt, 268, deploy.Options{CommTileBytes: tile})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(d)
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalCycles
	}
	small := run(16 * 1024)
	huge := run(1 << 20) // payload in one piece: no reduce/bcast overlap
	if small > huge {
		t.Fatalf("smaller comm tiles slower: %g > %g", small, huge)
	}
}

// GQA models simulate end to end and benefit from the smaller KV
// projections.
func TestGQASimulation(t *testing.T) {
	gqa := model.SmolLM135M()
	p, err := partition.NewTensorParallel(gqa, 3)
	if err != nil {
		t.Fatal(err)
	}
	d, err := deploy.New(p, hw.Siracusa(), model.Autoregressive, 128, deploy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(d)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCycles <= 0 || res.Syncs != 2*gqa.L {
		t.Fatalf("GQA sim: cycles %g syncs %d", res.TotalCycles, res.Syncs)
	}

	mha := gqa
	mha.KVHeads = 0
	pm, _ := partition.NewTensorParallel(mha, 3)
	dm, err := deploy.New(pm, hw.Siracusa(), model.Autoregressive, 128, deploy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	resM, err := Run(dm)
	if err != nil {
		t.Fatal(err)
	}
	// Same chip count, smaller K/V projections: GQA must not be
	// slower.
	if res.TotalCycles > resM.TotalCycles {
		t.Fatalf("GQA %g slower than MHA %g at equal chips", res.TotalCycles, resM.TotalCycles)
	}
}

// Group size 2 trees still simulate correctly (deep trees).
func TestDeepTreeSimulation(t *testing.T) {
	cfg := model.TinyLlamaScaled64()
	p, _ := partition.NewTensorParallel(cfg, 64)
	hwp := hw.Siracusa()
	hwp.GroupSize = 2
	d, err := deploy.New(p, hwp, model.Autoregressive, 128, deploy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(d)
	if err != nil {
		t.Fatal(err)
	}
	if res.TreeDepth != 6 { // 64 -> 32 -> 16 -> 8 -> 4 -> 2 -> 1
		t.Fatalf("tree depth %d, want 6", res.TreeDepth)
	}
}

// Replicated prompt mode with more chips than rows leaves chips idle
// but still completes.
func TestReplicatedMoreChipsThanRows(t *testing.T) {
	cfg := model.TinyLlama42M()
	p, _ := partition.NewReplicated(cfg, 8)
	d, err := deploy.New(p, hw.Siracusa(), model.Prompt, 4, deploy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(d)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCycles <= 0 {
		t.Fatal("no runtime")
	}
	// Chips 4–7 receive no rows; chip 4 still accumulates partials as
	// its group's reduce leader, so exactly 3 chips are fully idle.
	idle := 0
	for i := range res.PerChip {
		if res.PerChip[i].ComputeCycles == 0 {
			idle++
		}
	}
	if idle != 3 {
		t.Fatalf("fully idle chips = %d, want 3 (rowless non-leaders)", idle)
	}
}

// Pipeline stages with a single chip degenerate to the single-chip
// runtime (no handoffs).
func TestPipelineSingleStage(t *testing.T) {
	cfg := model.TinyLlama42M()
	p, _ := partition.NewPipeline(cfg, 1)
	d, err := deploy.New(p, hw.Siracusa(), model.Prompt, 16, deploy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(d)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalC2CBytes != 0 {
		t.Fatal("single-stage pipeline moved link bytes")
	}
}
