package perfsim

import (
	"math"
	"testing"

	"mcudist/internal/deploy"
	"mcudist/internal/hw"
	"mcudist/internal/interconnect"
	"mcudist/internal/model"
	"mcudist/internal/partition"
	"mcudist/internal/trace"
)

func runTopo(t *testing.T, topo hw.Topology, n int, mode model.Mode) (*Result, *deploy.Deployment, *trace.Timeline) {
	t.Helper()
	p, err := partition.NewTensorParallel(model.TinyLlama42M(), n)
	if err != nil {
		t.Fatal(err)
	}
	hwp := hw.Siracusa()
	hwp.Topology = topo
	d, err := deploy.New(p, hwp, mode, 128, deploy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var tl trace.Timeline
	res, err := RunTraced(d, &tl)
	if err != nil {
		t.Fatal(err)
	}
	return res, d, &tl
}

// Link traffic under every topology must equal the schedule's
// collective byte count times the number of synchronizations (up to
// the ring's per-tile chunk rounding).
func TestTopologyTrafficConservation(t *testing.T) {
	for _, topo := range hw.Topologies() {
		for _, n := range []int{2, 4, 8} {
			res, d, _ := runTopo(t, topo, n, model.Prompt)
			sched, err := interconnect.NewSchedule(d.HW, n)
			if err != nil {
				t.Fatal(err)
			}
			want := float64(res.Syncs) * float64(sched.CollectiveBytes(d.ReducePayload, d.BcastPayload))
			got := float64(res.TotalC2CBytes)
			if math.Abs(got-want) > 0.01*want+float64(res.Syncs*n) {
				t.Errorf("%s n=%d: %g link bytes, want ~%g", topo, n, got, want)
			}
			if res.Topology != topo {
				t.Errorf("%s n=%d: result reports topology %s", topo, n, res.Topology)
			}
		}
	}
}

// Every resource — clusters, DMAs, and the per-edge links of every
// topology — must stay exclusive: no overlapping spans.
func TestTopologyTraceExclusivity(t *testing.T) {
	for _, topo := range hw.Topologies() {
		for _, mode := range []model.Mode{model.Autoregressive, model.Prompt} {
			_, _, tl := runTopo(t, topo, 8, mode)
			if err := tl.CheckNoOverlap(); err != nil {
				t.Errorf("%s/%s: %v", topo, mode, err)
			}
		}
	}
}

// The schedule depth the result reports: tree log, star 1,
// ring N-1, fully-connected 1.
func TestTopologyDepthReported(t *testing.T) {
	for _, tc := range []struct {
		topo  hw.Topology
		depth int
	}{
		{hw.TopoTree, 2},
		{hw.TopoStar, 1},
		{hw.TopoRing, 7},
		{hw.TopoFullyConnected, 1},
	} {
		res, _, _ := runTopo(t, tc.topo, 8, model.Autoregressive)
		if res.TreeDepth != tc.depth {
			t.Errorf("%s: depth %d, want %d", tc.topo, res.TreeDepth, tc.depth)
		}
	}
}

// All four topologies compute the same model: compute and L2/L1
// traffic on the non-finalizing chips is topology-invariant (the
// finalizing chips differ by design: the ring shards the root work,
// the fully-connected exchange replicates it, and accumulation counts
// differ per shape). What must hold everywhere: every topology ends
// with the same per-chip L3 traffic and runs the same 2-per-block
// synchronization count.
func TestTopologyModelInvariants(t *testing.T) {
	base, _, _ := runTopo(t, hw.TopoTree, 8, model.Prompt)
	for _, topo := range []hw.Topology{hw.TopoStar, hw.TopoRing, hw.TopoFullyConnected} {
		res, _, _ := runTopo(t, topo, 8, model.Prompt)
		if res.Syncs != base.Syncs {
			t.Errorf("%s: %d syncs, want %d", topo, res.Syncs, base.Syncs)
		}
		for c := range res.PerChip {
			if res.PerChip[c].L3Bytes != base.PerChip[c].L3Bytes {
				t.Errorf("%s chip %d: L3 bytes %d, want %d",
					topo, c, res.PerChip[c].L3Bytes, base.PerChip[c].L3Bytes)
			}
		}
	}
}
